//! Cross-crate integration: the packing pipeline from policy through
//! preprocessing to host and simulated-GPU GEMMs, property-tested.

use vitbit::core::correction::BiasCorrection;
use vitbit::core::host::{packed_gemm, packed_gemm_wide};
use vitbit::core::policy::{PackPolicy, PackSpec};
use vitbit::core::preprocess::{preprocess_input, preprocess_weights, SplitWidths};
use vitbit::core::ratio::CoreRatio;
use vitbit::kernels::gemm::{run_packed, run_tc};
use vitbit::sim::{Gpu, OrinConfig};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{check, gen, Matrix};

fn codes(rows: usize, cols: usize, bw: u32, seed: u64) -> Matrix<i8> {
    let hi = ((1i32 << (bw - 1)) - 1) as i8;
    gen::uniform_i8(rows, cols, -hi - 1, hi, seed)
}

#[test]
fn figure3_policy_drives_every_layer_of_the_stack() {
    // One assertion chain per Figure-3 row that supports multi-lane packing.
    for (bw, lanes) in [(4u32, 4u32), (5, 3), (6, 2), (7, 2), (8, 2)] {
        let spec = PackSpec::guarded(bw, bw).expect("packable");
        assert_eq!(spec.lanes, lanes, "Figure 3 lanes at {bw} bits");
        let a = codes(8, 24, bw, u64::from(bw));
        let b = codes(24, (32 * lanes) as usize, bw, u64::from(bw) + 1);
        let want = gemm_i8_i32(&a, &b);
        assert_eq!(
            packed_gemm(&a, &b, &spec).unwrap(),
            want,
            "host u32 {bw}-bit"
        );
        let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
        assert_eq!(
            run_packed(&mut gpu, &a, &b, &spec).expect("gemm").c,
            want,
            "sim {bw}-bit"
        );
    }
}

#[test]
fn algorithm1_preprocessing_feeds_consistent_parts() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let b = codes(16, 200, 6, 9);
    let pre = preprocess_input(&b, &spec, CoreRatio::PAPER).unwrap();
    assert_eq!(pre.widths.total(), 200);
    // Packed registers decode back to B1.
    let unpacked = vitbit::core::pack::unpack_matrix_rows(&pre.b1_packed, &spec);
    assert_eq!(unpacked, pre.b1_raw);
    // B2 is the exact f32 image of its slice.
    for r in 0..16 {
        for c in 0..pre.widths.n2 {
            assert_eq!(pre.b2[(r, c)], f32::from(b[(r, pre.widths.n1 + c)]));
        }
    }
    // Weight preprocessing: duplicate + rowsums.
    let a = codes(4, 16, 6, 10);
    let w = preprocess_weights(&a);
    for r in 0..4 {
        let s: i64 = a.row(r).iter().map(|&x| i64::from(x)).sum();
        assert_eq!(w.rowsum[r], s);
    }
}

#[test]
fn split_widths_respect_equation_1() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    for n in [64usize, 200, 768, 3072] {
        let w = SplitWidths::compute(n, CoreRatio::PAPER, &spec).unwrap();
        // INT side gets ~lanes x the FP side (within rounding).
        if w.n2 > 0 {
            let ratio = w.n1 as f64 / w.n2 as f64;
            assert!((1.0..=2.5).contains(&ratio), "n={n}: {ratio}");
        }
        assert_eq!(w.n1 % spec.lanes as usize, 0, "whole registers");
    }
}

/// The guarded policy is exact for every shape; the paper policy is
/// exact exactly when K fits its safe window.
#[test]
fn prop_policy_exactness_boundary() {
    check::cases(0xe2e_0001, 16, |rng| {
        let bw = rng.random_range(4u32..=8);
        let k_mult = rng.random_range(1usize..6);
        let guarded = PackSpec::guarded(bw, bw).unwrap();
        let paper = PackSpec::paper(bw).unwrap();
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let k = k_mult * 8;
        let a = Matrix::from_fn(4, k, |_, _| hi); // worst-case operands
        let b = Matrix::from_fn(k, guarded.lanes as usize * 4, |_, _| -hi - 1);
        let want = gemm_i8_i32(&a, &b);
        assert_eq!(packed_gemm(&a, &b, &guarded).unwrap(), want.clone());
        let paper_out = packed_gemm(&a, &b, &paper).unwrap();
        if (k as u64) <= u64::from(paper.max_safe_k()) {
            assert_eq!(paper_out, want);
        }
        let _ = PackPolicy::Paper;
    });
}

/// Bias correction recovers signed results for random shapes.
#[test]
fn prop_bias_correction_round_trip() {
    check::cases(0xe2e_0002, 16, |rng| {
        let m = rng.random_range(1usize..5);
        let k = rng.random_range(1usize..32);
        let jg = rng.random_range(1usize..4);
        let seed = rng.random_range(0u64..500);
        let spec = PackSpec::guarded(6, 6).unwrap();
        let n = jg * spec.lanes as usize;
        let a = codes(m, k, 6, seed);
        let b = codes(k, n, 6, seed + 1);
        let corr = BiasCorrection::new(&spec, &a, &b);
        let want = gemm_i8_i32(&a, &b);
        let got = packed_gemm(&a, &b, &spec).unwrap();
        assert_eq!(&got, &want);
        // Spot-check the correction identity at one element.
        let _ = corr.apply(0, 0, 0); // callable; exactness covered above
    });
}

/// Host u32 and u64 SWAR paths agree with each other and the reference.
#[test]
fn prop_host_paths_agree() {
    check::cases(0xe2e_0003, 16, |rng| {
        let k = rng.random_range(1usize..40);
        let seed = rng.random_range(0u64..300);
        let spec = PackSpec::guarded(6, 6).unwrap();
        let wide = (64 / spec.lane_bits) as usize;
        let n = 2 * wide;
        let a = codes(3, k, 6, seed);
        let b = codes(k, n, 6, seed + 7);
        let want = gemm_i8_i32(&a, &b);
        assert_eq!(packed_gemm(&a, &b, &spec).unwrap(), want.clone());
        assert_eq!(packed_gemm_wide(&a, &b, &spec).unwrap(), want);
    });
}

#[test]
fn simulated_packed_gemm_matches_tc_result() {
    // The packed INT-core kernel and the Tensor-core kernel are two routes
    // to the same integer GEMM.
    let mut gpu = Gpu::new(OrinConfig::test_small(), 64 << 20);
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = codes(24, 48, 6, 77);
    let b = codes(48, 128, 6, 78);
    let packed = run_packed(&mut gpu, &a, &b, &spec).expect("gemm");
    let tc = run_tc(&mut gpu, &a, &b).expect("gemm");
    assert_eq!(packed.c, tc.c);
    assert!(packed.stats.issued.int > 0 && tc.stats.issued.tensor > 0);
}
