//! Cross-crate integration: Table-3 strategies over the simulated GPU and
//! the integer ViT pipeline.
//!
//! Kept on the deprecated one-shot entry points deliberately: they are
//! thin shims over the plan/execute engine, so this suite doubles as
//! end-to-end coverage of the legacy-compatibility surface.
#![allow(deprecated)]

use vitbit::exec::{run_initial_study, ExecConfig, GemmTuner, Strategy};
use vitbit::sim::{Gpu, OrinConfig};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{gen, metrics, Matrix};
use vitbit::vit::{run_vit, KernelClass, ViTConfig, ViTModel};

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 128 << 20)
}

#[test]
fn all_seven_strategies_agree_on_gemm_results() {
    let mut g = gpu();
    let cfg = ExecConfig::int6();
    let a = gen::uniform_i8(24, 48, -32, 31, 1);
    let b = gen::uniform_i8(48, 384, -32, 31, 2);
    let want = gemm_i8_i32(&a, &b);
    for s in Strategy::ALL {
        assert_eq!(s.run_gemm(&mut g, &a, &b, &cfg).c, want, "{}", s.name());
    }
}

#[test]
fn tuned_dispatch_caches_per_shape_choices() {
    let mut g = gpu();
    let cfg = ExecConfig::int6();
    let mut tuner = GemmTuner::new();
    let a = gen::uniform_i8(16, 32, -32, 31, 3);
    let b = gen::uniform_i8(32, 256, -32, 31, 4);
    let want = gemm_i8_i32(&a, &b);
    assert!(tuner.is_empty());
    let first = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
    assert_eq!(first.c, want);
    assert_eq!(tuner.len(), 1, "one shape tuned");
    let second = Strategy::VitBit.run_gemm_tuned(&mut g, &a, &b, &cfg, &mut tuner);
    assert_eq!(second.c, want);
    assert_eq!(tuner.len(), 1, "cache hit, no new entries");
}

#[test]
fn initial_study_orders_cases_like_the_paper() {
    let mut g = gpu();
    let r = run_initial_study(&mut g, 64, 256, 256, 6);
    let n = r.normalized();
    // TC clearly fastest; every CUDA case slower; the derived ratio is a
    // usable split.
    assert!(n[1] > 2.0 && n[2] > 2.0 && n[3] > 2.0 && n[4] > 2.0);
    let m = r.derived_ratio();
    assert!(m.tc >= 2 && m.cuda == 1);
}

#[test]
fn vit_pipeline_exact_strategies_agree_with_reference() {
    let model = ViTModel::new(ViTConfig::tiny(), 5);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(31);
    let want = vitbit::vit::reference::forward(&model, &x);
    let mut g = gpu();
    for s in [Strategy::Tc, Strategy::Ic, Strategy::Tacker] {
        let run = run_vit(&mut g, &model, &x, s, &cfg, None);
        assert_eq!(run.logits, want, "{} must be bit-exact", s.name());
    }
}

#[test]
fn vit_accuracy_maintained_across_strategies() {
    // The paper's Figure-5 methods must preserve the classification
    // decision (top-1 agreement over a small batch).
    let model = ViTModel::new(ViTConfig::tiny(), 6);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let mut g = gpu();
    let argrow = |m: &Matrix<i32>| {
        m.row(0)
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap()
    };
    for s in Strategy::FIG5 {
        let mut agree = 0;
        let trials = 4;
        for seed in 0..trials {
            let x = model.synthetic_input(200 + seed);
            let want = vitbit::vit::reference::forward(&model, &x);
            let run = run_vit(&mut g, &model, &x, s, &cfg, None);
            if argrow(&run.logits) == argrow(&want) {
                agree += 1;
            }
        }
        assert!(
            agree * 4 >= trials * 3,
            "{}: top-1 {agree}/{trials}",
            s.name()
        );
    }
}

#[test]
fn vit_timings_cover_every_kernel_class_per_strategy() {
    let model = ViTModel::new(ViTConfig::tiny(), 7);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(8);
    let mut g = gpu();
    for s in [Strategy::Tc, Strategy::IcFc, Strategy::VitBit] {
        let run = run_vit(&mut g, &model, &x, s, &cfg, Some(1));
        assert!(run.cycles_of(KernelClass::Linear) > 0, "{}", s.name());
        assert!(run.cycles_of(KernelClass::Cuda) > 0, "{}", s.name());
        let agg = run.aggregate();
        assert!(agg.ipc() > 0.0);
        assert!(agg.arith_density() > 0.0);
    }
}

#[test]
fn top1_agreement_metric_sanity() {
    // Tie the tensor metric helpers into the logits workflow.
    let a = Matrix::from_vec(2, 3, vec![5, 1, 0, 0, 9, 2]);
    let b = Matrix::from_vec(2, 3, vec![4, 2, 1, 1, 8, 3]);
    assert_eq!(metrics::top1_agreement(&a, &b), 1.0);
    assert_eq!(metrics::max_abs_diff_i32(&a, &b), 1);
}
