//! Simulator-level invariants exercised through the public facade:
//! determinism, conservation of instruction counts, utilization bounds,
//! and failure-injection (hang guard, capacity checks).

use vitbit::kernels::gemm::{run_ic, run_tc};
use vitbit::sim::config::peak_throughput_table;
use vitbit::sim::isa::PipeClass;
use vitbit::sim::program::ProgramBuilder;
use vitbit::sim::{Gpu, Kernel, OrinConfig};
use vitbit::tensor::gen;

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 64 << 20)
}

#[test]
fn simulation_is_fully_deterministic() {
    let a = gen::uniform_i8(20, 40, -32, 31, 1);
    let b = gen::uniform_i8(40, 96, -32, 31, 2);
    let mut g1 = gpu();
    let mut g2 = gpu();
    let r1 = run_ic(&mut g1, &a, &b).expect("gemm");
    let r2 = run_ic(&mut g2, &a, &b).expect("gemm");
    assert_eq!(r1.c, r2.c);
    assert_eq!(r1.stats.cycles, r2.stats.cycles);
    assert_eq!(r1.stats.issued.total(), r2.stats.issued.total());
    assert_eq!(r1.stats.dram_bytes, r2.stats.dram_bytes);
}

#[test]
fn utilization_is_bounded_and_ops_match_shape() {
    let mut g = gpu();
    let (m, n, k) = (32usize, 128usize, 64usize);
    let a = gen::uniform_i8(m, k, -32, 31, 3);
    let b = gen::uniform_i8(k, n, -32, 31, 4);
    let out = run_tc(&mut g, &a, &b).expect("gemm");
    for pipe in [
        PipeClass::Int,
        PipeClass::Fp,
        PipeClass::Tensor,
        PipeClass::Sfu,
        PipeClass::Lsu,
    ] {
        let u = out.stats.utilization(pipe);
        assert!((0.0..=1.0).contains(&u), "{pipe:?} utilization {u}");
    }
    // TC ops == padded shape's MACs x2 (M pads to 64, N to 64, K to 64).
    assert_eq!(out.stats.tc_ops, 2 * 64 * 128 * 64);
}

#[test]
fn warm_l2_speeds_up_second_launch() {
    let mut g = gpu();
    let a = gen::uniform_i8(32, 64, -32, 31, 5);
    let b = gen::uniform_i8(64, 128, -32, 31, 6);
    g.cold_caches();
    let cold = run_tc(&mut g, &a, &b).expect("gemm").stats.cycles;
    // Same operands stay resident in the (kept) L2 between launches —
    // uploads go to fresh addresses, so re-run the identical launch:
    let warm = run_tc(&mut g, &a, &b).expect("gemm").stats.cycles;
    assert!(warm <= cold, "warm {warm} should not exceed cold {cold}");
}

#[test]
fn hang_guard_catches_infinite_kernels() {
    let mut p = ProgramBuilder::new("spin");
    p.label_here("top");
    p.bra("top");
    p.exit();
    let mut cfg = OrinConfig::test_small();
    cfg.max_cycles = 5_000;
    let mut g = Gpu::new(cfg, 1 << 20);
    let k = Kernel::single("spin", p.build().into_arc(), 1, 1, 0, vec![]);
    let err = g.launch(&k).unwrap_err();
    assert!(
        err.to_string().contains("exceeded"),
        "watchdog error names the budget: {err}"
    );
}

#[test]
#[should_panic(expected = "cannot fit")]
fn oversized_blocks_are_rejected() {
    let mut p = ProgramBuilder::new("big");
    p.exit();
    let mut g = gpu();
    let k = Kernel::single("big", p.build().into_arc(), 1, 1000, 0, vec![]);
    let _ = g.launch(&k);
}

#[test]
#[should_panic(expected = "shared memory")]
fn oversized_smem_is_rejected() {
    let mut p = ProgramBuilder::new("smem");
    p.exit();
    let mut g = gpu();
    let k = Kernel::single("smem", p.build().into_arc(), 1, 1, 100 << 20, vec![]);
    let _ = g.launch(&k);
}

#[test]
fn table1_regenerates_from_the_machine_description() {
    let t = peak_throughput_table(&OrinConfig::jetson_agx_orin());
    let int8 = t.iter().find(|r| r.format == "INT8").unwrap().tops;
    let int32 = t
        .iter()
        .find(|r| r.format == "INT32" && r.unit == "CUDA Core")
        .unwrap()
        .tops;
    // The 32x gap that motivates the whole paper.
    assert!((int8 / int32 - 32.0).abs() < 1.5);
}
