//! Serving-path equivalence: batched execution, async submission, and
//! plan-affinity sharding are pure *scheduling* refactorings — every
//! request's output matrix and per-request [`KernelStats`] must be
//! bit-identical to a sequential [`Engine::execute`] loop.
//!
//! Launch-position discipline: L2 state persists across launches on one
//! GPU, so each comparison pairs a request stream on one machine against
//! the *same* stream on an identically configured machine. For the pool,
//! the claim is per routed stream: a pool of N shards must equal N
//! dedicated `(Gpu, Engine)` pairs fed exactly the substreams the pool's
//! affinity hash routes to each shard — not one global machine, whose L2
//! would see every desc.
//!
//! The persistence tests prove the cold-boot contract: an imported plan
//! cache serves with zero plan-build work and zero verifier invocations,
//! and a corrupted blob fails closed per entry — the damaged plan falls
//! back to a live `prepare` and still serves correctly.

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Completion, Engine, GemmDesc, GpuPool, ServePath};
use vitbit::sim::{FaultConfig, Gpu, OrinConfig, SimMode};
use vitbit::tensor::{gen, Matrix};

fn orin(mode: SimMode) -> OrinConfig {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg
}

fn gpu(mode: SimMode) -> Gpu {
    Gpu::new(orin(mode), 64 << 20)
}

const SHAPE: (usize, usize, usize) = (16, 32, 320);

/// Distinct operand pairs for one desc (values must not matter to the
/// serving path; giving every request different operands proves it).
fn requests(bw: u32, n: usize, seed: u64) -> (Vec<Matrix<i8>>, Matrix<i8>) {
    let (m, k, nn) = SHAPE;
    let hi = ((1i32 << (bw - 1)) - 1) as i8;
    let a_mats = (0..n)
        .map(|i| gen::uniform_i8(m, k, -hi - 1, hi, seed + i as u64))
        .collect();
    let b = gen::uniform_i8(k, nn, -hi - 1, hi, seed + 100);
    (a_mats, b)
}

#[test]
fn batched_is_bit_identical_to_sequential_for_every_strategy_bitwidth_and_mode() {
    let (m, k, n) = SHAPE;
    let nreq = 4usize;
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for bw in [4u32, 6, 8] {
            let mut cfg = ExecConfig::guarded(bw);
            cfg.adaptive = false;
            let (a_mats, b) = requests(bw, nreq, 300 + u64::from(bw));
            for s in Strategy::ALL {
                let tag = format!("{} INT{bw} {mode:?}", s.name());
                // Sequential loop on one machine...
                let mut g1 = gpu(mode);
                let mut e1 = Engine::new();
                let d1 = GemmDesc::from_exec(s, &cfg, &g1, m, k, n, Some(1));
                let id1 = e1.prepare(d1).expect("prepare");
                let seq: Vec<_> = a_mats
                    .iter()
                    .map(|a| e1.execute(&mut g1, id1, a, &b).expect("execute"))
                    .collect();
                // ...vs one batch on an identical machine.
                let mut g2 = gpu(mode);
                let mut e2 = Engine::new();
                let d2 = GemmDesc::from_exec(s, &cfg, &g2, m, k, n, Some(1));
                let id2 = e2.prepare(d2).expect("prepare");
                let reqs: Vec<_> = a_mats.iter().map(|a| (a, &b)).collect();
                let batch = e2.execute_batch(&mut g2, id2, &reqs).expect("batch");
                assert_eq!(batch.outcomes.len(), nreq, "{tag}");
                for (i, (sq, o)) in seq.iter().zip(&batch.outcomes).enumerate() {
                    assert_eq!(o.out.c, sq.c, "request {i} output: {tag}");
                    assert_eq!(o.out.stats, sq.stats, "request {i} stats: {tag}");
                }
            }
        }
    }
}

#[test]
fn async_submission_matches_sequential_in_ticket_order() {
    let (m, k, n) = SHAPE;
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let (a_mats, b) = requests(6, 5, 700);
    for s in [Strategy::Tc, Strategy::IcFc, Strategy::VitBit] {
        // Sequential reference stream.
        let mut g1 = gpu(SimMode::Serial);
        let mut e1 = Engine::new();
        let d1 = GemmDesc::from_exec(s, &cfg, &g1, m, k, n, Some(2));
        let id1 = e1.prepare(d1).expect("prepare");
        let seq: Vec<_> = a_mats
            .iter()
            .map(|a| e1.execute(&mut g1, id1, a, &b).expect("execute"))
            .collect();
        // Async submit-all-then-drain on an identical machine.
        let mut g2 = gpu(SimMode::Serial);
        let mut e2 = Engine::new();
        let d2 = GemmDesc::from_exec(s, &cfg, &g2, m, k, n, Some(2));
        let tickets: Vec<_> = a_mats
            .iter()
            .map(|a| e2.submit(d2, a.clone(), b.clone()).expect("submit"))
            .collect();
        assert_eq!(e2.pending_count(), a_mats.len());
        let done: Vec<Completion> = e2.drain(&mut g2);
        assert_eq!(e2.pending_count(), 0);
        assert_eq!(done.len(), seq.len());
        for (i, (c, sq)) in done.iter().zip(&seq).enumerate() {
            assert_eq!(c.ticket, tickets[i], "completions in ticket order");
            let out = c.result.as_ref().expect("completion");
            assert_eq!(out.out.c, sq.c, "{} request {i} output", s.name());
            assert_eq!(out.out.stats, sq.stats, "{} request {i} stats", s.name());
        }
    }
}

#[test]
fn sharded_pool_is_bit_identical_to_dedicated_machines() {
    let (m, k, n) = SHAPE;
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let machine = orin(SimMode::Serial);
    let probe = Gpu::new(machine.clone(), 64 << 20);
    // A request stream over several descs (distinct weights and one
    // activation GEMM) so multi-device pools actually spread load.
    let descs: Vec<GemmDesc> = vec![
        GemmDesc::from_exec(Strategy::Tc, &cfg, &probe, m, k, n, Some(1)),
        GemmDesc::from_exec(Strategy::VitBit, &cfg, &probe, m, k, n, Some(2)),
        GemmDesc::from_exec(Strategy::IcFc, &cfg, &probe, m, k, n, None),
        GemmDesc::from_exec(Strategy::Tacker, &cfg, &probe, m, k, n, Some(3)),
    ];
    let (a_mats, b) = requests(6, descs.len() * 2, 900);
    // Two passes over every desc: the second is the affinity-hit pass.
    let mut stream: Vec<(GemmDesc, &Matrix<i8>)> = Vec::new();
    for pass in 0..2 {
        for (i, d) in descs.iter().enumerate() {
            stream.push((*d, &a_mats[pass * descs.len() + i]));
        }
    }
    for devices in [1usize, 2, 4] {
        let mut pool = GpuPool::new(devices, &machine, 64 << 20);
        // Dedicated reference machines, one per shard, fed exactly the
        // substream the pool routes to that shard.
        let mut refs: Vec<(Gpu, Engine)> = (0..devices)
            .map(|_| (Gpu::new(machine.clone(), 64 << 20), Engine::new()))
            .collect();
        for (desc, a) in &stream {
            let shard = pool.route(desc);
            let got = pool.run(*desc, a, &b).expect("pool run");
            let (g, e) = &mut refs[shard];
            let id = e.prepare(*desc).expect("prepare");
            let want = e.execute(g, id, a, &b).expect("execute");
            assert_eq!(got.c, want.c, "{devices} devices, shard {shard}: output");
            assert_eq!(
                got.stats, want.stats,
                "{devices} devices, shard {shard}: stats"
            );
        }
        let total = pool.stats();
        assert_eq!(
            total.affinity_hits + total.affinity_misses,
            stream.len() as u64
        );
        assert!(
            total.affinity_hits >= descs.len() as u64,
            "second pass must hit plan affinity ({} devices): {total:?}",
            devices
        );
    }
}

#[test]
fn batched_stays_identical_under_seeded_fault_injection() {
    let (m, k, n) = SHAPE;
    let mut machine = orin(SimMode::Serial);
    machine.fault = FaultConfig {
        enabled: true,
        seed: 11,
        reg_flip_rate: 1e-6,
        dram_flip_rate: 1e-7,
        hang_rate: 0.0,
    };
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    cfg.abft = true;
    let (a_mats, b) = requests(6, 4, 1100);
    for s in [Strategy::Tc, Strategy::VitBit] {
        // The fault stream is seeded per machine: identical machines
        // observe identical faults at identical launch positions, so the
        // batched path must still be bit-identical — and must never
        // replay (a faulting machine has no steady state).
        let mut g1 = Gpu::new(machine.clone(), 64 << 20);
        let mut e1 = Engine::new();
        let d1 = GemmDesc::from_exec(s, &cfg, &g1, m, k, n, Some(4));
        let id1 = e1.prepare(d1).expect("prepare");
        let seq: Vec<_> = a_mats
            .iter()
            .map(|a| e1.execute(&mut g1, id1, a, &b).expect("execute"))
            .collect();
        let mut g2 = Gpu::new(machine.clone(), 64 << 20);
        let mut e2 = Engine::new();
        let d2 = GemmDesc::from_exec(s, &cfg, &g2, m, k, n, Some(4));
        let id2 = e2.prepare(d2).expect("prepare");
        let reqs: Vec<_> = a_mats.iter().map(|a| (a, &b)).collect();
        let batch = e2.execute_batch(&mut g2, id2, &reqs).expect("batch");
        assert_eq!(batch.replayed(), 0, "{}: no replay under faults", s.name());
        for (i, (sq, o)) in seq.iter().zip(&batch.outcomes).enumerate() {
            assert_eq!(o.out.c, sq.c, "{} request {i} output", s.name());
            assert_eq!(o.out.stats, sq.stats, "{} request {i} stats", s.name());
            assert_ne!(o.served, ServePath::Replayed);
        }
    }
}

#[test]
fn persisted_plan_cache_boots_warm_with_zero_build_and_zero_verification() {
    let (m, k, n) = SHAPE;
    let g = gpu(SimMode::Serial);
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    // Activation descs only: staged weights are per-execution artifacts
    // and deliberately not persisted.
    let descs: Vec<GemmDesc> = [Strategy::Tc, Strategy::Tacker, Strategy::VitBit]
        .iter()
        .map(|&s| GemmDesc::from_exec(s, &cfg, &g, m, k, n, None))
        .collect();
    let (a_mats, b) = requests(6, 1, 1300);
    let a = &a_mats[0];

    let mut warm = Engine::new().with_verifier(vitbit::verify::engine_verifier());
    let mut g_warm = gpu(SimMode::Serial);
    let warm_outs: Vec<_> = descs
        .iter()
        .map(|&d| {
            let id = warm.prepare(d).expect("warm prepare");
            warm.execute(&mut g_warm, id, a, &b).expect("warm execute")
        })
        .collect();
    let blob = warm.export_plans();

    let mut cold = Engine::new().with_verifier(vitbit::verify::engine_verifier());
    let mut g_cold = gpu(SimMode::Serial);
    let summary = cold.import_plans(&blob).expect("import");
    assert_eq!(summary.imported, descs.len() as u64);
    assert_eq!(summary.rejected, 0);
    for (&d, want) in descs.iter().zip(&warm_outs) {
        let id = cold.prepare(d).expect("cold prepare");
        let got = cold.execute(&mut g_cold, id, a, &b).expect("cold execute");
        assert_eq!(got.c, want.c, "cold replica output");
        assert_eq!(
            got.stats.plan_build_cycles, 0,
            "warm boot must carry zero plan-build work"
        );
    }
    let st = cold.stats();
    assert_eq!(st.verifier_invocations, 0, "cold boot must not re-verify");
    assert_eq!(st.plan_build_units, 0, "cold boot must not re-resolve");
    assert_eq!(st.plan_cache_misses, 0, "cold prepares must all hit");
}

#[test]
fn corrupted_persisted_entries_fail_closed_to_live_prepare() {
    let (m, k, n) = SHAPE;
    let g = gpu(SimMode::Serial);
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let descs: Vec<GemmDesc> = [Strategy::Tc, Strategy::VitBit]
        .iter()
        .map(|&s| GemmDesc::from_exec(s, &cfg, &g, m, k, n, None))
        .collect();
    let (a_mats, b) = requests(6, 1, 1500);
    let a = &a_mats[0];

    let mut warm = Engine::new();
    let mut g_warm = gpu(SimMode::Serial);
    let warm_outs: Vec<_> = descs
        .iter()
        .map(|&d| {
            let id = warm.prepare(d).expect("warm prepare");
            warm.execute(&mut g_warm, id, a, &b).expect("warm execute")
        })
        .collect();
    let mut blob = warm.export_plans();
    // Flip one byte inside the first entry's payload: its checksum must
    // reject it while the rest of the blob imports untouched.
    blob[30] ^= 0x40;

    let mut cold = Engine::new();
    let mut g_cold = gpu(SimMode::Serial);
    let summary = cold.import_plans(&blob).expect("blob frame still parses");
    assert_eq!(summary.rejected, 1, "the damaged entry fails closed");
    assert_eq!(summary.imported, descs.len() as u64 - 1);
    assert_eq!(cold.stats().plans_rejected, 1);
    // The damaged desc falls back to a live prepare and still serves
    // correct results.
    for (&d, want) in descs.iter().zip(&warm_outs) {
        let id = cold.prepare(d).expect("prepare (live or imported)");
        let got = cold.execute(&mut g_cold, id, a, &b).expect("execute");
        assert_eq!(got.c, want.c, "output after fail-closed recovery");
    }
    assert!(
        cold.stats().plan_build_units > 0,
        "the rejected plan was rebuilt live"
    );
}

#[test]
fn serving_table_total_row_is_the_column_wise_sum_of_device_rows() {
    use vitbit::plan::{render_serving_table, DeviceStatus, EngineStats, HealthState, PoolStats};

    // Synthetic statuses exercising the drift the old renderer had: the
    // total row must sum the *rows* — including an evicted shard's quar
    // and dl-miss columns — not reach for pool-level counters.
    let dev = |device: usize, health, quar: usize, dl: u64, batches: u64| DeviceStatus {
        device,
        health,
        stats: EngineStats {
            batches,
            batch_requests: 3 * batches,
            executes: 3 * batches,
            replayed_executes: batches,
            affinity_hits: 2 * batches,
            affinity_misses: batches,
            retries: 1,
            fallbacks: 0,
            overload_rejections: device as u64,
            ..EngineStats::default()
        },
        quarantined_plans: quar,
        deadline_misses: dl,
        pending: 0,
        last_launch_faults: 0,
        faults_injected_total: 0,
    };
    let status = vec![
        dev(0, HealthState::Healthy, 1, 2, 4),
        dev(1, HealthState::Degraded, 2, 5, 6),
        dev(2, HealthState::Evicted, 3, 7, 2),
    ];
    let pool = PoolStats {
        evictions: 1,
        plans_failed_over: 2,
        tickets_failed_over: 3,
        host_answers: 4,
        // Deliberately different from the rows' 2+5+7: the table's
        // dl-miss total must come from the rows, not this counter.
        deadline_misses: 99,
        parallel_drains: 0,
        serial_drains: 0,
    };
    let table = render_serving_table(&status, &pool);
    let lines: Vec<&str> = table.lines().collect();
    assert_eq!(lines.len(), 6, "header + 3 devices + total + pool footer");

    let total = lines[4];
    assert!(total.starts_with("total"), "total row: {total}");
    let cols: Vec<&str> = total.split_whitespace().collect();
    // device health batches requests executes replayed aff-hit aff-miss
    // rate retries fback quar dl-miss ovld
    assert_eq!(cols[2], "12", "batches 4+6+2: {total}");
    assert_eq!(cols[3], "36", "requests: {total}");
    assert_eq!(cols[11], "6", "quar must be 1+2+3 over the rows: {total}");
    assert_eq!(
        cols[12], "14",
        "dl-miss must be 2+5+7 over the rows: {total}"
    );
    assert_eq!(cols[13], "3", "ovld 0+1+2: {total}");
    assert!(
        lines[5].contains("evictions 1")
            && lines[5].contains("plans-failed-over 2")
            && lines[5].contains("host-answers 4"),
        "pool footer: {}",
        lines[5]
    );
    // Health tags render per state.
    assert!(lines[1].contains("healthy") && lines[2].contains("degrade"));
    assert!(lines[3].contains("evicted"));
}

#[test]
fn pool_render_table_matches_the_shared_renderer() {
    use vitbit::plan::render_serving_table;
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let (a_mats, b) = requests(6, 3, 900);
    let mut pool = GpuPool::new(2, &orin(SimMode::Serial), 64 << 20);
    for s in [Strategy::Tc, Strategy::VitBit] {
        let probe = gpu(SimMode::Serial);
        let desc = GemmDesc::from_exec(s, &cfg, &probe, SHAPE.0, SHAPE.1, SHAPE.2, None);
        let reqs: Vec<(&Matrix<i8>, &Matrix<i8>)> = a_mats.iter().map(|a| (a, &b)).collect();
        pool.execute_batch(desc, &reqs).expect("batch");
    }
    let via_method = pool.render_table();
    let via_fn = render_serving_table(&pool.device_status(), &pool.pool_stats());
    assert_eq!(via_method, via_fn);
    assert!(via_method.lines().count() >= 5);
}
