//! Plan/execute equivalence: the [`vitbit::plan::Engine`] must be a pure
//! refactoring of the legacy one-shot `run_*` drivers. For every Table-3
//! strategy, bitwidth and simulator mode, the engine's output — the result
//! matrix *and* the simulated cycle count — is bit-identical to the legacy
//! entry point, and repeated execution of one plan reproduces the same
//! cycles with zero plan-build work.
//!
//! Launch-position discipline: L2 state persists across launches on one
//! GPU, so every comparison pairs launch #i on one GPU with launch #i on a
//! second, identically configured GPU — never #1 against #2.

// The legacy entry points are deprecated shims over the engine; exercising
// them here is the point of the test.
#![allow(deprecated)]

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc};
use vitbit::sim::{Gpu, OrinConfig, SimMode};
use vitbit::tensor::gen;

fn gpu(mode: SimMode) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    Gpu::new(cfg, 64 << 20)
}

const SHAPE: (usize, usize, usize) = (20, 32, 320);

#[test]
fn engine_is_bit_identical_to_legacy_for_every_strategy_bitwidth_and_mode() {
    let (m, k, n) = SHAPE;
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for bw in [4u32, 6, 8] {
            let cfg = ExecConfig::guarded(bw);
            let hi = ((1i32 << (bw - 1)) - 1) as i8;
            let a = gen::uniform_i8(m, k, -hi - 1, hi, 100 + u64::from(bw));
            let b = gen::uniform_i8(k, n, -hi - 1, hi, 200 + u64::from(bw));
            for s in Strategy::ALL {
                // Legacy one-shot driver on its own GPU (launch #1)...
                let mut g_legacy = gpu(mode);
                let legacy = s.run_gemm(&mut g_legacy, &a, &b, &cfg);
                // ...vs the engine on a separate GPU (also launch #1).
                let mut g_engine = gpu(mode);
                let mut engine = Engine::new();
                let mut desc = GemmDesc::from_exec(s, &cfg, &g_engine, m, k, n, None);
                desc.adaptive = false; // matches the untuned legacy path
                let out = engine.run(&mut g_engine, desc, &a, &b).expect("run");
                let tag = format!("{} INT{bw} {mode:?}", s.name());
                assert_eq!(out.c, legacy.c, "result mismatch: {tag}");
                assert_eq!(
                    out.stats.cycles, legacy.stats.cycles,
                    "cycle mismatch: {tag}"
                );
            }
        }
    }
}

#[test]
fn plan_reuse_reproduces_cycles_with_zero_build_work() {
    let (m, k, n) = SHAPE;
    for s in [Strategy::Tacker, Strategy::TcIcFc, Strategy::VitBit] {
        let cfg = ExecConfig::guarded(6);
        let a = gen::uniform_i8(m, k, -32, 31, 7);
        let b = gen::uniform_i8(k, n, -32, 31, 8);
        // Two executes of one plan on g1; two fresh one-shots on g2.
        // Position-matched: cold vs #1, hot vs #2.
        let mut g1 = gpu(SimMode::Serial);
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(s, &cfg, &g1, m, k, n, Some(1));
        desc.adaptive = false;
        let id = engine.prepare(desc).expect("prepare");
        let cold = engine.execute(&mut g1, id, &a, &b).expect("execute");
        let packs_after_cold = engine.weights().misses();
        let hot = engine.execute(&mut g1, id, &a, &b).expect("execute");

        let mut g2 = gpu(SimMode::Serial);
        let first = s.run_gemm(&mut g2, &a, &b, &cfg);
        let second = s.run_gemm(&mut g2, &a, &b, &cfg);

        let tag = s.name();
        assert_eq!(cold.c, first.c, "{tag}");
        assert_eq!(hot.c, second.c, "{tag}");
        assert_eq!(cold.stats.cycles, first.stats.cycles, "{tag} cold");
        assert_eq!(hot.stats.cycles, second.stats.cycles, "{tag} hot");
        // The acceptance criterion: repeat execution does no packing and
        // no policy/ratio recomputation.
        assert!(cold.stats.plan_build_cycles > 0, "{tag}: cold pays build");
        assert_eq!(hot.stats.plan_build_cycles, 0, "{tag}: hot is build-free");
        assert_eq!(hot.stats.plan_cache_hits, 1, "{tag}");
        // Weight staged at most once (VitBit packs; the others don't),
        // and never re-packed by the hot execute.
        assert_eq!(
            engine.weights().misses(),
            packs_after_cold,
            "{tag}: hot execute re-packed a weight"
        );
    }
}
