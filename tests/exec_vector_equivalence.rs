//! Vector-executor equivalence: the lane-plane SIMD execute bodies and the
//! coarsened (bulk) LSU paths behind `vitbit::sim::plane::set_vector` must
//! be *invisible* — for every strategy, bitwidth and simulator mode they
//! produce the same result matrix and the same `KernelStats`, field for
//! field, as the forced-scalar executor, including under seeded fault
//! injection (the bulk LSU paths must preserve the per-line fault event
//! stream exactly).
//!
//! The vector knob is process-global, so every test serializes on one
//! mutex and restores the knob before releasing it.
//!
//! On hosts without AVX2+FMA `set_vector(true)` reports scalar execution;
//! the comparisons then trivially hold, which is exactly the scalar-
//! fallback contract (same results everywhere, speed differs).

use std::sync::{Mutex, MutexGuard, PoisonError};

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc};
use vitbit::sim::isa::{MemWidth, SReg, Src};
use vitbit::sim::program::ProgramBuilder;
use vitbit::sim::{plane, FaultConfig, Gpu, InterpMode, Kernel, KernelStats, OrinConfig, SimMode};
use vitbit::tensor::{gen, Matrix};

const SHAPE: (usize, usize, usize) = (20, 32, 320);

static KNOB: Mutex<()> = Mutex::new(());

/// Serializes tests that flip the process-global vector knob.
fn lock() -> MutexGuard<'static, ()> {
    KNOB.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs one engine GEMM on a fresh GPU and returns (result, stats).
fn run_engine(
    s: Strategy,
    bw: u32,
    mode: SimMode,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
) -> (Matrix<i32>, KernelStats) {
    let (m, k, n) = SHAPE;
    let cfg = ExecConfig::guarded(bw);
    let mut ocfg = OrinConfig::test_small();
    ocfg.sim_mode = mode;
    let mut g = Gpu::new(ocfg, 64 << 20);
    let mut engine = Engine::new();
    let mut desc = GemmDesc::from_exec(s, &cfg, &g, m, k, n, None);
    desc.adaptive = false;
    let out = engine.run(&mut g, desc, a, b).expect("run");
    (out.c, out.stats)
}

#[test]
fn vector_executor_is_bit_identical_across_strategies_and_modes() {
    let _g = lock();
    let (m, k, n) = SHAPE;
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for bw in [4u32, 6, 8] {
            let hi = ((1i32 << (bw - 1)) - 1) as i8;
            let a = gen::uniform_i8(m, k, -hi - 1, hi, 500 + u64::from(bw));
            let b = gen::uniform_i8(k, n, -hi - 1, hi, 600 + u64::from(bw));
            for s in Strategy::ALL {
                plane::set_vector(false);
                let (c_s, st_s) = run_engine(s, bw, mode, &a, &b);
                plane::set_vector(true);
                let (c_v, st_v) = run_engine(s, bw, mode, &a, &b);
                let tag = format!("{} INT{bw} {mode:?}", s.name());
                assert_eq!(c_v, c_s, "result mismatch: {tag}");
                assert_eq!(st_v, st_s, "stats mismatch: {tag}");
            }
        }
    }
    plane::set_vector(true);
}

#[test]
fn vector_executor_matches_in_both_interpreter_modes() {
    // The hint plumbing differs between the decoded fast path and the
    // reference interpreter, so cross both interpreters with both
    // executors: all four cells must be identical.
    let _g = lock();
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 71);
    let b = gen::uniform_i8(k, n, -32, 31, 72);
    let run = |interp: InterpMode| {
        let cfg = ExecConfig::guarded(8);
        let mut ocfg = OrinConfig::test_small();
        ocfg.interp = interp;
        let mut g = Gpu::new(ocfg, 64 << 20);
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, m, k, n, None);
        desc.adaptive = false;
        let out = engine.run(&mut g, desc, &a, &b).expect("run");
        (out.c, out.stats)
    };
    plane::set_vector(false);
    let (c_sr, st_sr) = run(InterpMode::Reference);
    let (c_sm, st_sm) = run(InterpMode::Micro);
    plane::set_vector(true);
    let (c_vr, st_vr) = run(InterpMode::Reference);
    let (c_vm, st_vm) = run(InterpMode::Micro);
    assert_eq!(c_sm, c_sr, "scalar micro vs reference");
    assert_eq!(st_sm, st_sr, "scalar micro vs reference stats");
    assert_eq!(c_vr, c_sr, "vector reference vs scalar reference");
    assert_eq!(st_vr, st_sr, "vector reference vs scalar reference stats");
    assert_eq!(c_vm, c_sr, "vector micro vs scalar reference");
    assert_eq!(st_vm, st_sr, "vector micro vs scalar reference stats");
}

#[test]
fn vector_executor_preserves_the_seeded_fault_stream() {
    // Fault events roll per issue and per DRAM-served line, so the bulk
    // LSU paths must emit exactly the line lists the scalar loops would
    // (count *and* order). Any divergence shows up as different
    // faults_injected counters, different results, or both.
    let _g = lock();
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 81);
    let b = gen::uniform_i8(k, n, -32, 31, 82);
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for seed in [3u64, 99] {
            let run = |vector: bool| {
                plane::set_vector(vector);
                let cfg = ExecConfig::guarded(6);
                let mut ocfg = OrinConfig::test_small();
                ocfg.sim_mode = mode;
                let mut fault = FaultConfig::seeded(seed);
                fault.reg_flip_rate = 2e-3;
                fault.dram_flip_rate = 2e-3;
                ocfg.fault = fault;
                let mut g = Gpu::new(ocfg, 64 << 20);
                let mut engine = Engine::new();
                let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, m, k, n, None);
                desc.adaptive = false;
                let out = engine.run(&mut g, desc, &a, &b).expect("run");
                (out.c, out.stats, engine.stats().retries)
            };
            let (c_s, st_s, rt_s) = run(false);
            let (c_v, st_v, rt_v) = run(true);
            let tag = format!("{mode:?} seed {seed}");
            assert_eq!(c_v, c_s, "{tag}: result diverged");
            assert_eq!(st_v, st_s, "{tag}: stats diverged");
            assert_eq!(rt_v, rt_s, "{tag}: ladder retries diverged");
        }
    }
    plane::set_vector(true);
}

/// A kernel whose global and shared accesses are lane-permuted and
/// misaligned: every address vector fails the bulk-coalescing probes, so
/// the vector executor must take the scalar LSU path and still match.
fn divergent_lsu_kernel(g: &mut Gpu) -> (Kernel, u32, usize) {
    let n_words = 64usize;
    let src: Vec<u32> = (0..n_words as u32)
        .map(|i| i.wrapping_mul(0x9e37_79b9))
        .collect();
    let src_dev = g.mem.upload_u32(&src);
    let dst_dev = g.mem.alloc((n_words * 4 + 4) as u32);
    let mut p = ProgramBuilder::new("divergent_lsu");
    let src_base = p.alloc();
    let dst_base = p.alloc();
    p.ldc(src_base, 0);
    p.ldc(dst_base, 1);
    let tid = p.alloc();
    p.sreg(tid, SReg::Tid);
    // Permuted word index: (tid * 13) % 64 — a full cycle over the words,
    // never stride-contiguous between neighboring lanes.
    let idx = p.alloc();
    p.imul(idx, tid.into(), Src::Imm(13));
    p.and(idx, idx.into(), Src::Imm(63));
    let addr = p.alloc();
    p.imad(addr, idx.into(), Src::Imm(4), src_base.into());
    let v = p.alloc();
    p.ldg(v, addr, 0, MemWidth::B32);
    // Misaligned reload: byte offset 2 into the next word straddles two
    // words; the scalar path assembles it byte-wise and so must the
    // fallback the vector executor takes.
    let v2 = p.alloc();
    p.ldg(v2, addr, 2, MemWidth::B32);
    p.iadd(v, v.into(), v2.into());
    // Swizzled shared-memory bounce (word (tid*5)%64 of a 256-byte tile).
    let sidx = p.alloc();
    p.imul(sidx, tid.into(), Src::Imm(5));
    p.and(sidx, sidx.into(), Src::Imm(63));
    p.shl(sidx, sidx.into(), Src::Imm(2));
    p.sts(sidx, 0, v.into(), MemWidth::B32);
    p.bar();
    let sv = p.alloc();
    p.lds(sv, sidx, 0, MemWidth::B32);
    // Divergent, misaligned store: dst word (tid*29)%64, byte offset +2.
    let didx = p.alloc();
    p.imul(didx, tid.into(), Src::Imm(29));
    p.and(didx, didx.into(), Src::Imm(63));
    let daddr = p.alloc();
    p.imad(daddr, didx.into(), Src::Imm(4), dst_base.into());
    p.stg(daddr, 2, sv.into(), MemWidth::B32);
    p.exit();
    let k = Kernel::single(
        "divergent_lsu",
        p.build().into_arc(),
        1,
        2, // two warps: 64 lanes cover all 64 words
        256,
        vec![src_dev.addr, dst_dev.addr],
    );
    (k, dst_dev.addr, n_words + 1)
}

#[test]
fn divergent_and_misaligned_addresses_fall_back_to_the_scalar_lsu() {
    let _g = lock();
    let run = |vector: bool| {
        plane::set_vector(vector);
        let mut g = Gpu::new(OrinConfig::test_small(), 16 << 20);
        let (k, dst_addr, n) = divergent_lsu_kernel(&mut g);
        let stats = g.launch(&k).expect("launch");
        let words: Vec<u32> = (0..n)
            .map(|i| g.mem.read_u32(dst_addr + (i * 4) as u32))
            .collect();
        (words, stats)
    };
    let (w_s, st_s) = run(false);
    let (w_v, st_v) = run(true);
    assert_eq!(w_v, w_s, "divergent-LSU kernel bytes diverged");
    assert_eq!(st_v, st_s, "divergent-LSU kernel stats diverged");
    // The kernel actually wrote something (guards against a vacuous pass).
    assert!(w_s.iter().any(|&w| w != 0), "kernel stored nothing");
    plane::set_vector(true);
}
