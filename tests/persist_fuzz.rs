//! Persistence fuzz: `import_plans` must be fail-closed at *every* byte
//! of a blob — truncation at each boundary, a bit flip at each offset,
//! and spliced/duplicated entries. No input may panic the importer; no
//! damaged entry may be silently accepted; every rejection must leave
//! the engine fully able to serve via live prepare.

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc, GpuPool, PersistError};
use vitbit::sim::{Gpu, OrinConfig, SimMode};
use vitbit::tensor::{gen, Matrix};

fn machine() -> OrinConfig {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = SimMode::Serial;
    cfg
}

fn gpu() -> Gpu {
    Gpu::new(machine(), 64 << 20)
}

/// A warm corpus: descs, their export blob, one operand pair, and the
/// reference outputs.
struct Warm {
    descs: Vec<GemmDesc>,
    blob: Vec<u8>,
    a: Matrix<i8>,
    b: Matrix<i8>,
    outs: Vec<Matrix<i32>>,
}

/// A warm engine with one activation plan per strategy family, its
/// export blob, and reference outputs for one operand pair.
fn warm() -> Warm {
    let g = gpu();
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let descs: Vec<GemmDesc> = [Strategy::Tc, Strategy::Tacker, Strategy::VitBit]
        .iter()
        .map(|&s| GemmDesc::from_exec(s, &cfg, &g, 16, 32, 320, None))
        .collect();
    let a = gen::uniform_i8(16, 32, -32, 31, 4100);
    let b = gen::uniform_i8(32, 320, -32, 31, 4200);
    let mut e = Engine::new();
    let mut gw = gpu();
    let outs: Vec<Matrix<i32>> = descs
        .iter()
        .map(|&d| {
            let id = e.prepare(d).expect("warm prepare");
            e.execute(&mut gw, id, &a, &b).expect("warm execute").c
        })
        .collect();
    let blob = e.export_plans();
    Warm {
        descs,
        blob,
        a,
        b,
        outs,
    }
}

/// After any import outcome, the engine must still serve every desc
/// correctly — rejected entries fall back to live prepare.
fn assert_serves(
    e: &mut Engine,
    descs: &[GemmDesc],
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    want: &[Matrix<i32>],
    tag: &str,
) {
    let mut g = gpu();
    for (&d, w) in descs.iter().zip(want) {
        let id = e
            .prepare(d)
            .unwrap_or_else(|err| panic!("{tag}: prepare after import: {err}"));
        let got = e
            .execute(&mut g, id, a, b)
            .unwrap_or_else(|err| panic!("{tag}: execute after import: {err}"));
        assert_eq!(got.c, *w, "{tag}: payload after fail-closed import");
    }
}

#[test]
fn truncation_at_every_byte_fails_closed() {
    let Warm {
        descs,
        blob,
        a,
        b,
        outs,
    } = warm();
    let n = descs.len() as u64;
    for cut in 0..blob.len() {
        let damaged = &blob[..cut];
        let mut e = Engine::new();
        let res = e.import_plans(damaged);
        // The header promises more entries than a strict prefix can
        // deliver, so every proper truncation is a structural error
        // (entries admitted before the cut stay admitted — fail-closed
        // is per entry).
        let err = res.expect_err(&format!("cut at {cut} of {} must error", blob.len()));
        assert!(
            matches!(err, PersistError::BadMagic | PersistError::Truncated),
            "cut at {cut}: unexpected {err:?}"
        );
        assert!(
            e.stats().plans_imported < n,
            "cut at {cut}: a strict prefix never imports all"
        );
        // Spot-check serving on a handful of cut points (full serving at
        // every byte would dominate the suite's runtime).
        if cut % 29 == 0 {
            assert_serves(&mut e, &descs, &a, &b, &outs, &format!("cut {cut}"));
        }
    }
    // The untruncated blob is the control: it must import whole.
    let mut e = Engine::new();
    let summary = e.import_plans(&blob).expect("intact blob");
    assert_eq!(summary.imported, n);
    assert_eq!(summary.rejected, 0);
}

#[test]
fn single_bit_flip_at_every_byte_is_never_silently_accepted() {
    let Warm {
        descs,
        blob,
        a,
        b,
        outs,
    } = warm();
    let n = descs.len() as u64;
    for pos in 0..blob.len() {
        let mut damaged = blob.clone();
        damaged[pos] ^= 1 << (pos % 8);
        let mut e = Engine::new();
        let res = e.import_plans(&damaged);
        match pos {
            0..=3 => {
                assert_eq!(res, Err(PersistError::BadMagic), "magic flip at {pos}");
            }
            4..=7 => {
                assert!(
                    matches!(res, Err(PersistError::BadVersion(_))),
                    "version flip at {pos}: {res:?}"
                );
            }
            _ => {
                // A count flip shrinks or overruns the entry walk; an
                // entry flip breaks that entry's checksum (or its
                // framing). Either way the import must NOT look like a
                // clean full import.
                let clean_looking = matches!(
                    res,
                    Ok(s) if s.imported == n && s.rejected == 0 && s.already_resident == 0
                );
                assert!(
                    !clean_looking,
                    "flip at {pos}: damaged blob imported as if intact: {res:?}"
                );
            }
        }
        if pos % 23 == 0 {
            assert_serves(&mut e, &descs, &a, &b, &outs, &format!("flip {pos}"));
        }
    }
}

#[test]
fn duplicate_entries_within_a_blob_are_rejected() {
    let Warm {
        descs,
        blob,
        a,
        b,
        outs,
    } = warm();
    // Splice the first entry in twice: a well-formed export never
    // repeats a desc, so the replayed entry must be rejected — not
    // silently merged, not double-imported.
    let payload = &blob[12..];
    let doubled = {
        let mut out = Vec::new();
        out.extend_from_slice(&blob[..8]);
        out.extend_from_slice(&(descs.len() as u32 + 1).to_le_bytes());
        // First entry duplicated at the end.
        out.extend_from_slice(payload);
        let len = u32::from_le_bytes(blob[12..16].try_into().expect("len field")) as usize;
        out.extend_from_slice(&blob[12..12 + 12 + len]);
        out
    };
    let mut e = Engine::new();
    let summary = e.import_plans(&doubled).expect("frame parses");
    assert_eq!(summary.imported, descs.len() as u64, "originals import");
    assert_eq!(summary.rejected, 1, "the replayed duplicate is rejected");
    assert_eq!(e.stats().plans_rejected, 1);
    assert_serves(&mut e, &descs, &a, &b, &outs, "duplicate splice");

    // Same replay against a pool: the duplicate routes to the same
    // shard as its original (routing is a pure function of the desc)
    // and is rejected there.
    let mut pool = GpuPool::new(2, &machine(), 64 << 20);
    let summary = pool.import_plans(&doubled).expect("pool frame parses");
    assert_eq!(summary.imported, descs.len() as u64);
    assert_eq!(summary.rejected, 1);
}

#[test]
fn splicing_two_exports_with_distinct_descs_is_legitimate() {
    // The pool's own export concatenates per-shard entries, so a splice
    // of *distinct* descs must import cleanly — rejection is reserved
    // for damage and replays.
    let g = gpu();
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    let d1 = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, 16, 32, 128, None);
    let d2 = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, 16, 32, 320, None);
    let mut e1 = Engine::new();
    e1.prepare(d1).expect("prepare d1");
    let mut e2 = Engine::new();
    e2.prepare(d2).expect("prepare d2");
    let (b1, b2) = (e1.export_plans(), e2.export_plans());
    let spliced = {
        let mut out = Vec::new();
        out.extend_from_slice(&b1[..8]);
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&b1[12..]);
        out.extend_from_slice(&b2[12..]);
        out
    };
    let mut e = Engine::new();
    let summary = e.import_plans(&spliced).expect("spliced frame parses");
    assert_eq!(summary.imported, 2);
    assert_eq!(summary.rejected, 0);
}

#[test]
fn truncated_header_and_empty_inputs_error_cleanly() {
    use vitbit::plan::persist::VERSION;
    for bytes in [
        &[][..],
        &b"VB"[..],
        &b"VBPC"[..],
        &b"VBPC\x01\x00\x00\x00"[..],
    ] {
        let mut e = Engine::new();
        let res = e.import_plans(bytes);
        assert!(res.is_err(), "{bytes:?} must be refused");
    }
    // Any other version (older or newer) fails wholesale; the current
    // version with zero entries is a valid empty blob.
    for v in [VERSION - 1, VERSION + 1] {
        let mut wrong = Vec::new();
        wrong.extend_from_slice(b"VBPC");
        wrong.extend_from_slice(&v.to_le_bytes());
        wrong.extend_from_slice(&0u32.to_le_bytes());
        let mut e = Engine::new();
        assert_eq!(e.import_plans(&wrong), Err(PersistError::BadVersion(v)));
    }
    let mut empty = Vec::new();
    empty.extend_from_slice(b"VBPC");
    empty.extend_from_slice(&VERSION.to_le_bytes());
    empty.extend_from_slice(&0u32.to_le_bytes());
    let mut e = Engine::new();
    let summary = e.import_plans(&empty).expect("empty blob is valid");
    assert_eq!(summary.imported, 0);
}
