//! Differential tests for the two-phase parallel simulator, the
//! event-horizon fast-forward and the packed-weight cache:
//! `SimMode::Parallel` must produce bit-identical `KernelStats` and
//! results to `SimMode::Serial` for every kernel family, fast-forward
//! must be invisible in everything except wall-clock time and its own
//! skip counters, and cached weight packing must be invisible in GEMM
//! outputs.
//!
//! The suite drives the deprecated one-shot `run_*` shims on purpose:
//! they delegate to the plan/execute engine, so every differential
//! assertion here also covers the legacy-compatibility surface
//! (see `tests/plan_equivalence.rs` for engine-vs-shim identity).
#![allow(deprecated)]

use vitbit::core::policy::PackSpec;
use vitbit::core::ratio::CoreRatio;
use vitbit::exec::{ExecConfig, PackedWeightCache, Strategy};
use vitbit::kernels::elementwise::{run_layernorm, run_map, run_softmax, EwVariant, MapOp};
use vitbit::kernels::gemm::{
    run_fc, run_fused, run_fused_with_ratio_cached, run_ic, run_packed, run_packed_cached, run_tc,
    FusedMode, GemmOut,
};
use vitbit::sim::{Gpu, KernelStats, OrinConfig, SchedPolicy, SimMode};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{gen, Matrix};
use vitbit::vit::{run_vit, run_vit_cached, ViTConfig, ViTModel};

fn gpu_with(mode: SimMode, threads: u32) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.sim_threads = Some(threads);
    Gpu::new(cfg, 128 << 20)
}

fn assert_stats_identical(s: &KernelStats, p: &KernelStats, ctx: &str) {
    assert_eq!(s.cycles, p.cycles, "{ctx}: cycles");
    assert_eq!(s.issued, p.issued, "{ctx}: per-pipe issue counts");
    assert_eq!(s.busy, p.busy, "{ctx}: per-pipe busy cycles");
    assert_eq!(s.int_ops, p.int_ops, "{ctx}: int_ops");
    assert_eq!(s.fp_ops, p.fp_ops, "{ctx}: fp_ops");
    assert_eq!(s.tc_ops, p.tc_ops, "{ctx}: tc_ops");
    assert_eq!(s.sfu_ops, p.sfu_ops, "{ctx}: sfu_ops");
    assert_eq!(s.dram_bytes, p.dram_bytes, "{ctx}: dram_bytes");
    assert_eq!(s.l2_hit_bytes, p.l2_hit_bytes, "{ctx}: l2_hit_bytes");
}

fn assert_modes_agree(ctx: &str, threads: u32, run: impl Fn(&mut Gpu) -> GemmOut) {
    let mut serial = gpu_with(SimMode::Serial, 1);
    let mut parallel = gpu_with(SimMode::Parallel, threads);
    let s = run(&mut serial);
    let p = run(&mut parallel);
    assert_eq!(s.c, p.c, "{ctx}: GEMM results");
    assert_stats_identical(&s.stats, &p.stats, ctx);
}

fn int6(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    gen::uniform_i8(rows, cols, -32, 31, seed)
}

// --- event-horizon fast-forward -----------------------------------------

fn gpu_ff(mode: SimMode, sched: SchedPolicy, fast_forward: bool, threads: u32) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.sim_threads = Some(threads);
    cfg.sched = sched;
    cfg.fast_forward = fast_forward;
    Gpu::new(cfg, 64 << 20)
}

/// Runs `run` with fast-forward off (the stepping oracle) and on, under
/// both [`SimMode`]s and both schedulers, asserting bit-identical
/// `KernelStats` and results — fast-forward may only be visible in its own
/// skip counters and in wall-clock time.
fn assert_ff_invisible<T: PartialEq + std::fmt::Debug>(
    ctx: &str,
    run: impl Fn(&mut Gpu) -> (KernelStats, T),
) {
    for (mode, threads) in [(SimMode::Serial, 1), (SimMode::Parallel, 2)] {
        for sched in [SchedPolicy::Gto, SchedPolicy::Lrr] {
            let c = format!("{ctx}/{mode:?}/{sched:?}");
            let (s_off, r_off) = run(&mut gpu_ff(mode, sched, false, threads));
            let (s_on, r_on) = run(&mut gpu_ff(mode, sched, true, threads));
            assert_eq!(s_off.skipped_cycles, 0, "{c}: oracle must not skip");
            assert_eq!(s_off.fast_forward_jumps, 0, "{c}: oracle must not jump");
            assert_stats_identical(&s_off, &s_on, &c);
            assert_eq!(r_off, r_on, "{c}: results diverge under fast-forward");
        }
    }
}

fn gemm_pair(out: GemmOut) -> (KernelStats, Matrix<i32>) {
    (out.stats, out.c)
}

#[test]
fn fast_forward_invisible_tc_gemm() {
    let a = int6(32, 64, 41);
    let b = int6(64, 256, 42);
    assert_ff_invisible("ff/tc", |g| gemm_pair(run_tc(g, &a, &b).expect("gemm")));
}

#[test]
fn fast_forward_invisible_ic_gemm() {
    let a = int6(24, 48, 43);
    let b = int6(48, 128, 44);
    assert_ff_invisible("ff/ic", |g| gemm_pair(run_ic(g, &a, &b).expect("gemm")));
}

#[test]
fn fast_forward_invisible_fc_gemm() {
    let a = int6(24, 48, 45);
    let b = int6(48, 128, 46);
    assert_ff_invisible("ff/fc", |g| gemm_pair(run_fc(g, &a, &b).expect("gemm")));
}

#[test]
fn fast_forward_invisible_packed_gemm() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(24, 48, 47);
    let b = int6(48, 128, 48);
    assert_ff_invisible("ff/packed", |g| {
        gemm_pair(run_packed(g, &a, &b, &spec).expect("gemm"))
    });
}

#[test]
fn fast_forward_invisible_fused_gemms() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(20, 32, 49);
    let b = int6(32, 384, 50);
    for (name, mode) in [
        ("ff/tacker", FusedMode::Tacker),
        ("ff/tc_ic_fc", FusedMode::TcIcFc),
        ("ff/fused_vitbit", FusedMode::VitBit(spec)),
    ] {
        assert_ff_invisible(name, |g| gemm_pair(run_fused(g, &a, &b, mode)));
    }
}

#[test]
fn fast_forward_invisible_elementwise() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let input: Vec<i8> = (0..1024).map(|i| ((i * 37 + 11) % 63 - 31) as i8).collect();
    let other: Vec<i8> = (0..1024).map(|i| ((i * 53 + 5) % 63 - 31) as i8).collect();
    assert_ff_invisible("ff/gelu", |g| {
        let r = run_map(g, MapOp::Gelu, EwVariant::VitBit(spec), 6, &input, None);
        (r.stats, r.out)
    });
    assert_ff_invisible("ff/dropout", |g| {
        let op = MapOp::Dropout {
            seed: 9,
            keep_q8: 204,
        };
        let r = run_map(g, op, EwVariant::Ic, 6, &input, None);
        (r.stats, r.out)
    });
    assert_ff_invisible("ff/residual", |g| {
        let r = run_map(g, MapOp::Add, EwVariant::IcFc, 6, &input, Some(&other));
        (r.stats, r.out)
    });
    let x = int6(24, 64, 51);
    assert_ff_invisible("ff/softmax", |g| {
        let r = run_softmax(g, &x, EwVariant::Fc, 6);
        (r.stats, r.out)
    });
    assert_ff_invisible("ff/layernorm", |g| {
        let r = run_layernorm(g, &x, 64, 3, EwVariant::VitBit(spec), 6);
        (r.stats, r.out)
    });
}

#[test]
fn fast_forward_invisible_vit_block() {
    let model = ViTModel::new(ViTConfig::tiny(), 27);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(4);
    assert_ff_invisible("ff/vit", |g| {
        let r = run_vit(g, &model, &x, Strategy::VitBit, &cfg, Some(1));
        let stats = r.timings.iter().fold(KernelStats::default(), |mut acc, t| {
            acc.accumulate(&t.stats);
            acc
        });
        (stats, r.logits)
    });
}

#[test]
fn fast_forward_engages_on_memory_bound_gemm() {
    // A tall-skinny Tensor-core GEMM on the full 14-SM Orin leaves most
    // SMs with a single resident block whose warps spend the bulk of the
    // kernel blocked on L2/DRAM latency (the memory-bound regime of
    // DESIGN.md §5) — the event horizon must skip a large share of it.
    let a = int6(16, 768, 52);
    let b = int6(768, 64, 53);
    let mut cfg = OrinConfig::jetson_agx_orin();
    cfg.fast_forward = true;
    let mut g = Gpu::new(cfg, 32 << 20);
    let on = run_tc(&mut g, &a, &b).expect("gemm").stats;
    assert!(on.fast_forward_jumps > 0, "no jumps on a memory-bound GEMM");
    assert!(
        on.skip_ratio() > 0.4,
        "skip ratio {:.3} too low for a memory-bound kernel",
        on.skip_ratio()
    );
}

#[test]
fn tc_gemm_identical_across_modes() {
    let a = int6(32, 64, 1);
    let b = int6(64, 256, 2);
    assert_modes_agree("tc", 2, |g| run_tc(g, &a, &b).expect("gemm"));
}

#[test]
fn packed_int_gemm_identical_across_modes() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(24, 48, 3);
    let b = int6(48, 128, 4);
    assert_modes_agree("packed", 2, |g| run_packed(g, &a, &b, &spec).expect("gemm"));
}

#[test]
fn fused_kernels_identical_across_modes() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(20, 32, 5);
    let b = int6(32, 384, 6);
    for (name, mode) in [
        ("tacker", FusedMode::Tacker),
        ("tc_ic_fc", FusedMode::TcIcFc),
        ("vitbit", FusedMode::VitBit(spec)),
    ] {
        assert_modes_agree(name, 2, |g| run_fused(g, &a, &b, mode));
    }
}

#[test]
fn fused_vitbit_independent_of_thread_count() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(16, 32, 7);
    let b = int6(32, 320, 8);
    let mut one = gpu_with(SimMode::Parallel, 1);
    let mut three = gpu_with(SimMode::Parallel, 3);
    let r1 = run_fused(&mut one, &a, &b, FusedMode::VitBit(spec));
    let r3 = run_fused(&mut three, &a, &b, FusedMode::VitBit(spec));
    assert_eq!(r1.c, r3.c);
    assert_stats_identical(&r1.stats, &r3.stats, "threads 1 vs 3");
}

#[test]
fn vit_one_block_identical_across_modes() {
    let model = ViTModel::new(ViTConfig::tiny(), 21);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(9);
    let mut serial = gpu_with(SimMode::Serial, 1);
    let mut parallel = gpu_with(SimMode::Parallel, 2);
    let s = run_vit(&mut serial, &model, &x, Strategy::VitBit, &cfg, Some(1));
    let p = run_vit(&mut parallel, &model, &x, Strategy::VitBit, &cfg, Some(1));
    assert_eq!(s.logits, p.logits, "vit logits");
    assert_eq!(s.timings.len(), p.timings.len(), "vit kernel count");
    for (ts, tp) in s.timings.iter().zip(&p.timings) {
        assert_eq!(ts.name, tp.name);
        assert_stats_identical(&ts.stats, &tp.stats, ts.name);
    }
}

#[test]
fn packed_weight_cache_is_invisible_in_results() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a1 = int6(18, 40, 10);
    let a2 = int6(18, 40, 11);
    let b = int6(40, 128, 12);
    let want1 = gemm_i8_i32(&a1, &b);
    let want2 = gemm_i8_i32(&a2, &b);

    let mut g = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let mut cache = PackedWeightCache::new();
    // Standalone packed kernel: first launch packs, second reuses.
    let uncached = run_packed(&mut g, &a1, &b, &spec).expect("gemm");
    let c1 = run_packed_cached(&mut g, &a1, &b, &spec, Some((&mut cache, 1))).expect("gemm");
    let c2 = run_packed_cached(&mut g, &a2, &b, &spec, Some((&mut cache, 1))).expect("gemm");
    assert_eq!(uncached.c, want1);
    assert_eq!(c1.c, want1, "cached first launch");
    assert_eq!(c2.c, want2, "cache-hit launch with a new input");
    assert_eq!(cache.misses(), 1, "weight packed exactly once");
    assert_eq!(cache.hits(), 1);

    // Fused VitBit kernel: same invariants through the fused driver.
    let b_wide = int6(40, 384, 13);
    let ratio = CoreRatio { tc: 2, cuda: 1 };
    let want_w1 = gemm_i8_i32(&a1, &b_wide);
    let want_w2 = gemm_i8_i32(&a2, &b_wide);
    let f1 = run_fused_with_ratio_cached(
        &mut g,
        &a1,
        &b_wide,
        FusedMode::VitBit(spec),
        ratio,
        Some((&mut cache, 2)),
    );
    let f2 = run_fused_with_ratio_cached(
        &mut g,
        &a2,
        &b_wide,
        FusedMode::VitBit(spec),
        ratio,
        Some((&mut cache, 2)),
    );
    assert_eq!(f1.c, want_w1);
    assert_eq!(f2.c, want_w2);
    assert_eq!(cache.misses(), 2, "fused INT share packed once");
    assert_eq!(cache.hits(), 2);
}

#[test]
fn vit_weight_cache_reuses_packs_across_passes() {
    // `tiny()`'s dim-64 GEMMs leave the CUDA share under two warp chunks,
    // so the fused driver would fall back to pure TC and never pack; a
    // 128-wide model with a CUDA-heavy ratio keeps the VitBit packing path
    // live on the weight GEMMs.
    let mut vc = ViTConfig::tiny();
    vc.blocks = 1;
    vc.dim = 128;
    vc.head_dim = 64;
    vc.mlp_dim = 256;
    let model = ViTModel::new(vc, 33);
    let mut cfg = ExecConfig::guarded(model.cfg.bitwidth);
    cfg.ratio = Some(CoreRatio { tc: 1, cuda: 3 });
    cfg.adaptive = false;
    let x1 = model.synthetic_input(14);
    let x2 = model.synthetic_input(15);

    let mut plain_gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let plain1 = run_vit(&mut plain_gpu, &model, &x1, Strategy::VitBit, &cfg, Some(1));
    let plain2 = run_vit(&mut plain_gpu, &model, &x2, Strategy::VitBit, &cfg, Some(1));

    let mut cached_gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let mut cache = PackedWeightCache::new();
    let c1 = run_vit_cached(
        &mut cached_gpu,
        &model,
        &x1,
        Strategy::VitBit,
        &cfg,
        Some(1),
        &mut cache,
    );
    let packed_after_first = cache.misses();
    let c2 = run_vit_cached(
        &mut cached_gpu,
        &model,
        &x2,
        Strategy::VitBit,
        &cfg,
        Some(1),
        &mut cache,
    );

    assert_eq!(c1.logits, plain1.logits, "cached pass 1 logits");
    assert_eq!(c2.logits, plain2.logits, "cached pass 2 logits");
    assert_eq!(
        cache.misses(),
        packed_after_first,
        "second forward pass must not pack any weight again"
    );
    assert!(
        cache.hits() > 0,
        "second pass must be served from the cache"
    );
}
