//! Differential tests for the two-phase parallel simulator and the
//! packed-weight cache: `SimMode::Parallel` must produce bit-identical
//! `KernelStats` and results to `SimMode::Serial` for every kernel family,
//! and cached weight packing must be invisible in GEMM outputs.

use vitbit::core::policy::PackSpec;
use vitbit::core::ratio::CoreRatio;
use vitbit::exec::{ExecConfig, PackedWeightCache, Strategy};
use vitbit::kernels::gemm::{
    run_fused, run_fused_with_ratio_cached, run_packed, run_packed_cached, run_tc, FusedMode,
    GemmOut,
};
use vitbit::sim::{Gpu, KernelStats, OrinConfig, SimMode};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{gen, Matrix};
use vitbit::vit::{run_vit, run_vit_cached, ViTConfig, ViTModel};

fn gpu_with(mode: SimMode, threads: u32) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.sim_threads = Some(threads);
    Gpu::new(cfg, 128 << 20)
}

fn assert_stats_identical(s: &KernelStats, p: &KernelStats, ctx: &str) {
    assert_eq!(s.cycles, p.cycles, "{ctx}: cycles");
    assert_eq!(s.issued, p.issued, "{ctx}: per-pipe issue counts");
    assert_eq!(s.busy, p.busy, "{ctx}: per-pipe busy cycles");
    assert_eq!(s.int_ops, p.int_ops, "{ctx}: int_ops");
    assert_eq!(s.fp_ops, p.fp_ops, "{ctx}: fp_ops");
    assert_eq!(s.tc_ops, p.tc_ops, "{ctx}: tc_ops");
    assert_eq!(s.sfu_ops, p.sfu_ops, "{ctx}: sfu_ops");
    assert_eq!(s.dram_bytes, p.dram_bytes, "{ctx}: dram_bytes");
    assert_eq!(s.l2_hit_bytes, p.l2_hit_bytes, "{ctx}: l2_hit_bytes");
}

fn assert_modes_agree(ctx: &str, threads: u32, run: impl Fn(&mut Gpu) -> GemmOut) {
    let mut serial = gpu_with(SimMode::Serial, 1);
    let mut parallel = gpu_with(SimMode::Parallel, threads);
    let s = run(&mut serial);
    let p = run(&mut parallel);
    assert_eq!(s.c, p.c, "{ctx}: GEMM results");
    assert_stats_identical(&s.stats, &p.stats, ctx);
}

fn int6(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    gen::uniform_i8(rows, cols, -32, 31, seed)
}

#[test]
fn tc_gemm_identical_across_modes() {
    let a = int6(32, 64, 1);
    let b = int6(64, 256, 2);
    assert_modes_agree("tc", 2, |g| run_tc(g, &a, &b));
}

#[test]
fn packed_int_gemm_identical_across_modes() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(24, 48, 3);
    let b = int6(48, 128, 4);
    assert_modes_agree("packed", 2, |g| run_packed(g, &a, &b, &spec));
}

#[test]
fn fused_kernels_identical_across_modes() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(20, 32, 5);
    let b = int6(32, 384, 6);
    for (name, mode) in [
        ("tacker", FusedMode::Tacker),
        ("tc_ic_fc", FusedMode::TcIcFc),
        ("vitbit", FusedMode::VitBit(spec)),
    ] {
        assert_modes_agree(name, 2, |g| run_fused(g, &a, &b, mode));
    }
}

#[test]
fn fused_vitbit_independent_of_thread_count() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a = int6(16, 32, 7);
    let b = int6(32, 320, 8);
    let mut one = gpu_with(SimMode::Parallel, 1);
    let mut three = gpu_with(SimMode::Parallel, 3);
    let r1 = run_fused(&mut one, &a, &b, FusedMode::VitBit(spec));
    let r3 = run_fused(&mut three, &a, &b, FusedMode::VitBit(spec));
    assert_eq!(r1.c, r3.c);
    assert_stats_identical(&r1.stats, &r3.stats, "threads 1 vs 3");
}

#[test]
fn vit_one_block_identical_across_modes() {
    let model = ViTModel::new(ViTConfig::tiny(), 21);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(9);
    let mut serial = gpu_with(SimMode::Serial, 1);
    let mut parallel = gpu_with(SimMode::Parallel, 2);
    let s = run_vit(&mut serial, &model, &x, Strategy::VitBit, &cfg, Some(1));
    let p = run_vit(&mut parallel, &model, &x, Strategy::VitBit, &cfg, Some(1));
    assert_eq!(s.logits, p.logits, "vit logits");
    assert_eq!(s.timings.len(), p.timings.len(), "vit kernel count");
    for (ts, tp) in s.timings.iter().zip(&p.timings) {
        assert_eq!(ts.name, tp.name);
        assert_stats_identical(&ts.stats, &tp.stats, ts.name);
    }
}

#[test]
fn packed_weight_cache_is_invisible_in_results() {
    let spec = PackSpec::guarded(6, 6).unwrap();
    let a1 = int6(18, 40, 10);
    let a2 = int6(18, 40, 11);
    let b = int6(40, 128, 12);
    let want1 = gemm_i8_i32(&a1, &b);
    let want2 = gemm_i8_i32(&a2, &b);

    let mut g = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let mut cache = PackedWeightCache::new();
    // Standalone packed kernel: first launch packs, second reuses.
    let uncached = run_packed(&mut g, &a1, &b, &spec);
    let c1 = run_packed_cached(&mut g, &a1, &b, &spec, Some((&mut cache, 1)));
    let c2 = run_packed_cached(&mut g, &a2, &b, &spec, Some((&mut cache, 1)));
    assert_eq!(uncached.c, want1);
    assert_eq!(c1.c, want1, "cached first launch");
    assert_eq!(c2.c, want2, "cache-hit launch with a new input");
    assert_eq!(cache.misses(), 1, "weight packed exactly once");
    assert_eq!(cache.hits(), 1);

    // Fused VitBit kernel: same invariants through the fused driver.
    let b_wide = int6(40, 384, 13);
    let ratio = CoreRatio { tc: 2, cuda: 1 };
    let want_w1 = gemm_i8_i32(&a1, &b_wide);
    let want_w2 = gemm_i8_i32(&a2, &b_wide);
    let f1 = run_fused_with_ratio_cached(
        &mut g,
        &a1,
        &b_wide,
        FusedMode::VitBit(spec),
        ratio,
        Some((&mut cache, 2)),
    );
    let f2 = run_fused_with_ratio_cached(
        &mut g,
        &a2,
        &b_wide,
        FusedMode::VitBit(spec),
        ratio,
        Some((&mut cache, 2)),
    );
    assert_eq!(f1.c, want_w1);
    assert_eq!(f2.c, want_w2);
    assert_eq!(cache.misses(), 2, "fused INT share packed once");
    assert_eq!(cache.hits(), 2);
}

#[test]
fn vit_weight_cache_reuses_packs_across_passes() {
    // `tiny()`'s dim-64 GEMMs leave the CUDA share under two warp chunks,
    // so the fused driver would fall back to pure TC and never pack; a
    // 128-wide model with a CUDA-heavy ratio keeps the VitBit packing path
    // live on the weight GEMMs.
    let mut vc = ViTConfig::tiny();
    vc.blocks = 1;
    vc.dim = 128;
    vc.head_dim = 64;
    vc.mlp_dim = 256;
    let model = ViTModel::new(vc, 33);
    let mut cfg = ExecConfig::guarded(model.cfg.bitwidth);
    cfg.ratio = Some(CoreRatio { tc: 1, cuda: 3 });
    cfg.adaptive = false;
    let x1 = model.synthetic_input(14);
    let x2 = model.synthetic_input(15);

    let mut plain_gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let plain1 = run_vit(&mut plain_gpu, &model, &x1, Strategy::VitBit, &cfg, Some(1));
    let plain2 = run_vit(&mut plain_gpu, &model, &x2, Strategy::VitBit, &cfg, Some(1));

    let mut cached_gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let mut cache = PackedWeightCache::new();
    let c1 = run_vit_cached(
        &mut cached_gpu,
        &model,
        &x1,
        Strategy::VitBit,
        &cfg,
        Some(1),
        &mut cache,
    );
    let packed_after_first = cache.misses();
    let c2 = run_vit_cached(
        &mut cached_gpu,
        &model,
        &x2,
        Strategy::VitBit,
        &cfg,
        Some(1),
        &mut cache,
    );

    assert_eq!(c1.logits, plain1.logits, "cached pass 1 logits");
    assert_eq!(c2.logits, plain2.logits, "cached pass 2 logits");
    assert_eq!(
        cache.misses(),
        packed_after_first,
        "second forward pass must not pack any weight again"
    );
    assert!(
        cache.hits() > 0,
        "second pass must be served from the cache"
    );
}
