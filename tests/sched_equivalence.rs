//! Scheduler differential suite: the static instruction scheduler must
//! be *semantically invisible* and *timing-beneficial*. For every
//! Table-3 strategy, bitwidth, simulator mode and interpreter mode, an
//! engine with scheduling on (and the verifier's program check
//! installed) produces a bit-identical result matrix and issues exactly
//! the same number of warp instructions. Timing is held to a bounded
//! contract rather than per-cell monotonicity: any legal reorder
//! perturbs the phase alignment of co-resident warps, which shifts L1
//! and dual-issue interleaving by a few cycles in either direction —
//! chaos no static cost model can predict. Each cell may therefore
//! drift at most [`TOLERANCE_PCT`] percent, and the *aggregate* cycle
//! count over the whole sweep must strictly improve.
//!
//! The fault arm is weaker by design: injection decisions key off issue
//! counters, so a reordered issue stream draws a *different* fault
//! sequence — cycle counts and fault counters legitimately diverge.
//! What must still hold is recovered correctness: with ABFT on, every
//! returned result equals the host reference.
//!
//! A third test pins down the fail-closed contract: scheduling without
//! an installed program check must never adopt a candidate.

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, EngineStats, GemmDesc};
use vitbit::sim::{FaultConfig, Gpu, InterpMode, KernelStats, OrinConfig, SimMode};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{gen, Matrix};
use vitbit::verify::program_checker;

const SHAPE: (usize, usize, usize) = (20, 32, 320);

/// Per-cell cycle-drift bound, in percent. Reordering shifts warp phase
/// alignment; individual cells wobble within this band while the sweep
/// total must still strictly improve.
const TOLERANCE_PCT: u64 = 2;

fn gpu(mode: SimMode, interp: InterpMode) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.interp = interp;
    Gpu::new(cfg, 64 << 20)
}

/// One engine GEMM on a fresh GPU; `sched` toggles kernel scheduling
/// (with the verifier's program check installed when on).
fn run_once(
    s: Strategy,
    bw: u32,
    mode: SimMode,
    interp: InterpMode,
    sched: bool,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
) -> (Matrix<i32>, KernelStats, EngineStats) {
    let (m, k, n) = SHAPE;
    let mut cfg = ExecConfig::guarded(bw);
    cfg.adaptive = false;
    cfg.schedule_kernels = sched;
    let mut g = gpu(mode, interp);
    let mut engine = Engine::new();
    if sched {
        engine.set_program_check(program_checker());
    }
    let desc = GemmDesc::from_exec(s, &cfg, &g, m, k, n, None);
    let out = engine.run(&mut g, desc, a, b).expect("run");
    (out.c, out.stats, engine.stats())
}

#[test]
fn scheduled_is_bit_identical_and_faster_in_aggregate_fault_free() {
    let (m, k, n) = SHAPE;
    let mut total_applied = 0u64;
    let mut cycles_off = 0u64;
    let mut cycles_on = 0u64;
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for interp in [InterpMode::Reference, InterpMode::Micro] {
            for bw in [4u32, 6, 8] {
                let hi = ((1i32 << (bw - 1)) - 1) as i8;
                let a = gen::uniform_i8(m, k, -hi - 1, hi, 500 + u64::from(bw));
                let b = gen::uniform_i8(k, n, -hi - 1, hi, 600 + u64::from(bw));
                for s in Strategy::ALL {
                    let (c_off, st_off, _) = run_once(s, bw, mode, interp, false, &a, &b);
                    let (c_on, st_on, eng) = run_once(s, bw, mode, interp, true, &a, &b);
                    let tag = format!("{} INT{bw} {mode:?} {interp:?}", s.name());
                    assert_eq!(c_on, c_off, "result mismatch: {tag}");
                    assert_eq!(
                        st_on.issued.total(),
                        st_off.issued.total(),
                        "issue-count drift: {tag}"
                    );
                    assert!(
                        st_on.cycles * 100 <= st_off.cycles * (100 + TOLERANCE_PCT),
                        "scheduling regressed cycles beyond the phase-noise band: \
                         {tag} ({} > {} + {TOLERANCE_PCT}%)",
                        st_on.cycles,
                        st_off.cycles
                    );
                    cycles_off += st_off.cycles;
                    cycles_on += st_on.cycles;
                    total_applied += eng.sched_applied;
                }
            }
        }
    }
    assert!(
        total_applied > 0,
        "the scheduler never adopted a program — the suite is vacuous"
    );
    assert!(
        cycles_on < cycles_off,
        "no aggregate win: {cycles_on} !< {cycles_off}"
    );
}

#[test]
fn scheduled_results_stay_correct_under_seeded_faults() {
    // Reordering changes which issues the injector perturbs, so only
    // recovered correctness is comparable across the two engines.
    let (m, k, n) = SHAPE;
    for (seed, s) in [
        (11u64, Strategy::Tc),
        (12, Strategy::VitBit),
        (13, Strategy::Tacker),
    ] {
        let hi = 31i8;
        let a = gen::uniform_i8(m, k, -hi - 1, hi, seed * 2 + 1);
        let b = gen::uniform_i8(k, n, -hi - 1, hi, seed * 2 + 2);
        let want = gemm_i8_i32(&a, &b);
        let mut cfg = ExecConfig::guarded(6);
        cfg.adaptive = false;
        cfg.abft = true;
        cfg.schedule_kernels = true;
        let mut machine = OrinConfig::test_small();
        machine.fast_forward = true; // hung-warp timeouts resolve instantly
        machine.fault = FaultConfig {
            enabled: true,
            seed,
            reg_flip_rate: 2e-5,
            dram_flip_rate: 1e-6,
            hang_rate: 1e-6,
        };
        let mut g = Gpu::new(machine, 64 << 20);
        let mut engine = Engine::new();
        engine.set_program_check(program_checker());
        let desc = GemmDesc::from_exec(s, &cfg, &g, m, k, n, Some(seed));
        let id = engine.prepare(desc).expect("prepare");
        for i in 0..4 {
            let out = engine
                .execute(&mut g, id, &a, &b)
                .expect("faults never surface as engine errors");
            assert_eq!(
                out.c,
                want,
                "{} seed {seed} execute {i}: corrupted result escaped recovery",
                s.name()
            );
        }
    }
}

#[test]
fn scheduling_without_a_program_check_is_fail_closed() {
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 21);
    let b = gen::uniform_i8(k, n, -32, 31, 22);
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    cfg.schedule_kernels = true;
    let mut g = gpu(SimMode::Serial, InterpMode::Micro);
    let mut engine = Engine::new(); // no program check installed
    let desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, m, k, n, None);
    let out = engine.run(&mut g, desc, &a, &b).expect("run");
    let stats = engine.stats();
    assert_eq!(stats.sched_applied, 0, "adopted a candidate with no check");
    assert!(
        stats.sched_rejected > 0,
        "no candidate even reached the (absent) check"
    );
    // And the launch is exactly the unscheduled one.
    let (c_off, st_off, _) = run_once(
        Strategy::VitBit,
        6,
        SimMode::Serial,
        InterpMode::Micro,
        false,
        &a,
        &b,
    );
    assert_eq!(out.c, c_off);
    assert_eq!(out.stats.cycles, st_off.cycles);
}
