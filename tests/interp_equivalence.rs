//! Interpreter equivalence: the decoded micro-op fast path
//! ([`InterpMode::Micro`]) must be *invisible* — for every strategy,
//! bitwidth, simulator mode, scheduler policy and fast-forward setting, it
//! produces the same result matrix and the same `KernelStats`, field for
//! field, as the original scanning interpreter ([`InterpMode::Reference`]).
//! That includes the timing-sensitive counters (cycles, per-pipe issue and
//! busy counts, `skipped_cycles`, `fast_forward_jumps`) and the fault
//! counters under seeded injection.
//!
//! Launch-position discipline (as in `plan_equivalence.rs`): L2 state
//! persists across launches on one GPU, so every comparison pairs launch
//! #i on a Micro-configured GPU against launch #i on a Reference-configured
//! twin — never #1 against #2.

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc};
use vitbit::sim::isa::{ICmp, MemWidth, SReg, Src};
use vitbit::sim::program::ProgramBuilder;
use vitbit::sim::{
    FaultConfig, Gpu, InterpMode, Kernel, KernelStats, OrinConfig, SchedPolicy, SimMode,
};
use vitbit::tensor::{gen, Matrix};

const SHAPE: (usize, usize, usize) = (20, 32, 320);

fn gpu(mode: SimMode, interp: InterpMode, fast_forward: bool) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = mode;
    cfg.interp = interp;
    cfg.fast_forward = fast_forward;
    Gpu::new(cfg, 64 << 20)
}

/// Runs one engine GEMM on a fresh GPU and returns (result, stats).
fn run_engine(
    s: Strategy,
    bw: u32,
    mode: SimMode,
    interp: InterpMode,
    ff: bool,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
) -> (Matrix<i32>, KernelStats) {
    let (m, k, n) = SHAPE;
    let cfg = ExecConfig::guarded(bw);
    let mut g = gpu(mode, interp, ff);
    let mut engine = Engine::new();
    let mut desc = GemmDesc::from_exec(s, &cfg, &g, m, k, n, None);
    desc.adaptive = false;
    let out = engine.run(&mut g, desc, a, b).expect("run");
    (out.c, out.stats)
}

#[test]
fn micro_interp_is_bit_identical_for_every_strategy_bitwidth_and_mode() {
    let (m, k, n) = SHAPE;
    for mode in [SimMode::Serial, SimMode::Parallel] {
        for bw in [4u32, 6, 8] {
            let hi = ((1i32 << (bw - 1)) - 1) as i8;
            let a = gen::uniform_i8(m, k, -hi - 1, hi, 300 + u64::from(bw));
            let b = gen::uniform_i8(k, n, -hi - 1, hi, 400 + u64::from(bw));
            for s in Strategy::ALL {
                let (c_ref, st_ref) = run_engine(s, bw, mode, InterpMode::Reference, true, &a, &b);
                let (c_mic, st_mic) = run_engine(s, bw, mode, InterpMode::Micro, true, &a, &b);
                let tag = format!("{} INT{bw} {mode:?}", s.name());
                assert_eq!(c_mic, c_ref, "result mismatch: {tag}");
                assert_eq!(st_mic, st_ref, "stats mismatch: {tag}");
            }
        }
    }
}

#[test]
fn micro_interp_matches_with_fast_forward_disabled() {
    // Fast-forward off removes the idle-cycle skip, which stresses the
    // batched stepping path differently (every cycle is stepped).
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 11);
    let b = gen::uniform_i8(k, n, -32, 31, 12);
    for s in [Strategy::Tc, Strategy::VitBit, Strategy::Tacker] {
        let (c_ref, st_ref) =
            run_engine(s, 6, SimMode::Serial, InterpMode::Reference, false, &a, &b);
        let (c_mic, st_mic) = run_engine(s, 6, SimMode::Serial, InterpMode::Micro, false, &a, &b);
        let tag = s.name();
        assert_eq!(c_mic, c_ref, "{tag}: result mismatch with FF off");
        assert_eq!(st_mic, st_ref, "{tag}: stats mismatch with FF off");
        assert_eq!(st_mic.skipped_cycles, 0, "{tag}: FF off must not skip");
        assert_eq!(st_mic.fast_forward_jumps, 0, "{tag}: FF off must not jump");
    }
}

#[test]
fn recovery_ladder_walks_identically_under_seeded_faults() {
    // Under aggressive injection the engine's recovery ladder absorbs
    // corrupted launches (retry → rebuild → fallback). The ladder's walk is
    // driven by what the simulator does with each faulty launch, so the two
    // interpreters must take the same rungs, end with the same result and
    // report the same engine counters.
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 21);
    let b = gen::uniform_i8(k, n, -32, 31, 22);
    for seed in [1u64, 7, 1234] {
        let run = |interp: InterpMode| {
            let cfg = ExecConfig::guarded(6);
            let mut ocfg = OrinConfig::test_small();
            ocfg.interp = interp;
            let mut fault = FaultConfig::seeded(seed);
            // Aggressive rate: flips land often enough to actually trip
            // the ladder on the test-small shape.
            fault.reg_flip_rate = 5e-3;
            ocfg.fault = fault;
            let mut g = Gpu::new(ocfg, 64 << 20);
            let mut engine = Engine::new();
            let mut desc = GemmDesc::from_exec(Strategy::VitBit, &cfg, &g, m, k, n, None);
            desc.adaptive = false;
            let out = engine.run(&mut g, desc, &a, &b).expect("run");
            (out.c, out.stats, engine.stats())
        };
        let (c_ref, st_ref, eng_ref) = run(InterpMode::Reference);
        let (c_mic, st_mic, eng_mic) = run(InterpMode::Micro);
        assert_eq!(c_mic, c_ref, "seed {seed}: result diverged");
        assert_eq!(st_mic, st_ref, "seed {seed}: stats diverged");
        assert_eq!(
            eng_mic.retries, eng_ref.retries,
            "seed {seed}: ladder retries diverged"
        );
        assert_eq!(
            eng_mic.fallbacks, eng_ref.fallbacks,
            "seed {seed}: ladder fallbacks diverged"
        );
    }
}

#[test]
fn micro_interp_matches_under_seeded_fault_injection() {
    // Direct launches (no recovery ladder in the way): fault decisions key
    // off the per-SM issue stream, so an interpreter that issued even one
    // instruction differently would diverge in faults_injected. A flip
    // that corrupts control flow aborts the launch with a typed
    // `LaunchError::Fault` — then both interpreters must fail with the
    // *same* error, and at least one seed must complete with faults fired.
    let blocks = 24u32;
    let warps = 4u32;
    let run = |interp: InterpMode, seed: u64| -> Result<(Vec<u32>, KernelStats), String> {
        let mut cfg = OrinConfig::test_small();
        cfg.interp = interp;
        let mut fault = FaultConfig::seeded(seed);
        fault.reg_flip_rate = 2e-4;
        cfg.fault = fault;
        let mut g = Gpu::new(cfg, 16 << 20);
        let out = g.mem.alloc(blocks * 4);
        let k = Kernel::single(
            "smem_loop",
            smem_loop_kernel(9).into_arc(),
            blocks,
            warps,
            warps * 32 * 4 + 4,
            vec![out.addr],
        );
        match g.launch(&k) {
            Ok(stats) => Ok((g.mem.download_u32(out, blocks as usize), stats)),
            Err(e) => Err(format!("{e:?}")),
        }
    };
    let mut fired = 0u64;
    let mut completed = 0u32;
    for seed in 1u64..=8 {
        let r = run(InterpMode::Reference, seed);
        let m = run(InterpMode::Micro, seed);
        assert_eq!(m, r, "seed {seed}: outcomes diverged");
        if let Ok((_, stats)) = m {
            completed += 1;
            fired += stats.faults_injected;
        }
    }
    assert!(completed > 0, "every seed aborted — lower the flip rate");
    assert!(
        fired > 0,
        "test is vacuous — no completed seed fired a fault"
    );
}

/// A control-flow-heavy kernel: each warp loops `iters` times, accumulates
/// through shared memory with a barrier per iteration (so warps park and
/// release repeatedly), then lane 0 stores the block's sum. Exercises
/// branches, predication, barriers and the smem pipe — the paths where the
/// micro interpreter's issue gates and wake bounds do real work.
fn smem_loop_kernel(iters: u32) -> vitbit::sim::Program {
    let mut p = ProgramBuilder::new("smem_loop");
    let base = p.alloc();
    let ctaid = p.alloc();
    let tid = p.alloc();
    let saddr = p.alloc();
    let acc = p.alloc();
    let i = p.alloc();
    let tmp = p.alloc();
    let addr = p.alloc();
    let pr = p.alloc_pred();
    let plast = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(tid, SReg::Tid);
    p.imad(saddr, tid.into(), Src::Imm(4), Src::Imm(0));
    p.mov(acc, Src::Imm(0));
    p.mov(i, Src::Imm(0));
    p.label_here("loop");
    // Each thread publishes tid + i, reads its right-hand neighbour's slot
    // (off 4), and accumulates — the barrier makes the read well-defined.
    p.iadd(tmp, tid.into(), i.into());
    p.sts(saddr, 0, tmp.into(), MemWidth::B32);
    p.bar();
    p.lds(tmp, saddr, 4, MemWidth::B32);
    p.iadd(acc, acc.into(), tmp.into());
    p.bar();
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(plast, i.into(), Src::Imm(iters), ICmp::Lt);
    p.bra_if("loop", plast, true);
    // Lane 0 of warp 0 stores acc at out[ctaid].
    p.sreg(tmp, SReg::Tid);
    p.isetp(pr, tmp.into(), Src::Imm(0), ICmp::Eq);
    p.imad(addr, ctaid.into(), Src::Imm(4), base.into());
    p.stg_if(addr, 0, acc.into(), MemWidth::B32, pr);
    p.exit();
    p.build()
}

#[test]
fn micro_interp_matches_on_control_flow_kernel_under_both_schedulers() {
    let blocks = 24u32;
    let warps = 4u32;
    for sched in [SchedPolicy::Gto, SchedPolicy::Lrr] {
        for ff in [true, false] {
            let run = |interp: InterpMode| {
                let mut cfg = OrinConfig::test_small();
                cfg.sched = sched;
                cfg.interp = interp;
                cfg.fast_forward = ff;
                let mut g = Gpu::new(cfg, 16 << 20);
                let out = g.mem.alloc(blocks * 4);
                let k = Kernel::single(
                    "smem_loop",
                    smem_loop_kernel(9).into_arc(),
                    blocks,
                    warps,
                    // +4: the lds at `off 4` reads one slot past the last
                    // thread's own (the neighbour scheme wraps into it).
                    warps * 32 * 4 + 4,
                    vec![out.addr],
                );
                let stats = g.launch(&k).expect("launch");
                (g.mem.download_u32(out, blocks as usize), stats)
            };
            let (out_ref, st_ref) = run(InterpMode::Reference);
            let (out_mic, st_mic) = run(InterpMode::Micro);
            let tag = format!("{sched:?} ff={ff}");
            assert_eq!(out_mic, out_ref, "{tag}: kernel output diverged");
            assert_eq!(st_mic, st_ref, "{tag}: stats diverged");
        }
    }
}

#[test]
fn micro_interp_matches_across_repeat_launches_with_warm_l2() {
    // Launch the same kernel three times on each twin and compare
    // position-for-position: catches any state the micro path would leak
    // across launches (stale gates, wake bounds, decoded-cache slots).
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 31);
    let b = gen::uniform_i8(k, n, -32, 31, 32);
    let cfg = ExecConfig::guarded(8);
    let run3 = |interp: InterpMode| {
        let mut g = gpu(SimMode::Serial, interp, true);
        let mut engine = Engine::new();
        let mut desc = GemmDesc::from_exec(Strategy::Tc, &cfg, &g, m, k, n, Some(1));
        desc.adaptive = false;
        let id = engine.prepare(desc).expect("prepare");
        (0..3)
            .map(|_| {
                let out = engine.execute(&mut g, id, &a, &b).expect("execute");
                (out.c, out.stats)
            })
            .collect::<Vec<_>>()
    };
    let r = run3(InterpMode::Reference);
    let m_ = run3(InterpMode::Micro);
    for (i, ((c_ref, st_ref), (c_mic, st_mic))) in r.iter().zip(m_.iter()).enumerate() {
        assert_eq!(c_mic, c_ref, "launch #{i}: result diverged");
        assert_eq!(st_mic, st_ref, "launch #{i}: stats diverged");
    }
}
