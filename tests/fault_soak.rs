//! Seeded fault-injection soak: under injected register flips, DRAM
//! corruption and hung warps, the plan/execute engine must (a) detect
//! every injected fault that corrupts a GEMM output — the returned result
//! always equals the host reference — and (b) recover via the ladder
//! without hanging or panicking. The checks are exhaustive by
//! construction: if an output-corrupting fault slipped past ABFT, the
//! returned matrix would differ from the reference and the equality
//! assertion would fail.
//!
//! The quick smoke versions run in the default test pass; the full
//! sweep (20+ seeds x strategies x INT{4,6,8}) is `#[ignore]`d and run by
//! the CI fault-soak job with `--ignored`.

use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{Engine, GemmDesc};
use vitbit::sim::{FaultConfig, Gpu, OrinConfig};
use vitbit::tensor::gen;
use vitbit::tensor::refgemm::gemm_i8_i32;

const SHAPE: (usize, usize, usize) = (16, 32, 320);

fn faulty_gpu(seed: u64, reg: f64, dram: f64, hang: f64) -> Gpu {
    let mut cfg = OrinConfig::test_small();
    cfg.fast_forward = true; // hung-warp timeouts resolve instantly
    cfg.fault = FaultConfig {
        enabled: true,
        seed,
        reg_flip_rate: reg,
        dram_flip_rate: dram,
        hang_rate: hang,
    };
    Gpu::new(cfg, 64 << 20)
}

/// One soak cell: several executes of one strategy/bitwidth plan on a
/// faulty machine, every returned result checked against the host
/// reference. Returns the engine fault counters for aggregation.
fn soak_cell(
    strategy: Strategy,
    bitwidth: u32,
    seed: u64,
    rates: (f64, f64, f64),
    executes: usize,
) -> vitbit::plan::EngineStats {
    let (m, k, n) = SHAPE;
    let hi = ((1i32 << (bitwidth - 1)) - 1) as i8;
    let lo = -hi - 1;
    let a = gen::uniform_i8(m, k, lo, hi, seed * 2 + 1);
    let b = gen::uniform_i8(k, n, lo, hi, seed * 2 + 2);
    let want = gemm_i8_i32(&a, &b);
    let (reg, dram, hang) = rates;
    let mut gpu = faulty_gpu(seed, reg, dram, hang);
    let mut engine = Engine::new();
    let mut cfg = ExecConfig::guarded(bitwidth);
    cfg.adaptive = false;
    cfg.abft = true;
    let desc = GemmDesc::from_exec(strategy, &cfg, &gpu, m, k, n, Some(seed));
    let id = engine.prepare(desc).expect("prepare");
    for i in 0..executes {
        let out = engine
            .execute(&mut gpu, id, &a, &b)
            .expect("faults never surface as engine errors");
        assert_eq!(
            out.c,
            want,
            "{} int{} seed {} execute {}: corrupted result escaped ABFT",
            strategy.name(),
            bitwidth,
            seed,
            i
        );
    }
    engine.stats()
}

#[test]
fn smoke_register_faults_are_detected_and_recovered() {
    let mut detected = 0;
    for seed in 0..5 {
        let s = soak_cell(Strategy::VitBit, 6, seed, (5e-4, 0.0, 0.0), 4);
        detected += s.faults_detected;
    }
    // Non-vacuity: at these rates some launches must actually corrupt.
    assert!(detected > 0, "soak rates too low to inject anything");
}

#[test]
fn smoke_hung_warps_time_out_and_recover() {
    // Hangs are caught by the watchdog (LaunchError::Timeout, not a wall
    // hang) and absorbed by the ladder; results stay correct throughout.
    for seed in 0..3 {
        let s = soak_cell(Strategy::VitBit, 6, 100 + seed, (0.0, 0.0, 2e-4), 3);
        // Worst case every rung fails and the host answers — either way
        // the result assertions inside the cell already passed.
        assert!(s.executes == 3, "{s:?}");
    }
}

#[test]
fn faults_off_config_is_inert() {
    // A FaultConfig with enabled=false must behave exactly like the
    // default machine: same results, same cycles, zero fault counters.
    let (m, k, n) = SHAPE;
    let a = gen::uniform_i8(m, k, -32, 31, 51);
    let b = gen::uniform_i8(k, n, -32, 31, 52);
    let run = |cfg: OrinConfig| {
        let mut gpu = Gpu::new(cfg, 64 << 20);
        let mut engine = Engine::new();
        let mut ec = ExecConfig::guarded(6);
        ec.adaptive = false;
        let desc = GemmDesc::from_exec(Strategy::VitBit, &ec, &gpu, m, k, n, Some(1));
        let id = engine.prepare(desc).expect("prepare");
        engine.execute(&mut gpu, id, &a, &b).expect("execute")
    };
    let base = run(OrinConfig::test_small());
    let mut off = OrinConfig::test_small();
    off.fault = FaultConfig {
        enabled: false,
        seed: 12345,
        reg_flip_rate: 0.5,
        dram_flip_rate: 0.5,
        hang_rate: 0.5,
    };
    let with_disabled = run(off);
    assert_eq!(base.c, with_disabled.c);
    assert_eq!(
        base.stats, with_disabled.stats,
        "stats must be bit-identical"
    );
    assert_eq!(base.stats.faults_injected, 0);
    assert_eq!(base.stats.faults_detected, 0);
    assert_eq!(base.stats.abft_check_cycles, 0);
}

/// The full sweep the CI fault-soak job runs: 20 seeds x 4 strategies x
/// INT{4,6,8}, mixing register flips, DRAM corruption and rare hangs.
/// Every cell asserts 100% detection of output-corrupting faults (result
/// equals host reference on every execute) and 100% recovery (no panics,
/// no hangs, no surfaced errors).
#[test]
#[ignore = "heavy sweep; run with --ignored (CI fault-soak job)"]
fn full_seeded_soak_across_strategies_and_bitwidths() {
    let strategies = [
        Strategy::Tc,
        Strategy::Tacker,
        Strategy::TcIcFc,
        Strategy::VitBit,
    ];
    let mut detected = 0u64;
    let mut retries = 0u64;
    for seed in 0..20u64 {
        for &s in &strategies {
            for bw in [4u32, 6, 8] {
                let stats = soak_cell(s, bw, seed, (3e-4, 1e-4, 1e-5), 3);
                detected += stats.faults_detected;
                retries += stats.retries;
            }
        }
    }
    println!("soak: {detected} faults detected, {retries} ladder retries");
    assert!(detected > 0, "sweep must actually inject faults");
    assert!(retries > 0, "ladder must actually engage");
}
