//! Pool-level chaos soak: the serving pool's fault-domain layer must
//! keep its external contract — every accepted ticket completes, in
//! global ticket order, with output payloads bit-identical to a
//! fault-free pool — while individual devices hang, corrupt results, or
//! are evicted outright between waves.
//!
//! The payload oracle is the host reference GEMM: whatever a request's
//! path through the ladder / failover / host fallback, its `out.c` must
//! equal `gemm_i8_i32(a, b)`, and therefore equal the fault-free pool's
//! answer bit for bit. Engine *stats* legitimately differ on a chaotic
//! pool (retries, fallbacks and host answers are the mechanism, not a
//! bug) — determinism of those is covered by the replay sweep, which
//! runs every fifth case twice and demands identical payloads *and*
//! identical pool counters.

use std::collections::BTreeMap;
use vitbit::exec::{ExecConfig, Strategy};
use vitbit::plan::{
    Completion, GemmDesc, GpuPool, HealthPolicy, HealthState, PoolStats, ServePath,
};
use vitbit::sim::{FaultConfig, Gpu, OrinConfig, SimMode};
use vitbit::tensor::refgemm::gemm_i8_i32;
use vitbit::tensor::{gen, Matrix};

const DEVICES: usize = 3;
const MEM: u32 = 64 << 20;

/// Base machine: small topology, cheap timeouts (hung launches cost one
/// fast-forwarded window, not two billion simulated cycles).
fn base_machine() -> OrinConfig {
    let mut cfg = OrinConfig::test_small();
    cfg.sim_mode = SimMode::Serial;
    cfg.max_cycles = 200_000;
    cfg.fast_forward = true;
    cfg
}

fn quiet_fault() -> FaultConfig {
    FaultConfig {
        enabled: false,
        seed: 0,
        reg_flip_rate: 0.0,
        dram_flip_rate: 0.0,
        hang_rate: 0.0,
    }
}

/// Aggressive eviction thresholds so a 6-request case exercises the
/// whole FSM: one quarantine (ladder ran dry) takes the device out.
fn chaos_policy() -> HealthPolicy {
    HealthPolicy {
        degrade_after_faults: 1,
        evict_after_quarantines: 1,
        evict_after_deadline_misses: u64::MAX,
        max_pending: None,
        drain_deadline: None,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scenario {
    /// One device's launches hang (rate swept per seed) and time out.
    Hung,
    /// One device flips destination-register bits; ABFT catches it.
    Corrupting,
    /// No injected faults; the operator evicts one device between
    /// submission waves, forcing ticket + plan failover.
    EvictedMidStream,
}

/// Device configs for one chaos case: `faulty` gets the scenario's
/// fault stream, everyone else is clean.
fn chaos_devices(scenario: Scenario, seed: u64, faulty: usize) -> Vec<OrinConfig> {
    (0..DEVICES)
        .map(|i| {
            let mut cfg = base_machine();
            cfg.fault = quiet_fault();
            if i == faulty {
                match scenario {
                    Scenario::Hung => {
                        cfg.fault = FaultConfig {
                            enabled: true,
                            seed,
                            reg_flip_rate: 0.0,
                            dram_flip_rate: 0.0,
                            hang_rate: [1.0, 0.25, 0.05][(seed % 3) as usize],
                        };
                    }
                    Scenario::Corrupting => {
                        cfg.fault = FaultConfig {
                            enabled: true,
                            seed,
                            reg_flip_rate: [2e-2, 5e-3, 1e-3][(seed % 3) as usize],
                            dram_flip_rate: [0.0, 1e-4, 0.0][(seed % 3) as usize],
                            hang_rate: 0.0,
                        };
                    }
                    Scenario::EvictedMidStream => {}
                }
            }
            cfg
        })
        .collect()
}

/// The request stream for one case: two descs (one weight GEMM, one
/// activation GEMM so async pre-staging runs too), three operand pairs
/// each, ABFT on — corrupted results must be *detected*, never served.
fn stream(seed: u64) -> Vec<(GemmDesc, Matrix<i8>, Matrix<i8>)> {
    let probe = Gpu::new(base_machine(), MEM);
    let mut cfg = ExecConfig::guarded(6);
    cfg.adaptive = false;
    cfg.abft = true;
    let descs = [
        GemmDesc::from_exec(Strategy::Tc, &cfg, &probe, 16, 32, 128, Some(1)),
        GemmDesc::from_exec(Strategy::VitBit, &cfg, &probe, 16, 32, 320, None),
    ];
    let mut out = Vec::new();
    for i in 0..3u64 {
        for d in descs {
            let a = gen::uniform_i8(d.m, d.k, -32, 31, 9000 + seed * 31 + i);
            let b = gen::uniform_i8(d.k, d.n, -32, 31, 9100 + seed * 31 + i);
            out.push((d, a, b));
        }
    }
    out
}

/// Runs one pool over the case's stream in two submit/drain waves,
/// optionally evicting `evict` between them. Returns the completions in
/// drain order plus the pool's final counters.
fn soak(
    mut pool: GpuPool,
    reqs: &[(GemmDesc, Matrix<i8>, Matrix<i8>)],
    evict: Option<usize>,
) -> (Vec<Completion>, PoolStats) {
    let mid = reqs.len() / 2;
    let mut done = Vec::new();
    let mut tickets = Vec::new();
    for (d, a, b) in &reqs[..mid] {
        tickets.push(pool.submit(*d, a.clone(), b.clone()).expect("submit"));
    }
    done.extend(pool.drain());
    if let Some(dev) = evict {
        pool.evict_device(dev);
        assert_eq!(pool.health(dev), HealthState::Evicted);
    }
    for (d, a, b) in &reqs[mid..] {
        tickets.push(pool.submit(*d, a.clone(), b.clone()).expect("submit"));
    }
    done.extend(pool.drain());
    // Contract 1: no accepted ticket is ever dropped, none invented.
    let got: Vec<_> = done.iter().map(|c| c.ticket).collect();
    let mut want = tickets.clone();
    want.sort();
    let mut got_sorted = got.clone();
    got_sorted.sort();
    assert_eq!(
        got_sorted, want,
        "every accepted ticket completes exactly once"
    );
    // Contract 2: completions arrive in global ticket order (each drain
    // sorts, and the waves submit in ticket order).
    for w in done.windows(2) {
        assert!(w[0].ticket < w[1].ticket, "global ticket order");
    }
    (done, pool.pool_stats())
}

/// The home shard of one of the stream's descs in a whole pool —
/// chaos cases aim their fault at a shard that actually sees traffic.
fn traffic_home(reqs: &[(GemmDesc, Matrix<i8>, Matrix<i8>)], which: usize) -> usize {
    let probe_cfgs: Vec<OrinConfig> = (0..DEVICES).map(|_| base_machine()).collect();
    let probe = GpuPool::with_devices(&probe_cfgs, MEM);
    probe.route(&reqs[which % reqs.len()].0)
}

fn run_case(scenario: Scenario, seed: u64) -> (Vec<Completion>, PoolStats) {
    let reqs = stream(seed);
    let faulty = traffic_home(&reqs, seed as usize % 2);
    let chaos = GpuPool::with_devices(&chaos_devices(scenario, seed, faulty), MEM)
        .with_health_policy(chaos_policy());
    let evict = (scenario == Scenario::EvictedMidStream).then_some(faulty);
    soak(chaos, &reqs, evict)
}

#[test]
fn chaos_soak_payloads_match_fault_free_pool_across_seeds() {
    for scenario in [
        Scenario::Hung,
        Scenario::Corrupting,
        Scenario::EvictedMidStream,
    ] {
        for seed in 0..20u64 {
            let reqs = stream(seed);
            // The oracle pool: identical topology, no faults, no
            // eviction — plus the host-reference product per request.
            let clean_cfgs: Vec<OrinConfig> = (0..DEVICES)
                .map(|_| {
                    let mut c = base_machine();
                    c.fault = quiet_fault();
                    c
                })
                .collect();
            let clean = GpuPool::with_devices(&clean_cfgs, MEM).with_health_policy(chaos_policy());
            let (clean_done, clean_stats) = soak(clean, &reqs, None);
            assert_eq!(clean_stats.evictions, 0, "the oracle pool stays whole");

            let (chaos_done, _) = run_case(scenario, seed);
            assert_eq!(chaos_done.len(), clean_done.len());
            let by_ticket: BTreeMap<u64, &Completion> =
                clean_done.iter().map(|c| (c.ticket.id(), c)).collect();
            for (i, c) in chaos_done.iter().enumerate() {
                let tag = format!("{scenario:?} seed {seed} req {i}");
                let out = c.result.as_ref().expect(&tag);
                let want = by_ticket[&c.ticket.id()].result.as_ref().expect(&tag);
                assert_eq!(out.out.c, want.out.c, "{tag}: payload vs fault-free pool");
                let (d, a, b) = &reqs[c.ticket.id() as usize];
                assert_eq!(
                    out.out.c,
                    gemm_i8_i32(a, b),
                    "{tag}: payload vs host oracle"
                );
                assert_eq!(
                    (out.out.c.rows(), out.out.c.cols()),
                    (d.m, d.n),
                    "{tag}: shape"
                );
            }
        }
    }
}

#[test]
fn chaos_cases_replay_identically() {
    // Every fifth case runs twice: the fault-domain layer (health FSM,
    // failover, host fallback) must be a deterministic function of the
    // seeded fault stream — payloads, ladder trails and pool counters.
    for scenario in [Scenario::Hung, Scenario::Corrupting] {
        for seed in (0..20u64).step_by(5) {
            let (first, stats1) = run_case(scenario, seed);
            let (second, stats2) = run_case(scenario, seed);
            assert_eq!(stats1, stats2, "{scenario:?} seed {seed}: pool counters");
            assert_eq!(first.len(), second.len());
            for (x, y) in first.iter().zip(&second) {
                assert_eq!(x.ticket, y.ticket);
                let (ox, oy) = (
                    x.result.as_ref().expect("first"),
                    y.result.as_ref().expect("second"),
                );
                assert_eq!(ox.out.c, oy.out.c, "{scenario:?} seed {seed}: payload");
                assert_eq!(
                    ox.out.stats, oy.out.stats,
                    "{scenario:?} seed {seed}: stats"
                );
                assert_eq!(ox.served, oy.served);
                assert_eq!(ox.faults, oy.faults);
                assert_eq!(ox.retries, oy.retries);
            }
        }
    }
}

#[test]
fn pool_with_evicted_shard_matches_fresh_pool_of_survivors() {
    // The failover-determinism contract: a pool that evicted shard `e`
    // before any traffic routes exactly like a fresh pool of the
    // surviving devices — completions (payloads *and* stats) and
    // per-shard engine counters are bit-identical.
    let reqs = stream(77);
    for evicted in 0..DEVICES {
        let cfgs: Vec<OrinConfig> = (0..DEVICES).map(|_| base_machine()).collect();
        let mut pool_a = GpuPool::with_devices(&cfgs, MEM);
        pool_a.evict_device(evicted);

        let survivor_cfgs: Vec<OrinConfig> = (0..DEVICES - 1).map(|_| base_machine()).collect();
        let mut pool_b = GpuPool::with_devices(&survivor_cfgs, MEM);

        for (d, a, b) in &reqs {
            pool_a.submit(*d, a.clone(), b.clone()).expect("A submit");
            pool_b.submit(*d, a.clone(), b.clone()).expect("B submit");
        }
        let done_a = pool_a.drain();
        let done_b = pool_b.drain();
        assert_eq!(done_a.len(), done_b.len());
        for (x, y) in done_a.iter().zip(&done_b) {
            assert_eq!(x.ticket, y.ticket, "evicted={evicted}: same global stream");
            let (ox, oy) = (x.result.as_ref().expect("A"), y.result.as_ref().expect("B"));
            assert_eq!(ox.out.c, oy.out.c, "evicted={evicted}: payload");
            assert_eq!(
                ox.out.stats, oy.out.stats,
                "evicted={evicted}: launch stats"
            );
        }
        // Shard healthy[i] of A carried exactly shard i of B's stream.
        let stats_a = pool_a.device_stats();
        let stats_b = pool_b.device_stats();
        let healthy: Vec<usize> = (0..DEVICES).filter(|&i| i != evicted).collect();
        for (bi, &ai) in healthy.iter().enumerate() {
            assert_eq!(
                stats_a[ai], stats_b[bi],
                "evicted={evicted}: shard {ai} vs fresh shard {bi}"
            );
        }
    }
}

#[test]
fn parallel_drain_is_bit_identical_to_serial_drain() {
    let reqs = stream(31);
    let cfgs: Vec<OrinConfig> = (0..DEVICES).map(|_| base_machine()).collect();
    let mut par = GpuPool::with_devices(&cfgs, MEM);
    let mut ser = GpuPool::with_devices(&cfgs, MEM);
    for (d, a, b) in &reqs {
        par.submit(*d, a.clone(), b.clone()).expect("submit");
        ser.submit(*d, a.clone(), b.clone()).expect("submit");
    }
    let done_par = par.drain();
    let done_ser = ser.drain_serial();
    assert_eq!(done_par.len(), done_ser.len());
    for (x, y) in done_par.iter().zip(&done_ser) {
        assert_eq!(x.ticket, y.ticket);
        let (ox, oy) = (
            x.result.as_ref().expect("parallel"),
            y.result.as_ref().expect("serial"),
        );
        assert_eq!(ox.out.c, oy.out.c, "parallel vs serial payload");
        assert_eq!(ox.out.stats, oy.out.stats, "parallel vs serial stats");
    }
    assert_eq!(
        par.device_stats(),
        ser.device_stats(),
        "per-shard engine counters are scheduling-invariant"
    );
    assert_eq!(par.pool_stats().parallel_drains, 1);
    assert_eq!(ser.pool_stats().serial_drains, 1);
}

#[test]
fn health_fsm_degrades_on_faults_and_evicts_on_quarantine() {
    let seed = 1u64;
    let reqs = stream(seed);
    let faulty = traffic_home(&reqs, 0);
    let cfgs = chaos_devices(Scenario::Hung, seed, faulty); // hang_rate 0.25
    let mut pool = GpuPool::with_devices(&cfgs, MEM).with_health_policy(HealthPolicy {
        degrade_after_faults: 1,
        evict_after_quarantines: 1,
        evict_after_deadline_misses: u64::MAX,
        max_pending: None,
        drain_deadline: None,
    });
    for s in 0..DEVICES {
        assert_eq!(pool.health(s), HealthState::Healthy);
    }
    // Drive synchronous traffic at the faulty device until its ladder
    // runs dry and the quarantine evicts it.
    let mut evicted = false;
    for _ in 0..6 {
        for (d, a, b) in &reqs {
            let out = pool.run(*d, a, b).expect("run");
            assert_eq!(out.c, gemm_i8_i32(a, b), "payload stays correct throughout");
        }
        if pool.health(faulty) == HealthState::Evicted {
            evicted = true;
            break;
        }
    }
    assert!(evicted, "a device that hangs at rate 0.25 must evict");
    let status = pool.device_status();
    assert_eq!(status[faulty].health, HealthState::Evicted);
    assert!(status[faulty].quarantined_plans >= 1);
    assert!(status[faulty].stats.faults_detected >= 1);
    let ps = pool.pool_stats();
    assert_eq!(ps.evictions, 1);
    // Traffic keeps flowing — and no longer routes at the dead shard.
    let healthy_exec_before: u64 = pool
        .device_status()
        .iter()
        .filter(|s| s.device != faulty)
        .map(|s| s.stats.executes)
        .sum();
    let dead_exec_before = pool.device_status()[faulty].stats.executes;
    for (d, a, b) in &reqs {
        pool.run(*d, a, b).expect("run after eviction");
    }
    assert_eq!(
        pool.device_status()[faulty].stats.executes,
        dead_exec_before,
        "an evicted shard receives no further traffic"
    );
    assert!(
        pool.device_status()
            .iter()
            .filter(|s| s.device != faulty)
            .map(|s| s.stats.executes)
            .sum::<u64>()
            > healthy_exec_before
    );
}

#[test]
fn ticket_failover_rehomes_queued_requests_and_drops_nothing() {
    let reqs = stream(5);
    let cfgs: Vec<OrinConfig> = (0..DEVICES).map(|_| base_machine()).collect();
    let mut pool = GpuPool::with_devices(&cfgs, MEM);
    let mut tickets = Vec::new();
    for (d, a, b) in &reqs {
        tickets.push(pool.submit(*d, a.clone(), b.clone()).expect("submit"));
    }
    // Evict the shard holding the first request while it is queued.
    let victim = pool.route(&reqs[0].0);
    pool.evict_device(victim);
    let ps = pool.pool_stats();
    assert!(ps.tickets_failed_over > 0, "queued tickets must re-home");
    let done = pool.drain();
    assert_eq!(done.len(), reqs.len(), "failover drops nothing");
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.ticket, tickets[i], "global order survives failover");
        let out = c.result.as_ref().expect("completion");
        let (_, a, b) = &reqs[i];
        assert_eq!(out.out.c, gemm_i8_i32(a, b), "request {i} payload");
    }
    assert_eq!(
        pool.device_status()[victim].pending,
        0,
        "nothing left behind on the dead shard"
    );
}

#[test]
fn admission_control_refuses_at_the_bound_without_polluting_stats() {
    let reqs = stream(9);
    let cfgs: Vec<OrinConfig> = (0..1).map(|_| base_machine()).collect();
    let mut pool = GpuPool::with_devices(&cfgs, MEM).with_health_policy(HealthPolicy {
        max_pending: Some(2),
        ..HealthPolicy::default()
    });
    let (d, a, b) = &reqs[0];
    pool.submit(*d, a.clone(), b.clone()).expect("first");
    pool.submit(*d, a.clone(), b.clone()).expect("second");
    let before = pool.device_stats()[0];
    let refused = pool.submit(*d, a.clone(), b.clone());
    match refused {
        Err(vitbit::plan::EngineError::Overloaded { pending, bound }) => {
            assert_eq!((pending, bound), (2, 2));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let after = pool.device_stats()[0];
    assert_eq!(after.overload_rejections, before.overload_rejections + 1);
    assert_eq!(
        after.affinity_hits + after.affinity_misses,
        before.affinity_hits + before.affinity_misses,
        "a refused submit stamps no affinity"
    );
    assert_eq!(pool.pending_count(), 2);
    // Draining frees the queue; the same submission is welcome again.
    let done = pool.drain();
    assert_eq!(done.len(), 2);
    pool.submit(*d, a.clone(), b.clone()).expect("after drain");
}

#[test]
fn fully_evicted_pool_still_answers_from_the_host() {
    let reqs = stream(13);
    let cfgs: Vec<OrinConfig> = (0..2).map(|_| base_machine()).collect();
    let mut pool = GpuPool::with_devices(&cfgs, MEM);
    pool.evict_device(0);
    pool.evict_device(1);
    // Synchronous path.
    let (d, a, b) = &reqs[0];
    let out = pool.run(*d, a, b).expect("run on an empty pool");
    assert_eq!(out.c, gemm_i8_i32(a, b));
    // Async path: parks on the host queue, answers at drain.
    let mut tickets = Vec::new();
    for (d, a, b) in &reqs {
        tickets.push(pool.submit(*d, a.clone(), b.clone()).expect("submit"));
    }
    let done = pool.drain();
    assert_eq!(done.len(), reqs.len());
    for (i, c) in done.iter().enumerate() {
        assert_eq!(c.ticket, tickets[i]);
        let o = c.result.as_ref().expect("host completion");
        assert_eq!(o.served, ServePath::Host);
        let (_, a, b) = &reqs[i];
        assert_eq!(o.out.c, gemm_i8_i32(a, b), "request {i} host payload");
    }
    let ps = pool.pool_stats();
    assert_eq!(ps.evictions, 2);
    assert_eq!(ps.host_answers as usize, 1 + reqs.len());
}

#[test]
fn drain_deadline_misses_evict_through_the_policy() {
    let reqs = stream(21);
    let cfgs: Vec<OrinConfig> = (0..2).map(|_| base_machine()).collect();
    let mut pool = GpuPool::with_devices(&cfgs, MEM).with_health_policy(HealthPolicy {
        degrade_after_faults: u64::MAX,
        evict_after_quarantines: u64::MAX,
        evict_after_deadline_misses: 1,
        max_pending: None,
        // Zero budget: any shard that drains real work misses.
        drain_deadline: Some(std::time::Duration::ZERO),
    });
    for (d, a, b) in &reqs {
        pool.submit(*d, a.clone(), b.clone()).expect("submit");
    }
    let done = pool.drain();
    assert_eq!(done.len(), reqs.len(), "a missed deadline never drops work");
    for (i, c) in done.iter().enumerate() {
        let (_, a, b) = &reqs[i];
        assert_eq!(
            c.result.as_ref().expect("completion").out.c,
            gemm_i8_i32(a, b),
            "request {i}: deadline misses never change payloads"
        );
    }
    let ps = pool.pool_stats();
    assert!(ps.deadline_misses >= 1);
    assert!(
        pool.device_status()
            .iter()
            .any(|s| s.health == HealthState::Evicted),
        "deadline misses feed the eviction threshold"
    );
    // The pool still serves (surviving shards or the host path).
    let (d, a, b) = &reqs[0];
    let out = pool.run(*d, a, b).expect("run after deadline evictions");
    assert_eq!(out.c, gemm_i8_i32(a, b));
}
