//! Error metrics used to compare kernel outputs against references.

use crate::matrix::Matrix;

/// True when two integer matrices are identical (shape and every element).
pub fn exact_match(a: &Matrix<i32>, b: &Matrix<i32>) -> bool {
    a.shape() == b.shape() && a.as_slice() == b.as_slice()
}

/// Maximum absolute elementwise difference between integer matrices.
///
/// # Panics
/// Panics on shape mismatch.
pub fn max_abs_diff_i32(a: &Matrix<i32>, b: &Matrix<i32>) -> i64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (i64::from(x) - i64::from(y)).abs())
        .max()
        .unwrap_or(0)
}

/// Maximum absolute elementwise difference between f32 matrices.
pub fn max_abs_diff_f32(a: &Matrix<f32>, b: &Matrix<f32>) -> f32 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Relative Frobenius-norm error `||a - b||_F / ||b||_F` with `b` the
/// reference; returns 0 for an all-zero reference only if `a` is zero too.
pub fn rel_frobenius_i32(a: &Matrix<i32>, b: &Matrix<i32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = f64::from(x) - f64::from(y);
        num += d * d;
        den += f64::from(y) * f64::from(y);
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Fraction of elements where the two matrices disagree.
pub fn mismatch_rate_i32(a: &Matrix<i32>, b: &Matrix<i32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let n = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .filter(|(x, y)| x != y)
        .count();
    n as f64 / a.len() as f64
}

/// Top-1 agreement between two score matrices: fraction of rows whose argmax
/// matches. This is the paper's "without compromising inference accuracy"
/// check, applied to classifier logits.
pub fn top1_agreement(a: &Matrix<i32>, b: &Matrix<i32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    if a.rows() == 0 {
        return 1.0;
    }
    let argmax = |row: &[i32]| {
        row.iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap()
    };
    let agree = (0..a.rows())
        .filter(|&r| argmax(a.row(r)) == argmax(b.row(r)))
        .count();
    agree as f64 / a.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(v: Vec<i32>) -> Matrix<i32> {
        let n = v.len();
        Matrix::from_vec(1, n, v)
    }

    #[test]
    fn exact_match_detects_equality_and_shape() {
        assert!(exact_match(&m(vec![1, 2]), &m(vec![1, 2])));
        assert!(!exact_match(&m(vec![1, 2]), &m(vec![1, 3])));
        let a = Matrix::from_vec(2, 1, vec![1, 2]);
        assert!(!exact_match(&a, &m(vec![1, 2])));
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff_i32(&m(vec![1, -5]), &m(vec![4, 5])), 10);
        assert_eq!(max_abs_diff_i32(&m(vec![]), &m(vec![])), 0);
        // Extremes must not overflow.
        assert_eq!(
            max_abs_diff_i32(&m(vec![i32::MIN]), &m(vec![i32::MAX])),
            i64::from(i32::MAX) - i64::from(i32::MIN)
        );
    }

    #[test]
    fn rel_frobenius_zero_and_nonzero() {
        assert_eq!(rel_frobenius_i32(&m(vec![0, 0]), &m(vec![0, 0])), 0.0);
        assert!(rel_frobenius_i32(&m(vec![1, 0]), &m(vec![0, 0])).is_infinite());
        let e = rel_frobenius_i32(&m(vec![3, 4]), &m(vec![3, 0]));
        assert!((e - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_rate_counts() {
        assert_eq!(
            mismatch_rate_i32(&m(vec![1, 2, 3, 4]), &m(vec![1, 0, 3, 0])),
            0.5
        );
    }

    #[test]
    fn top1_agreement_rows() {
        let a = Matrix::from_vec(2, 3, vec![1, 9, 2, 7, 1, 1]);
        let b = Matrix::from_vec(2, 3, vec![0, 5, 1, 1, 8, 1]);
        // Row 0 agrees (argmax 1), row 1 disagrees (0 vs 1).
        assert_eq!(top1_agreement(&a, &b), 0.5);
    }

    #[test]
    fn top1_ties_break_to_lowest_index() {
        let a = Matrix::from_vec(1, 3, vec![5, 5, 1]);
        let b = Matrix::from_vec(1, 3, vec![9, 2, 1]);
        assert_eq!(top1_agreement(&a, &b), 1.0);
    }

    #[test]
    fn max_abs_diff_f32_basics() {
        let a = Matrix::from_vec(1, 2, vec![1.0f32, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.5f32, -1.0]);
        assert_eq!(max_abs_diff_f32(&a, &b), 3.0);
    }
}
