//! Minimal randomized-property harness.
//!
//! Replaces the `proptest` dependency (unavailable in hermetic builds) with
//! a deterministic seeded-case loop: each property runs `cases` times with
//! an independent, reproducible generator per case. There is no shrinking —
//! failures report the case seed so the exact inputs can be replayed by
//! seeding a [`SmallRng`] directly.

use crate::rng::SmallRng;

/// Run `f` for `cases` independent cases derived from `seed`.
///
/// Each case receives a fresh generator so property bodies can draw as many
/// values as they like without coupling cases to each other. Panics inside
/// `f` are augmented with the replay seed.
pub fn cases(seed: u64, cases: u32, mut f: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let case_seed = seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (replay seed {case_seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draw a random-length `Vec` with elements produced by `gen`.
pub fn vec_of<T>(
    rng: &mut SmallRng,
    len_range: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    let len = rng.random_range(len_range);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_case_count() {
        let mut n = 0;
        cases(1, 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        cases(9, 5, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        cases(9, 5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1..8, |r| r.next_u32());
            assert!((1..8).contains(&v.len()));
        }
    }
}
