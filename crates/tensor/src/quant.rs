//! Integer quantization in the I-ViT / integer-only convention.
//!
//! A quantized tensor stores `i8` codes `q`; with parameters
//! `{scale, zero_point}` a code represents the real value
//! `scale * (q - zero_point)`. Between layers, integer accumulators are
//! rescaled with *dyadic* arithmetic — multiplication by `m / 2^s` where `m`
//! is an `i32` — so the inference path never touches floating point, which is
//! the property the paper's INT-core execution relies on.

use crate::matrix::Matrix;

/// Affine quantization parameters for an `i8` tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Real-valued step between adjacent codes.
    pub scale: f32,
    /// Code that represents real zero.
    pub zero_point: i32,
}

impl QuantParams {
    /// Symmetric parameters (zero point 0) covering `[-max_abs, max_abs]`.
    pub fn symmetric(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        Self {
            scale,
            zero_point: 0,
        }
    }

    /// Asymmetric parameters covering `[lo, hi]` with the full i8 range.
    pub fn asymmetric(lo: f32, hi: f32) -> Self {
        assert!(hi >= lo, "invalid range [{lo}, {hi}]");
        let span = (hi - lo).max(f32::EPSILON);
        let scale = span / 255.0;
        let zero_point = (-128.0 - lo / scale).round().clamp(-128.0, 127.0) as i32;
        Self { scale, zero_point }
    }

    /// Quantizes a real value to an `i8` code.
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round() as i32 + self.zero_point;
        q.clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Dequantizes an `i8` code back to a real value.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        (q as i32 - self.zero_point) as f32 * self.scale
    }

    /// Quantizes a whole `f32` matrix.
    pub fn quantize_matrix(&self, m: &Matrix<f32>) -> Matrix<i8> {
        m.map(|x| self.quantize(x))
    }

    /// Dequantizes a whole `i8` matrix.
    pub fn dequantize_matrix(&self, m: &Matrix<i8>) -> Matrix<f32> {
        m.map(|q| self.dequantize(q))
    }
}

/// Dyadic rescale factor `multiplier / 2^shift`.
///
/// Requantizing an `i32` accumulator `acc` to the next layer's `i8` domain is
/// `round(acc * multiplier / 2^shift)`, computed entirely in integers with
/// round-half-away-from-zero, as in integer-only inference stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicScale {
    /// Integer multiplier, typically normalized into `[2^30, 2^31)`.
    pub multiplier: i32,
    /// Right shift applied after the widening multiply.
    pub shift: u32,
}

impl DyadicScale {
    /// Identity rescale (`x -> x`).
    pub const IDENTITY: Self = Self {
        multiplier: 1,
        shift: 0,
    };

    /// Approximates a positive real factor as `multiplier / 2^shift` with a
    /// multiplier normalized into `[2^30, 2^31)` (or exactly for factors that
    /// are already dyadic).
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn from_real(factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "dyadic factor must be positive and finite, got {factor}"
        );
        // Normalize factor = frac * 2^exp with frac in [0.5, 1).
        let mut shift = 0i32;
        let mut f = factor;
        while f >= 1.0 {
            f /= 2.0;
            shift -= 1;
        }
        while f < 0.5 {
            f *= 2.0;
            shift += 1;
        }
        // f in [0.5, 1): express as multiplier / 2^31.
        let mut multiplier = (f * f64::from(1u32 << 31)).round() as i64;
        if multiplier == 1i64 << 31 {
            multiplier /= 2;
            shift -= 1;
        }
        let total_shift = 31 + shift;
        assert!(
            (0..=62).contains(&total_shift),
            "factor {factor} out of dyadic range (shift {total_shift})"
        );
        Self {
            multiplier: multiplier as i32,
            shift: total_shift as u32,
        }
    }

    /// Applies the rescale to an `i32` with round-half-away-from-zero.
    #[inline]
    pub fn apply(&self, x: i32) -> i32 {
        let prod = i64::from(x) * i64::from(self.multiplier);
        if self.shift == 0 {
            return prod.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        }
        let rounding = 1i64 << (self.shift - 1);
        let rounded = if prod >= 0 {
            (prod + rounding) >> self.shift
        } else {
            -((-prod + rounding) >> self.shift)
        };
        rounded.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }

    /// Applies the rescale and saturates to `i8`.
    #[inline]
    pub fn apply_to_i8(&self, x: i32) -> i8 {
        self.apply(x).clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// The real factor this dyadic scale approximates.
    pub fn as_real(&self) -> f64 {
        f64::from(self.multiplier) / (1u64 << self.shift) as f64
    }
}

/// Clamps an `i32` matrix into `i8`, the final narrowing step of a
/// requantized layer.
pub fn saturate_i8(m: &Matrix<i32>) -> Matrix<i8> {
    m.map(|x| x.clamp(i8::MIN as i32, i8::MAX as i32) as i8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_round_trip_is_tight() {
        let qp = QuantParams::symmetric(4.0);
        assert_eq!(qp.zero_point, 0);
        for &x in &[-4.0f32, -1.5, 0.0, 0.03, 2.0, 4.0] {
            let q = qp.quantize(x);
            let back = qp.dequantize(q);
            assert!(
                (back - x).abs() <= qp.scale / 2.0 + 1e-6,
                "{x} -> {q} -> {back}"
            );
        }
    }

    #[test]
    fn symmetric_saturates_out_of_range() {
        let qp = QuantParams::symmetric(1.0);
        assert_eq!(qp.quantize(100.0), 127);
        assert_eq!(qp.quantize(-100.0), -128);
    }

    #[test]
    fn asymmetric_covers_range_ends() {
        let qp = QuantParams::asymmetric(0.0, 6.0);
        let lo = qp.quantize(0.0);
        let hi = qp.quantize(6.0);
        assert_eq!(lo, -128);
        assert_eq!(hi, 127);
        assert!((qp.dequantize(lo) - 0.0).abs() < qp.scale);
        assert!((qp.dequantize(hi) - 6.0).abs() < qp.scale);
    }

    #[test]
    fn dyadic_identity() {
        assert_eq!(DyadicScale::IDENTITY.apply(12345), 12345);
        assert_eq!(DyadicScale::IDENTITY.apply(-7), -7);
    }

    #[test]
    fn dyadic_matches_real_factor() {
        for &factor in &[0.5f64, 0.1, 0.0173, 1.0, 3.75, 0.0009] {
            let d = DyadicScale::from_real(factor);
            assert!((d.as_real() - factor).abs() / factor < 1e-6, "{factor}");
            for &x in &[-100_000i32, -37, 0, 1, 999, 1_000_000] {
                let got = d.apply(x);
                let want = (f64::from(x) * factor).round() as i64;
                assert!(
                    (i64::from(got) - want).abs() <= 1,
                    "factor {factor} x {x}: got {got} want {want}"
                );
            }
        }
    }

    #[test]
    fn dyadic_rounds_half_away_from_zero() {
        let d = DyadicScale {
            multiplier: 1,
            shift: 1,
        }; // x / 2
        assert_eq!(d.apply(3), 2); // 1.5 -> 2
        assert_eq!(d.apply(-3), -2); // -1.5 -> -2
        assert_eq!(d.apply(2), 1);
        assert_eq!(d.apply(-2), -1);
    }

    #[test]
    fn apply_to_i8_saturates() {
        let d = DyadicScale::IDENTITY;
        assert_eq!(d.apply_to_i8(1000), 127);
        assert_eq!(d.apply_to_i8(-1000), -128);
        assert_eq!(d.apply_to_i8(-5), -5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dyadic_rejects_nonpositive() {
        let _ = DyadicScale::from_real(0.0);
    }

    #[test]
    fn saturate_i8_matrix() {
        let m = Matrix::from_vec(1, 4, vec![-300, -12, 80, 300]);
        let s = saturate_i8(&m);
        assert_eq!(s.as_slice(), &[-128, -12, 80, 127]);
    }
}
