//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix.
///
/// `rows` is the number of rows (the paper's `K` for the input matrix `B`,
/// which it describes as `N x K` with `N` the width); `cols` is the number of
/// columns. Element `(r, c)` lives at `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a `rows x cols` matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major element slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Returns a copy of columns `[start, start + width)` as a new matrix.
    ///
    /// This is the primitive behind Algorithm 1's column-wise split of the
    /// input matrix into the B1/B2/B3 parts.
    ///
    /// # Panics
    /// Panics if the column range is out of bounds.
    pub fn slice_cols(&self, start: usize, width: usize) -> Self {
        assert!(
            start + width <= self.cols,
            "column slice [{start}, {}) out of bounds for width {}",
            start + width,
            self.cols
        );
        Self::from_fn(self.rows, width, |r, c| self[(r, start + c)])
    }

    /// Concatenates matrices left-to-right (all must share `rows`).
    ///
    /// Inverse of [`Matrix::slice_cols`]; used to reassemble GEMM outputs
    /// produced by different cores.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts disagree.
    pub fn concat_cols(parts: &[&Matrix<T>]) -> Self {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "concat_cols parts must share the row count"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Applies `f` to every element, producing a new matrix of another type.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl<T> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug + Copy + Default> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown = row.len().min(12);
            write!(f, "  {:?}", &row[..shown])?;
            if shown < row.len() {
                write!(f, " ..")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  ..")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_default_values() {
        let m: Matrix<i32> = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as i32);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m[(1, 2)], 12);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1i32, 2, 3]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as i32);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(4, 2)], m[(2, 4)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn slice_and_concat_cols_round_trip() {
        let m = Matrix::from_fn(4, 10, |r, c| (r * 10 + c) as i32);
        let a = m.slice_cols(0, 3);
        let b = m.slice_cols(3, 5);
        let c = m.slice_cols(8, 2);
        assert_eq!(a.shape(), (4, 3));
        assert_eq!(b[(2, 0)], m[(2, 3)]);
        let back = Matrix::concat_cols(&[&a, &b, &c]);
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_cols_checks_bounds() {
        let m: Matrix<i32> = Matrix::zeros(2, 4);
        let _ = m.slice_cols(3, 2);
    }

    #[test]
    fn zero_width_slice_is_allowed() {
        let m: Matrix<i32> = Matrix::zeros(2, 4);
        let s = m.slice_cols(2, 0);
        assert_eq!(s.shape(), (2, 0));
        assert!(s.is_empty());
    }

    #[test]
    fn map_converts_types() {
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as i8);
        let f = m.map(|x| x as f32 * 2.0);
        assert_eq!(f[(1, 1)], 4.0);
    }

    #[test]
    fn row_accessors() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
        assert_eq!(m.row(1), &[3, 4, 5]);
        m.row_mut(0)[2] = 99;
        assert_eq!(m[(0, 2)], 99);
    }
}
