//! Deterministic synthetic data generators.
//!
//! The paper evaluates a pretrained, INT8-quantized ViT-Base; we do not ship
//! ImageNet or HuggingFace weights (see DESIGN.md substitutions), so every
//! experiment draws reproducible synthetic tensors whose ranges match
//! quantized-model statistics: weights roughly zero-centered with a bell
//! shape, activations covering the full signed or unsigned code range.

use crate::matrix::Matrix;
use crate::rng::SmallRng;

/// Uniform `i8` matrix over `[lo, hi]` (inclusive).
pub fn uniform_i8(rows: usize, cols: usize, lo: i8, hi: i8, seed: u64) -> Matrix<i8> {
    assert!(lo <= hi, "invalid range [{lo}, {hi}]");
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        rng.random_range(i16::from(lo)..=i16::from(hi)) as i8
    })
}

/// Uniform matrix over the full range of a `bitwidth`-bit *unsigned* code,
/// i.e. `[0, 2^bitwidth - 1]`, stored in `i8` (requires `bitwidth <= 7` to
/// fit non-negatively, or exactly 8 for the full unsigned byte stored in
/// wraparound form).
pub fn uniform_unsigned_code(rows: usize, cols: usize, bitwidth: u32, seed: u64) -> Matrix<u8> {
    assert!(
        (1..=8).contains(&bitwidth),
        "bitwidth {bitwidth} out of [1,8]"
    );
    let hi: u16 = (1u16 << bitwidth) - 1;
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(0..=hi) as u8)
}

/// Bell-shaped `i8` weights: the sum of four small uniforms, clamped to the
/// signed range of `bitwidth` bits. Mimics the concentrated distribution of
/// trained, symmetric-quantized weights.
pub fn bell_weights_i8(rows: usize, cols: usize, bitwidth: u32, seed: u64) -> Matrix<i8> {
    assert!(
        (2..=8).contains(&bitwidth),
        "bitwidth {bitwidth} out of [2,8]"
    );
    let max = (1i32 << (bitwidth - 1)) - 1;
    let quarter = (max / 2).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        let s: i32 = (0..4).map(|_| rng.random_range(-quarter..=quarter)).sum();
        s.clamp(-max, max) as i8
    })
}

/// Uniform `f32` matrix over `[lo, hi)`.
pub fn uniform_f32(rows: usize, cols: usize, lo: f32, hi: f32, seed: u64) -> Matrix<f32> {
    assert!(lo < hi, "invalid range [{lo}, {hi})");
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Synthetic "image" activations for the ViT embedding: signed codes biased
/// toward small magnitudes, full range reachable.
pub fn activations_i8(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        // 75% small values, 25% full-range: heavy center, real tails.
        if rng.random_range(0u32..4) == 0 {
            rng.random_range(-128i16..=127) as i8
        } else {
            rng.random_range(-32i16..=31) as i8
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_i8_respects_bounds_and_seed() {
        let a = uniform_i8(10, 10, -5, 5, 42);
        assert!(a.as_slice().iter().all(|&x| (-5..=5).contains(&x)));
        let b = uniform_i8(10, 10, -5, 5, 42);
        assert_eq!(a, b, "same seed must reproduce");
        let c = uniform_i8(10, 10, -5, 5, 43);
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn unsigned_code_range() {
        for bw in 1..=8u32 {
            let m = uniform_unsigned_code(8, 8, bw, 1);
            let hi = ((1u16 << bw) - 1) as u8;
            assert!(m.as_slice().iter().all(|&x| x <= hi), "bitwidth {bw}");
        }
    }

    #[test]
    #[should_panic(expected = "out of [1,8]")]
    fn unsigned_code_rejects_wide() {
        let _ = uniform_unsigned_code(1, 1, 9, 0);
    }

    #[test]
    fn bell_weights_bounded_and_centered() {
        let m = bell_weights_i8(50, 50, 8, 3);
        let max = 127i32;
        assert!(m.as_slice().iter().all(|&x| (i32::from(x)).abs() <= max));
        let mean: f64 = m.as_slice().iter().map(|&x| f64::from(x)).sum::<f64>() / m.len() as f64;
        assert!(
            mean.abs() < 8.0,
            "weights should be near zero-mean, mean={mean}"
        );
    }

    #[test]
    fn bell_weights_narrow_bitwidth() {
        let m = bell_weights_i8(30, 30, 4, 9);
        assert!(m.as_slice().iter().all(|&x| (-7..=7).contains(&x)));
    }

    #[test]
    fn activations_cover_tails() {
        let m = activations_i8(64, 64, 11);
        assert!(
            m.as_slice().iter().any(|&x| !(-64..=64).contains(&x)),
            "tails present"
        );
        assert!(
            m.as_slice()
                .iter()
                .filter(|&&x| (-32..=31).contains(&x))
                .count()
                > m.len() / 2
        );
    }

    #[test]
    fn uniform_f32_bounds() {
        let m = uniform_f32(20, 20, -1.0, 1.0, 5);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }
}
