//! Reference GEMM kernels.
//!
//! These are the golden implementations every simulated GPU kernel is checked
//! against. `A` is `M x K`, `B` is `K x N`, the result `C = A * B (+ bias)`
//! is `M x N`. Integer GEMM accumulates in `i32` exactly as the paper's
//! INT-core and Tensor-core paths do.

use crate::matrix::Matrix;

/// Integer GEMM: `C[i][j] = sum_k A[i][k] * B[k][j]`, accumulated in `i32`.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn gemm_i8_i32(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm inner dims: A is {:?}, B is {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &aik) in arow.iter().enumerate() {
            let aik = i32::from(aik);
            if aik == 0 {
                continue;
            }
            let brow = b.row(kk);
            for j in 0..n {
                crow[j] += aik * i32::from(brow[j]);
            }
        }
    }
    let _ = k;
    c
}

/// Integer GEMM, exact as [`gemm_i8_i32`] but shaped for the
/// autovectorizer: the inner loop is a branch-free `i16`-product
/// multiply-accumulate over a pair of unrolled K-steps, which LLVM turns
/// into widening-multiply SIMD on both x86 and aarch64. Every product
/// fits `i16 * i16 -> i32` exactly, so results are bit-identical to the
/// naive kernel for all inputs.
///
/// This is the serving engine's steady-state replay path: once a plan's
/// simulated launch has converged, outputs come from here instead of
/// re-running the simulator, so its wall cost bounds replay throughput.
///
/// # Panics
/// Panics on inner-dimension mismatch.
pub fn gemm_i8_i32_fast(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm inner dims: A is {:?}, B is {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        let mut kk = 0;
        // Two K-steps per pass keeps one accumulator stream busy while the
        // next B row loads, without needing a second accumulator array.
        while kk + 1 < k {
            let a0 = i32::from(arow[kk]);
            let a1 = i32::from(arow[kk + 1]);
            if (a0 | a1) == 0 {
                kk += 2;
                continue;
            }
            let b0 = b.row(kk);
            let b1 = b.row(kk + 1);
            for j in 0..n {
                crow[j] += a0 * i32::from(b0[j]) + a1 * i32::from(b1[j]);
            }
            kk += 2;
        }
        if kk < k {
            let a0 = i32::from(arow[kk]);
            if a0 != 0 {
                let b0 = b.row(kk);
                for j in 0..n {
                    crow[j] += a0 * i32::from(b0[j]);
                }
            }
        }
    }
    c
}

/// Integer GEMM with a per-output-column `i32` bias added to every row.
pub fn gemm_i8_i32_bias(a: &Matrix<i8>, b: &Matrix<i8>, bias: &[i32]) -> Matrix<i32> {
    let mut c = gemm_i8_i32(a, b);
    assert_eq!(bias.len(), c.cols(), "bias length must equal N");
    for i in 0..c.rows() {
        for (x, &bj) in c.row_mut(i).iter_mut().zip(bias) {
            *x += bj;
        }
    }
    c
}

/// f32 GEMM, used as the golden model for the FP-CUDA-core path.
pub fn gemm_f32(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm inner dims: A is {:?}, B is {:?}",
        a.shape(),
        b.shape()
    );
    let (m, _) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    c
}

/// Mixed GEMM used by the FC path of VitBit: integer operands converted to
/// f32 and multiplied on the FP pipe, then rounded back to `i32`.
///
/// For `|A| <= 127`, `|B| <= 127` and `K <= 2^15` every product and partial
/// sum is exactly representable in f32 until the accumulator exceeds 2^24,
/// which a caller must respect; this mirrors the paper's claim that the FC
/// conversion path does not lose accuracy for INT8 inference shapes.
pub fn gemm_i8_via_f32(a: &Matrix<i8>, b: &Matrix<i8>) -> Matrix<i32> {
    let af = a.map(|x| x as f32);
    let bf = b.map(|x| x as f32);
    gemm_f32(&af, &bf).map(|x| x.round() as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    #[test]
    fn identity_gemm() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { 1i8 } else { 0 });
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as i8);
        let c = gemm_i8_i32(&a, &b);
        assert_eq!(c, b.map(i32::from));
    }

    #[test]
    fn known_small_product() {
        let a = Matrix::from_vec(2, 2, vec![1i8, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5i8, 6, 7, 8]);
        let c = gemm_i8_i32(&a, &b);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_dims_panic() {
        let a: Matrix<i8> = Matrix::zeros(2, 3);
        let b: Matrix<i8> = Matrix::zeros(4, 2);
        let _ = gemm_i8_i32(&a, &b);
    }

    #[test]
    fn bias_is_per_column() {
        let a = Matrix::from_vec(1, 1, vec![1i8]);
        let b = Matrix::from_vec(1, 3, vec![1i8, 2, 3]);
        let c = gemm_i8_i32_bias(&a, &b, &[10, 20, 30]);
        assert_eq!(c.as_slice(), &[11, 22, 33]);
    }

    #[test]
    fn f32_path_matches_integer_path_for_int8_inputs() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = Matrix::from_fn(9, 33, |_, _| rng.random_range(-128i16..=127) as i8);
        let b = Matrix::from_fn(33, 11, |_, _| rng.random_range(-128i16..=127) as i8);
        assert_eq!(gemm_i8_via_f32(&a, &b), gemm_i8_i32(&a, &b));
    }

    #[test]
    fn fast_gemm_matches_naive_exactly() {
        let mut rng = SmallRng::seed_from_u64(11);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (9, 33, 11), (17, 64, 13), (5, 65, 8)] {
            let a = Matrix::from_fn(m, k, |_, _| rng.random_range(-128i16..=127) as i8);
            let b = Matrix::from_fn(k, n, |_, _| rng.random_range(-128i16..=127) as i8);
            assert_eq!(
                gemm_i8_i32_fast(&a, &b),
                gemm_i8_i32(&a, &b),
                "shape {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn fast_gemm_extremes_and_zero_rows() {
        // Saturating inputs plus all-zero A rows (the skip path).
        let a = Matrix::from_fn(4, 256, |r, c| {
            if r == 2 {
                0i8
            } else if (r + c) % 2 == 0 {
                127
            } else {
                -128
            }
        });
        let b = Matrix::from_fn(256, 3, |r, _| if r % 3 == 0 { -128i8 } else { 127 });
        assert_eq!(gemm_i8_i32_fast(&a, &b), gemm_i8_i32(&a, &b));
    }

    #[test]
    fn extreme_values_do_not_overflow_i32() {
        // 256 accumulations of 127 * -128 stays well inside i32.
        let a = Matrix::from_fn(1, 256, |_, _| 127i8);
        let b = Matrix::from_fn(256, 1, |_, _| -128i8);
        let c = gemm_i8_i32(&a, &b);
        assert_eq!(c[(0, 0)], 127 * -128 * 256);
    }
}
