//! Dense matrix types, quantization helpers, and reference GEMM kernels.
//!
//! This crate is the numeric substrate shared by the whole VitBit
//! reproduction: every GPU-simulated kernel in `vitbit-kernels` is validated
//! against the reference implementations here, and the integer ViT model in
//! `vitbit-vit` builds its layers on these types.
//!
//! Design notes:
//! * Matrices are dense, row-major, and generic over a small closed set of
//!   element types (`i8`, `i32`, `u32`, `f32`). There is no striding or
//!   broadcasting — the paper's workloads only need plain GEMM-shaped data.
//! * Quantization follows the integer-only (I-ViT style) convention: an
//!   `i8` value `q` with [`QuantParams`] `{scale, zero_point}` represents
//!   the real number `scale * (q - zero_point)`. Requantization between
//!   layers uses dyadic (multiplier, shift) arithmetic so that the entire
//!   inference path stays in integers, matching Section 4.1 of the paper.

pub mod check;
pub mod gen;
pub mod matrix;
pub mod metrics;
pub mod quant;
pub mod refgemm;
pub mod rng;

pub use matrix::Matrix;
pub use quant::{DyadicScale, QuantParams};
pub use rng::SmallRng;
