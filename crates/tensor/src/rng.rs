//! Self-contained deterministic PRNG.
//!
//! The workspace builds in hermetic environments with no access to a crates
//! registry, so the usual `rand` crate is replaced by this minimal
//! implementation. It mirrors the small slice of the `rand` API the
//! reproduction uses (`SmallRng::seed_from_u64` + `random_range`) so call
//! sites read identically: generators are seeded explicitly and every draw
//! is reproducible across platforms.
//!
//! The generator is xoshiro256++ (public domain, Blackman & Vigna), seeded
//! through SplitMix64 as its authors recommend.

use std::ops::{Range, RangeInclusive};

/// Small, fast, seedable generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range, matching `rand::Rng::random_range`.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw from `[0, 2^64)` scaled into span `[0, span)` without
    /// modulo bias (widening-multiply method).
    fn bounded(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0 && span <= (1u128 << 64));
        (u128::from(self.next_u64()) * span) >> 64
    }
}

/// Range types accepted by [`SmallRng::random_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                (self.start as $wide).wrapping_add(rng.bounded(span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                (lo as $wide).wrapping_add(rng.bounded(span) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, u8 => u64, i16 => i64, u16 => u64, i32 => i64, u32 => u64,
    i64 => i64, u64 => u64, usize => u64, isize => i64,
);

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut SmallRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i16..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.random_range(0u32..4);
            assert!(u < 4);
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let z = rng.random_range(3usize..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match rng.random_range(0u16..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_i8_range_representable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..100_000 {
            match rng.random_range(-128i16..=127) {
                -128 => seen_min = true,
                127 => seen_max = true,
                _ => {}
            }
        }
        assert!(seen_min && seen_max);
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
