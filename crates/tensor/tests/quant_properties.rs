//! Property tests for the quantization substrate: round-trip error bounds,
//! dyadic rescale accuracy, and GEMM linearity identities.

use vitbit_tensor::check;
use vitbit_tensor::refgemm::{gemm_f32, gemm_i8_i32, gemm_i8_via_f32};
use vitbit_tensor::{gen, DyadicScale, Matrix, QuantParams};

/// Symmetric quantization round-trips within half a step.
#[test]
fn prop_symmetric_quant_error_bound() {
    check::cases(0x40a7_0001, 256, |rng| {
        let max_abs = rng.random_range(0.01f32..100.0);
        let xs = check::vec_of(rng, 1..64, |r| r.random_range(-1.0f32..1.0));
        let qp = QuantParams::symmetric(max_abs);
        for x in xs {
            let v = x * max_abs;
            let back = qp.dequantize(qp.quantize(v));
            assert!((back - v).abs() <= qp.scale / 2.0 + 1e-5);
        }
    });
}

/// Dyadic rescaling tracks the real factor to within one count.
#[test]
fn prop_dyadic_matches_real() {
    check::cases(0x40a7_0002, 256, |rng| {
        let factor = rng.random_range(1e-4f64..50.0);
        let x = rng.random_range(-1_000_000i32..1_000_000);
        let d = DyadicScale::from_real(factor);
        let got = i64::from(d.apply(x));
        let want = (f64::from(x) * factor).round() as i64;
        assert!((got - want).abs() <= 1, "{x} * {factor}: {got} vs {want}");
    });
}

/// GEMM is linear: (A1 + A2) * B == A1*B + A2*B over i32 accumulators
/// (inputs small enough that the sum stays in i8).
#[test]
fn prop_gemm_linearity() {
    check::cases(0x40a7_0003, 128, |rng| {
        let m = rng.random_range(1usize..6);
        let n = rng.random_range(1usize..6);
        let k = rng.random_range(1usize..12);
        let seed = rng.random_range(0u64..500);
        let a1 = gen::uniform_i8(m, k, -30, 30, seed);
        let a2 = gen::uniform_i8(m, k, -30, 30, seed + 1);
        let b = gen::uniform_i8(k, n, -64, 63, seed + 2);
        let a_sum = Matrix::from_fn(m, k, |r, c| a1[(r, c)] + a2[(r, c)]);
        let lhs = gemm_i8_i32(&a_sum, &b);
        let c1 = gemm_i8_i32(&a1, &b);
        let c2 = gemm_i8_i32(&a2, &b);
        let rhs = Matrix::from_fn(m, n, |r, c| c1[(r, c)] + c2[(r, c)]);
        assert_eq!(lhs, rhs);
    });
}

/// The f32 GEMM path is exact for integer operands with bounded K.
#[test]
fn prop_f32_path_exact_for_small_k() {
    check::cases(0x40a7_0004, 128, |rng| {
        let m = rng.random_range(1usize..5);
        let n = rng.random_range(1usize..5);
        let k = rng.random_range(1usize..64);
        let seed = rng.random_range(0u64..300);
        let a = gen::uniform_i8(m, k, -128, 127, seed);
        let b = gen::uniform_i8(k, n, -128, 127, seed + 1);
        assert_eq!(gemm_i8_via_f32(&a, &b), gemm_i8_i32(&a, &b));
    });
}

/// Transposition identity: (A * B)^T == B^T * A^T (f32 path).
#[test]
fn prop_gemm_transpose_identity() {
    check::cases(0x40a7_0005, 128, |rng| {
        let m = rng.random_range(1usize..5);
        let n = rng.random_range(1usize..5);
        let k = rng.random_range(1usize..8);
        let seed = rng.random_range(0u64..200);
        let a = gen::uniform_f32(m, k, -2.0, 2.0, seed);
        let b = gen::uniform_f32(k, n, -2.0, 2.0, seed + 1);
        let lhs = gemm_f32(&a, &b).transpose();
        let rhs = gemm_f32(&b.transpose(), &a.transpose());
        for r in 0..n {
            for c in 0..m {
                assert!((lhs[(r, c)] - rhs[(r, c)]).abs() < 1e-4);
            }
        }
    });
}

#[test]
fn asymmetric_quant_represents_relu_ranges() {
    // A [0, 6] activation range must use the full code book.
    let qp = QuantParams::asymmetric(0.0, 6.0);
    let codes: Vec<i8> = (0..=60).map(|i| qp.quantize(i as f32 * 0.1)).collect();
    let distinct: std::collections::BTreeSet<i8> = codes.iter().copied().collect();
    assert!(
        distinct.len() > 40,
        "fine-grained coverage: {}",
        distinct.len()
    );
    assert!((qp.dequantize(qp.quantize(3.0)) - 3.0).abs() < qp.scale);
}
