//! The ViT forward pass executed kernel-by-kernel on the simulated GPU.
//!
//! Mirrors [`crate::reference`] exactly, but every Linear runs through the
//! strategy's GEMM kernels and every attention-block operator through the
//! strategy's CUDA-kernel variant, collecting per-kernel statistics — the
//! measurement loop behind Figures 5–10.
//!
//! ## Plan/execute shape
//!
//! The forward pass is split into two phases. [`VitPlan::build`] resolves
//! every Linear site of the encoder into a [`vitbit_plan::PlanId`] —
//! weight GEMMs (`wq`/`wk`/`wv`/`wo`/`fc1`/`fc2`) get one plan per weight,
//! activation GEMMs (attention scores, `probs x V`) share one plan per
//! shape across all heads and blocks — and [`run_vit_planned`] executes
//! the encoder loop against those ids. On a shared [`Engine`], repeated
//! forward passes re-pack nothing and re-resolve nothing: the second pass
//! reports `plan_build_cycles == 0` on every Linear launch. The legacy
//! one-shot drivers ([`run_vit`], [`run_vit_cached`]) remain as
//! `#[deprecated]` shims over this machinery.
//!
//! Orientation note (see DESIGN.md): GEMMs run as `X x W`, so the *packed*
//! operand is the stationary weight matrix. The SWAR arithmetic and the
//! instruction-count effects are identical to the paper's input-side
//! packing; the packing preprocessing moves to weight-setup time.

use crate::model::{requant, ViTModel};
use crate::reference;
use vitbit_exec::{ExecConfig, PackedWeightCache, Strategy};
use vitbit_kernels::elementwise::{run_layernorm, run_map, run_softmax, MapOp};
use vitbit_plan::{Engine, GemmDesc, PlanId};
use vitbit_sim::{Gpu, KernelStats};
use vitbit_tensor::Matrix;

/// Which figure family a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// GEMM-based Linear kernels (Figure 6).
    Linear,
    /// CUDA-core kernels: softmax, GELU, LayerNorm, dropout, add (Figure 7).
    Cuda,
}

/// Statistics of one kernel launch within the pipeline.
#[derive(Debug, Clone)]
pub struct LayerTiming {
    /// Kernel site name (`qkv`, `scores`, `softmax`, ...).
    pub name: &'static str,
    /// Encoder block index.
    pub block: usize,
    /// Figure family.
    pub class: KernelClass,
    /// Launch statistics.
    pub stats: KernelStats,
}

/// Result of a (partially) simulated forward pass.
#[derive(Debug, Clone)]
pub struct VitRun {
    /// Classifier logits (`1 x classes`).
    pub logits: Matrix<i32>,
    /// Per-kernel statistics of the simulated blocks.
    pub timings: Vec<LayerTiming>,
    /// Blocks that ran on the simulator (the rest, if any, completed on the
    /// CPU reference path for functional continuity).
    pub simulated_blocks: usize,
}

impl VitRun {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.timings.iter().map(|t| t.stats.cycles).sum()
    }

    /// Total cycles of one kernel class.
    pub fn cycles_of(&self, class: KernelClass) -> u64 {
        self.timings
            .iter()
            .filter(|t| t.class == class)
            .map(|t| t.stats.cycles)
            .sum()
    }

    /// Aggregated statistics over all simulated kernels.
    pub fn aggregate(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for t in &self.timings {
            total.accumulate(&t.stats);
        }
        total.name = "vit_total".into();
        total
    }

    /// Sums cycles per kernel site name (for per-layer figures).
    pub fn cycles_by_name(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for t in &self.timings {
            match out.iter_mut().find(|(n, _)| *n == t.name) {
                Some((_, c)) => *c += t.stats.cycles,
                None => out.push((t.name, t.stats.cycles)),
            }
        }
        out
    }

    /// Total plan-build work attributed to this run's launches (zero when
    /// every plan was already materialized — the engine hot path).
    pub fn plan_build_cycles(&self) -> u64 {
        self.timings.iter().map(|t| t.stats.plan_build_cycles).sum()
    }
}

/// Stable identity of one weight matrix inside a model, for the
/// packed-weight cache: the global block index tagged with the site.
/// Ids are unique per distinct weight as long as the same cache is only
/// reused with the same model (see the keying rules in
/// `vitbit_kernels::gemm::cache`).
fn weight_id(global_block: usize, site: u64) -> u64 {
    debug_assert!(site < 8);
    ((global_block as u64) << 3) | site
}

/// One prepared Linear site: the engine handle plus the desc it resolves,
/// kept so the pipeline can re-prepare when the handle goes stale (LRU
/// eviction on a small plan cache).
#[derive(Debug, Clone, Copy)]
struct Site {
    id: PlanId,
    desc: GemmDesc,
}

/// The prepared Linear sites of one encoder block.
#[derive(Debug, Clone, Copy)]
struct BlockPlans {
    wq: Site,
    wk: Site,
    wv: Site,
    /// Attention scores `q_h x k_h^T` — activation GEMM, one plan shared
    /// by every head (same shape, no stationary weight).
    scores: Site,
    /// `probs_h x v_h` — activation GEMM, likewise shared.
    attn_v: Site,
    proj: Site,
    fc1: Site,
    fc2: Site,
}

/// Executes one Linear site, absorbing a stale handle: an evicted plan is
/// re-prepared from its desc and retried once. Engine-level faults never
/// surface here — [`Engine::execute`] owns that recovery ladder.
fn exec_site(
    gpu: &mut Gpu,
    engine: &mut Engine,
    site: &Site,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
) -> vitbit_plan::GemmOut {
    match engine.execute(gpu, site.id, a, b) {
        Ok(out) => out,
        Err(_) => {
            // A desc that was admitted once re-verifies identically: the
            // verifier is a pure function of the desc.
            let id = engine
                .prepare(site.desc)
                .expect("re-prepare of a previously admitted desc");
            engine
                .execute(gpu, id, a, b)
                .expect("freshly prepared plan with desc-derived shapes")
        }
    }
}

/// Executes one Linear site over a whole request batch through
/// [`Engine::execute_batch`], with the same stale-handle absorption as
/// [`exec_site`]: an evicted plan is re-prepared from its desc and the
/// batch retried once.
fn exec_site_batch(
    gpu: &mut Gpu,
    engine: &mut Engine,
    site: &Site,
    reqs: &[(&Matrix<i8>, &Matrix<i8>)],
) -> Vec<vitbit_plan::RequestOutcome> {
    match engine.execute_batch(gpu, site.id, reqs) {
        Ok(batch) => batch.outcomes,
        Err(_) => {
            let id = engine
                .prepare(site.desc)
                .expect("re-prepare of a previously admitted desc");
            engine
                .execute_batch(gpu, id, reqs)
                .expect("freshly prepared plan with desc-derived shapes")
                .outcomes
        }
    }
}

/// A prepared ViT forward pass: one [`PlanId`] per Linear site of every
/// simulated block. Build once per (model, strategy, config, GPU knobs)
/// with [`VitPlan::build`], execute per input with [`run_vit_planned`].
#[derive(Debug, Clone)]
pub struct VitPlan {
    /// Strategy the plans were resolved for.
    pub strategy: Strategy,
    /// Execution parameters the plans were resolved for.
    pub cfg: ExecConfig,
    blocks: Vec<BlockPlans>,
}

impl VitPlan {
    /// Resolves every Linear site of the first `blocks_limit` encoder
    /// blocks (all when `None`) into engine plans. Pure host-side work —
    /// no GPU launches; weights are staged lazily by the first execute of
    /// each plan.
    ///
    /// # Panics
    /// Panics when `exec_cfg.bitwidth` disagrees with the model's, or
    /// when `exec_cfg.verify_plans` is set and a site's plan fails
    /// static verification (an unverifiable pipeline must not be built).
    pub fn build(
        engine: &mut Engine,
        gpu: &Gpu,
        model: &ViTModel,
        strategy: Strategy,
        exec_cfg: &ExecConfig,
        blocks_limit: Option<usize>,
    ) -> VitPlan {
        let cfg = &model.cfg;
        assert_eq!(
            exec_cfg.bitwidth, cfg.bitwidth,
            "config bitwidths must agree"
        );
        let sim_blocks = blocks_limit.unwrap_or(cfg.blocks).min(cfg.blocks);
        let (t, d, hd, mlp) = (cfg.tokens, cfg.dim, cfg.head_dim, cfg.mlp_dim);
        let weight_desc = |gb: usize, site: u64, m: usize, k: usize, n: usize| {
            GemmDesc::from_exec(strategy, exec_cfg, gpu, m, k, n, Some(weight_id(gb, site)))
        };
        let act_desc = |m: usize, k: usize, n: usize| {
            GemmDesc::from_exec(strategy, exec_cfg, gpu, m, k, n, None)
        };
        let blocks = (0..sim_blocks)
            .map(|b| {
                let gb = b + model.block_offset;
                let mut site = |desc: GemmDesc| Site {
                    id: engine.prepare(desc).expect("site plan must verify"),
                    desc,
                };
                BlockPlans {
                    wq: site(weight_desc(gb, 0, t, d, d)),
                    wk: site(weight_desc(gb, 1, t, d, d)),
                    wv: site(weight_desc(gb, 2, t, d, d)),
                    scores: site(act_desc(t, hd, t)),
                    attn_v: site(act_desc(t, t, hd)),
                    proj: site(weight_desc(gb, 3, t, d, d)),
                    fc1: site(weight_desc(gb, 4, t, d, mlp)),
                    fc2: site(weight_desc(gb, 5, t, mlp, d)),
                }
            })
            .collect();
        VitPlan {
            strategy,
            cfg: *exec_cfg,
            blocks,
        }
    }

    /// Blocks this plan covers (the rest of the model runs on the CPU
    /// reference tail).
    pub fn simulated_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Executes a prepared forward pass: the encoder loop of
/// [`crate::reference`], with every Linear going through
/// [`Engine::execute`] on the plan's ids and every attention-block
/// operator through the strategy's CUDA-kernel variant. Repeated calls on
/// the same engine re-pack and re-resolve nothing.
pub fn run_vit_planned(
    gpu: &mut Gpu,
    engine: &mut Engine,
    plan: &VitPlan,
    model: &ViTModel,
    input: &Matrix<i8>,
) -> VitRun {
    let cfg = &model.cfg;
    let strategy = plan.strategy;
    let exec_cfg = &plan.cfg;
    let bw = cfg.bitwidth;
    // Non-linear CUDA kernels use the per-op variant (VitBit packs only
    // where SWAR stays lane-exact without unpacking); the residual add is
    // fully packable.
    let ew = strategy.ew_variant_for(exec_cfg, false);
    // The residual add is LSU-bound: the dual-pipe IC+FC split beats the
    // packed single-pipe form here too (measured; see EXPERIMENTS.md).
    let ew_add = strategy.ew_variant_for(exec_cfg, false);
    let ew_rows = strategy.ew_variant_rows(exec_cfg);
    let sim_blocks = plan.simulated_blocks().min(cfg.blocks);
    let mut timings = Vec::new();
    let mut x = input.clone();

    for b in 0..sim_blocks {
        let w = &model.blocks[b];
        let s = &model.shifts[b];
        let p = &plan.blocks[b];
        let mut record = |name: &'static str, class: KernelClass, stats: KernelStats| {
            timings.push(LayerTiming {
                name,
                block: b,
                class,
                stats,
            });
        };

        // --- attention half ---
        let ln1 = run_layernorm(gpu, &x, model.ln_gamma, model.ln_beta, ew_rows, bw);
        record("layernorm", KernelClass::Cuda, ln1.stats.clone());
        let h = ln1.out;

        let qo = exec_site(gpu, engine, &p.wq, &h, &w.wq);
        let ko = exec_site(gpu, engine, &p.wk, &h, &w.wk);
        let vo = exec_site(gpu, engine, &p.wv, &h, &w.wv);
        let mut qkv_stats = qo.stats.clone();
        qkv_stats.accumulate(&ko.stats);
        qkv_stats.accumulate(&vo.stats);
        record("qkv", KernelClass::Linear, qkv_stats);
        let q = requant(&qo.c, s.qkv, bw);
        let k = requant(&ko.c, s.qkv, bw);
        let v = requant(&vo.c, s.qkv, bw);

        // Scores per head, then one stacked softmax over all heads' rows.
        let mut scores_stats = KernelStats::default();
        let mut score_mats = Vec::with_capacity(cfg.heads);
        for hd in 0..cfg.heads {
            let qh = q.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let kh = k.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let out = exec_site(gpu, engine, &p.scores, &qh, &kh.transpose());
            scores_stats.accumulate(&out.stats);
            score_mats.push(requant(&out.c, s.score, bw));
        }
        record("scores", KernelClass::Linear, scores_stats);
        let stacked = stack_rows(&score_mats);
        let sm = run_softmax(gpu, &stacked, ew_rows, bw);
        record("softmax", KernelClass::Cuda, sm.stats.clone());
        let probs_all = sm.out;

        let mut attn_stats = KernelStats::default();
        let mut head_outs = Vec::with_capacity(cfg.heads);
        for hd in 0..cfg.heads {
            let probs = slice_rows(&probs_all, hd * cfg.tokens, cfg.tokens);
            let vh = v.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let out = exec_site(gpu, engine, &p.attn_v, &probs, &vh);
            attn_stats.accumulate(&out.stats);
            head_outs.push(requant(&out.c, s.attnv, bw));
        }
        record("attn_v", KernelClass::Linear, attn_stats);
        let refs: Vec<&Matrix<i8>> = head_outs.iter().collect();
        let attn = Matrix::concat_cols(&refs);

        let proj = exec_site(gpu, engine, &p.proj, &attn, &w.wo);
        record("proj", KernelClass::Linear, proj.stats.clone());
        let o = requant(&proj.c, s.proj, bw);
        let dseed = reference::dropout_seed(b + model.block_offset, 0);
        let dop = MapOp::Dropout {
            seed: dseed,
            keep_q8: model.keep_q8,
        };
        let od = run_map(gpu, dop, ew, bw, o.as_slice(), None);
        record("dropout", KernelClass::Cuda, od.stats.clone());
        let o = Matrix::from_vec(o.rows(), o.cols(), od.out);
        let ad = run_map(
            gpu,
            MapOp::Add,
            ew_add,
            bw,
            x.as_slice(),
            Some(o.as_slice()),
        );
        record("residual", KernelClass::Cuda, ad.stats.clone());
        x = Matrix::from_vec(x.rows(), x.cols(), ad.out);

        // --- MLP half ---
        let ln2 = run_layernorm(gpu, &x, model.ln_gamma, model.ln_beta, ew_rows, bw);
        record("layernorm", KernelClass::Cuda, ln2.stats.clone());
        let h2 = ln2.out;
        let f1 = exec_site(gpu, engine, &p.fc1, &h2, &w.fc1);
        record("fc1", KernelClass::Linear, f1.stats.clone());
        let f = requant(&f1.c, s.fc1, bw);
        let ge = run_map(gpu, MapOp::Gelu, ew, bw, f.as_slice(), None);
        record("gelu", KernelClass::Cuda, ge.stats.clone());
        let f = Matrix::from_vec(f.rows(), f.cols(), ge.out);
        let f2 = exec_site(gpu, engine, &p.fc2, &f, &w.fc2);
        record("fc2", KernelClass::Linear, f2.stats.clone());
        let g = requant(&f2.c, s.fc2, bw);
        let dseed = reference::dropout_seed(b + model.block_offset, 1);
        let dop = MapOp::Dropout {
            seed: dseed,
            keep_q8: model.keep_q8,
        };
        let gd = run_map(gpu, dop, ew, bw, g.as_slice(), None);
        record("dropout", KernelClass::Cuda, gd.stats.clone());
        let g = Matrix::from_vec(g.rows(), g.cols(), gd.out);
        let ad2 = run_map(
            gpu,
            MapOp::Add,
            ew_add,
            bw,
            x.as_slice(),
            Some(g.as_slice()),
        );
        record("residual", KernelClass::Cuda, ad2.stats.clone());
        x = Matrix::from_vec(x.rows(), x.cols(), ad2.out);
    }

    // Finish un-simulated blocks on the CPU reference path.
    let logits = if sim_blocks == cfg.blocks {
        let cls = Matrix::from_vec(1, cfg.dim, x.row(0).to_vec());
        vitbit_tensor::refgemm::gemm_i8_i32(&cls, &model.w_cls)
    } else {
        let mut tail = model.clone();
        tail.blocks = model.blocks[sim_blocks..].to_vec();
        tail.shifts = model.shifts[sim_blocks..].to_vec();
        tail.cfg.blocks = cfg.blocks - sim_blocks;
        tail.block_offset = model.block_offset + sim_blocks;
        reference::forward(&tail, &x)
    };

    VitRun {
        logits,
        timings,
        simulated_blocks: sim_blocks,
    }
}

/// Executes a prepared forward pass over a whole batch of inputs in
/// site-major lockstep: all requests advance through the encoder
/// together, and every Linear site serves the batch with one
/// [`Engine::execute_batch`] call — weight plans see `inputs.len()`
/// back-to-back launches, the shared activation plans (`scores`,
/// `attn_v`) see `inputs.len() x heads`. That request pressure is what
/// lets the engine's steady-state replay engage within a single batched
/// forward pass instead of across passes.
///
/// Kernel values are order-independent, so each input's logits are
/// bit-identical to a dedicated [`run_vit_planned`] call; per-launch
/// *timing* reflects the interleaved L2 history of the batch, which is
/// the serving-path behavior being measured. Returns one [`VitRun`] per
/// input, in input order.
///
/// # Panics
/// Panics when `inputs` is empty.
pub fn run_vit_batch(
    gpu: &mut Gpu,
    engine: &mut Engine,
    plan: &VitPlan,
    model: &ViTModel,
    inputs: &[Matrix<i8>],
) -> Vec<VitRun> {
    assert!(!inputs.is_empty(), "batch must contain at least one input");
    let cfg = &model.cfg;
    let strategy = plan.strategy;
    let exec_cfg = &plan.cfg;
    let bw = cfg.bitwidth;
    let ew = strategy.ew_variant_for(exec_cfg, false);
    let ew_add = strategy.ew_variant_for(exec_cfg, false);
    let ew_rows = strategy.ew_variant_rows(exec_cfg);
    let sim_blocks = plan.simulated_blocks().min(cfg.blocks);
    let n = inputs.len();
    let mut xs: Vec<Matrix<i8>> = inputs.to_vec();
    let mut timings: Vec<Vec<LayerTiming>> = vec![Vec::new(); n];

    for b in 0..sim_blocks {
        let w = &model.blocks[b];
        let s = &model.shifts[b];
        let p = &plan.blocks[b];

        // --- attention half ---
        let mut hs = Vec::with_capacity(n);
        for (i, x) in xs.iter().enumerate() {
            let ln = run_layernorm(gpu, x, model.ln_gamma, model.ln_beta, ew_rows, bw);
            timings[i].push(LayerTiming {
                name: "layernorm",
                block: b,
                class: KernelClass::Cuda,
                stats: ln.stats.clone(),
            });
            hs.push(ln.out);
        }

        let reqs: Vec<_> = hs.iter().map(|h| (h, &w.wq)).collect();
        let qo = exec_site_batch(gpu, engine, &p.wq, &reqs);
        let reqs: Vec<_> = hs.iter().map(|h| (h, &w.wk)).collect();
        let ko = exec_site_batch(gpu, engine, &p.wk, &reqs);
        let reqs: Vec<_> = hs.iter().map(|h| (h, &w.wv)).collect();
        let vo = exec_site_batch(gpu, engine, &p.wv, &reqs);
        let mut qs = Vec::with_capacity(n);
        let mut ks = Vec::with_capacity(n);
        let mut vs = Vec::with_capacity(n);
        for i in 0..n {
            let mut qkv_stats = qo[i].out.stats.clone();
            qkv_stats.accumulate(&ko[i].out.stats);
            qkv_stats.accumulate(&vo[i].out.stats);
            timings[i].push(LayerTiming {
                name: "qkv",
                block: b,
                class: KernelClass::Linear,
                stats: qkv_stats,
            });
            qs.push(requant(&qo[i].out.c, s.qkv, bw));
            ks.push(requant(&ko[i].out.c, s.qkv, bw));
            vs.push(requant(&vo[i].out.c, s.qkv, bw));
        }

        // Scores across the whole batch x heads on the one shared
        // activation plan, then one stacked softmax per input.
        let mut score_reqs = Vec::with_capacity(n * cfg.heads);
        for i in 0..n {
            for hd in 0..cfg.heads {
                let qh = qs[i].slice_cols(hd * cfg.head_dim, cfg.head_dim);
                let kh = ks[i].slice_cols(hd * cfg.head_dim, cfg.head_dim);
                score_reqs.push((qh, kh.transpose()));
            }
        }
        let refs: Vec<_> = score_reqs.iter().map(|(a, t)| (a, t)).collect();
        let score_outs = exec_site_batch(gpu, engine, &p.scores, &refs);
        let mut probs = Vec::with_capacity(n);
        for i in 0..n {
            let mut scores_stats = KernelStats::default();
            let mut score_mats = Vec::with_capacity(cfg.heads);
            for hd in 0..cfg.heads {
                let out = &score_outs[i * cfg.heads + hd].out;
                scores_stats.accumulate(&out.stats);
                score_mats.push(requant(&out.c, s.score, bw));
            }
            timings[i].push(LayerTiming {
                name: "scores",
                block: b,
                class: KernelClass::Linear,
                stats: scores_stats,
            });
            let sm = run_softmax(gpu, &stack_rows(&score_mats), ew_rows, bw);
            timings[i].push(LayerTiming {
                name: "softmax",
                block: b,
                class: KernelClass::Cuda,
                stats: sm.stats.clone(),
            });
            probs.push(sm.out);
        }

        let mut attn_reqs = Vec::with_capacity(n * cfg.heads);
        for i in 0..n {
            for hd in 0..cfg.heads {
                let ph = slice_rows(&probs[i], hd * cfg.tokens, cfg.tokens);
                let vh = vs[i].slice_cols(hd * cfg.head_dim, cfg.head_dim);
                attn_reqs.push((ph, vh));
            }
        }
        let refs: Vec<_> = attn_reqs.iter().map(|(a, v)| (a, v)).collect();
        let attn_outs = exec_site_batch(gpu, engine, &p.attn_v, &refs);
        let mut attns = Vec::with_capacity(n);
        for i in 0..n {
            let mut attn_stats = KernelStats::default();
            let mut head_outs = Vec::with_capacity(cfg.heads);
            for hd in 0..cfg.heads {
                let out = &attn_outs[i * cfg.heads + hd].out;
                attn_stats.accumulate(&out.stats);
                head_outs.push(requant(&out.c, s.attnv, bw));
            }
            timings[i].push(LayerTiming {
                name: "attn_v",
                block: b,
                class: KernelClass::Linear,
                stats: attn_stats,
            });
            let head_refs: Vec<&Matrix<i8>> = head_outs.iter().collect();
            attns.push(Matrix::concat_cols(&head_refs));
        }

        let reqs: Vec<_> = attns.iter().map(|a| (a, &w.wo)).collect();
        let proj_outs = exec_site_batch(gpu, engine, &p.proj, &reqs);
        for i in 0..n {
            timings[i].push(LayerTiming {
                name: "proj",
                block: b,
                class: KernelClass::Linear,
                stats: proj_outs[i].out.stats.clone(),
            });
            let o = requant(&proj_outs[i].out.c, s.proj, bw);
            let dseed = reference::dropout_seed(b + model.block_offset, 0);
            let dop = MapOp::Dropout {
                seed: dseed,
                keep_q8: model.keep_q8,
            };
            let od = run_map(gpu, dop, ew, bw, o.as_slice(), None);
            timings[i].push(LayerTiming {
                name: "dropout",
                block: b,
                class: KernelClass::Cuda,
                stats: od.stats.clone(),
            });
            let o = Matrix::from_vec(o.rows(), o.cols(), od.out);
            let ad = run_map(
                gpu,
                MapOp::Add,
                ew_add,
                bw,
                xs[i].as_slice(),
                Some(o.as_slice()),
            );
            timings[i].push(LayerTiming {
                name: "residual",
                block: b,
                class: KernelClass::Cuda,
                stats: ad.stats.clone(),
            });
            xs[i] = Matrix::from_vec(xs[i].rows(), xs[i].cols(), ad.out);
        }

        // --- MLP half ---
        let mut h2s = Vec::with_capacity(n);
        for (i, x) in xs.iter().enumerate() {
            let ln = run_layernorm(gpu, x, model.ln_gamma, model.ln_beta, ew_rows, bw);
            timings[i].push(LayerTiming {
                name: "layernorm",
                block: b,
                class: KernelClass::Cuda,
                stats: ln.stats.clone(),
            });
            h2s.push(ln.out);
        }
        let reqs: Vec<_> = h2s.iter().map(|h| (h, &w.fc1)).collect();
        let f1_outs = exec_site_batch(gpu, engine, &p.fc1, &reqs);
        let mut fs = Vec::with_capacity(n);
        for i in 0..n {
            timings[i].push(LayerTiming {
                name: "fc1",
                block: b,
                class: KernelClass::Linear,
                stats: f1_outs[i].out.stats.clone(),
            });
            let f = requant(&f1_outs[i].out.c, s.fc1, bw);
            let ge = run_map(gpu, MapOp::Gelu, ew, bw, f.as_slice(), None);
            timings[i].push(LayerTiming {
                name: "gelu",
                block: b,
                class: KernelClass::Cuda,
                stats: ge.stats.clone(),
            });
            fs.push(Matrix::from_vec(f.rows(), f.cols(), ge.out));
        }
        let reqs: Vec<_> = fs.iter().map(|f| (f, &w.fc2)).collect();
        let f2_outs = exec_site_batch(gpu, engine, &p.fc2, &reqs);
        for i in 0..n {
            timings[i].push(LayerTiming {
                name: "fc2",
                block: b,
                class: KernelClass::Linear,
                stats: f2_outs[i].out.stats.clone(),
            });
            let g = requant(&f2_outs[i].out.c, s.fc2, bw);
            let dseed = reference::dropout_seed(b + model.block_offset, 1);
            let dop = MapOp::Dropout {
                seed: dseed,
                keep_q8: model.keep_q8,
            };
            let gd = run_map(gpu, dop, ew, bw, g.as_slice(), None);
            timings[i].push(LayerTiming {
                name: "dropout",
                block: b,
                class: KernelClass::Cuda,
                stats: gd.stats.clone(),
            });
            let g = Matrix::from_vec(g.rows(), g.cols(), gd.out);
            let ad = run_map(
                gpu,
                MapOp::Add,
                ew_add,
                bw,
                xs[i].as_slice(),
                Some(g.as_slice()),
            );
            timings[i].push(LayerTiming {
                name: "residual",
                block: b,
                class: KernelClass::Cuda,
                stats: ad.stats.clone(),
            });
            xs[i] = Matrix::from_vec(xs[i].rows(), xs[i].cols(), ad.out);
        }
    }

    xs.into_iter()
        .zip(timings)
        .map(|(x, timings)| {
            let logits = if sim_blocks == cfg.blocks {
                let cls = Matrix::from_vec(1, cfg.dim, x.row(0).to_vec());
                vitbit_tensor::refgemm::gemm_i8_i32(&cls, &model.w_cls)
            } else {
                let mut tail = model.clone();
                tail.blocks = model.blocks[sim_blocks..].to_vec();
                tail.shifts = model.shifts[sim_blocks..].to_vec();
                tail.cfg.blocks = cfg.blocks - sim_blocks;
                tail.block_offset = model.block_offset + sim_blocks;
                reference::forward(&tail, &x)
            };
            VitRun {
                logits,
                timings,
                simulated_blocks: sim_blocks,
            }
        })
        .collect()
}

/// Runs the forward pass under `strategy`, simulating the first
/// `blocks_limit` blocks (all when `None`). The remaining blocks run on the
/// CPU reference path so the logits stay meaningful.
///
/// Packs weights into a fresh per-call engine; to amortize weight packing
/// and plan building across repeated forward passes, build a [`VitPlan`]
/// on a shared [`Engine`] and call [`run_vit_planned`].
#[deprecated(
    since = "0.2.0",
    note = "build a `VitPlan` on a shared `vitbit_plan::Engine` and call `run_vit_planned`"
)]
pub fn run_vit(
    gpu: &mut Gpu,
    model: &ViTModel,
    input: &Matrix<i8>,
    strategy: Strategy,
    exec_cfg: &ExecConfig,
    blocks_limit: Option<usize>,
) -> VitRun {
    let mut engine = Engine::new();
    let plan = VitPlan::build(&mut engine, gpu, model, strategy, exec_cfg, blocks_limit);
    run_vit_planned(gpu, &mut engine, &plan, model, input)
}

/// [`run_vit`] reusing a caller-held packed-weight cache: each encoder
/// block's stationary weights (`wq`/`wk`/`wv`/`wo`/`fc1`/`fc2`) are packed
/// once per (weight, spec, split geometry) and served from the cache on
/// every later launch — including across repeated forward passes. The
/// activation-valued GEMMs (attention scores, `probs x V`) never cache.
///
/// The cache must not be reused across different models (weight ids are
/// model-relative); clear it when the weights change.
#[deprecated(
    since = "0.2.0",
    note = "build a `VitPlan` on a shared `vitbit_plan::Engine` (which owns the weight cache) and call `run_vit_planned`"
)]
pub fn run_vit_cached(
    gpu: &mut Gpu,
    model: &ViTModel,
    input: &Matrix<i8>,
    strategy: Strategy,
    exec_cfg: &ExecConfig,
    blocks_limit: Option<usize>,
    cache: &mut PackedWeightCache,
) -> VitRun {
    let mut engine = Engine::new();
    std::mem::swap(cache, engine.weights_mut());
    let plan = VitPlan::build(&mut engine, gpu, model, strategy, exec_cfg, blocks_limit);
    let run = run_vit_planned(gpu, &mut engine, &plan, model, input);
    std::mem::swap(cache, engine.weights_mut());
    run
}

fn stack_rows(mats: &[Matrix<i8>]) -> Matrix<i8> {
    let cols = mats[0].cols();
    let rows: usize = mats.iter().map(|m| m.rows()).sum();
    let mut out = Matrix::zeros(rows, cols);
    let mut r0 = 0;
    for m in mats {
        assert_eq!(m.cols(), cols);
        for r in 0..m.rows() {
            out.row_mut(r0 + r).copy_from_slice(m.row(r));
        }
        r0 += m.rows();
    }
    out
}

fn slice_rows(m: &Matrix<i8>, start: usize, count: usize) -> Matrix<i8> {
    Matrix::from_fn(count, m.cols(), |r, c| m[(start + r, c)])
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::ViTConfig;
    use vitbit_sim::OrinConfig;

    fn setup() -> (Gpu, ViTModel, ExecConfig) {
        let gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
        let model = ViTModel::new(ViTConfig::tiny(), 11);
        let cfg = ExecConfig::guarded(model.cfg.bitwidth);
        (gpu, model, cfg)
    }

    #[test]
    fn ic_strategy_matches_reference_bit_exactly() {
        let (mut gpu, model, cfg) = setup();
        let x = model.synthetic_input(1);
        let want = reference::forward(&model, &x);
        let run = run_vit(&mut gpu, &model, &x, Strategy::Ic, &cfg, None);
        assert_eq!(run.logits, want, "IC pipeline must be bit-exact");
        assert!(run.total_cycles() > 0);
        assert_eq!(run.simulated_blocks, 2);
    }

    #[test]
    fn tc_strategy_matches_reference_bit_exactly() {
        let (mut gpu, model, cfg) = setup();
        let x = model.synthetic_input(2);
        let want = reference::forward(&model, &x);
        let run = run_vit(&mut gpu, &model, &x, Strategy::Tc, &cfg, None);
        assert_eq!(run.logits, want);
        let agg = run.aggregate();
        assert!(agg.tc_ops > 0, "TC strategy must use tensor cores");
    }

    #[test]
    fn vitbit_strategy_accuracy_maintained() {
        // The paper's claim is statistical ("without compromising inference
        // accuracy"): over several inputs, VitBit's logits must stay close
        // to the integer reference and the top-1 decision must almost
        // always agree (the FP-share elementwise kernels may differ by a
        // couple of codes per layer).
        let (mut gpu, model, cfg) = setup();
        let argmax = |m: &Matrix<i32>| {
            m.row(0)
                .iter()
                .enumerate()
                .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap()
        };
        let mut agree = 0;
        let n_inputs = 6;
        let mut saw_all_pipes = false;
        for seed in 0..n_inputs {
            let x = model.synthetic_input(100 + seed);
            let want = reference::forward(&model, &x);
            let run = run_vit(&mut gpu, &model, &x, Strategy::VitBit, &cfg, None);
            if argmax(&run.logits) == argmax(&want) {
                agree += 1;
            }
            // The FP map bodies are bit-exact (cvt.rmi); the FP row shares
            // differ from the integer spec only in the final float
            // normalization, so logits stay close.
            let scale = want
                .as_slice()
                .iter()
                .map(|v| v.abs())
                .max()
                .unwrap()
                .max(1);
            let dev = run
                .logits
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap();
            assert!(
                (dev as f64) < 0.4 * scale as f64,
                "logit deviation {dev} too large vs scale {scale} (seed {seed})"
            );
            let agg = run.aggregate();
            saw_all_pipes |= agg.tc_ops > 0 && agg.int_ops > 0 && agg.fp_ops > 0;
        }
        assert!(
            agree * 3 >= n_inputs * 2,
            "top-1 agreement {agree}/{n_inputs}"
        );
        assert!(saw_all_pipes, "VitBit must use TC, INT and FP pipes");
    }

    #[test]
    fn blocks_limit_continues_on_reference() {
        let (mut gpu, model, cfg) = setup();
        let x = model.synthetic_input(4);
        let want = reference::forward(&model, &x);
        let run = run_vit(&mut gpu, &model, &x, Strategy::Ic, &cfg, Some(1));
        assert_eq!(run.simulated_blocks, 1);
        assert_eq!(run.logits, want, "IC + reference tail stays exact");
        // Only one block's kernels were timed.
        assert!(run.timings.iter().all(|t| t.block == 0));
    }

    #[test]
    fn timings_cover_both_kernel_classes() {
        let (mut gpu, model, cfg) = setup();
        let x = model.synthetic_input(5);
        let run = run_vit(&mut gpu, &model, &x, Strategy::Ic, &cfg, Some(1));
        assert!(run.cycles_of(KernelClass::Linear) > 0);
        assert!(run.cycles_of(KernelClass::Cuda) > 0);
        let names: Vec<_> = run.cycles_by_name().into_iter().map(|(n, _)| n).collect();
        for expect in [
            "qkv",
            "scores",
            "softmax",
            "attn_v",
            "proj",
            "fc1",
            "gelu",
            "fc2",
            "layernorm",
            "dropout",
            "residual",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn planned_rerun_does_zero_build_work() {
        // The tentpole property end to end: the second forward pass over a
        // shared engine reuses every plan — no packing, no policy work.
        let (mut gpu, model, cfg) = setup();
        let x = model.synthetic_input(6);
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::VitBit, &cfg, Some(1));
        let first = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
        assert!(first.plan_build_cycles() > 0, "cold pass builds plans");
        let weight_misses = engine.weights().misses();
        let second = run_vit_planned(&mut gpu, &mut engine, &plan, &model, &x);
        assert_eq!(
            second.plan_build_cycles(),
            0,
            "hot pass must do zero plan-build work"
        );
        assert_eq!(
            engine.weights().misses(),
            weight_misses,
            "hot pass must not re-pack any weight"
        );
        assert_eq!(first.logits, second.logits);
        let agg = second.aggregate();
        assert!(agg.plan_cache_hits > 0 && agg.plan_cache_misses == 0);
    }

    #[test]
    fn batched_forward_matches_dedicated_runs_bit_exactly() {
        // Kernel values are order-independent: every input's logits out of
        // the site-major batched pass must equal a dedicated sequential
        // planned pass on a fresh machine.
        let (mut gpu, model, cfg) = setup();
        let inputs: Vec<_> = (0..3).map(|s| model.synthetic_input(20 + s)).collect();
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::Ic, &cfg, Some(1));
        let runs = run_vit_batch(&mut gpu, &mut engine, &plan, &model, &inputs);
        assert_eq!(runs.len(), inputs.len());
        assert!(engine.stats().batches > 0, "linear sites must batch");
        assert_eq!(
            engine.stats().batch_requests % inputs.len() as u64,
            0,
            "every site serves the whole batch"
        );
        for (i, (run, x)) in runs.iter().zip(&inputs).enumerate() {
            let mut g = Gpu::new(OrinConfig::test_small(), 128 << 20);
            let mut e = Engine::new();
            let p = VitPlan::build(&mut e, &g, &model, Strategy::Ic, &cfg, Some(1));
            let solo = run_vit_planned(&mut g, &mut e, &p, &model, x);
            assert_eq!(run.logits, solo.logits, "input {i} logits must match");
            assert_eq!(run.simulated_blocks, solo.simulated_blocks);
            assert!(run.total_cycles() > 0);
        }
    }

    #[test]
    fn batched_forward_reaches_steady_state_replay() {
        // The shared activation plans (`scores`, `probs x V`) see
        // heads x batch requests back to back; once the L2 reaches its
        // fixed point the engine must start replaying instead of
        // re-simulating, and the logits must not change.
        let (mut gpu, model, cfg) = setup();
        let inputs: Vec<_> = (0..4).map(|s| model.synthetic_input(40 + s)).collect();
        let want: Vec<_> = inputs
            .iter()
            .map(|x| reference::forward(&model, x))
            .collect();
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &gpu, &model, Strategy::Ic, &cfg, Some(1));
        let runs = run_vit_batch(&mut gpu, &mut engine, &plan, &model, &inputs);
        for (run, want) in runs.iter().zip(&want) {
            assert_eq!(&run.logits, want, "IC batched pipeline stays bit-exact");
        }
        assert!(
            engine.stats().replayed_executes > 0,
            "batched serving must reach steady-state replay (stats: {:?})",
            engine.stats()
        );
    }

    #[test]
    fn planned_path_matches_legacy_shim() {
        // Differential: fresh-engine planned execution must equal the
        // deprecated one-shot driver launch for launch (same launches,
        // same L2 evolution, same cycles).
        let (_, model, cfg) = setup();
        let x = model.synthetic_input(7);
        let mut g1 = Gpu::new(OrinConfig::test_small(), 128 << 20);
        let legacy = run_vit(&mut g1, &model, &x, Strategy::VitBit, &cfg, Some(1));
        let mut g2 = Gpu::new(OrinConfig::test_small(), 128 << 20);
        let mut engine = Engine::new();
        let plan = VitPlan::build(&mut engine, &g2, &model, Strategy::VitBit, &cfg, Some(1));
        let planned = run_vit_planned(&mut g2, &mut engine, &plan, &model, &x);
        assert_eq!(legacy.logits, planned.logits);
        assert_eq!(legacy.total_cycles(), planned.total_cycles());
    }
}
