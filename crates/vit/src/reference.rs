//! CPU integer reference pipeline — the ground truth every GPU strategy is
//! validated against, and the recorder used for shift calibration.
//!
//! Every operation here has the exact semantics of the corresponding
//! simulated kernel's integer path (`vitbit_kernels::elementwise::hostref`
//! and `vitbit_tensor::refgemm`).

use crate::model::{requant, BlockShifts, ViTModel};
use vitbit_kernels::elementwise::hostref;
use vitbit_tensor::refgemm::gemm_i8_i32;
use vitbit_tensor::Matrix;

/// Deterministic dropout seed for (block, site).
pub fn dropout_seed(block: usize, site: u32) -> u32 {
    (block as u32) * 16 + site + 0x5EED
}

/// Applies LayerNorm to every row.
pub fn ln_rows(x: &Matrix<i8>, gamma_q6: i32, beta: i32, bitwidth: u32) -> Matrix<i8> {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = hostref::ilayernorm_row_i(x.row(r), gamma_q6, beta, bitwidth);
        out.row_mut(r).copy_from_slice(&row);
    }
    out
}

/// Applies Shiftmax to every row.
pub fn softmax_rows(x: &Matrix<i8>, bitwidth: u32) -> Matrix<i8> {
    let mut out = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = hostref::shiftmax_row_i(x.row(r), bitwidth);
        out.row_mut(r).copy_from_slice(&row);
    }
    out
}

/// Elementwise ShiftGELU.
pub fn gelu_mat(x: &Matrix<i8>, bitwidth: u32) -> Matrix<i8> {
    x.map(|v| hostref::shiftgelu_i(i32::from(v), bitwidth))
}

/// Elementwise dropout with global element indices.
pub fn dropout_mat(x: &Matrix<i8>, seed: u32, keep_q8: u32, bitwidth: u32) -> Matrix<i8> {
    let cols = x.cols();
    Matrix::from_fn(x.rows(), cols, |r, c| {
        hostref::dropout_i(
            i32::from(x[(r, c)]),
            (r * cols + c) as u32,
            seed,
            keep_q8,
            bitwidth,
        )
    })
}

/// Saturating residual add.
pub fn add_mat(a: &Matrix<i8>, b: &Matrix<i8>, bitwidth: u32) -> Matrix<i8> {
    assert_eq!(a.shape(), b.shape());
    Matrix::from_fn(a.rows(), a.cols(), |r, c| {
        hostref::add_i(i32::from(a[(r, c)]), i32::from(b[(r, c)]), bitwidth)
    })
}

fn max_abs(m: &Matrix<i32>) -> i64 {
    m.as_slice()
        .iter()
        .map(|&x| i64::from(x).abs())
        .max()
        .unwrap_or(0)
}

enum Mode<'a> {
    Frozen,
    Calibrate(&'a mut Vec<BlockShifts>),
}

/// Runs the reference forward pass, returning the classifier logits
/// (`1 x classes`, i32).
pub fn forward(model: &ViTModel, input: &Matrix<i8>) -> Matrix<i32> {
    forward_impl(model, input, Mode::Frozen)
}

/// Calibration pass: records the shift at every requantization point.
pub fn calibrate_shifts(model: &ViTModel, input: &Matrix<i8>) -> Vec<BlockShifts> {
    let mut shifts = vec![BlockShifts::default(); model.cfg.blocks];
    let _ = forward_impl(model, input, Mode::Calibrate(&mut shifts));
    shifts
}

fn forward_impl(model: &ViTModel, input: &Matrix<i8>, mut mode: Mode<'_>) -> Matrix<i32> {
    let cfg = &model.cfg;
    let bw = cfg.bitwidth;
    assert_eq!(input.shape(), (cfg.tokens, cfg.dim), "input shape");
    let mut x = input.clone();

    for b in 0..cfg.blocks {
        let w = &model.blocks[b];
        // Resolve the shift for a site: either the frozen value or one
        // computed (and recorded) from this accumulator.
        let mut site = |acc: &Matrix<i32>,
                        pick: fn(&BlockShifts) -> u32,
                        store: fn(&mut BlockShifts, u32)|
         -> u32 {
            match &mut mode {
                Mode::Frozen => pick(&model.shifts[b]),
                Mode::Calibrate(shifts) => {
                    let s = ViTModel::shift_for(max_abs(acc), bw).max(pick(&shifts[b]));
                    store(&mut shifts[b], s);
                    s
                }
            }
        };

        // Attention half.
        let h = ln_rows(&x, model.ln_gamma, model.ln_beta, bw);
        let q_acc = gemm_i8_i32(&h, &w.wq);
        let k_acc = gemm_i8_i32(&h, &w.wk);
        let v_acc = gemm_i8_i32(&h, &w.wv);
        let s_qkv = {
            let m = max_abs(&q_acc).max(max_abs(&k_acc)).max(max_abs(&v_acc));
            let probe = Matrix::from_vec(1, 1, vec![m as i32]);
            site(&probe, |s| s.qkv, |s, v| s.qkv = v)
        };
        let q = requant(&q_acc, s_qkv, bw);
        let k = requant(&k_acc, s_qkv, bw);
        let v = requant(&v_acc, s_qkv, bw);

        let mut head_outputs = Vec::with_capacity(cfg.heads);
        let mut s_score = 0;
        let mut s_attnv = 0;
        // First pass over heads to settle shared shifts during calibration.
        for hd in 0..cfg.heads {
            let qh = q.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let kh = k.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let scores_acc = gemm_i8_i32(&qh, &kh.transpose());
            s_score = s_score.max(site(&scores_acc, |s| s.score, |s, v| s.score = v));
            let _ = hd;
        }
        for hd in 0..cfg.heads {
            let qh = q.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let kh = k.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let vh = v.slice_cols(hd * cfg.head_dim, cfg.head_dim);
            let scores_acc = gemm_i8_i32(&qh, &kh.transpose());
            let scores = requant(&scores_acc, s_score, bw);
            let probs = softmax_rows(&scores, bw);
            let attn_acc = gemm_i8_i32(&probs, &vh);
            s_attnv = s_attnv.max(site(&attn_acc, |s| s.attnv, |s, v| s.attnv = v));
            head_outputs.push((probs, vh));
        }
        let heads_q: Vec<Matrix<i8>> = head_outputs
            .iter()
            .map(|(probs, vh)| requant(&gemm_i8_i32(probs, vh), s_attnv, bw))
            .collect();
        let refs: Vec<&Matrix<i8>> = heads_q.iter().collect();
        let attn = Matrix::concat_cols(&refs);

        let proj_acc = gemm_i8_i32(&attn, &w.wo);
        let s_proj = site(&proj_acc, |s| s.proj, |s, v| s.proj = v);
        let o = requant(&proj_acc, s_proj, bw);
        let o = dropout_mat(
            &o,
            dropout_seed(b + model.block_offset, 0),
            model.keep_q8,
            bw,
        );
        x = add_mat(&x, &o, bw);

        // MLP half.
        let h2 = ln_rows(&x, model.ln_gamma, model.ln_beta, bw);
        let f_acc = gemm_i8_i32(&h2, &w.fc1);
        let s_fc1 = site(&f_acc, |s| s.fc1, |s, v| s.fc1 = v);
        let f = gelu_mat(&requant(&f_acc, s_fc1, bw), bw);
        let g_acc = gemm_i8_i32(&f, &w.fc2);
        let s_fc2 = site(&g_acc, |s| s.fc2, |s, v| s.fc2 = v);
        let g = requant(&g_acc, s_fc2, bw);
        let g = dropout_mat(
            &g,
            dropout_seed(b + model.block_offset, 1),
            model.keep_q8,
            bw,
        );
        x = add_mat(&x, &g, bw);
    }

    // Classifier on the CLS token (row 0).
    let cls = Matrix::from_vec(1, cfg.dim, x.row(0).to_vec());
    gemm_i8_i32(&cls, &model.w_cls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ViTConfig;

    #[test]
    fn forward_is_deterministic_and_shaped() {
        let m = ViTModel::new(ViTConfig::tiny(), 1);
        let x = m.synthetic_input(5);
        let a = forward(&m, &x);
        let b = forward(&m, &x);
        assert_eq!(a, b);
        assert_eq!(a.shape(), (1, 10));
    }

    #[test]
    fn different_inputs_give_different_logits() {
        let m = ViTModel::new(ViTConfig::tiny(), 1);
        let a = forward(&m, &m.synthetic_input(5));
        let b = forward(&m, &m.synthetic_input(6));
        assert_ne!(a, b);
    }

    #[test]
    fn calibration_shifts_keep_values_in_range() {
        let m = ViTModel::new(ViTConfig::tiny(), 2);
        // After calibration, a frozen run on the calibration input must not
        // have saturated wildly: spot-check by re-deriving shifts — they
        // should not need to grow.
        let again = calibrate_shifts(&m, &m.synthetic_input(2 ^ 0xA5A5));
        for (a, b) in m.shifts.iter().zip(&again) {
            assert!(b.qkv <= a.qkv + 1, "{a:?} vs {b:?}");
            assert!(b.fc2 <= a.fc2 + 1);
        }
    }

    #[test]
    fn intermediate_codes_respect_bitwidth() {
        let cfg = ViTConfig::tiny();
        let m = ViTModel::new(cfg, 3);
        let x = m.synthetic_input(9);
        // Run one attention half manually and check code ranges.
        let h = ln_rows(&x, m.ln_gamma, m.ln_beta, cfg.bitwidth);
        assert!(h
            .as_slice()
            .iter()
            .all(|&v| v >= cfg.code_min() && v <= cfg.code_max()));
        let q_acc = gemm_i8_i32(&h, &m.blocks[0].wq);
        let q = requant(&q_acc, m.shifts[0].qkv, cfg.bitwidth);
        assert!(q
            .as_slice()
            .iter()
            .all(|&v| v >= cfg.code_min() && v <= cfg.code_max()));
    }
}
