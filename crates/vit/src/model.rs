//! Model weights and post-training-quantization shift calibration.

use crate::config::ViTConfig;
use crate::reference;
use vitbit_tensor::gen;
use vitbit_tensor::Matrix;

/// Weights of one encoder block (all `bitwidth`-bit signed codes).
#[derive(Debug, Clone)]
pub struct BlockWeights {
    /// Query projection, `dim x dim`.
    pub wq: Matrix<i8>,
    /// Key projection.
    pub wk: Matrix<i8>,
    /// Value projection.
    pub wv: Matrix<i8>,
    /// Output projection.
    pub wo: Matrix<i8>,
    /// MLP expansion, `dim x mlp_dim`.
    pub fc1: Matrix<i8>,
    /// MLP contraction, `mlp_dim x dim`.
    pub fc2: Matrix<i8>,
}

/// Requantization shifts of one block (frozen at calibration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockShifts {
    /// After the QKV projections.
    pub qkv: u32,
    /// After the attention-score GEMM.
    pub score: u32,
    /// After the attention-times-V GEMM.
    pub attnv: u32,
    /// After the output projection.
    pub proj: u32,
    /// After the MLP expansion.
    pub fc1: u32,
    /// After the MLP contraction.
    pub fc2: u32,
}

/// The full quantized model.
#[derive(Debug, Clone)]
pub struct ViTModel {
    /// Hyperparameters.
    pub cfg: ViTConfig,
    /// Per-block weights.
    pub blocks: Vec<BlockWeights>,
    /// Classifier head, `dim x classes`.
    pub w_cls: Matrix<i8>,
    /// Uniform LayerNorm gain in Q6.
    pub ln_gamma: i32,
    /// Uniform LayerNorm offset.
    pub ln_beta: i32,
    /// Dropout keep probability in Q8.
    pub keep_q8: u32,
    /// Per-block requantization shifts (set by [`ViTModel::calibrate`]).
    pub shifts: Vec<BlockShifts>,
    /// Index of this model's first block within the original network
    /// (nonzero only for partial "tail" models; keeps dropout seeds stable).
    pub block_offset: usize,
}

impl ViTModel {
    /// Builds a model with bell-shaped synthetic weights, then calibrates
    /// its requantization shifts on a seeded synthetic input.
    pub fn new(cfg: ViTConfig, seed: u64) -> Self {
        cfg.validate();
        let bw = cfg.bitwidth;
        let mut blocks = Vec::with_capacity(cfg.blocks);
        for b in 0..cfg.blocks as u64 {
            let s = seed.wrapping_mul(1_000_003).wrapping_add(b * 97);
            blocks.push(BlockWeights {
                wq: gen::bell_weights_i8(cfg.dim, cfg.dim, bw, s),
                wk: gen::bell_weights_i8(cfg.dim, cfg.dim, bw, s + 1),
                wv: gen::bell_weights_i8(cfg.dim, cfg.dim, bw, s + 2),
                wo: gen::bell_weights_i8(cfg.dim, cfg.dim, bw, s + 3),
                fc1: gen::bell_weights_i8(cfg.dim, cfg.mlp_dim, bw, s + 4),
                fc2: gen::bell_weights_i8(cfg.mlp_dim, cfg.dim, bw, s + 5),
            });
        }
        let w_cls = gen::bell_weights_i8(cfg.dim, cfg.classes, bw, seed + 7777);
        let mut model = Self {
            cfg,
            blocks,
            w_cls,
            ln_gamma: 64,
            ln_beta: 0,
            keep_q8: 230, // ~90% keep (inference-style dropout)
            shifts: vec![BlockShifts::default(); cfg.blocks],
            block_offset: 0,
        };
        let calib_input = model.synthetic_input(seed ^ 0xA5A5);
        model.calibrate(&calib_input);
        model
    }

    /// A synthetic embedded-token matrix (`tokens x dim` codes) standing in
    /// for the patch-embedding output.
    pub fn synthetic_input(&self, seed: u64) -> Matrix<i8> {
        let hi = self.cfg.code_max();
        let lo = self.cfg.code_min();
        gen::uniform_i8(self.cfg.tokens, self.cfg.dim, lo, hi, seed)
    }

    /// One-off calibration: runs the reference pipeline recording the
    /// accumulator ranges at every requantization point and freezes the
    /// shifts (standard post-training quantization flow).
    pub fn calibrate(&mut self, input: &Matrix<i8>) {
        let shifts = reference::calibrate_shifts(self, input);
        self.shifts = shifts;
    }

    /// The shift that maps an accumulator with this maximum magnitude into
    /// the signed `bitwidth`-bit code range.
    pub fn shift_for(max_abs: i64, bitwidth: u32) -> u32 {
        let hi = (1i64 << (bitwidth - 1)) - 1;
        let mut s = 0u32;
        while (max_abs >> s) > hi {
            s += 1;
        }
        s
    }
}

/// Applies a frozen requantization shift: arithmetic shift then saturation
/// into the code range.
pub fn requant(acc: &Matrix<i32>, shift: u32, bitwidth: u32) -> Matrix<i8> {
    let hi = (1i32 << (bitwidth - 1)) - 1;
    acc.map(|x| (x >> shift).clamp(-hi - 1, hi) as i8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_builds_and_calibrates() {
        let m = ViTModel::new(ViTConfig::tiny(), 42);
        assert_eq!(m.blocks.len(), 2);
        assert_eq!(m.shifts.len(), 2);
        // Calibration should produce nonzero shifts for GEMM outputs
        // (accumulators far exceed the code range).
        assert!(m.shifts[0].qkv > 0);
        assert!(m.shifts[0].fc1 > 0);
    }

    #[test]
    fn model_is_deterministic() {
        let a = ViTModel::new(ViTConfig::tiny(), 7);
        let b = ViTModel::new(ViTConfig::tiny(), 7);
        assert_eq!(a.blocks[0].wq, b.blocks[0].wq);
        assert_eq!(a.shifts, b.shifts);
        let c = ViTModel::new(ViTConfig::tiny(), 8);
        assert_ne!(a.blocks[0].wq, c.blocks[0].wq);
    }

    #[test]
    fn weights_respect_bitwidth() {
        let m = ViTModel::new(ViTConfig::tiny(), 3);
        let hi = m.cfg.code_max();
        for b in &m.blocks {
            assert!(b.wq.as_slice().iter().all(|&x| x.abs() <= hi));
            assert!(b.fc2.as_slice().iter().all(|&x| x.abs() <= hi));
        }
    }

    #[test]
    fn shift_for_maps_into_range() {
        assert_eq!(ViTModel::shift_for(31, 6), 0);
        assert_eq!(ViTModel::shift_for(32, 6), 1);
        assert_eq!(ViTModel::shift_for(1000, 6), 5);
        assert_eq!(ViTModel::shift_for(0, 6), 0);
    }

    #[test]
    fn requant_saturates_and_shifts() {
        let acc = Matrix::from_vec(1, 4, vec![1000, -1000, 40, -40]);
        let q = requant(&acc, 5, 6);
        assert_eq!(q.as_slice(), &[31, -32, 1, -2]);
    }
}
