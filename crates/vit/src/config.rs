//! Model hyperparameters.

/// Vision Transformer dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViTConfig {
    /// Encoder blocks.
    pub blocks: usize,
    /// Model (embedding) dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Per-head dimension (`dim / heads`).
    pub head_dim: usize,
    /// MLP hidden dimension.
    pub mlp_dim: usize,
    /// Sequence length (patches + CLS).
    pub tokens: usize,
    /// Classifier classes.
    pub classes: usize,
    /// Signed code bitwidth of the quantized model.
    pub bitwidth: u32,
}

impl ViTConfig {
    /// ViT-Base as evaluated in the paper (Table 2), at the headline INT6
    /// quantization (Figure 3(b): two values per register, guard bits keep
    /// packed accumulation exact).
    pub fn base() -> Self {
        Self {
            blocks: 12,
            dim: 768,
            heads: 12,
            head_dim: 64,
            mlp_dim: 3072,
            tokens: 197,
            classes: 100,
            bitwidth: 6,
        }
    }

    /// ViT-Base at a different code bitwidth.
    pub fn base_with_bitwidth(bitwidth: u32) -> Self {
        Self {
            bitwidth,
            ..Self::base()
        }
    }

    /// A miniature configuration for fast functional tests: same topology,
    /// tiny dimensions.
    pub fn tiny() -> Self {
        Self {
            blocks: 2,
            dim: 64,
            heads: 2,
            head_dim: 32,
            mlp_dim: 128,
            tokens: 32,
            classes: 10,
            bitwidth: 6,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics when `dim != heads * head_dim` or dimensions are zero.
    pub fn validate(&self) {
        assert_eq!(
            self.dim,
            self.heads * self.head_dim,
            "dim = heads * head_dim"
        );
        assert!(self.blocks > 0 && self.tokens > 0 && self.classes > 0);
        assert!((2..=8).contains(&self.bitwidth), "bitwidth in 2..=8");
        assert!(
            self.dim.is_multiple_of(32),
            "LayerNorm rows need 32-aligned dim"
        );
    }

    /// Highest positive code value.
    pub fn code_max(&self) -> i8 {
        ((1i32 << (self.bitwidth - 1)) - 1) as i8
    }

    /// Lowest code value.
    pub fn code_min(&self) -> i8 {
        (-(1i32 << (self.bitwidth - 1))) as i8
    }

    /// Total GEMM multiply-accumulate ops per forward pass (rough model
    /// size indicator).
    pub fn gemm_macs(&self) -> u64 {
        let t = self.tokens as u64;
        let d = self.dim as u64;
        let m = self.mlp_dim as u64;
        let h = self.heads as u64;
        let hd = self.head_dim as u64;
        let per_block = 3 * t * d * d    // qkv
            + h * t * t * hd * 2         // scores + attn x V
            + t * d * d                  // projection
            + t * d * m * 2; // fc1 + fc2
        per_block * self.blocks as u64 + t * d * self.classes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_vit_base() {
        let c = ViTConfig::base();
        c.validate();
        assert_eq!(c.dim, 768);
        assert_eq!(c.blocks, 12);
        assert_eq!(c.heads * c.head_dim, 768);
        // ~17.5 GMACs for ViT-Base at 197 tokens.
        let gmacs = c.gemm_macs() as f64 / 1e9;
        assert!((15.0..25.0).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn tiny_validates() {
        ViTConfig::tiny().validate();
    }

    #[test]
    fn code_range() {
        let c = ViTConfig::base();
        assert_eq!(c.code_max(), 31);
        assert_eq!(c.code_min(), -32);
        let c8 = ViTConfig::base_with_bitwidth(8);
        assert_eq!(c8.code_max(), 127);
    }

    #[test]
    #[should_panic(expected = "dim = heads * head_dim")]
    fn bad_dims_panic() {
        let mut c = ViTConfig::tiny();
        c.head_dim = 7;
        c.validate();
    }
}
