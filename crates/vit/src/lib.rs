//! # vitbit-vit: integer-only ViT-Base on the simulated Orin GPU
//!
//! A complete Vision Transformer Base encoder (12 blocks, d=768, 12 heads,
//! MLP 3072, 197 tokens) in the I-ViT integer-only style: every layer —
//! Linear GEMMs, Shiftmax attention, ShiftGELU MLP, I-LayerNorm, dropout,
//! residual adds — operates on signed `bitwidth`-bit codes with dyadic
//! (shift) requantization between layers. No floating point appears on the
//! integer path.
//!
//! Weights are synthetic (bell-shaped, seeded — see DESIGN.md's
//! substitution table: the paper's accuracy statement is verified as
//! bit-exactness/agreement against the CPU reference, not ImageNet top-1),
//! with requantization shifts frozen by a one-off calibration pass, exactly
//! like post-training quantization.
//!
//! * [`mod@reference`] — the CPU integer reference pipeline (ground truth);
//! * [`pipeline`] — the same network executed kernel-by-kernel on the
//!   simulated GPU under any Table-3 [`vitbit_exec::Strategy`], collecting
//!   per-kernel [`vitbit_sim::KernelStats`] for Figures 5–10. Forward
//!   passes are planned once ([`VitPlan`]) and executed per input
//!   ([`pipeline::run_vit_planned`]) on a shared [`vitbit_plan::Engine`].

pub mod config;
pub mod model;
pub mod pipeline;
pub mod reference;

pub use config::ViTConfig;
pub use model::ViTModel;
#[allow(deprecated)]
pub use pipeline::{run_vit, run_vit_cached};
pub use pipeline::{run_vit_planned, KernelClass, LayerTiming, VitPlan, VitRun};
