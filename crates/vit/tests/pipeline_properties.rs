//! ViT pipeline properties: block homogeneity (the justification for the
//! harness's blocks-limit extrapolation), timing-surface completeness, and
//! model/weights invariants.

use vitbit_exec::{Engine, ExecConfig, Strategy};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::Matrix;
use vitbit_vit::{run_vit_planned, KernelClass, ViTConfig, ViTModel, VitPlan, VitRun};

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 128 << 20)
}

/// One-shot planned run: the engine-API equivalent of the old `run_vit`.
fn run_vit(
    gpu: &mut Gpu,
    model: &ViTModel,
    input: &Matrix<i8>,
    strategy: Strategy,
    cfg: &ExecConfig,
    blocks_limit: Option<usize>,
) -> VitRun {
    let mut engine = Engine::new();
    let plan = VitPlan::build(&mut engine, gpu, model, strategy, cfg, blocks_limit);
    run_vit_planned(gpu, &mut engine, &plan, model, input)
}

#[test]
fn encoder_blocks_are_timing_homogeneous() {
    // The figure harness simulates one representative block per strategy;
    // that is sound only if blocks cost roughly the same. Verify on the
    // tiny model: per-block Linear cycles within 20% of each other.
    let model = ViTModel::new(ViTConfig::tiny(), 21);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(4);
    let mut g = gpu();
    let run = run_vit(&mut g, &model, &x, Strategy::Ic, &cfg, None);
    let block_cycles: Vec<u64> = (0..model.cfg.blocks)
        .map(|b| {
            run.timings
                .iter()
                .filter(|t| t.block == b)
                .map(|t| t.stats.cycles)
                .sum()
        })
        .collect();
    let max = *block_cycles.iter().max().unwrap() as f64;
    let min = *block_cycles.iter().min().unwrap() as f64;
    assert!(
        max / min < 1.2,
        "blocks should cost alike: {block_cycles:?}"
    );
}

#[test]
fn cycles_by_name_partitions_the_total() {
    let model = ViTModel::new(ViTConfig::tiny(), 22);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(5);
    let mut g = gpu();
    let run = run_vit(&mut g, &model, &x, Strategy::Tc, &cfg, Some(1));
    let by_name: u64 = run.cycles_by_name().iter().map(|(_, c)| c).sum();
    assert_eq!(by_name, run.total_cycles());
    let by_class = run.cycles_of(KernelClass::Linear) + run.cycles_of(KernelClass::Cuda);
    assert_eq!(by_class, run.total_cycles());
}

#[test]
fn linear_sites_dominate_vit_time_under_tc() {
    // ViT is GEMM-dominated; the timing split should reflect it even at
    // tiny dims.
    let model = ViTModel::new(ViTConfig::tiny(), 23);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(6);
    let mut g = gpu();
    let run = run_vit(&mut g, &model, &x, Strategy::Ic, &cfg, Some(1));
    assert!(
        run.cycles_of(KernelClass::Linear) > run.cycles_of(KernelClass::Cuda) / 4,
        "Linear share unexpectedly tiny"
    );
}

#[test]
fn bitwidth_variants_of_the_model_run_end_to_end() {
    for bw in [4u32, 6, 8] {
        let mut cfg = ViTConfig::tiny();
        cfg.bitwidth = bw;
        let model = ViTModel::new(cfg, 30 + u64::from(bw));
        let x = model.synthetic_input(1);
        let want = vitbit_vit::reference::forward(&model, &x);
        let mut g = gpu();
        let exec = ExecConfig::guarded(bw);
        let run = run_vit(&mut g, &model, &x, Strategy::Ic, &exec, None);
        assert_eq!(run.logits, want, "bitwidth {bw}");
    }
}

#[test]
fn weights_and_shifts_survive_cloning_into_tails() {
    // The blocks-limit tail path must see identical parameters.
    let model = ViTModel::new(ViTConfig::tiny(), 40);
    let cfg = ExecConfig::guarded(model.cfg.bitwidth);
    let x = model.synthetic_input(2);
    let mut g = gpu();
    let full = run_vit(&mut g, &model, &x, Strategy::Ic, &cfg, None);
    for limit in [0usize, 1] {
        let part = run_vit(&mut g, &model, &x, Strategy::Ic, &cfg, Some(limit));
        assert_eq!(part.logits, full.logits, "limit {limit}");
        assert_eq!(part.simulated_blocks, limit);
    }
}
