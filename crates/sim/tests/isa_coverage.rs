#![allow(clippy::needless_range_loop)]
//! ISA semantics coverage: every instruction class exercised through full
//! kernel launches, plus a property test pitting random straight-line
//! integer programs against a direct host evaluation (catches scoreboard,
//! ordering and functional bugs in one sweep).

use vitbit_sim::isa::{FCmp, ICmp, MemWidth, Op, Reg, SReg, Src};
use vitbit_sim::program::ProgramBuilder;
use vitbit_sim::{Gpu, Kernel, OrinConfig};
use vitbit_tensor::check;
use vitbit_tensor::rng::SmallRng;

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 16 << 20)
}

/// Runs a single-warp kernel and returns the stored outputs.
fn run_one_warp(build: impl FnOnce(&mut ProgramBuilder, Reg), n_out: usize) -> Vec<u32> {
    let mut g = gpu();
    let out = g.mem.alloc((n_out * 4) as u32);
    let mut p = ProgramBuilder::new("t");
    let out_base = p.alloc();
    p.ldc(out_base, 0);
    build(&mut p, out_base);
    p.exit();
    let k = Kernel::single("t", p.build().into_arc(), 1, 1, 0, vec![out.addr]);
    g.launch(&k).expect("launch");
    g.mem.download_u32(out, n_out)
}

#[test]
fn sfu_ops_compute_f32_functions() {
    let outs = run_one_warp(
        |p, out| {
            let v = p.alloc();
            let addr = p.alloc();
            let lane = p.alloc();
            p.sreg(lane, SReg::LaneId);
            p.imad(addr, lane.into(), Src::Imm(4), out.into());
            p.push(Op::Rcp {
                d: v,
                a: Src::imm_f32(4.0),
            });
            p.stg(addr, 0, v.into(), MemWidth::B32);
            p.push(Op::Sqrt {
                d: v,
                a: Src::imm_f32(81.0),
            });
            p.stg(addr, 128, v.into(), MemWidth::B32);
            p.push(Op::Ex2 {
                d: v,
                a: Src::imm_f32(5.0),
            });
            p.stg(addr, 256, v.into(), MemWidth::B32);
            p.push(Op::Lg2 {
                d: v,
                a: Src::imm_f32(1024.0),
            });
            p.stg(addr, 384, v.into(), MemWidth::B32);
        },
        128,
    );
    assert_eq!(f32::from_bits(outs[0]), 0.25);
    assert_eq!(f32::from_bits(outs[32]), 9.0);
    assert_eq!(f32::from_bits(outs[64]), 32.0);
    assert_eq!(f32::from_bits(outs[96]), 10.0);
}

#[test]
fn fsetp_and_float_minmax() {
    let outs = run_one_warp(
        |p, out| {
            let v = p.alloc();
            let addr = p.alloc();
            let lane = p.alloc();
            let pr = p.alloc_pred();
            p.sreg(lane, SReg::LaneId);
            p.imad(addr, lane.into(), Src::Imm(4), out.into());
            p.fmin(v, Src::imm_f32(3.0), Src::imm_f32(-2.0));
            p.stg(addr, 0, v.into(), MemWidth::B32);
            p.fmax(v, Src::imm_f32(3.0), Src::imm_f32(-2.0));
            p.stg(addr, 128, v.into(), MemWidth::B32);
            p.push(Op::FSetP {
                p: pr,
                a: Src::imm_f32(1.5),
                b: Src::imm_f32(2.5),
                cmp: FCmp::Lt,
            });
            p.sel(v, pr, Src::Imm(1), Src::Imm(0));
            p.stg(addr, 256, v.into(), MemWidth::B32);
            p.push(Op::FSetP {
                p: pr,
                a: Src::imm_f32(1.5),
                b: Src::imm_f32(1.5),
                cmp: FCmp::Ge,
            });
            p.sel(v, pr, Src::Imm(1), Src::Imm(0));
            p.stg(addr, 384, v.into(), MemWidth::B32);
        },
        128,
    );
    assert_eq!(f32::from_bits(outs[0]), -2.0);
    assert_eq!(f32::from_bits(outs[32]), 3.0);
    assert_eq!(outs[64], 1);
    assert_eq!(outs[96], 1);
}

#[test]
fn integer_division_edge_cases() {
    let outs = run_one_warp(
        |p, out| {
            let v = p.alloc();
            let addr = p.alloc();
            let lane = p.alloc();
            p.sreg(lane, SReg::LaneId);
            p.imad(addr, lane.into(), Src::Imm(4), out.into());
            p.idivu(v, Src::Imm(100), Src::Imm(7));
            p.stg(addr, 0, v.into(), MemWidth::B32);
            p.iremu(v, Src::Imm(100), Src::Imm(7));
            p.stg(addr, 128, v.into(), MemWidth::B32);
            // Division by zero: defined as 0 (remainder: the dividend).
            p.idivu(v, Src::Imm(100), Src::Imm(0));
            p.stg(addr, 256, v.into(), MemWidth::B32);
            p.iremu(v, Src::Imm(100), Src::Imm(0));
            p.stg(addr, 384, v.into(), MemWidth::B32);
        },
        128,
    );
    assert_eq!(outs[0], 14);
    assert_eq!(outs[32], 2);
    assert_eq!(outs[64], 0);
    assert_eq!(outs[96], 100);
}

#[test]
fn shfl_butterfly_builds_a_full_reduction() {
    // Sum of lane ids via 5 butterfly steps must equal 496 in every lane.
    let outs = run_one_warp(
        |p, out| {
            let v = p.alloc();
            let t = p.alloc();
            let addr = p.alloc();
            let lane = p.alloc();
            p.sreg(lane, SReg::LaneId);
            p.mov(v, lane.into());
            for mask in [16u8, 8, 4, 2, 1] {
                p.shfl(t, v, mask);
                p.iadd(v, v.into(), t.into());
            }
            p.imad(addr, lane.into(), Src::Imm(4), out.into());
            p.stg(addr, 0, v.into(), MemWidth::B32);
        },
        32,
    );
    assert!(outs.iter().all(|&x| x == 496), "{outs:?}");
}

#[test]
fn f2i_floor_vs_round() {
    let outs = run_one_warp(
        |p, out| {
            let v = p.alloc();
            let addr = p.alloc();
            let lane = p.alloc();
            p.sreg(lane, SReg::LaneId);
            p.imad(addr, lane.into(), Src::Imm(4), out.into());
            p.f2i_floor(v, Src::imm_f32(-1.5));
            p.stg(addr, 0, v.into(), MemWidth::B32);
            p.f2i(v, Src::imm_f32(-1.5));
            p.stg(addr, 128, v.into(), MemWidth::B32);
            p.f2i_floor(v, Src::imm_f32(2.999));
            p.stg(addr, 256, v.into(), MemWidth::B32);
        },
        96,
    );
    assert_eq!(outs[0] as i32, -2, "floor(-1.5)");
    assert_eq!(outs[32] as i32, -2, "round_ties_even(-1.5)");
    assert_eq!(outs[64] as i32, 2, "floor(2.999)");
}

#[test]
fn ldg_v4_loads_four_words() {
    let mut g = gpu();
    let data: Vec<u32> = (0..64u32).map(|x| x * 3).collect();
    let src = g.mem.upload_u32(&data);
    let dst = g.mem.alloc(4 * 32 * 4);
    let mut p = ProgramBuilder::new("v4");
    let s = p.alloc();
    let d = p.alloc();
    let lane = p.alloc();
    let addr = p.alloc();
    let vals = p.alloc_n(4);
    p.ldc(s, 0);
    p.ldc(d, 1);
    p.sreg(lane, SReg::LaneId);
    // Each lane reads 16 aligned bytes at lane*16 % 1024... use lane*16.
    p.imad(addr, lane.into(), Src::Imm(16), s.into());
    p.ldg_v4(vals, addr, 0);
    p.imad(addr, lane.into(), Src::Imm(16), d.into());
    for i in 0..4u8 {
        p.stg(addr, (i * 4) as i32, Reg(vals.0 + i).into(), MemWidth::B32);
    }
    p.exit();
    // Only 16 lanes' worth of source data: confine to one warp reading the
    // first 32 * 16 = 512 bytes (we uploaded 256; read lanes 0..16).
    let k = Kernel::single(
        "v4",
        p.build().into_arc(),
        1,
        1,
        0,
        vec![src.addr, dst.addr],
    );
    g.launch(&k).expect("launch");
    let out = g.mem.download_u32(dst, 4 * 16);
    for lane in 0..16usize {
        for w in 0..4 {
            assert_eq!(
                out[lane * 4 + w],
                data[lane * 4 + w],
                "lane {lane} word {w}"
            );
        }
    }
}

#[test]
#[should_panic(expected = "arg")]
fn out_of_range_kernel_arg_panics() {
    run_one_warp(
        |p, _out| {
            let v = p.alloc();
            p.ldc(v, 9); // only arg 0 exists
        },
        1,
    );
}

/// A tiny host-side model of the straight-line integer subset.
#[derive(Clone, Debug)]
enum RandOp {
    Add(u8, u8),
    Sub(u8, u8),
    Mul(u8, u8),
    Mad(u8, u8, u8),
    And(u8, u8),
    Xor(u8, u8),
    Shl(u8, u32),
    Sar(u8, u32),
    Min(u8, u8),
    Max(u8, u8),
}

fn host_eval(ops: &[(u8, RandOp)], regs: &mut [u32; 8]) {
    for (d, op) in ops {
        let v = match *op {
            RandOp::Add(a, b) => regs[a as usize].wrapping_add(regs[b as usize]),
            RandOp::Sub(a, b) => regs[a as usize].wrapping_sub(regs[b as usize]),
            RandOp::Mul(a, b) => regs[a as usize].wrapping_mul(regs[b as usize]),
            RandOp::Mad(a, b, c) => regs[a as usize]
                .wrapping_mul(regs[b as usize])
                .wrapping_add(regs[c as usize]),
            RandOp::And(a, b) => regs[a as usize] & regs[b as usize],
            RandOp::Xor(a, b) => regs[a as usize] ^ regs[b as usize],
            RandOp::Shl(a, s) => regs[a as usize].unbounded_shl(s),
            RandOp::Sar(a, s) => (regs[a as usize] as i32).unbounded_shr(s) as u32,
            RandOp::Min(a, b) => (regs[a as usize] as i32).min(regs[b as usize] as i32) as u32,
            RandOp::Max(a, b) => (regs[a as usize] as i32).max(regs[b as usize] as i32) as u32,
        };
        regs[*d as usize] = v;
    }
}

fn rand_op(rng: &mut SmallRng) -> (u8, RandOp) {
    let d = rng.random_range(0u8..8);
    let r = |rng: &mut SmallRng| rng.random_range(0u8..8);
    let op = match rng.random_range(0u32..10) {
        0 => RandOp::Add(r(rng), r(rng)),
        1 => RandOp::Sub(r(rng), r(rng)),
        2 => RandOp::Mul(r(rng), r(rng)),
        3 => RandOp::Mad(r(rng), r(rng), r(rng)),
        4 => RandOp::And(r(rng), r(rng)),
        5 => RandOp::Xor(r(rng), r(rng)),
        6 => RandOp::Shl(r(rng), rng.random_range(0u32..40)),
        7 => RandOp::Sar(r(rng), rng.random_range(0u32..40)),
        8 => RandOp::Min(r(rng), r(rng)),
        _ => RandOp::Max(r(rng), r(rng)),
    };
    (d, op)
}

/// Random straight-line integer programs produce identical results on
/// the simulator and the host model, in every lane.
#[test]
fn prop_random_programs_match_host_model() {
    check::cases(0x15a_c0de, 24, |rng| {
        let seeds: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        let ops = check::vec_of(rng, 1..60, rand_op);
        // Host model per lane: lane l starts with regs[i] = seeds[i] ^ l.
        let mut g = gpu();
        let out = g.mem.alloc(8 * 32 * 4);
        let mut p = ProgramBuilder::new("rand");
        let base = p.alloc();
        let lane = p.alloc();
        let regs = p.alloc_n(8);
        let addr = p.alloc();
        p.ldc(base, 0);
        p.sreg(lane, SReg::LaneId);
        let rr = |i: u8| Reg(regs.0 + i);
        for i in 0..8u8 {
            p.mov(rr(i), Src::Imm(seeds[i as usize]));
            p.push(Op::Xor {
                d: rr(i),
                a: rr(i).into(),
                b: lane.into(),
            });
        }
        for (d, op) in &ops {
            let d = rr(*d);
            match *op {
                RandOp::Add(a, b) => p.iadd(d, rr(a).into(), rr(b).into()),
                RandOp::Sub(a, b) => p.isub(d, rr(a).into(), rr(b).into()),
                RandOp::Mul(a, b) => p.imul(d, rr(a).into(), rr(b).into()),
                RandOp::Mad(a, b, c) => p.imad(d, rr(a).into(), rr(b).into(), rr(c).into()),
                RandOp::And(a, b) => p.and(d, rr(a).into(), rr(b).into()),
                RandOp::Xor(a, b) => p.push(Op::Xor {
                    d,
                    a: rr(a).into(),
                    b: rr(b).into(),
                }),
                RandOp::Shl(a, s) => p.shl(d, rr(a).into(), Src::Imm(s)),
                RandOp::Sar(a, s) => p.sar(d, rr(a).into(), Src::Imm(s)),
                RandOp::Min(a, b) => p.imin(d, rr(a).into(), rr(b).into()),
                RandOp::Max(a, b) => p.imax(d, rr(a).into(), rr(b).into()),
            }
        }
        // Store all 8 registers per lane.
        for i in 0..8u8 {
            p.imad(addr, lane.into(), Src::Imm(4), base.into());
            p.stg(addr, (i as i32) * 128, rr(i).into(), MemWidth::B32);
        }
        p.exit();
        let k = Kernel::single("rand", p.build().into_arc(), 1, 1, 0, vec![out.addr]);
        g.launch(&k).expect("launch");
        let got = g.mem.download_u32(out, 8 * 32);
        for l in 0..32usize {
            let mut regs = [0u32; 8];
            for i in 0..8 {
                regs[i] = seeds[i] ^ l as u32;
            }
            host_eval(&ops, &mut regs);
            for i in 0..8 {
                assert_eq!(got[i * 32 + l], regs[i], "lane {} reg {}", l, i);
            }
        }
    });
}

#[test]
fn guarded_loads_skip_disabled_lanes() {
    let mut g = gpu();
    let data: Vec<u32> = (0..32u32).map(|x| 1000 + x).collect();
    let src = g.mem.upload_u32(&data);
    let dst = g.mem.alloc(32 * 4);
    let mut p = ProgramBuilder::new("guard");
    let s = p.alloc();
    let d = p.alloc();
    let lane = p.alloc();
    let addr = p.alloc();
    let v = p.alloc();
    let pr = p.alloc_pred();
    p.ldc(s, 0);
    p.ldc(d, 1);
    p.sreg(lane, SReg::LaneId);
    p.isetp(pr, lane.into(), Src::Imm(16), ICmp::Lt);
    p.mov(v, Src::Imm(7));
    p.imad(addr, lane.into(), Src::Imm(4), s.into());
    p.ldg_if(v, addr, 0, MemWidth::B32, pr);
    p.imad(addr, lane.into(), Src::Imm(4), d.into());
    p.stg(addr, 0, v.into(), MemWidth::B32);
    p.exit();
    let k = Kernel::single(
        "guard",
        p.build().into_arc(),
        1,
        1,
        0,
        vec![src.addr, dst.addr],
    );
    g.launch(&k).expect("launch");
    let out = g.mem.download_u32(dst, 32);
    for l in 0..32 {
        let want = if l < 16 { 1000 + l as u32 } else { 7 };
        assert_eq!(out[l], want, "lane {l}");
    }
}
