//! Scheduler and memory-system properties: heterogeneous grids, dispatch
//! orders, barrier semantics under mixed role groups, and bandwidth
//! conservation.

use vitbit_sim::isa::{ICmp, MemWidth, SReg, Src};
use vitbit_sim::program::ProgramBuilder;
use vitbit_sim::{Gpu, Kernel, OrinConfig};

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 32 << 20)
}

/// A kernel whose blocks each write their ctaid at out[ctaid].
fn ctaid_writer() -> vitbit_sim::Program {
    let mut p = ProgramBuilder::new("ctaid_writer");
    let base = p.alloc();
    let ctaid = p.alloc();
    let lane = p.alloc();
    let addr = p.alloc();
    let pr = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(lane, SReg::LaneId);
    p.isetp(pr, lane.into(), Src::Imm(0), ICmp::Eq);
    p.imad(addr, ctaid.into(), Src::Imm(4), base.into());
    p.stg_if(addr, 0, ctaid.into(), MemWidth::B32, pr);
    p.exit();
    p.build()
}

#[test]
fn dispatch_order_covers_every_block_exactly_once() {
    let mut g = gpu();
    let blocks = 37u32;
    let out = g.mem.alloc(blocks * 4);
    // A deliberately scrambled (but valid) permutation.
    let mut order: Vec<u32> = (0..blocks).collect();
    order.reverse();
    order.swap(3, 19);
    let k = Kernel::single("w", ctaid_writer().into_arc(), blocks, 1, 0, vec![out.addr])
        .with_dispatch_order(order);
    g.launch(&k).expect("launch");
    let got = g.mem.download_u32(out, blocks as usize);
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v as usize, i, "block {i} must have run with its own ctaid");
    }
}

#[test]
#[should_panic(expected = "order must cover")]
fn short_dispatch_order_is_rejected() {
    let _ = Kernel::single("w", ctaid_writer().into_arc(), 4, 1, 0, vec![])
        .with_dispatch_order(vec![0, 1]);
}

#[test]
fn heterogeneous_blocks_run_their_own_programs() {
    // Range 0: writes 100+ctaid; range 1: writes 900+ctaid.
    let mk = |tag: u32| {
        let mut p = ProgramBuilder::new(format!("w{tag}"));
        let base = p.alloc();
        let ctaid = p.alloc();
        let lane = p.alloc();
        let addr = p.alloc();
        let v = p.alloc();
        let pr = p.alloc_pred();
        p.ldc(base, 0);
        p.sreg(ctaid, SReg::Ctaid);
        p.sreg(lane, SReg::LaneId);
        p.isetp(pr, lane.into(), Src::Imm(0), ICmp::Eq);
        p.iadd(v, ctaid.into(), Src::Imm(tag));
        p.imad(addr, ctaid.into(), Src::Imm(4), base.into());
        p.stg_if(addr, 0, v.into(), MemWidth::B32, pr);
        p.exit();
        p.build().into_arc()
    };
    let mut g = gpu();
    let out = g.mem.alloc(10 * 4);
    let k = Kernel::heterogeneous(
        "het",
        vec![mk(100), mk(900)],
        vec![(6, vec![0]), (4, vec![1])],
        0,
        vec![out.addr],
    );
    g.launch(&k).expect("launch");
    let got = g.mem.download_u32(out, 10);
    for (i, &v) in got.iter().enumerate() {
        let want = if i < 6 {
            100 + i as u32
        } else {
            900 + i as u32
        };
        assert_eq!(v, want, "block {i}");
    }
}

#[test]
fn group_barriers_do_not_cross_role_groups() {
    // Group 0 barriers twice between shared-memory phases; group 1 never
    // barriers and spins on plain math. If barriers leaked across groups
    // the kernel would deadlock (caught by the hang guard).
    let group0 = {
        let mut p = ProgramBuilder::new("bar_group");
        let lane = p.alloc();
        let addr = p.alloc();
        let v = p.alloc();
        p.sreg(lane, SReg::LaneId);
        p.shl(addr, lane.into(), Src::Imm(2));
        p.sts(addr, 0, lane.into(), MemWidth::B32);
        p.bar();
        p.lds(v, addr, 0, MemWidth::B32);
        p.bar();
        p.exit();
        p.build().into_arc()
    };
    let group1 = {
        let mut p = ProgramBuilder::new("math_group");
        let acc = p.alloc();
        let i = p.alloc();
        let pr = p.alloc_pred();
        p.mov(i, Src::Imm(0));
        p.label_here("top");
        p.imad(acc, acc.into(), Src::Imm(3), Src::Imm(1));
        p.iadd(i, i.into(), Src::Imm(1));
        p.isetp(pr, i.into(), Src::Imm(200), ICmp::Lt);
        p.bra_if("top", pr, true);
        p.exit();
        p.build().into_arc()
    };
    let mut g = gpu();
    let k = Kernel::fused(
        "groups",
        vec![group0, group1],
        vec![0, 0, 1, 1],
        4,
        256,
        vec![],
    );
    let stats = g.launch(&k).expect("launch"); // would hang if groups shared a barrier
    assert!(stats.cycles > 0);
}

#[test]
fn dram_byte_accounting_is_conserved() {
    // A kernel that streams N distinct lines must charge exactly N lines of
    // DRAM on a cold cache.
    let mut g = gpu();
    let lines = 256u32;
    let buf = g.mem.alloc(lines * 128);
    let mut p = ProgramBuilder::new("stream");
    let base = p.alloc();
    let lane = p.alloc();
    let addr = p.alloc();
    let v = p.alloc();
    let i = p.alloc();
    let pr = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(lane, SReg::LaneId);
    // One lane per warp reads one word per line; 32 lanes cover 32 lines
    // per iteration (stride 128 bytes per lane).
    p.imad(addr, lane.into(), Src::Imm(128), base.into());
    p.mov(i, Src::Imm(0));
    p.label_here("top");
    p.ldg(v, addr, 0, MemWidth::B32);
    p.iadd(addr, addr.into(), Src::Imm(32 * 128));
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(lines / 32), ICmp::Lt);
    p.bra_if("top", pr, true);
    p.exit();
    let k = Kernel::single("stream", p.build().into_arc(), 1, 1, 0, vec![buf.addr]);
    g.cold_caches();
    let stats = g.launch(&k).expect("launch");
    assert_eq!(
        stats.dram_bytes,
        u64::from(lines) * 128,
        "every line fetched once"
    );
}

#[test]
fn lrr_and_gto_agree_functionally() {
    // Same kernel under both scheduling policies: identical memory results,
    // (generally) different cycle counts. The kernel mixes dependent ALU
    // chains with strided loads so scheduling order actually matters.
    use vitbit_sim::SchedPolicy;
    let run = |sched: SchedPolicy| {
        let mut cfg = OrinConfig::test_small();
        cfg.sched = sched;
        let mut g = Gpu::new(cfg, 32 << 20);
        let n = 1024u32;
        let data: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
        let inp = g.mem.upload_u32(&data);
        let out = g.mem.alloc(n * 4);
        let mut p = ProgramBuilder::new("mix");
        let (ibase, obase) = (p.alloc(), p.alloc());
        let (ctaid, ntid, tid, gid) = (p.alloc(), p.alloc(), p.alloc(), p.alloc());
        let addr = p.alloc();
        let v = p.alloc();
        p.ldc(ibase, 0);
        p.ldc(obase, 1);
        p.sreg(ctaid, SReg::Ctaid);
        p.sreg(ntid, SReg::Ntid);
        p.sreg(tid, SReg::Tid);
        p.imad(gid, ctaid.into(), ntid.into(), tid.into());
        p.imad(addr, gid.into(), Src::Imm(4), ibase.into());
        p.ldg(v, addr, 0, MemWidth::B32);
        // Dependent ALU chain so GTO's greediness and LRR's rotation diverge.
        for _ in 0..8 {
            p.imad(v, v.into(), Src::Imm(3), Src::Imm(7));
        }
        p.imad(addr, gid.into(), Src::Imm(4), obase.into());
        p.stg(addr, 0, v.into(), MemWidth::B32);
        p.exit();
        let k = Kernel::single(
            "mix",
            p.build().into_arc(),
            n / 128,
            4,
            0,
            vec![inp.addr, out.addr],
        );
        g.cold_caches();
        let stats = g.launch(&k).expect("launch");
        (g.mem.download_u32(out, n as usize), stats.cycles)
    };
    let (gto_out, gto_cycles) = run(SchedPolicy::Gto);
    let (lrr_out, lrr_cycles) = run(SchedPolicy::Lrr);
    assert_eq!(gto_out, lrr_out, "scheduling must not change results");
    assert!(gto_cycles > 0 && lrr_cycles > 0);
}

#[test]
fn lrr_rotates_issue_across_warps() {
    // Under LRR every warp of a sub-partition makes progress at a similar
    // rate; a long-running kernel must complete (no starvation).
    use vitbit_sim::SchedPolicy;
    let mut cfg = OrinConfig::test_small();
    cfg.sched = SchedPolicy::Lrr;
    let mut g = Gpu::new(cfg, 16 << 20);
    let out = g.mem.alloc(256 * 4);
    let mut p = ProgramBuilder::new("spin");
    let (base, gid, addr, acc, i) = (p.alloc(), p.alloc(), p.alloc(), p.alloc(), p.alloc());
    let (ctaid, ntid, tid) = (p.alloc(), p.alloc(), p.alloc());
    let pr = p.alloc_pred();
    p.ldc(base, 0);
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(ntid, SReg::Ntid);
    p.sreg(tid, SReg::Tid);
    p.imad(gid, ctaid.into(), ntid.into(), tid.into());
    p.mov(acc, Src::Imm(1));
    p.mov(i, Src::Imm(0));
    p.label_here("top");
    p.imad(acc, acc.into(), Src::Imm(5), Src::Imm(3));
    p.iadd(i, i.into(), Src::Imm(1));
    p.isetp(pr, i.into(), Src::Imm(100), ICmp::Lt);
    p.bra_if("top", pr, true);
    p.imad(addr, gid.into(), Src::Imm(4), base.into());
    p.stg(addr, 0, acc.into(), MemWidth::B32);
    p.exit();
    let k = Kernel::single("spin", p.build().into_arc(), 2, 4, 0, vec![out.addr]);
    let stats = g.launch(&k).expect("launch");
    assert!(stats.cycles > 100, "kernel ran to completion under LRR");
    let got = g.mem.download_u32(out, 256);
    assert!(
        got.iter().all(|&v| v == got[0]),
        "every thread computed the same value"
    );
}

mod sched_equivalence {
    use super::*;
    use vitbit_sim::isa::Reg;
    use vitbit_sim::SchedPolicy;
    use vitbit_tensor::check;

    /// Build a multi-warp kernel from a random straight-line recipe and run
    /// it under the given policy; return the output buffer.
    fn run_recipe(ops: &[(u8, u8, u8, u8)], seeds: &[u32; 4], sched: SchedPolicy) -> Vec<u32> {
        let mut cfg = OrinConfig::test_small();
        cfg.sched = sched;
        let mut g = Gpu::new(cfg, 16 << 20);
        let warps = 8u32;
        let out = g.mem.alloc(warps * 32 * 4);
        let mut p = ProgramBuilder::new("recipe");
        let base = p.alloc();
        let lane = p.alloc();
        let wid = p.alloc();
        let ctaid = p.alloc();
        let gwid = p.alloc();
        let regs = p.alloc_n(4);
        let addr = p.alloc();
        let rr = |i: u8| Reg(regs.0 + (i % 4));
        p.ldc(base, 0);
        p.sreg(lane, SReg::LaneId);
        p.sreg(wid, SReg::WarpId);
        p.sreg(ctaid, SReg::Ctaid);
        // Grid-unique warp id: 4 warps per block.
        p.imad(gwid, ctaid.into(), Src::Imm(4), wid.into());
        for i in 0..4u8 {
            p.mov(rr(i), Src::Imm(seeds[i as usize]));
            p.imad(rr(i), gwid.into(), Src::Imm(97), rr(i).into());
            p.iadd(rr(i), rr(i).into(), lane.into());
        }
        for &(kind, d, a, b) in ops {
            let (d, a, b) = (rr(d), rr(a), rr(b));
            match kind % 5 {
                0 => p.iadd(d, a.into(), b.into()),
                1 => p.imul(d, a.into(), b.into()),
                2 => p.and(d, a.into(), b.into()),
                3 => p.imad(d, a.into(), b.into(), d.into()),
                _ => p.shl(d, a.into(), Src::Imm(u32::from(b.0 % 13))),
            }
        }
        // Fold the four registers and store one word per thread.
        p.iadd(regs, regs.into(), rr(1).into());
        p.iadd(regs, regs.into(), rr(2).into());
        p.iadd(regs, regs.into(), rr(3).into());
        p.imad(addr, gwid.into(), Src::Imm(32), lane.into());
        p.imad(addr, addr.into(), Src::Imm(4), base.into());
        p.stg(addr, 0, regs.into(), MemWidth::B32);
        p.exit();
        let k = Kernel::single(
            "recipe",
            p.build().into_arc(),
            2,
            warps / 2,
            0,
            vec![out.addr],
        );
        g.launch(&k).expect("launch");
        g.mem.download_u32(out, (warps * 32) as usize)
    }

    /// Warp scheduling policy must never change functional results:
    /// random multi-warp programs produce identical memory under GTO
    /// and LRR.
    #[test]
    fn prop_sched_policy_is_functionally_transparent() {
        check::cases(0x5c4e_d001, 16, |rng| {
            let seeds = [
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ];
            let ops = check::vec_of(rng, 1..40, |r| {
                (
                    r.random_range(0u8..=255),
                    r.random_range(0u8..4),
                    r.random_range(0u8..4),
                    r.random_range(0u8..4),
                )
            });
            let gto = run_recipe(&ops, &seeds, SchedPolicy::Gto);
            let lrr = run_recipe(&ops, &seeds, SchedPolicy::Lrr);
            assert_eq!(gto, lrr);
        });
    }
}
