//! Seeded, deterministic fault injection.
//!
//! Faults are decided by a *stateless* counter-based PRNG: every decision
//! hashes `(seed, salt, sm, counter)` with a splitmix64-style mixer, so the
//! outcome depends only on the event's identity, never on a shared mutable
//! stream. Both [`crate::config::SimMode`]s issue the same per-SM
//! instruction sequence and drain the same per-SM memory-request sequence,
//! so the injected faults are bit-identical across cycle-loop flavours and
//! fast-forward settings. Counters live on the SM and are *not* reset
//! between launches: re-executing a kernel sees fresh decisions, which is
//! the transient-fault model the recovery ladder in `vitbit-plan` assumes.

/// Fault kinds the simulator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A single bit flipped in a destination register at issue time.
    RegisterFlip,
    /// A single bit flipped in data returned by a DRAM-serviced load.
    DramFlip,
    /// A warp that stops issuing forever (its block never retires).
    HungWarp,
}

/// Configuration of the fault-injection layer. Default is fully disabled;
/// with `enabled == false` the simulator is byte-for-byte identical to a
/// build without the layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master switch; when false no fault path is ever evaluated.
    pub enabled: bool,
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Probability an issued instruction with a register destination has
    /// one destination bit flipped.
    pub reg_flip_rate: f64,
    /// Probability a DRAM-serviced load line flips one bit of its
    /// destination register.
    pub dram_flip_rate: f64,
    /// Probability a ready warp hangs instead of issuing (checked once per
    /// issue opportunity).
    pub hang_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Decision-stream salts: distinct fault kinds must never share a stream.
pub(crate) const SALT_REG: u64 = 0x9e37_79b9_7f4a_7c15;
pub(crate) const SALT_DRAM: u64 = 0xbf58_476d_1ce4_e5b9;
pub(crate) const SALT_HANG: u64 = 0x94d0_49bb_1331_11eb;

impl FaultConfig {
    /// No faults; the default.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            seed: 0,
            reg_flip_rate: 0.0,
            dram_flip_rate: 0.0,
            hang_rate: 0.0,
        }
    }

    /// An enabled config with the given seed and soak-test default rates:
    /// register flips only. Rates are per *event* (issued instruction),
    /// tuned so a small GEMM sees a handful of flips.
    pub fn seeded(seed: u64) -> Self {
        Self {
            enabled: true,
            seed,
            reg_flip_rate: 1e-3,
            dram_flip_rate: 0.0,
            hang_rate: 0.0,
        }
    }

    /// Rolls one decision: returns `Some(entropy)` when the event at
    /// `(salt, sm, counter)` fires under `rate`, where `entropy` is a
    /// 64-bit hash usable to pick the fault's target (lane, bit, ...).
    #[inline]
    pub(crate) fn roll(&self, salt: u64, sm: u32, counter: u64, rate: f64) -> Option<u64> {
        if rate <= 0.0 {
            return None;
        }
        let h = mix(self.seed ^ salt ^ (u64::from(sm) << 48) ^ counter);
        // Top 53 bits as a uniform fraction in [0, 1).
        let frac = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (frac < rate).then(|| mix(h))
    }
}

/// splitmix64 finalizer: a strong 64-bit mixer, stateless by construction.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let f = FaultConfig::default();
        assert!(!f.enabled);
        assert_eq!(f.roll(SALT_REG, 0, 0, f.reg_flip_rate), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultConfig::seeded(42);
        for ctr in 0..1000 {
            assert_eq!(
                f.roll(SALT_REG, 1, ctr, 0.5),
                f.roll(SALT_REG, 1, ctr, 0.5),
                "same event must decide identically"
            );
        }
    }

    #[test]
    fn streams_are_independent() {
        let f = FaultConfig::seeded(7);
        let reg: Vec<bool> = (0..512)
            .map(|c| f.roll(SALT_REG, 0, c, 0.5).is_some())
            .collect();
        let dram: Vec<bool> = (0..512)
            .map(|c| f.roll(SALT_DRAM, 0, c, 0.5).is_some())
            .collect();
        assert_ne!(reg, dram, "salts must decorrelate the streams");
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let f = FaultConfig::seeded(3);
        let fires = (0..100_000)
            .filter(|&c| f.roll(SALT_REG, 0, c, 0.01).is_some())
            .count();
        assert!((800..1200).contains(&fires), "got {fires} fires at 1%");
    }

    #[test]
    fn zero_rate_never_fires() {
        let f = FaultConfig::seeded(9);
        assert!((0..10_000).all(|c| f.roll(SALT_HANG, 0, c, 0.0).is_none()));
    }
}
