//! Machine configuration: the Jetson AGX Orin GPU (paper Table 2) and the
//! analytic peak-throughput table (paper Table 1).

/// Warp scheduling policy of each sub-partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Greedy-then-oldest: keep issuing from the last warp until it
    /// stalls, then fall back to the oldest ready warp (the policy real
    /// Ampere schedulers approximate; the default).
    #[default]
    Gto,
    /// Loose round-robin: rotate the starting candidate every cycle.
    Lrr,
}

/// How the cycle loop advances the SMs.
///
/// Both modes produce bit-identical [`crate::stats::KernelStats`] and
/// memory contents for the kernels in this repository (see DESIGN.md,
/// "Simulator concurrency model"): each parallel cycle splits into an
/// SM-local compute phase and a serial memory-service phase that drains
/// per-SM request queues in SM-index order, reproducing the serial mode's
/// L2/DRAM queueing and LRU state exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// One thread steps SMs in index order, servicing memory at issue time
    /// (the reference semantics).
    #[default]
    Serial,
    /// Two-phase cycles: SM compute runs on a worker pool, memory service
    /// stays serial. Deterministic; faster on multi-core hosts.
    Parallel,
}

/// Which interpreter drives the per-warp issue checks inside each SM.
///
/// Both produce bit-identical [`crate::stats::KernelStats`], memory
/// contents and fault-decision streams — the micro-op path only changes
/// how fast the host decides that a warp cannot issue. The reference
/// path is kept as the in-process differential oracle
/// (`tests/interp_equivalence.rs`) and as the baseline side of the
/// `sim_interp` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpMode {
    /// Decoded micro-op fast path (the default): per-program [`MicroOp`]
    /// cache, per-slot issue gates and pipe mirrors in flat arrays
    /// (see DESIGN.md §11).
    ///
    /// [`MicroOp`]: crate::decoded::MicroOp
    #[default]
    Micro,
    /// The original `Op`-enum scanning interpreter: re-derives operand
    /// sets via [`crate::exec`] helpers on every issue attempt.
    Reference,
}

/// Full machine description used by the simulator.
///
/// Defaults model the 32 GB Jetson AGX Orin of the paper's Table 2:
/// Ampere architecture, 1792 CUDA cores (14 SMs x 128), 56 Tensor cores
/// (4 per SM), 32 GB LPDDR5 at 204.8 GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct OrinConfig {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Sub-partitions (warp schedulers) per SM.
    pub subpartitions: u32,
    /// GPU boost clock in GHz (used only to convert cycles to time).
    pub clock_ghz: f64,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory bytes per SM.
    pub smem_per_sm: u32,

    /// INT32 pipe: lanes per sub-partition (32 => one warp inst per cycle).
    pub int_lanes: u32,
    /// FP32 pipe lanes per sub-partition.
    pub fp_lanes: u32,
    /// ALU result latency in cycles.
    pub alu_latency: u32,
    /// Tensor core MMA issue-to-issue occupancy in cycles.
    pub tc_occupancy: u32,
    /// Tensor core result latency in cycles.
    pub tc_latency: u32,
    /// SFU occupancy in cycles (4 lanes => 8 cycles per warp inst).
    pub sfu_occupancy: u32,
    /// SFU result latency.
    pub sfu_latency: u32,
    /// LSU occupancy per warp memory instruction (per touched 128-B line).
    pub lsu_occupancy_per_line: u32,
    /// Shared-memory access latency.
    pub smem_latency: u32,

    /// L1 data cache size per SM in bytes.
    pub l1_bytes: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1 hit latency.
    pub l1_latency: u32,
    /// L2 size in bytes (chip-wide).
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency.
    pub l2_latency: u32,
    /// L2 service interval per 128-B line, in cycles (bandwidth model).
    pub l2_line_interval: f64,
    /// DRAM access latency in cycles.
    pub dram_latency: u32,
    /// DRAM bandwidth in GB/s (turned into a line service interval).
    pub dram_gbps: f64,
    /// Cache line size in bytes (L1, L2 and DRAM granularity).
    pub line_bytes: u32,

    /// Safety valve: abort a kernel after this many cycles.
    pub max_cycles: u64,
    /// Warp scheduling policy.
    pub sched: SchedPolicy,
    /// How the cycle loop advances the SMs.
    pub sim_mode: SimMode,
    /// Worker threads for [`SimMode::Parallel`]; `None` uses the host's
    /// available parallelism. Results are independent of the thread count.
    pub sim_threads: Option<u32>,
    /// Event-horizon fast-forward: when no SM can issue and no block can
    /// launch, jump the cycle counter straight to the earliest cycle at
    /// which any state can change (see DESIGN.md, "Time-warp model").
    /// Bit-identical to the stepping loop in both [`SimMode`]s; turn off
    /// to keep the naive loop as a differential oracle. The default from
    /// [`OrinConfig::jetson_agx_orin`] honours the `VITBIT_FAST_FORWARD`
    /// environment variable (`0` disables), so CI can run entire suites
    /// against the stepping oracle without code changes.
    pub fast_forward: bool,
    /// Which warp interpreter the SMs run (default: the decoded micro-op
    /// fast path). [`OrinConfig::jetson_agx_orin`] honours the
    /// `VITBIT_INTERP` environment variable (`ref`, `reference` or `0`
    /// select [`InterpMode::Reference`]) so whole suites can run against
    /// the scanning oracle without code changes.
    pub interp: InterpMode,
    /// Seeded deterministic fault injection (default: disabled). With the
    /// layer disabled every stat and memory byte is identical to a build
    /// without it; see [`crate::fault::FaultConfig`].
    pub fault: crate::fault::FaultConfig,
}

impl OrinConfig {
    /// The paper's evaluation platform (Table 2).
    pub fn jetson_agx_orin() -> Self {
        Self {
            name: "NVIDIA Jetson AGX Orin (32GB)",
            num_sms: 14,
            subpartitions: 4,
            clock_ghz: 1.12,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 16,
            smem_per_sm: 164 * 1024,
            int_lanes: 32,
            fp_lanes: 32,
            alu_latency: 4,
            tc_occupancy: 4,
            tc_latency: 16,
            sfu_occupancy: 8,
            sfu_latency: 12,
            lsu_occupancy_per_line: 2,
            smem_latency: 24,
            l1_bytes: 128 * 1024,
            l1_ways: 4,
            l1_latency: 28,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 16,
            l2_latency: 110,
            l2_line_interval: 0.18,
            dram_latency: 280,
            dram_gbps: 204.8,
            line_bytes: 128,
            max_cycles: 2_000_000_000,
            sched: SchedPolicy::Gto,
            sim_mode: SimMode::default(),
            sim_threads: None,
            fast_forward: std::env::var_os("VITBIT_FAST_FORWARD").is_none_or(|v| v != "0"),
            interp: match std::env::var_os("VITBIT_INTERP") {
                Some(v) if v == "ref" || v == "reference" || v == "0" => InterpMode::Reference,
                _ => InterpMode::Micro,
            },
            fault: crate::fault::FaultConfig::disabled(),
        }
    }

    /// A scaled-down configuration for fast unit tests: 2 SMs, small caches,
    /// same per-sub-partition pipe model (ratios are preserved).
    pub fn test_small() -> Self {
        Self {
            name: "test-small",
            num_sms: 2,
            l1_bytes: 16 * 1024,
            l2_bytes: 256 * 1024,
            max_cycles: 50_000_000,
            ..Self::jetson_agx_orin()
        }
    }

    /// Total CUDA cores (marketing count: FP32 lanes x sub-partitions x SMs).
    pub fn cuda_cores(&self) -> u32 {
        self.fp_lanes * self.subpartitions * self.num_sms
    }

    /// Total Tensor cores (one per sub-partition).
    pub fn tensor_cores(&self) -> u32 {
        self.subpartitions * self.num_sms
    }

    /// DRAM service interval per line in cycles, derived from bandwidth.
    pub fn dram_line_interval(&self) -> f64 {
        let bytes_per_cycle = self.dram_gbps * 1e9 / (self.clock_ghz * 1e9);
        f64::from(self.line_bytes) / bytes_per_cycle
    }

    /// Cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9) * 1e3
    }
}

/// One row of the paper's Table 1: peak throughput per numeric format.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakRow {
    /// Format name as printed in the paper.
    pub format: &'static str,
    /// Executing unit ("CUDA Core" / "Tensor Core").
    pub unit: &'static str,
    /// Peak throughput in tera-operations (or FLOP) per second.
    pub tops: f64,
}

/// Reconstructs Table 1 analytically from the machine description.
///
/// CUDA-core peaks are `lanes x subparts x SMs x 2 (FMA) x clock`; FP16 on
/// CUDA cores is packed-pairs (2x FP32); Tensor-core peaks scale with the
/// per-format MACs per MMA (TF32 : FP16/BF16 : INT8 : INT4 = 1 : 2 : 4 : 8
/// relative to the TF32 base). INT8/INT4 *within CUDA cores* saturate at the
/// INT32 rate, which is the gap VitBit attacks.
pub fn peak_throughput_table(cfg: &OrinConfig) -> Vec<PeakRow> {
    let clock = cfg.clock_ghz * 1e9;
    let cuda_fp32 = f64::from(cfg.cuda_cores()) * 2.0 * clock / 1e12;
    let cuda_int32 =
        f64::from(cfg.int_lanes * cfg.subpartitions * cfg.num_sms) * 2.0 * clock / 1e12;
    // Tensor core: an INT8 MMA of 16x16x16 retires 8192 ops in tc_occupancy
    // cycles on each of the tensor cores.
    let tc_int8 =
        f64::from(cfg.tensor_cores()) * 8192.0 / f64::from(cfg.tc_occupancy) * clock / 1e12;
    let tc_fp16 = tc_int8 / 2.0;
    let tc_tf32 = tc_int8 / 4.0;
    let tc_int4 = tc_int8 * 2.0;
    vec![
        PeakRow {
            format: "FP32",
            unit: "CUDA Core",
            tops: cuda_fp32,
        },
        PeakRow {
            format: "FP16",
            unit: "CUDA Core",
            tops: cuda_fp32 * 2.0,
        },
        PeakRow {
            format: "TF32",
            unit: "Tensor Core",
            tops: tc_tf32,
        },
        PeakRow {
            format: "FP16",
            unit: "Tensor Core",
            tops: tc_fp16,
        },
        PeakRow {
            format: "BFloat16",
            unit: "Tensor Core",
            tops: tc_fp16,
        },
        PeakRow {
            format: "INT32",
            unit: "CUDA Core",
            tops: cuda_int32,
        },
        PeakRow {
            format: "INT8",
            unit: "Tensor Core",
            tops: tc_int8,
        },
        PeakRow {
            format: "INT4",
            unit: "Tensor Core",
            tops: tc_int4,
        },
    ]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn orin_matches_table2() {
        let cfg = OrinConfig::jetson_agx_orin();
        assert_eq!(cfg.cuda_cores(), 1792);
        assert_eq!(cfg.tensor_cores(), 56);
        assert_eq!(cfg.num_sms, 14);
    }

    #[test]
    fn table1_shapes_hold() {
        let cfg = OrinConfig::jetson_agx_orin();
        let t = peak_throughput_table(&cfg);
        let get = |fmt: &str, unit: &str| {
            t.iter()
                .find(|r| r.format == fmt && r.unit == unit)
                .unwrap()
                .tops
        };
        // Paper Table 1: FP32 ~4 TFLOPS, INT32 ~4 TOPS, INT8 TC ~131 TOPS,
        // INT4 TC ~262 TOPS, FP16 TC ~65, TF32 ~32.
        assert!((get("FP32", "CUDA Core") - 4.0).abs() < 0.15);
        assert!((get("INT32", "CUDA Core") - 4.0).abs() < 0.15);
        assert!((get("INT8", "Tensor Core") - 131.0).abs() < 4.0);
        assert!((get("INT4", "Tensor Core") - 262.0).abs() < 8.0);
        assert!((get("FP16", "Tensor Core") - 65.0).abs() < 2.0);
        assert!((get("TF32", "Tensor Core") - 32.0).abs() < 1.5);
        // The 32x INT8-TC : INT32-CUDA gap motivating the paper.
        let gap = get("INT8", "Tensor Core") / get("INT32", "CUDA Core");
        assert!((gap - 32.0).abs() < 1.0, "gap {gap}");
    }

    #[test]
    fn dram_interval_matches_bandwidth() {
        let cfg = OrinConfig::jetson_agx_orin();
        // 204.8 GB/s at 1.12 GHz = 182.9 B/cycle -> 128B line every 0.7 cy.
        assert!((cfg.dram_line_interval() - 0.7).abs() < 0.01);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let cfg = OrinConfig::jetson_agx_orin();
        let ms = cfg.cycles_to_ms(1_120_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn test_config_is_smaller_but_same_pipes() {
        let small = OrinConfig::test_small();
        let full = OrinConfig::jetson_agx_orin();
        assert!(small.num_sms < full.num_sms);
        assert_eq!(small.int_lanes, full.int_lanes);
        assert_eq!(small.tc_occupancy, full.tc_occupancy);
    }
}
