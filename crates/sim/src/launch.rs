//! Kernel launch descriptors.
//!
//! A kernel is one or more programs plus a mapping from warp index (within a
//! block) to program — the mechanism behind VitBit's warp-role
//! co-scheduling: in a fused GEMM, some warps of each block run the
//! Tensor-core program while others run the INT-core or FP-core program
//! (paper Algorithm 2).

use crate::program::Program;
use std::sync::Arc;

/// How warps of a block map onto programs.
#[derive(Debug, Clone)]
pub enum RoleMap {
    /// Every warp runs program 0.
    Single,
    /// `roles[w]` is the program index for warp `w` of each block.
    ByWarp(Vec<u8>),
    /// Heterogeneous grid: consecutive block ranges with their own warp
    /// role vectors (all the same length). Used for block-level kernel
    /// fusion (Tensor-core blocks + CUDA-core blocks in one launch).
    ByBlock(Vec<(u32, Vec<u8>)>),
}

/// A launchable kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Debug name.
    pub name: String,
    /// Program(s) executed by the block's warps.
    pub programs: Vec<Arc<Program>>,
    /// Warp-to-program mapping.
    pub roles: RoleMap,
    /// Blocks in the (1-D) grid.
    pub blocks: u32,
    /// Warps per block (threads = 32x this).
    pub warps_per_block: u32,
    /// Shared memory bytes per block.
    pub smem_bytes: u32,
    /// Kernel arguments (32-bit words, read via `Ldc`).
    pub args: Vec<u32>,
    /// Optional block dispatch order (a permutation of `0..blocks`); the
    /// hardware work distributor's order is undefined, so heterogeneous
    /// launches interleave their block classes here.
    pub dispatch_order: Option<Vec<u32>>,
}

impl Kernel {
    /// Single-program kernel.
    pub fn single(
        name: impl Into<String>,
        program: Arc<Program>,
        blocks: u32,
        warps_per_block: u32,
        smem_bytes: u32,
        args: Vec<u32>,
    ) -> Self {
        Self {
            name: name.into(),
            programs: vec![program],
            roles: RoleMap::Single,
            blocks,
            warps_per_block,
            smem_bytes,
            args,
            dispatch_order: None,
        }
    }

    /// Multi-role kernel: `roles[w]` selects the program of warp `w`.
    ///
    /// # Panics
    /// Panics if `roles.len() != warps_per_block` or a role is out of range.
    pub fn fused(
        name: impl Into<String>,
        programs: Vec<Arc<Program>>,
        roles: Vec<u8>,
        blocks: u32,
        smem_bytes: u32,
        args: Vec<u32>,
    ) -> Self {
        let warps_per_block = roles.len() as u32;
        assert!(
            roles.iter().all(|&r| (r as usize) < programs.len()),
            "role index out of range"
        );
        Self {
            name: name.into(),
            programs,
            roles: RoleMap::ByWarp(roles),
            blocks,
            warps_per_block,
            smem_bytes,
            args,
            dispatch_order: None,
        }
    }

    /// Heterogeneous grid: consecutive block ranges each with their own
    /// warp-role vector (all the same length). `dispatch_order` may
    /// interleave the ranges.
    ///
    /// # Panics
    /// Panics if ranges are empty, lengths differ, or roles are out of
    /// range.
    pub fn heterogeneous(
        name: impl Into<String>,
        programs: Vec<Arc<Program>>,
        ranges: Vec<(u32, Vec<u8>)>,
        smem_bytes: u32,
        args: Vec<u32>,
    ) -> Self {
        assert!(!ranges.is_empty(), "need at least one block range");
        let warps_per_block = ranges[0].1.len() as u32;
        let blocks = ranges.iter().map(|(n, _)| n).sum();
        for (_, roles) in &ranges {
            assert_eq!(
                roles.len() as u32,
                warps_per_block,
                "uniform warps per block"
            );
            assert!(
                roles.iter().all(|&r| (r as usize) < programs.len()),
                "role index out of range"
            );
        }
        Self {
            name: name.into(),
            programs,
            roles: RoleMap::ByBlock(ranges),
            blocks,
            warps_per_block,
            smem_bytes,
            args,
            dispatch_order: None,
        }
    }

    /// Sets a block dispatch order (must be a permutation of `0..blocks`).
    pub fn with_dispatch_order(mut self, order: Vec<u32>) -> Self {
        assert_eq!(order.len() as u32, self.blocks, "order must cover the grid");
        self.dispatch_order = Some(order);
        self
    }

    /// Program for warp `w` of block `ctaid`.
    pub fn program_of(&self, ctaid: u32, warp_in_block: u32) -> &Arc<Program> {
        &self.programs[self.group_of(ctaid, warp_in_block) as usize]
    }

    /// Role group (program index) of warp `w` in block `ctaid`; barriers
    /// synchronize within a group (named barriers).
    pub fn group_of(&self, ctaid: u32, warp_in_block: u32) -> u8 {
        match &self.roles {
            RoleMap::Single => 0,
            RoleMap::ByWarp(roles) => roles[warp_in_block as usize],
            RoleMap::ByBlock(ranges) => {
                let mut base = 0u32;
                for (count, roles) in ranges {
                    if ctaid < base + count {
                        return roles[warp_in_block as usize];
                    }
                    base += count;
                }
                panic!("ctaid {ctaid} beyond grid");
            }
        }
    }

    /// Total warps across the grid.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.warps_per_block)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn prog(name: &str) -> Arc<Program> {
        let mut p = ProgramBuilder::new(name);
        p.exit();
        p.build().into_arc()
    }

    #[test]
    fn single_kernel_maps_all_warps_to_program_zero() {
        let k = Kernel::single("k", prog("p0"), 4, 8, 0, vec![]);
        assert_eq!(k.program_of(0, 0).name, "p0");
        assert_eq!(k.program_of(3, 7).name, "p0");
        assert_eq!(k.total_warps(), 32);
    }

    #[test]
    fn fused_kernel_role_mapping() {
        let k = Kernel::fused(
            "f",
            vec![prog("tc"), prog("ic"), prog("fc")],
            vec![0, 0, 1, 2, 1, 2],
            2,
            1024,
            vec![],
        );
        assert_eq!(k.warps_per_block, 6);
        assert_eq!(k.program_of(0, 0).name, "tc");
        assert_eq!(k.program_of(1, 3).name, "fc");
        assert_eq!(k.program_of(0, 4).name, "ic");
    }

    #[test]
    #[should_panic(expected = "role index out of range")]
    fn bad_role_panics() {
        let _ = Kernel::fused("f", vec![prog("a")], vec![0, 1], 1, 0, vec![]);
    }

    #[test]
    fn heterogeneous_ranges_and_dispatch_order() {
        let k = Kernel::heterogeneous(
            "h",
            vec![prog("tc"), prog("ic"), prog("fc")],
            vec![(3, vec![0; 4]), (2, vec![1, 1, 2, 2])],
            0,
            vec![],
        )
        .with_dispatch_order(vec![0, 3, 1, 4, 2]);
        assert_eq!(k.blocks, 5);
        assert_eq!(k.warps_per_block, 4);
        assert_eq!(k.program_of(2, 0).name, "tc");
        assert_eq!(k.program_of(3, 0).name, "ic");
        assert_eq!(k.program_of(4, 3).name, "fc");
        assert_eq!(k.dispatch_order.as_ref().unwrap()[1], 3);
    }

    #[test]
    #[should_panic(expected = "uniform warps per block")]
    fn heterogeneous_rejects_ragged_ranges() {
        let _ = Kernel::heterogeneous(
            "h",
            vec![prog("a")],
            vec![(1, vec![0; 4]), (1, vec![0; 8])],
            0,
            vec![],
        );
    }
}
