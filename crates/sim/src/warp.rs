//! Per-warp architectural state.

use crate::program::Program;
use std::sync::Arc;

/// Warp scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for issue.
    Ready,
    /// Parked at a block barrier.
    AtBarrier,
    /// Exited.
    Done,
    /// Stopped issuing forever: an injected hung-warp fault. Invisible to
    /// the event-horizon scan, so a hung machine fast-forwards straight to
    /// the cycle budget and trips the watchdog instead of stepping there.
    Hung,
}

/// One resident warp: 32 threads executing a shared program in lockstep.
#[derive(Debug)]
pub struct Warp {
    /// Program this warp executes (per-role in fused kernels).
    pub program: Arc<Program>,
    /// Next instruction index.
    pub pc: usize,
    /// Register file: register `r`, lane `l` at `regs[r*32 + l]`.
    pub regs: Vec<u32>,
    /// Predicate registers (32-bit lane masks).
    pub preds: Vec<u32>,
    /// Scoreboard: cycle each register's value is available.
    pub reg_ready: Vec<u64>,
    /// Scoreboard for predicate registers.
    pub pred_ready: Vec<u64>,
    /// Scheduling state.
    pub state: WarpState,
    /// Index of the owning block slot within the SM.
    pub block_slot: usize,
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Block index within the grid.
    pub ctaid: u32,
    /// Threads per block.
    pub ntid: u32,
    /// Blocks in grid.
    pub nctaid: u32,
    /// Launch sequence number (GTO "oldest" order).
    pub age: u64,
    /// Role group (program index): barriers synchronize within a group,
    /// modelling CUDA named barriers as used by fused-kernel techniques.
    pub group: u8,
}

impl Warp {
    /// Creates a warp with zeroed registers, ready at cycle 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        program: Arc<Program>,
        block_slot: usize,
        warp_in_block: u32,
        ctaid: u32,
        ntid: u32,
        nctaid: u32,
        age: u64,
        group: u8,
    ) -> Self {
        let nregs = program.nregs as usize;
        let npreds = program.npreds as usize;
        Self {
            program,
            pc: 0,
            regs: vec![0; nregs * 32],
            preds: vec![0; npreds],
            reg_ready: vec![0; nregs],
            pred_ready: vec![0; npreds],
            state: WarpState::Ready,
            block_slot,
            warp_in_block,
            ctaid,
            ntid,
            nctaid,
            age,
            group,
        }
    }

    /// Register value of `reg` in `lane`.
    #[inline]
    pub fn reg(&self, reg: u8, lane: usize) -> u32 {
        self.regs[reg as usize * 32 + lane]
    }

    /// Sets `reg` in `lane`.
    #[inline]
    pub fn set_reg(&mut self, reg: u8, lane: usize, v: u32) {
        self.regs[reg as usize * 32 + lane] = v;
    }

    /// Global thread index of `lane` (1-D blocks).
    #[inline]
    pub fn tid(&self, lane: usize) -> u32 {
        self.warp_in_block * 32 + lane as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn warp_initial_state() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(3);
        p.exit();
        let prog = p.build().into_arc();
        let w = Warp::new(prog, 0, 2, 5, 128, 10, 7, 0);
        assert_eq!(w.state, WarpState::Ready);
        assert_eq!(w.pc, 0);
        assert_eq!(w.regs.len(), 3 * 32);
        assert_eq!(w.tid(0), 64);
        assert_eq!(w.tid(31), 95);
    }

    #[test]
    fn reg_accessors() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(2);
        p.exit();
        let prog = p.build().into_arc();
        let mut w = Warp::new(prog, 0, 0, 0, 32, 1, 0, 0);
        w.set_reg(1, 7, 0xABCD);
        assert_eq!(w.reg(1, 7), 0xABCD);
        assert_eq!(w.reg(1, 8), 0);
    }
}
