//! Per-warp architectural state.

use crate::program::Program;
use std::sync::Arc;

/// Warp scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for issue.
    Ready,
    /// Parked at a block barrier.
    AtBarrier,
    /// Exited.
    Done,
    /// Stopped issuing forever: an injected hung-warp fault. Invisible to
    /// the event-horizon scan, so a hung machine fast-forwards straight to
    /// the cycle budget and trips the watchdog instead of stepping there.
    Hung,
}

/// One resident warp: 32 threads executing a shared program in lockstep.
#[derive(Debug)]
pub struct Warp {
    /// Program this warp executes (per-role in fused kernels).
    pub program: Arc<Program>,
    /// Next instruction index.
    pub pc: usize,
    /// Register file: register `r`, lane `l` at `regs[r*32 + l]`.
    pub regs: Vec<u32>,
    /// Predicate registers (32-bit lane masks).
    pub preds: Vec<u32>,
    /// Scoreboard: cycle each register's value is available.
    pub reg_ready: Vec<u64>,
    /// Scoreboard for predicate registers.
    pub pred_ready: Vec<u64>,
    /// Scheduling state.
    pub state: WarpState,
    /// Index of the owning block slot within the SM.
    pub block_slot: usize,
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Block index within the grid.
    pub ctaid: u32,
    /// Threads per block.
    pub ntid: u32,
    /// Blocks in grid.
    pub nctaid: u32,
    /// Launch sequence number (GTO "oldest" order).
    pub age: u64,
    /// Role group (program index): barriers synchronize within a group,
    /// modelling CUDA named barriers as used by fused-kernel techniques.
    pub group: u8,
}

impl Warp {
    /// Creates a warp with zeroed registers, ready at cycle 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        program: Arc<Program>,
        block_slot: usize,
        warp_in_block: u32,
        ctaid: u32,
        ntid: u32,
        nctaid: u32,
        age: u64,
        group: u8,
    ) -> Self {
        let nregs = program.nregs as usize;
        let npreds = program.npreds as usize;
        Self {
            program,
            pc: 0,
            regs: vec![0; nregs * 32],
            preds: vec![0; npreds],
            reg_ready: vec![0; nregs],
            pred_ready: vec![0; npreds],
            state: WarpState::Ready,
            block_slot,
            warp_in_block,
            ctaid,
            ntid,
            nctaid,
            age,
            group,
        }
    }

    /// Register value of `reg` in `lane`.
    #[inline]
    pub fn reg(&self, reg: u8, lane: usize) -> u32 {
        self.regs[reg as usize * 32 + lane]
    }

    /// Sets `reg` in `lane`.
    #[inline]
    pub fn set_reg(&mut self, reg: u8, lane: usize, v: u32) {
        self.regs[reg as usize * 32 + lane] = v;
    }

    /// The 32-lane register plane of `reg` as a fixed-size array view
    /// (the `[r*32 + l]` layout makes every register one contiguous run;
    /// the array type lets batch bodies index lanes without bounds
    /// checks).
    #[inline]
    pub fn plane(&self, reg: u8) -> &[u32; 32] {
        let b = reg as usize * 32;
        self.regs[b..b + 32]
            .try_into()
            .expect("32-lane register plane")
    }

    /// Mutable 32-lane register plane of `reg`.
    #[inline]
    pub fn plane_mut(&mut self, reg: u8) -> &mut [u32; 32] {
        let b = reg as usize * 32;
        (&mut self.regs[b..b + 32])
            .try_into()
            .expect("32-lane register plane")
    }

    /// Disjoint plane views: `d` mutable plus `N` shared source planes, or
    /// `None` when `d` aliases a source (sources may alias each other).
    /// Lets a plane op run straight over the register file with no
    /// operand snapshots.
    #[inline]
    pub fn plane_mut_and<const N: usize>(
        &mut self,
        d: u8,
        srcs: [u8; N],
    ) -> Option<(&mut [u32; 32], [&[u32; 32]; N])> {
        let fits = |r: u8| (r as usize + 1) * 32 <= self.regs.len();
        if srcs.contains(&d) || !fits(d) || !srcs.iter().all(|&r| fits(r)) {
            // Alias or out-of-range register: the snapshot path (whose
            // safe indexing also panics on the latter) handles it.
            return None;
        }
        let base = self.regs.as_mut_ptr();
        // SAFETY: the bounds check above keeps every 32-element window
        // inside the one `regs` allocation. `d` aliases no source, so the
        // mutable view is disjoint from every shared view; sources may
        // alias each other, which shared references allow. Lifetimes are
        // tied to `&mut self`, so no other access can overlap.
        unsafe {
            let dp = &mut *base.add(d as usize * 32).cast::<[u32; 32]>();
            let sp = srcs.map(|r| &*base.add(r as usize * 32).cast_const().cast::<[u32; 32]>());
            Some((dp, sp))
        }
    }

    /// Global thread index of `lane` (1-D blocks).
    #[inline]
    pub fn tid(&self, lane: usize) -> u32 {
        self.warp_in_block * 32 + lane as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn warp_initial_state() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(3);
        p.exit();
        let prog = p.build().into_arc();
        let w = Warp::new(prog, 0, 2, 5, 128, 10, 7, 0);
        assert_eq!(w.state, WarpState::Ready);
        assert_eq!(w.pc, 0);
        assert_eq!(w.regs.len(), 3 * 32);
        assert_eq!(w.tid(0), 64);
        assert_eq!(w.tid(31), 95);
    }

    #[test]
    fn reg_accessors() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(2);
        p.exit();
        let prog = p.build().into_arc();
        let mut w = Warp::new(prog, 0, 0, 0, 32, 1, 0, 0);
        w.set_reg(1, 7, 0xABCD);
        assert_eq!(w.reg(1, 7), 0xABCD);
        assert_eq!(w.reg(1, 8), 0);
    }

    #[test]
    fn plane_views_alias_the_register_file() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(2);
        p.exit();
        let prog = p.build().into_arc();
        let mut w = Warp::new(prog, 0, 0, 0, 32, 1, 0, 0);
        w.plane_mut(1)[13] = 99;
        assert_eq!(w.reg(1, 13), 99);
        assert_eq!(w.plane(1)[13], 99);
        assert_eq!(w.plane(0)[13], 0);
    }
}
