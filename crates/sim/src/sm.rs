//! Streaming Multiprocessor: warp slots, block slots, four sub-partitions
//! with GTO scheduling and dual-issue to distinct pipes.

use crate::config::{InterpMode, OrinConfig, SchedPolicy};
use crate::decoded::{self, AddrClass, MicroOp, CTRL_PIPE, NO_PRED};
use crate::exec::{self, ExecEffects, MemCtx, Next};
use crate::fault::{FaultConfig, SALT_DRAM, SALT_HANG, SALT_REG};
use crate::isa::{Op, PipeClass};
use crate::launch::Kernel;
use crate::mem::{GlobalMem, StoreOverlay};
use crate::memsys::{MemSystem, L1};
use crate::profile;
use crate::stats::KernelStats;
use crate::warp::{Warp, WarpState};
use std::sync::Arc;

/// Memory backend for one SM cycle step.
///
/// Serial mode services requests against the shared memory system at issue
/// time. The parallel compute phase instead sees a read-only device-memory
/// image, buffers stores into the SM and queues L1 misses; the serial
/// drain ([`Sm::drain_cycle`]) then replays the queues in SM-index order,
/// which reproduces serial-mode L2/DRAM queueing bit-exactly because the
/// serial loop also steps SMs in index order within a cycle.
#[derive(Debug)]
pub(crate) enum SmMem<'a> {
    /// Serial mode: requests reach the shared memory system at issue time.
    Direct {
        /// Chip-shared L2/DRAM model.
        memsys: &'a mut MemSystem,
        /// Device memory, written in place.
        gmem: &'a mut GlobalMem,
    },
    /// Parallel compute phase: read-only memory image, deferred service.
    Deferred {
        /// Device memory as of the start of the cycle.
        gmem: &'a GlobalMem,
    },
}

/// One memory-system call deferred from the parallel compute phase.
#[derive(Debug)]
enum PendingLine {
    /// A line read entering the L2 queue at cycle `at`: an L1 miss arrives
    /// `l1_latency` after issue, a streaming access at issue time.
    Read { at: u64, addr: u64 },
    /// A streaming store consuming DRAM write bandwidth at cycle `at`.
    Write { at: u64 },
}

/// A deferred LSU issue whose ready time the serial drain computes.
#[derive(Debug)]
struct PendingIssue {
    /// Warp slot whose scoreboard is patched once the ready time is known.
    warp_slot: usize,
    /// Destination registers (`(first, count)`); `None` for stores.
    dest: Option<(u8, u8)>,
    /// Ready-time lower bound already known (issue baseline and L1 hits).
    ready: u64,
    /// Deferred memory-system calls, in issue order.
    lines: Vec<PendingLine>,
}

/// One warp scheduler plus its private pipes.
#[derive(Debug)]
struct SubPart {
    /// Next cycle each pipe can accept an issue: [int, fp, tensor, sfu, lsu].
    pipe_free: [u64; 5],
    /// Warp slot indices assigned here, in age order.
    warps: Vec<usize>,
    /// Greedy pointer (GTO): last warp issued from.
    greedy: Option<usize>,
    /// Round-robin rotation cursor (LRR).
    rr_next: usize,
    /// Micro-op interpreter only: a proven lower bound on this
    /// sub-partition's next issue cycle, computed as each candidate scan
    /// completes. While `wake > now` the whole scan is skipped (batched
    /// stepping); any event that can lower a warp's gate from outside the
    /// sub-partition's own scan — barrier release, drain-phase scoreboard
    /// patches, a block launch — resets it to 0.
    wake: u64,
    /// Proven lower bound on the next issue cycle of every candidate
    /// *except* [`SubPart::wake_slot`]. While `wake2 > now`, at most that
    /// one warp can issue, so the scan collapses to a single candidate
    /// check (and dual issue is impossible). Reset to 0 together with
    /// `wake` by every external gate-lowering event, and by any scan whose
    /// folded bounds do not cover all candidates (dual-issue cutoff,
    /// mid-scan barrier release).
    wake2: u64,
    /// The candidate achieving the `wake` bound (the only warp that may
    /// be issuable while `wake2 > now`). May be stale after a reap; the
    /// frozen gate then rejects it harmlessly.
    wake_slot: usize,
}

impl SubPart {
    fn new() -> Self {
        Self {
            pipe_free: [0; 5],
            warps: Vec::new(),
            greedy: None,
            rr_next: 0,
            wake: 0,
            wake2: 0,
            wake_slot: 0,
        }
    }
}

/// Exact earliest cycle (at least `base`) at which `mop`'s register and
/// predicate constraints admit issue for `w`: the max over its source
/// reads, destination range (WAW) and predicate operands of the warp's
/// scoreboard ready times. This is the micro-op interpreter's gate value;
/// it mirrors the reference interpreter's per-cycle scoreboard scans,
/// whose constraint set [`crate::decoded`] proves equal by construction.
#[inline]
fn mop_earliest(w: &Warp, mop: &MicroOp, base: u64) -> u64 {
    let mut e = base;
    for i in 0..mop.n_src as usize {
        e = e.max(w.reg_ready[mop.srcs[i] as usize]);
    }
    for r in u16::from(mop.dest_first)..u16::from(mop.dest_first) + u16::from(mop.dest_count) {
        e = e.max(w.reg_ready[r as usize]);
    }
    if mop.src_pred != NO_PRED {
        e = e.max(w.pred_ready[mop.src_pred as usize]);
    }
    if mop.dest_pred != NO_PRED {
        e = e.max(w.pred_ready[mop.dest_pred as usize]);
    }
    e
}

/// A resident thread block.
#[derive(Debug)]
struct BlockSlot {
    smem: Vec<u8>,
    active_warps: u32,
    /// Active (non-exited) warps per role group.
    active_per_group: Vec<u32>,
    /// Warps currently parked at the group's named barrier.
    at_barrier_per_group: Vec<u32>,
    warp_slots: Vec<usize>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    l1: L1,
    subparts: Vec<SubPart>,
    warps: Vec<Option<Warp>>,
    free_warp_slots: Vec<usize>,
    blocks: Vec<Option<BlockSlot>>,
    free_block_slots: Vec<usize>,
    resident_warps: u32,
    resident_blocks: u32,
    resident_smem: u32,
    // copied config
    max_warps: u32,
    max_blocks: u32,
    smem_capacity: u32,
    alu_latency: u64,
    tc_occupancy: u64,
    tc_latency: u64,
    sfu_occupancy: u64,
    sfu_latency: u64,
    lsu_occ_per_line: u64,
    smem_latency: u64,
    sched: SchedPolicy,
    scratch_srcs: Vec<u8>,
    scratch_preds: Vec<u8>,
    /// Micro-op interpreter enabled ([`InterpMode::Micro`]); false selects
    /// the reference interpreter, which re-derives operands from the `Op`
    /// enum every cycle and serves as the differential baseline.
    interp_fast: bool,
    /// Per-warp-slot issue gate (micro-op interpreter only). Meaning:
    ///
    /// * `0` — unknown; run the full pipe and scoreboard checks (set at
    ///   launch, barrier release, and for a malformed pc past the end).
    /// * `u64::MAX` — frozen; the warp cannot issue without an external
    ///   event (slot empty, warp done/hung, parked at a barrier).
    /// * anything else — the *exact* earliest cycle at which the current
    ///   instruction's register/predicate constraints admit issue.
    ///
    /// Exactness is maintained at every point a constraint value can
    /// change: the warp's own issue recomputes the gate from the new pc,
    /// and a drain-phase scoreboard patch refreshes it. Everything the
    /// gate folds over is otherwise frozen, so `gate > now` rejects
    /// without touching the `Warp` and `0 < gate <= now` issues without
    /// re-scanning the scoreboard.
    warp_gate: Vec<u64>,
    /// Pipe code ([`crate::decoded::pipe_code`]) of each warp slot's
    /// current instruction; exact whenever the slot's gate is neither `0`
    /// nor `u64::MAX`, so the dual-issue mask and pipe-busy rejections
    /// need no `Warp` dereference either.
    warp_pipe: Vec<u8>,
    /// Reusable side-effect summary for [`exec::execute`] (keeps the
    /// line vector's allocation out of the issue path).
    scratch_fx: ExecEffects,
    /// Reusable candidate-slot snapshot for the scheduler scan: warp
    /// membership cannot change mid-scan, so copying the sub-partition's
    /// slot list once lets the loop run borrow-free over plain indices.
    scratch_cand: Vec<usize>,
    /// Set by [`Sm::try_issue`] when an issue released a barrier, telling
    /// the in-progress scheduler scan that its folded wake bound is stale.
    wake_dirty: bool,
    /// Minimum of the four sub-partition wake bounds, recomputed at the
    /// end of every stepped cycle (micro-op interpreter only). While it
    /// lies in the future the whole SM step is skipped — GTO only, since
    /// LRR must still rotate each sub-partition's cursor every cycle.
    /// External gate-lowering events (launch, drain patch) reset it to 0
    /// alongside the per-sub-partition bounds.
    sm_wake: u64,
    /// Set when a warp retires ([`Next::ExitWarp`]): blocks can only reach
    /// zero active warps on such a cycle, so the per-cycle reap pass is
    /// skipped entirely while this is false.
    reap_check: bool,
    /// LSU issues of the current cycle awaiting the serial drain.
    pending: Vec<PendingIssue>,
    /// Global stores of the current cycle (parallel mode): a word-granular
    /// program-order log plus a hashed read index, committed to device
    /// memory by [`Sm::drain_cycle`].
    store_buf: StoreOverlay,
    /// Per-SM statistics accumulated during parallel compute phases.
    stats: KernelStats,
    /// Blocks retired during the current cycle (parallel mode).
    done_this_cycle: u32,
    /// Event-horizon fast-forward enabled (copied config).
    ff_enabled: bool,
    /// Horizon cache, valid only while `ff_silent && !ff_dirty`: the
    /// earliest cycle at which any of this SM's warps could issue
    /// (`u64::MAX` if none ever can on its own).
    ff_horizon: u64,
    /// True when [`Sm::ff_horizon`] must be recomputed before its next
    /// read. A silent SM is frozen — nothing in the issue conditions can
    /// change until it issues or receives a block — so the absolute-cycle
    /// horizon stays exact across consecutive silent cycles and the warp
    /// scan runs at most once per activity transition, and only on cycles
    /// where the whole machine went silent (the loops never ask
    /// otherwise).
    ff_dirty: bool,
    /// False on cycles where this SM issued (or fast-forward is off): the
    /// cheap per-cycle signal the loops AND together before touching any
    /// horizon.
    ff_silent: bool,
    /// This SM's index in the machine (seeds its fault-decision streams).
    sm_id: u32,
    /// Fault-injection configuration (copied from the machine config).
    fault: FaultConfig,
    /// Issue-event counter feeding the register-flip and hung-warp
    /// decision streams. Deliberately *not* reset per kernel: re-executing
    /// a faulted kernel sees fresh decisions (transient-fault model).
    fault_issue_ctr: u64,
    /// DRAM-served-line counter feeding the DRAM-corruption stream. Both
    /// cycle-loop flavours service the same per-SM line sequence, so the
    /// stream is identical across [`crate::config::SimMode`]s.
    fault_mem_ctr: u64,
}

impl Sm {
    /// Builds SM number `sm_id` from the machine config.
    pub fn new(cfg: &OrinConfig, sm_id: u32) -> Self {
        let max_warps = cfg.max_warps_per_sm;
        let max_blocks = cfg.max_blocks_per_sm;
        Self {
            l1: L1::new(cfg),
            subparts: (0..cfg.subpartitions).map(|_| SubPart::new()).collect(),
            warps: (0..max_warps).map(|_| None).collect(),
            free_warp_slots: (0..max_warps as usize).rev().collect(),
            blocks: (0..max_blocks).map(|_| None).collect(),
            free_block_slots: (0..max_blocks as usize).rev().collect(),
            resident_warps: 0,
            resident_blocks: 0,
            resident_smem: 0,
            max_warps,
            max_blocks,
            smem_capacity: cfg.smem_per_sm,
            alu_latency: u64::from(cfg.alu_latency),
            tc_occupancy: u64::from(cfg.tc_occupancy),
            tc_latency: u64::from(cfg.tc_latency),
            sfu_occupancy: u64::from(cfg.sfu_occupancy),
            sfu_latency: u64::from(cfg.sfu_latency),
            lsu_occ_per_line: u64::from(cfg.lsu_occupancy_per_line),
            smem_latency: u64::from(cfg.smem_latency),
            sched: cfg.sched,
            scratch_srcs: Vec::with_capacity(16),
            scratch_preds: Vec::with_capacity(4),
            interp_fast: cfg.interp == InterpMode::Micro,
            warp_gate: vec![u64::MAX; max_warps as usize],
            warp_pipe: vec![CTRL_PIPE; max_warps as usize],
            scratch_fx: ExecEffects::default(),
            scratch_cand: Vec::with_capacity(max_warps as usize),
            wake_dirty: false,
            sm_wake: 0,
            reap_check: false,
            pending: Vec::new(),
            store_buf: StoreOverlay::default(),
            stats: KernelStats::default(),
            done_this_cycle: 0,
            ff_enabled: cfg.fast_forward,
            ff_horizon: 0,
            ff_dirty: true,
            ff_silent: false,
            sm_id,
            fault: cfg.fault,
            fault_issue_ctr: 0,
            fault_mem_ctr: 0,
        }
    }

    /// Prepares for a new kernel: L1 invalidated, pipes reset.
    pub fn new_kernel(&mut self) {
        self.l1.flush();
        for sp in &mut self.subparts {
            sp.pipe_free = [0; 5];
            sp.greedy = None;
            sp.wake = 0;
            sp.wake2 = 0;
        }
        self.pending.clear();
        self.store_buf.clear();
        // No warps are resident between kernels on the normal path (and
        // `hard_reset` evicts them first), so every slot is frozen.
        self.warp_gate.fill(u64::MAX);
        self.warp_pipe.fill(CTRL_PIPE);
        self.stats = KernelStats::default();
        self.done_this_cycle = 0;
        self.wake_dirty = false;
        self.sm_wake = 0;
        self.reap_check = false;
        self.ff_dirty = true;
        self.ff_silent = false;
    }

    /// True when the SM has any resident work.
    pub fn busy(&self) -> bool {
        self.resident_blocks > 0
    }

    /// Full reset after an aborted launch (timeout or contained fault):
    /// evicts every resident warp and block so the SM is immediately
    /// reusable for a retry. [`Sm::new_kernel`] deliberately does not do
    /// this — on the normal path residency drains to zero by itself.
    /// Fault-decision counters survive (retries must see fresh decisions).
    pub fn hard_reset(&mut self) {
        let n_warps = self.warps.len();
        let n_blocks = self.blocks.len();
        self.warps.iter_mut().for_each(|w| *w = None);
        self.free_warp_slots = (0..n_warps).rev().collect();
        self.blocks.iter_mut().for_each(|b| *b = None);
        self.free_block_slots = (0..n_blocks).rev().collect();
        for sp in &mut self.subparts {
            sp.warps.clear();
            sp.greedy = None;
            sp.rr_next = 0;
        }
        self.resident_warps = 0;
        self.resident_blocks = 0;
        self.resident_smem = 0;
        self.new_kernel();
    }

    /// Capacity check of [`Sm::try_launch`] without side effects: true when
    /// a block of `kernel` could be made resident right now. The
    /// fast-forward loops consult this before skipping — while it is false
    /// and nothing issues, the work distributor cannot change SM state
    /// either.
    pub fn can_accept(&self, kernel: &Kernel) -> bool {
        let wpb = kernel.warps_per_block;
        self.resident_warps + wpb <= self.max_warps
            && self.resident_blocks < self.max_blocks
            && self.resident_smem + kernel.smem_bytes <= self.smem_capacity
            && self.free_warp_slots.len() >= wpb as usize
            && !self.free_block_slots.is_empty()
    }

    /// Tries to make block `ctaid` resident; returns success.
    pub fn try_launch(&mut self, kernel: &Kernel, ctaid: u32, age: &mut u64) -> bool {
        if !self.can_accept(kernel) {
            return false;
        }
        // A new block changes the issue picture: recompute the horizon
        // before the next read (and never skip past this cycle's step).
        self.ff_dirty = true;
        self.ff_silent = false;
        let wpb = kernel.warps_per_block;
        let block_slot = self.free_block_slots.pop().expect("checked non-empty");
        let mut warp_slots = Vec::with_capacity(wpb as usize);
        let n_groups = kernel.programs.len();
        let mut active_per_group = vec![0u32; n_groups];
        for w in 0..wpb {
            let slot = self.free_warp_slots.pop().expect("checked capacity");
            let group = kernel.group_of(ctaid, w);
            active_per_group[group as usize] += 1;
            let warp = Warp::new(
                kernel.program_of(ctaid, w).clone(),
                block_slot,
                w,
                ctaid,
                wpb * 32,
                kernel.blocks,
                *age,
                group,
            );
            *age += 1;
            self.warps[slot] = Some(warp);
            // Fresh warp: constraints unknown until the first full check.
            self.warp_gate[slot] = 0;
            let sp = (w as usize) % self.subparts.len();
            self.subparts[sp].warps.push(slot);
            warp_slots.push(slot);
        }
        self.blocks[block_slot] = Some(BlockSlot {
            smem: vec![0; kernel.smem_bytes as usize],
            active_warps: wpb,
            active_per_group,
            at_barrier_per_group: vec![0; n_groups],
            warp_slots,
        });
        self.resident_warps += wpb;
        self.resident_blocks += 1;
        self.resident_smem += kernel.smem_bytes;
        // The new warps (gate 0) may land in sub-partitions whose wake
        // bound was computed without them.
        for sp in &mut self.subparts {
            sp.wake = 0;
            sp.wake2 = 0;
        }
        self.sm_wake = 0;
        true
    }

    /// Advances one cycle in serial mode; returns how many blocks completed
    /// this cycle.
    pub fn step(
        &mut self,
        now: u64,
        memsys: &mut MemSystem,
        gmem: &mut GlobalMem,
        args: &[u32],
        stats: &mut KernelStats,
    ) -> u32 {
        let before = stats.issued.total();
        let done = self.step_inner(now, &mut SmMem::Direct { memsys, gmem }, args, stats);
        self.note_activity(stats.issued.total() - before);
        done
    }

    /// Parallel compute phase: advances one cycle against a read-only
    /// device-memory image, accumulating counters into this SM's private
    /// statistics. Stores and L1 misses queue for [`Sm::drain_cycle`].
    /// Also records the silence flag that lets the cycle loop consider an
    /// event-horizon jump after the serial memory phase.
    pub(crate) fn step_compute(&mut self, now: u64, gmem: &GlobalMem, args: &[u32]) {
        let mut stats = std::mem::take(&mut self.stats);
        let before = stats.issued.total();
        let done = self.step_inner(now, &mut SmMem::Deferred { gmem }, args, &mut stats);
        let issued = stats.issued.total() - before;
        self.stats = stats;
        self.done_this_cycle += done;
        self.note_activity(issued);
    }

    /// Records whether the cycle just stepped issued anything on this SM.
    /// An issuing cycle clears `ff_silent` (no skip is possible — and, in
    /// parallel mode, any `u64::MAX` scoreboard placeholders it created
    /// are not yet patched, so a horizon computed now would overshoot)
    /// and marks the cached horizon stale; a silent cycle merely flags
    /// the SM as skippable. The expensive warp scan is deferred to
    /// [`Sm::ff_horizon`], which the cycle loops call only when *every*
    /// SM is silent — so a machine where some SM always issues never
    /// scans at all.
    fn note_activity(&mut self, issued: u64) {
        if !self.ff_enabled || issued > 0 {
            self.ff_silent = false;
            self.ff_dirty = true;
        } else {
            self.ff_silent = true;
        }
    }

    /// True when the last stepped cycle issued nothing on this SM (always
    /// false with fast-forward disabled). Only then may [`Sm::ff_horizon`]
    /// be consulted.
    pub(crate) fn is_ff_silent(&self) -> bool {
        self.ff_silent
    }

    /// The event horizon of this (currently silent) SM, computed on first
    /// read after an activity transition and cached while the SM stays
    /// frozen. A silent cycle can have left no scoreboard placeholder
    /// behind, so every ready time the scan reads is final;
    /// [`Sm::try_launch`] re-dirties the cache when a new block arrives.
    pub(crate) fn ff_horizon(&mut self) -> u64 {
        debug_assert!(self.ff_silent, "horizon read on an active SM");
        if self.ff_dirty {
            self.ff_horizon = self.compute_horizon();
            self.ff_dirty = false;
        }
        self.ff_horizon
    }

    /// Earliest cycle at which any resident warp of this SM could issue,
    /// assuming no external event (a block launch) happens first;
    /// `u64::MAX` when no warp can ever issue on its own (SM empty, all
    /// warps exited or parked at a barrier).
    ///
    /// This is a sound lower bound on this SM's next state change: every
    /// per-warp issue constraint — scoreboard ready times, pipe
    /// busy-until times, warp state — is frozen while nothing issues, so
    /// if every warp's earliest admissible cycle exceeds `now`, all
    /// cycles strictly before the minimum are provably silent.
    /// Both interpreter modes use the decoded micro-ops here — the values
    /// are identical to an `Op`-derived scan by the constraint-set
    /// invariant of [`crate::decoded`], and the scan runs only on cycles
    /// where the whole machine went silent.
    fn compute_horizon(&self) -> u64 {
        let mut horizon = u64::MAX;
        for sp in self.subparts.iter() {
            for &slot in &sp.warps {
                let w = match self.warps[slot].as_ref() {
                    Some(w) if w.state == WarpState::Ready => w,
                    _ => continue,
                };
                let mop = &w.program.decoded().mops[w.pc];
                let mut e = mop_earliest(w, mop, 0);
                if (mop.pipe as usize) < 5 {
                    e = e.max(sp.pipe_free[mop.pipe as usize]);
                }
                horizon = horizon.min(e);
            }
        }
        horizon
    }

    /// Applies the per-cycle scheduler-state evolution for `delta` skipped
    /// cycles. Under LRR the rotation cursor advances exactly as `delta`
    /// stalled stepping cycles would have moved it; GTO state is
    /// time-invariant while nothing issues, as is everything else in the
    /// SM (warp membership cannot change during a skip — launches and
    /// retirements happen only on issuing or dispatching cycles).
    pub(crate) fn fast_forward_by(&mut self, delta: u64) {
        if self.sched != SchedPolicy::Lrr || delta == 0 {
            return;
        }
        for sp in &mut self.subparts {
            let n = sp.warps.len();
            if n == 0 {
                continue;
            }
            // One stalled cycle maps rr_next to (rr_next % n) + 1, landing
            // in 1..=n; the remaining delta - 1 steps rotate modulo n.
            let first = (sp.rr_next % n) + 1;
            let rest = ((delta - 1) % n as u64) as usize;
            sp.rr_next = (first - 1 + rest) % n + 1;
        }
    }

    /// Serial memory-service phase: applies this SM's buffered stores to
    /// device memory, replays its deferred requests against the shared
    /// memory system (draining SMs in index order reproduces serial-mode
    /// queueing exactly) and patches the waiting scoreboards. Returns the
    /// blocks retired by this SM during the cycle.
    pub(crate) fn drain_cycle(&mut self, memsys: &mut MemSystem, gmem: &mut GlobalMem) -> u32 {
        self.store_buf.commit(gmem);
        let mut pending = std::mem::take(&mut self.pending);
        let mut patched = false;
        for p in pending.drain(..) {
            let mut ready = p.ready;
            let mut flips: Vec<u64> = Vec::new();
            for line in &p.lines {
                match *line {
                    PendingLine::Read { at, addr } => {
                        let (t, from_dram) = memsys.line_request_traced(at, addr);
                        ready = ready.max(t);
                        // Same decision stream as serial mode: one event
                        // per DRAM-served read, in per-SM drain order.
                        if from_dram && self.fault.enabled {
                            let ctr = self.fault_mem_ctr;
                            self.fault_mem_ctr += 1;
                            if p.dest.is_some() {
                                if let Some(e) = self.fault.roll(
                                    SALT_DRAM,
                                    self.sm_id,
                                    ctr,
                                    self.fault.dram_flip_rate,
                                ) {
                                    flips.push(e);
                                }
                            }
                        }
                    }
                    PendingLine::Write { at } => memsys.write_request(at),
                }
            }
            if let Some((first, count)) = p.dest {
                let w = self.warps[p.warp_slot]
                    .as_mut()
                    .expect("warp with an in-flight load stays resident");
                for e in flips {
                    let r = first + (e % u64::from(count)) as u8;
                    let lane = ((e >> 8) % 32) as usize;
                    let bit = ((e >> 16) % 32) as u32;
                    w.set_reg(r, lane, w.reg(r, lane) ^ (1 << bit));
                    self.stats.faults_injected += 1;
                }
                for r in first..first + count {
                    w.reg_ready[r as usize] = ready;
                }
                // The patch may have *lowered* ready times the slot's gate
                // folded over (the `u64::MAX` placeholders): refresh it to
                // the exact value. A non-Ready warp (exited or parked with
                // the load still in flight) stays frozen; barrier release
                // resets its gate separately.
                if self.interp_fast && w.state == WarpState::Ready {
                    let dec = w.program.decoded();
                    if w.pc < dec.mops.len() {
                        let mop = &dec.mops[w.pc];
                        self.warp_gate[p.warp_slot] = mop_earliest(w, mop, 0);
                        self.warp_pipe[p.warp_slot] = mop.pipe;
                    } else {
                        self.warp_gate[p.warp_slot] = 0;
                    }
                    patched = true;
                }
            }
        }
        if patched {
            // A patch can lower a gate a sub-partition's wake bound folded
            // over; rescan everywhere next cycle.
            for sp in &mut self.subparts {
                sp.wake = 0;
                sp.wake2 = 0;
            }
            self.sm_wake = 0;
        }
        self.pending = pending;
        std::mem::take(&mut self.done_this_cycle)
    }

    /// Folds the per-SM counters accumulated by parallel compute phases
    /// into `stats` (all counters are additive across SMs).
    pub(crate) fn merge_stats_into(&mut self, stats: &mut KernelStats) {
        let own = std::mem::take(&mut self.stats);
        stats.accumulate(&own);
    }

    /// Drains this SM's unmerged injected-fault count (the launch error
    /// path, where [`Sm::merge_stats_into`] never runs).
    pub(crate) fn take_faults_injected(&mut self) -> u64 {
        std::mem::take(&mut self.stats.faults_injected)
    }

    /// One cycle of scheduling and issue against `mem`.
    fn step_inner(
        &mut self,
        now: u64,
        mem: &mut SmMem<'_>,
        args: &[u32],
        stats: &mut KernelStats,
    ) -> u32 {
        let mut blocks_done = 0;
        let sched = self.sched;
        // Whole-SM batched skip: the per-cycle work below is a no-op while
        // every sub-partition's wake bound lies in the future (GTO only;
        // LRR still needs its per-sub-partition cursor rotation, handled
        // by the per-sub-partition skip branch).
        if self.interp_fast && sched == SchedPolicy::Gto && self.sm_wake > now {
            return 0;
        }
        for sp_idx in 0..self.subparts.len() {
            // Batched stepping (micro-op interpreter only): `wake` is a
            // proven lower bound on this sub-partition's next issue cycle,
            // so the whole candidate scan is skipped while it lies in the
            // future. Only LRR's per-cycle rotation must still advance,
            // exactly as a fully stalled scan would have moved it.
            if self.interp_fast && self.subparts[sp_idx].wake > now {
                if sched == SchedPolicy::Lrr {
                    let sp = &mut self.subparts[sp_idx];
                    let n = sp.warps.len();
                    if n > 0 {
                        sp.rr_next = sp.rr_next % n + 1;
                    }
                }
                continue;
            }
            // Single-candidate cycles: while `wake2 > now` every candidate
            // except `wake_slot` provably cannot issue, so the scan
            // collapses to one gate check (dual issue needs a second ripe
            // warp — impossible). Scheduler equivalence: with exactly one
            // admissible warp, GTO and LRR both select it regardless of
            // greedy pointer or rotation, the greedy update below matches
            // what the full scan would set, and LRR's cursor advance is
            // issue-independent (`start + 1`). Rejections are
            // side-effect-free, so the fault-decision stream is untouched.
            //
            // Control ops are excluded: a `Bar`/`Exit` issue can release
            // sibling warps that the reference scan would then reach —
            // and possibly dual-issue — later in the *same* cycle, so any
            // possibly-releasing candidate (and any warp whose pipe code
            // is not yet exact, gate 0 or frozen) takes the full scan.
            if self.interp_fast
                && self.subparts[sp_idx].wake2 > now
                && self.warp_gate[self.subparts[sp_idx].wake_slot].wrapping_sub(1) < u64::MAX - 1
                && self.warp_pipe[self.subparts[sp_idx].wake_slot] != CTRL_PIPE
            {
                let slot = self.subparts[sp_idx].wake_slot;
                self.wake_dirty = false;
                let mut issued: u8 = 0;
                let bound = match self.gate_defer(slot, sp_idx, now, 0) {
                    Some(e) => e,
                    None => {
                        if self.try_issue(slot, sp_idx, now, mem, args, stats, &mut issued)
                            && sched == SchedPolicy::Gto
                        {
                            self.subparts[sp_idx].greedy = Some(slot);
                        }
                        self.gate_next_bound(slot, sp_idx, now)
                    }
                };
                let dirty = self.wake_dirty;
                let sp = &mut self.subparts[sp_idx];
                if sched == SchedPolicy::Lrr {
                    let n = sp.warps.len();
                    if n > 0 {
                        sp.rr_next = sp.rr_next % n + 1;
                    }
                }
                if dirty {
                    sp.wake = now + 1;
                    sp.wake2 = 0;
                } else {
                    // `wake2` stays a valid bound for the others; the
                    // refreshed `bound` re-covers `wake_slot`.
                    sp.wake = bound.min(sp.wake2).max(now + 1);
                }
                continue;
            }
            let mut issued: u8 = 0; // bitmask over pipe_idx + ctrl bit 5
            let mut issues_left = 2;
            // Two smallest of the scanned warps' provable next-issue cycles
            // (and the slot achieving the min). An issue mid-scan cannot
            // invalidate bounds folded before it: other warps' gates are
            // untouched and pipe reservations only move later, so earlier
            // folds stay valid *lower* bounds. The issued warp itself folds
            // its refreshed gate right after the issue. The two stale cases
            // — a barrier release re-gating warps to the unknown sentinel,
            // and a scan cut short by dual issue — force a rescan next
            // cycle instead.
            let mut min_next = u64::MAX;
            let mut min2_next = u64::MAX;
            let mut min_slot = usize::MAX;
            let mut fold = |e: u64, s: usize| {
                if e < min_next {
                    min2_next = min_next;
                    min_next = e;
                    min_slot = s;
                } else if e < min2_next {
                    min2_next = e;
                }
            };
            self.wake_dirty = false;
            // Snapshot the candidate slots: warp membership only changes at
            // launch and reap, never mid-scan, so the copy both matches the
            // live list exactly and frees the loop from re-borrowing `self`
            // (and re-checking bounds) around every `try_issue` call.
            let mut cand = std::mem::take(&mut self.scratch_cand);
            cand.clear();
            cand.extend_from_slice(&self.subparts[sp_idx].warps);
            let n_warps = cand.len();
            match self.sched {
                SchedPolicy::Gto => {
                    // Candidate order: greedy warp first, then age order.
                    let greedy = self.subparts[sp_idx].greedy;
                    let mut ci = 0usize;
                    while issues_left > 0 && ci <= n_warps {
                        let slot = if ci == 0 {
                            match greedy {
                                Some(g) if cand.contains(&g) => g,
                                _ => {
                                    ci += 1;
                                    continue;
                                }
                            }
                        } else {
                            let s = cand[ci - 1];
                            if Some(s) == greedy {
                                ci += 1;
                                continue; // already tried as greedy
                            }
                            s
                        };
                        ci += 1;
                        if self.interp_fast {
                            if let Some(e) = self.gate_defer(slot, sp_idx, now, issued) {
                                fold(e, slot);
                                continue;
                            }
                        }
                        if self.try_issue(slot, sp_idx, now, mem, args, stats, &mut issued) {
                            issues_left -= 1;
                            if issues_left == 0 {
                                stats.dual_issue_cycles += 1;
                            }
                            self.subparts[sp_idx].greedy = Some(slot);
                            if self.interp_fast {
                                fold(self.gate_next_bound(slot, sp_idx, now), slot);
                            }
                        } else if self.interp_fast {
                            fold(self.gate_next_bound(slot, sp_idx, now), slot);
                        }
                    }
                }
                SchedPolicy::Lrr => {
                    // Rotate the starting candidate each cycle.
                    if n_warps > 0 {
                        let start = self.subparts[sp_idx].rr_next % n_warps;
                        let mut ci = 0usize;
                        while issues_left > 0 && ci < n_warps {
                            let idx = (start + ci) % n_warps;
                            let slot = cand[idx];
                            ci += 1;
                            if self.interp_fast {
                                if let Some(e) = self.gate_defer(slot, sp_idx, now, issued) {
                                    fold(e, slot);
                                    continue;
                                }
                            }
                            if self.try_issue(slot, sp_idx, now, mem, args, stats, &mut issued) {
                                issues_left -= 1;
                                if issues_left == 0 {
                                    stats.dual_issue_cycles += 1;
                                }
                                if self.interp_fast {
                                    fold(self.gate_next_bound(slot, sp_idx, now), slot);
                                }
                            } else if self.interp_fast {
                                fold(self.gate_next_bound(slot, sp_idx, now), slot);
                            }
                        }
                        self.subparts[sp_idx].rr_next = start + 1;
                    }
                }
            }
            if self.interp_fast {
                // A barrier release re-gated warps to the unknown sentinel
                // mid-scan, and a dual-issue-exhausted scan left candidates
                // unexamined: both must rescan next cycle (`wake2` must not
                // claim coverage it lacks). Otherwise every candidate
                // (including issuers, post-refresh) was folded. Clamp
                // `wake` to `now + 1`: one scan per cycle. `wake2` is left
                // unclamped — it is a proof bound, not a schedule.
                let sp = &mut self.subparts[sp_idx];
                if self.wake_dirty || issues_left == 0 {
                    sp.wake = now + 1;
                    sp.wake2 = 0;
                } else {
                    sp.wake = min_next.max(now + 1);
                    sp.wake2 = min2_next;
                    sp.wake_slot = min_slot;
                }
            }
            self.scratch_cand = cand;
        }
        if self.interp_fast {
            // Refresh the whole-SM bound from the per-sub-partition ones
            // (mid-cycle events — barrier release, a scan's own folds —
            // are all reflected in `sp.wake` by now).
            let mut m = u64::MAX;
            for sp in &self.subparts {
                m = m.min(sp.wake);
            }
            self.sm_wake = m;
        }
        // Reap finished blocks (all warps Done). A block can only reach
        // zero active warps on a cycle some warp retired, so the pass is
        // skipped unless [`Sm::try_issue`] saw an `ExitWarp` — in either
        // interpreter mode (the flag is a plain fact about this cycle, not
        // a fast-path heuristic).
        if !self.reap_check {
            return 0;
        }
        self.reap_check = false;
        for b in 0..self.blocks.len() {
            let finished = match &self.blocks[b] {
                Some(blk) => blk.active_warps == 0,
                None => false,
            };
            if finished {
                let blk = self.blocks[b].take().expect("checked above");
                for &ws in &blk.warp_slots {
                    self.warps[ws] = None;
                    self.warp_gate[ws] = u64::MAX;
                    self.free_warp_slots.push(ws);
                    for sp in &mut self.subparts {
                        if let Some(pos) = sp.warps.iter().position(|&x| x == ws) {
                            sp.warps.remove(pos);
                        }
                        if sp.greedy == Some(ws) {
                            sp.greedy = None;
                        }
                    }
                }
                self.resident_warps -= blk.warp_slots.len() as u32;
                self.resident_blocks -= 1;
                self.resident_smem -= blk.smem.len() as u32;
                self.free_block_slots.push(b);
                blocks_done += 1;
            }
        }
        blocks_done
    }

    /// Batched-stepping pre-check, inlined into the scheduler candidate
    /// loops: `Some(e)` proves warp `slot` cannot issue before cycle `e`
    /// (so the scan skips it and folds `e` into the sub-partition's wake
    /// bound), `None` means a full [`Sm::try_issue`] attempt is required.
    /// The check is side-effect-free and its reject set mirrors the
    /// pre-check at the top of `try_issue` exactly, so skipping here
    /// cannot perturb the fault-decision stream.
    #[inline(always)]
    fn gate_defer(&self, slot: usize, sp_idx: usize, now: u64, issued: u8) -> Option<u64> {
        let gate = self.warp_gate[slot];
        if gate == 0 {
            return None; // unknown: must run the full checks
        }
        let pbit = self.warp_pipe[slot] as usize;
        if gate > now {
            if gate == u64::MAX {
                return Some(u64::MAX); // frozen: never constrains the wake
            }
            let e = if pbit < 5 {
                gate.max(self.subparts[sp_idx].pipe_free[pbit])
            } else {
                gate
            };
            return Some(e);
        }
        if issued & (1 << pbit) != 0 {
            // Intra-cycle pipe conflict; implies an issue happened, so the
            // wake collapses to `now + 1` regardless of this bound.
            return Some(now + 1);
        }
        if pbit < 5 && self.subparts[sp_idx].pipe_free[pbit] > now {
            return Some(self.subparts[sp_idx].pipe_free[pbit]);
        }
        None
    }

    /// Lower bound on warp `slot`'s next possible issue cycle after a
    /// rejected `try_issue` at `now` (the attempt may have cached a fresh
    /// exact gate, or frozen the warp via a hung fault).
    #[inline(always)]
    fn gate_next_bound(&self, slot: usize, sp_idx: usize, now: u64) -> u64 {
        let gate = self.warp_gate[slot];
        if gate == 0 {
            return now + 1; // still unknown: rescan next cycle
        }
        if gate == u64::MAX {
            return u64::MAX;
        }
        let pbit = self.warp_pipe[slot] as usize;
        if pbit < 5 {
            gate.max(self.subparts[sp_idx].pipe_free[pbit])
        } else {
            gate
        }
    }

    /// Attempts to issue from warp `slot`; returns true on issue.
    ///
    /// With the micro-op interpreter the overwhelmingly common outcome —
    /// a stalled warp — is decided by two array loads (`warp_gate`,
    /// `warp_pipe`) without dereferencing the `Warp` or matching on the
    /// `Op` enum; the full scoreboard scan runs only when a gate is the
    /// unknown sentinel `0`. All rejection paths are side-effect-free and
    /// the accept predicate is identical to the reference interpreter's,
    /// so the fault-decision stream (rolled only after every pre-issue
    /// check passes) is preserved bit-exactly.
    #[allow(clippy::too_many_arguments)]
    fn try_issue(
        &mut self,
        slot: usize,
        sp_idx: usize,
        now: u64,
        mem: &mut SmMem<'_>,
        args: &[u32],
        stats: &mut KernelStats,
        issued: &mut u8,
    ) -> bool {
        // Callers run [`Sm::gate_defer`] first, so on the fast path a
        // nonzero gate here is exact and `<= now` with the pipe free: the
        // scoreboard needs no re-scan. Only the unknown sentinel `0` (a
        // launch or barrier release) still takes the full checks below.
        // Copy timing scalars, then split-borrow the containers.
        let alu_latency = self.alu_latency;
        let tc_occupancy = self.tc_occupancy;
        let tc_latency = self.tc_latency;
        let sfu_occupancy = self.sfu_occupancy;
        let sfu_latency = self.sfu_latency;
        let lsu_occ_per_line = self.lsu_occ_per_line;
        let smem_latency = self.smem_latency;
        let fault = self.fault;
        let sm_id = self.sm_id;
        let interp_fast = self.interp_fast;
        let Sm {
            warps,
            blocks,
            subparts,
            l1,
            scratch_srcs,
            scratch_preds,
            pending,
            store_buf,
            fault_issue_ctr,
            fault_mem_ctr,
            warp_gate,
            warp_pipe,
            scratch_fx,
            wake_dirty,
            reap_check,
            ..
        } = self;

        let w = match warps[slot].as_mut() {
            Some(w) if w.state == WarpState::Ready => w,
            _ => return false,
        };
        let pc = w.pc;
        let group = w.group as usize;

        // Issue metadata: read from the decoded micro-op (fast) or derived
        // from the `Op` enum every time (reference). The fast path copies
        // the flat `MicroOp` and, on acceptance, the `Op` itself — both
        // plain data — so it never touches the program's `Arc` refcount;
        // the reference path keeps its original `Arc` clone.
        let pbit: u8;
        let dest: Option<(u8, u8)>;
        let dest_pred: Option<u8>;
        let arith: u64;
        let hint: AddrClass;
        let ref_prog: Option<Arc<crate::program::Program>>;
        if interp_fast {
            let mop = w.program.decoded().mops[pc];
            pbit = mop.pipe;
            hint = mop.addr_class;
            dest = (mop.dest_count > 0).then_some((mop.dest_first, mop.dest_count));
            dest_pred = (mop.dest_pred != NO_PRED).then_some(mop.dest_pred);
            arith = u64::from(mop.arith);
            if warp_gate[slot] == 0 {
                // Unknown gate (a launch, or a barrier release whose
                // earliest collided with the sentinel): run the full
                // scoreboard scan once and cache the exact earliest cycle
                // BEFORE the per-cycle pipe checks, so that even a
                // same-cycle pipe conflict leaves the gate exact and the
                // warp re-enters through the cheap pre-check from then on.
                //
                // An earliest of 0 (a launched warp whose operands were
                // never written) is clamped to 1 to stay clear of the
                // sentinel. The clamp cannot defer a cycle-0 issue: on
                // the accept path below the gate is refreshed post-issue,
                // and a rejected warp is not rescanned until cycle >= 1,
                // where a gate of 1 no longer defers.
                let e = mop_earliest(w, &mop, 0);
                warp_gate[slot] = e.max(1);
                warp_pipe[slot] = pbit;
                if *issued & (1 << pbit) != 0 {
                    return false;
                }
                if (pbit as usize) < 5 && subparts[sp_idx].pipe_free[pbit as usize] > now {
                    return false;
                }
                if e > now {
                    return false;
                }
            }
            // A nonzero gate <= now proves the scoreboard ready by
            // exactness: no re-scan.
            ref_prog = None;
        } else {
            let prog = Arc::clone(&w.program);
            let op = &prog.ops[pc];
            pbit = decoded::pipe_code(op.pipe());
            // Hints come from the decoded cache in both interpreter modes:
            // the classes are value-neutral (re-verified at execute time)
            // and sharing one source keeps the modes bit-identical even if
            // the analysis changes.
            hint = prog.decoded().mops[pc].addr_class;
            if *issued & (1 << pbit) != 0 {
                return false; // one issue per pipe per cycle
            }
            if (pbit as usize) < 5 && subparts[sp_idx].pipe_free[pbit as usize] > now {
                return false;
            }
            dest = exec::dest_regs(op);
            dest_pred = exec::dest_pred(op);
            arith = op.arith_ops();
            // Scoreboard: sources, destinations (WAW) and predicates ready.
            exec::src_regs(op, scratch_srcs);
            for &r in scratch_srcs.iter() {
                if w.reg_ready[r as usize] > now {
                    return false;
                }
            }
            if let Some((first, count)) = dest {
                for r in first..first + count {
                    if w.reg_ready[r as usize] > now {
                        return false;
                    }
                }
            }
            exec::src_preds(op, scratch_preds);
            for &p in scratch_preds.iter() {
                if w.pred_ready[p as usize] > now {
                    return false;
                }
            }
            if let Some(p) = dest_pred {
                if w.pred_ready[p as usize] > now {
                    return false;
                }
            }
            ref_prog = Some(prog);
        }

        // Fault injection: this instruction would issue, so it is one
        // event on the SM's issue stream. A hung-warp fault parks the warp
        // forever instead of issuing; a register flip corrupts one
        // destination bit after functional execution below.
        let mut reg_flip: Option<u64> = None;
        if fault.enabled {
            let ctr = *fault_issue_ctr;
            *fault_issue_ctr += 1;
            if fault.roll(SALT_HANG, sm_id, ctr, fault.hang_rate).is_some() {
                w.state = WarpState::Hung;
                stats.faults_injected += 1;
                warp_gate[slot] = u64::MAX;
                return false;
            }
            if dest.is_some() {
                reg_flip = fault.roll(SALT_REG, sm_id, ctr, fault.reg_flip_rate);
            }
        }

        // Issue-stall accounting: cycles this instruction spent with its
        // operands ready but the issue withheld (pipe busy, lost slot
        // arbitration, gate slack). `mop_earliest` is a pure function of the
        // scoreboard, which both interpreters evolve bit-identically, so the
        // counters match across `InterpMode`s, `SimMode`s and fast-forward.
        {
            let dmop = w.program.decoded().mops[pc];
            if dmop.pipe != CTRL_PIPE {
                let earliest = mop_earliest(w, &dmop, 0);
                stats.stall.add(dmop.pipe, now.saturating_sub(earliest));
            }
        }

        // --- issue ---
        let op_local;
        let op: &Op = match &ref_prog {
            Some(p) => &p.ops[pc],
            None => {
                op_local = w.program.ops[pc].clone();
                &op_local
            }
        };
        let block_slot = w.block_slot;
        let block = blocks[block_slot].as_mut().expect("warp's block resident");
        let prof_t0 = profile::enabled().then(std::time::Instant::now);
        let next = match mem {
            SmMem::Direct { gmem, .. } => exec::execute_hinted(
                op,
                hint,
                w,
                &mut block.smem,
                &mut MemCtx::Direct(gmem),
                args,
                scratch_fx,
            ),
            SmMem::Deferred { gmem } => exec::execute_hinted(
                op,
                hint,
                w,
                &mut block.smem,
                &mut MemCtx::Buffered {
                    base: gmem,
                    overlay: store_buf,
                },
                args,
                scratch_fx,
            ),
        };
        if let Some(t0) = prof_t0 {
            profile::record(pbit, t0);
        }
        let fx: &ExecEffects = scratch_fx;
        if let (Some(e), Some((first, count))) = (reg_flip, dest) {
            let r = first + (e % u64::from(count)) as u8;
            let lane = ((e >> 8) % 32) as usize;
            let bit = ((e >> 16) % 32) as u32;
            w.set_reg(r, lane, w.reg(r, lane) ^ (1 << bit));
            stats.faults_injected += 1;
        }

        // Timing.
        let pipe = decoded::pipe_class(pbit);
        let sp = &mut subparts[sp_idx];
        match pipe {
            PipeClass::Int | PipeClass::Fp => {
                sp.pipe_free[pbit as usize] = now + 1;
                if let Some((first, count)) = dest {
                    for r in first..first + count {
                        w.reg_ready[r as usize] = now + alu_latency;
                    }
                }
                if let Some(p) = dest_pred {
                    w.pred_ready[p as usize] = now + alu_latency;
                }
                if pipe == PipeClass::Int {
                    stats.busy.int += 1;
                    stats.int_ops += arith;
                } else {
                    stats.busy.fp += 1;
                    stats.fp_ops += arith;
                }
            }
            PipeClass::Tensor => {
                sp.pipe_free[2] = now + tc_occupancy;
                if let Some((first, count)) = dest {
                    for r in first..first + count {
                        w.reg_ready[r as usize] = now + tc_latency;
                    }
                }
                stats.busy.tensor += tc_occupancy;
                stats.tc_ops += arith;
            }
            PipeClass::Sfu => {
                sp.pipe_free[3] = now + sfu_occupancy;
                if let Some((first, count)) = dest {
                    for r in first..first + count {
                        w.reg_ready[r as usize] = now + sfu_latency;
                    }
                }
                stats.busy.sfu += sfu_occupancy;
                stats.sfu_ops += arith;
            }
            PipeClass::Lsu => {
                if fx.shared_access {
                    let occ = lsu_occ_per_line;
                    sp.pipe_free[4] = now + occ;
                    stats.busy.lsu += occ;
                    if !fx.is_store {
                        if let Some((first, count)) = dest {
                            for r in first..first + count {
                                w.reg_ready[r as usize] = now + smem_latency;
                            }
                        }
                    }
                } else {
                    let occ = lsu_occ_per_line * fx.global_lines.len().max(1) as u64;
                    sp.pipe_free[4] = now + occ;
                    stats.busy.lsu += occ;
                    let dest = if fx.is_store { None } else { dest };
                    match mem {
                        SmMem::Direct { memsys, .. } => {
                            let mut ready = now + 1;
                            for &line in &fx.global_lines {
                                // Streaming accesses bypass (and do not
                                // pollute) the caches; streaming stores only
                                // consume DRAM write bandwidth.
                                let t = if fx.stream && fx.is_store {
                                    memsys.write_request(now);
                                    now + 1
                                } else {
                                    let (t, from_dram) = if fx.stream {
                                        memsys.stream_request_traced(now, line << 7)
                                    } else {
                                        l1.access_traced(now, line << 7, memsys)
                                    };
                                    // DRAM-served fills are one event each on
                                    // the SM's memory stream; a firing event
                                    // flips one destination-register bit.
                                    if from_dram && fault.enabled {
                                        let ctr = *fault_mem_ctr;
                                        *fault_mem_ctr += 1;
                                        if let (Some((first, count)), Some(e)) = (
                                            dest,
                                            fault.roll(SALT_DRAM, sm_id, ctr, fault.dram_flip_rate),
                                        ) {
                                            let r = first + (e % u64::from(count)) as u8;
                                            let lane = ((e >> 8) % 32) as usize;
                                            let bit = ((e >> 16) % 32) as u32;
                                            w.set_reg(r, lane, w.reg(r, lane) ^ (1 << bit));
                                            stats.faults_injected += 1;
                                        }
                                    }
                                    t
                                };
                                ready = ready.max(t);
                            }
                            if let Some((first, count)) = dest {
                                for r in first..first + count {
                                    w.reg_ready[r as usize] = ready;
                                }
                            }
                        }
                        SmMem::Deferred { .. } => {
                            // Classify against the SM-private L1 now (same
                            // access order as serial mode, so LRU state and
                            // hit counts match); defer anything that needs
                            // the shared memory system to the drain. The
                            // scoreboard placeholder keeps the load's
                            // consumers unissuable for the rest of the
                            // cycle, exactly as any future ready time
                            // would, and is patched before the next cycle.
                            let mut ready = now + 1;
                            let mut lines = Vec::new();
                            for &line in &fx.global_lines {
                                if fx.stream && fx.is_store {
                                    lines.push(PendingLine::Write { at: now });
                                } else if fx.stream {
                                    lines.push(PendingLine::Read {
                                        at: now,
                                        addr: line << 7,
                                    });
                                } else if l1.classify(line << 7) {
                                    ready = ready.max(now + l1.latency());
                                } else {
                                    lines.push(PendingLine::Read {
                                        at: now + l1.latency(),
                                        addr: line << 7,
                                    });
                                }
                            }
                            if lines.is_empty() {
                                if let Some((first, count)) = dest {
                                    for r in first..first + count {
                                        w.reg_ready[r as usize] = ready;
                                    }
                                }
                            } else {
                                if let Some((first, count)) = dest {
                                    for r in first..first + count {
                                        w.reg_ready[r as usize] = u64::MAX;
                                    }
                                }
                                pending.push(PendingIssue {
                                    warp_slot: slot,
                                    dest,
                                    ready,
                                    lines,
                                });
                            }
                        }
                    }
                }
            }
            PipeClass::Ctrl => {}
        }
        stats.issued.bump(pipe);

        // Control flow (update the warp, then let its borrow end before the
        // block-wide barrier release touches other warps).
        match next {
            Next::Seq => w.pc += 1,
            Next::Jump(t) => w.pc = t,
            Next::ExitWarp => w.state = WarpState::Done,
            Next::Barrier => {
                w.pc += 1;
                w.state = WarpState::AtBarrier;
            }
        }
        let mut released = false;
        match next {
            Next::ExitWarp => {
                *reap_check = true;
                block.active_warps -= 1;
                block.active_per_group[group] -= 1;
                if block.active_per_group[group] > 0
                    && block.at_barrier_per_group[group] == block.active_per_group[group]
                {
                    Self::release_barrier(warps, warp_gate, warp_pipe, block, group, interp_fast);
                    released = true;
                }
            }
            Next::Barrier => {
                block.at_barrier_per_group[group] += 1;
                if block.at_barrier_per_group[group] == block.active_per_group[group] {
                    Self::release_barrier(warps, warp_gate, warp_pipe, block, group, interp_fast);
                    released = true;
                }
            }
            _ => {}
        }
        if interp_fast && released {
            // Woken warps may live in sub-partitions whose wake bound was
            // computed without them (including ones already scanned or
            // skipped this cycle): drop every bound so they rescan, and
            // tell the in-progress scan its folded bound is stale.
            for sp in subparts.iter_mut() {
                sp.wake = 0;
                sp.wake2 = 0;
            }
            *wake_dirty = true;
        }
        *issued |= 1 << pbit;

        // Gate maintenance for the issued warp, after barrier release so a
        // last-arriving warp that released itself reads its final state.
        if interp_fast {
            let w = warps[slot].as_ref().expect("issued warp stays resident");
            match w.state {
                WarpState::Ready => {
                    let dec = w.program.decoded();
                    if w.pc < dec.mops.len() {
                        // One issue per warp per cycle bounds the next
                        // issue at `now + 1`; every constraint value read
                        // here is final until the warp's own next issue or
                        // a drain patch, both of which recompute the gate.
                        let mop = &dec.mops[w.pc];
                        warp_gate[slot] = mop_earliest(w, mop, now + 1);
                        warp_pipe[slot] = mop.pipe;
                    } else {
                        // pc fell off the end: leave the gate open so the
                        // slow path faults exactly like the reference.
                        warp_gate[slot] = 0;
                    }
                }
                // Done, Hung, or parked at the barrier: frozen until an
                // external event (barrier release resets the gate to 0).
                _ => warp_gate[slot] = u64::MAX,
            }
        }
        true
    }

    /// Releases warps of `group` parked at their named barrier. Their
    /// gates drop to the unknown sentinel: registers may still be ready
    /// only in the future (an in-flight load issued before the barrier),
    /// so the next attempt must run the full scoreboard check.
    fn release_barrier(
        warps: &mut [Option<Warp>],
        warp_gate: &mut [u64],
        warp_pipe: &mut [u8],
        block: &mut BlockSlot,
        group: usize,
        interp_fast: bool,
    ) {
        for &ws in &block.warp_slots {
            if let Some(w) = warps[ws].as_mut() {
                if w.state == WarpState::AtBarrier && w.group as usize == group {
                    w.state = WarpState::Ready;
                    if interp_fast {
                        // Cache the exact gate here instead of the unknown
                        // sentinel: a parked warp's scoreboard is frozen
                        // (only its own issues write `reg_ready`), so the
                        // earliest admissible cycle computed now stays
                        // exact until the warp issues. This spares every
                        // released warp one full-check `try_issue` call. An
                        // earliest of 0 collides with the unknown sentinel
                        // and simply falls back to the full-check path.
                        let mop = w.program.decoded().mops[w.pc];
                        warp_gate[ws] = mop_earliest(w, &mop, 0);
                        warp_pipe[ws] = mop.pipe;
                    } else {
                        warp_gate[ws] = 0;
                    }
                }
            }
        }
        block.at_barrier_per_group[group] = 0;
    }

    /// `(hits, misses)` of this SM's L1.
    pub fn l1_stats(&self) -> (u64, u64) {
        self.l1.stats()
    }
}
