//! Top-level GPU: block dispatch across SMs and the global cycle loop.
//!
//! Two cycle loops share the same SM model (see DESIGN.md, "Simulator
//! concurrency model"): the serial reference loop steps SMs in index order
//! servicing memory at issue time, and the parallel loop splits each cycle
//! into an SM-local compute phase (worker pool) plus a serial drain of the
//! per-SM memory-request queues in SM-index order. Both produce
//! bit-identical [`KernelStats`] and memory contents.

use crate::config::{OrinConfig, SimMode};
use crate::launch::Kernel;
use crate::mem::GlobalMem;
use crate::memsys::MemSystem;
use crate::sm::Sm;
use crate::stats::KernelStats;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

/// Why a launch did not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The cycle-budget watchdog fired: the kernel was still holding
    /// unretired blocks at `cfg.max_cycles` (a genuine hang, or an
    /// injected hung-SM fault).
    Timeout {
        /// Kernel name.
        kernel: String,
        /// The cycle budget that was exhausted.
        cycles: u64,
    },
    /// Fault containment: with fault injection enabled, a corrupted value
    /// drove execution somewhere a functional invariant tripped (an
    /// out-of-range address, a divergent branch). Without injection such
    /// panics stay loud — they are kernel bugs, not faults.
    Fault {
        /// Kernel name.
        kernel: String,
        /// The contained panic message.
        what: String,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Timeout { kernel, cycles } => {
                write!(f, "kernel {kernel} exceeded {cycles} cycles (hang?)")
            }
            LaunchError::Fault { kernel, what } => {
                write!(f, "kernel {kernel} faulted: {what}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Best-effort text of a contained panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: OrinConfig,
    /// Device memory (public: hosts upload/download through it).
    pub mem: GlobalMem,
    memsys: MemSystem,
    sms: Vec<Sm>,
    /// Faults injected during the most recent launch — retained even
    /// when the launch failed (the error path discards its
    /// [`KernelStats`], but fault-domain health tracking still needs the
    /// observation). Zero with injection disabled.
    last_launch_faults: u64,
    /// Cumulative injected faults across every launch on this device.
    faults_injected_total: u64,
}

impl Gpu {
    /// Builds a GPU with `mem_bytes` of device memory.
    pub fn new(cfg: OrinConfig, mem_bytes: u32) -> Self {
        let memsys = MemSystem::new(&cfg);
        let sms = (0..cfg.num_sms).map(|i| Sm::new(&cfg, i)).collect();
        Self {
            cfg,
            mem: GlobalMem::new(mem_bytes),
            memsys,
            sms,
            last_launch_faults: 0,
            faults_injected_total: 0,
        }
    }

    /// Convenience: full Orin with 256 MiB of device memory.
    pub fn orin() -> Self {
        Self::new(OrinConfig::jetson_agx_orin(), 256 << 20)
    }

    /// The machine configuration.
    pub fn config(&self) -> &OrinConfig {
        &self.cfg
    }

    /// Runs `kernel` to completion, returning its statistics.
    ///
    /// Blocks are dispatched round-robin across SMs as capacity allows,
    /// exactly one new block per SM per cycle (the hardware work
    /// distributor's throttling).
    ///
    /// Returns [`LaunchError::Timeout`] when the kernel is still holding
    /// unretired blocks at `cfg.max_cycles` (the cycle-budget watchdog),
    /// and — only with fault injection enabled — [`LaunchError::Fault`]
    /// when a corrupted value tripped a functional invariant. Either way
    /// the GPU is hard-reset and immediately reusable for a retry.
    ///
    /// # Panics
    /// Panics if a block cannot fit any SM (a launch-configuration bug,
    /// not a runtime fault), or — with fault injection disabled — if the
    /// kernel itself trips a functional invariant (a kernel bug).
    pub fn launch(&mut self, kernel: &Kernel) -> Result<KernelStats, LaunchError> {
        assert!(kernel.blocks > 0, "empty grid");
        assert!(
            kernel.warps_per_block > 0 && kernel.warps_per_block <= self.cfg.max_warps_per_sm,
            "block of {} warps cannot fit an SM ({} max)",
            kernel.warps_per_block,
            self.cfg.max_warps_per_sm
        );
        assert!(
            kernel.smem_bytes <= self.cfg.smem_per_sm,
            "block shared memory {} exceeds SM capacity {}",
            kernel.smem_bytes,
            self.cfg.smem_per_sm
        );
        self.memsys.new_kernel();
        for sm in &mut self.sms {
            sm.new_kernel();
        }
        let mut stats = KernelStats {
            name: kernel.name.clone(),
            num_sms: self.cfg.num_sms,
            subparts: self.cfg.subpartitions,
            blocks: kernel.blocks,
            ..KernelStats::default()
        };
        // Fault containment: injected corruption can drive execution into
        // functional invariants (out-of-range addresses, divergent
        // branches). With injection on, such panics become a detected
        // Fault; with it off they stay loud — they are kernel bugs.
        let res = if self.cfg.fault.enabled {
            catch_unwind(AssertUnwindSafe(|| self.run_loops(kernel, &mut stats))).unwrap_or_else(
                |p| {
                    Err(LaunchError::Fault {
                        kernel: kernel.name.clone(),
                        what: panic_message(p.as_ref()),
                    })
                },
            )
        } else {
            self.run_loops(kernel, &mut stats)
        };
        match res {
            Ok(()) => {
                stats.dram_bytes = self.memsys.dram_bytes;
                stats.l2_hit_bytes = self.memsys.l2_hit_bytes;
                self.last_launch_faults = stats.faults_injected;
                self.faults_injected_total += stats.faults_injected;
                Ok(stats)
            }
            Err(e) => {
                // Surface this launch's injections before the reset wipes
                // them: the two-phase loops only merge SM-local counters
                // on success, so drain them by hand here.
                let mut injected = stats.faults_injected;
                for sm in &mut self.sms {
                    injected += sm.take_faults_injected();
                }
                self.last_launch_faults = injected;
                self.faults_injected_total += injected;
                // Evict all resident state so the GPU is reusable: the
                // normal path drains residency to zero by itself, the
                // error path must force it.
                for sm in &mut self.sms {
                    sm.hard_reset();
                }
                self.memsys.new_kernel();
                Err(e)
            }
        }
    }

    /// Faults injected during the most recent launch, observable even
    /// for a launch that failed (whose [`KernelStats`] were discarded).
    /// A hung-warp injection counts here even though the launch it kills
    /// only ever reports [`LaunchError::Timeout`].
    pub fn last_launch_faults(&self) -> u64 {
        self.last_launch_faults
    }

    /// Cumulative injected faults across every launch on this device —
    /// the per-device fault-pressure signal behind pool health tracking.
    pub fn faults_injected_total(&self) -> u64 {
        self.faults_injected_total
    }

    /// Dispatches to the configured cycle loop.
    fn run_loops(&mut self, kernel: &Kernel, stats: &mut KernelStats) -> Result<(), LaunchError> {
        match self.cfg.sim_mode {
            SimMode::Serial => self.run_serial(kernel, stats),
            SimMode::Parallel => {
                let workers = self.worker_threads();
                if workers <= 1 {
                    self.run_two_phase_single(kernel, stats)
                } else {
                    self.run_two_phase_pool(kernel, stats, workers)
                }
            }
        }
    }

    /// Worker count for parallel mode: the configured override or the
    /// host's available parallelism, capped at the SM count.
    fn worker_threads(&self) -> usize {
        let n = self.cfg.sim_threads.map_or_else(
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            |n| n as usize,
        );
        n.clamp(1, self.sms.len())
    }

    /// The serial reference loop: SMs step in index order, memory serviced
    /// at issue time.
    fn run_serial(&mut self, kernel: &Kernel, stats: &mut KernelStats) -> Result<(), LaunchError> {
        let mut next_block: u32 = 0;
        let mut done: u32 = 0;
        let mut age: u64 = 0;
        let mut cycle: u64 = 0;
        let mut gov = FfGovernor::new();
        let prof = crate::profile::enabled();
        while done < kernel.blocks {
            let t0 = prof.then(std::time::Instant::now);
            dispatch(&mut self.sms, kernel, &mut next_block, &mut age);
            if let Some(t0) = t0 {
                crate::profile::record_extra(1, t0);
            }
            let t0 = prof.then(std::time::Instant::now);
            for sm in &mut self.sms {
                done += sm.step(cycle, &mut self.memsys, &mut self.mem, &kernel.args, stats);
            }
            if let Some(t0) = t0 {
                crate::profile::record_extra(0, t0);
            }
            cycle += 1;
            if cycle >= self.cfg.max_cycles && done < kernel.blocks {
                return Err(LaunchError::Timeout {
                    kernel: kernel.name.clone(),
                    cycles: self.cfg.max_cycles,
                });
            }
            let t0 = prof.then(std::time::Instant::now);
            if gov.live() && done < kernel.blocks && self.sms.iter().all(Sm::is_ff_silent) {
                let pending =
                    next_block < kernel.blocks && self.sms.iter().any(|sm| sm.can_accept(kernel));
                if let Some(t) = ff_target(
                    &self.cfg,
                    cycle,
                    self.sms.iter_mut().map(Sm::ff_horizon),
                    self.memsys.horizon(cycle),
                    pending,
                ) {
                    stats.skipped_cycles += t - cycle;
                    stats.fast_forward_jumps += 1;
                    gov.observe(stats.skipped_cycles, stats.fast_forward_jumps);
                    for sm in &mut self.sms {
                        sm.fast_forward_by(t - cycle);
                    }
                    cycle = t;
                }
            }
            if let Some(t0) = t0 {
                crate::profile::record_extra(2, t0);
            }
        }
        stats.cycles = cycle;
        Ok(())
    }

    /// Two-phase loop on the calling thread (single-core hosts): same
    /// compute/drain split and therefore the same results as the pooled
    /// loop, without thread hand-off overhead.
    fn run_two_phase_single(
        &mut self,
        kernel: &Kernel,
        stats: &mut KernelStats,
    ) -> Result<(), LaunchError> {
        let Gpu {
            cfg,
            mem,
            memsys,
            sms,
            ..
        } = self;
        let mut next_block: u32 = 0;
        let mut done: u32 = 0;
        let mut age: u64 = 0;
        let mut cycle: u64 = 0;
        let mut skipped: u64 = 0;
        let mut jumps: u64 = 0;
        let mut gov = FfGovernor::new();
        while done < kernel.blocks {
            dispatch(sms, kernel, &mut next_block, &mut age);
            for sm in sms.iter_mut() {
                sm.step_compute(cycle, mem, &kernel.args);
            }
            for sm in sms.iter_mut() {
                done += sm.drain_cycle(memsys, mem);
            }
            cycle += 1;
            if cycle >= cfg.max_cycles && done < kernel.blocks {
                return Err(LaunchError::Timeout {
                    kernel: kernel.name.clone(),
                    cycles: cfg.max_cycles,
                });
            }
            if gov.live() && done < kernel.blocks && sms.iter().all(|sm| sm.is_ff_silent()) {
                let pending =
                    next_block < kernel.blocks && sms.iter().any(|sm| sm.can_accept(kernel));
                if let Some(t) = ff_target(
                    cfg,
                    cycle,
                    sms.iter_mut().map(Sm::ff_horizon),
                    memsys.horizon(cycle),
                    pending,
                ) {
                    skipped += t - cycle;
                    jumps += 1;
                    gov.observe(skipped, jumps);
                    for sm in sms.iter_mut() {
                        sm.fast_forward_by(t - cycle);
                    }
                    cycle = t;
                }
            }
        }
        for sm in sms.iter_mut() {
            sm.merge_stats_into(stats);
        }
        stats.cycles = cycle;
        stats.skipped_cycles += skipped;
        stats.fast_forward_jumps += jumps;
        Ok(())
    }

    /// Two-phase loop over a pool of scoped worker threads.
    ///
    /// Per cycle: the main thread dispatches blocks, a barrier releases the
    /// workers to run their SMs' compute phase against a read-locked memory
    /// image, a second barrier hands control back, and the main thread
    /// drains every SM's queues in index order. SM ownership is static
    /// (SM `i` belongs to worker `i % workers`), so the per-SM mutexes are
    /// never contended; they exist to move `&mut Sm` across threads safely.
    fn run_two_phase_pool(
        &mut self,
        kernel: &Kernel,
        stats: &mut KernelStats,
        workers: usize,
    ) -> Result<(), LaunchError> {
        let Gpu {
            cfg,
            mem,
            memsys,
            sms,
            ..
        } = self;
        let units: Vec<Mutex<&mut Sm>> = sms.iter_mut().map(Mutex::new).collect();
        let gmem = RwLock::new(&mut *mem);
        let barrier = Barrier::new(workers + 1);
        let stop = AtomicBool::new(false);
        let failed = AtomicBool::new(false);
        let cycle_now = AtomicU64::new(0);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut next_block: u32 = 0;
        let mut done: u32 = 0;
        let mut age: u64 = 0;
        let mut cycle: u64 = 0;
        let mut skipped: u64 = 0;
        let mut jumps: u64 = 0;
        let mut gov = FfGovernor::new();
        std::thread::scope(|scope| {
            for wid in 0..workers {
                let (units, gmem, barrier) = (&units, &gmem, &barrier);
                let (stop, failed, cycle_now) = (&stop, &failed, &cycle_now);
                let panic_slot = &panic_slot;
                let args = &kernel.args;
                scope.spawn(move || loop {
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let now = cycle_now.load(Ordering::Acquire);
                    // A worker panic (e.g. a kernel-bug assert in exec) is
                    // parked and re-raised by the main thread after the
                    // scope unwinds; swallowing it here keeps every thread
                    // reaching the barriers, which would otherwise deadlock.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let g = gmem.read().unwrap_or_else(|e| e.into_inner());
                        for (i, u) in units.iter().enumerate() {
                            if i % workers == wid {
                                lock_sm(u).step_compute(now, &g, args);
                            }
                        }
                    }));
                    if let Err(p) = result {
                        failed.store(true, Ordering::Release);
                        let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(p);
                    }
                    barrier.wait();
                });
            }
            loop {
                if done >= kernel.blocks
                    || cycle >= cfg.max_cycles
                    || failed.load(Ordering::Acquire)
                {
                    stop.store(true, Ordering::Release);
                    barrier.wait();
                    break;
                }
                for u in &units {
                    if next_block >= kernel.blocks {
                        break;
                    }
                    let ctaid = kernel
                        .dispatch_order
                        .as_ref()
                        .map_or(next_block, |o| o[next_block as usize]);
                    if lock_sm(u).try_launch(kernel, ctaid, &mut age) {
                        next_block += 1;
                    }
                }
                cycle_now.store(cycle, Ordering::Release);
                barrier.wait(); // compute phase runs
                barrier.wait(); // compute phase done
                if !failed.load(Ordering::Acquire) {
                    let mut g = gmem.write().unwrap_or_else(|e| e.into_inner());
                    for u in &units {
                        done += lock_sm(u).drain_cycle(memsys, &mut g);
                    }
                    drop(g);
                }
                cycle += 1;
                if gov.live()
                    && done < kernel.blocks
                    && !failed.load(Ordering::Acquire)
                    && units.iter().all(|u| lock_sm(u).is_ff_silent())
                {
                    let pending = next_block < kernel.blocks
                        && units.iter().any(|u| lock_sm(u).can_accept(kernel));
                    if let Some(t) = ff_target(
                        cfg,
                        cycle,
                        units.iter().map(|u| lock_sm(u).ff_horizon()),
                        memsys.horizon(cycle),
                        pending,
                    ) {
                        skipped += t - cycle;
                        jumps += 1;
                        gov.observe(skipped, jumps);
                        for u in &units {
                            lock_sm(u).fast_forward_by(t - cycle);
                        }
                        cycle = t;
                    }
                }
            }
        });
        if let Some(p) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            // With fault injection on, `launch` converts this into a
            // contained `LaunchError::Fault`; otherwise it stays loud.
            resume_unwind(p);
        }
        if done < kernel.blocks {
            return Err(LaunchError::Timeout {
                kernel: kernel.name.clone(),
                cycles: cfg.max_cycles,
            });
        }
        for u in &units {
            lock_sm(u).merge_stats_into(stats);
        }
        stats.cycles = cycle;
        stats.skipped_cycles += skipped;
        stats.fast_forward_jumps += jumps;
        Ok(())
    }

    /// Flushes the L2 (cold-start experiments between kernels).
    pub fn cold_caches(&mut self) {
        self.memsys.cold_reset();
        for sm in &mut self.sms {
            sm.new_kernel();
        }
    }

    /// Fingerprint of every piece of device state that can influence the
    /// *timing* of a future launch.
    ///
    /// [`Gpu::launch`] resets the per-SM machine state and the memory-system
    /// queues/counters up front, so the only state that carries over from
    /// launch to launch is the L2 resident set and its LRU order (L1s are
    /// flushed per kernel by `Sm::new_kernel`; back-to-back kernels share
    /// the L2 as on hardware). Two launches of the same kernel against the
    /// same memory image and equal fingerprints are therefore cycle-exact
    /// replicas — the invariant behind the engine's steady-state replay.
    ///
    /// Fault-injection counters deliberately stay *outside* the
    /// fingerprint: they live on the SMs precisely so the fault stream
    /// advances across launches, which is why replay is gated off whenever
    /// `cfg.fault.enabled` is set.
    pub fn timing_fingerprint(&self) -> u64 {
        self.memsys.l2_fingerprint()
    }
}

/// Adaptive payoff governor for the event-horizon scan.
///
/// Fast-forward is pure upside on memory- and latency-bound kernels,
/// where each jump skips tens to thousands of cycles. On issue-bound
/// kernels the machine goes briefly silent very often, each scan buys
/// only a handful of cycles, and the horizon computation itself becomes
/// a net wall-clock loss. The governor watches the *realized* payoff and
/// permanently disables the scan for the remainder of the launch once a
/// large sample shows the average skip per jump under threshold.
///
/// This is purely a host wall-clock policy: the counters it reads are
/// bit-identical across [`SimMode`]s (both loops account skips the same
/// way), so the cutoff cycle — and with it `skipped_cycles` and
/// `fast_forward_jumps` — is deterministic and mode-independent, and the
/// simulated timing (`cycles`, issue mix, memory traffic) is untouched
/// because skipped cycles are provably silent either way.
#[derive(Debug)]
struct FfGovernor {
    live: bool,
}

impl FfGovernor {
    /// Jumps observed before the payoff test may fire: large enough that
    /// burst-silent kernels (a memory-bound tail, a cold start) are never
    /// cut off by a noisy early sample.
    const MIN_JUMPS: u64 = 64;
    /// Minimum average skipped cycles per jump that keeps the scan live;
    /// below this the scan costs more wall-clock than it saves.
    const MIN_AVG_SKIP: u64 = 16;

    fn new() -> Self {
        Self { live: true }
    }

    /// True while the event-horizon check is still worth running.
    fn live(&self) -> bool {
        self.live
    }

    /// Feeds the launch's realized totals after a jump; disables the scan
    /// once the sample is large and the payoff is poor.
    fn observe(&mut self, skipped: u64, jumps: u64) {
        if self.live && jumps >= Self::MIN_JUMPS && skipped / jumps < Self::MIN_AVG_SKIP {
            self.live = false;
        }
    }
}

/// Decides the event-horizon jump from `now` (the next cycle the loop
/// would step): `None` to step normally, `Some(target)` to move the clock
/// straight to `target`, skipping `target - now` provably silent cycles.
///
/// `horizons` are the per-SM event horizons, queried lazily — the loops
/// only call this after [`Sm::is_ff_silent`] held for every SM on the
/// cycle just stepped, so each [`Sm::ff_horizon`] read sees a frozen SM
/// (a horizon `<= now` still aborts the jump defensively); `mem_horizon`
/// is [`MemSystem::horizon`]; `dispatch_pending` is true when an
/// undispatched block could launch at `now`, which is a state change the
/// SMs cannot see coming. The target is clamped to `max_cycles` so a
/// fully deadlocked machine (all horizons `u64::MAX`) still trips the
/// hang guard.
fn ff_target(
    cfg: &OrinConfig,
    now: u64,
    horizons: impl Iterator<Item = u64>,
    mem_horizon: u64,
    dispatch_pending: bool,
) -> Option<u64> {
    if !cfg.fast_forward || dispatch_pending {
        return None;
    }
    let mut h = mem_horizon;
    for x in horizons {
        if x <= now {
            return None;
        }
        h = h.min(x);
    }
    if h <= now {
        return None;
    }
    Some(h.min(cfg.max_cycles))
}

/// Dispatch: one block per SM per cycle, round-robin, in the kernel's
/// dispatch order.
fn dispatch(sms: &mut [Sm], kernel: &Kernel, next_block: &mut u32, age: &mut u64) {
    for sm in sms.iter_mut() {
        if *next_block < kernel.blocks {
            let ctaid = kernel
                .dispatch_order
                .as_ref()
                .map_or(*next_block, |o| o[*next_block as usize]);
            if sm.try_launch(kernel, ctaid, age) {
                *next_block += 1;
            }
        }
    }
}

/// Locks one SM cell, ignoring poisoning: the per-SM mutexes are never
/// contended (compute and drain phases are barrier-separated), and a
/// poisoned lock only reflects a worker panic that the main thread
/// re-raises after the pool unwinds.
fn lock_sm<'a, 'b>(u: &'a Mutex<&'b mut Sm>) -> std::sync::MutexGuard<'a, &'b mut Sm> {
    u.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::isa::{ICmp, MemWidth, SReg, Src};
    use crate::program::ProgramBuilder;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 16 << 20)
    }

    /// out[i] = a[i] + b[i] over one warp per block.
    fn vec_add_kernel(n_blocks: u32) -> (Kernel, fn(u32, u32) -> u32) {
        let mut p = ProgramBuilder::new("vec_add");
        let a_base = p.alloc();
        let b_base = p.alloc();
        let o_base = p.alloc();
        let tid = p.alloc();
        let ctaid = p.alloc();
        let gid = p.alloc();
        let off = p.alloc();
        let av = p.alloc();
        let bv = p.alloc();
        let addr = p.alloc();
        p.ldc(a_base, 0);
        p.ldc(b_base, 1);
        p.ldc(o_base, 2);
        p.sreg(tid, SReg::Tid);
        p.sreg(ctaid, SReg::Ctaid);
        // gid = ctaid * 32 + tid
        p.imad(gid, ctaid.into(), Src::Imm(32), tid.into());
        p.shl(off, gid.into(), Src::Imm(2));
        p.iadd(addr, a_base.into(), off.into());
        p.ldg(av, addr, 0, MemWidth::B32);
        p.iadd(addr, b_base.into(), off.into());
        p.ldg(bv, addr, 0, MemWidth::B32);
        p.iadd(av, av.into(), bv.into());
        p.iadd(addr, o_base.into(), off.into());
        p.stg(addr, 0, av.into(), MemWidth::B32);
        p.exit();
        let prog = p.build().into_arc();
        (
            Kernel::single("vec_add", prog, n_blocks, 1, 0, vec![]),
            |a, b| a.wrapping_add(b),
        )
    }

    #[test]
    fn vector_add_end_to_end() {
        let mut g = gpu();
        let n = 4 * 32usize;
        let a: Vec<u32> = (0..n as u32).collect();
        let b: Vec<u32> = (0..n as u32).map(|x| x * 100).collect();
        let pa = g.mem.upload_u32(&a);
        let pb = g.mem.upload_u32(&b);
        let po = g.mem.alloc((n * 4) as u32);
        let (mut k, f) = vec_add_kernel(4);
        k.args = vec![pa.addr, pb.addr, po.addr];
        let stats = g.launch(&k).expect("launch");
        let out = g.mem.download_u32(po, n);
        for i in 0..n {
            assert_eq!(out[i], f(a[i], b[i]), "element {i}");
        }
        assert!(stats.cycles > 0);
        assert_eq!(stats.blocks, 4);
        assert!(stats.issued.lsu >= 12, "3 memory ops x 4 blocks");
        assert!(stats.issued.int > 0);
    }

    #[test]
    fn loop_kernel_sums_iota() {
        // Each thread: sum = 0; for i in 0..10 { sum += i } ; out[tid] = sum.
        let mut p = ProgramBuilder::new("loop");
        let o_base = p.alloc();
        let tid = p.alloc();
        let i = p.alloc();
        let sum = p.alloc();
        let addr = p.alloc();
        let pr = p.alloc_pred();
        p.ldc(o_base, 0);
        p.sreg(tid, SReg::Tid);
        p.mov(i, Src::Imm(0));
        p.mov(sum, Src::Imm(0));
        p.label_here("top");
        p.iadd(sum, sum.into(), i.into());
        p.iadd(i, i.into(), Src::Imm(1));
        p.isetp(pr, i.into(), Src::Imm(10), ICmp::Lt);
        p.bra_if("top", pr, true);
        p.imad(addr, tid.into(), Src::Imm(4), o_base.into());
        p.stg(addr, 0, sum.into(), MemWidth::B32);
        p.exit();
        let mut g = gpu();
        let po = g.mem.alloc(64 * 4);
        let k = Kernel::single("loop", p.build().into_arc(), 1, 2, 0, vec![po.addr]);
        let stats = g.launch(&k).expect("launch");
        let out = g.mem.download_u32(po, 64);
        assert!(out.iter().all(|&x| x == 45));
        // 10 iterations x 3 insts + overhead, 2 warps.
        assert!(stats.issued.total() >= 2 * 30);
    }

    #[test]
    fn barrier_orders_shared_memory() {
        // Warp 0 writes smem, all warps barrier, every warp reads.
        let mut p = ProgramBuilder::new("bar");
        let o_base = p.alloc();
        let wid = p.alloc();
        let lane = p.alloc();
        let addr = p.alloc();
        let v = p.alloc();
        let tid = p.alloc();
        let pr = p.alloc_pred();
        p.ldc(o_base, 0);
        p.sreg(wid, SReg::WarpId);
        p.sreg(lane, SReg::LaneId);
        p.sreg(tid, SReg::Tid);
        // if warp 0: smem[lane*4] = lane * 7 (guarded store needs predication
        // per lane; warp-uniform predicate here).
        p.isetp(pr, wid.into(), Src::Imm(0), ICmp::Eq);
        p.shl(addr, lane.into(), Src::Imm(2));
        p.sel(v, pr, Src::Imm(1), Src::Imm(0));
        // Only warp 0 stores: branch around the store for other warps.
        p.bra_if("skip_store", pr, false);
        p.imul(v, lane.into(), Src::Imm(7));
        p.sts(addr, 0, v.into(), MemWidth::B32);
        p.label_here("skip_store");
        p.bar();
        p.lds(v, addr, 0, MemWidth::B32);
        p.imad(addr, tid.into(), Src::Imm(4), o_base.into());
        p.stg(addr, 0, v.into(), MemWidth::B32);
        p.exit();
        let mut g = gpu();
        let warps = 4u32;
        let po = g.mem.alloc(warps * 32 * 4);
        let k = Kernel::single("bar", p.build().into_arc(), 1, warps, 128, vec![po.addr]);
        g.launch(&k).expect("launch");
        let out = g.mem.download_u32(po, (warps * 32) as usize);
        for w in 0..warps as usize {
            for l in 0..32 {
                assert_eq!(out[w * 32 + l], (l as u32) * 7, "warp {w} lane {l}");
            }
        }
    }

    #[test]
    fn fused_roles_execute_distinct_programs() {
        // Role 0 writes 111 at out[tid]; role 1 writes 222.
        let mk = |val: u32, name: &str| {
            let mut p = ProgramBuilder::new(name);
            let o = p.alloc();
            let tid = p.alloc();
            let addr = p.alloc();
            p.ldc(o, 0);
            p.sreg(tid, SReg::Tid);
            p.imad(addr, tid.into(), Src::Imm(4), o.into());
            p.stg(addr, 0, Src::Imm(val), MemWidth::B32);
            p.exit();
            p.build().into_arc()
        };
        let mut g = gpu();
        let po = g.mem.alloc(4 * 32 * 4);
        let k = Kernel::fused(
            "roles",
            vec![mk(111, "r0"), mk(222, "r1")],
            vec![0, 1, 1, 0],
            1,
            0,
            vec![po.addr],
        );
        g.launch(&k).expect("launch");
        let out = g.mem.download_u32(po, 128);
        assert!(out[0..32].iter().all(|&x| x == 111));
        assert!(out[32..64].iter().all(|&x| x == 222));
        assert!(out[64..96].iter().all(|&x| x == 222));
        assert!(out[96..128].iter().all(|&x| x == 111));
    }

    #[test]
    fn more_blocks_than_capacity_drain() {
        let mut g = gpu();
        let blocks = 64u32;
        let n = blocks as usize * 32;
        let a: Vec<u32> = (0..n as u32).collect();
        let pa = g.mem.upload_u32(&a);
        let pb = g.mem.upload_u32(&a);
        let po = g.mem.alloc((n * 4) as u32);
        let (mut k, _) = vec_add_kernel(blocks);
        k.args = vec![pa.addr, pb.addr, po.addr];
        let stats = g.launch(&k).expect("launch");
        assert_eq!(stats.blocks, blocks);
        let out = g.mem.download_u32(po, n);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn hang_guard_fires() {
        let mut p = ProgramBuilder::new("spin");
        p.label_here("top");
        p.bra("top");
        p.exit();
        let mut cfg = OrinConfig::test_small();
        cfg.max_cycles = 10_000;
        let mut g = Gpu::new(cfg, 1 << 20);
        let k = Kernel::single("spin", p.build().into_arc(), 1, 1, 0, vec![]);
        let err = g.launch(&k).unwrap_err();
        assert!(
            matches!(err, LaunchError::Timeout { cycles: 10_000, .. }),
            "expected timeout, got {err}"
        );
        assert!(err.to_string().contains("exceeded"));
    }

    #[test]
    fn dual_issue_beats_single_pipe() {
        // Two kernels with identical dependency-free instruction counts: one
        // all-INT, one half-INT half-FP across warps. The mixed version must
        // be faster because INT and FP issue concurrently.
        let math = |fp: bool| {
            let mut p = ProgramBuilder::new(if fp { "fp" } else { "int" });
            let acc = p.alloc_n(8);
            for rep in 0..64 {
                for i in 0..8u8 {
                    let r = crate::isa::Reg(acc.0 + i);
                    if fp {
                        p.ffma(r, r.into(), Src::imm_f32(1.0001), Src::imm_f32(0.5));
                    } else {
                        p.imad(r, r.into(), Src::Imm(3), Src::Imm(1));
                    }
                }
                let _ = rep;
            }
            p.exit();
            p.build().into_arc()
        };
        let mut g = gpu();
        let int_only = Kernel::fused("int_only", vec![math(false)], vec![0; 8], 8, 0, vec![]);
        // Warp w maps to sub-partition w % 4, so INT/FP roles must alternate
        // at sub-partition stride for both pipes to share every scheduler.
        let mixed = Kernel::fused(
            "mixed",
            vec![math(false), math(true)],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            8,
            0,
            vec![],
        );
        let t_int = g.launch(&int_only).expect("launch").cycles;
        let t_mixed = g.launch(&mixed).expect("launch").cycles;
        assert!(
            (t_mixed as f64) < 0.75 * t_int as f64,
            "mixed {t_mixed} should be well under int-only {t_int}"
        );
    }

    /// Runs `build` twice — serial and parallel with `threads` workers —
    /// and asserts identical stats and identical memory contents.
    fn assert_modes_agree(
        threads: u32,
        build: impl Fn(&mut Gpu) -> (Kernel, Option<(u32, usize)>),
    ) {
        let run = |mode: crate::config::SimMode| {
            let mut cfg = OrinConfig::test_small();
            cfg.sim_mode = mode;
            cfg.sim_threads = Some(threads);
            let mut g = Gpu::new(cfg, 16 << 20);
            let (k, out) = build(&mut g);
            let stats = g.launch(&k).expect("launch");
            let bytes = out.map(|(addr, len)| {
                let ptr = crate::mem::DevPtr {
                    addr,
                    len: (len * 4) as u32,
                };
                g.mem.download_u32(ptr, len)
            });
            (stats, bytes)
        };
        let (s_ser, m_ser) = run(crate::config::SimMode::Serial);
        let (s_par, m_par) = run(crate::config::SimMode::Parallel);
        assert_eq!(
            s_ser.cycles, s_par.cycles,
            "cycles diverge ({threads} threads)"
        );
        assert_eq!(s_ser.issued, s_par.issued);
        assert_eq!(s_ser.busy, s_par.busy);
        assert_eq!(s_ser.dram_bytes, s_par.dram_bytes);
        assert_eq!(s_ser.l2_hit_bytes, s_par.l2_hit_bytes);
        assert_eq!(s_ser.int_ops, s_par.int_ops);
        assert_eq!(m_ser, m_par, "memory contents diverge");
    }

    #[test]
    fn parallel_mode_matches_serial_vec_add() {
        for threads in [1, 2, 3] {
            assert_modes_agree(threads, |g| {
                let blocks = 16u32;
                let n = blocks as usize * 32;
                let a: Vec<u32> = (0..n as u32).collect();
                let pa = g.mem.upload_u32(&a);
                let pb = g.mem.upload_u32(&a);
                let po = g.mem.alloc((n * 4) as u32);
                let (mut k, _) = vec_add_kernel(blocks);
                k.args = vec![pa.addr, pb.addr, po.addr];
                (k, Some((po.addr, n)))
            });
        }
    }

    #[test]
    fn parallel_mode_matches_serial_smem_barrier() {
        // Shared memory, barriers and multi-warp blocks under both modes.
        assert_modes_agree(2, |g| {
            let mut p = ProgramBuilder::new("bar_par");
            let o_base = p.alloc();
            let lane = p.alloc();
            let addr = p.alloc();
            let v = p.alloc();
            let tid = p.alloc();
            p.ldc(o_base, 0);
            p.sreg(lane, SReg::LaneId);
            p.sreg(tid, SReg::Tid);
            p.shl(addr, lane.into(), Src::Imm(2));
            p.imul(v, lane.into(), Src::Imm(3));
            p.sts(addr, 0, v.into(), MemWidth::B32);
            p.bar();
            p.lds(v, addr, 0, MemWidth::B32);
            p.imad(addr, tid.into(), Src::Imm(4), o_base.into());
            p.stg(addr, 0, v.into(), MemWidth::B32);
            p.exit();
            let po = g.mem.alloc(4 * 32 * 4);
            let k = Kernel::single("bar_par", p.build().into_arc(), 1, 4, 128, vec![po.addr]);
            (k, Some((po.addr, 128)))
        });
    }

    #[test]
    fn parallel_pool_runs_vector_add_correctly() {
        let mut cfg = OrinConfig::test_small();
        cfg.sim_mode = crate::config::SimMode::Parallel;
        cfg.sim_threads = Some(2);
        let mut g = Gpu::new(cfg, 16 << 20);
        let n = 8 * 32usize;
        let a: Vec<u32> = (0..n as u32).collect();
        let b: Vec<u32> = (0..n as u32).map(|x| x * 7).collect();
        let pa = g.mem.upload_u32(&a);
        let pb = g.mem.upload_u32(&b);
        let po = g.mem.alloc((n * 4) as u32);
        let (mut k, f) = vec_add_kernel(8);
        k.args = vec![pa.addr, pb.addr, po.addr];
        let stats = g.launch(&k).expect("launch");
        let out = g.mem.download_u32(po, n);
        for i in 0..n {
            assert_eq!(out[i], f(a[i], b[i]), "element {i}");
        }
        assert_eq!(stats.blocks, 8);
    }

    #[test]
    fn parallel_hang_guard_fires() {
        let mut p = ProgramBuilder::new("spin_par");
        p.label_here("top");
        p.bra("top");
        p.exit();
        let mut cfg = OrinConfig::test_small();
        cfg.max_cycles = 10_000;
        cfg.sim_mode = crate::config::SimMode::Parallel;
        cfg.sim_threads = Some(2);
        let mut g = Gpu::new(cfg, 1 << 20);
        let k = Kernel::single("spin_par", p.build().into_arc(), 1, 1, 0, vec![]);
        let err = g.launch(&k).unwrap_err();
        assert!(
            matches!(err, LaunchError::Timeout { cycles: 10_000, .. }),
            "expected timeout, got {err}"
        );
    }

    #[test]
    #[should_panic(expected = "divergent branch")]
    fn parallel_pool_propagates_worker_panics() {
        // A divergent branch asserts inside a worker thread; the pool must
        // surface that panic on the launching thread, not deadlock.
        let mut p = ProgramBuilder::new("diverge");
        let lane = p.alloc();
        let pr = p.alloc_pred();
        p.sreg(lane, SReg::LaneId);
        p.isetp(pr, lane.into(), Src::Imm(16), ICmp::Lt);
        p.label_here("skip");
        p.bra_if("skip", pr, true);
        p.exit();
        let mut cfg = OrinConfig::test_small();
        cfg.sim_mode = crate::config::SimMode::Parallel;
        cfg.sim_threads = Some(2);
        let mut g = Gpu::new(cfg, 1 << 20);
        let k = Kernel::single("diverge", p.build().into_arc(), 1, 1, 0, vec![]);
        let _ = g.launch(&k);
    }

    #[test]
    fn stats_count_ops_by_pipe() {
        let mut p = ProgramBuilder::new("ops");
        let r = p.alloc();
        let s = p.alloc();
        p.imad(r, r.into(), Src::Imm(2), Src::Imm(1));
        p.ffma(s, s.into(), Src::imm_f32(2.0), Src::imm_f32(1.0));
        p.exit();
        let mut g = gpu();
        let k = Kernel::single("ops", p.build().into_arc(), 1, 1, 0, vec![]);
        let stats = g.launch(&k).expect("launch");
        assert_eq!(stats.issued.int, 1);
        assert_eq!(stats.issued.fp, 1);
        assert_eq!(stats.int_ops, 64);
        assert_eq!(stats.fp_ops, 64);
        assert_eq!(stats.issued.ctrl, 1);
    }

    /// The fast-forward edge case: a machine whose only runnable warp is
    /// blocked on one outstanding DRAM-regulated line at a time. A single
    /// warp chases a pointer chain through distinct cache lines, so between
    /// consecutive loads every SM is silent and the horizon is set purely
    /// by the load's ready cycle (DRAM queue + latency). The skip must
    /// cover most of the kernel and stay invisible in stats and memory.
    #[test]
    fn fast_forward_skips_dram_stall_chain() {
        let hops = 24u32;
        let stride = 4096u32; // one hop per page: every load is a cold miss
        let run = |mode: SimMode, ff: bool| {
            let mut cfg = OrinConfig::test_small();
            cfg.sim_mode = mode;
            cfg.sim_threads = Some(2);
            cfg.fast_forward = ff;
            let mut g = Gpu::new(cfg, 16 << 20);
            let chain = g.mem.alloc(hops * stride);
            for i in 0..hops {
                let next = if i + 1 < hops {
                    chain.addr + (i + 1) * stride
                } else {
                    0xdead_beef // sentinel loaded by the final hop
                };
                g.mem.write_u32(chain.addr + i * stride, next);
            }
            let out = g.mem.alloc(4);

            let mut p = ProgramBuilder::new("chase");
            let addr = p.alloc();
            let dst = p.alloc();
            p.ldc(addr, 0);
            for _ in 0..hops {
                // Each load's address is the previous load's value: the
                // warp cannot issue anything until the line lands.
                p.ldg(addr, addr, 0, MemWidth::B32);
            }
            p.ldc(dst, 1);
            p.stg(dst, 0, addr.into(), MemWidth::B32);
            p.exit();
            let k = Kernel::single(
                "chase",
                p.build().into_arc(),
                1,
                1,
                0,
                vec![chain.addr, out.addr],
            );
            let stats = g.launch(&k).expect("launch");
            (stats, g.mem.download_u32(out, 1)[0])
        };

        for mode in [SimMode::Serial, SimMode::Parallel] {
            let (s_off, r_off) = run(mode, false);
            let (s_on, r_on) = run(mode, true);
            assert_eq!(r_off, 0xdead_beef, "{mode:?}: chain did not complete");
            assert_eq!(r_on, r_off, "{mode:?}: result diverges");
            assert_eq!(s_off.cycles, s_on.cycles, "{mode:?}: cycles diverge");
            assert_eq!(s_off.issued, s_on.issued, "{mode:?}: issue mix diverges");
            assert_eq!(s_off.dram_bytes, s_on.dram_bytes, "{mode:?}: bytes diverge");
            assert_eq!(s_off.skipped_cycles, 0, "{mode:?}: oracle must not skip");
            assert!(
                s_on.fast_forward_jumps >= u64::from(hops),
                "{mode:?}: expected a jump per miss, got {}",
                s_on.fast_forward_jumps
            );
            assert!(
                s_on.skip_ratio() > 0.5,
                "{mode:?}: skip ratio {:.3} too low for a pure DRAM stall",
                s_on.skip_ratio()
            );
        }
    }

    /// Runs vec_add under one fault configuration and returns stats + output.
    fn run_faulted(
        fault: crate::fault::FaultConfig,
        mode: SimMode,
        ff: bool,
    ) -> (Result<KernelStats, LaunchError>, Vec<u32>) {
        let mut cfg = OrinConfig::test_small();
        cfg.fault = fault;
        cfg.sim_mode = mode;
        cfg.sim_threads = Some(2);
        cfg.fast_forward = ff;
        cfg.max_cycles = 2_000_000;
        let mut g = Gpu::new(cfg, 16 << 20);
        let blocks = 8u32;
        let n = blocks as usize * 32;
        let a: Vec<u32> = (0..n as u32).collect();
        let pa = g.mem.upload_u32(&a);
        let pb = g.mem.upload_u32(&a);
        let po = g.mem.alloc((n * 4) as u32);
        let (mut k, _) = vec_add_kernel(blocks);
        k.args = vec![pa.addr, pb.addr, po.addr];
        let res = g.launch(&k);
        (res, g.mem.download_u32(po, n))
    }

    #[test]
    fn faults_disabled_is_bit_identical_to_default() {
        for mode in [SimMode::Serial, SimMode::Parallel] {
            for ff in [false, true] {
                let (base, out_base) = run_faulted(crate::fault::FaultConfig::disabled(), mode, ff);
                let mut off = crate::fault::FaultConfig::seeded(7);
                off.enabled = false;
                let (dis, out_dis) = run_faulted(off, mode, ff);
                let (base, dis) = (base.expect("launch"), dis.expect("launch"));
                assert_eq!(base, dis, "{mode:?} ff={ff}: stats diverge");
                assert_eq!(out_base, out_dis, "{mode:?} ff={ff}: memory diverges");
                assert_eq!(base.faults_injected, 0);
            }
        }
    }

    #[test]
    fn injected_faults_are_deterministic_across_modes() {
        let mut fc = crate::fault::FaultConfig::seeded(42);
        fc.reg_flip_rate = 5e-2;
        fc.dram_flip_rate = 0.5;
        let (s_ser, m_ser) = run_faulted(fc, SimMode::Serial, false);
        let (s_par, m_par) = run_faulted(fc, SimMode::Parallel, false);
        let (s_ser, s_par) = (s_ser.expect("launch"), s_par.expect("launch"));
        assert!(s_ser.faults_injected > 0, "seed 42 must inject something");
        assert_eq!(s_ser.faults_injected, s_par.faults_injected);
        assert_eq!(s_ser.cycles, s_par.cycles);
        assert_eq!(m_ser, m_par, "corrupted memory must corrupt identically");
    }

    #[test]
    fn hung_warp_times_out_instead_of_hanging() {
        let mut fc = crate::fault::FaultConfig::seeded(1);
        fc.reg_flip_rate = 0.0;
        fc.hang_rate = 0.2; // virtually certain to hang a warp early
        for ff in [false, true] {
            let (res, _) = run_faulted(fc, SimMode::Serial, ff);
            let err = res.expect_err("a hung warp must not complete");
            assert!(
                matches!(err, LaunchError::Timeout { .. }),
                "ff={ff}: expected timeout, got {err}"
            );
        }
    }

    #[test]
    fn gpu_is_reusable_after_launch_error() {
        let mut fc = crate::fault::FaultConfig::seeded(1);
        fc.reg_flip_rate = 0.0;
        // Low enough that a launch completes every few attempts, high enough
        // that some attempts hang.
        fc.hang_rate = 0.02;
        let mut cfg = OrinConfig::test_small();
        cfg.fault = fc;
        cfg.max_cycles = 500_000;
        cfg.fast_forward = true; // make each timeout cheap
        let mut g = Gpu::new(cfg, 16 << 20);
        let n = 4 * 32usize;
        let a: Vec<u32> = (0..n as u32).collect();
        let pa = g.mem.upload_u32(&a);
        let pb = g.mem.upload_u32(&a);
        let po = g.mem.alloc((n * 4) as u32);
        let (mut k, _) = vec_add_kernel(4);
        k.args = vec![pa.addr, pb.addr, po.addr];
        let mut saw_err = false;
        let mut saw_ok = false;
        // The hang PRNG stream advances across retries, so eventually a
        // launch goes through; every failed launch must leave the GPU clean
        // enough for the next attempt.
        for _ in 0..64 {
            match g.launch(&k) {
                Ok(_) => {
                    saw_ok = true;
                    break;
                }
                Err(LaunchError::Timeout { .. }) => saw_err = true,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_err, "hang rate 0.2 should time out at least once");
        assert!(saw_ok, "retries must eventually succeed");
        let out = g.mem.download_u32(po, n);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }
}
