//! Program inspection: disassembly and static instruction statistics.
//!
//! Used by the harness and tests to sanity-check generated kernels (mix of
//! pipes, static size, register pressure) without running them — the
//! static counterpart of [`crate::stats::KernelStats`].

use crate::isa::{Op, PipeClass, Src};
use crate::program::Program;
use std::fmt::Write as _;

/// Static per-pipe instruction counts of a program (one pass, no loops
/// unrolled — multiply by trip counts yourself if needed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticMix {
    /// INT-pipe instructions.
    pub int: usize,
    /// FP-pipe instructions.
    pub fp: usize,
    /// Tensor-core instructions.
    pub tensor: usize,
    /// SFU instructions.
    pub sfu: usize,
    /// Memory instructions.
    pub lsu: usize,
    /// Control instructions.
    pub ctrl: usize,
}

impl StaticMix {
    /// Total instructions.
    pub fn total(&self) -> usize {
        self.int + self.fp + self.tensor + self.sfu + self.lsu + self.ctrl
    }

    /// Fraction of instructions on a pipe.
    pub fn fraction(&self, pipe: PipeClass) -> f64 {
        let n = match pipe {
            PipeClass::Int => self.int,
            PipeClass::Fp => self.fp,
            PipeClass::Tensor => self.tensor,
            PipeClass::Sfu => self.sfu,
            PipeClass::Lsu => self.lsu,
            PipeClass::Ctrl => self.ctrl,
        };
        n as f64 / self.total().max(1) as f64
    }
}

/// Computes the static instruction mix of a program.
pub fn static_mix(p: &Program) -> StaticMix {
    let mut m = StaticMix::default();
    for op in &p.ops {
        match op.pipe() {
            PipeClass::Int => m.int += 1,
            PipeClass::Fp => m.fp += 1,
            PipeClass::Tensor => m.tensor += 1,
            PipeClass::Sfu => m.sfu += 1,
            PipeClass::Lsu => m.lsu += 1,
            PipeClass::Ctrl => m.ctrl += 1,
        }
    }
    m
}

fn src_str(s: &Src) -> String {
    match s {
        Src::R(r) => format!("r{}", r.0),
        Src::Imm(v) => {
            // Print small signed immediates as decimal, others as hex.
            let sv = *v as i32;
            if (-4096..=4096).contains(&sv) {
                format!("{sv}")
            } else {
                format!("{v:#x}")
            }
        }
    }
}

/// Renders one instruction as readable assembly.
pub fn disasm_op(op: &Op) -> String {
    use Op::*;
    match op {
        IAdd { d, a, b } => format!("iadd  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        ISub { d, a, b } => format!("isub  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IMul { d, a, b } => format!("imul  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IMad { d, a, b, c } => format!(
            "imad  r{}, {}, {}, {}",
            d.0,
            src_str(a),
            src_str(b),
            src_str(c)
        ),
        And { d, a, b } => format!("and   r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Or { d, a, b } => format!("or    r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Xor { d, a, b } => format!("xor   r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Shl { d, a, b } => format!("shl   r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Shr { d, a, b } => format!("shr   r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Sar { d, a, b } => format!("sar   r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IMin { d, a, b } => format!("imin  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IMax { d, a, b } => format!("imax  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IDivU { d, a, b } => format!("idivu r{}, {}, {}", d.0, src_str(a), src_str(b)),
        IRemU { d, a, b } => format!("iremu r{}, {}, {}", d.0, src_str(a), src_str(b)),
        Shfl { d, a, xor_mask } => format!("shfl  r{}, r{}, bfly {}", d.0, a.0, xor_mask),
        ISetP { p, a, b, cmp } => {
            format!("isetp p{}, {} {:?} {}", p.0, src_str(a), cmp, src_str(b))
        }
        Mov { d, s } => format!("mov   r{}, {}", d.0, src_str(s)),
        Sel { d, p, a, b } => format!("sel   r{}, p{}, {}, {}", d.0, p.0, src_str(a), src_str(b)),
        Ldc { d, idx } => format!("ldc   r{}, c[{}]", d.0, idx),
        ReadSr { d, sr } => format!("s2r   r{}, {:?}", d.0, sr),
        FAdd { d, a, b } => format!("fadd  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        FMul { d, a, b } => format!("fmul  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        FFma { d, a, b, c } => format!(
            "ffma  r{}, {}, {}, {}",
            d.0,
            src_str(a),
            src_str(b),
            src_str(c)
        ),
        FMin { d, a, b } => format!("fmin  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        FMax { d, a, b } => format!("fmax  r{}, {}, {}", d.0, src_str(a), src_str(b)),
        FSetP { p, a, b, cmp } => {
            format!("fsetp p{}, {} {:?} {}", p.0, src_str(a), cmp, src_str(b))
        }
        I2F { d, a } => format!("i2f   r{}, {}", d.0, src_str(a)),
        F2I { d, a } => format!("f2i   r{}, {}", d.0, src_str(a)),
        F2IFloor { d, a } => format!("f2i.rmi r{}, {}", d.0, src_str(a)),
        Rcp { d, a } => format!("rcp   r{}, {}", d.0, src_str(a)),
        Sqrt { d, a } => format!("sqrt  r{}, {}", d.0, src_str(a)),
        Ex2 { d, a } => format!("ex2   r{}, {}", d.0, src_str(a)),
        Lg2 { d, a } => format!("lg2   r{}, {}", d.0, src_str(a)),
        Ldg {
            d,
            addr,
            off,
            w,
            guard,
            stream,
        } => format!(
            "ldg{}{} r{}, [r{}{:+}] {:?}",
            if *stream { ".cg" } else { "" },
            guard.map_or(String::new(), |p| format!(" @p{}", p.0)),
            d.0,
            addr.0,
            off,
            w
        ),
        LdgV4 {
            d,
            addr,
            off,
            stream,
        } => format!(
            "ldg.128{} r{}..r{}, [r{}{:+}]",
            if *stream { ".cg" } else { "" },
            d.0,
            d.0 + 3,
            addr.0,
            off
        ),
        Stg {
            addr,
            off,
            v,
            w,
            guard,
            stream,
        } => format!(
            "stg{}{} [r{}{:+}], {} {:?}",
            if *stream { ".cs" } else { "" },
            guard.map_or(String::new(), |p| format!(" @p{}", p.0)),
            addr.0,
            off,
            src_str(v),
            w
        ),
        Lds { d, addr, off, w } => format!("lds   r{}, [r{}{:+}] {:?}", d.0, addr.0, off, w),
        Sts { addr, off, v, w } => {
            format!("sts   [r{}{:+}], {} {:?}", addr.0, off, src_str(v), w)
        }
        Mma {
            kind,
            acc,
            a_addr,
            b_addr,
        } => format!(
            "mma.{:?} r{}.., [r{}], [r{}]",
            kind, acc.0, a_addr.0, b_addr.0
        ),
        Bra {
            target,
            pred,
            sense,
        } => match pred {
            Some(p) => format!(
                "bra   {} @{}p{}",
                target,
                if *sense { "" } else { "!" },
                p.0
            ),
            None => format!("bra   {target}"),
        },
        Bar => "bar.sync".into(),
        Exit => "exit".into(),
        Nop => "nop".into(),
    }
}

/// Full disassembly listing with instruction indices.
pub fn disasm(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} — {} insts, {} regs, {} preds",
        p.name,
        p.ops.len(),
        p.nregs,
        p.npreds
    );
    for (i, op) in p.ops.iter().enumerate() {
        let _ = writeln!(out, "{i:>5}: {}", disasm_op(op));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ICmp, MemWidth, Src};
    use crate::program::ProgramBuilder;

    fn sample() -> Program {
        let mut p = ProgramBuilder::new("sample");
        let a = p.alloc();
        let b = p.alloc();
        let pr = p.alloc_pred();
        p.ldc(a, 0);
        p.label_here("top");
        p.imad(b, a.into(), Src::Imm(3), b.into());
        p.ffma(b, b.into(), Src::imm_f32(1.5), b.into());
        p.ldg(a, a, 4, MemWidth::B8S);
        p.stg(b, -8, a.into(), MemWidth::B32);
        p.isetp(pr, a.into(), Src::Imm(10), ICmp::Lt);
        p.bra_if("top", pr, true);
        p.exit();
        p.build()
    }

    #[test]
    fn static_mix_counts_pipes() {
        let p = sample();
        let m = static_mix(&p);
        // ldc + imad + isetp on the INT pipe; ffma on FP; ldg + stg on LSU;
        // bra + exit control.
        assert_eq!(m.int, 3);
        assert_eq!(m.fp, 1);
        assert_eq!(m.lsu, 2);
        assert_eq!(m.ctrl, 2);
    }

    #[test]
    fn static_mix_totals_match_program_len() {
        let p = sample();
        let m = static_mix(&p);
        assert_eq!(m.total(), p.ops.len());
        assert!(m.fraction(crate::isa::PipeClass::Lsu) > 0.0);
    }

    #[test]
    fn disasm_renders_every_instruction() {
        let p = sample();
        let text = disasm(&p);
        assert!(text.contains("imad"));
        assert!(text.contains("ffma"));
        assert!(text.contains("ldg"));
        assert!(text.contains("stg"));
        assert!(text.contains("bra"));
        assert!(text.contains("exit"));
        assert_eq!(text.lines().count(), p.ops.len() + 1);
    }

    #[test]
    fn disasm_marks_streaming_and_guards() {
        use crate::isa::{Op, Pred, Reg};
        let cs = Op::Ldg {
            d: Reg(1),
            addr: Reg(0),
            off: 0,
            w: MemWidth::B32,
            guard: Some(Pred(2)),
            stream: true,
        };
        let s = disasm_op(&cs);
        assert!(s.contains(".cg") && s.contains("@p2"), "{s}");
    }

    #[test]
    fn kernel_programs_have_expected_mixes() {
        // A generated GEMM program's static mix should be INT/LSU heavy.
        // (Pulled in via a local rebuild to avoid a circular dev-dependency:
        // just verify our own sample here; kernel-side mixes are asserted in
        // vitbit-kernels tests.)
        let p = sample();
        let m = static_mix(&p);
        assert!(m.int >= m.fp);
    }
}
