//! Optional wall-clock attribution of the functional execute path.
//!
//! When enabled (`VITBIT_EXEC_PROFILE=1`, or [`set_enabled`] in-process)
//! the SM issue path times every [`crate::exec::execute`] call and charges
//! the elapsed nanoseconds to the issuing pipe. The counters are process
//! globals so the bench can read one attribution across all 14 SMs without
//! threading state through the launch API; when disabled the only cost on
//! the issue path is a relaxed atomic load and an untaken branch.
//!
//! Attribution is *host* wall time of the functional execute body only —
//! scheduling, scoreboard checks and the timing model are deliberately
//! excluded, because the per-pipe split exists to answer "where does the
//! residual simulator wall go: ALU, LSU or tensor bodies?".

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
/// Per-pipe nanosecond totals, indexed by the [`crate::decoded`] pipe code
/// (0 int, 1 fp, 2 tensor, 3 sfu, 4 lsu, 5 ctrl).
static NS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];
static CALLS: [AtomicU64; 6] = [const { AtomicU64::new(0) }; 6];

/// Human-readable name of pipe code `i` (the snapshot array index).
pub fn pipe_name(i: usize) -> &'static str {
    ["int", "fp", "tensor", "sfu", "lsu", "ctrl"][i.min(5)]
}

/// True when execute-path timing is on.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => init(),
    }
}

#[cold]
fn init() -> bool {
    let on = std::env::var_os("VITBIT_EXEC_PROFILE").is_some_and(|v| v != "0");
    set_enabled(on);
    on
}

/// Turns execute-path timing on or off in-process.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Charges the time since `start` to pipe code `pipe`.
#[inline]
pub fn record(pipe: u8, start: Instant) {
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let i = (pipe as usize).min(5);
    NS[i].fetch_add(ns, Ordering::Relaxed);
    CALLS[i].fetch_add(1, Ordering::Relaxed);
}

/// Coarse cycle-loop phase totals (outer attribution, indexed by
/// [`extra_name`]): whole-SM step calls, dispatch, fast-forward checks.
static EXTRA: [AtomicU64; 3] = [const { AtomicU64::new(0) }; 3];

/// Name of outer-loop phase `i` in [`extra_ns`] order.
pub fn extra_name(i: usize) -> &'static str {
    ["sm_step", "dispatch", "fast_forward"][i.min(2)]
}

/// Charges the time since `start` to outer-loop phase `i`.
#[inline]
pub fn record_extra(i: usize, start: Instant) {
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    EXTRA[i.min(2)].fetch_add(ns, Ordering::Relaxed);
}

/// Outer-loop phase totals accumulated since the last [`reset`].
pub fn extra_ns() -> [u64; 3] {
    [0, 1, 2].map(|i| EXTRA[i].load(Ordering::Relaxed))
}

/// Zeroes the attribution counters.
pub fn reset() {
    for i in 0..6 {
        NS[i].store(0, Ordering::Relaxed);
        CALLS[i].store(0, Ordering::Relaxed);
    }
    for e in &EXTRA {
        e.store(0, Ordering::Relaxed);
    }
}

/// One attribution snapshot: per-pipe execute wall and call counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Nanoseconds spent inside execute bodies, per pipe code.
    pub ns: [u64; 6],
    /// Execute calls, per pipe code.
    pub calls: [u64; 6],
}

impl ExecProfile {
    /// Total nanoseconds across all pipes.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// Reads the counters accumulated since the last [`reset`].
pub fn snapshot() -> ExecProfile {
    let mut p = ExecProfile::default();
    for i in 0..6 {
        p.ns[i] = NS[i].load(Ordering::Relaxed);
        p.calls[i] = CALLS[i].load(Ordering::Relaxed);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_reset_round_trip() {
        set_enabled(true);
        reset();
        let t0 = Instant::now();
        record(0, t0);
        record(4, t0);
        record(4, t0);
        let p = snapshot();
        assert_eq!(p.calls[0], 1);
        assert_eq!(p.calls[4], 2);
        assert!(p.total_ns() >= p.ns[4]);
        reset();
        assert_eq!(snapshot(), ExecProfile::default());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn out_of_range_pipe_clamps_to_ctrl() {
        set_enabled(true);
        reset();
        record(200, Instant::now());
        assert_eq!(snapshot().calls[5], 1);
        reset();
        set_enabled(false);
    }
}
