//! # vitbit-sim: an embedded-GPU (Jetson AGX Orin) simulator
//!
//! A cycle-approximate, *functional plus timing* model of the Ampere GPU in
//! the NVIDIA Jetson AGX Orin, built as the hardware substrate for the
//! VitBit reproduction (see DESIGN.md for the substitution argument).
//!
//! The model:
//!
//! * **SMs** with four sub-partitions. Each sub-partition has a
//!   greedy-then-oldest (GTO) warp scheduler that can issue up to two
//!   instructions per cycle *to different pipes* — this is how the Ampere
//!   "FP32 and INT32 at full throughput, concurrently" property is realized,
//!   and it is the architectural fact VitBit exploits.
//! * **Pipes** per sub-partition: INT32 ALU, FP32 ALU, Tensor core, SFU and
//!   LSU, each with an occupancy (issue-to-issue) and a result latency.
//! * **Memory**: per-SM shared memory and L1, a chip-wide L2
//!   (set-associative, LRU) and a DRAM model with latency plus a global
//!   bandwidth regulator matching the Orin's 204.8 GB/s LPDDR5.
//! * **SIMT execution**: kernels are programs in a small SASS-like ISA
//!   ([`isa`]); every instruction is executed functionally over 32 lanes at
//!   issue time, so kernels produce *real results* that the test suite
//!   compares against host references. Branches must be warp-uniform
//!   (divergence is handled with predication, which is how the VitBit
//!   kernels are written anyway).
//! * **Statistics**: cycles, per-pipe instruction counts, arithmetic
//!   operation counts, IPC, pipe utilization, DRAM traffic — the quantities
//!   behind the paper's Figures 8–10.

#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod config;
pub mod decoded;
pub mod exec;
pub mod fault;
pub mod gpu;
pub mod isa;
pub mod launch;
pub mod mem;
pub mod memsys;
pub mod plane;
pub mod profile;
pub mod program;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod warp;

pub use config::{InterpMode, OrinConfig, SchedPolicy, SimMode};
pub use decoded::{AddrClass, BasicBlock, BlockEnd, DecodedProgram, MicroOp};
pub use fault::{FaultConfig, FaultKind};
pub use gpu::{Gpu, LaunchError};
pub use isa::{FCmp, ICmp, MemWidth, MmaKind, Op, Pred, Reg, SReg, Src};
pub use launch::{Kernel, RoleMap};
pub use mem::StoreOverlay;
pub use profile::ExecProfile;
pub use program::{Program, ProgramBuilder};
pub use stats::KernelStats;
