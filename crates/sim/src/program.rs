//! Kernel programs and the builder used by `vitbit-kernels`.

use crate::decoded::DecodedProgram;
use crate::isa::{ICmp, MemWidth, MmaKind, Op, Pred, Reg, SReg, Src};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// A finished kernel program: a flat instruction vector with resolved branch
/// targets plus the register-file footprint.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instructions; branch targets index into this vector.
    pub ops: Vec<Op>,
    /// Per-thread registers used.
    pub nregs: u8,
    /// Predicate registers used.
    pub npreds: u8,
    /// Debug name.
    pub name: String,
    /// Decoded micro-op cache, filled once per program (eagerly by
    /// [`ProgramBuilder::build`]; lazily on first access otherwise).
    decoded: OnceLock<DecodedProgram>,
}

impl Program {
    /// Assembles a program from already-resolved instructions. Branch targets
    /// in `ops` must be absolute indices into the vector; the caller vouches
    /// for them (optimization passes that permute an existing program do).
    /// The decoded form is rebuilt lazily on first access.
    pub fn from_raw(ops: Vec<Op>, nregs: u8, npreds: u8, name: impl Into<String>) -> Program {
        Program {
            ops,
            nregs,
            npreds,
            name: name.into(),
            decoded: OnceLock::new(),
        }
    }

    /// Wraps the program for sharing across warps.
    pub fn into_arc(self) -> Arc<Program> {
        Arc::new(self)
    }

    /// The decoded micro-op/basic-block form of this program. Decoding
    /// happens at most once; every later call is a cache read.
    pub fn decoded(&self) -> &DecodedProgram {
        self.decoded
            .get_or_init(|| DecodedProgram::decode(&self.ops))
    }
}

/// Builder with register allocation and labels.
///
/// ```
/// use vitbit_sim::program::ProgramBuilder;
/// use vitbit_sim::isa::{ICmp, Src};
///
/// let mut p = ProgramBuilder::new("count_to_ten");
/// let i = p.alloc();
/// p.mov(i, Src::Imm(0));
/// let top = p.label_here("loop");
/// p.iadd(i, i.into(), Src::Imm(1));
/// let pr = p.alloc_pred();
/// p.isetp(pr, i.into(), Src::Imm(10), ICmp::Lt);
/// p.bra_if(top, pr, true);
/// p.exit();
/// let prog = p.build();
/// assert!(prog.nregs >= 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    next_reg: u16,
    next_pred: u8,
    labels: HashMap<String, usize>,
    /// (op index, label) pairs patched at build time.
    fixups: Vec<(usize, String)>,
    name: String,
}

impl ProgramBuilder {
    /// New empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            ops: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            labels: HashMap::new(),
            fixups: Vec::new(),
            name: name.into(),
        }
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    /// Panics past 255 registers (the model's per-thread file).
    pub fn alloc(&mut self) -> Reg {
        assert!(self.next_reg < 256, "out of registers in {}", self.name);
        let r = Reg(self.next_reg as u8);
        self.next_reg += 1;
        r
    }

    /// Allocates `n` consecutive registers, returning the first.
    pub fn alloc_n(&mut self, n: u16) -> Reg {
        assert!(
            self.next_reg + n <= 256,
            "out of registers in {}",
            self.name
        );
        let r = Reg(self.next_reg as u8);
        self.next_reg += n;
        r
    }

    /// Allocates a predicate register.
    pub fn alloc_pred(&mut self) -> Pred {
        assert!(self.next_pred < 8, "out of predicates in {}", self.name);
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Defines a label at the current position and returns its name.
    pub fn label_here(&mut self, name: impl Into<String>) -> String {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.ops.len());
        assert!(prev.is_none(), "duplicate label {name}");
        name
    }

    /// Pushes a raw op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    // --- thin op helpers (each returns for chaining-by-sequence style) ---

    /// `d = s`.
    pub fn mov(&mut self, d: Reg, s: Src) {
        self.ops.push(Op::Mov { d, s });
    }
    /// `d = a + b`.
    pub fn iadd(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IAdd { d, a, b });
    }
    /// `d = a - b`.
    pub fn isub(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::ISub { d, a, b });
    }
    /// `d = a * b`.
    pub fn imul(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IMul { d, a, b });
    }
    /// `d = a * b + c`.
    pub fn imad(&mut self, d: Reg, a: Src, b: Src, c: Src) {
        self.ops.push(Op::IMad { d, a, b, c });
    }
    /// Bitwise and.
    pub fn and(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::And { d, a, b });
    }
    /// Logical shift left.
    pub fn shl(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::Shl { d, a, b });
    }
    /// Logical shift right.
    pub fn shr(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::Shr { d, a, b });
    }
    /// Arithmetic shift right.
    pub fn sar(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::Sar { d, a, b });
    }
    /// Signed min / max.
    pub fn imin(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IMin { d, a, b });
    }
    /// Signed max.
    pub fn imax(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IMax { d, a, b });
    }
    /// Unsigned division.
    pub fn idivu(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IDivU { d, a, b });
    }
    /// Unsigned remainder.
    pub fn iremu(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::IRemU { d, a, b });
    }
    /// Butterfly shuffle.
    pub fn shfl(&mut self, d: Reg, a: Reg, xor_mask: u8) {
        self.ops.push(Op::Shfl { d, a, xor_mask });
    }
    /// Bitwise or.
    pub fn or(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::Or { d, a, b });
    }
    /// Integer compare into predicate.
    pub fn isetp(&mut self, p: Pred, a: Src, b: Src, cmp: ICmp) {
        self.ops.push(Op::ISetP { p, a, b, cmp });
    }
    /// Per-lane select.
    pub fn sel(&mut self, d: Reg, p: Pred, a: Src, b: Src) {
        self.ops.push(Op::Sel { d, p, a, b });
    }
    /// Load kernel argument.
    pub fn ldc(&mut self, d: Reg, idx: u16) {
        self.ops.push(Op::Ldc { d, idx });
    }
    /// Read special register.
    pub fn sreg(&mut self, d: Reg, sr: SReg) {
        self.ops.push(Op::ReadSr { d, sr });
    }
    /// `d = a + b` (f32).
    pub fn fadd(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::FAdd { d, a, b });
    }
    /// `d = a * b` (f32).
    pub fn fmul(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::FMul { d, a, b });
    }
    /// `d = a * b + c` (f32).
    pub fn ffma(&mut self, d: Reg, a: Src, b: Src, c: Src) {
        self.ops.push(Op::FFma { d, a, b, c });
    }
    /// f32 minimum.
    pub fn fmin(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::FMin { d, a, b });
    }
    /// f32 maximum.
    pub fn fmax(&mut self, d: Reg, a: Src, b: Src) {
        self.ops.push(Op::FMax { d, a, b });
    }
    /// i32 -> f32.
    pub fn i2f(&mut self, d: Reg, a: Src) {
        self.ops.push(Op::I2F { d, a });
    }
    /// f32 -> i32.
    pub fn f2i(&mut self, d: Reg, a: Src) {
        self.ops.push(Op::F2I { d, a });
    }
    /// f32 -> i32, rounding toward negative infinity (cvt.rmi).
    pub fn f2i_floor(&mut self, d: Reg, a: Src) {
        self.ops.push(Op::F2IFloor { d, a });
    }
    /// Global load.
    pub fn ldg(&mut self, d: Reg, addr: Reg, off: i32, w: MemWidth) {
        self.ops.push(Op::Ldg {
            d,
            addr,
            off,
            w,
            guard: None,
            stream: false,
        });
    }
    /// Streaming global load (`ld.global.cs`): bypasses the L1.
    pub fn ldg_cs(&mut self, d: Reg, addr: Reg, off: i32, w: MemWidth) {
        self.ops.push(Op::Ldg {
            d,
            addr,
            off,
            w,
            guard: None,
            stream: true,
        });
    }
    /// Vector global load (LDG.128) into `d..d+3`.
    pub fn ldg_v4(&mut self, d: Reg, addr: Reg, off: i32) {
        self.ops.push(Op::LdgV4 {
            d,
            addr,
            off,
            stream: false,
        });
    }
    /// Streaming vector global load.
    pub fn ldg_v4_cs(&mut self, d: Reg, addr: Reg, off: i32) {
        self.ops.push(Op::LdgV4 {
            d,
            addr,
            off,
            stream: true,
        });
    }
    /// Guarded global load.
    pub fn ldg_if(&mut self, d: Reg, addr: Reg, off: i32, w: MemWidth, guard: Pred) {
        self.ops.push(Op::Ldg {
            d,
            addr,
            off,
            w,
            guard: Some(guard),
            stream: false,
        });
    }
    /// Global store.
    pub fn stg(&mut self, addr: Reg, off: i32, v: Src, w: MemWidth) {
        self.ops.push(Op::Stg {
            addr,
            off,
            v,
            w,
            guard: None,
            stream: false,
        });
    }
    /// Streaming global store (`st.global.cs`): bypasses cache allocation.
    pub fn stg_cs(&mut self, addr: Reg, off: i32, v: Src, w: MemWidth) {
        self.ops.push(Op::Stg {
            addr,
            off,
            v,
            w,
            guard: None,
            stream: true,
        });
    }
    /// Guarded global store.
    pub fn stg_if(&mut self, addr: Reg, off: i32, v: Src, w: MemWidth, guard: Pred) {
        self.ops.push(Op::Stg {
            addr,
            off,
            v,
            w,
            guard: Some(guard),
            stream: false,
        });
    }
    /// Shared load.
    pub fn lds(&mut self, d: Reg, addr: Reg, off: i32, w: MemWidth) {
        self.ops.push(Op::Lds { d, addr, off, w });
    }
    /// Shared store.
    pub fn sts(&mut self, addr: Reg, off: i32, v: Src, w: MemWidth) {
        self.ops.push(Op::Sts { addr, off, v, w });
    }
    /// Tensor-core MMA.
    pub fn mma(&mut self, kind: MmaKind, acc: Reg, a_addr: Reg, b_addr: Reg) {
        self.ops.push(Op::Mma {
            kind,
            acc,
            a_addr,
            b_addr,
        });
    }
    /// Block barrier.
    pub fn bar(&mut self) {
        self.ops.push(Op::Bar);
    }
    /// Warp exit.
    pub fn exit(&mut self) {
        self.ops.push(Op::Exit);
    }

    /// Unconditional branch to a label (may be defined later).
    pub fn bra(&mut self, label: impl Into<String>) {
        self.fixups.push((self.ops.len(), label.into()));
        self.ops.push(Op::Bra {
            target: usize::MAX,
            pred: None,
            sense: true,
        });
    }

    /// Conditional branch: taken when `pred == sense`.
    pub fn bra_if(&mut self, label: impl Into<String>, pred: Pred, sense: bool) {
        self.fixups.push((self.ops.len(), label.into()));
        self.ops.push(Op::Bra {
            target: usize::MAX,
            pred: Some(pred),
            sense,
        });
    }

    /// Registers allocated so far.
    pub fn regs_used(&self) -> u16 {
        self.next_reg
    }

    /// Resolves labels and returns the program.
    ///
    /// # Panics
    /// Panics on an undefined label or if no `Exit` is present.
    pub fn build(mut self) -> Program {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("undefined label {label} in {}", self.name));
            if let Op::Bra { target: t, .. } = &mut self.ops[idx] {
                *t = target;
            }
        }
        assert!(
            self.ops.iter().any(|op| matches!(op, Op::Exit)),
            "program {} has no Exit",
            self.name
        );
        let program = Program {
            ops: self.ops,
            nregs: self.next_reg.max(1) as u8,
            npreds: self.next_pred.max(1),
            name: self.name,
            decoded: OnceLock::new(),
        };
        // Decode eagerly: warps share the Arc'd program, so paying the
        // one-time decode here keeps it off the simulation hot path.
        let _ = program.decoded();
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut p = ProgramBuilder::new("t");
        let r = p.alloc();
        p.label_here("top");
        p.iadd(r, r.into(), Src::Imm(1));
        p.bra("end"); // forward
        p.bra("top"); // backward
        p.label_here("end");
        p.exit();
        let prog = p.build();
        match prog.ops[1] {
            Op::Bra { target, .. } => assert_eq!(target, 3),
            _ => panic!(),
        }
        match prog.ops[2] {
            Op::Bra { target, .. } => assert_eq!(target, 0),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut p = ProgramBuilder::new("t");
        p.bra("nowhere");
        p.exit();
        let _ = p.build();
    }

    #[test]
    #[should_panic(expected = "no Exit")]
    fn missing_exit_panics() {
        let mut p = ProgramBuilder::new("t");
        let r = p.alloc();
        p.mov(r, Src::Imm(0));
        let _ = p.build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut p = ProgramBuilder::new("t");
        p.label_here("x");
        p.label_here("x");
    }

    #[test]
    fn register_allocation_is_sequential() {
        let mut p = ProgramBuilder::new("t");
        assert_eq!(p.alloc(), Reg(0));
        assert_eq!(p.alloc_n(4), Reg(1));
        assert_eq!(p.alloc(), Reg(5));
        assert_eq!(p.regs_used(), 6);
        assert_eq!(p.alloc_pred(), Pred(0));
        assert_eq!(p.alloc_pred(), Pred(1));
    }

    #[test]
    fn nregs_is_at_least_one() {
        let mut p = ProgramBuilder::new("t");
        p.exit();
        let prog = p.build();
        assert_eq!(prog.nregs, 1);
        assert_eq!(prog.npreds, 1);
    }
}
