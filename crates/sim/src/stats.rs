//! Kernel execution statistics — the measurement surface for Figures 8–10.

use crate::config::OrinConfig;
use crate::isa::PipeClass;

/// Issued-instruction counts per pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeCounts {
    /// INT32 ALU instructions.
    pub int: u64,
    /// FP32 ALU instructions.
    pub fp: u64,
    /// Tensor-core MMA instructions.
    pub tensor: u64,
    /// SFU instructions.
    pub sfu: u64,
    /// Load/store instructions.
    pub lsu: u64,
    /// Control instructions.
    pub ctrl: u64,
}

impl PipeCounts {
    /// Total warp instructions issued.
    pub fn total(&self) -> u64 {
        self.int + self.fp + self.tensor + self.sfu + self.lsu + self.ctrl
    }

    /// Adds one issue to the pipe's counter.
    pub fn bump(&mut self, pipe: PipeClass) {
        match pipe {
            PipeClass::Int => self.int += 1,
            PipeClass::Fp => self.fp += 1,
            PipeClass::Tensor => self.tensor += 1,
            PipeClass::Sfu => self.sfu += 1,
            PipeClass::Lsu => self.lsu += 1,
            PipeClass::Ctrl => self.ctrl += 1,
        }
    }
}

/// Busy-cycle accumulators per pipe (summed over all sub-partitions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeBusy {
    /// INT pipe busy cycles.
    pub int: u64,
    /// FP pipe busy cycles.
    pub fp: u64,
    /// Tensor pipe busy cycles.
    pub tensor: u64,
    /// SFU busy cycles.
    pub sfu: u64,
    /// LSU busy cycles.
    pub lsu: u64,
}

/// Issue-stall cycles per pipe: for every issued instruction, the cycles
/// it spent data-ready but un-issued (issue cycle minus the scoreboard's
/// earliest admissible cycle). High stall with low busy means the pipe
/// lost the sub-partition's issue slot to a sibling pipe — the
/// pipe-overlap deficit the static scheduler attacks. The counters are a
/// pure function of the issue stream and the scoreboard, so they are
/// bit-identical across `SimMode`s, `InterpMode`s and fast-forward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeStall {
    /// INT-pipe issue-stall cycles.
    pub int: u64,
    /// FP-pipe issue-stall cycles.
    pub fp: u64,
    /// Tensor-pipe issue-stall cycles.
    pub tensor: u64,
    /// SFU issue-stall cycles.
    pub sfu: u64,
    /// LSU issue-stall cycles.
    pub lsu: u64,
}

impl PipeStall {
    /// Adds `cycles` of stall to the pipe identified by its decoded pipe
    /// code (`0 = int .. 4 = lsu`); control instructions carry no stall.
    pub fn add(&mut self, pipe_code: u8, cycles: u64) {
        match pipe_code {
            0 => self.int += cycles,
            1 => self.fp += cycles,
            2 => self.tensor += cycles,
            3 => self.sfu += cycles,
            4 => self.lsu += cycles,
            _ => {}
        }
    }

    /// Total stall cycles across all pipes.
    pub fn total(&self) -> u64 {
        self.int + self.fp + self.tensor + self.sfu + self.lsu
    }
}

/// Everything measured during one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Total cycles from launch to last warp exit.
    pub cycles: u64,
    /// Issued instructions per pipe.
    pub issued: PipeCounts,
    /// Busy cycles per pipe.
    pub busy: PipeBusy,
    /// Cycles on which some sub-partition filled both of its issue slots
    /// (summed over SMs and sub-partitions): the dual-issue/pipe-overlap
    /// measure behind the Figure-10 IPC claim.
    pub dual_issue_cycles: u64,
    /// Issue-stall cycles per pipe (data-ready but un-issued).
    pub stall: PipeStall,
    /// Arithmetic operations retired on the INT pipe.
    pub int_ops: u64,
    /// Arithmetic operations retired on the FP pipe.
    pub fp_ops: u64,
    /// Arithmetic operations retired on Tensor cores.
    pub tc_ops: u64,
    /// Arithmetic operations retired on the SFU.
    pub sfu_ops: u64,
    /// Bytes fetched from DRAM.
    pub dram_bytes: u64,
    /// Bytes served by L2 hits.
    pub l2_hit_bytes: u64,
    /// Cycles the event-horizon fast-forward skipped over (all counted in
    /// [`KernelStats::cycles`] as if they elapsed; zero with the knob off).
    pub skipped_cycles: u64,
    /// Number of fast-forward jumps taken.
    pub fast_forward_jumps: u64,
    /// Launch-plan cache hits attributable to this launch (stamped by the
    /// plan/execute engine; zero for launches driven without a plan).
    pub plan_cache_hits: u64,
    /// Launch-plan cache misses attributable to this launch.
    pub plan_cache_misses: u64,
    /// Host-side plan-build work performed for this launch, in deterministic
    /// work units (element visits during weight packing / operand staging
    /// plus fixed policy-resolution costs). Zero on the hot path: a launch
    /// that reuses a fully materialized plan does no build work.
    pub plan_build_cycles: u64,
    /// Faults the simulator injected during this launch (register flips,
    /// DRAM read corruptions, hung warps). Zero with injection disabled.
    pub faults_injected: u64,
    /// Faults detected downstream of this launch (stamped by the ABFT
    /// verification in the plan/execute engine; the simulator itself only
    /// injects).
    pub faults_detected: u64,
    /// Modeled cost of ABFT checksum verification attributed to this
    /// launch, in cycles (element visits divided by the machine's INT-lane
    /// throughput; stamped by the engine, zero when ABFT is off).
    pub abft_check_cycles: u64,
    /// Thread blocks executed.
    pub blocks: u32,
    /// Number of SMs in the machine (for per-SM normalization).
    pub num_sms: u32,
    /// Sub-partitions per SM.
    pub subparts: u32,
}

impl KernelStats {
    /// Total arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.int_ops + self.fp_ops + self.tc_ops + self.sfu_ops
    }

    /// GPU-wide instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.issued.total() as f64 / self.cycles as f64
    }

    /// Average per-SM IPC (the per-SM quantity in Figure 10).
    pub fn ipc_per_sm(&self) -> f64 {
        self.ipc() / f64::from(self.num_sms.max(1))
    }

    /// Arithmetic operations per cycle — the paper's arithmetic-density
    /// proxy (ops/s/mm² on fixed silicon reduces to ops per cycle).
    pub fn arith_density(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.total_ops() as f64 / self.cycles as f64
    }

    /// Utilization of a pipe: busy cycles over total pipe-cycles available.
    pub fn utilization(&self, pipe: PipeClass) -> f64 {
        let busy = match pipe {
            PipeClass::Int => self.busy.int,
            PipeClass::Fp => self.busy.fp,
            PipeClass::Tensor => self.busy.tensor,
            PipeClass::Sfu => self.busy.sfu,
            PipeClass::Lsu => self.busy.lsu,
            PipeClass::Ctrl => return 0.0,
        };
        let capacity = self.cycles * u64::from(self.num_sms) * u64::from(self.subparts);
        if capacity == 0 {
            return 0.0;
        }
        busy as f64 / capacity as f64
    }

    /// Fraction of issuing capacity realized as dual issues: dual-issue
    /// cycles over total issued instructions (0.5 would mean every issue
    /// happened as half of a pair). A cheap pipe-overlap scalar for the
    /// Figure-10-style tables.
    pub fn dual_issue_ratio(&self) -> f64 {
        let issued = self.issued.total();
        if issued == 0 {
            return 0.0;
        }
        self.dual_issue_cycles as f64 / issued as f64
    }

    /// Fraction of simulated cycles the fast-forward skipped over
    /// (0.0 when the knob is off or the kernel never stalled globally).
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / self.cycles as f64
    }

    /// Wall-clock time under the machine's clock.
    pub fn time_ms(&self, cfg: &OrinConfig) -> f64 {
        cfg.cycles_to_ms(self.cycles)
    }

    /// Human-readable multi-line dump of every counter (the stats dump
    /// printed by the harness and examples).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "kernel {:?}: {} cycles, {} blocks",
            self.name, self.cycles, self.blocks
        );
        let _ = writeln!(
            s,
            "  issued: int {} fp {} tensor {} sfu {} lsu {} ctrl {} (ipc {:.3}, per-SM {:.3})",
            self.issued.int,
            self.issued.fp,
            self.issued.tensor,
            self.issued.sfu,
            self.issued.lsu,
            self.issued.ctrl,
            self.ipc(),
            self.ipc_per_sm(),
        );
        let _ = writeln!(
            s,
            "  busy:   int {} fp {} tensor {} sfu {} lsu {}",
            self.busy.int, self.busy.fp, self.busy.tensor, self.busy.sfu, self.busy.lsu,
        );
        let _ = writeln!(
            s,
            "  dual-issue: {} cycles (ratio {:.3})",
            self.dual_issue_cycles,
            self.dual_issue_ratio(),
        );
        let _ = writeln!(
            s,
            "  stall:  int {} fp {} tensor {} sfu {} lsu {}",
            self.stall.int, self.stall.fp, self.stall.tensor, self.stall.sfu, self.stall.lsu,
        );
        let _ = writeln!(
            s,
            "  ops:    int {} fp {} tc {} sfu {} (density {:.2} ops/cy)",
            self.int_ops,
            self.fp_ops,
            self.tc_ops,
            self.sfu_ops,
            self.arith_density(),
        );
        let _ = writeln!(
            s,
            "  memory: dram {} B, l2 hits {} B",
            self.dram_bytes, self.l2_hit_bytes,
        );
        let _ = writeln!(
            s,
            "  fast-forward: {} skipped cycles in {} jumps (skip ratio {:.1}%)",
            self.skipped_cycles,
            self.fast_forward_jumps,
            100.0 * self.skip_ratio(),
        );
        let _ = writeln!(
            s,
            "  plan:   {} cache hits, {} misses, {} build units",
            self.plan_cache_hits, self.plan_cache_misses, self.plan_build_cycles,
        );
        let _ = writeln!(
            s,
            "  faults: {} injected, {} detected, abft check {} cycles",
            self.faults_injected, self.faults_detected, self.abft_check_cycles,
        );
        s
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn dram_gbps(&self, cfg: &OrinConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.dram_bytes as f64 / (self.cycles as f64 / (cfg.clock_ghz * 1e9)) / 1e9
    }

    /// Merges another kernel's stats into this one (sequential composition:
    /// cycles add, counters add).
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.issued.int += other.issued.int;
        self.issued.fp += other.issued.fp;
        self.issued.tensor += other.issued.tensor;
        self.issued.sfu += other.issued.sfu;
        self.issued.lsu += other.issued.lsu;
        self.issued.ctrl += other.issued.ctrl;
        self.busy.int += other.busy.int;
        self.busy.fp += other.busy.fp;
        self.busy.tensor += other.busy.tensor;
        self.busy.sfu += other.busy.sfu;
        self.busy.lsu += other.busy.lsu;
        self.dual_issue_cycles += other.dual_issue_cycles;
        self.stall.int += other.stall.int;
        self.stall.fp += other.stall.fp;
        self.stall.tensor += other.stall.tensor;
        self.stall.sfu += other.stall.sfu;
        self.stall.lsu += other.stall.lsu;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.tc_ops += other.tc_ops;
        self.sfu_ops += other.sfu_ops;
        self.dram_bytes += other.dram_bytes;
        self.l2_hit_bytes += other.l2_hit_bytes;
        self.skipped_cycles += other.skipped_cycles;
        self.fast_forward_jumps += other.fast_forward_jumps;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.plan_build_cycles += other.plan_build_cycles;
        self.faults_injected += other.faults_injected;
        self.faults_detected += other.faults_detected;
        self.abft_check_cycles += other.abft_check_cycles;
        self.blocks += other.blocks;
        self.num_sms = self.num_sms.max(other.num_sms);
        self.subparts = self.subparts.max(other.subparts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelStats {
        KernelStats {
            name: "k".into(),
            cycles: 1000,
            issued: PipeCounts {
                int: 500,
                fp: 300,
                tensor: 50,
                sfu: 10,
                lsu: 100,
                ctrl: 40,
            },
            busy: PipeBusy {
                int: 500,
                fp: 300,
                tensor: 200,
                sfu: 80,
                lsu: 200,
            },
            dual_issue_cycles: 120,
            stall: PipeStall {
                int: 40,
                fp: 30,
                tensor: 10,
                sfu: 5,
                lsu: 25,
            },
            int_ops: 500 * 64,
            fp_ops: 300 * 64,
            tc_ops: 50 * 8192,
            sfu_ops: 320,
            dram_bytes: 128 * 1000,
            l2_hit_bytes: 0,
            skipped_cycles: 0,
            fast_forward_jumps: 0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
            plan_build_cycles: 0,
            faults_injected: 0,
            faults_detected: 0,
            abft_check_cycles: 0,
            blocks: 4,
            num_sms: 2,
            subparts: 4,
        }
    }

    #[test]
    fn ipc_and_density() {
        let s = sample();
        assert!((s.ipc() - 1.0).abs() < 1e-12);
        assert!((s.ipc_per_sm() - 0.5).abs() < 1e-12);
        let density = s.arith_density();
        assert!((density - s.total_ops() as f64 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_bounds() {
        let s = sample();
        // capacity = 1000 * 2 * 4 = 8000 pipe-cycles.
        assert!((s.utilization(PipeClass::Int) - 500.0 / 8000.0).abs() < 1e-12);
        assert_eq!(s.utilization(PipeClass::Ctrl), 0.0);
    }

    #[test]
    fn pipe_counts_bump_and_total() {
        let mut c = PipeCounts::default();
        c.bump(PipeClass::Int);
        c.bump(PipeClass::Int);
        c.bump(PipeClass::Lsu);
        assert_eq!(c.int, 2);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn accumulate_adds_cycles_and_counts() {
        let mut a = sample();
        let b = sample();
        a.accumulate(&b);
        assert_eq!(a.cycles, 2000);
        assert_eq!(a.issued.int, 1000);
        assert_eq!(a.blocks, 8);
        assert_eq!(a.tc_ops, 2 * 50 * 8192);
        assert_eq!(a.dual_issue_cycles, 240);
        assert_eq!(a.stall.int, 80);
        assert_eq!(a.stall.lsu, 50);
    }

    #[test]
    fn dual_issue_ratio_and_stall_total() {
        let s = sample();
        assert!((s.dual_issue_ratio() - 120.0 / 1000.0).abs() < 1e-12);
        let mut st = PipeStall::default();
        st.add(0, 3);
        st.add(4, 2);
        st.add(5, 99); // ctrl pipe carries no stall
        assert_eq!(st.total(), 5);
    }

    #[test]
    fn zero_cycles_degenerate() {
        let s = KernelStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.arith_density(), 0.0);
        assert_eq!(s.utilization(PipeClass::Fp), 0.0);
    }
}
