//! A set-associative LRU cache model (tags only — data lives in
//! [`crate::mem::GlobalMem`]; the cache decides *latency*, not values).

/// Set-associative, write-allocate, LRU cache over 128-byte lines.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `bytes` capacity, `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    /// Panics unless sizes are powers of two producing at least one set.
    pub fn new(bytes: u32, ways: u32, line_bytes: u32) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = bytes / line_bytes;
        assert!(
            ways >= 1 && lines >= ways,
            "cache too small: {lines} lines, {ways} ways"
        );
        let sets = (lines / ways) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        Self {
            sets,
            ways: ways as usize,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways as usize],
            stamps: vec![0; sets * ways as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Looks up the line containing byte address `addr`; on miss, allocates
    /// it (evicting LRU). Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        self.tick += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.tick;
            self.hits += 1;
            return true;
        }
        // Miss: evict LRU way.
        let lru = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("ways >= 1");
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.tick;
        self.misses += 1;
        false
    }

    /// Probes without allocating; true when resident.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = self.set_of(line);
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Invalidates everything (kernel boundary, when desired).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        1 << self.line_shift
    }

    /// Order-insensitive fingerprint of the *timing-relevant* cache state:
    /// which lines are resident in each set and their relative LRU order.
    ///
    /// Absolute `stamps`/`tick` values keep growing across launches even
    /// when the resident set has reached a fixed point, so they must not
    /// feed the hash; what matters for future hit/miss/eviction decisions
    /// is only the per-set ordering. Ties (all-invalid ways share stamp 0)
    /// break by way index, matching the `min_by_key` eviction scan. Two
    /// caches with equal fingerprints respond identically to any future
    /// access sequence.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.sets as u64);
        mix(self.ways as u64);
        let mut order: Vec<usize> = (0..self.ways).collect();
        for set in 0..self.sets {
            let base = set * self.ways;
            order.sort_by_key(|&w| (self.stamps[base + w], w));
            for &w in &order {
                mix(self.tags[base + w]);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(1024, 2, 128);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same line
        assert!(!c.access(128)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 4 sets of 128B lines: lines 0, 4, 8 map to set 0.
        let mut c = Cache::new(1024, 2, 128);
        let line = |i: u64| i * 128 * 4; // stride of set count
        assert!(!c.access(line(0)));
        assert!(!c.access(line(1)));
        assert!(c.access(line(0))); // refresh line 0
        assert!(!c.access(line(2))); // evicts line 1 (LRU)
        assert!(c.access(line(0)));
        assert!(!c.access(line(1))); // line 1 was evicted
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = Cache::new(1024, 2, 128);
        assert!(!c.probe(0));
        assert!(!c.access(0));
        assert!(c.probe(0));
        assert!(!c.probe(512));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = Cache::new(1024, 2, 128);
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    #[should_panic(expected = "cache too small")]
    fn rejects_degenerate_geometry() {
        let _ = Cache::new(128, 4, 128);
    }

    #[test]
    fn fingerprint_ignores_absolute_stamps() {
        // Same resident lines touched in the same relative order, but at
        // different absolute ticks, must fingerprint identically.
        let mut a = Cache::new(1024, 2, 128);
        let mut b = Cache::new(1024, 2, 128);
        a.access(0);
        a.access(512);
        b.access(128); // extra traffic to a *different* set shifts b's tick
        b.access(128);
        b.access(128);
        b.access(0);
        b.access(512);
        // Bring set holding line 128 into the same state in `a`.
        a.access(128);
        // Now both caches hold lines {0, 512} (set 0, same LRU order) and
        // {128}, but with different absolute stamps and tick counters.
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn fingerprint_sees_lru_order() {
        let mut a = Cache::new(1024, 2, 128);
        let mut b = Cache::new(1024, 2, 128);
        let line = |i: u64| i * 128 * 4; // all map to set 0
        a.access(line(0));
        a.access(line(1)); // a: LRU = line 0
        b.access(line(1));
        b.access(line(0)); // b: LRU = line 1
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
        // Touching line 0 in both makes it MRU everywhere: orders realign.
        a.access(line(0));
        b.access(line(0));
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn fingerprint_sees_contents() {
        let mut a = Cache::new(1024, 2, 128);
        let mut b = Cache::new(1024, 2, 128);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
        a.access(0);
        assert_ne!(a.state_fingerprint(), b.state_fingerprint());
        b.access(0);
        assert_eq!(a.state_fingerprint(), b.state_fingerprint());
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = Cache::new(1024, 2, 128); // 4 sets
        for i in 0..4u64 {
            assert!(!c.access(i * 128));
        }
        for i in 0..4u64 {
            assert!(c.access(i * 128), "set {i} should still be resident");
        }
    }
}
