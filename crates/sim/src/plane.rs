//! Lane-plane batch ALU bodies with runtime-selected SIMD specialization.
//!
//! Every function here operates on whole 32-lane register planes
//! (`[u32; 32]`, the warp register file's native layout) and exists in two
//! compilations of the *same* safe-Rust loop nest: the baseline build, and
//! an AVX2+FMA `#[target_feature]` twin that LLVM autovectorizes at the
//! wider width — the exact idiom already proven by the `vpmaddwd` MMA path
//! in [`crate::exec`]. Which copy runs is a process-global mode decided
//! once at first use:
//!
//! * scalar when the CPU lacks AVX2/FMA (the scalar-fallback contract),
//! * scalar when `VITBIT_EXEC_VECTOR=0` (CI's forced-fallback build and
//!   the differential suite's in-process baseline),
//! * vector otherwise.
//!
//! Bit-identity across the two copies is by construction, not by test
//! alone: integer ops are lanewise wrapping arithmetic (evaluation order
//! cannot change a lanewise result at all), and float ops are lanewise
//! IEEE single operations (`+`, `*`, `min`, `max`, and the fused
//! `mul_add`) whose per-lane value is width-independent. Nothing here
//! reassociates across lanes.

use std::sync::atomic::{AtomicU8, Ordering};

const MODE_UNSET: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_VECTOR: u8 = 2;

/// Process-global execute mode: scalar or vector, decided once.
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

/// True when the vector (AVX2+FMA) copies of the execute bodies — and the
/// coarsened bulk LSU paths in [`crate::exec`] — are selected.
#[inline]
pub fn vector_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        MODE_SCALAR => false,
        MODE_VECTOR => true,
        _ => init_mode(),
    }
}

#[cold]
fn init_mode() -> bool {
    let forced_scalar = std::env::var_os("VITBIT_EXEC_VECTOR")
        .is_some_and(|v| v == "0" || v == "off" || v == "scalar");
    let on = !forced_scalar && simd_available();
    MODE.store(
        if on { MODE_VECTOR } else { MODE_SCALAR },
        Ordering::Relaxed,
    );
    on
}

/// Whether this CPU can run the vector copies at all (AVX2 and FMA; the
/// FMA check keeps `mul_add` a single instruction rather than a libm
/// call inside the wide bodies).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Overrides the runtime selection in-process (benches and the
/// differential suite flip modes without re-exec). Requesting vector mode
/// on a machine without AVX2/FMA stays scalar; returns the mode actually
/// selected (`true` = vector).
pub fn set_vector(on: bool) -> bool {
    let on = on && simd_available();
    MODE.store(
        if on { MODE_VECTOR } else { MODE_SCALAR },
        Ordering::Relaxed,
    );
    on
}

/// Two-source lanewise plane op: one scalar body, one AVX2+FMA-compiled
/// twin of the same body, runtime-dispatched.
macro_rules! plane2 {
    ($(#[$doc:meta])* $name:ident, |$x:ident, $y:ident| $e:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32]) {
            #[inline(always)]
            fn body(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32]) {
                for lane in 0..32 {
                    let ($x, $y) = (a[lane], b[lane]);
                    dst[lane] = $e;
                }
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn wide(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32]) {
                body(dst, a, b)
            }
            #[cfg(target_arch = "x86_64")]
            if vector_enabled() {
                // SAFETY: vector mode only turns on after a successful
                // AVX2+FMA feature check; the body is safe Rust.
                return unsafe { wide(dst, a, b) };
            }
            body(dst, a, b)
        }
    };
}

/// Three-source lanewise plane op, same dispatch scheme as [`plane2!`].
macro_rules! plane3 {
    ($(#[$doc:meta])* $name:ident, |$x:ident, $y:ident, $z:ident| $e:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32], c: &[u32; 32]) {
            #[inline(always)]
            fn body(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32], c: &[u32; 32]) {
                for lane in 0..32 {
                    let ($x, $y, $z) = (a[lane], b[lane], c[lane]);
                    dst[lane] = $e;
                }
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn wide(dst: &mut [u32; 32], a: &[u32; 32], b: &[u32; 32], c: &[u32; 32]) {
                body(dst, a, b, c)
            }
            #[cfg(target_arch = "x86_64")]
            if vector_enabled() {
                // SAFETY: vector mode only turns on after a successful
                // AVX2+FMA feature check; the body is safe Rust.
                return unsafe { wide(dst, a, b, c) };
            }
            body(dst, a, b, c)
        }
    };
}

/// One-source lanewise plane op, same dispatch scheme as [`plane2!`].
macro_rules! plane1 {
    ($(#[$doc:meta])* $name:ident, |$x:ident| $e:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(dst: &mut [u32; 32], a: &[u32; 32]) {
            #[inline(always)]
            fn body(dst: &mut [u32; 32], a: &[u32; 32]) {
                for lane in 0..32 {
                    let $x = a[lane];
                    dst[lane] = $e;
                }
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn wide(dst: &mut [u32; 32], a: &[u32; 32]) {
                body(dst, a)
            }
            #[cfg(target_arch = "x86_64")]
            if vector_enabled() {
                // SAFETY: vector mode only turns on after a successful
                // AVX2+FMA feature check; the body is safe Rust.
                return unsafe { wide(dst, a) };
            }
            body(dst, a)
        }
    };
}

/// Two-source lanewise compare producing a 32-bit lane mask (bit `l` set
/// when the predicate holds in lane `l`), same dispatch scheme.
macro_rules! plane_cmp {
    ($(#[$doc:meta])* $name:ident, |$x:ident, $y:ident| $e:expr) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(a: &[u32; 32], b: &[u32; 32]) -> u32 {
            #[inline(always)]
            fn body(a: &[u32; 32], b: &[u32; 32]) -> u32 {
                let mut mask = 0u32;
                for lane in 0..32 {
                    let ($x, $y) = (a[lane], b[lane]);
                    mask |= u32::from($e) << lane;
                }
                mask
            }
            #[cfg(target_arch = "x86_64")]
            #[target_feature(enable = "avx2,fma")]
            unsafe fn wide(a: &[u32; 32], b: &[u32; 32]) -> u32 {
                body(a, b)
            }
            #[cfg(target_arch = "x86_64")]
            if vector_enabled() {
                // SAFETY: vector mode only turns on after a successful
                // AVX2+FMA feature check; the body is safe Rust.
                return unsafe { wide(a, b) };
            }
            body(a, b)
        }
    };
}

#[inline(always)]
fn f(v: u32) -> f32 {
    f32::from_bits(v)
}

plane2!(
    /// Lanewise wrapping add.
    iadd, |x, y| x.wrapping_add(y)
);
plane2!(
    /// Lanewise wrapping subtract.
    isub, |x, y| x.wrapping_sub(y)
);
plane2!(
    /// Lanewise wrapping multiply.
    imul, |x, y| x.wrapping_mul(y)
);
plane2!(
    /// Lanewise bitwise and.
    band, |x, y| x & y
);
plane2!(
    /// Lanewise bitwise or.
    bor, |x, y| x | y
);
plane2!(
    /// Lanewise bitwise xor.
    bxor, |x, y| x ^ y
);
plane2!(
    /// Lanewise left shift, zero past 31.
    shl, |x, y| x.unbounded_shl(y)
);
plane2!(
    /// Lanewise logical right shift, zero past 31.
    shr, |x, y| x.unbounded_shr(y)
);
plane2!(
    /// Lanewise arithmetic right shift, sign-saturating past 31.
    sar, |x, y| ((x as i32).unbounded_shr(y)) as u32
);
plane2!(
    /// Lanewise signed minimum.
    imin, |x, y| (x as i32).min(y as i32) as u32
);
plane2!(
    /// Lanewise signed maximum.
    imax, |x, y| (x as i32).max(y as i32) as u32
);
plane2!(
    /// Lanewise unsigned divide; division by zero yields 0.
    idivu, |x, y| x.checked_div(y).unwrap_or(0)
);
plane2!(
    /// Lanewise unsigned remainder; by zero yields the dividend.
    iremu, |x, y| x.checked_rem(y).unwrap_or(x)
);
plane3!(
    /// Lanewise wrapping multiply-add `a*b + c`.
    imad, |x, y, z| x.wrapping_mul(y).wrapping_add(z)
);
plane2!(
    /// Lanewise IEEE f32 add on the bit patterns.
    fadd, |x, y| (f(x) + f(y)).to_bits()
);
plane2!(
    /// Lanewise IEEE f32 multiply.
    fmul, |x, y| (f(x) * f(y)).to_bits()
);
plane2!(
    /// Lanewise f32 minimum (`f32::min` NaN semantics).
    fmin, |x, y| f(x).min(f(y)).to_bits()
);
plane2!(
    /// Lanewise f32 maximum (`f32::max` NaN semantics).
    fmax, |x, y| f(x).max(f(y)).to_bits()
);
plane3!(
    /// Lanewise fused f32 multiply-add `a*b + c` (IEEE fused: one
    /// rounding, identical bits at every SIMD width).
    ffma, |x, y, z| f(x).mul_add(f(y), f(z)).to_bits()
);
plane1!(
    /// Lanewise signed int-to-float conversion (input as i32).
    i2f, |x| (x as i32 as f32).to_bits()
);
plane1!(
    /// Lanewise f32 square root.
    fsqrt, |x| f(x).sqrt().to_bits()
);
plane1!(
    /// Lanewise f32 reciprocal.
    frcp, |x| (1.0 / f(x)).to_bits()
);

plane_cmp!(
    /// Lanewise equality mask.
    isetp_eq, |x, y| x == y
);
plane_cmp!(
    /// Lanewise inequality mask.
    isetp_ne, |x, y| x != y
);
plane_cmp!(
    /// Lanewise signed less-than mask.
    isetp_lt, |x, y| (x as i32) < (y as i32)
);
plane_cmp!(
    /// Lanewise signed less-or-equal mask.
    isetp_le, |x, y| (x as i32) <= (y as i32)
);
plane_cmp!(
    /// Lanewise signed greater-than mask.
    isetp_gt, |x, y| (x as i32) > (y as i32)
);
plane_cmp!(
    /// Lanewise signed greater-or-equal mask.
    isetp_ge, |x, y| (x as i32) >= (y as i32)
);
plane_cmp!(
    /// Lanewise unsigned less-than mask.
    isetp_ltu, |x, y| x < y
);
plane_cmp!(
    /// Lanewise unsigned greater-or-equal mask.
    isetp_geu, |x, y| x >= y
);
plane_cmp!(
    /// Lanewise f32 equality mask.
    fsetp_eq, |x, y| f(x) == f(y)
);
plane_cmp!(
    /// Lanewise f32 less-than mask.
    fsetp_lt, |x, y| f(x) < f(y)
);
plane_cmp!(
    /// Lanewise f32 less-or-equal mask.
    fsetp_le, |x, y| f(x) <= f(y)
);
plane_cmp!(
    /// Lanewise f32 greater-than mask.
    fsetp_gt, |x, y| f(x) > f(y)
);
plane_cmp!(
    /// Lanewise f32 greater-or-equal mask.
    fsetp_ge, |x, y| f(x) >= f(y)
);

/// Lanewise select: `dst[l] = if mask bit l { a[l] } else { b[l] }`.
#[inline]
pub fn sel(dst: &mut [u32; 32], mask: u32, a: &[u32; 32], b: &[u32; 32]) {
    #[inline(always)]
    fn body(dst: &mut [u32; 32], mask: u32, a: &[u32; 32], b: &[u32; 32]) {
        for lane in 0..32 {
            dst[lane] = if mask & (1 << lane) != 0 {
                a[lane]
            } else {
                b[lane]
            };
        }
    }
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn wide(dst: &mut [u32; 32], mask: u32, a: &[u32; 32], b: &[u32; 32]) {
        body(dst, mask, a, b)
    }
    #[cfg(target_arch = "x86_64")]
    if vector_enabled() {
        // SAFETY: vector mode only turns on after a successful AVX2+FMA
        // feature check; the body is safe Rust.
        return unsafe { wide(dst, mask, a, b) };
    }
    body(dst, mask, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "interesting" planes: mixes of extremes, sign
    /// boundaries, NaN-pattern floats and mundane values.
    fn planes() -> Vec<[u32; 32]> {
        let mut out = Vec::new();
        let specials = [
            0u32,
            1,
            u32::MAX,
            i32::MIN as u32,
            i32::MAX as u32,
            0x7FC0_0001, // NaN
            f32::NEG_INFINITY.to_bits(),
            (-0.0f32).to_bits(),
            1.5f32.to_bits(),
            31,
            32,
            40,
        ];
        let mut seed = 0x1234_5678u32;
        for base in 0..4u32 {
            let mut p = [0u32; 32];
            for (l, v) in p.iter_mut().enumerate() {
                seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
                *v = if (l as u32 + base).is_multiple_of(3) {
                    specials[(seed as usize) % specials.len()]
                } else {
                    seed
                };
            }
            out.push(p);
        }
        out
    }

    /// Every plane body must produce identical bits in scalar and vector
    /// mode (trivially true when the machine has no AVX2 — the test then
    /// compares scalar against scalar).
    #[test]
    fn scalar_and_vector_bodies_agree() {
        let ps = planes();
        let a = &ps[0];
        let b = &ps[1];
        let c = &ps[2];
        let mask = 0xA5A5_5A5Au32;
        let was = vector_enabled();

        macro_rules! check2 {
            ($($f:ident),*) => {$(
                let mut s = [0u32; 32];
                let mut v = [0u32; 32];
                set_vector(false);
                $f(&mut s, a, b);
                set_vector(true);
                $f(&mut v, a, b);
                assert_eq!(s, v, concat!(stringify!($f), " diverged"));
            )*};
        }
        macro_rules! check3 {
            ($($f:ident),*) => {$(
                let mut s = [0u32; 32];
                let mut v = [0u32; 32];
                set_vector(false);
                $f(&mut s, a, b, c);
                set_vector(true);
                $f(&mut v, a, b, c);
                assert_eq!(s, v, concat!(stringify!($f), " diverged"));
            )*};
        }
        macro_rules! check1 {
            ($($f:ident),*) => {$(
                let mut s = [0u32; 32];
                let mut v = [0u32; 32];
                set_vector(false);
                $f(&mut s, a);
                set_vector(true);
                $f(&mut v, a);
                assert_eq!(s, v, concat!(stringify!($f), " diverged"));
            )*};
        }
        macro_rules! checkcmp {
            ($($f:ident),*) => {$(
                set_vector(false);
                let s = $f(a, b);
                set_vector(true);
                let v = $f(a, b);
                assert_eq!(s, v, concat!(stringify!($f), " diverged"));
            )*};
        }
        check2!(iadd, isub, imul, band, bor, bxor, shl, shr, sar, imin, imax, idivu, iremu);
        check2!(fadd, fmul, fmin, fmax);
        check1!(i2f, fsqrt, frcp);
        check3!(imad, ffma);
        checkcmp!(isetp_eq, isetp_ne, isetp_lt, isetp_le, isetp_gt, isetp_ge, isetp_ltu, isetp_geu);
        checkcmp!(fsetp_eq, fsetp_lt, fsetp_le, fsetp_gt, fsetp_ge);
        let mut s = [0u32; 32];
        let mut v = [0u32; 32];
        set_vector(false);
        sel(&mut s, mask, a, b);
        set_vector(true);
        sel(&mut v, mask, a, b);
        assert_eq!(s, v, "sel diverged");
        set_vector(was);
    }

    #[test]
    fn known_values() {
        let was = vector_enabled();
        for mode in [false, true] {
            set_vector(mode);
            let a = [3u32; 32];
            let b = [5u32; 32];
            let c = [7u32; 32];
            let mut d = [0u32; 32];
            imad(&mut d, &a, &b, &c);
            assert_eq!(d[31], 22);
            let af = [2.0f32.to_bits(); 32];
            let bf = [4.0f32.to_bits(); 32];
            let cf = [1.0f32.to_bits(); 32];
            ffma(&mut d, &af, &bf, &cf);
            assert_eq!(f32::from_bits(d[0]), 9.0);
            assert_eq!(isetp_ltu(&a, &b), u32::MAX);
            assert_eq!(isetp_geu(&a, &b), 0);
        }
        set_vector(was);
    }

    #[test]
    fn set_vector_respects_cpu() {
        let was = vector_enabled();
        assert!(!set_vector(false));
        assert!(!vector_enabled());
        let got = set_vector(true);
        assert_eq!(got, simd_available(), "vector only when the CPU can");
        assert_eq!(vector_enabled(), got);
        set_vector(was);
    }
}
