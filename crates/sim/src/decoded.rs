//! Decoded micro-op cache and basic-block structure.
//!
//! Every static [`Op`] of a [`crate::program::Program`] is decoded exactly
//! once into a flat, branch-light [`MicroOp`]: register indices, the pipe
//! class, predicate operands and the arithmetic-op weight are pre-resolved
//! so the per-cycle issue path in [`crate::sm`] never re-matches on the
//! `Op` enum for a warp that cannot issue anyway. The stream is also split
//! into straight-line [`BasicBlock`]s (boundaries at branch targets,
//! branches, barriers and exits) with per-instruction dependency levels —
//! the VLIW-style grouping that the planned static scheduler will consume
//! (see DESIGN.md §11).
//!
//! Invariant the whole module hangs on: the register/predicate constraint
//! *set* of a `MicroOp` (sources ∪ destination range ∪ predicates) equals
//! the set the reference interpreter derives from [`crate::exec::src_regs`]
//! and friends — the decode below calls those very helpers, so the two
//! interpreters cannot drift. Sources that fall inside the destination
//! range are dropped (the WAW check already covers them), which is what
//! bounds `srcs` at 3 entries even for `Mma` (its accumulator reads are
//! subsumed by the accumulator destination range).

use crate::exec;
use crate::isa::{Op, PipeClass};

/// Sentinel for "no predicate operand" in [`MicroOp`].
pub const NO_PRED: u8 = u8::MAX;

/// Pipe encoding used by [`MicroOp::pipe`]: indices 0–4 match the SM's
/// `pipe_free` array, [`CTRL_PIPE`] marks control instructions.
pub const CTRL_PIPE: u8 = 5;

/// One pre-decoded instruction: everything the issue path needs, flat.
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    /// Pipe index (0 int, 1 fp, 2 tensor, 3 sfu, 4 lsu, [`CTRL_PIPE`]).
    pub pipe: u8,
    /// Number of live entries in [`MicroOp::srcs`].
    pub n_src: u8,
    /// Source registers outside the destination range (scoreboard reads).
    pub srcs: [u8; 3],
    /// First destination register (valid when `dest_count > 0`).
    pub dest_first: u8,
    /// Destination register count (0 = no register destination).
    pub dest_count: u8,
    /// Source predicate, or [`NO_PRED`].
    pub src_pred: u8,
    /// Destination predicate, or [`NO_PRED`].
    pub dest_pred: u8,
    /// Arithmetic operations charged on issue ([`Op::arith_ops`]).
    pub arith: u32,
    /// Index of the owning [`BasicBlock`].
    pub block: u32,
    /// Dependency level within the block: 0 for instructions with no
    /// register/predicate producer earlier in the same block, else one
    /// more than the deepest such producer.
    pub level: u8,
}

/// Why a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEnd {
    /// The next instruction is a branch target (a label): control merges.
    FallThrough,
    /// The block ends in a (conditional) branch.
    Branch,
    /// The block ends at a barrier: the warp parks.
    Barrier,
    /// The block ends in a warp exit.
    Exit,
}

/// A maximal straight-line run of micro-ops.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Dependency depth: `1 + max(level)` over the block's micro-ops —
    /// the minimum issue-slot count a static scheduler needs for it.
    pub depth: u32,
    /// Terminator kind.
    pub end_kind: BlockEnd,
}

/// The decoded form of a program, built once per [`crate::program::Program`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// One micro-op per [`Op`], same indexing as `Program::ops`.
    pub mops: Vec<MicroOp>,
    /// Straight-line blocks covering `mops` exactly, in program order.
    pub blocks: Vec<BasicBlock>,
}

/// Maps a [`PipeClass`] to the [`MicroOp::pipe`] encoding.
#[inline]
pub fn pipe_code(p: PipeClass) -> u8 {
    match p {
        PipeClass::Int => 0,
        PipeClass::Fp => 1,
        PipeClass::Tensor => 2,
        PipeClass::Sfu => 3,
        PipeClass::Lsu => 4,
        PipeClass::Ctrl => CTRL_PIPE,
    }
}

/// Inverse of [`pipe_code`] for pipe indices 0–4; anything else is Ctrl.
#[inline]
pub fn pipe_class(code: u8) -> PipeClass {
    match code {
        0 => PipeClass::Int,
        1 => PipeClass::Fp,
        2 => PipeClass::Tensor,
        3 => PipeClass::Sfu,
        4 => PipeClass::Lsu,
        _ => PipeClass::Ctrl,
    }
}

impl DecodedProgram {
    /// Decodes `ops` (a finished program: branch targets resolved).
    pub fn decode(ops: &[Op]) -> Self {
        let mut mops: Vec<MicroOp> = Vec::with_capacity(ops.len());
        let mut scratch: Vec<u8> = Vec::with_capacity(16);
        for op in ops {
            let (dest_first, dest_count) = exec::dest_regs(op).unwrap_or((0, 0));
            exec::src_regs(op, &mut scratch);
            let mut srcs = [0u8; 3];
            let mut n_src = 0u8;
            for &r in &scratch {
                // Registers in the destination range are already gated by
                // the WAW check on `(dest_first, dest_count)`.
                let in_dest = dest_count > 0
                    && r >= dest_first
                    && u16::from(r) < u16::from(dest_first) + u16::from(dest_count);
                if in_dest {
                    continue;
                }
                assert!(
                    (n_src as usize) < srcs.len(),
                    "op with more than 3 independent source registers"
                );
                srcs[n_src as usize] = r;
                n_src += 1;
            }
            exec::src_preds(op, &mut scratch);
            assert!(scratch.len() <= 1, "op with more than one source predicate");
            let src_pred = scratch.first().copied().unwrap_or(NO_PRED);
            let dest_pred = exec::dest_pred(op).unwrap_or(NO_PRED);
            mops.push(MicroOp {
                pipe: pipe_code(op.pipe()),
                n_src,
                srcs,
                dest_first,
                dest_count,
                src_pred,
                dest_pred,
                arith: u32::try_from(op.arith_ops()).unwrap_or(u32::MAX),
                block: 0,
                level: 0,
            });
        }
        let blocks = split_blocks(ops, &mut mops);
        DecodedProgram { mops, blocks }
    }
}

/// Splits the stream into basic blocks and fills per-block metadata
/// (`MicroOp::block`, `MicroOp::level`, `BasicBlock::depth`).
fn split_blocks(ops: &[Op], mops: &mut [MicroOp]) -> Vec<BasicBlock> {
    // Leaders: instruction 0, every branch target, and the instruction
    // after each terminator (branch, barrier, exit).
    let mut leader = vec![false; ops.len()];
    if !ops.is_empty() {
        leader[0] = true;
    }
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Bra { target, .. } => {
                leader[*target] = true;
                if i + 1 < ops.len() {
                    leader[i + 1] = true;
                }
            }
            Op::Bar | Op::Exit if i + 1 < ops.len() => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < ops.len() {
        let mut end = start + 1;
        while end < ops.len() && !leader[end] {
            end += 1;
        }
        let end_kind = match &ops[end - 1] {
            Op::Bra { .. } => BlockEnd::Branch,
            Op::Bar => BlockEnd::Barrier,
            Op::Exit => BlockEnd::Exit,
            _ => BlockEnd::FallThrough,
        };
        let bidx = blocks.len() as u32;
        let depth = assign_levels(&mut mops[start..end], bidx);
        blocks.push(BasicBlock {
            start: start as u32,
            end: end as u32,
            depth,
            end_kind,
        });
        start = end;
    }
    blocks
}

/// Assigns dependency levels within one straight-line block (the VLIW
/// grouping idiom): an instruction's level is one more than the deepest
/// earlier in-block writer of any register or predicate it touches (reads,
/// WAW destinations, predicates). Returns the block depth.
fn assign_levels(mops: &mut [MicroOp], block: u32) -> u32 {
    // Level of the last in-block writer, +1 so 0 means "no writer yet".
    let mut reg_writer = [0u16; 256];
    let mut pred_writer = [0u16; 256];
    let mut depth = 0u32;
    for m in mops.iter_mut() {
        m.block = block;
        let mut lvl = 0u16;
        for i in 0..m.n_src as usize {
            lvl = lvl.max(reg_writer[m.srcs[i] as usize]);
        }
        for r in u16::from(m.dest_first)..u16::from(m.dest_first) + u16::from(m.dest_count) {
            lvl = lvl.max(reg_writer[r as usize]);
        }
        if m.src_pred != NO_PRED {
            lvl = lvl.max(pred_writer[m.src_pred as usize]);
        }
        if m.dest_pred != NO_PRED {
            lvl = lvl.max(pred_writer[m.dest_pred as usize]);
        }
        m.level = u8::try_from(lvl).unwrap_or(u8::MAX);
        for r in u16::from(m.dest_first)..u16::from(m.dest_first) + u16::from(m.dest_count) {
            reg_writer[r as usize] = lvl + 1;
        }
        if m.dest_pred != NO_PRED {
            pred_writer[m.dest_pred as usize] = lvl + 1;
        }
        depth = depth.max(u32::from(lvl) + 1);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ICmp, MemWidth, MmaKind, Pred, Reg, Src};
    use crate::program::ProgramBuilder;
    use std::collections::BTreeSet;

    /// The decoded constraint set must equal the reference interpreter's:
    /// sources ∪ destination range for registers, exact predicates.
    fn assert_constraints_match(op: &Op, m: &MicroOp) {
        let mut scratch = Vec::new();
        exec::src_regs(op, &mut scratch);
        let mut reference: BTreeSet<u8> = scratch.iter().copied().collect();
        if let Some((first, count)) = exec::dest_regs(op) {
            for r in first..first + count {
                reference.insert(r);
            }
        }
        let mut decoded: BTreeSet<u8> = (0..m.n_src as usize).map(|i| m.srcs[i]).collect();
        for r in m.dest_first..m.dest_first + m.dest_count {
            decoded.insert(r);
        }
        assert_eq!(decoded, reference, "register constraint set for {op:?}");
        exec::src_preds(op, &mut scratch);
        assert_eq!(
            scratch.first().copied(),
            (m.src_pred != NO_PRED).then_some(m.src_pred),
            "source predicate for {op:?}"
        );
        assert_eq!(
            exec::dest_pred(op),
            (m.dest_pred != NO_PRED).then_some(m.dest_pred),
            "dest predicate for {op:?}"
        );
        assert_eq!(m.pipe, pipe_code(op.pipe()), "pipe for {op:?}");
        assert_eq!(u64::from(m.arith), op.arith_ops(), "arith for {op:?}");
    }

    /// One op of every interesting shape: plain ALU, 3-source, predicate
    /// producers/consumers, memory, MMA (multi-reg dest subsuming reads),
    /// control.
    fn op_zoo() -> Vec<Op> {
        vec![
            Op::IAdd {
                d: Reg(0),
                a: Reg(0).into(),
                b: Reg(1).into(),
            },
            Op::IMad {
                d: Reg(3),
                a: Reg(4).into(),
                b: Reg(5).into(),
                c: Reg(6).into(),
            },
            Op::FFma {
                d: Reg(2),
                a: Reg(2).into(),
                b: Src::imm_f32(1.5),
                c: Reg(7).into(),
            },
            Op::ISetP {
                p: Pred(1),
                a: Reg(3).into(),
                b: Src::Imm(9),
                cmp: ICmp::Lt,
            },
            Op::Sel {
                d: Reg(8),
                p: Pred(1),
                a: Reg(0).into(),
                b: Src::Imm(0),
            },
            Op::Bra {
                target: 0,
                pred: Some(Pred(0)),
                sense: true,
            },
            Op::Ldg {
                d: Reg(9),
                addr: Reg(1),
                off: 4,
                w: MemWidth::B32,
                guard: Some(Pred(2)),
                stream: false,
            },
            Op::LdgV4 {
                d: Reg(10),
                addr: Reg(2),
                off: 0,
                stream: true,
            },
            Op::Stg {
                addr: Reg(1),
                off: 0,
                v: Reg(3).into(),
                w: MemWidth::B8U,
                guard: None,
                stream: true,
            },
            Op::Lds {
                d: Reg(4),
                addr: Reg(5),
                off: 8,
                w: MemWidth::B32,
            },
            Op::Sts {
                addr: Reg(5),
                off: 0,
                v: Reg(4).into(),
                w: MemWidth::B32,
            },
            Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: Reg(16),
                a_addr: Reg(1),
                b_addr: Reg(2),
            },
            Op::Shfl {
                d: Reg(11),
                a: Reg(11),
                xor_mask: 16,
            },
            Op::Rcp {
                d: Reg(12),
                a: Reg(13).into(),
            },
            Op::Ldc { d: Reg(14), idx: 0 },
            Op::Bar,
            Op::Nop,
            Op::Exit,
        ]
    }

    #[test]
    fn micro_op_metadata_matches_reference_helpers() {
        let ops = op_zoo();
        let dec = DecodedProgram::decode(&ops);
        assert_eq!(dec.mops.len(), ops.len());
        for (op, m) in ops.iter().zip(&dec.mops) {
            assert_constraints_match(op, m);
        }
    }

    #[test]
    fn mma_sources_stay_within_three_slots() {
        let ops = vec![Op::Mma {
            kind: MmaKind::I8_16x16x16,
            acc: Reg(16),
            a_addr: Reg(1),
            b_addr: Reg(2),
        }];
        let dec = DecodedProgram::decode(&ops);
        let m = &dec.mops[0];
        assert_eq!(m.n_src, 2, "a_addr + b_addr; acc reads subsumed by dest");
        assert_eq!((m.dest_first, m.dest_count), (16, 8));
    }

    #[test]
    fn blocks_split_at_labels_branches_and_barriers() {
        let mut p = ProgramBuilder::new("t");
        let i = p.alloc();
        let pr = p.alloc_pred();
        p.mov(i, Src::Imm(0)); // block 0 start
        let top = p.label_here("top"); // label => new leader
        p.iadd(i, i.into(), Src::Imm(1));
        p.isetp(pr, i.into(), Src::Imm(10), ICmp::Lt);
        p.bra_if(top, pr, true); // branch => block ends
        p.bar(); // own block, Barrier end
        p.exit();
        let prog = p.build();
        let dec = DecodedProgram::decode(&prog.ops);
        let kinds: Vec<BlockEnd> = dec.blocks.iter().map(|b| b.end_kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockEnd::FallThrough, // mov | label boundary
                BlockEnd::Branch,      // iadd, isetp, bra
                BlockEnd::Barrier,     // bar
                BlockEnd::Exit,        // exit
            ]
        );
        // Blocks tile the program exactly.
        let mut at = 0u32;
        for b in &dec.blocks {
            assert_eq!(b.start, at);
            assert!(b.end > b.start);
            at = b.end;
        }
        assert_eq!(at as usize, prog.ops.len());
        for (i, m) in dec.mops.iter().enumerate() {
            let b = &dec.blocks[m.block as usize];
            assert!((b.start as usize..b.end as usize).contains(&i));
        }
    }

    #[test]
    fn dependency_levels_follow_raw_chains() {
        // r0 = imm; r1 = r0 + 1; r2 = r1 * r0; r3 = imm (independent).
        let r = |n| Reg(n);
        let ops = vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            },
            Op::IAdd {
                d: r(1),
                a: r(0).into(),
                b: Src::Imm(1),
            },
            Op::IMul {
                d: r(2),
                a: r(1).into(),
                b: r(0).into(),
            },
            Op::Mov {
                d: r(3),
                s: Src::Imm(7),
            },
            Op::Exit,
        ];
        let dec = DecodedProgram::decode(&ops);
        let levels: Vec<u8> = dec.mops.iter().map(|m| m.level).collect();
        assert_eq!(levels, vec![0, 1, 2, 0, 0]);
        assert_eq!(dec.blocks[0].depth, 3);
    }

    #[test]
    fn waw_and_predicate_dependencies_count() {
        let ops = vec![
            Op::ISetP {
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(2),
                cmp: ICmp::Lt,
            },
            // Reads pred 0 -> level 1.
            Op::Sel {
                d: Reg(0),
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(0),
            },
            // WAW on r0 -> level 2.
            Op::Mov {
                d: Reg(0),
                s: Src::Imm(3),
            },
            Op::Exit,
        ];
        let dec = DecodedProgram::decode(&ops);
        let levels: Vec<u8> = dec.mops.iter().map(|m| m.level).collect();
        assert_eq!(levels, vec![0, 1, 2, 0]);
    }
}
