//! Decoded micro-op cache and basic-block structure.
//!
//! Every static [`Op`] of a [`crate::program::Program`] is decoded exactly
//! once into a flat, branch-light [`MicroOp`]: register indices, the pipe
//! class, predicate operands and the arithmetic-op weight are pre-resolved
//! so the per-cycle issue path in [`crate::sm`] never re-matches on the
//! `Op` enum for a warp that cannot issue anyway. The stream is also split
//! into straight-line [`BasicBlock`]s (boundaries at branch targets,
//! branches, barriers and exits) with per-instruction dependency levels —
//! the VLIW-style grouping that the planned static scheduler will consume
//! (see DESIGN.md §11).
//!
//! Invariant the whole module hangs on: the register/predicate constraint
//! *set* of a `MicroOp` (sources ∪ destination range ∪ predicates) equals
//! the set the reference interpreter derives from [`crate::exec::src_regs`]
//! and friends — the decode below calls those very helpers, so the two
//! interpreters cannot drift. Sources that fall inside the destination
//! range are dropped (the WAW check already covers them), which is what
//! bounds `srcs` at 3 entries even for `Mma` (its accumulator reads are
//! subsumed by the accumulator destination range).

use crate::exec;
use crate::isa::{MemWidth, Op, PipeClass, SReg, Src};

/// Sentinel for "no predicate operand" in [`MicroOp`].
pub const NO_PRED: u8 = u8::MAX;

/// Decode-time coalescing class of a memory instruction's 32-lane address
/// vector, from a lane-affine dataflow analysis over the program
/// (registers start zeroed, `%tid`/`%laneid` have lane stride 1, immediates
/// and `Ldc` arguments are warp-uniform, and strides propagate through
/// add/sub/mul-by-constant/shift-by-constant chains, meeting across branch
/// joins and loop back-edges).
///
/// The class is a *hint*: the executor re-verifies the actual addresses
/// before taking a bulk path, so a wrong class can cost a probe but never
/// change an architectural value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrClass {
    /// Not a memory instruction.
    NonMem,
    /// Analysis could not prove an affine lane layout.
    Unknown,
    /// All lanes address the same location (lane stride 0).
    Uniform,
    /// Byte-contiguous: lane stride 1 on a byte-wide access.
    Stride1,
    /// Word-contiguous: lane stride 4 on a 32-bit access.
    Stride4,
}

/// Pipe encoding used by [`MicroOp::pipe`]: indices 0–4 match the SM's
/// `pipe_free` array, [`CTRL_PIPE`] marks control instructions.
pub const CTRL_PIPE: u8 = 5;

/// One pre-decoded instruction: everything the issue path needs, flat.
#[derive(Debug, Clone, Copy)]
pub struct MicroOp {
    /// Pipe index (0 int, 1 fp, 2 tensor, 3 sfu, 4 lsu, [`CTRL_PIPE`]).
    pub pipe: u8,
    /// Number of live entries in [`MicroOp::srcs`].
    pub n_src: u8,
    /// Source registers outside the destination range (scoreboard reads).
    pub srcs: [u8; 3],
    /// First destination register (valid when `dest_count > 0`).
    pub dest_first: u8,
    /// Destination register count (0 = no register destination).
    pub dest_count: u8,
    /// Source predicate, or [`NO_PRED`].
    pub src_pred: u8,
    /// Destination predicate, or [`NO_PRED`].
    pub dest_pred: u8,
    /// Arithmetic operations charged on issue ([`Op::arith_ops`]).
    pub arith: u32,
    /// Index of the owning [`BasicBlock`].
    pub block: u32,
    /// Dependency level within the block: 0 for instructions with no
    /// register/predicate producer earlier in the same block, else one
    /// more than the deepest such producer.
    pub level: u8,
    /// Decode-time coalescing class of the address vector (memory ops
    /// only; [`AddrClass::NonMem`] otherwise).
    pub addr_class: AddrClass,
}

/// Why a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEnd {
    /// The next instruction is a branch target (a label): control merges.
    FallThrough,
    /// The block ends in a (conditional) branch.
    Branch,
    /// The block ends at a barrier: the warp parks.
    Barrier,
    /// The block ends in a warp exit.
    Exit,
}

/// A maximal straight-line run of micro-ops.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// First instruction index (inclusive).
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Dependency depth: `1 + max(level)` over the block's micro-ops —
    /// the minimum issue-slot count a static scheduler needs for it.
    pub depth: u32,
    /// Terminator kind.
    pub end_kind: BlockEnd,
}

/// The decoded form of a program, built once per [`crate::program::Program`].
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// One micro-op per [`Op`], same indexing as `Program::ops`.
    pub mops: Vec<MicroOp>,
    /// Straight-line blocks covering `mops` exactly, in program order.
    pub blocks: Vec<BasicBlock>,
}

/// Maps a [`PipeClass`] to the [`MicroOp::pipe`] encoding.
#[inline]
pub fn pipe_code(p: PipeClass) -> u8 {
    match p {
        PipeClass::Int => 0,
        PipeClass::Fp => 1,
        PipeClass::Tensor => 2,
        PipeClass::Sfu => 3,
        PipeClass::Lsu => 4,
        PipeClass::Ctrl => CTRL_PIPE,
    }
}

/// Inverse of [`pipe_code`] for pipe indices 0–4; anything else is Ctrl.
#[inline]
pub fn pipe_class(code: u8) -> PipeClass {
    match code {
        0 => PipeClass::Int,
        1 => PipeClass::Fp,
        2 => PipeClass::Tensor,
        3 => PipeClass::Sfu,
        4 => PipeClass::Lsu,
        _ => PipeClass::Ctrl,
    }
}

impl DecodedProgram {
    /// Decodes `ops` (a finished program: branch targets resolved).
    pub fn decode(ops: &[Op]) -> Self {
        let mut mops: Vec<MicroOp> = Vec::with_capacity(ops.len());
        let mut scratch: Vec<u8> = Vec::with_capacity(16);
        for op in ops {
            let (dest_first, dest_count) = exec::dest_regs(op).unwrap_or((0, 0));
            exec::src_regs(op, &mut scratch);
            let mut srcs = [0u8; 3];
            let mut n_src = 0u8;
            for &r in &scratch {
                // Registers in the destination range are already gated by
                // the WAW check on `(dest_first, dest_count)`.
                let in_dest = dest_count > 0
                    && r >= dest_first
                    && u16::from(r) < u16::from(dest_first) + u16::from(dest_count);
                if in_dest {
                    continue;
                }
                assert!(
                    (n_src as usize) < srcs.len(),
                    "op with more than 3 independent source registers"
                );
                srcs[n_src as usize] = r;
                n_src += 1;
            }
            exec::src_preds(op, &mut scratch);
            assert!(scratch.len() <= 1, "op with more than one source predicate");
            let src_pred = scratch.first().copied().unwrap_or(NO_PRED);
            let dest_pred = exec::dest_pred(op).unwrap_or(NO_PRED);
            mops.push(MicroOp {
                pipe: pipe_code(op.pipe()),
                n_src,
                srcs,
                dest_first,
                dest_count,
                src_pred,
                dest_pred,
                arith: u32::try_from(op.arith_ops()).unwrap_or(u32::MAX),
                block: 0,
                level: 0,
                addr_class: match op {
                    Op::Ldg { .. }
                    | Op::LdgV4 { .. }
                    | Op::Stg { .. }
                    | Op::Lds { .. }
                    | Op::Sts { .. } => AddrClass::Unknown,
                    _ => AddrClass::NonMem,
                },
            });
        }
        let blocks = split_blocks(ops, &mut mops);
        classify_addrs(ops, &blocks, &mut mops);
        DecodedProgram { mops, blocks }
    }
}

// ---------------------------------------------------------------------------
// Lane-affine address classification (fills `MicroOp::addr_class`)
// ---------------------------------------------------------------------------

/// Abstract per-register lane layout: what a register holds as a function
/// of the lane index, for one warp, at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// No affine description (lane-dependent in an unknown way).
    Top,
    /// `base + stride * lane` with a warp-uniform but unknown base.
    Affine(i64),
    /// Known warp-uniform constant (stride 0 with a known base), tracked
    /// so multiplications and shifts by program constants scale strides.
    Const(i64),
}

impl AbsVal {
    /// Lane stride, when the layout is affine at all.
    fn stride(self) -> Option<i64> {
        match self {
            AbsVal::Top => None,
            AbsVal::Affine(s) => Some(s),
            AbsVal::Const(_) => Some(0),
        }
    }

    /// Warp-uniform (stride 0)?
    fn uniform(self) -> bool {
        self.stride() == Some(0)
    }
}

/// Lattice meet at control-flow joins. Only ever moves down (equal ->
/// same-stride affine -> `Top`), which is what bounds the fixpoint.
fn meet(a: AbsVal, b: AbsVal) -> AbsVal {
    if a == b {
        return a;
    }
    match (a.stride(), b.stride()) {
        (Some(x), Some(y)) if x == y => AbsVal::Affine(x),
        _ => AbsVal::Top,
    }
}

fn eval(s: Src, st: &[AbsVal]) -> AbsVal {
    match s {
        Src::R(r) => st[r.0 as usize],
        Src::Imm(v) => AbsVal::Const(i64::from(v)),
    }
}

fn add_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_add(y)),
        _ => match (a.stride(), b.stride()) {
            (Some(x), Some(y)) => AbsVal::Affine(x.wrapping_add(y)),
            _ => AbsVal::Top,
        },
    }
}

fn sub_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => AbsVal::Const(x.wrapping_sub(y)),
        _ => match (a.stride(), b.stride()) {
            (Some(x), Some(y)) => AbsVal::Affine(x.wrapping_sub(y)),
            _ => AbsVal::Top,
        },
    }
}

/// Multiplication scales a stride only when the other factor is a known
/// constant; `checked_mul` overflow degrades to `Top` (the runtime probe
/// makes any imprecision here harmless).
fn mul_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    let scaled = |s: i64, c: i64| match s.checked_mul(c) {
        Some(x) => AbsVal::Affine(x),
        None => AbsVal::Top,
    };
    match (a, b) {
        (AbsVal::Const(x), AbsVal::Const(y)) => match x.checked_mul(y) {
            Some(v) => AbsVal::Const(v),
            None => AbsVal::Top,
        },
        (AbsVal::Const(c), v) | (v, AbsVal::Const(c)) => match v.stride() {
            Some(s) => scaled(s, c),
            None => AbsVal::Top,
        },
        _ => AbsVal::Top,
    }
}

/// Left shift by a known in-range constant is a stride scale by `1 << k`.
fn shl_vals(a: AbsVal, b: AbsVal) -> AbsVal {
    let AbsVal::Const(k) = b else {
        return AbsVal::Top;
    };
    if !(0..32).contains(&k) {
        return AbsVal::Top;
    }
    mul_vals(a, AbsVal::Const(1i64 << k))
}

/// Abstract effect of one op on the register state.
fn transfer(op: &Op, st: &mut [AbsVal]) {
    let u2 = |a: AbsVal, b: AbsVal| {
        if a.uniform() && b.uniform() {
            AbsVal::Affine(0)
        } else {
            AbsVal::Top
        }
    };
    match op {
        Op::IAdd { d, a, b } => st[d.0 as usize] = add_vals(eval(*a, st), eval(*b, st)),
        Op::ISub { d, a, b } => st[d.0 as usize] = sub_vals(eval(*a, st), eval(*b, st)),
        Op::IMul { d, a, b } => st[d.0 as usize] = mul_vals(eval(*a, st), eval(*b, st)),
        Op::IMad { d, a, b, c } => {
            st[d.0 as usize] = add_vals(mul_vals(eval(*a, st), eval(*b, st)), eval(*c, st));
        }
        Op::Shl { d, a, b } => st[d.0 as usize] = shl_vals(eval(*a, st), eval(*b, st)),
        Op::Mov { d, s } => st[d.0 as usize] = eval(*s, st),
        Op::Ldc { d, .. } => st[d.0 as usize] = AbsVal::Affine(0),
        Op::ReadSr { d, sr } => {
            st[d.0 as usize] = match sr {
                SReg::Tid | SReg::LaneId => AbsVal::Affine(1),
                SReg::Ntid | SReg::Ctaid | SReg::Nctaid | SReg::WarpId => AbsVal::Affine(0),
            };
        }
        // Lanewise ops that preserve warp-uniformity but not strides.
        Op::And { d, a, b }
        | Op::Or { d, a, b }
        | Op::Xor { d, a, b }
        | Op::Shr { d, a, b }
        | Op::Sar { d, a, b }
        | Op::IMin { d, a, b }
        | Op::IMax { d, a, b }
        | Op::IDivU { d, a, b }
        | Op::IRemU { d, a, b }
        | Op::FAdd { d, a, b }
        | Op::FMul { d, a, b }
        | Op::FMin { d, a, b }
        | Op::FMax { d, a, b } => st[d.0 as usize] = u2(eval(*a, st), eval(*b, st)),
        Op::FFma { d, a, b, c } => {
            st[d.0 as usize] = u2(u2(eval(*a, st), eval(*b, st)), eval(*c, st));
        }
        Op::I2F { d, a }
        | Op::F2I { d, a }
        | Op::F2IFloor { d, a }
        | Op::Rcp { d, a }
        | Op::Sqrt { d, a }
        | Op::Ex2 { d, a }
        | Op::Lg2 { d, a } => {
            st[d.0 as usize] = if eval(*a, st).uniform() {
                AbsVal::Affine(0)
            } else {
                AbsVal::Top
            };
        }
        // Selects mix two planes per-lane, shuffles permute lanes, and
        // loads bring in memory contents: no affine claim survives.
        Op::Sel { d, .. } | Op::Shfl { d, .. } | Op::Ldg { d, .. } | Op::Lds { d, .. } => {
            st[d.0 as usize] = AbsVal::Top;
        }
        Op::LdgV4 { d, .. } => {
            for r in 0..4usize {
                st[d.0 as usize + r] = AbsVal::Top;
            }
        }
        Op::Mma { kind, acc, .. } => {
            for r in 0..kind.acc_regs() as usize {
                st[acc.0 as usize + r] = AbsVal::Top;
            }
        }
        Op::ISetP { .. }
        | Op::FSetP { .. }
        | Op::Stg { .. }
        | Op::Sts { .. }
        | Op::Bra { .. }
        | Op::Bar
        | Op::Exit
        | Op::Nop => {}
    }
}

/// Classifies the address operand of a memory op under state `st`.
fn mem_class(op: &Op, st: &[AbsVal]) -> Option<AddrClass> {
    let cls = |addr: &crate::isa::Reg, w: MemWidth| match (st[addr.0 as usize].stride(), w) {
        (Some(0), _) => AddrClass::Uniform,
        (Some(1), MemWidth::B8S | MemWidth::B8U) => AddrClass::Stride1,
        (Some(4), MemWidth::B32) => AddrClass::Stride4,
        _ => AddrClass::Unknown,
    };
    match op {
        Op::Ldg { addr, w, .. }
        | Op::Stg { addr, w, .. }
        | Op::Lds { addr, w, .. }
        | Op::Sts { addr, w, .. } => Some(cls(addr, *w)),
        Op::LdgV4 { .. } => Some(AddrClass::Unknown),
        _ => None,
    }
}

/// CFG successors of block `b` (instruction-level branch targets resolved
/// to blocks via `MicroOp::block`).
fn successors(ops: &[Op], blocks: &[BasicBlock], mops: &[MicroOp], b: usize, out: &mut Vec<usize>) {
    out.clear();
    let blk = &blocks[b];
    match blk.end_kind {
        BlockEnd::Exit => {}
        BlockEnd::Branch => {
            if let Op::Bra { target, pred, .. } = &ops[blk.end as usize - 1] {
                out.push(mops[*target].block as usize);
                if pred.is_some() && b + 1 < blocks.len() {
                    out.push(b + 1);
                }
            }
        }
        BlockEnd::FallThrough | BlockEnd::Barrier => {
            if b + 1 < blocks.len() {
                out.push(b + 1);
            }
        }
    }
}

/// Meets `s` into `e` elementwise; true when anything moved down.
fn meet_into(e: &mut [AbsVal], s: &[AbsVal]) -> bool {
    let mut changed = false;
    for (ev, &sv) in e.iter_mut().zip(s) {
        let m = meet(*ev, sv);
        if m != *ev {
            *ev = m;
            changed = true;
        }
    }
    changed
}

/// Worklist fixpoint over the CFG. Entry state is all-`Const(0)` because
/// [`crate::warp::Warp::new`] zeroes the register file at launch. Each
/// state element descends a 3-level lattice at most twice, so the loop
/// terminates. Unreached (dead) blocks keep the decode-time `Unknown`.
fn classify_addrs(ops: &[Op], blocks: &[BasicBlock], mops: &mut [MicroOp]) {
    if blocks.is_empty() {
        return;
    }
    let mut entry: Vec<Option<Vec<AbsVal>>> = vec![None; blocks.len()];
    entry[0] = Some(vec![AbsVal::Const(0); 256]);
    let mut work = vec![0usize];
    let mut succs: Vec<usize> = Vec::with_capacity(2);
    while let Some(b) = work.pop() {
        let Some(mut st) = entry[b].clone() else {
            continue;
        };
        let blk = &blocks[b];
        for op in &ops[blk.start as usize..blk.end as usize] {
            transfer(op, &mut st);
        }
        successors(ops, blocks, mops, b, &mut succs);
        for &s in &succs {
            let changed = match &mut entry[s] {
                e @ None => {
                    *e = Some(st.clone());
                    true
                }
                Some(e) => meet_into(e, &st),
            };
            if changed {
                work.push(s);
            }
        }
    }
    for (b, blk) in blocks.iter().enumerate() {
        let Some(mut st) = entry[b].clone() else {
            continue;
        };
        for i in blk.start as usize..blk.end as usize {
            if let Some(c) = mem_class(&ops[i], &st) {
                mops[i].addr_class = c;
            }
            transfer(&ops[i], &mut st);
        }
    }
}

/// Splits the stream into basic blocks and fills per-block metadata
/// (`MicroOp::block`, `MicroOp::level`, `BasicBlock::depth`).
fn split_blocks(ops: &[Op], mops: &mut [MicroOp]) -> Vec<BasicBlock> {
    // Leaders: instruction 0, every branch target, and the instruction
    // after each terminator (branch, barrier, exit).
    let mut leader = vec![false; ops.len()];
    if !ops.is_empty() {
        leader[0] = true;
    }
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Bra { target, .. } => {
                leader[*target] = true;
                if i + 1 < ops.len() {
                    leader[i + 1] = true;
                }
            }
            Op::Bar | Op::Exit if i + 1 < ops.len() => {
                leader[i + 1] = true;
            }
            _ => {}
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < ops.len() {
        let mut end = start + 1;
        while end < ops.len() && !leader[end] {
            end += 1;
        }
        let end_kind = match &ops[end - 1] {
            Op::Bra { .. } => BlockEnd::Branch,
            Op::Bar => BlockEnd::Barrier,
            Op::Exit => BlockEnd::Exit,
            _ => BlockEnd::FallThrough,
        };
        let bidx = blocks.len() as u32;
        let depth = assign_levels(&mut mops[start..end], bidx);
        blocks.push(BasicBlock {
            start: start as u32,
            end: end as u32,
            depth,
            end_kind,
        });
        start = end;
    }
    blocks
}

/// Assigns dependency levels within one straight-line block (the VLIW
/// grouping idiom): an instruction's level is one more than the deepest
/// earlier in-block writer of any register or predicate it touches (reads,
/// WAW destinations, predicates). Returns the block depth.
fn assign_levels(mops: &mut [MicroOp], block: u32) -> u32 {
    // Level of the last in-block writer, +1 so 0 means "no writer yet".
    let mut reg_writer = [0u16; 256];
    let mut pred_writer = [0u16; 256];
    let mut depth = 0u32;
    for m in mops.iter_mut() {
        m.block = block;
        let mut lvl = 0u16;
        for i in 0..m.n_src as usize {
            lvl = lvl.max(reg_writer[m.srcs[i] as usize]);
        }
        for r in u16::from(m.dest_first)..u16::from(m.dest_first) + u16::from(m.dest_count) {
            lvl = lvl.max(reg_writer[r as usize]);
        }
        if m.src_pred != NO_PRED {
            lvl = lvl.max(pred_writer[m.src_pred as usize]);
        }
        if m.dest_pred != NO_PRED {
            lvl = lvl.max(pred_writer[m.dest_pred as usize]);
        }
        m.level = u8::try_from(lvl).unwrap_or(u8::MAX);
        for r in u16::from(m.dest_first)..u16::from(m.dest_first) + u16::from(m.dest_count) {
            reg_writer[r as usize] = lvl + 1;
        }
        if m.dest_pred != NO_PRED {
            pred_writer[m.dest_pred as usize] = lvl + 1;
        }
        depth = depth.max(u32::from(lvl) + 1);
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ICmp, MemWidth, MmaKind, Pred, Reg, Src};
    use crate::program::ProgramBuilder;
    use std::collections::BTreeSet;

    /// The decoded constraint set must equal the reference interpreter's:
    /// sources ∪ destination range for registers, exact predicates.
    fn assert_constraints_match(op: &Op, m: &MicroOp) {
        let mut scratch = Vec::new();
        exec::src_regs(op, &mut scratch);
        let mut reference: BTreeSet<u8> = scratch.iter().copied().collect();
        if let Some((first, count)) = exec::dest_regs(op) {
            for r in first..first + count {
                reference.insert(r);
            }
        }
        let mut decoded: BTreeSet<u8> = (0..m.n_src as usize).map(|i| m.srcs[i]).collect();
        for r in m.dest_first..m.dest_first + m.dest_count {
            decoded.insert(r);
        }
        assert_eq!(decoded, reference, "register constraint set for {op:?}");
        exec::src_preds(op, &mut scratch);
        assert_eq!(
            scratch.first().copied(),
            (m.src_pred != NO_PRED).then_some(m.src_pred),
            "source predicate for {op:?}"
        );
        assert_eq!(
            exec::dest_pred(op),
            (m.dest_pred != NO_PRED).then_some(m.dest_pred),
            "dest predicate for {op:?}"
        );
        assert_eq!(m.pipe, pipe_code(op.pipe()), "pipe for {op:?}");
        assert_eq!(u64::from(m.arith), op.arith_ops(), "arith for {op:?}");
    }

    /// One op of every interesting shape: plain ALU, 3-source, predicate
    /// producers/consumers, memory, MMA (multi-reg dest subsuming reads),
    /// control.
    fn op_zoo() -> Vec<Op> {
        vec![
            Op::IAdd {
                d: Reg(0),
                a: Reg(0).into(),
                b: Reg(1).into(),
            },
            Op::IMad {
                d: Reg(3),
                a: Reg(4).into(),
                b: Reg(5).into(),
                c: Reg(6).into(),
            },
            Op::FFma {
                d: Reg(2),
                a: Reg(2).into(),
                b: Src::imm_f32(1.5),
                c: Reg(7).into(),
            },
            Op::ISetP {
                p: Pred(1),
                a: Reg(3).into(),
                b: Src::Imm(9),
                cmp: ICmp::Lt,
            },
            Op::Sel {
                d: Reg(8),
                p: Pred(1),
                a: Reg(0).into(),
                b: Src::Imm(0),
            },
            Op::Bra {
                target: 0,
                pred: Some(Pred(0)),
                sense: true,
            },
            Op::Ldg {
                d: Reg(9),
                addr: Reg(1),
                off: 4,
                w: MemWidth::B32,
                guard: Some(Pred(2)),
                stream: false,
            },
            Op::LdgV4 {
                d: Reg(10),
                addr: Reg(2),
                off: 0,
                stream: true,
            },
            Op::Stg {
                addr: Reg(1),
                off: 0,
                v: Reg(3).into(),
                w: MemWidth::B8U,
                guard: None,
                stream: true,
            },
            Op::Lds {
                d: Reg(4),
                addr: Reg(5),
                off: 8,
                w: MemWidth::B32,
            },
            Op::Sts {
                addr: Reg(5),
                off: 0,
                v: Reg(4).into(),
                w: MemWidth::B32,
            },
            Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: Reg(16),
                a_addr: Reg(1),
                b_addr: Reg(2),
            },
            Op::Shfl {
                d: Reg(11),
                a: Reg(11),
                xor_mask: 16,
            },
            Op::Rcp {
                d: Reg(12),
                a: Reg(13).into(),
            },
            Op::Ldc { d: Reg(14), idx: 0 },
            Op::Bar,
            Op::Nop,
            Op::Exit,
        ]
    }

    #[test]
    fn micro_op_metadata_matches_reference_helpers() {
        let ops = op_zoo();
        let dec = DecodedProgram::decode(&ops);
        assert_eq!(dec.mops.len(), ops.len());
        for (op, m) in ops.iter().zip(&dec.mops) {
            assert_constraints_match(op, m);
        }
    }

    #[test]
    fn mma_sources_stay_within_three_slots() {
        let ops = vec![Op::Mma {
            kind: MmaKind::I8_16x16x16,
            acc: Reg(16),
            a_addr: Reg(1),
            b_addr: Reg(2),
        }];
        let dec = DecodedProgram::decode(&ops);
        let m = &dec.mops[0];
        assert_eq!(m.n_src, 2, "a_addr + b_addr; acc reads subsumed by dest");
        assert_eq!((m.dest_first, m.dest_count), (16, 8));
    }

    #[test]
    fn blocks_split_at_labels_branches_and_barriers() {
        let mut p = ProgramBuilder::new("t");
        let i = p.alloc();
        let pr = p.alloc_pred();
        p.mov(i, Src::Imm(0)); // block 0 start
        let top = p.label_here("top"); // label => new leader
        p.iadd(i, i.into(), Src::Imm(1));
        p.isetp(pr, i.into(), Src::Imm(10), ICmp::Lt);
        p.bra_if(top, pr, true); // branch => block ends
        p.bar(); // own block, Barrier end
        p.exit();
        let prog = p.build();
        let dec = DecodedProgram::decode(&prog.ops);
        let kinds: Vec<BlockEnd> = dec.blocks.iter().map(|b| b.end_kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockEnd::FallThrough, // mov | label boundary
                BlockEnd::Branch,      // iadd, isetp, bra
                BlockEnd::Barrier,     // bar
                BlockEnd::Exit,        // exit
            ]
        );
        // Blocks tile the program exactly.
        let mut at = 0u32;
        for b in &dec.blocks {
            assert_eq!(b.start, at);
            assert!(b.end > b.start);
            at = b.end;
        }
        assert_eq!(at as usize, prog.ops.len());
        for (i, m) in dec.mops.iter().enumerate() {
            let b = &dec.blocks[m.block as usize];
            assert!((b.start as usize..b.end as usize).contains(&i));
        }
    }

    #[test]
    fn dependency_levels_follow_raw_chains() {
        // r0 = imm; r1 = r0 + 1; r2 = r1 * r0; r3 = imm (independent).
        let r = |n| Reg(n);
        let ops = vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            },
            Op::IAdd {
                d: r(1),
                a: r(0).into(),
                b: Src::Imm(1),
            },
            Op::IMul {
                d: r(2),
                a: r(1).into(),
                b: r(0).into(),
            },
            Op::Mov {
                d: r(3),
                s: Src::Imm(7),
            },
            Op::Exit,
        ];
        let dec = DecodedProgram::decode(&ops);
        let levels: Vec<u8> = dec.mops.iter().map(|m| m.level).collect();
        assert_eq!(levels, vec![0, 1, 2, 0, 0]);
        assert_eq!(dec.blocks[0].depth, 3);
    }

    /// Helper: the address classes of the memory ops of a program, in
    /// program order.
    fn mem_classes(ops: &[Op]) -> Vec<AddrClass> {
        DecodedProgram::decode(ops)
            .mops
            .iter()
            .filter(|m| m.addr_class != AddrClass::NonMem)
            .map(|m| m.addr_class)
            .collect()
    }

    #[test]
    fn addr_class_tracks_tid_derived_strides() {
        use crate::isa::SReg;
        let mut p = ProgramBuilder::new("t");
        let tid = p.alloc();
        let base = p.alloc();
        let a4 = p.alloc();
        let v = p.alloc();
        p.sreg(tid, SReg::Tid);
        p.ldc(base, 0);
        // a4 = base + tid*4: the canonical coalesced word address.
        p.imad(a4, tid.into(), Src::Imm(4), base.into());
        p.ldg(v, a4, 0, MemWidth::B32); // Stride4
        p.stg(a4, 0, v.into(), MemWidth::B32); // Stride4
                                               // Byte-contiguous: base + tid.
        let a1 = p.alloc();
        p.iadd(a1, base.into(), tid.into());
        p.ldg(v, a1, 0, MemWidth::B8U); // Stride1
                                        // Width mismatch: stride 1 on a 32-bit access is not contiguous.
        p.ldg(v, a1, 0, MemWidth::B32); // Unknown
                                        // Warp-uniform address.
        p.ldg(v, base, 8, MemWidth::B32); // Uniform
                                          // Loaded values carry no affine claim.
        p.stg(v, 0, Src::Imm(1), MemWidth::B32); // Unknown
        p.exit();
        let prog = p.build();
        assert_eq!(
            mem_classes(&prog.ops),
            vec![
                AddrClass::Stride4,
                AddrClass::Stride4,
                AddrClass::Stride1,
                AddrClass::Unknown,
                AddrClass::Uniform,
                AddrClass::Unknown,
            ]
        );
    }

    #[test]
    fn addr_class_swizzles_degrade_but_shifts_scale() {
        use crate::isa::SReg;
        let mut p = ProgramBuilder::new("t");
        let tid = p.alloc();
        let a = p.alloc();
        let v = p.alloc();
        p.sreg(tid, SReg::Tid);
        // Shl by a constant scales the stride: tid << 2 => stride 4.
        p.shl(a, tid.into(), Src::Imm(2));
        p.lds(v, a, 0, MemWidth::B32); // Stride4
                                       // XOR-swizzled banks: no affine layout.
        let sw = p.alloc();
        p.push(Op::Xor {
            d: sw,
            a: a.into(),
            b: Src::Imm(0x10),
        });
        p.sts(sw, 0, v.into(), MemWidth::B32); // Unknown
        p.exit();
        let prog = p.build();
        assert_eq!(
            mem_classes(&prog.ops),
            vec![AddrClass::Stride4, AddrClass::Unknown]
        );
    }

    #[test]
    fn addr_class_survives_loop_back_edges() {
        use crate::isa::SReg;
        // A pointer advanced by a uniform step each iteration keeps its
        // lane stride across the loop join; one advanced by `tid` does
        // not (its stride differs per trip and must meet to Unknown).
        let mut p = ProgramBuilder::new("t");
        let tid = p.alloc();
        let ptr = p.alloc();
        let wob = p.alloc();
        let i = p.alloc();
        let v = p.alloc();
        let pr = p.alloc_pred();
        p.sreg(tid, SReg::Tid);
        p.ldc(ptr, 0);
        p.imad(ptr, tid.into(), Src::Imm(4), ptr.into());
        p.mov(wob, tid.into());
        p.mov(i, Src::Imm(0));
        let top = p.label_here("top");
        p.ldg(v, ptr, 0, MemWidth::B32); // stays Stride4
        p.stg(wob, 0, v.into(), MemWidth::B8U); // Stride1 first trip, then diverges
        p.iadd(ptr, ptr.into(), Src::Imm(128)); // uniform step: stride kept
        p.iadd(wob, wob.into(), tid.into()); // strided step: degrades
        p.iadd(i, i.into(), Src::Imm(1));
        p.isetp(pr, i.into(), Src::Imm(4), ICmp::Lt);
        p.bra_if(top, pr, true);
        p.exit();
        let prog = p.build();
        assert_eq!(
            mem_classes(&prog.ops),
            vec![AddrClass::Stride4, AddrClass::Unknown]
        );
    }

    #[test]
    fn waw_and_predicate_dependencies_count() {
        let ops = vec![
            Op::ISetP {
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(2),
                cmp: ICmp::Lt,
            },
            // Reads pred 0 -> level 1.
            Op::Sel {
                d: Reg(0),
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(0),
            },
            // WAW on r0 -> level 2.
            Op::Mov {
                d: Reg(0),
                s: Src::Imm(3),
            },
            Op::Exit,
        ];
        let dec = DecodedProgram::decode(&ops);
        let levels: Vec<u8> = dec.mops.iter().map(|m| m.level).collect();
        assert_eq!(levels, vec![0, 1, 2, 0]);
    }
}
