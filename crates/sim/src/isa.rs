//! The simulator's SASS-like instruction set.
//!
//! Registers are per-thread 32-bit values (`f32` operands are bit-stored).
//! Predicate registers are per-warp 32-bit lane masks. Branches must be
//! warp-uniform; divergent control flow is expressed with predication
//! (`Sel`, guarded loads/stores), which matches how the VitBit kernels are
//! written.

/// A per-thread 32-bit register id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// A per-warp predicate register id (32-bit lane mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pred(pub u8);

/// An instruction source: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Register operand.
    R(Reg),
    /// 32-bit immediate (bit pattern; signed/float per consuming op).
    Imm(u32),
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::R(r)
    }
}

impl Src {
    /// Immediate from a signed value.
    pub fn imm_i32(v: i32) -> Self {
        Src::Imm(v as u32)
    }

    /// Immediate from a float (bit pattern).
    pub fn imm_f32(v: f32) -> Self {
        Src::Imm(v.to_bits())
    }
}

/// Integer comparison operators for `ISetP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ICmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

/// Float comparison operators for `FSetP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCmp {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Special (read-only) per-thread registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SReg {
    /// Thread index within the block (x only; blocks are 1-D).
    Tid,
    /// Threads per block.
    Ntid,
    /// Block index within the grid.
    Ctaid,
    /// Blocks in the grid.
    Nctaid,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the block.
    WarpId,
}

/// Memory access width for global loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemWidth {
    /// 8-bit, sign-extended on load.
    B8S,
    /// 8-bit, zero-extended on load.
    B8U,
    /// 32-bit.
    B32,
}

impl MemWidth {
    /// Bytes moved per lane.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B8S | MemWidth::B8U => 1,
            MemWidth::B32 => 4,
        }
    }
}

/// Tensor-core MMA flavor. Shapes are warp-level `M x N x K` tiles staged in
/// shared memory (the kernel pays the staging LDS/STS explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmaKind {
    /// INT8 operands, INT32 accumulate, 16x16x16 tile (8192 ops per issue).
    I8_16x16x16,
    /// FP16-class operands (modelled at f32 precision), 16x16x8 tile.
    F16_16x16x8,
}

impl MmaKind {
    /// `(m, n, k)` tile shape.
    pub fn shape(self) -> (usize, usize, usize) {
        match self {
            MmaKind::I8_16x16x16 => (16, 16, 16),
            MmaKind::F16_16x16x8 => (16, 16, 8),
        }
    }

    /// Arithmetic operations (multiply + add) per issued MMA.
    pub fn ops(self) -> u64 {
        let (m, n, k) = self.shape();
        (m * n * k * 2) as u64
    }

    /// Accumulator registers per lane (`m*n / 32`).
    pub fn acc_regs(self) -> u8 {
        let (m, n, _) = self.shape();
        (m * n / 32) as u8
    }
}

/// Execution pipe an instruction issues to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeClass {
    /// INT32 ALU.
    Int,
    /// FP32 ALU.
    Fp,
    /// Tensor core.
    Tensor,
    /// Special function unit.
    Sfu,
    /// Load/store unit (global + shared).
    Lsu,
    /// Control (branches, barriers, exit) — consumes an issue slot only.
    Ctrl,
}

/// One instruction. `d` is the destination; `a`, `b`, `c` are sources.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ---- integer pipe ----
    /// `d = a + b` (wrapping).
    IAdd { d: Reg, a: Src, b: Src },
    /// `d = a - b` (wrapping).
    ISub { d: Reg, a: Src, b: Src },
    /// `d = a * b` (wrapping, low 32 bits).
    IMul { d: Reg, a: Src, b: Src },
    /// `d = a * b + c` (wrapping) — the packed-SWAR workhorse.
    IMad { d: Reg, a: Src, b: Src, c: Src },
    /// Bitwise and.
    And { d: Reg, a: Src, b: Src },
    /// Bitwise or.
    Or { d: Reg, a: Src, b: Src },
    /// Bitwise xor.
    Xor { d: Reg, a: Src, b: Src },
    /// Logical shift left.
    Shl { d: Reg, a: Src, b: Src },
    /// Logical shift right.
    Shr { d: Reg, a: Src, b: Src },
    /// Arithmetic shift right.
    Sar { d: Reg, a: Src, b: Src },
    /// Signed minimum.
    IMin { d: Reg, a: Src, b: Src },
    /// Signed maximum.
    IMax { d: Reg, a: Src, b: Src },
    /// Unsigned division (`d = a / b`, 0 when `b == 0`). Real GPUs lower
    /// this to a short IMAD sequence; modelled as one INT-pipe instruction.
    IDivU { d: Reg, a: Src, b: Src },
    /// Unsigned remainder (`d = a % b`, `a` when `b == 0`).
    IRemU { d: Reg, a: Src, b: Src },
    /// Butterfly shuffle: `d[lane] = a[lane ^ xor_mask]` (warp-wide).
    Shfl { d: Reg, a: Reg, xor_mask: u8 },
    /// Set predicate from signed/unsigned integer comparison.
    ISetP { p: Pred, a: Src, b: Src, cmp: ICmp },
    /// Register/immediate move (issues on the INT pipe).
    Mov { d: Reg, s: Src },
    /// Per-lane select: `d = p ? a : b`.
    Sel { d: Reg, p: Pred, a: Src, b: Src },
    /// Load a kernel argument word: `d = args[idx]`.
    Ldc { d: Reg, idx: u16 },
    /// Read a special register.
    ReadSr { d: Reg, sr: SReg },

    // ---- float pipe ----
    /// `d = a + b` (f32).
    FAdd { d: Reg, a: Src, b: Src },
    /// `d = a * b` (f32).
    FMul { d: Reg, a: Src, b: Src },
    /// `d = a * b + c` (fused, f32).
    FFma { d: Reg, a: Src, b: Src, c: Src },
    /// f32 minimum.
    FMin { d: Reg, a: Src, b: Src },
    /// f32 maximum.
    FMax { d: Reg, a: Src, b: Src },
    /// Set predicate from f32 comparison.
    FSetP { p: Pred, a: Src, b: Src, cmp: FCmp },
    /// Signed i32 -> f32 conversion.
    I2F { d: Reg, a: Src },
    /// f32 -> signed i32 conversion (round to nearest even).
    F2I { d: Reg, a: Src },
    /// f32 -> signed i32 conversion rounding toward negative infinity
    /// (`cvt.rmi`): the float twin of an arithmetic shift.
    F2IFloor { d: Reg, a: Src },

    // ---- SFU ----
    /// Reciprocal.
    Rcp { d: Reg, a: Src },
    /// Square root.
    Sqrt { d: Reg, a: Src },
    /// Base-2 exponential.
    Ex2 { d: Reg, a: Src },
    /// Base-2 logarithm.
    Lg2 { d: Reg, a: Src },

    // ---- memory ----
    /// Global load: `d = [addr + off]`, per lane, optionally guarded.
    Ldg {
        /// Destination.
        d: Reg,
        /// Per-lane byte address register.
        addr: Reg,
        /// Constant byte offset.
        off: i32,
        /// Access width.
        w: MemWidth,
        /// Optional guard predicate (lane skips when false).
        guard: Option<Pred>,
        /// Cache-streaming hint (`ld.global.cs`): bypass the L1 and do not
        /// allocate there — for data with no reuse.
        stream: bool,
    },
    /// Vector global load (`LDG.128`): `d..d+3 = [addr + off ..]`, four
    /// little-endian words per lane, 16-byte aligned.
    LdgV4 {
        /// First of four consecutive destination registers.
        d: Reg,
        /// Per-lane byte address register.
        addr: Reg,
        /// Constant byte offset.
        off: i32,
        /// Cache-streaming hint.
        stream: bool,
    },
    /// Global store, per lane, optionally guarded.
    Stg {
        /// Per-lane byte address register.
        addr: Reg,
        /// Constant byte offset.
        off: i32,
        /// Value to store.
        v: Src,
        /// Access width.
        w: MemWidth,
        /// Optional guard predicate.
        guard: Option<Pred>,
        /// Streaming store (`st.global.cs`): write-through, does not
        /// allocate in the caches.
        stream: bool,
    },
    /// Shared-memory load.
    Lds {
        /// Destination.
        d: Reg,
        /// Per-lane byte address register (within block shared memory).
        addr: Reg,
        /// Constant byte offset.
        off: i32,
        /// Access width.
        w: MemWidth,
    },
    /// Shared-memory store.
    Sts {
        /// Per-lane byte address register.
        addr: Reg,
        /// Constant byte offset.
        off: i32,
        /// Value to store.
        v: Src,
        /// Access width.
        w: MemWidth,
    },

    // ---- tensor core ----
    /// Warp-level MMA: reads an `MxK` A-tile and `KxN` B-tile from shared
    /// memory (row-major, byte addresses in lane-0's `a_addr`/`b_addr`
    /// registers) and accumulates into `acc .. acc + acc_regs`.
    Mma {
        /// MMA flavor.
        kind: MmaKind,
        /// First accumulator register (per-lane).
        acc: Reg,
        /// Warp-uniform register holding the A-tile shared-memory address.
        a_addr: Reg,
        /// Warp-uniform register holding the B-tile shared-memory address.
        b_addr: Reg,
    },

    // ---- control ----
    /// Branch to an instruction index when the (warp-uniform) predicate
    /// matches `sense`; unconditional when `pred` is `None`.
    Bra {
        /// Target instruction index (resolved by the builder).
        target: usize,
        /// Optional predicate.
        pred: Option<Pred>,
        /// Branch taken when predicate equals this value.
        sense: bool,
    },
    /// Block-wide barrier.
    Bar,
    /// Terminate the warp.
    Exit,
    /// No-op (issue slot only).
    Nop,
}

impl Op {
    /// The pipe this instruction issues to.
    pub fn pipe(&self) -> PipeClass {
        use Op::*;
        match self {
            IAdd { .. }
            | ISub { .. }
            | IMul { .. }
            | IMad { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Shl { .. }
            | Shr { .. }
            | Sar { .. }
            | IMin { .. }
            | IMax { .. }
            | IDivU { .. }
            | IRemU { .. }
            | Shfl { .. }
            | ISetP { .. }
            | Mov { .. }
            | Sel { .. }
            | Ldc { .. }
            | ReadSr { .. } => PipeClass::Int,
            FAdd { .. }
            | FMul { .. }
            | FFma { .. }
            | FMin { .. }
            | FMax { .. }
            | FSetP { .. }
            | I2F { .. }
            | F2I { .. }
            | F2IFloor { .. } => PipeClass::Fp,
            Rcp { .. } | Sqrt { .. } | Ex2 { .. } | Lg2 { .. } => PipeClass::Sfu,
            Ldg { .. } | LdgV4 { .. } | Stg { .. } | Lds { .. } | Sts { .. } => PipeClass::Lsu,
            Mma { .. } => PipeClass::Tensor,
            Bra { .. } | Bar | Exit | Nop => PipeClass::Ctrl,
        }
    }

    /// Arithmetic operations this instruction retires (for the
    /// arithmetic-density statistic): FMA/IMAD count 2 per lane, other math
    /// 1 per lane, MMA its tile ops, everything else 0.
    pub fn arith_ops(&self) -> u64 {
        use Op::*;
        match self {
            IMad { .. } | FFma { .. } => 64,
            IAdd { .. }
            | ISub { .. }
            | IMul { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Shl { .. }
            | Shr { .. }
            | Sar { .. }
            | IMin { .. }
            | IMax { .. }
            | IDivU { .. }
            | IRemU { .. }
            | FAdd { .. }
            | FMul { .. }
            | FMin { .. }
            | FMax { .. } => 32,
            Mma { kind, .. } => kind.ops(),
            Rcp { .. } | Sqrt { .. } | Ex2 { .. } | Lg2 { .. } => 32,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipes_are_classified() {
        let r = Reg(0);
        assert_eq!(
            Op::IMad {
                d: r,
                a: r.into(),
                b: r.into(),
                c: r.into()
            }
            .pipe(),
            PipeClass::Int
        );
        assert_eq!(
            Op::FFma {
                d: r,
                a: r.into(),
                b: r.into(),
                c: r.into()
            }
            .pipe(),
            PipeClass::Fp
        );
        assert_eq!(Op::Ex2 { d: r, a: r.into() }.pipe(), PipeClass::Sfu);
        assert_eq!(
            Op::Ldg {
                d: r,
                addr: r,
                off: 0,
                w: MemWidth::B32,
                guard: None,
                stream: false
            }
            .pipe(),
            PipeClass::Lsu
        );
        assert_eq!(
            Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: r,
                a_addr: r,
                b_addr: r
            }
            .pipe(),
            PipeClass::Tensor
        );
        assert_eq!(Op::Bar.pipe(), PipeClass::Ctrl);
    }

    #[test]
    fn mma_geometry() {
        let k = MmaKind::I8_16x16x16;
        assert_eq!(k.shape(), (16, 16, 16));
        assert_eq!(k.ops(), 8192);
        assert_eq!(k.acc_regs(), 8);
        assert_eq!(MmaKind::F16_16x16x8.ops(), 4096);
    }

    #[test]
    fn arith_ops_counting() {
        let r = Reg(1);
        assert_eq!(
            Op::IMad {
                d: r,
                a: r.into(),
                b: r.into(),
                c: r.into()
            }
            .arith_ops(),
            64
        );
        assert_eq!(
            Op::IAdd {
                d: r,
                a: r.into(),
                b: r.into()
            }
            .arith_ops(),
            32
        );
        assert_eq!(
            Op::Mov {
                d: r,
                s: Src::Imm(0)
            }
            .arith_ops(),
            0
        );
        assert_eq!(
            Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: r,
                a_addr: r,
                b_addr: r
            }
            .arith_ops(),
            8192
        );
    }

    #[test]
    fn src_constructors() {
        assert_eq!(Src::imm_i32(-1), Src::Imm(u32::MAX));
        assert_eq!(Src::imm_f32(1.0), Src::Imm(1.0f32.to_bits()));
        let s: Src = Reg(3).into();
        assert_eq!(s, Src::R(Reg(3)));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B8S.bytes(), 1);
        assert_eq!(MemWidth::B8U.bytes(), 1);
        assert_eq!(MemWidth::B32.bytes(), 4);
    }
}
