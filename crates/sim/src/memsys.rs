//! The chip-level memory system: per-SM L1s in front of a shared L2 and a
//! bandwidth-regulated DRAM.
//!
//! Timing-only: data always comes from [`crate::mem::GlobalMem`]; this
//! module answers "when is the value ready". DRAM and L2 are modelled as
//! single servers with a deterministic per-line service interval derived
//! from the configured bandwidth, so concurrent misses from many SMs queue
//! against each other — the effect that makes Tensor-core GEMM
//! bandwidth-bound on the Orin while CUDA-core GEMM stays compute-bound,
//! which in turn produces the paper's ~7.5x TC/CUDA gap instead of the
//! 32x peak-throughput ratio.

use crate::cache::Cache;
use crate::config::OrinConfig;

/// Chip-shared memory-system state (L2 + DRAM queue).
#[derive(Debug)]
pub struct MemSystem {
    l2: Cache,
    l2_latency: u32,
    l2_interval: f64,
    l2_next_free: f64,
    dram_latency: u32,
    dram_interval: f64,
    dram_next_free: f64,
    /// Total bytes fetched from DRAM.
    pub dram_bytes: u64,
    /// Total bytes served by L2 (hits).
    pub l2_hit_bytes: u64,
    line_bytes: u32,
}

impl MemSystem {
    /// Builds the memory system from the machine config.
    pub fn new(cfg: &OrinConfig) -> Self {
        Self {
            l2: Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes),
            l2_latency: cfg.l2_latency,
            l2_interval: cfg.l2_line_interval,
            l2_next_free: 0.0,
            dram_latency: cfg.dram_latency,
            dram_interval: cfg.dram_line_interval(),
            dram_next_free: 0.0,
            dram_bytes: 0,
            l2_hit_bytes: 0,
            line_bytes: cfg.line_bytes,
        }
    }

    /// One line request from an SM that missed its L1 at cycle `now`;
    /// returns the cycle the line arrives at the SM.
    pub fn line_request(&mut self, now: u64, addr: u64) -> u64 {
        self.request(now, addr, true).0
    }

    /// Like [`MemSystem::line_request`], but also reports whether the line
    /// was served by DRAM (`true`) or an L2 hit (`false`) — the fault layer
    /// corrupts only DRAM-served fills.
    pub fn line_request_traced(&mut self, now: u64, addr: u64) -> (u64, bool) {
        self.request(now, addr, true)
    }

    /// A cache-global read (`ld.global.cg`): bypasses the L1 (no per-SM
    /// reuse) but allocates in the chip-wide L2, where the operand streams
    /// of GEMM row-block sweeps do get reused.
    pub fn stream_request(&mut self, now: u64, addr: u64) -> u64 {
        self.request(now, addr, true).0
    }

    /// [`MemSystem::stream_request`] with the DRAM-served flag (see
    /// [`MemSystem::line_request_traced`]).
    pub fn stream_request_traced(&mut self, now: u64, addr: u64) -> (u64, bool) {
        self.request(now, addr, true)
    }

    fn request(&mut self, now: u64, addr: u64, allocate: bool) -> (u64, bool) {
        let nowf = now as f64;
        // L2 bandwidth queue: every request passes through the L2 port.
        let l2_start = self.l2_next_free.max(nowf);
        self.l2_next_free = l2_start + self.l2_interval;
        let hit = if allocate {
            self.l2.access(addr)
        } else {
            self.l2.probe(addr)
        };
        if hit {
            self.l2_hit_bytes += u64::from(self.line_bytes);
            return ((l2_start + f64::from(self.l2_latency)).ceil() as u64, false);
        }
        // DRAM queue behind the L2.
        let dram_start = self.dram_next_free.max(l2_start);
        self.dram_next_free = dram_start + self.dram_interval;
        self.dram_bytes += u64::from(self.line_bytes);
        (
            (dram_start + f64::from(self.l2_latency) + f64::from(self.dram_latency)).ceil() as u64,
            true,
        )
    }

    /// A streaming (write-through, non-allocating) store of one line:
    /// consumes DRAM bandwidth without touching cache contents.
    pub fn write_request(&mut self, now: u64) {
        let start = self.dram_next_free.max(now as f64);
        self.dram_next_free = start + self.dram_interval;
        self.dram_bytes += u64::from(self.line_bytes);
    }

    /// Earliest future cycle (strictly after `now`) at which a bandwidth
    /// regulator frees up, or `u64::MAX` if both ports are already free.
    ///
    /// The regulators change state only when a request arrives, so this
    /// bound is never *required* for correctness of the event-horizon
    /// fast-forward — it only shortens a jump, keeping the skip
    /// conservative with respect to the `l2_next_free`/`dram_next_free`
    /// queues (a shorter jump lands on a cycle where nothing issues and
    /// the loop simply skips again).
    pub fn horizon(&self, now: u64) -> u64 {
        let nowf = now as f64;
        let mut h = u64::MAX;
        for t in [self.l2_next_free, self.dram_next_free] {
            if t > nowf {
                h = h.min(t.ceil() as u64);
            }
        }
        h
    }

    /// `(l2_hits, l2_misses)`.
    pub fn l2_stats(&self) -> (u64, u64) {
        self.l2.stats()
    }

    /// Clears queues and counters but keeps cache contents (back-to-back
    /// kernels share the L2, as on hardware).
    pub fn new_kernel(&mut self) {
        self.l2_next_free = 0.0;
        self.dram_next_free = 0.0;
        self.dram_bytes = 0;
        self.l2_hit_bytes = 0;
    }

    /// Also invalidates the L2 (cold-start experiments).
    pub fn cold_reset(&mut self) {
        self.new_kernel();
        self.l2.flush();
    }

    /// Fingerprint of the L2 resident-set + LRU state — the only
    /// memory-system state that survives [`MemSystem::new_kernel`] and can
    /// therefore make one launch time differently from the next. See
    /// [`Cache::state_fingerprint`].
    pub fn l2_fingerprint(&self) -> u64 {
        self.l2.state_fingerprint()
    }
}

/// Per-SM L1 cache wrapper: classifies a line access and forwards misses.
#[derive(Debug)]
pub struct L1 {
    cache: Cache,
    latency: u32,
}

impl L1 {
    /// Builds an L1 from the machine config.
    pub fn new(cfg: &OrinConfig) -> Self {
        Self {
            cache: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            latency: cfg.l1_latency,
        }
    }

    /// Access one line at cycle `now`; on L1 miss, escalates to `mem`.
    /// Returns the ready cycle.
    pub fn access(&mut self, now: u64, addr: u64, mem: &mut MemSystem) -> u64 {
        self.access_traced(now, addr, mem).0
    }

    /// Like [`L1::access`], but also reports whether the line was served by
    /// DRAM (always `false` on L1/L2 hits).
    pub fn access_traced(&mut self, now: u64, addr: u64, mem: &mut MemSystem) -> (u64, bool) {
        if self.classify(addr) {
            (now + self.latency(), false)
        } else {
            mem.line_request_traced(now + self.latency(), addr)
        }
    }

    /// Classifies one line access (`true` = hit), updating LRU state and
    /// hit statistics exactly as [`L1::access`] would, without escalating a
    /// miss. The parallel compute phase classifies locally (the L1 is
    /// SM-private) and replays misses against the shared [`MemSystem`]
    /// during the serial drain.
    pub fn classify(&mut self, addr: u64) -> bool {
        self.cache.access(addr)
    }

    /// L1 hit latency in cycles.
    pub fn latency(&self) -> u64 {
        u64::from(self.latency)
    }

    /// `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Invalidates the L1 (kernel boundary).
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OrinConfig {
        OrinConfig::test_small()
    }

    #[test]
    fn l1_hit_is_fast() {
        let c = cfg();
        let mut mem = MemSystem::new(&c);
        let mut l1 = L1::new(&c);
        let t1 = l1.access(0, 0x1000, &mut mem); // cold miss
        assert!(t1 > u64::from(c.l1_latency) + u64::from(c.l2_latency));
        let t2 = l1.access(t1, 0x1000, &mut mem); // L1 hit
        assert_eq!(t2, t1 + u64::from(c.l1_latency));
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let c = cfg();
        let mut mem = MemSystem::new(&c);
        let mut l1a = L1::new(&c);
        let mut l1b = L1::new(&c);
        let t_dram = l1a.access(0, 0x2000, &mut mem); // DRAM fill
        let t_l2 = l1b.access(0, 0x2000, &mut mem); // other SM: L2 hit
        assert!(t_l2 < t_dram, "L2 hit {t_l2} must beat DRAM {t_dram}");
        assert_eq!(mem.dram_bytes, u64::from(c.line_bytes));
    }

    #[test]
    fn dram_bandwidth_queues_requests() {
        let c = cfg();
        let mut mem = MemSystem::new(&c);
        // Stream of distinct lines all missing L2: service times accumulate.
        let first = mem.line_request(0, 0);
        let mut last = first;
        let n = 10_000u64;
        for i in 1..n {
            last = mem.line_request(0, i * u64::from(c.line_bytes) * 64);
        }
        let spread = last - first;
        let expected = (c.dram_line_interval() * (n - 1) as f64) as u64;
        assert!(
            spread + 2 >= expected && spread <= expected + 2,
            "spread {spread} vs expected {expected}"
        );
    }

    #[test]
    fn l2_keeps_lines_across_kernels() {
        let c = cfg();
        let mut mem = MemSystem::new(&c);
        let _ = mem.line_request(0, 0x4000);
        mem.new_kernel();
        let mut l1 = L1::new(&c);
        let t = l1.access(0, 0x4000, &mut mem);
        // L1 cold, but L2 still warm: latency ~ l1 + l2.
        assert!(t <= u64::from(c.l1_latency + c.l2_latency) + 2);
    }

    #[test]
    fn cold_reset_flushes_l2() {
        let c = cfg();
        let mut mem = MemSystem::new(&c);
        let _ = mem.line_request(0, 0x4000);
        mem.cold_reset();
        let mut l1 = L1::new(&c);
        let t = l1.access(0, 0x4000, &mut mem);
        assert!(t > u64::from(c.l1_latency + c.l2_latency + c.dram_latency) - 2);
    }
}
