//! Functional SIMT execution of one instruction over 32 lanes.
#![allow(clippy::needless_range_loop)] // lane indices are semantic here
//!
//! Executed at issue time; the scoreboard in [`crate::sm`] guarantees that
//! source values are architecturally ready, so executing eagerly is exact.

use crate::decoded::AddrClass;
use crate::isa::{FCmp, ICmp, MemWidth, Op, Src};
use crate::mem::{GlobalMem, StoreOverlay};
use crate::plane;
use crate::warp::Warp;

/// Control outcome of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Fall through to `pc + 1`.
    Seq,
    /// Jump to an instruction index.
    Jump(usize),
    /// Warp exits.
    ExitWarp,
    /// Warp parks at the block barrier (pc already advanced).
    Barrier,
}

/// Side-effect summary the timing model needs. One instance lives on each
/// SM and is reused across issues ([`ExecEffects::reset`]), so the line
/// vector's allocation is paid once per SM, not once per instruction.
#[derive(Debug, Default)]
pub struct ExecEffects {
    /// Distinct 128-B global lines touched (loads or stores).
    pub global_lines: Vec<u64>,
    /// Whether the access was a store.
    pub is_store: bool,
    /// Whether shared memory was accessed.
    pub shared_access: bool,
    /// Whether a global load carried the cache-streaming hint.
    pub stream: bool,
}

impl ExecEffects {
    /// Clears the summary for the next instruction, keeping the line
    /// vector's capacity.
    pub fn reset(&mut self) {
        self.global_lines.clear();
        self.is_store = false;
        self.shared_access = false;
        self.stream = false;
    }
}

/// How [`execute`] reaches device global memory.
///
/// Serial simulation reads and writes [`GlobalMem`] directly. During the
/// parallel compute phase every SM sees the memory image from the start of
/// the cycle plus its *own* earlier stores of that cycle (same-SM
/// store-to-load forwarding): writes append to an SM-local buffer that the
/// serial drain applies to device memory in SM-index order.
#[derive(Debug)]
pub enum MemCtx<'a> {
    /// Direct read/write access (serial mode).
    Direct(&'a mut GlobalMem),
    /// Cycle-start snapshot plus an SM-local store overlay (parallel
    /// phase): reads forward from the overlay's hashed index, writes log
    /// word-granular entries replayed at the serial drain.
    Buffered {
        /// Shared device memory as of the start of the cycle.
        base: &'a GlobalMem,
        /// This SM's stores of the current cycle, in program order.
        overlay: &'a mut StoreOverlay,
    },
}

impl MemCtx<'_> {
    #[inline]
    fn read_u8(&self, addr: u32) -> u8 {
        match self {
            MemCtx::Direct(g) => g.read_u8(addr),
            MemCtx::Buffered { base, overlay } => {
                overlay.get(addr).unwrap_or_else(|| base.read_u8(addr))
            }
        }
    }

    #[inline]
    fn read_u32(&self, addr: u32) -> u32 {
        match self {
            MemCtx::Direct(g) => g.read_u32(addr),
            MemCtx::Buffered { base, overlay } => {
                if overlay.overlaps(addr, 4) {
                    u32::from_le_bytes([
                        self.read_u8(addr),
                        self.read_u8(addr + 1),
                        self.read_u8(addr + 2),
                        self.read_u8(addr + 3),
                    ])
                } else {
                    base.read_u32(addr)
                }
            }
        }
    }

    #[inline]
    fn write_u8(&mut self, addr: u32, v: u8) {
        match self {
            MemCtx::Direct(g) => g.write_u8(addr, v),
            MemCtx::Buffered { overlay, .. } => overlay.write_u8(addr, v),
        }
    }

    #[inline]
    fn write_u32(&mut self, addr: u32, v: u32) {
        match self {
            MemCtx::Direct(g) => g.write_u32(addr, v),
            MemCtx::Buffered { overlay, .. } => overlay.write_u32(addr, v),
        }
    }

    /// Contiguous read view for the bulk load paths: `None` when a
    /// buffered store might overlap the range (the caller then falls back
    /// to the per-lane path, which forwards through the overlay).
    #[inline]
    fn bulk_view(&self, addr: u32, len: u32) -> Option<&[u8]> {
        match self {
            MemCtx::Direct(g) => Some(g.slice(addr, len)),
            MemCtx::Buffered { base, overlay } => {
                if overlay.overlaps(addr, len) {
                    None
                } else {
                    Some(base.slice(addr, len))
                }
            }
        }
    }
}

/// Destination registers of an instruction (`(first, count)`).
pub fn dest_regs(op: &Op) -> Option<(u8, u8)> {
    use Op::*;
    match op {
        IAdd { d, .. }
        | ISub { d, .. }
        | IMul { d, .. }
        | IMad { d, .. }
        | And { d, .. }
        | Or { d, .. }
        | Xor { d, .. }
        | Shl { d, .. }
        | Shr { d, .. }
        | Sar { d, .. }
        | IMin { d, .. }
        | IMax { d, .. }
        | Mov { d, .. }
        | Sel { d, .. }
        | Ldc { d, .. }
        | ReadSr { d, .. }
        | FAdd { d, .. }
        | FMul { d, .. }
        | FFma { d, .. }
        | FMin { d, .. }
        | FMax { d, .. }
        | I2F { d, .. }
        | F2I { d, .. }
        | Rcp { d, .. }
        | Sqrt { d, .. }
        | Ex2 { d, .. }
        | Lg2 { d, .. }
        | Ldg { d, .. }
        | Lds { d, .. }
        | IDivU { d, .. }
        | F2IFloor { d, .. }
        | IRemU { d, .. }
        | Shfl { d, .. } => Some((d.0, 1)),
        LdgV4 { d, .. } => Some((d.0, 4)),
        Mma { kind, acc, .. } => Some((acc.0, kind.acc_regs())),
        _ => None,
    }
}

/// Source registers of an instruction (for the scoreboard).
pub fn src_regs(op: &Op, out: &mut Vec<u8>) {
    use Op::*;
    out.clear();
    let push_src = |s: &Src, out: &mut Vec<u8>| {
        if let Src::R(r) = s {
            out.push(r.0);
        }
    };
    match op {
        IAdd { a, b, .. }
        | ISub { a, b, .. }
        | IMul { a, b, .. }
        | And { a, b, .. }
        | Or { a, b, .. }
        | Xor { a, b, .. }
        | Shl { a, b, .. }
        | Shr { a, b, .. }
        | Sar { a, b, .. }
        | IMin { a, b, .. }
        | IMax { a, b, .. }
        | IDivU { a, b, .. }
        | IRemU { a, b, .. }
        | FAdd { a, b, .. }
        | FMul { a, b, .. }
        | FMin { a, b, .. }
        | FMax { a, b, .. } => {
            push_src(a, out);
            push_src(b, out);
        }
        Shfl { a, .. } => out.push(a.0),
        IMad { a, b, c, .. } | FFma { a, b, c, .. } => {
            push_src(a, out);
            push_src(b, out);
            push_src(c, out);
        }
        ISetP { a, b, .. } | FSetP { a, b, .. } => {
            push_src(a, out);
            push_src(b, out);
        }
        Mov { s, .. } => push_src(s, out),
        Sel { a, b, .. } => {
            push_src(a, out);
            push_src(b, out);
        }
        I2F { a, .. }
        | F2I { a, .. }
        | F2IFloor { a, .. }
        | Rcp { a, .. }
        | Sqrt { a, .. }
        | Ex2 { a, .. }
        | Lg2 { a, .. } => push_src(a, out),
        Ldg { addr, .. } | LdgV4 { addr, .. } => out.push(addr.0),
        Stg { addr, v, .. } => {
            out.push(addr.0);
            push_src(v, out);
        }
        Lds { addr, .. } => out.push(addr.0),
        Sts { addr, v, .. } => {
            out.push(addr.0);
            push_src(v, out);
        }
        Mma {
            acc,
            a_addr,
            b_addr,
            kind,
        } => {
            out.push(a_addr.0);
            out.push(b_addr.0);
            for i in 0..kind.acc_regs() {
                out.push(acc.0 + i);
            }
        }
        Ldc { .. } | ReadSr { .. } | Bra { .. } | Bar | Exit | Nop => {}
    }
}

/// Predicate registers an instruction reads.
pub fn src_preds(op: &Op, out: &mut Vec<u8>) {
    use Op::*;
    out.clear();
    match op {
        Sel { p, .. } => out.push(p.0),
        Ldg { guard: Some(p), .. } | Stg { guard: Some(p), .. } => out.push(p.0),
        Bra { pred: Some(p), .. } => out.push(p.0),
        _ => {}
    }
}

/// Predicate register an instruction writes.
pub fn dest_pred(op: &Op) -> Option<u8> {
    match op {
        Op::ISetP { p, .. } | Op::FSetP { p, .. } => Some(p.0),
        _ => None,
    }
}

#[inline]
fn src_val(w: &Warp, s: Src, lane: usize) -> u32 {
    match s {
        Src::R(r) => w.reg(r.0, lane),
        Src::Imm(v) => v,
    }
}

#[inline]
fn f(v: u32) -> f32 {
    f32::from_bits(v)
}

/// Snapshots a 32-lane operand: one `Src` decode for the whole warp
/// instead of one per lane (lanes are independent, so reads-before-writes
/// semantics are preserved even when the destination aliases a source).
#[inline]
fn src32(w: &Warp, s: Src) -> [u32; 32] {
    let mut v = [0u32; 32];
    match s {
        Src::R(r) => v.copy_from_slice(&w.regs[r.0 as usize * 32..r.0 as usize * 32 + 32]),
        Src::Imm(x) => v.fill(x),
    }
    v
}

fn collect_lines(addrs: &[u64], mask: u32, lines: &mut Vec<u64>) {
    lines.clear();
    for (lane, &a) in addrs.iter().enumerate() {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let line = a >> 7;
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
}

/// Executes `op` for `warp` with no decode-time address hint; see
/// [`execute_hinted`]. Kept as the stable entry point for callers (and
/// tests) that have no [`crate::decoded::DecodedProgram`] at hand.
pub fn execute(
    op: &Op,
    w: &mut Warp,
    smem: &mut [u8],
    gmem: &mut MemCtx<'_>,
    args: &[u32],
    fx: &mut ExecEffects,
) -> Next {
    execute_hinted(op, AddrClass::Unknown, w, smem, gmem, args, fx)
}

/// Executes `op` for `warp`; updates registers, shared and global memory.
/// Returns control flow; side effects for the timing model land in `fx`
/// (a reusable scratch, cleared here).
///
/// `hint` is the decode-time [`AddrClass`] of the op's address vector; it
/// only picks which coalescing probe runs first on the LSU paths and is
/// re-verified against the actual addresses, so a stale hint can never
/// change an architectural value.
///
/// # Panics
/// Panics on divergent branches (this ISA requires warp-uniform control
/// flow), out-of-bounds shared accesses, or out-of-range argument indices —
/// all kernel construction bugs.
pub fn execute_hinted(
    op: &Op,
    hint: AddrClass,
    w: &mut Warp,
    smem: &mut [u8],
    gmem: &mut MemCtx<'_>,
    args: &[u32],
    fx: &mut ExecEffects,
) -> Next {
    use Op::*;
    fx.reset();
    match op {
        IAdd { d, a, b } => bin(w, *d, *a, *b, plane::iadd),
        ISub { d, a, b } => bin(w, *d, *a, *b, plane::isub),
        IMul { d, a, b } => bin(w, *d, *a, *b, plane::imul),
        IMad { d, a, b, c } => tern(w, *d, *a, *b, *c, plane::imad),
        And { d, a, b } => bin(w, *d, *a, *b, plane::band),
        Or { d, a, b } => bin(w, *d, *a, *b, plane::bor),
        Xor { d, a, b } => bin(w, *d, *a, *b, plane::bxor),
        Shl { d, a, b } => bin(w, *d, *a, *b, plane::shl),
        Shr { d, a, b } => bin(w, *d, *a, *b, plane::shr),
        Sar { d, a, b } => bin(w, *d, *a, *b, plane::sar),
        IMin { d, a, b } => bin(w, *d, *a, *b, plane::imin),
        IMax { d, a, b } => bin(w, *d, *a, *b, plane::imax),
        IDivU { d, a, b } => bin(w, *d, *a, *b, plane::idivu),
        IRemU { d, a, b } => bin(w, *d, *a, *b, plane::iremu),
        Shfl { d, a, xor_mask } => {
            let mut vals = [0u32; 32];
            for (lane, v) in vals.iter_mut().enumerate() {
                *v = w.reg(a.0, lane ^ (*xor_mask as usize) & 31);
            }
            for (lane, v) in vals.iter().enumerate() {
                w.set_reg(d.0, lane, *v);
            }
        }
        ISetP { p, a, b, cmp } => {
            let av = src32(w, *a);
            let bv = src32(w, *b);
            let cmp_fn = match cmp {
                ICmp::Eq => plane::isetp_eq,
                ICmp::Ne => plane::isetp_ne,
                ICmp::Lt => plane::isetp_lt,
                ICmp::Le => plane::isetp_le,
                ICmp::Gt => plane::isetp_gt,
                ICmp::Ge => plane::isetp_ge,
                ICmp::LtU => plane::isetp_ltu,
                ICmp::GeU => plane::isetp_geu,
            };
            w.preds[p.0 as usize] = cmp_fn(&av, &bv);
        }
        Mov { d, s } => {
            let sv = src32(w, *s);
            let db = d.0 as usize * 32;
            w.regs[db..db + 32].copy_from_slice(&sv);
        }
        Sel { d, p, a, b } => {
            let mask = w.preds[p.0 as usize];
            let av = src32(w, *a);
            let bv = src32(w, *b);
            plane::sel(w.plane_mut(d.0), mask, &av, &bv);
        }
        Ldc { d, idx } => {
            let v = *args
                .get(*idx as usize)
                .unwrap_or_else(|| panic!("kernel arg {idx} out of range ({} args)", args.len()));
            for lane in 0..32 {
                w.set_reg(d.0, lane, v);
            }
        }
        ReadSr { d, sr } => {
            use crate::isa::SReg::*;
            for lane in 0..32 {
                let v = match sr {
                    Tid => w.tid(lane),
                    Ntid => w.ntid,
                    Ctaid => w.ctaid,
                    Nctaid => w.nctaid,
                    LaneId => lane as u32,
                    WarpId => w.warp_in_block,
                };
                w.set_reg(d.0, lane, v);
            }
        }
        FAdd { d, a, b } => bin(w, *d, *a, *b, plane::fadd),
        FMul { d, a, b } => bin(w, *d, *a, *b, plane::fmul),
        FFma { d, a, b, c } => tern(w, *d, *a, *b, *c, plane::ffma),
        FMin { d, a, b } => bin(w, *d, *a, *b, plane::fmin),
        FMax { d, a, b } => bin(w, *d, *a, *b, plane::fmax),
        FSetP { p, a, b, cmp } => {
            let av = src32(w, *a);
            let bv = src32(w, *b);
            let cmp_fn = match cmp {
                FCmp::Eq => plane::fsetp_eq,
                FCmp::Lt => plane::fsetp_lt,
                FCmp::Le => plane::fsetp_le,
                FCmp::Gt => plane::fsetp_gt,
                FCmp::Ge => plane::fsetp_ge,
            };
            w.preds[p.0 as usize] = cmp_fn(&av, &bv);
        }
        I2F { d, a } => un(w, *d, *a, plane::i2f),
        F2I { d, a } => lanewise1(w, *d, *a, |x| (f(x).round_ties_even() as i32) as u32),
        F2IFloor { d, a } => lanewise1(w, *d, *a, |x| (f(x).floor() as i32) as u32),
        Rcp { d, a } => un(w, *d, *a, plane::frcp),
        Sqrt { d, a } => un(w, *d, *a, plane::fsqrt),
        Ex2 { d, a } => lanewise1(w, *d, *a, |x| f(x).exp2().to_bits()),
        Lg2 { d, a } => lanewise1(w, *d, *a, |x| f(x).log2().to_bits()),
        Ldg {
            d,
            addr,
            off,
            w: width,
            guard,
            stream,
        } => {
            fx.stream = *stream;
            let mask = guard.map_or(u32::MAX, |p| w.preds[p.0 as usize]);
            let mut addrs = [0u64; 32];
            if mask == u32::MAX {
                // Unguarded loads (the common shape): hoist the width
                // match and run the lanes over plain slices. Copying the
                // address lanes first keeps `d == addr` aliasing exact.
                let a_lane = *w.plane(addr.0);
                for (a, &al) in addrs.iter_mut().zip(a_lane.iter()) {
                    *a = (al as i64 + i64::from(*off)) as u64;
                }
                if plane::vector_enabled() && ldg_bulk(d.0, &addrs, *width, hint, w, gmem, fx) {
                    return Next::Seq;
                }
                let db = d.0 as usize * 32;
                let dst = &mut w.regs[db..db + 32];
                match width {
                    MemWidth::B8S => {
                        for (v, &a) in dst.iter_mut().zip(addrs.iter()) {
                            *v = gmem.read_u8(a as u32) as i8 as i32 as u32;
                        }
                    }
                    MemWidth::B8U => {
                        for (v, &a) in dst.iter_mut().zip(addrs.iter()) {
                            *v = u32::from(gmem.read_u8(a as u32));
                        }
                    }
                    MemWidth::B32 => {
                        for (v, &a) in dst.iter_mut().zip(addrs.iter()) {
                            *v = gmem.read_u32(a as u32);
                        }
                    }
                }
            } else {
                for lane in 0..32 {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let a = (w.reg(addr.0, lane) as i64 + i64::from(*off)) as u64;
                    addrs[lane] = a;
                    let v = match width {
                        MemWidth::B8S => gmem.read_u8(a as u32) as i8 as i32 as u32,
                        MemWidth::B8U => u32::from(gmem.read_u8(a as u32)),
                        MemWidth::B32 => gmem.read_u32(a as u32),
                    };
                    w.set_reg(d.0, lane, v);
                }
            }
            collect_lines(&addrs, mask, &mut fx.global_lines);
        }
        LdgV4 {
            d,
            addr,
            off,
            stream,
        } => {
            fx.stream = *stream;
            let mut addrs = [0u64; 32];
            for lane in 0..32 {
                let a = (w.reg(addr.0, lane) as i64 + i64::from(*off)) as u64;
                debug_assert_eq!(a % 16, 0, "LDG.128 requires 16-byte alignment");
                addrs[lane] = a;
                for word in 0..4u32 {
                    let v = gmem.read_u32(a as u32 + word * 4);
                    w.set_reg(d.0 + word as u8, lane, v);
                }
            }
            // Each lane touches 16 bytes; collect lines over the whole span.
            fx.global_lines.clear();
            for &a in &addrs {
                for half in [a >> 7, (a + 15) >> 7] {
                    if !fx.global_lines.contains(&half) {
                        fx.global_lines.push(half);
                    }
                }
            }
        }
        Stg {
            addr,
            off,
            v,
            w: width,
            guard,
            stream,
        } => {
            let mask = guard.map_or(u32::MAX, |p| w.preds[p.0 as usize]);
            let mut addrs = [0u64; 32];
            if mask == u32::MAX && plane::vector_enabled() {
                let a_lane = *w.plane(addr.0);
                for (a, &al) in addrs.iter_mut().zip(a_lane.iter()) {
                    *a = (al as i64 + i64::from(*off)) as u64;
                }
                if stg_bulk(&addrs, *v, *width, hint, w, gmem, fx) {
                    fx.is_store = true;
                    fx.stream = *stream;
                    return Next::Seq;
                }
            }
            for lane in 0..32 {
                if mask & (1 << lane) == 0 {
                    continue;
                }
                let a = (w.reg(addr.0, lane) as i64 + i64::from(*off)) as u64;
                addrs[lane] = a;
                let val = src_val(w, *v, lane);
                match width {
                    MemWidth::B8S | MemWidth::B8U => gmem.write_u8(a as u32, val as u8),
                    MemWidth::B32 => gmem.write_u32(a as u32, val),
                }
            }
            collect_lines(&addrs, mask, &mut fx.global_lines);
            fx.is_store = true;
            fx.stream = *stream;
        }
        Lds {
            d,
            addr,
            off,
            w: width,
        } => {
            fx.shared_access = true;
            // Copy the address lanes first: identical even when `d`
            // aliases `addr` (each lane reads its own pre-write value),
            // and it frees the destination run for a plain slice loop.
            let a_lane = *w.plane(addr.0);
            if plane::vector_enabled() {
                let mut addrs = [0u64; 32];
                for (a, &al) in addrs.iter_mut().zip(a_lane.iter()) {
                    *a = (al as i64 + i64::from(*off)) as u64;
                }
                if lds_bulk(d.0, &addrs, *width, hint, w, smem) {
                    return Next::Seq;
                }
            }
            let db = d.0 as usize * 32;
            let dst = &mut w.regs[db..db + 32];
            match width {
                MemWidth::B8S => {
                    for (v, &al) in dst.iter_mut().zip(a_lane.iter()) {
                        let a = (al as i64 + i64::from(*off)) as usize;
                        *v = smem[a] as i8 as i32 as u32;
                    }
                }
                MemWidth::B8U => {
                    for (v, &al) in dst.iter_mut().zip(a_lane.iter()) {
                        let a = (al as i64 + i64::from(*off)) as usize;
                        *v = u32::from(smem[a]);
                    }
                }
                MemWidth::B32 => {
                    for (v, &al) in dst.iter_mut().zip(a_lane.iter()) {
                        let a = (al as i64 + i64::from(*off)) as usize;
                        *v = u32::from_le_bytes(
                            smem[a..a + 4].try_into().expect("4-byte smem slice"),
                        );
                    }
                }
            }
        }
        Sts {
            addr,
            off,
            v,
            w: width,
        } => {
            fx.shared_access = true;
            let vals = src32(w, *v);
            let a_lane = *w.plane(addr.0);
            if plane::vector_enabled() {
                let mut addrs = [0u64; 32];
                for (a, &al) in addrs.iter_mut().zip(a_lane.iter()) {
                    *a = (al as i64 + i64::from(*off)) as u64;
                }
                if sts_bulk(&addrs, &vals, *width, hint, smem) {
                    return Next::Seq;
                }
            }
            match width {
                MemWidth::B8S | MemWidth::B8U => {
                    for (&al, &val) in a_lane.iter().zip(vals.iter()) {
                        let a = (al as i64 + i64::from(*off)) as usize;
                        smem[a] = val as u8;
                    }
                }
                MemWidth::B32 => {
                    for (&al, &val) in a_lane.iter().zip(vals.iter()) {
                        let a = (al as i64 + i64::from(*off)) as usize;
                        smem[a..a + 4].copy_from_slice(&val.to_le_bytes());
                    }
                }
            }
        }
        Mma {
            kind,
            acc,
            a_addr,
            b_addr,
        } => {
            let (m, n, k) = kind.shape();
            let a_base = w.reg(a_addr.0, 0) as usize;
            let b_base = w.reg(b_addr.0, 0) as usize;
            match kind {
                crate::isa::MmaKind::I8_16x16x16 => {
                    assert!(m * n <= 256 && n <= 16);
                    let a_tile = &smem[a_base..a_base + m * k];
                    let b_tile = &smem[b_base..b_base + k * n];
                    // Output element `r*n + c` lives in register
                    // `acc + idx/32`, lane `idx%32` — with the warp's
                    // `[reg*32 + lane]` layout that is one contiguous run.
                    let base = acc.0 as usize * 32;
                    #[cfg(target_arch = "x86_64")]
                    if m == 16 && plane::vector_enabled() {
                        let at: &[u8; 256] = a_tile.try_into().expect("16x16 A tile");
                        let bt: &[u8; 256] = b_tile.try_into().expect("16x16 B tile");
                        let dst: &mut [u32; 256] = (&mut w.regs[base..base + 256])
                            .try_into()
                            .expect("8-plane accumulator run");
                        // SAFETY: `vector_enabled` only reports true after
                        // `is_x86_feature_detected!` confirms AVX2(+FMA),
                        // establishing the target_feature requirement.
                        unsafe { mma_i8_16_avx2(at, bt, dst) };
                        return Next::Seq;
                    }
                    let mut sums = [0i32; 256];
                    mma_i8_mac(a_tile, b_tile, m, n, k, &mut sums);
                    let dst = &mut w.regs[base..base + m * n];
                    for (d, &s) in dst.iter_mut().zip(sums[..m * n].iter()) {
                        *d = (*d as i32).wrapping_add(s) as u32;
                    }
                }
                crate::isa::MmaKind::F16_16x16x8 => {
                    // Same row-major restructure as the INT8 path. Each
                    // output's float additions still happen in ascending-k
                    // order, so the rounding sequence (and thus the bits)
                    // match the naive triple loop exactly.
                    assert!(n <= 16);
                    let word = |base: usize| {
                        f32::from_bits(u32::from_le_bytes(
                            smem[base..base + 4].try_into().expect("4-byte smem slice"),
                        ))
                    };
                    for r in 0..m {
                        let mut sums = [0f32; 16];
                        for kk in 0..k {
                            let av = word(a_base + (r * k + kk) * 4);
                            for (c, sum) in sums.iter_mut().enumerate().take(n) {
                                *sum += av * word(b_base + (kk * n + c) * 4);
                            }
                        }
                        for (c, &sum) in sums.iter().enumerate().take(n) {
                            let idx = r * n + c;
                            let lane = idx % 32;
                            let slot = idx / 32;
                            let reg = acc.0 + slot as u8;
                            let old = f32::from_bits(w.reg(reg, lane));
                            w.set_reg(reg, lane, (old + sum).to_bits());
                        }
                    }
                }
            }
        }
        Bra {
            target,
            pred,
            sense,
        } => {
            let taken = match pred {
                None => true,
                Some(p) => {
                    let mask = w.preds[p.0 as usize];
                    assert!(
                        mask == 0 || mask == u32::MAX,
                        "divergent branch in {} at pc {} (mask {mask:#x})",
                        w.program.name,
                        w.pc
                    );
                    (mask == u32::MAX) == *sense
                }
            };
            if taken {
                return Next::Jump(*target);
            }
        }
        Bar => return Next::Barrier,
        Exit => return Next::ExitWarp,
        Nop => {}
    }
    Next::Seq
}

/// INT8 MMA partial sums: `sums[r*n + c] = sum_k a[r*k + kk] * b[kk*n + c]`
/// over sign-extended bytes, accumulated with i32 wrapping adds. Scalar
/// path only — when SIMD execution is on, the `Mma` arm calls
/// [`mma_i8_16_avx2`] directly so the partial sums land straight in the
/// accumulator planes without this staging buffer. Integer wrapping sums
/// are associative and commutative and every i8*i8 product fits in i16,
/// so evaluation order and SIMD width cannot change the result: every
/// path is bit-identical by construction.
fn mma_i8_mac(a_tile: &[u8], b_tile: &[u8], m: usize, n: usize, k: usize, sums: &mut [i32; 256]) {
    if m == 16 && n == 16 && k == 16 {
        // The shipped MMA shape: constant trip counts let the whole row
        // accumulator live in vector registers across the k loop.
        let a: &[u8; 256] = a_tile.try_into().expect("16x16 A tile");
        let b: &[u8; 256] = b_tile.try_into().expect("16x16 B tile");
        mma_i8_16_body(a, b, sums);
        return;
    }
    mma_i8_mac_body(a_tile, b_tile, m, n, k, sums);
}

/// Hand-vectorized `vpmaddwd` formulation of [`mma_i8_16_body`] plus the
/// accumulator merge, ~10x its throughput (LLVM lowers the scalar nest to
/// byte-wise `vpinsrb` gathers). Accumulates `acc[r*16+c] +=
/// sum_k a[r][k]*b[k][c]` in place — `acc` is the 8-plane register run,
/// so the 1 KiB partial-sum staging buffer of the scalar path disappears.
///
/// Bit-identical to the scalar loop + merge by construction: every i8*i8
/// product is exact in the i16 multiply (|p| <= 16129, no `vpmaddwd`
/// saturation), the pair-sum is produced directly in i32, and i32
/// wrapping addition is associative and commutative, so regrouping k into
/// pairs and folding the merge into the row loop cannot change the
/// result (two's-complement u32/i32 wrapping adds are the same bits).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mma_i8_16_avx2(a: &[u8; 256], b: &[u8; 256], acc: &mut [u32; 256]) {
    use std::arch::x86_64::*;
    // SAFETY: all pointer arithmetic stays inside the fixed-size tile and
    // accumulator arrays (checked by the index bounds below); unaligned
    // load/store intrinsics have no alignment requirement.
    unsafe {
        // Interleave B row pairs once per call: bi[p][h] holds, for output
        // columns c in [8h, 8h+8), the i16 pairs (b[2p][c], b[2p+1][c]).
        let mut bi = [[_mm256_setzero_si256(); 2]; 8];
        for p in 0..8 {
            let r0 = _mm_loadu_si128(b.as_ptr().add(2 * p * 16).cast());
            let r1 = _mm_loadu_si128(b.as_ptr().add((2 * p + 1) * 16).cast());
            bi[p][0] = _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(r0, r1));
            bi[p][1] = _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(r0, r1));
        }
        // Broadcast selectors: dword p of a sign-extended A row is the
        // i16 pair (a[2p], a[2p+1]) — exactly the `vpmaddwd` multiplier.
        let sel: [__m256i; 8] = std::array::from_fn(|p| _mm256_set1_epi32(p as i32));
        for r in 0..16 {
            let arow = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(r * 16).cast()));
            let mut acc0 = _mm256_loadu_si256(acc.as_ptr().add(r * 16).cast());
            let mut acc1 = _mm256_loadu_si256(acc.as_ptr().add(r * 16 + 8).cast());
            for (p, pair) in bi.iter().enumerate() {
                let xa = _mm256_permutevar8x32_epi32(arow, sel[p]);
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(xa, pair[0]));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(xa, pair[1]));
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(r * 16).cast(), acc0);
            _mm256_storeu_si256(acc.as_mut_ptr().add(r * 16 + 8).cast(), acc1);
        }
    }
}

/// Fixed-shape 16x16x16 INT8 MAC loop nest. All bounds are compile-time
/// constants: the c loop vectorizes, the kk loop unrolls with the row
/// accumulator held in registers, and no bounds checks survive.
#[inline(always)]
fn mma_i8_16_body(a: &[u8; 256], b: &[u8; 256], sums: &mut [i32; 256]) {
    for r in 0..16 {
        let mut acc = [0i32; 16];
        for kk in 0..16 {
            let av = i32::from(a[r * 16 + kk] as i8);
            let b_row = &b[kk * 16..kk * 16 + 16];
            for c in 0..16 {
                acc[c] = acc[c].wrapping_add(av.wrapping_mul(i32::from(b_row[c] as i8)));
            }
        }
        sums[r * 16..r * 16 + 16].copy_from_slice(&acc);
    }
}

/// The shared loop nest behind [`mma_i8_mac`]: plain slices and fixed-bound
/// inner loops so the autovectorizer can work at whatever SIMD width the
/// enclosing function was compiled for. The widened i16 multiply is
/// value-identical to the i32 product (|i8*i8| <= 16384 fits i16) and lets
/// even baseline SSE2 use 16-bit vector multiplies.
#[inline(always)]
fn mma_i8_mac_body(
    a_tile: &[u8],
    b_tile: &[u8],
    m: usize,
    n: usize,
    k: usize,
    sums: &mut [i32; 256],
) {
    for r in 0..m {
        let a_row = &a_tile[r * k..r * k + k];
        let row_sums = &mut sums[r * n..r * n + n];
        for (kk, &ab) in a_row.iter().enumerate() {
            let av = ab as i8 as i16;
            let b_row = &b_tile[kk * n..kk * n + n];
            for (c, &bb) in b_row.iter().enumerate() {
                row_sums[c] = row_sums[c].wrapping_add(i32::from(av * i16::from(bb as i8)));
            }
        }
    }
}

/// Splats an immediate into a stack plane (the snapshot fallback's source
/// shape for `Src::Imm`).
#[inline]
fn splat(x: u32) -> [u32; 32] {
    [x; 32]
}

/// Two-operand plane dispatch. Register operands that don't alias the
/// destination run straight over the register file
/// ([`Warp::plane_mut_and`]); aliasing or immediate operands fall back to
/// stack snapshots, which are exact even on alias because lanes are
/// independent.
#[inline]
fn bin(
    w: &mut Warp,
    d: crate::isa::Reg,
    a: Src,
    b: Src,
    op: impl Fn(&mut [u32; 32], &[u32; 32], &[u32; 32]),
) {
    match (a, b) {
        (Src::R(ra), Src::R(rb)) => {
            if let Some((dp, [ap, bp])) = w.plane_mut_and(d.0, [ra.0, rb.0]) {
                return op(dp, ap, bp);
            }
        }
        (Src::R(ra), Src::Imm(ib)) => {
            let bv = splat(ib);
            if let Some((dp, [ap])) = w.plane_mut_and(d.0, [ra.0]) {
                return op(dp, ap, &bv);
            }
        }
        (Src::Imm(ia), Src::R(rb)) => {
            let av = splat(ia);
            if let Some((dp, [bp])) = w.plane_mut_and(d.0, [rb.0]) {
                return op(dp, &av, bp);
            }
        }
        (Src::Imm(_), Src::Imm(_)) => {}
    }
    let av = src32(w, a);
    let bv = src32(w, b);
    op(w.plane_mut(d.0), &av, &bv);
}

/// Three-operand plane dispatch (alias-free register operands skip the
/// snapshots, as in [`bin`]; any immediate operand takes the fallback —
/// three-source ops are dominated by the all-register form).
#[inline]
fn tern(
    w: &mut Warp,
    d: crate::isa::Reg,
    a: Src,
    b: Src,
    c: Src,
    op: impl Fn(&mut [u32; 32], &[u32; 32], &[u32; 32], &[u32; 32]),
) {
    if let (Src::R(ra), Src::R(rb), Src::R(rc)) = (a, b, c) {
        if let Some((dp, [ap, bp, cp])) = w.plane_mut_and(d.0, [ra.0, rb.0, rc.0]) {
            return op(dp, ap, bp, cp);
        }
    }
    let av = src32(w, a);
    let bv = src32(w, b);
    let cv = src32(w, c);
    op(w.plane_mut(d.0), &av, &bv, &cv);
}

/// One-operand plane dispatch.
#[inline]
fn un(w: &mut Warp, d: crate::isa::Reg, a: Src, op: impl Fn(&mut [u32; 32], &[u32; 32])) {
    if let Src::R(ra) = a {
        if let Some((dp, [ap])) = w.plane_mut_and(d.0, [ra.0]) {
            return op(dp, ap);
        }
    }
    let av = src32(w, a);
    op(w.plane_mut(d.0), &av);
}

/// Runtime-verified coalescing class of one 32-lane address vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Coalesce {
    /// Every lane addresses the same location.
    Uniform,
    /// Byte-contiguous ascending run (`addr[l] = addr[0] + l`).
    Stride1,
    /// Word-contiguous ascending run (`addr[l] = addr[0] + 4*l`).
    Stride4,
    /// Two independent word-contiguous 16-lane runs (lanes 0..16 and
    /// 16..32 each stride-4 from their own base). This is the shape of
    /// row-major tile traffic where each half-warp covers one 64-byte row
    /// segment — e.g. a 16-wide staging copy or a 16-column epilogue.
    Seg16,
    /// Eight independent word-contiguous 4-lane runs — the shape of
    /// bank-conflict-free shared-memory swizzles that permute 16-byte
    /// groups. Serviced in bulk for shared memory only.
    Seg4,
    /// Anything else: the scalar per-lane path handles it.
    Gather,
}

#[inline]
fn is_uniform(addrs: &[u64; 32]) -> bool {
    let a0 = addrs[0];
    addrs.iter().all(|&a| a == a0)
}

#[inline]
fn is_stride(addrs: &[u64; 32], s: u64) -> bool {
    // 31 independent compares that autovectorize. Each lane is checked
    // against its neighbor, so a match proves the whole run is monotonic
    // ascending with no wrap.
    (1..32).all(|l| addrs[l] == addrs[l - 1] + s)
}

#[inline]
fn is_seg_stride4(addrs: &[u64; 32], seg: usize) -> bool {
    // Each `seg`-lane group is its own stride-4 run; the bases are
    // unrelated. Segment-leading lanes are exempt from the check.
    (1..32).all(|l| l % seg == 0 || addrs[l] == addrs[l - 1] + 4)
}

/// Resolves the decode-time hint against the actual addresses. The hint
/// only decides which check runs first; a bulk class is returned only when
/// the addresses *verify*, so a wrong hint costs a probe, never a value.
/// Stride classes are additionally gated on the access width matching the
/// stride (contiguity of the serviced bytes, not just of the addresses).
#[inline]
fn resolve_coalesce(hint: AddrClass, addrs: &[u64; 32], width: MemWidth) -> Coalesce {
    match (hint, width) {
        (AddrClass::Uniform, _) if is_uniform(addrs) => return Coalesce::Uniform,
        (AddrClass::Stride4, MemWidth::B32) if is_stride(addrs, 4) => return Coalesce::Stride4,
        (AddrClass::Stride1, MemWidth::B8S | MemWidth::B8U) if is_stride(addrs, 1) => {
            return Coalesce::Stride1
        }
        _ => {}
    }
    match width {
        MemWidth::B32 if is_stride(addrs, 4) => Coalesce::Stride4,
        MemWidth::B32 if is_seg_stride4(addrs, 16) => Coalesce::Seg16,
        MemWidth::B32 if is_seg_stride4(addrs, 4) => Coalesce::Seg4,
        MemWidth::B8S | MemWidth::B8U if is_stride(addrs, 1) => Coalesce::Stride1,
        _ if is_uniform(addrs) => Coalesce::Uniform,
        _ => Coalesce::Gather,
    }
}

/// Line list of two verified ascending half-warp runs, in the first-seen
/// lane order [`collect_lines`] would produce: segment 0's span ascending,
/// then segment 1's span ascending minus any line already covered by
/// segment 0.
#[inline]
fn lines_for_seg16(addrs: &[u64; 32], lines: &mut Vec<u64>) {
    let (f0, l0) = (addrs[0] >> 7, addrs[15] >> 7);
    let (f1, l1) = (addrs[16] >> 7, addrs[31] >> 7);
    lines.clear();
    lines.extend(f0..=l0);
    for line in f1..=l1 {
        if !(f0..=l0).contains(&line) {
            lines.push(line);
        }
    }
}

/// Line list of a verified ascending run: identical to what
/// [`collect_lines`] produces for these addresses, because first-seen
/// order over a monotonic run is ascending and every line in the span
/// holds at least one lane's first byte.
#[inline]
fn lines_for_span(first: u64, last: u64, lines: &mut Vec<u64>) {
    lines.clear();
    for line in first..=last {
        lines.push(line);
    }
}

/// Bulk service of an unguarded global load. Returns false (nothing done)
/// when the addresses don't verify as coalesced or a buffered store
/// overlaps the span; the caller then runs the per-lane path.
fn ldg_bulk(
    d: u8,
    addrs: &[u64; 32],
    width: MemWidth,
    hint: AddrClass,
    w: &mut Warp,
    gmem: &MemCtx<'_>,
    fx: &mut ExecEffects,
) -> bool {
    let a0 = addrs[0];
    match resolve_coalesce(hint, addrs, width) {
        Coalesce::Uniform => {
            let v = match width {
                MemWidth::B8S => gmem.read_u8(a0 as u32) as i8 as i32 as u32,
                MemWidth::B8U => u32::from(gmem.read_u8(a0 as u32)),
                MemWidth::B32 => gmem.read_u32(a0 as u32),
            };
            w.plane_mut(d).fill(v);
            lines_for_span(a0 >> 7, a0 >> 7, &mut fx.global_lines);
            true
        }
        Coalesce::Stride4 => {
            let Some(src) = gmem.bulk_view(a0 as u32, 128) else {
                return false;
            };
            let dst = w.plane_mut(d);
            for (v, c) in dst.iter_mut().zip(src.chunks_exact(4)) {
                *v = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            }
            lines_for_span(a0 >> 7, addrs[31] >> 7, &mut fx.global_lines);
            true
        }
        Coalesce::Stride1 => {
            let Some(src) = gmem.bulk_view(a0 as u32, 32) else {
                return false;
            };
            let dst = w.plane_mut(d);
            match width {
                MemWidth::B8S => {
                    for (v, &b) in dst.iter_mut().zip(src.iter()) {
                        *v = b as i8 as i32 as u32;
                    }
                }
                MemWidth::B8U => {
                    for (v, &b) in dst.iter_mut().zip(src.iter()) {
                        *v = u32::from(b);
                    }
                }
                MemWidth::B32 => return false,
            }
            lines_for_span(a0 >> 7, addrs[31] >> 7, &mut fx.global_lines);
            true
        }
        Coalesce::Seg16 => {
            let a1 = addrs[16] as u32;
            let (Some(s0), Some(s1)) = (gmem.bulk_view(a0 as u32, 64), gmem.bulk_view(a1, 64))
            else {
                return false;
            };
            let dst = w.plane_mut(d);
            for (v, c) in dst[..16].iter_mut().zip(s0.chunks_exact(4)) {
                *v = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            }
            for (v, c) in dst[16..].iter_mut().zip(s1.chunks_exact(4)) {
                *v = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            }
            lines_for_seg16(addrs, &mut fx.global_lines);
            true
        }
        // 4-lane segments would need an 8-run line-list merge; global
        // traffic with that shape is rare enough to leave scalar.
        Coalesce::Seg4 | Coalesce::Gather => false,
    }
}

/// Bulk service of an unguarded global store over a verified contiguous
/// run. Uniform stores are left to the scalar path: its lane order decides
/// which lane's value lands last, and that overwrite sequence must be
/// byte-exact in the buffered log too.
fn stg_bulk(
    addrs: &[u64; 32],
    v: Src,
    width: MemWidth,
    hint: AddrClass,
    w: &Warp,
    gmem: &mut MemCtx<'_>,
    fx: &mut ExecEffects,
) -> bool {
    let a0 = addrs[0] as u32;
    match resolve_coalesce(hint, addrs, width) {
        Coalesce::Stride4 => {
            if width != MemWidth::B32 {
                return false;
            }
            let vals = src32(w, v);
            match gmem {
                MemCtx::Direct(g) => {
                    let dst = g.slice_mut(a0, 128);
                    for (c, val) in dst.chunks_exact_mut(4).zip(vals.iter()) {
                        c.copy_from_slice(&val.to_le_bytes());
                    }
                }
                MemCtx::Buffered { overlay, .. } => {
                    // Lane-ascending writes: the same program order the
                    // scalar loop would have logged.
                    for (i, &val) in vals.iter().enumerate() {
                        overlay.write_u32(a0 + 4 * i as u32, val);
                    }
                }
            }
            lines_for_span(addrs[0] >> 7, addrs[31] >> 7, &mut fx.global_lines);
            true
        }
        Coalesce::Stride1 => {
            if width == MemWidth::B32 {
                return false;
            }
            let vals = src32(w, v);
            match gmem {
                MemCtx::Direct(g) => {
                    let dst = g.slice_mut(a0, 32);
                    for (b, &val) in dst.iter_mut().zip(vals.iter()) {
                        *b = val as u8;
                    }
                }
                MemCtx::Buffered { overlay, .. } => {
                    for (i, &val) in vals.iter().enumerate() {
                        overlay.write_u8(a0 + i as u32, val as u8);
                    }
                }
            }
            lines_for_span(addrs[0] >> 7, addrs[31] >> 7, &mut fx.global_lines);
            true
        }
        Coalesce::Seg16 => {
            let vals = src32(w, v);
            match gmem {
                MemCtx::Direct(g) => {
                    // Segment 0 lands before segment 1, the same order the
                    // scalar lane loop writes (matters if the runs overlap).
                    for (seg, base) in [(&vals[..16], a0), (&vals[16..], addrs[16] as u32)] {
                        let dst = g.slice_mut(base, 64);
                        for (c, val) in dst.chunks_exact_mut(4).zip(seg.iter()) {
                            c.copy_from_slice(&val.to_le_bytes());
                        }
                    }
                }
                MemCtx::Buffered { overlay, .. } => {
                    for (i, &val) in vals[..16].iter().enumerate() {
                        overlay.write_u32(a0 + 4 * i as u32, val);
                    }
                    let a1 = addrs[16] as u32;
                    for (i, &val) in vals[16..].iter().enumerate() {
                        overlay.write_u32(a1 + 4 * i as u32, val);
                    }
                }
            }
            lines_for_seg16(addrs, &mut fx.global_lines);
            true
        }
        Coalesce::Seg4 | Coalesce::Uniform | Coalesce::Gather => false,
    }
}

/// Bulk service of a shared-memory load over a verified contiguous run.
fn lds_bulk(
    d: u8,
    addrs: &[u64; 32],
    width: MemWidth,
    hint: AddrClass,
    w: &mut Warp,
    smem: &[u8],
) -> bool {
    let a0 = addrs[0] as usize;
    let c = resolve_coalesce(hint, addrs, width);
    match c {
        Coalesce::Uniform => {
            let v = match width {
                MemWidth::B8S => smem[a0] as i8 as i32 as u32,
                MemWidth::B8U => u32::from(smem[a0]),
                MemWidth::B32 => {
                    u32::from_le_bytes(smem[a0..a0 + 4].try_into().expect("4-byte smem slice"))
                }
            };
            w.plane_mut(d).fill(v);
            true
        }
        Coalesce::Stride4 => {
            let src = &smem[a0..a0 + 128];
            let dst = w.plane_mut(d);
            for (v, c) in dst.iter_mut().zip(src.chunks_exact(4)) {
                *v = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            }
            true
        }
        Coalesce::Stride1 => {
            let src = &smem[a0..a0 + 32];
            let dst = w.plane_mut(d);
            match width {
                MemWidth::B8S => {
                    for (v, &b) in dst.iter_mut().zip(src.iter()) {
                        *v = b as i8 as i32 as u32;
                    }
                }
                MemWidth::B8U => {
                    for (v, &b) in dst.iter_mut().zip(src.iter()) {
                        *v = u32::from(b);
                    }
                }
                MemWidth::B32 => return false,
            }
            true
        }
        Coalesce::Seg16 | Coalesce::Seg4 => {
            let seg = if matches!(c, Coalesce::Seg16) { 16 } else { 4 };
            let dst = w.plane_mut(d);
            for s in 0..32 / seg {
                let base = addrs[s * seg] as usize;
                let src = &smem[base..base + 4 * seg];
                for (v, ch) in dst[s * seg..(s + 1) * seg]
                    .iter_mut()
                    .zip(src.chunks_exact(4))
                {
                    *v = u32::from_le_bytes(ch.try_into().expect("4-byte chunk"));
                }
            }
            true
        }
        Coalesce::Gather => false,
    }
}

/// Bulk service of a shared-memory store over a verified contiguous run
/// (uniform falls to the scalar path for its overwrite order, like
/// [`stg_bulk`]).
fn sts_bulk(
    addrs: &[u64; 32],
    vals: &[u32; 32],
    width: MemWidth,
    hint: AddrClass,
    smem: &mut [u8],
) -> bool {
    let a0 = addrs[0] as usize;
    let c = resolve_coalesce(hint, addrs, width);
    match c {
        Coalesce::Stride4 => {
            if width != MemWidth::B32 {
                return false;
            }
            let dst = &mut smem[a0..a0 + 128];
            for (c, val) in dst.chunks_exact_mut(4).zip(vals.iter()) {
                c.copy_from_slice(&val.to_le_bytes());
            }
            true
        }
        Coalesce::Stride1 => {
            if width == MemWidth::B32 {
                return false;
            }
            let dst = &mut smem[a0..a0 + 32];
            for (b, &val) in dst.iter_mut().zip(vals.iter()) {
                *b = val as u8;
            }
            true
        }
        Coalesce::Seg16 | Coalesce::Seg4 => {
            // Segment order matches lane order, as in [`stg_bulk`].
            let seg = if matches!(c, Coalesce::Seg16) { 16 } else { 4 };
            for s in 0..32 / seg {
                let base = addrs[s * seg] as usize;
                let dst = &mut smem[base..base + 4 * seg];
                for (ch, val) in dst
                    .chunks_exact_mut(4)
                    .zip(vals[s * seg..(s + 1) * seg].iter())
                {
                    ch.copy_from_slice(&val.to_le_bytes());
                }
            }
            true
        }
        Coalesce::Uniform | Coalesce::Gather => false,
    }
}

#[inline]
fn lanewise1(w: &mut Warp, d: crate::isa::Reg, a: Src, op: impl Fn(u32) -> u32) {
    let av = src32(w, a);
    let db = d.0 as usize * 32;
    let dst = &mut w.regs[db..db + 32];
    for lane in 0..32 {
        dst[lane] = op(av[lane]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{MmaKind, Pred, Reg, SReg};
    use crate::program::ProgramBuilder;

    fn mk_warp(nregs: u16) -> Warp {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(nregs);
        let _ = p.alloc_pred();
        let _ = p.alloc_pred();
        p.exit();
        Warp::new(p.build().into_arc(), 0, 1, 3, 64, 7, 0, 0)
    }

    fn run(op: Op, w: &mut Warp) -> (Next, ExecEffects) {
        let mut smem = vec![0u8; 4096];
        let mut gmem = GlobalMem::new(1 << 16);
        let mut fx = ExecEffects::default();
        let n = execute(
            &op,
            w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut fx,
        );
        (n, fx)
    }

    #[test]
    fn imad_wraps() {
        let mut w = mk_warp(4);
        for lane in 0..32 {
            w.set_reg(0, lane, lane as u32);
            w.set_reg(1, lane, 3);
            w.set_reg(2, lane, 10);
        }
        let (n, _) = run(
            Op::IMad {
                d: Reg(3),
                a: Reg(0).into(),
                b: Reg(1).into(),
                c: Reg(2).into(),
            },
            &mut w,
        );
        assert_eq!(n, Next::Seq);
        assert_eq!(w.reg(3, 5), 25);
    }

    #[test]
    fn unbounded_shifts_zero_out() {
        let mut w = mk_warp(2);
        for lane in 0..32 {
            w.set_reg(0, lane, 0xFFFF_FFFF);
        }
        run(
            Op::Shl {
                d: Reg(1),
                a: Reg(0).into(),
                b: Src::Imm(32),
            },
            &mut w,
        );
        assert_eq!(w.reg(1, 0), 0);
        run(
            Op::Shr {
                d: Reg(1),
                a: Reg(0).into(),
                b: Src::Imm(33),
            },
            &mut w,
        );
        assert_eq!(w.reg(1, 0), 0);
        run(
            Op::Sar {
                d: Reg(1),
                a: Reg(0).into(),
                b: Src::Imm(40),
            },
            &mut w,
        );
        assert_eq!(w.reg(1, 0), u32::MAX, "sar saturates to sign");
    }

    #[test]
    fn isetp_and_sel() {
        let mut w = mk_warp(3);
        for lane in 0..32 {
            w.set_reg(0, lane, lane as u32);
        }
        run(
            Op::ISetP {
                p: Pred(0),
                a: Reg(0).into(),
                b: Src::Imm(16),
                cmp: ICmp::Lt,
            },
            &mut w,
        );
        assert_eq!(w.preds[0], 0x0000_FFFF);
        run(
            Op::Sel {
                d: Reg(1),
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(2),
            },
            &mut w,
        );
        assert_eq!(w.reg(1, 3), 1);
        assert_eq!(w.reg(1, 20), 2);
    }

    #[test]
    fn signed_vs_unsigned_compare() {
        let mut w = mk_warp(1);
        for lane in 0..32 {
            w.set_reg(0, lane, -1i32 as u32);
        }
        run(
            Op::ISetP {
                p: Pred(0),
                a: Reg(0).into(),
                b: Src::Imm(0),
                cmp: ICmp::Lt,
            },
            &mut w,
        );
        assert_eq!(w.preds[0], u32::MAX, "-1 < 0 signed");
        run(
            Op::ISetP {
                p: Pred(0),
                a: Reg(0).into(),
                b: Src::Imm(0),
                cmp: ICmp::LtU,
            },
            &mut w,
        );
        assert_eq!(w.preds[0], 0, "0xffffffff not < 0 unsigned");
    }

    #[test]
    fn float_ops_and_conversions() {
        let mut w = mk_warp(3);
        for lane in 0..32 {
            w.set_reg(0, lane, 2.5f32.to_bits());
            w.set_reg(1, lane, 4.0f32.to_bits());
        }
        run(
            Op::FFma {
                d: Reg(2),
                a: Reg(0).into(),
                b: Reg(1).into(),
                c: Src::imm_f32(1.0),
            },
            &mut w,
        );
        assert_eq!(f32::from_bits(w.reg(2, 0)), 11.0);
        run(
            Op::F2I {
                d: Reg(2),
                a: Reg(0).into(),
            },
            &mut w,
        );
        assert_eq!(w.reg(2, 0) as i32, 2, "2.5 rounds to even");
        run(
            Op::I2F {
                d: Reg(2),
                a: Src::imm_i32(-7),
            },
            &mut w,
        );
        assert_eq!(f32::from_bits(w.reg(2, 0)), -7.0);
    }

    #[test]
    fn sreg_values() {
        let mut w = mk_warp(1);
        run(
            Op::ReadSr {
                d: Reg(0),
                sr: SReg::Tid,
            },
            &mut w,
        );
        assert_eq!(w.reg(0, 4), 36); // warp 1, lane 4
        run(
            Op::ReadSr {
                d: Reg(0),
                sr: SReg::Ctaid,
            },
            &mut w,
        );
        assert_eq!(w.reg(0, 0), 3);
        run(
            Op::ReadSr {
                d: Reg(0),
                sr: SReg::LaneId,
            },
            &mut w,
        );
        assert_eq!(w.reg(0, 9), 9);
    }

    #[test]
    fn global_load_store_round_trip() {
        let mut w = mk_warp(3);
        let mut smem = vec![0u8; 64];
        let mut gmem = GlobalMem::new(1 << 16);
        let buf = gmem.alloc(256);
        for lane in 0..32 {
            w.set_reg(0, lane, buf.addr + 4 * lane as u32);
            w.set_reg(1, lane, 100 + lane as u32);
        }
        let mut fx = ExecEffects::default();
        execute(
            &Op::Stg {
                addr: Reg(0),
                off: 0,
                v: Reg(1).into(),
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut fx,
        );
        assert!(fx.is_store);
        assert_eq!(fx.global_lines.len(), 1, "coalesced to one line");
        let mut fx2 = ExecEffects::default();
        execute(
            &Op::Ldg {
                d: Reg(2),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut fx2,
        );
        assert_eq!(fx2.global_lines.len(), 1);
        assert_eq!(w.reg(2, 31), 131);
    }

    #[test]
    fn strided_access_touches_many_lines() {
        let mut w = mk_warp(2);
        let mut smem = vec![0u8; 64];
        let mut gmem = GlobalMem::new(1 << 20);
        let buf = gmem.alloc(128 * 64);
        for lane in 0..32 {
            w.set_reg(0, lane, buf.addr + 128 * lane as u32);
        }
        let mut fx = ExecEffects::default();
        execute(
            &Op::Ldg {
                d: Reg(1),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut fx,
        );
        assert_eq!(fx.global_lines.len(), 32, "fully uncoalesced");
    }

    #[test]
    fn guarded_store_skips_lanes() {
        let mut w = mk_warp(2);
        let mut smem = vec![0u8; 64];
        let mut gmem = GlobalMem::new(1 << 16);
        let buf = gmem.alloc(256);
        w.preds[0] = 0x1; // only lane 0
        for lane in 0..32 {
            w.set_reg(0, lane, buf.addr + 4 * lane as u32);
        }
        execute(
            &Op::Stg {
                addr: Reg(0),
                off: 0,
                v: Src::Imm(9),
                w: MemWidth::B32,
                guard: Some(Pred(0)),
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        assert_eq!(gmem.read_u32(buf.addr), 9);
        assert_eq!(gmem.read_u32(buf.addr + 4), 0);
    }

    #[test]
    fn byte_loads_sign_and_zero_extend() {
        let mut w = mk_warp(2);
        let mut smem = vec![0u8; 64];
        let mut gmem = GlobalMem::new(1 << 16);
        let buf = gmem.alloc(64);
        gmem.write_u8(buf.addr, 0xFF);
        for lane in 0..32 {
            w.set_reg(0, lane, buf.addr);
        }
        execute(
            &Op::Ldg {
                d: Reg(1),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B8S,
                guard: None,
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        assert_eq!(w.reg(1, 0) as i32, -1);
        execute(
            &Op::Ldg {
                d: Reg(1),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B8U,
                guard: None,
                stream: false,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        assert_eq!(w.reg(1, 0), 255);
    }

    #[test]
    fn shared_memory_round_trip() {
        let mut w = mk_warp(3);
        let mut smem = vec![0u8; 1024];
        let mut gmem = GlobalMem::new(4096);
        for lane in 0..32 {
            w.set_reg(0, lane, 4 * lane as u32);
            w.set_reg(1, lane, lane as u32 * 11);
        }
        execute(
            &Op::Sts {
                addr: Reg(0),
                off: 0,
                v: Reg(1).into(),
                w: MemWidth::B32,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        execute(
            &Op::Lds {
                d: Reg(2),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B32,
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        assert_eq!(w.reg(2, 7), 77);
    }

    #[test]
    fn mma_int8_accumulates_correctly() {
        let mut p = ProgramBuilder::new("t");
        let _ = p.alloc_n(12);
        p.exit();
        let mut w = Warp::new(p.build().into_arc(), 0, 0, 0, 32, 1, 0, 0);
        let mut smem = vec![0u8; 2048];
        let mut gmem = GlobalMem::new(4096);
        // A = identity-ish: A[r][k] = (r == k) ? 2 : 0; B[k][c] = k + c.
        for r in 0..16 {
            for k in 0..16 {
                smem[r * 16 + k] = if r == k { 2u8 } else { 0 };
            }
        }
        for k in 0..16 {
            for c in 0..16 {
                smem[256 + k * 16 + c] = (k + c) as u8;
            }
        }
        for lane in 0..32 {
            w.set_reg(0, lane, 0); // a_addr
            w.set_reg(1, lane, 256); // b_addr
        }
        execute(
            &Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: Reg(2),
                a_addr: Reg(0),
                b_addr: Reg(1),
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        // C[r][c] = 2 * (r + c). Element (3, 5): idx 53 -> lane 21, slot 1.
        assert_eq!(w.reg(3, 21) as i32, 2 * (3 + 5));
        // Accumulation: run again, doubles.
        execute(
            &Op::Mma {
                kind: MmaKind::I8_16x16x16,
                acc: Reg(2),
                a_addr: Reg(0),
                b_addr: Reg(1),
            },
            &mut w,
            &mut smem,
            &mut MemCtx::Direct(&mut gmem),
            &[],
            &mut ExecEffects::default(),
        );
        assert_eq!(w.reg(3, 21) as i32, 4 * (3 + 5));
    }

    #[test]
    fn uniform_branch_taken_and_not() {
        let mut w = mk_warp(1);
        w.preds[0] = u32::MAX;
        let (n, _) = run(
            Op::Bra {
                target: 7,
                pred: Some(Pred(0)),
                sense: true,
            },
            &mut w,
        );
        assert_eq!(n, Next::Jump(7));
        w.preds[0] = 0;
        let (n, _) = run(
            Op::Bra {
                target: 7,
                pred: Some(Pred(0)),
                sense: true,
            },
            &mut w,
        );
        assert_eq!(n, Next::Seq);
    }

    #[test]
    #[should_panic(expected = "divergent branch")]
    fn divergent_branch_panics() {
        let mut w = mk_warp(1);
        w.preds[0] = 0x0000_FFFF;
        let _ = run(
            Op::Bra {
                target: 0,
                pred: Some(Pred(0)),
                sense: true,
            },
            &mut w,
        );
    }

    #[test]
    fn control_outcomes() {
        let mut w = mk_warp(1);
        assert_eq!(run(Op::Bar, &mut w).0, Next::Barrier);
        assert_eq!(run(Op::Exit, &mut w).0, Next::ExitWarp);
        assert_eq!(run(Op::Nop, &mut w).0, Next::Seq);
    }

    #[test]
    fn dest_and_src_reg_extraction() {
        let op = Op::IMad {
            d: Reg(5),
            a: Reg(1).into(),
            b: Src::Imm(3),
            c: Reg(2).into(),
        };
        assert_eq!(dest_regs(&op), Some((5, 1)));
        let mut srcs = Vec::new();
        src_regs(&op, &mut srcs);
        assert_eq!(srcs, vec![1, 2]);
        let mma = Op::Mma {
            kind: MmaKind::I8_16x16x16,
            acc: Reg(10),
            a_addr: Reg(0),
            b_addr: Reg(1),
        };
        assert_eq!(dest_regs(&mma), Some((10, 8)));
        src_regs(&mma, &mut srcs);
        assert!(
            srcs.contains(&10) && srcs.contains(&17),
            "acc regs are read too"
        );
    }
}
