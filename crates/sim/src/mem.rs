//! Device global memory: a flat byte array with a bump allocator.
//!
//! Addresses are 32-bit (the model exposes at most 4 GiB; the Orin shares
//! LPDDR5 with the CPU, but kernels here only see what they allocate).

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevPtr {
    /// Byte address of the first element.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
}

/// Flat device memory with bump allocation.
#[derive(Debug)]
pub struct GlobalMem {
    bytes: Vec<u8>,
    next: u32,
}

impl GlobalMem {
    /// Creates a device memory of `capacity` bytes.
    pub fn new(capacity: u32) -> Self {
        Self {
            bytes: vec![0; capacity as usize],
            next: 128, // keep null distinct
        }
    }

    /// Allocates `len` bytes aligned to 128 (one cache line).
    ///
    /// # Panics
    /// Panics when out of device memory.
    pub fn alloc(&mut self, len: u32) -> DevPtr {
        let addr = (self.next + 127) & !127;
        let end = addr
            .checked_add(len)
            .unwrap_or_else(|| panic!("device OOM: alloc {len} at {addr}"));
        assert!(
            (end as usize) <= self.bytes.len(),
            "device OOM: {end} > {}",
            self.bytes.len()
        );
        self.next = end;
        DevPtr { addr, len }
    }

    /// Resets the allocator and zeroes memory (between experiments).
    pub fn reset(&mut self) {
        self.bytes.fill(0);
        self.next = 128;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.next
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.bytes[addr as usize] = v;
    }

    /// Reads a little-endian u32 (unaligned allowed).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let i = addr as usize;
        u32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("4-byte device read"))
    }

    /// Writes a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Bulk host-to-device copy.
    pub fn copy_from_host(&mut self, ptr: DevPtr, data: &[u8]) {
        assert!(
            data.len() <= ptr.len as usize,
            "copy larger than allocation"
        );
        self.bytes[ptr.addr as usize..ptr.addr as usize + data.len()].copy_from_slice(data);
    }

    /// Bulk device-to-host copy.
    pub fn copy_to_host(&self, ptr: DevPtr) -> Vec<u8> {
        self.bytes[ptr.addr as usize..(ptr.addr + ptr.len) as usize].to_vec()
    }

    // --- typed helpers used by kernel drivers ---

    /// Uploads a slice of `i8`.
    pub fn upload_i8(&mut self, data: &[i8]) -> DevPtr {
        let ptr = self.alloc(data.len() as u32);
        let bytes: Vec<u8> = data.iter().map(|&x| x as u8).collect();
        self.copy_from_host(ptr, &bytes);
        ptr
    }

    /// Uploads a slice of `u32` (little-endian).
    pub fn upload_u32(&mut self, data: &[u32]) -> DevPtr {
        let ptr = self.alloc((data.len() * 4) as u32);
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.copy_from_host(ptr, &bytes);
        ptr
    }

    /// Uploads a slice of `f32` (bit patterns).
    pub fn upload_f32(&mut self, data: &[f32]) -> DevPtr {
        let as_u32: Vec<u32> = data.iter().map(|x| x.to_bits()).collect();
        self.upload_u32(&as_u32)
    }

    /// Uploads a slice of `i32`.
    pub fn upload_i32(&mut self, data: &[i32]) -> DevPtr {
        let as_u32: Vec<u32> = data.iter().map(|&x| x as u32).collect();
        self.upload_u32(&as_u32)
    }

    /// Downloads `n` little-endian `u32`s from `ptr`.
    pub fn download_u32(&self, ptr: DevPtr, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(ptr.addr + (i * 4) as u32))
            .collect()
    }

    /// Downloads `n` `i32`s.
    pub fn download_i32(&self, ptr: DevPtr, n: usize) -> Vec<i32> {
        self.download_u32(ptr, n)
            .into_iter()
            .map(|x| x as i32)
            .collect()
    }

    /// Downloads `n` `f32`s.
    pub fn download_f32(&self, ptr: DevPtr, n: usize) -> Vec<f32> {
        self.download_u32(ptr, n)
            .into_iter()
            .map(f32::from_bits)
            .collect()
    }

    /// Downloads `n` `i8`s.
    pub fn download_i8(&self, ptr: DevPtr, n: usize) -> Vec<i8> {
        (0..n)
            .map(|i| self.read_u8(ptr.addr + i as u32) as i8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_monotonic() {
        let mut m = GlobalMem::new(1 << 20);
        let a = m.alloc(100);
        let b = m.alloc(4);
        assert_eq!(a.addr % 128, 0);
        assert_eq!(b.addr % 128, 0);
        assert!(b.addr >= a.addr + 100);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn oom_panics() {
        let mut m = GlobalMem::new(1024);
        let _ = m.alloc(2048);
    }

    #[test]
    fn u32_round_trip_little_endian() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(16);
        m.write_u32(p.addr, 0xDEADBEEF);
        assert_eq!(m.read_u32(p.addr), 0xDEADBEEF);
        assert_eq!(m.read_u8(p.addr), 0xEF);
        assert_eq!(m.read_u8(p.addr + 3), 0xDE);
    }

    #[test]
    fn typed_upload_download() {
        let mut m = GlobalMem::new(1 << 16);
        let p8 = m.upload_i8(&[-1, 2, -3]);
        assert_eq!(m.download_i8(p8, 3), vec![-1, 2, -3]);
        let p32 = m.upload_i32(&[i32::MIN, 0, 7]);
        assert_eq!(m.download_i32(p32, 3), vec![i32::MIN, 0, 7]);
        let pf = m.upload_f32(&[1.5, -0.25]);
        assert_eq!(m.download_f32(pf, 2), vec![1.5, -0.25]);
    }

    #[test]
    fn reset_zeroes_and_reclaims() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(256);
        m.write_u32(p.addr, 42);
        m.reset();
        assert_eq!(m.used(), 128);
        let q = m.alloc(4);
        assert_eq!(m.read_u32(q.addr), 0);
    }

    #[test]
    #[should_panic(expected = "copy larger")]
    fn oversized_copy_panics() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(4);
        m.copy_from_host(p, &[0u8; 8]);
    }
}
