//! Device global memory: a flat byte array with a bump allocator.
//!
//! Addresses are 32-bit (the model exposes at most 4 GiB; the Orin shares
//! LPDDR5 with the CPU, but kernels here only see what they allocate).

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevPtr {
    /// Byte address of the first element.
    pub addr: u32,
    /// Length in bytes.
    pub len: u32,
}

/// Flat device memory with bump allocation.
#[derive(Debug)]
pub struct GlobalMem {
    bytes: Vec<u8>,
    next: u32,
}

impl GlobalMem {
    /// Creates a device memory of `capacity` bytes.
    pub fn new(capacity: u32) -> Self {
        Self {
            bytes: vec![0; capacity as usize],
            next: 128, // keep null distinct
        }
    }

    /// Allocates `len` bytes aligned to 128 (one cache line).
    ///
    /// # Panics
    /// Panics when out of device memory.
    pub fn alloc(&mut self, len: u32) -> DevPtr {
        let addr = (self.next + 127) & !127;
        let end = addr
            .checked_add(len)
            .unwrap_or_else(|| panic!("device OOM: alloc {len} at {addr}"));
        assert!(
            (end as usize) <= self.bytes.len(),
            "device OOM: {end} > {}",
            self.bytes.len()
        );
        self.next = end;
        DevPtr { addr, len }
    }

    /// Resets the allocator and zeroes memory (between experiments).
    pub fn reset(&mut self) {
        self.bytes.fill(0);
        self.next = 128;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.next
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.bytes[addr as usize] = v;
    }

    /// Reads a little-endian u32 (unaligned allowed).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let i = addr as usize;
        u32::from_le_bytes(self.bytes[i..i + 4].try_into().expect("4-byte device read"))
    }

    /// Writes a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Contiguous read-only view of `len` bytes at `addr` (bulk LSU path).
    ///
    /// # Panics
    /// Panics when the range leaves device memory — the same construction
    /// bug the per-byte accessors would hit at some lane.
    #[inline]
    pub fn slice(&self, addr: u32, len: u32) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len as usize]
    }

    /// Contiguous mutable view of `len` bytes at `addr` (bulk LSU path).
    #[inline]
    pub fn slice_mut(&mut self, addr: u32, len: u32) -> &mut [u8] {
        &mut self.bytes[addr as usize..addr as usize + len as usize]
    }

    /// Bulk host-to-device copy.
    pub fn copy_from_host(&mut self, ptr: DevPtr, data: &[u8]) {
        assert!(
            data.len() <= ptr.len as usize,
            "copy larger than allocation"
        );
        self.bytes[ptr.addr as usize..ptr.addr as usize + data.len()].copy_from_slice(data);
    }

    /// Bulk device-to-host copy.
    pub fn copy_to_host(&self, ptr: DevPtr) -> Vec<u8> {
        self.bytes[ptr.addr as usize..(ptr.addr + ptr.len) as usize].to_vec()
    }

    // --- typed helpers used by kernel drivers ---

    /// Uploads a slice of `i8`.
    pub fn upload_i8(&mut self, data: &[i8]) -> DevPtr {
        let ptr = self.alloc(data.len() as u32);
        let bytes: Vec<u8> = data.iter().map(|&x| x as u8).collect();
        self.copy_from_host(ptr, &bytes);
        ptr
    }

    /// Uploads a slice of `u32` (little-endian).
    pub fn upload_u32(&mut self, data: &[u32]) -> DevPtr {
        let ptr = self.alloc((data.len() * 4) as u32);
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.copy_from_host(ptr, &bytes);
        ptr
    }

    /// Uploads a slice of `f32` (bit patterns).
    pub fn upload_f32(&mut self, data: &[f32]) -> DevPtr {
        let as_u32: Vec<u32> = data.iter().map(|x| x.to_bits()).collect();
        self.upload_u32(&as_u32)
    }

    /// Uploads a slice of `i32`.
    pub fn upload_i32(&mut self, data: &[i32]) -> DevPtr {
        let as_u32: Vec<u32> = data.iter().map(|&x| x as u32).collect();
        self.upload_u32(&as_u32)
    }

    /// Downloads `n` little-endian `u32`s from `ptr`.
    pub fn download_u32(&self, ptr: DevPtr, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(ptr.addr + (i * 4) as u32))
            .collect()
    }

    /// Downloads `n` `i32`s.
    pub fn download_i32(&self, ptr: DevPtr, n: usize) -> Vec<i32> {
        self.download_u32(ptr, n)
            .into_iter()
            .map(|x| x as i32)
            .collect()
    }

    /// Downloads `n` `f32`s.
    pub fn download_f32(&self, ptr: DevPtr, n: usize) -> Vec<f32> {
        self.download_u32(ptr, n)
            .into_iter()
            .map(f32::from_bits)
            .collect()
    }

    /// Downloads `n` `i8`s.
    pub fn download_i8(&self, ptr: DevPtr, n: usize) -> Vec<i8> {
        (0..n)
            .map(|i| self.read_u8(ptr.addr + i as u32) as i8)
            .collect()
    }
}

/// One buffered store of the parallel compute phase, at its original
/// granularity (the commit replay preserves width and program order).
#[derive(Debug, Clone, Copy)]
enum StoreVal {
    /// A single byte.
    Byte(u8),
    /// A little-endian 32-bit word.
    Word(u32),
}

/// Pending-store overlay for the parallel compute phase.
///
/// During a parallel cycle every SM executes against the device-memory
/// image from the start of the cycle plus its *own* stores of that cycle
/// (same-SM store-to-load forwarding). The overlay keeps those stores
/// twice: a program-order log, replayed wholesale by [`StoreOverlay::commit`]
/// during the serial drain (so final device bytes are exactly what
/// in-order per-byte application would produce), and a byte-granular hash
/// map giving O(1) read-back — replacing the O(writes) linear scan the
/// per-byte buffer needed. Stores are logged at their original width
/// (word stores stay one entry, not four), and a dirty address range lets
/// the coarsened LSU paths prove non-overlap without touching the map.
#[derive(Debug)]
pub struct StoreOverlay {
    /// `(address, value)` in program order.
    log: Vec<(u32, StoreVal)>,
    /// Byte-granular current value, for same-cycle load forwarding.
    map: std::collections::HashMap<u32, u8>,
    /// Dirty byte-address range `[lo, hi)` (empty when `lo >= hi`).
    lo: u32,
    hi: u32,
}

impl Default for StoreOverlay {
    fn default() -> Self {
        Self {
            log: Vec::new(),
            map: std::collections::HashMap::new(),
            lo: u32::MAX,
            hi: 0,
        }
    }
}

impl StoreOverlay {
    /// True when no stores are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Number of buffered store entries (at original granularity).
    pub fn len(&self) -> usize {
        self.log.len()
    }

    #[inline]
    fn widen(&mut self, addr: u32, len: u32) {
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr + len);
    }

    /// Buffers one byte store.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.log.push((addr, StoreVal::Byte(v)));
        self.map.insert(addr, v);
        self.widen(addr, 1);
    }

    /// Buffers one word store as a single entry.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.log.push((addr, StoreVal::Word(v)));
        for (i, b) in v.to_le_bytes().into_iter().enumerate() {
            self.map.insert(addr + i as u32, b);
        }
        self.widen(addr, 4);
    }

    /// The buffered value of `addr`, if any store covered it.
    #[inline]
    pub fn get(&self, addr: u32) -> Option<u8> {
        if addr < self.lo || addr >= self.hi {
            return None;
        }
        self.map.get(&addr).copied()
    }

    /// True when `[addr, addr + len)` *may* intersect a buffered store
    /// (range-conservative: a hit means "fall back to byte reads", never
    /// "wrong data").
    #[inline]
    pub fn overlaps(&self, addr: u32, len: u32) -> bool {
        self.lo < self.hi && addr < self.hi && addr.saturating_add(len) > self.lo
    }

    /// Replays the log into `gmem` in program order and clears the
    /// overlay. Final bytes are identical to applying every store
    /// byte-by-byte in issue order: entries are replayed in that order and
    /// each writes exactly the bytes its store wrote.
    pub fn commit(&mut self, gmem: &mut GlobalMem) {
        for &(addr, v) in &self.log {
            match v {
                StoreVal::Byte(b) => gmem.write_u8(addr, b),
                StoreVal::Word(wv) => gmem.write_u32(addr, wv),
            }
        }
        self.clear();
    }

    /// Drops all buffered stores.
    pub fn clear(&mut self) {
        self.log.clear();
        self.map.clear();
        self.lo = u32::MAX;
        self.hi = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_monotonic() {
        let mut m = GlobalMem::new(1 << 20);
        let a = m.alloc(100);
        let b = m.alloc(4);
        assert_eq!(a.addr % 128, 0);
        assert_eq!(b.addr % 128, 0);
        assert!(b.addr >= a.addr + 100);
    }

    #[test]
    #[should_panic(expected = "device OOM")]
    fn oom_panics() {
        let mut m = GlobalMem::new(1024);
        let _ = m.alloc(2048);
    }

    #[test]
    fn u32_round_trip_little_endian() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(16);
        m.write_u32(p.addr, 0xDEADBEEF);
        assert_eq!(m.read_u32(p.addr), 0xDEADBEEF);
        assert_eq!(m.read_u8(p.addr), 0xEF);
        assert_eq!(m.read_u8(p.addr + 3), 0xDE);
    }

    #[test]
    fn typed_upload_download() {
        let mut m = GlobalMem::new(1 << 16);
        let p8 = m.upload_i8(&[-1, 2, -3]);
        assert_eq!(m.download_i8(p8, 3), vec![-1, 2, -3]);
        let p32 = m.upload_i32(&[i32::MIN, 0, 7]);
        assert_eq!(m.download_i32(p32, 3), vec![i32::MIN, 0, 7]);
        let pf = m.upload_f32(&[1.5, -0.25]);
        assert_eq!(m.download_f32(pf, 2), vec![1.5, -0.25]);
    }

    #[test]
    fn reset_zeroes_and_reclaims() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(256);
        m.write_u32(p.addr, 42);
        m.reset();
        assert_eq!(m.used(), 128);
        let q = m.alloc(4);
        assert_eq!(m.read_u32(q.addr), 0);
    }

    #[test]
    #[should_panic(expected = "copy larger")]
    fn oversized_copy_panics() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(4);
        m.copy_from_host(p, &[0u8; 8]);
    }

    #[test]
    fn slices_view_the_same_bytes() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(16);
        m.write_u32(p.addr + 4, 0x0403_0201);
        assert_eq!(m.slice(p.addr + 4, 4), &[1, 2, 3, 4]);
        m.slice_mut(p.addr, 2).copy_from_slice(&[9, 8]);
        assert_eq!(m.read_u8(p.addr), 9);
        assert_eq!(m.read_u8(p.addr + 1), 8);
    }

    #[test]
    fn overlay_forwards_and_commits_in_order() {
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(64);
        m.write_u32(p.addr, 0xAAAA_AAAA);
        let mut ov = StoreOverlay::default();
        assert!(ov.is_empty());
        ov.write_u32(p.addr, 0x0403_0201);
        ov.write_u8(p.addr + 1, 0xFF); // later byte store wins over the word
        assert_eq!(ov.len(), 2, "word store stays a single entry");
        assert_eq!(ov.get(p.addr), Some(0x01));
        assert_eq!(ov.get(p.addr + 1), Some(0xFF));
        assert_eq!(ov.get(p.addr + 4), None);
        ov.commit(&mut m);
        assert!(ov.is_empty());
        assert_eq!(m.read_u32(p.addr), 0x0403_FF01);
        // Committed overlay forwards nothing.
        assert_eq!(ov.get(p.addr), None);
    }

    #[test]
    fn overlay_write_after_byte_keeps_word_bytes() {
        // Reverse order: a word store after a byte store overwrites it.
        let mut m = GlobalMem::new(4096);
        let p = m.alloc(8);
        let mut ov = StoreOverlay::default();
        ov.write_u8(p.addr + 2, 0x7E);
        ov.write_u32(p.addr, 0x0403_0201);
        assert_eq!(ov.get(p.addr + 2), Some(0x03));
        ov.commit(&mut m);
        assert_eq!(m.read_u32(p.addr), 0x0403_0201);
    }

    #[test]
    fn overlay_overlap_is_range_conservative() {
        let mut ov = StoreOverlay::default();
        assert!(!ov.overlaps(0, 4096));
        ov.write_u32(1000, 7);
        assert!(ov.overlaps(1000, 1));
        assert!(ov.overlaps(1003, 4));
        assert!(ov.overlaps(996, 8));
        assert!(!ov.overlaps(1004, 4));
        assert!(!ov.overlaps(0, 1000));
        ov.clear();
        assert!(!ov.overlaps(1000, 4));
    }
}
