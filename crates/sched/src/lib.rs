//! # vitbit-sched: static instruction scheduling over emitted kernels
//!
//! The kernel builders in `vitbit-kernels` emit straight-line programs in
//! whatever order the generator found convenient; the sub-partition issue
//! slot — the bottleneck the paper co-schedules around — is left to fend for
//! itself. This crate closes the ROADMAP item: a static analysis and
//! optimization pass over [`vitbit_sim::Program`] that
//!
//! 1. builds a full per-basic-block dependence graph (RAW/WAR/WAW over
//!    registers and predicates, memory edges refined by the decoder's
//!    [`vitbit_sim::AddrClass`] hints with a conservative may-alias
//!    fallback, control instructions as hard fences) — [`deps`];
//! 2. list-schedules independent INT, FP and LSU instructions against a
//!    per-warp scoreboard cost model, preferring pipe alternation so
//!    staggered warps find dual-issue partners — [`list`];
//! 3. measures liveness and register pressure per program point —
//!    [`pressure`];
//! 4. optionally hoists loop-invariant loads out of counted loops —
//!    [`hoist`] (off in the serving engine: it changes the dynamic
//!    instruction count).
//!
//! The pass is **fail-closed** at two layers. [`validate_reorder`] proves
//! every emitted schedule is a fence-pinned, dependence-respecting per-block
//! permutation of the input; the serving engine additionally re-proves
//! scheduled programs with `vitbit-verify` and falls back to the unscheduled
//! program on any rejection. [`schedule_program`] itself only returns a
//! schedule when the cost model predicts a strict cycle improvement — "no
//! change" is always representable as `None`.

#![warn(clippy::unwrap_used)]

pub mod deps;
pub mod hoist;
pub mod list;
pub mod pressure;
mod validate;

pub use deps::BlockGraph;
pub use hoist::hoist_invariant_loads;
pub use pressure::{pressure_report, PressureReport};
pub use validate::validate_reorder;

use vitbit_sim::Program;

/// A successful scheduling pass over one program.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// The rescheduled program (same name, length and register footprint).
    pub program: Program,
    /// Modelled co-resident issue makespan of the original program
    /// (summed over blocks; [`list::CO_WARPS`] warps per sub-partition).
    pub est_before: u64,
    /// Modelled co-resident issue makespan of the scheduled program.
    pub est_after: u64,
    /// Blocks whose order actually changed.
    pub blocks_changed: usize,
}

/// Schedules `p`, returning `None` when no block can be strictly improved
/// under the cost model (callers then keep the original program — the
/// "never worse" contract is structural, not aspirational).
///
/// The returned program is self-validated with [`validate_reorder`] before
/// it leaves this function; a validation failure — which would indicate a
/// scheduler bug — also returns `None` rather than a broken program.
pub fn schedule_program(p: &Program) -> Option<SchedOutcome> {
    let dec = p.decoded();
    let mut new_ops = p.ops.clone();
    let mut est_before = 0u64;
    let mut est_after = 0u64;
    let mut blocks_changed = 0usize;
    for blk in &dec.blocks {
        let s = blk.start as usize;
        let e = blk.end as usize;
        let g = deps::BlockGraph::build(&p.ops[s..e], &dec.mops[s..e]);
        let orig: Vec<usize> = (0..e - s).collect();
        let before = list::co_resident_makespan(&g, &orig, list::CO_WARPS);
        est_before += before;
        let order = list::schedule(&g);
        if order.len() != e - s {
            // Defensive: a truncated schedule means the graph was cyclic,
            // which cannot happen — keep the original block.
            est_after += before;
            continue;
        }
        // Adoption is judged under the co-resident model: the list
        // scheduler optimizes a lone warp's critical path, but a reorder
        // only goes live if it also wins when [`list::CO_WARPS`] staggered
        // copies share the sub-partition's dual-issue slot. A schedule
        // that trades cross-warp pipe overlap for single-warp slack is
        // declined here.
        let after = list::co_resident_makespan(&g, &order, list::CO_WARPS);
        if after < before
            && list::makespan(&g, &order) <= list::makespan(&g, &orig)
            && list::co_resident_makespan(&g, &order, 2 * list::CO_WARPS)
                <= list::co_resident_makespan(&g, &orig, 2 * list::CO_WARPS)
            && order != orig
        {
            for (k, &src) in order.iter().enumerate() {
                new_ops[s + k] = p.ops[s + src].clone();
            }
            est_after += after;
            blocks_changed += 1;
        } else {
            est_after += before;
        }
    }
    if blocks_changed == 0 || est_after >= est_before {
        return None;
    }
    let candidate = Program::from_raw(new_ops, p.nregs, p.npreds, p.name.clone());
    if validate_reorder(p, &candidate).is_err() {
        return None;
    }
    Some(SchedOutcome {
        program: candidate,
        est_before,
        est_after,
        blocks_changed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{Op, ProgramBuilder, Reg, Src};

    /// Two interleavable dependence chains in one block: the pass must find
    /// an improvement, and the result must round-trip the validator.
    #[test]
    fn schedules_interleavable_block() {
        let r = |n| Reg(n);
        let mut ops = Vec::new();
        for base in [0u8, 8, 16] {
            ops.push(Op::Mov {
                d: r(base),
                s: Src::Imm(1),
            });
            for k in 0..3u8 {
                ops.push(Op::IAdd {
                    d: r(base + k + 1),
                    a: r(base + k).into(),
                    b: Src::Imm(1),
                });
            }
        }
        ops.push(Op::Exit);
        let p = Program::from_raw(ops, 32, 1, "chains");
        let out = schedule_program(&p).expect("chains should schedule");
        assert!(out.est_after < out.est_before);
        assert_eq!(out.program.ops.len(), p.ops.len());
        assert_eq!(out.program.name, p.name);
        assert!(validate_reorder(&p, &out.program).is_ok());
        // The order really changed.
        assert_ne!(out.program.ops, p.ops);
    }

    /// A pure dependence chain has no slack: the pass must decline.
    #[test]
    fn declines_unimprovable_program() {
        let r = |n| Reg(n);
        let mut b = ProgramBuilder::new("chain");
        let _ = b.alloc_n(4);
        b.mov(r(0), Src::Imm(1));
        b.iadd(r(1), r(0).into(), Src::Imm(1));
        b.iadd(r(2), r(1).into(), Src::Imm(1));
        b.iadd(r(3), r(2).into(), Src::Imm(1));
        b.exit();
        let p = b.build();
        assert!(schedule_program(&p).is_none());
    }

    /// Determinism: scheduling the same program twice yields byte-identical
    /// instruction streams (the plan cache and persisted plans rely on it).
    #[test]
    fn scheduling_is_deterministic() {
        let r = |n| Reg(n);
        let mut ops = Vec::new();
        for base in [0u8, 4, 8, 12] {
            ops.push(Op::Mov {
                d: r(base),
                s: Src::Imm(u32::from(base)),
            });
            ops.push(Op::IAdd {
                d: r(base + 1),
                a: r(base).into(),
                b: Src::Imm(1),
            });
        }
        ops.push(Op::Exit);
        let p = Program::from_raw(ops, 32, 1, "det");
        let a = schedule_program(&p).expect("schedulable");
        let b = schedule_program(&p).expect("schedulable");
        assert_eq!(a.program.ops, b.program.ops);
        assert_eq!(a.est_after, b.est_after);
    }
}
