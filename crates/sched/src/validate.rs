//! Structural legality check for scheduled programs.
//!
//! [`validate_reorder`] proves that `candidate` is a semantics-preserving
//! reorder of `original`: same instruction multiset per basic block, control
//! instructions pinned in place, and the candidate order topological with
//! respect to the original block's dependence graph. It is the first half of
//! the fail-closed gate (the second is a full `vitbit-verify` re-proof); an
//! illegal reorder — a RAW swap, a load hoisted across a barrier, an
//! instruction migrated between blocks — is rejected here deterministically.

use crate::deps::BlockGraph;
use vitbit_sim::decoded::CTRL_PIPE;
use vitbit_sim::Program;

/// Checks that `candidate` is a legal per-block reorder of `original`.
///
/// On success the two programs are architecturally equivalent: every warp
/// computes bit-identical register, predicate and memory states at each
/// block boundary, and issues the same number of instructions.
pub fn validate_reorder(original: &Program, candidate: &Program) -> Result<(), String> {
    if original.ops.len() != candidate.ops.len() {
        return Err(format!(
            "instruction count changed: {} -> {}",
            original.ops.len(),
            candidate.ops.len()
        ));
    }
    if original.nregs != candidate.nregs || original.npreds != candidate.npreds {
        return Err("register-file footprint changed".to_string());
    }
    let dec = original.decoded();
    for (bi, blk) in dec.blocks.iter().enumerate() {
        let s = blk.start as usize;
        let e = blk.end as usize;
        let n = e - s;
        // Match each candidate instruction to the earliest unmatched equal
        // instruction of the original block. Earliest-match keeps equal
        // instructions in their original relative order, which is always
        // legal when any legal matching exists.
        let mut used = vec![false; n];
        let mut perm = Vec::with_capacity(n); // candidate position -> original offset
        for k in 0..n {
            let cop = &candidate.ops[s + k];
            let Some(m) = (0..n).find(|&i| !used[i] && &original.ops[s + i] == cop) else {
                return Err(format!(
                    "block {bi} ({s}..{e}): instruction at {} is not a permutation \
                     of the original block: {cop:?}",
                    s + k
                ));
            };
            used[m] = true;
            perm.push(m);
        }
        // Control instructions (branches, barriers, exits, nops) are fences
        // and must not move; this also pins every block terminator.
        for (k, &m) in perm.iter().enumerate() {
            if dec.mops[s + m].pipe == CTRL_PIPE && m != k {
                return Err(format!(
                    "block {bi}: control instruction moved from {} to {}",
                    s + m,
                    s + k
                ));
            }
        }
        // The permutation must respect every dependence edge.
        let mut pos = vec![0usize; n];
        for (k, &m) in perm.iter().enumerate() {
            pos[m] = k;
        }
        let g = BlockGraph::build(&original.ops[s..e], &dec.mops[s..e]);
        for i in 0..n {
            for &(j, _) in &g.succs[i] {
                if pos[j as usize] <= pos[i] {
                    return Err(format!(
                        "block {bi}: dependence violated, instruction {} must \
                         issue after {} but was placed before it",
                        s + j as usize,
                        s + i
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{Op, Program, Reg, Src};

    fn prog(ops: Vec<Op>) -> Program {
        Program::from_raw(ops, 16, 2, "t")
    }

    fn swapped(p: &Program, i: usize, j: usize) -> Program {
        let mut ops = p.ops.clone();
        ops.swap(i, j);
        Program::from_raw(ops, p.nregs, p.npreds, p.name.clone())
    }

    fn base() -> Program {
        let r = |n| Reg(n);
        prog(vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            }, // 0
            Op::IAdd {
                d: r(1),
                a: r(0).into(),
                b: Src::Imm(2),
            }, // 1: RAW on 0
            Op::Mov {
                d: r(2),
                s: Src::Imm(3),
            }, // 2: independent
            Op::Bar, // 3
            Op::Mov {
                d: r(3),
                s: Src::Imm(4),
            }, // 4
            Op::Exit, // 5
        ])
    }

    #[test]
    fn identity_and_legal_reorders_pass() {
        let p = base();
        assert!(validate_reorder(&p, &p).is_ok());
        // 1 and 2 are independent: swapping them is legal.
        assert!(validate_reorder(&p, &swapped(&p, 1, 2)).is_ok());
    }

    #[test]
    fn raw_swap_is_rejected() {
        let p = base();
        let err = validate_reorder(&p, &swapped(&p, 0, 1)).unwrap_err();
        assert!(err.contains("dependence violated"), "{err}");
    }

    #[test]
    fn crossing_a_barrier_is_rejected() {
        let p = base();
        // Moving op 2 after the barrier (into the next block).
        let mut ops = p.ops.clone();
        let m = ops.remove(2);
        ops.insert(4, m);
        let cand = Program::from_raw(ops, p.nregs, p.npreds, p.name.clone());
        assert!(validate_reorder(&p, &cand).is_err());
    }

    #[test]
    fn moving_the_barrier_is_rejected() {
        let p = base();
        let err = validate_reorder(&p, &swapped(&p, 2, 3)).unwrap_err();
        // Either the fence-pin or the permutation check may fire first;
        // both reject.
        assert!(!err.is_empty());
    }

    #[test]
    fn foreign_instruction_is_rejected() {
        let p = base();
        let mut ops = p.ops.clone();
        ops[2] = Op::Mov {
            d: Reg(9),
            s: Src::Imm(99),
        };
        let cand = Program::from_raw(ops, p.nregs, p.npreds, p.name.clone());
        let err = validate_reorder(&p, &cand).unwrap_err();
        assert!(err.contains("not a permutation"), "{err}");
    }

    #[test]
    fn length_change_is_rejected() {
        let p = base();
        let mut ops = p.ops.clone();
        ops.push(Op::Nop);
        let cand = Program::from_raw(ops, p.nregs, p.npreds, p.name.clone());
        assert!(validate_reorder(&p, &cand).is_err());
    }
}
