//! Per-basic-block dependence graphs over [`Op`] streams.
//!
//! The graph is the single source of truth for both the list scheduler and
//! the legality validator: an edge `i -> j` means the instruction at block
//! offset `j` must issue strictly after the one at offset `i`, with a weight
//! giving the minimum issue-cycle separation the SM's scoreboard enforces.
//!
//! Edge classes:
//!
//! * **RAW / WAW on registers and predicates** — weight = the producer's
//!   result latency, mirroring the `reg_ready`/`pred_ready` scoreboard in
//!   `vitbit_sim::sm`. Reads that fall inside an instruction's destination
//!   range are already subsumed by the WAW rule (exactly as the decoder
//!   drops them from [`MicroOp::srcs`]), so using the decoded source list
//!   plus the destination range reproduces the simulator's constraint set
//!   bit for bit.
//! * **WAR** — weight 1. A warp issues at most one instruction per cycle and
//!   operands are read at issue, so any strictly-later issue is safe.
//! * **Memory** — between two accesses of the same space (global or shared)
//!   where at least one is a store, weight 1, unless the pair is *provably
//!   lane-disjoint* via the decoder's [`AddrClass`] hints (same unmodified
//!   address register, equal known lane stride, non-overlapping per-lane
//!   byte intervals across all 32x32 lane pairs). Anything the analysis
//!   cannot prove falls back to a conservative may-alias edge. Global
//!   accesses are additionally *chained in program order* regardless of
//!   aliasing: the warp's global access sequence drives L1 LRU state and
//!   DRAM queue interleaving, which no static cost model here can see, so
//!   the scheduler slides global accesses against compute but never past
//!   each other.
//! * **Fences** — every control instruction (branch, barrier, exit, nop) is
//!   ordered against every other instruction in the block, weight 1. Block
//!   boundaries themselves (labels, barriers) are never crossed because the
//!   scheduler only permutes within a block.

use vitbit_sim::decoded::{MicroOp, CTRL_PIPE, NO_PRED};
use vitbit_sim::{AddrClass, MemWidth, Op};

/// Result latencies and issue occupancies mirroring
/// `OrinConfig::jetson_agx_orin()`. The pass is static, so these are fixed
/// model constants: a mismatch against a custom `OrinConfig` can only make
/// the cost estimate less sharp, never the reorder illegal.
const ALU_LATENCY: u32 = 4;
const TC_LATENCY: u32 = 16;
const TC_OCCUPANCY: u32 = 4;
const SFU_LATENCY: u32 = 12;
const SFU_OCCUPANCY: u32 = 8;
const SMEM_LATENCY: u32 = 24;
/// Global loads are modelled at DRAM-miss cost, not the L1 hit latency
/// (28): a streaming GEMM's working set does not fit the SM-private L1,
/// and `l1 + l2 + dram` on the Orin config is ~420 cycles before
/// queueing. Modelling the optimistic hit latency makes the scheduler
/// interleave consumers between loads to "hide" 28 cycles — which stalls
/// the in-order warp at the first consumer and serializes the DRAM
/// requests the original clustered order had pipelined. A pessimistic
/// load latency makes the critical-path priority hoist loads instead,
/// preserving (or improving) memory-level parallelism.
const GLOBAL_LATENCY: u32 = 420;
const LSU_LINE_OCCUPANCY: u32 = 2;

/// Which memory space an instruction touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Space {
    Global,
    Shared,
}

/// Memory behaviour of one instruction, for edge construction.
struct MemRef {
    space: Space,
    store: bool,
    /// `(address register, byte offset, bytes per lane)` when the access has
    /// a single analyzable address operand; `None` forces may-alias.
    addr: Option<(u8, i32, i64)>,
}

fn mem_ref(op: &Op) -> Option<MemRef> {
    let bytes = |w: &MemWidth| match w {
        MemWidth::B8S | MemWidth::B8U => 1i64,
        MemWidth::B32 => 4,
    };
    match op {
        Op::Ldg { addr, off, w, .. } => Some(MemRef {
            space: Space::Global,
            store: false,
            addr: Some((addr.0, *off, bytes(w))),
        }),
        Op::LdgV4 { .. } => Some(MemRef {
            space: Space::Global,
            store: false,
            addr: None,
        }),
        Op::Stg {
            addr, off, v: _, w, ..
        } => Some(MemRef {
            space: Space::Global,
            store: true,
            addr: Some((addr.0, *off, bytes(w))),
        }),
        Op::Lds { addr, off, w, .. } => Some(MemRef {
            space: Space::Shared,
            store: false,
            addr: Some((addr.0, *off, bytes(w))),
        }),
        Op::Sts { addr, off, v: _, w } => Some(MemRef {
            space: Space::Shared,
            store: true,
            addr: Some((addr.0, *off, bytes(w))),
        }),
        // An MMA reads its A/B tiles from shared memory through two address
        // registers: treat it as an unanalyzable shared-space load.
        Op::Mma { .. } => Some(MemRef {
            space: Space::Shared,
            store: false,
            addr: None,
        }),
        _ => None,
    }
}

/// Result latency charged on RAW/WAW edges out of block offset `i`.
fn latency(op: &Op, mop: &MicroOp) -> u32 {
    match mop.pipe {
        0 | 1 => ALU_LATENCY,
        2 => TC_LATENCY,
        3 => SFU_LATENCY,
        4 => match op {
            Op::Lds { .. } => SMEM_LATENCY,
            Op::Ldg { .. } | Op::LdgV4 { .. } => GLOBAL_LATENCY,
            _ => 1,
        },
        _ => 1,
    }
}

/// Issue-to-issue pipe occupancy charged by the cost model.
fn occupancy(mop: &MicroOp) -> u32 {
    match mop.pipe {
        0 | 1 => 1,
        2 => TC_OCCUPANCY,
        3 => SFU_OCCUPANCY,
        4 => match mop.addr_class {
            // Coalesced or broadcast: one 128-B line per warp access.
            AddrClass::Uniform | AddrClass::Stride1 | AddrClass::Stride4 => LSU_LINE_OCCUPANCY,
            _ => 4 * LSU_LINE_OCCUPANCY,
        },
        _ => 1,
    }
}

/// Can lane `l` of access 1 overlap lane `m` of access 2, for any of the
/// 32x32 lane pairs? Both accesses read `addr + stride*lane + off` with the
/// same base value and lane stride.
fn lanes_overlap(stride: i64, off1: i64, b1: i64, off2: i64, b2: i64) -> bool {
    let d = off2 - off1;
    if stride == 0 {
        return -b2 < d && d < b1;
    }
    // Overlap iff some t = l - m in [-31, 31] satisfies d-b1 < stride*t < d+b2.
    (-31..=31).any(|t| {
        let v = stride * t;
        d - b1 < v && v < d + b2
    })
}

/// Dependence graph of one basic block. Offsets are block-relative.
pub struct BlockGraph {
    /// Instruction count.
    pub n: usize,
    /// Pipe code per instruction ([`MicroOp::pipe`] encoding).
    pub pipe: Vec<u8>,
    /// Cost-model result latency per instruction.
    pub lat: Vec<u32>,
    /// Cost-model pipe occupancy per instruction.
    pub occ: Vec<u32>,
    /// Forward edges: `succs[i]` holds `(j, weight)`.
    pub succs: Vec<Vec<(u32, u32)>>,
    /// Incoming edge count per instruction (for topological traversal).
    pub n_preds: Vec<u32>,
}

impl BlockGraph {
    /// Builds the graph for one block; `ops` and `mops` are the block's
    /// slices (same length, same indexing).
    pub fn build(ops: &[Op], mops: &[MicroOp]) -> BlockGraph {
        let n = ops.len();
        let mut g = BlockGraph {
            n,
            pipe: mops.iter().map(|m| m.pipe).collect(),
            lat: ops.iter().zip(mops).map(|(o, m)| latency(o, m)).collect(),
            occ: mops.iter().map(occupancy).collect(),
            succs: vec![Vec::new(); n],
            n_preds: vec![0; n],
        };
        // Scoreboard state per register/predicate: last writer and the
        // readers since that write.
        let mut reg_writer: Vec<Option<u32>> = vec![None; 256];
        let mut reg_readers: Vec<Vec<u32>> = vec![Vec::new(); 256];
        let mut pred_writer: Vec<Option<u32>> = vec![None; 256];
        let mut pred_readers: Vec<Vec<u32>> = vec![Vec::new(); 256];
        // All write positions per register, for the address-stability check.
        let mut write_positions: Vec<Vec<u32>> = vec![Vec::new(); 256];
        // Earlier memory accesses in the block.
        let mut mem_ops: Vec<(u32, MemRef)> = Vec::new();
        let mut last_fence: Option<u32> = None;

        for (j, (op, mop)) in ops.iter().zip(mops).enumerate() {
            let j32 = j as u32;
            // Register reads (destination-range reads are subsumed by WAW).
            for s in 0..mop.n_src as usize {
                let r = mop.srcs[s] as usize;
                if let Some(i) = reg_writer[r] {
                    g.add_edge(i, j32, g.lat[i as usize]);
                }
                reg_readers[r].push(j32);
            }
            if mop.src_pred != NO_PRED {
                let p = mop.src_pred as usize;
                if let Some(i) = pred_writer[p] {
                    g.add_edge(i, j32, g.lat[i as usize]);
                }
                pred_readers[p].push(j32);
            }
            // Register writes: WAW against the previous writer, WAR against
            // readers since it.
            for r in
                u16::from(mop.dest_first)..u16::from(mop.dest_first) + u16::from(mop.dest_count)
            {
                let r = r as usize;
                if let Some(i) = reg_writer[r] {
                    g.add_edge(i, j32, g.lat[i as usize]);
                }
                for &i in &reg_readers[r] {
                    g.add_edge(i, j32, 1);
                }
                reg_writer[r] = Some(j32);
                reg_readers[r].clear();
                write_positions[r].push(j32);
            }
            if mop.dest_pred != NO_PRED {
                let p = mop.dest_pred as usize;
                if let Some(i) = pred_writer[p] {
                    g.add_edge(i, j32, g.lat[i as usize]);
                }
                for &i in &pred_readers[p] {
                    g.add_edge(i, j32, 1);
                }
                pred_writer[p] = Some(j32);
                pred_readers[p].clear();
            }
            // Memory ordering.
            let mut pin = false;
            if let Some(mr) = mem_ref(op) {
                // Global accesses are pinned: ordered against everything
                // before them (below), and everything after orders against
                // them (via `last_fence`). The warp's position in the
                // global access stream decides L1 hit patterns and DRAM
                // queue interleaving across co-resident warps, which no
                // static cost model here can see — so the scheduler
                // reorders compute *between* global accesses but never
                // moves compute across one, and never moves the accesses
                // themselves.
                pin = mr.space == Space::Global;
                for (i, prev) in &mem_ops {
                    // Global pairs are already ordered by the pinning.
                    if prev.space != mr.space
                        || prev.space == Space::Global
                        || !(prev.store || mr.store)
                    {
                        continue;
                    }
                    if disjoint(prev, &mr, *i, j32, mops, &write_positions) {
                        continue;
                    }
                    g.add_edge(*i, j32, 1);
                }
                mem_ops.push((j32, mr));
            }
            // Fences (control instructions and pinned global accesses):
            // total order against everything else in the block.
            if mop.pipe == CTRL_PIPE || pin {
                for i in 0..j32 {
                    g.add_edge(i, j32, 1);
                }
                last_fence = Some(j32);
            } else if let Some(f) = last_fence {
                g.add_edge(f, j32, 1);
            }
        }
        g
    }

    fn add_edge(&mut self, i: u32, j: u32, w: u32) {
        debug_assert!(i < j, "dependence edges must point forward");
        self.succs[i as usize].push((j, w));
        self.n_preds[j as usize] += 1;
    }
}

/// Are the two accesses provably lane-disjoint? `i < j` are the block
/// offsets (for the address-register stability check).
fn disjoint(
    a: &MemRef,
    b: &MemRef,
    i: u32,
    j: u32,
    mops: &[MicroOp],
    write_positions: &[Vec<u32>],
) -> bool {
    let (Some((ra, offa, ba)), Some((rb, offb, bb))) = (a.addr, b.addr) else {
        return false;
    };
    if ra != rb {
        // Different registers may hold the same address; no claim.
        return false;
    }
    // Same register: the two accesses see the same base value only if no
    // instruction in [i, j) writes it (including i itself).
    let stable = write_positions[ra as usize]
        .iter()
        .all(|&w| w < i || w >= j);
    if !stable {
        return false;
    }
    let stride = match (mops[i as usize].addr_class, mops[j as usize].addr_class) {
        (AddrClass::Uniform, AddrClass::Uniform) => 0i64,
        (AddrClass::Stride1, AddrClass::Stride1) => 1,
        (AddrClass::Stride4, AddrClass::Stride4) => 4,
        _ => return false,
    };
    !lanes_overlap(stride, i64::from(offa), ba, i64::from(offb), bb)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{DecodedProgram, ICmp, MemWidth, Pred, Reg, Src};

    fn graph(ops: &[Op]) -> BlockGraph {
        let dec = DecodedProgram::decode(ops);
        assert_eq!(dec.blocks.len(), 1, "test programs must be one block");
        BlockGraph::build(ops, &dec.mops)
    }

    fn has_edge(g: &BlockGraph, i: usize, j: usize) -> bool {
        g.succs[i].iter().any(|&(s, _)| s as usize == j)
    }

    #[test]
    fn raw_war_waw_edges() {
        let r = |n| Reg(n);
        let ops = vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            }, // 0: writes r0
            Op::IAdd {
                d: r(1),
                a: r(0).into(),
                b: Src::Imm(2),
            }, // 1: RAW on r0
            Op::Mov {
                d: r(0),
                s: Src::Imm(3),
            }, // 2: WAW vs 0, WAR vs 1
            Op::Mov {
                d: r(2),
                s: Src::Imm(4),
            }, // 3: independent
        ];
        let g = graph(&ops);
        assert!(has_edge(&g, 0, 1), "RAW");
        assert!(has_edge(&g, 0, 2), "WAW");
        assert!(has_edge(&g, 1, 2), "WAR");
        assert!(!has_edge(&g, 0, 3) && !has_edge(&g, 1, 3) && !has_edge(&g, 2, 3));
        // RAW carries the ALU latency, WAR only the issue-order cycle.
        let raw_w = g.succs[0].iter().find(|&&(s, _)| s == 1).unwrap().1;
        let war_w = g.succs[1].iter().find(|&&(s, _)| s == 2).unwrap().1;
        assert_eq!(raw_w, ALU_LATENCY);
        assert_eq!(war_w, 1);
    }

    #[test]
    fn accumulator_reads_order_through_waw() {
        // IAdd r0, r0, 1 twice: srcs are empty (subsumed) but the WAW edge
        // still orders them with full latency.
        let ops = vec![
            Op::IAdd {
                d: Reg(0),
                a: Reg(0).into(),
                b: Src::Imm(1),
            },
            Op::IAdd {
                d: Reg(0),
                a: Reg(0).into(),
                b: Src::Imm(1),
            },
        ];
        let g = graph(&ops);
        let w = g.succs[0].iter().find(|&&(s, _)| s == 1).unwrap().1;
        assert_eq!(w, ALU_LATENCY);
    }

    #[test]
    fn predicate_edges() {
        let ops = vec![
            Op::ISetP {
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(2),
                cmp: ICmp::Lt,
            },
            Op::Sel {
                d: Reg(0),
                p: Pred(0),
                a: Src::Imm(1),
                b: Src::Imm(0),
            },
            Op::ISetP {
                p: Pred(0),
                a: Src::Imm(3),
                b: Src::Imm(4),
                cmp: ICmp::Lt,
            },
        ];
        let g = graph(&ops);
        assert!(has_edge(&g, 0, 1), "pred RAW");
        assert!(has_edge(&g, 0, 2), "pred WAW");
        assert!(has_edge(&g, 1, 2), "pred WAR");
    }

    #[test]
    fn shared_loads_do_not_order_but_global_loads_chain() {
        // Shared loads: no store, no edge — free to reorder.
        let ops = vec![
            Op::Lds {
                d: Reg(1),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B32,
            },
            Op::Lds {
                d: Reg(2),
                addr: Reg(0),
                off: 4,
                w: MemWidth::B32,
            },
        ];
        let g = graph(&ops);
        assert!(!has_edge(&g, 0, 1));
        // Global loads: chained in program order (L1/DRAM state is order
        // sensitive even when the lanes are disjoint).
        let ops = vec![
            Op::Ldg {
                d: Reg(1),
                addr: Reg(0),
                off: 0,
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            Op::Ldg {
                d: Reg(2),
                addr: Reg(0),
                off: 4,
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
        ];
        let g = graph(&ops);
        assert!(has_edge(&g, 0, 1));
    }

    #[test]
    fn store_load_may_alias_is_ordered_and_spaces_are_independent() {
        let ops = vec![
            Op::Stg {
                addr: Reg(0),
                off: 0,
                v: Src::Imm(1),
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            // Different address register: may alias, must stay ordered.
            Op::Ldg {
                d: Reg(2),
                addr: Reg(1),
                off: 0,
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            // Shared space is independent of global.
            Op::Lds {
                d: Reg(3),
                addr: Reg(1),
                off: 0,
                w: MemWidth::B32,
            },
        ];
        let g = graph(&ops);
        assert!(has_edge(&g, 0, 1), "global store vs global load");
        assert!(!has_edge(&g, 0, 2), "global store vs shared load");
    }

    #[test]
    fn same_register_disjoint_offsets_skip_the_edge() {
        use vitbit_sim::SReg;
        // Shared memory exercises the lane analysis (global pairs are
        // always chained in program order). Build through the program
        // builder so the address class is known.
        let mut p = vitbit_sim::ProgramBuilder::new("t");
        let tid = p.alloc();
        let base = p.alloc();
        let a4 = p.alloc();
        let v = p.alloc();
        p.sreg(tid, SReg::Tid);
        p.ldc(base, 0);
        p.imad(a4, tid.into(), Src::Imm(4), base.into()); // Stride4
        p.sts(a4, 0, Src::Imm(7), MemWidth::B32);
        p.lds(v, a4, 0, MemWidth::B32); // same word: must stay ordered
        p.lds(v, a4, 128 * 32, MemWidth::B32); // beyond every lane: disjoint
        p.exit();
        let prog = p.build();
        let dec = prog.decoded();
        assert_eq!(dec.blocks.len(), 1);
        let g = BlockGraph::build(&prog.ops, &dec.mops);
        let st = 3; // sts index
        assert!(has_edge(&g, st, 4), "overlapping word must stay ordered");
        assert!(
            !has_edge(&g, st, 5),
            "provably disjoint lanes drop the edge"
        );
    }

    #[test]
    fn lane_overlap_math() {
        // Uniform: plain interval intersection.
        assert!(lanes_overlap(0, 0, 4, 3, 4));
        assert!(!lanes_overlap(0, 0, 4, 4, 4));
        // Stride 4, word accesses: offsets 4 apart land on neighbour lanes.
        assert!(lanes_overlap(4, 0, 4, 4, 4));
        // 32 lanes * stride 4 = 128 bytes: beyond that no lane pair meets.
        assert!(lanes_overlap(4, 0, 4, 124, 4));
        assert!(!lanes_overlap(4, 0, 4, 128, 4));
    }

    #[test]
    fn fences_order_everything() {
        let ops = vec![
            Op::Mov {
                d: Reg(0),
                s: Src::Imm(1),
            },
            Op::Nop,
            Op::Mov {
                d: Reg(1),
                s: Src::Imm(2),
            },
        ];
        let g = graph(&ops);
        assert!(has_edge(&g, 0, 1));
        assert!(has_edge(&g, 1, 2));
    }
}
