//! Liveness and register-pressure analysis over whole programs.
//!
//! A classic backward dataflow over the CFG: per-block `use`/`def` summaries,
//! worklist fixpoint for live-out sets, then an in-block backward walk
//! recording the live register count at every program point. Guarded loads
//! (`Ldg` with a guard predicate) define their destination only when the
//! guard holds, so they never *kill* it; `Mma` reads its accumulators
//! (`exec::src_regs` reports the full read set, unlike the scoreboard's
//! subsumed view).

use vitbit_sim::decoded::{BasicBlock, BlockEnd};
use vitbit_sim::{exec, Op, Program};

/// 256-register live set.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct RegSet([u64; 4]);

impl RegSet {
    fn insert(&mut self, r: u8) {
        self.0[usize::from(r >> 6)] |= 1u64 << (r & 63);
    }
    fn remove(&mut self, r: u8) {
        self.0[usize::from(r >> 6)] &= !(1u64 << (r & 63));
    }
    fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(other.0) {
            let n = *a | b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
    fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }
}

/// Per-program register-pressure report.
#[derive(Debug, Clone)]
pub struct PressureReport {
    /// Program name.
    pub name: String,
    /// Static instruction count.
    pub ops: usize,
    /// Declared register footprint (`Program::nregs`).
    pub nregs: u8,
    /// Peak simultaneously-live registers over all program points.
    pub max_live_regs: u32,
    /// Peak simultaneously-live predicates.
    pub max_live_preds: u32,
    /// `histogram[l]` = number of program points with exactly `l` live
    /// registers. Length is `max_live_regs + 1`.
    pub histogram: Vec<u64>,
}

impl PressureReport {
    /// Mean live registers per program point.
    pub fn mean_live(&self) -> f64 {
        let points: u64 = self.histogram.iter().sum();
        if points == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(l, &c)| l as u64 * c)
            .sum();
        weighted as f64 / points as f64
    }

    /// Compact single-line JSON rendering (`verify-kernels --pressure`).
    pub fn to_json(&self) -> String {
        let hist = self
            .histogram
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"name\":\"{}\",\"ops\":{},\"nregs\":{},\"max_live_regs\":{},\
             \"max_live_preds\":{},\"mean_live\":{:.2},\"histogram\":[{}]}}",
            json_escape(&self.name),
            self.ops,
            self.nregs,
            self.max_live_regs,
            self.max_live_preds,
            self.mean_live(),
            hist
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Does `op` unconditionally overwrite its whole destination range? Guarded
/// loads write only where the guard predicate holds.
fn kills_dest(op: &Op) -> bool {
    !matches!(op, Op::Ldg { guard: Some(_), .. })
}

/// CFG successor blocks of `blocks[b]` (branch targets resolved through the
/// instruction-to-block map).
fn successors(p: &Program, blocks: &[BasicBlock], b: usize, out: &mut Vec<usize>) {
    out.clear();
    let blk = &blocks[b];
    match blk.end_kind {
        BlockEnd::Exit => {}
        BlockEnd::Branch => {
            if let Op::Bra { target, pred, .. } = &p.ops[blk.end as usize - 1] {
                out.push(p.decoded().mops[*target].block as usize);
                if pred.is_some() && b + 1 < blocks.len() {
                    out.push(b + 1);
                }
            }
        }
        BlockEnd::FallThrough | BlockEnd::Barrier => {
            if b + 1 < blocks.len() {
                out.push(b + 1);
            }
        }
    }
}

/// Computes the liveness/register-pressure report for `p`.
pub fn pressure_report(p: &Program) -> PressureReport {
    let dec = p.decoded();
    let nb = dec.blocks.len();
    let mut scratch: Vec<u8> = Vec::with_capacity(16);

    // Per-block upward-exposed uses and kills, for registers and predicates.
    let mut uses = vec![RegSet::default(); nb];
    let mut defs = vec![RegSet::default(); nb];
    let mut pred_uses = vec![0u32; nb];
    let mut pred_defs = vec![0u32; nb];
    for (b, blk) in dec.blocks.iter().enumerate() {
        for op in p.ops[blk.start as usize..blk.end as usize].iter().rev() {
            if let Some((first, count)) = exec::dest_regs(op) {
                if kills_dest(op) {
                    for r in first..first.saturating_add(count) {
                        defs[b].insert(r);
                        uses[b].remove(r);
                    }
                }
            }
            if let Some(pd) = exec::dest_pred(op) {
                pred_defs[b] |= 1 << pd;
                pred_uses[b] &= !(1u32 << pd);
            }
            exec::src_regs(op, &mut scratch);
            for &r in &scratch {
                uses[b].insert(r);
            }
            exec::src_preds(op, &mut scratch);
            for &pr in &scratch {
                pred_uses[b] |= 1 << pr;
            }
        }
    }

    // Backward worklist fixpoint: live_in[b] = uses ∪ (live_out \ defs).
    let mut live_in = vec![RegSet::default(); nb];
    let mut live_out = vec![RegSet::default(); nb];
    let mut pred_in = vec![0u32; nb];
    let mut pred_out = vec![0u32; nb];
    let mut work: Vec<usize> = (0..nb).rev().collect();
    let mut succs: Vec<usize> = Vec::with_capacity(2);
    // Predecessor map for requeueing.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for b in 0..nb {
        successors(p, &dec.blocks, b, &mut succs);
        for &s in &succs {
            preds[s].push(b);
        }
    }
    while let Some(b) = work.pop() {
        successors(p, &dec.blocks, b, &mut succs);
        let mut out = RegSet::default();
        let mut pout = 0u32;
        for &s in &succs {
            out.union_with(&live_in[s]);
            pout |= pred_in[s];
        }
        live_out[b] = out;
        pred_out[b] = pout;
        let mut inn = out;
        for w in 0..4 {
            inn.0[w] &= !defs[b].0[w];
        }
        inn.union_with(&uses[b]);
        let pinn = (pout & !pred_defs[b]) | pred_uses[b];
        if inn != live_in[b] || pinn != pred_in[b] {
            live_in[b] = inn;
            pred_in[b] = pinn;
            for &q in &preds[b] {
                if !work.contains(&q) {
                    work.push(q);
                }
            }
        }
    }

    // In-block backward walk, recording pressure at every program point.
    let mut max_regs = 0u32;
    let mut max_preds = 0u32;
    let mut counts: Vec<u64> = Vec::new();
    let mut record = |live: &RegSet, pl: u32, counts: &mut Vec<u64>| {
        let c = live.count();
        max_regs = max_regs.max(c);
        max_preds = max_preds.max(pl.count_ones());
        if counts.len() <= c as usize {
            counts.resize(c as usize + 1, 0);
        }
        counts[c as usize] += 1;
    };
    for (b, blk) in dec.blocks.iter().enumerate() {
        let mut live = live_out[b];
        let mut pl = pred_out[b];
        record(&live, pl, &mut counts);
        for op in p.ops[blk.start as usize..blk.end as usize].iter().rev() {
            if let Some((first, count)) = exec::dest_regs(op) {
                if kills_dest(op) {
                    for r in first..first.saturating_add(count) {
                        live.remove(r);
                    }
                }
            }
            if let Some(pd) = exec::dest_pred(op) {
                pl &= !(1u32 << pd);
            }
            exec::src_regs(op, &mut scratch);
            for &r in &scratch {
                live.insert(r);
            }
            exec::src_preds(op, &mut scratch);
            for &pr in &scratch {
                pl |= 1 << pr;
            }
            record(&live, pl, &mut counts);
        }
    }

    PressureReport {
        name: p.name.clone(),
        ops: p.ops.len(),
        nregs: p.nregs,
        max_live_regs: max_regs,
        max_live_preds: max_preds,
        histogram: counts,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{ICmp, MemWidth, Op, Reg, Src};

    fn prog(ops: Vec<Op>) -> Program {
        Program::from_raw(ops, 32, 4, "pressure-test")
    }

    #[test]
    fn straight_line_pressure() {
        let r = |n| Reg(n);
        // r0 and r1 are simultaneously live between the movs and the add.
        let p = prog(vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            },
            Op::Mov {
                d: r(1),
                s: Src::Imm(2),
            },
            Op::IAdd {
                d: r(2),
                a: r(0).into(),
                b: r(1).into(),
            },
            Op::Stg {
                addr: r(2),
                off: 0,
                v: r(2).into(),
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            Op::Exit,
        ]);
        let rep = pressure_report(&p);
        assert_eq!(rep.max_live_regs, 2);
        assert_eq!(rep.ops, 5);
        let points: u64 = rep.histogram.iter().sum();
        // One point per instruction plus one block-exit point per block.
        assert_eq!(points as usize, p.ops.len() + p.decoded().blocks.len());
    }

    #[test]
    fn loop_keeps_carried_values_live() {
        let mut b = vitbit_sim::ProgramBuilder::new("loop");
        let i = b.alloc();
        let acc = b.alloc();
        let pr = b.alloc_pred();
        b.mov(i, Src::Imm(0));
        b.mov(acc, Src::Imm(0));
        let top = b.label_here("top");
        b.iadd(acc, acc.into(), i.into());
        b.iadd(i, i.into(), Src::Imm(1));
        b.isetp(pr, i.into(), Src::Imm(10), ICmp::Lt);
        b.bra_if(top, pr, true);
        // acc still read after the loop.
        b.stg(acc, 0, acc.into(), MemWidth::B32);
        b.exit();
        let p = b.build();
        let rep = pressure_report(&p);
        // i and acc are both live across the back edge.
        assert!(rep.max_live_regs >= 2, "{rep:?}");
        assert_eq!(rep.max_live_preds, 1);
    }

    #[test]
    fn guarded_load_does_not_kill() {
        let r = |n| Reg(n);
        use vitbit_sim::Pred;
        // r1 holds a value that survives when the guard is false, so it must
        // stay live above the guarded load.
        let p = prog(vec![
            Op::Mov {
                d: r(1),
                s: Src::Imm(5),
            },
            Op::Ldg {
                d: r(1),
                addr: r(0),
                off: 0,
                w: MemWidth::B32,
                guard: Some(Pred(0)),
                stream: false,
            },
            Op::Stg {
                addr: r(0),
                off: 0,
                v: r(1).into(),
                w: MemWidth::B32,
                guard: None,
                stream: false,
            },
            Op::Exit,
        ]);
        let rep = pressure_report(&p);
        // r0 and r1 live together above the load (r1 thanks to no-kill).
        assert!(rep.max_live_regs >= 2, "{rep:?}");
    }

    #[test]
    fn json_shape() {
        let p = prog(vec![Op::Exit]);
        let rep = pressure_report(&p);
        let j = rep.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"name\":\"pressure-test\""), "{j}");
        assert!(j.contains("\"histogram\":["), "{j}");
    }
}
