//! Loop-invariant load hoisting.
//!
//! Moves provably invariant `Ldg`/`Lds` instructions out of single-block
//! counted loops into the loop preheader, so the load issues once instead of
//! once per iteration. Legality here is deliberately stricter than the
//! in-block reorder pass, because a hoisted load crosses iterations *and*
//! observes memory other warps may write:
//!
//! * the loop is a single block whose conditional back edge is the only
//!   branch targeting its head;
//! * the address register (and guard predicate, if any) is never written in
//!   the loop;
//! * the destination register is written only by the load and never read at
//!   an earlier position in the loop body (first-iteration reads would
//!   otherwise see the pre-loop value);
//! * **no store to the load's memory space anywhere in the program** — every
//!   warp runs the same program, so this rules out another warp racing the
//!   loop's loads no matter how warps interleave.
//!
//! Hoisting changes the dynamic instruction count (that is the point), so
//! the serving engine keeps it off; it is exercised by the library tests and
//! available to offline kernel tuning.

use vitbit_sim::decoded::BlockEnd;
use vitbit_sim::{exec, Op, Program};

/// Hoists loop-invariant loads; `None` when nothing qualifies.
///
/// The returned program has the same instruction *count* (loads move, they
/// are not duplicated): each hoisted load sits immediately before its loop
/// head and the back edge is retargeted past it.
pub fn hoist_invariant_loads(p: &Program) -> Option<Program> {
    let dec = p.decoded();
    let any_stg = p.ops.iter().any(|o| matches!(o, Op::Stg { .. }));
    let any_sts = p.ops.iter().any(|o| matches!(o, Op::Sts { .. }));
    let mut new_ops = p.ops.clone();
    let mut hoisted_total = 0usize;
    let mut scratch: Vec<u8> = Vec::with_capacity(16);

    for blk in &dec.blocks {
        if blk.end_kind != BlockEnd::Branch {
            continue;
        }
        let s = blk.start as usize;
        let e = blk.end as usize;
        let Op::Bra {
            target,
            pred: Some(_),
            ..
        } = &p.ops[e - 1]
        else {
            continue;
        };
        if *target != s {
            continue; // not a self-loop
        }
        // The back edge must be the only way into the loop head, otherwise
        // entries that bypass the preheader would skip the hoisted loads.
        let other_entry = p
            .ops
            .iter()
            .enumerate()
            .any(|(i, op)| i != e - 1 && matches!(op, Op::Bra { target: t, .. } if *t == s));
        if other_entry {
            continue;
        }

        // Which registers/predicates does the loop write, and how often?
        let mut reg_writes = [0u32; 256];
        let mut pred_written = [false; 256];
        for op in &p.ops[s..e] {
            if let Some((first, count)) = exec::dest_regs(op) {
                for r in first..first.saturating_add(count) {
                    reg_writes[r as usize] += 1;
                }
            }
            if let Some(pd) = exec::dest_pred(op) {
                pred_written[pd as usize] = true;
            }
        }

        // Earliest read position of each register within the loop body.
        let mut first_read = [usize::MAX; 256];
        for q in (s..e).rev() {
            exec::src_regs(&p.ops[q], &mut scratch);
            for &r in &scratch {
                first_read[r as usize] = q;
            }
        }

        let mut hoist: Vec<usize> = Vec::new();
        for q in s..e - 1 {
            let (d, addr, guard) = match &p.ops[q] {
                Op::Ldg { d, addr, guard, .. } if !any_stg => (d.0, addr.0, *guard),
                Op::Lds { d, addr, .. } if !any_sts => (d.0, addr.0, None),
                _ => continue,
            };
            if reg_writes[addr as usize] != 0 {
                continue; // address recomputed in the loop
            }
            if let Some(g) = guard {
                if pred_written[g.0 as usize] {
                    continue;
                }
            }
            if reg_writes[d as usize] != 1 {
                continue; // another writer redefines the destination
            }
            if first_read[d as usize] < q {
                continue; // read before the load: first trip would differ
            }
            hoist.push(q);
        }
        if hoist.is_empty() {
            continue;
        }

        // Rebuild the region: hoisted loads first, the rest in order, and
        // the back edge retargeted past the hoisted prefix.
        let k = hoist.len();
        let mut region: Vec<Op> = Vec::with_capacity(e - s);
        for &q in &hoist {
            region.push(p.ops[q].clone());
        }
        for q in s..e {
            if !hoist.contains(&q) {
                region.push(p.ops[q].clone());
            }
        }
        if let Some(Op::Bra { target, .. }) = region.last_mut() {
            *target = s + k;
        }
        new_ops[s..e].clone_from_slice(&region);
        hoisted_total += k;
    }

    if hoisted_total == 0 {
        return None;
    }
    Some(Program::from_raw(
        new_ops,
        p.nregs,
        p.npreds,
        p.name.clone(),
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{Gpu, ICmp, Kernel, MemWidth, OrinConfig, ProgramBuilder, SReg, Src};

    /// A loop that re-loads a warp-uniform scale factor every iteration and
    /// accumulates it; nothing in the program stores, so the load hoists.
    fn loopy_program() -> Program {
        let mut b = ProgramBuilder::new("hoist-subject");
        let base = b.alloc();
        let scale = b.alloc();
        let acc = b.alloc();
        let i = b.alloc();
        let pr = b.alloc_pred();
        b.ldc(base, 0);
        b.mov(acc, Src::Imm(0));
        b.mov(i, Src::Imm(0));
        let top = b.label_here("top");
        b.ldg(scale, base, 0, MemWidth::B32); // invariant: base never changes
        b.iadd(acc, acc.into(), scale.into());
        b.iadd(i, i.into(), Src::Imm(1));
        b.isetp(pr, i.into(), Src::Imm(8), ICmp::Lt);
        b.bra_if(top, pr, true);
        // The result stays in the register file: a store would (correctly)
        // block hoisting, and the assertions below only need timing stats.
        b.exit();
        b.build()
    }

    #[test]
    fn hoists_invariant_load_and_retargets_back_edge() {
        let p = loopy_program();
        let h = hoist_invariant_loads(&p).expect("load should hoist");
        assert_eq!(h.ops.len(), p.ops.len(), "moved, not duplicated");
        // The load now sits where the loop head used to start.
        let loop_start = 3; // ldc, mov, mov
        assert!(matches!(h.ops[loop_start], Op::Ldg { .. }));
        // The back edge skips it.
        let Some(Op::Bra { target, .. }) = h.ops.iter().rev().find(|o| matches!(o, Op::Bra { .. }))
        else {
            panic!("loop branch disappeared");
        };
        assert_eq!(*target, loop_start + 1);
    }

    #[test]
    fn executes_identically_with_fewer_issues() {
        let p = loopy_program();
        let h = hoist_invariant_loads(&p).expect("load should hoist");
        let run = |prog: Program| {
            let mut gpu = Gpu::new(OrinConfig::test_small(), 1 << 16);
            let ptr = gpu.mem.upload_u32(&[7]);
            let k = Kernel::single("k", prog.into_arc(), 1, 1, 0, vec![ptr.addr]);
            gpu.launch(&k).expect("launch")
        };
        let s0 = run(p);
        let s1 = run(h);
        assert!(
            s1.issued.total() < s0.issued.total(),
            "hoisting must reduce issued instructions ({} !< {})",
            s1.issued.total(),
            s0.issued.total()
        );
    }

    #[test]
    fn store_in_program_blocks_global_hoist() {
        let mut b = ProgramBuilder::new("store-blocks");
        let base = b.alloc();
        let v = b.alloc();
        let i = b.alloc();
        let pr = b.alloc_pred();
        b.ldc(base, 0);
        b.mov(i, Src::Imm(0));
        let top = b.label_here("top");
        b.ldg(v, base, 0, MemWidth::B32);
        b.iadd(i, i.into(), Src::Imm(1));
        b.isetp(pr, i.into(), Src::Imm(4), ICmp::Lt);
        b.bra_if(top, pr, true);
        b.stg(base, 64, v.into(), MemWidth::B32); // any Stg forbids hoisting
        b.exit();
        let p = b.build();
        assert!(hoist_invariant_loads(&p).is_none());
    }

    #[test]
    fn variant_address_blocks_hoist() {
        let mut b = ProgramBuilder::new("variant-addr");
        let tid = b.alloc();
        let ptr = b.alloc();
        let v = b.alloc();
        let i = b.alloc();
        let pr = b.alloc_pred();
        b.sreg(tid, SReg::Tid);
        b.ldc(ptr, 0);
        b.mov(i, Src::Imm(0));
        let top = b.label_here("top");
        b.ldg(v, ptr, 0, MemWidth::B32);
        b.iadd(ptr, ptr.into(), Src::Imm(4)); // pointer advances: variant
        b.iadd(i, i.into(), Src::Imm(1));
        b.isetp(pr, i.into(), Src::Imm(4), ICmp::Lt);
        b.bra_if(top, pr, true);
        b.exit();
        let p = b.build();
        assert!(hoist_invariant_loads(&p).is_none());
    }

    #[test]
    fn read_before_load_blocks_hoist() {
        let mut b = ProgramBuilder::new("read-before");
        let base = b.alloc();
        let v = b.alloc();
        let acc = b.alloc();
        let i = b.alloc();
        let pr = b.alloc_pred();
        b.ldc(base, 0);
        b.mov(v, Src::Imm(1));
        b.mov(acc, Src::Imm(0));
        b.mov(i, Src::Imm(0));
        let top = b.label_here("top");
        b.iadd(acc, acc.into(), v.into()); // reads v before the load
        b.ldg(v, base, 0, MemWidth::B32);
        b.iadd(i, i.into(), Src::Imm(1));
        b.isetp(pr, i.into(), Src::Imm(4), ICmp::Lt);
        b.bra_if(top, pr, true);
        b.exit();
        let p = b.build();
        assert!(hoist_invariant_loads(&p).is_none());
    }
}
