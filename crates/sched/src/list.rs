//! List scheduling and the issue cost models.
//!
//! Two cost models, used for different jobs:
//!
//! * [`makespan`] — a single warp on an in-order sub-partition: one issue
//!   per cycle, dependence edges delay issue by their weight (the
//!   scoreboard latencies from [`crate::deps`]), and each pipe has an
//!   issue-to-issue occupancy. This drives the list scheduler's greedy
//!   choices.
//! * [`co_resident_makespan`] — several copies of the warp sharing one
//!   sub-partition with dual issue to distinct pipes, mirroring the
//!   greedy-then-oldest scheduler in `vitbit_sim::sm`. This is the
//!   *adoption* model: a reorder that shortens a warp's own critical path
//!   by clustering same-pipe instructions can still lose cycles on the
//!   machine, because co-resident warps at nearby PCs then compete for one
//!   pipe and the second issue slot goes idle. Only the multi-warp model
//!   sees that, so [`crate::schedule_program`] requires strict improvement
//!   under it before adopting a schedule.

use crate::deps::BlockGraph;

/// Co-resident warps modelled per sub-partition when judging a schedule.
/// The emitted kernels run 8 warps per block over 4 sub-partitions.
pub const CO_WARPS: usize = 2;

/// Estimated issue makespan (cycles from first to one-past-last issue) of
/// executing the block's instructions in `order`. `order` must be a
/// topological order of `g` (program order always is).
pub fn makespan(g: &BlockGraph, order: &[usize]) -> u64 {
    // `ready[i]` accumulates the earliest admissible issue cycle from the
    // incoming dependence edges as producers issue.
    let mut ready = vec![0u64; g.n];
    let mut pipe_free = [0u64; 8];
    let mut t = 0u64;
    for &i in order {
        let mut e = t.max(ready[i]);
        if let Some(pf) = pipe_free.get(g.pipe[i] as usize) {
            e = e.max(*pf);
        }
        for &(j, w) in &g.succs[i] {
            ready[j as usize] = ready[j as usize].max(e + u64::from(w));
        }
        if let Some(pf) = pipe_free.get_mut(g.pipe[i] as usize) {
            *pf = e + u64::from(g.occ[i]);
        }
        t = e + 1;
    }
    t
}

/// Issue makespan of `warps` concurrent copies of the block sharing one
/// sub-partition: up to two issues per cycle from *different* warps to
/// *distinct* pipes (a pipe's issue-to-issue occupancy blocks the second
/// slot for same-pipe pairs, exactly as in `vitbit_sim::sm`), warp
/// selection greedy-then-oldest, dependence delays tracked per warp.
///
/// All copies start at cycle 0; the pipe-occupancy contention on the first
/// instruction staggers them naturally, the same way the simulator's GTO
/// scheduler does for warps launched together.
pub fn co_resident_makespan(g: &BlockGraph, order: &[usize], warps: usize) -> u64 {
    let n = order.len();
    if n == 0 || warps == 0 {
        return 0;
    }
    // `ready[w * g.n + i]`: earliest issue cycle of instruction `i` in warp
    // `w` from its incoming dependence edges.
    let mut ready = vec![0u64; g.n * warps];
    let mut pos = vec![0usize; warps];
    let mut pipe_free = [0u64; 8];
    let mut greedy = 0usize;
    let mut now = 0u64;
    let mut done = 0usize;
    let total = n * warps;
    while done < total {
        let mut issues = 0usize;
        for t in 0..warps {
            if issues == 2 {
                break;
            }
            let w = (greedy + t) % warps;
            if pos[w] == n {
                continue;
            }
            let i = order[pos[w]];
            let mut e = ready[w * g.n + i];
            if let Some(&pf) = pipe_free.get(g.pipe[i] as usize) {
                e = e.max(pf);
            }
            if e > now {
                continue;
            }
            for &(j, wgt) in &g.succs[i] {
                let slot = w * g.n + j as usize;
                ready[slot] = ready[slot].max(now + u64::from(wgt));
            }
            if let Some(pf) = pipe_free.get_mut(g.pipe[i] as usize) {
                // Occupancy >= 1, so a same-pipe partner can never fill the
                // second slot this cycle.
                *pf = now + u64::from(g.occ[i]);
            }
            pos[w] += 1;
            done += 1;
            if issues == 0 {
                greedy = w;
            }
            issues += 1;
        }
        now += 1;
    }
    now
}

/// Critical-path-first list schedule of the block. Returns a topological
/// order of `g` (block-relative indices). Deterministic: ties break toward
/// pipe alternation (to widen cross-warp dual-issue windows), then the
/// original program order.
pub fn schedule(g: &BlockGraph) -> Vec<usize> {
    let n = g.n;
    // Priority: longest dependence path from the instruction to any sink.
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        for &(j, w) in &g.succs[i] {
            prio[i] = prio[i].max(u64::from(w) + prio[j as usize]);
        }
    }
    let mut preds_left = g.n_preds.clone();
    let mut earliest = vec![0u64; n];
    let mut pipe_free = [0u64; 8];
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut t = 0u64;
    let mut last_pipe = u8::MAX;
    while order.len() < n {
        // Earliest feasible cycle over the ready set.
        let feasible = |i: usize, pf: &[u64; 8]| -> u64 {
            let mut e = earliest[i];
            if let Some(&p) = pf.get(g.pipe[i] as usize) {
                e = e.max(p);
            }
            e
        };
        let min_t = ready
            .iter()
            .map(|&i| feasible(i, &pipe_free))
            .min()
            .unwrap_or(t);
        t = t.max(min_t);
        // Among instructions issueable at `t`, pick by (priority desc,
        // pipe-alternation, original index asc).
        let mut best: Option<(usize, usize)> = None; // (position in ready, idx)
        for (pos, &i) in ready.iter().enumerate() {
            if feasible(i, &pipe_free) > t {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, b)) => {
                    let alt_i = g.pipe[i] != last_pipe;
                    let alt_b = g.pipe[b] != last_pipe;
                    (prio[i], alt_i, std::cmp::Reverse(i)) > (prio[b], alt_b, std::cmp::Reverse(b))
                }
            };
            if better {
                best = Some((pos, i));
            }
        }
        let Some((pos, i)) = best else {
            // Cannot happen (min_t makes at least one ready op feasible),
            // but fail soft rather than loop forever.
            break;
        };
        ready.swap_remove(pos);
        order.push(i);
        for &(j, w) in &g.succs[i] {
            let j = j as usize;
            earliest[j] = earliest[j].max(t + u64::from(w));
            preds_left[j] -= 1;
            if preds_left[j] == 0 {
                ready.push(j);
            }
        }
        if let Some(pf) = pipe_free.get_mut(g.pipe[i] as usize) {
            *pf = t + u64::from(g.occ[i]);
        }
        last_pipe = g.pipe[i];
        t += 1;
    }
    order
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::{DecodedProgram, Op, Reg, Src};

    fn graph(ops: &[Op]) -> BlockGraph {
        let dec = DecodedProgram::decode(ops);
        assert_eq!(dec.blocks.len(), 1);
        BlockGraph::build(ops, &dec.mops)
    }

    fn is_topological(g: &BlockGraph, order: &[usize]) -> bool {
        let mut pos = vec![0usize; g.n];
        for (k, &i) in order.iter().enumerate() {
            pos[i] = k;
        }
        (0..g.n).all(|i| g.succs[i].iter().all(|&(j, _)| pos[j as usize] > pos[i]))
    }

    /// Two interleavable RAW chains: program order serializes each chain
    /// back-to-back (stalling on every link); the scheduler interleaves
    /// them and the modelled makespan drops.
    #[test]
    fn interleaves_independent_chains() {
        let r = |n| Reg(n);
        let chain = |base: u8| {
            vec![
                Op::Mov {
                    d: r(base),
                    s: Src::Imm(1),
                },
                Op::IAdd {
                    d: r(base + 1),
                    a: r(base).into(),
                    b: Src::Imm(1),
                },
                Op::IAdd {
                    d: r(base + 2),
                    a: r(base + 1).into(),
                    b: Src::Imm(1),
                },
                Op::IAdd {
                    d: r(base + 3),
                    a: r(base + 2).into(),
                    b: Src::Imm(1),
                },
            ]
        };
        let mut ops = chain(0);
        ops.extend(chain(8));
        ops.extend(chain(16));
        let g = graph(&ops);
        let orig: Vec<usize> = (0..g.n).collect();
        let sched = schedule(&g);
        assert!(is_topological(&g, &sched));
        let before = makespan(&g, &orig);
        let after = makespan(&g, &sched);
        assert!(
            after < before,
            "interleaving should shrink the makespan ({after} !< {before})"
        );
    }

    /// The co-resident model is sensitive to pipe placement where the
    /// single-warp model is not: four independent ops run in 4 issue
    /// cycles per warp either way, but two warps sharing the dual-issue
    /// slot pair up sooner when the stream alternates INT/FP than when it
    /// clusters each pipe.
    #[test]
    fn co_resident_model_rewards_pipe_alternation() {
        let r = |n| Reg(n);
        let ops = vec![
            Op::IAdd {
                d: r(0),
                a: r(8).into(),
                b: Src::Imm(1),
            },
            Op::IAdd {
                d: r(1),
                a: r(9).into(),
                b: Src::Imm(1),
            },
            Op::FAdd {
                d: r(2),
                a: r(10).into(),
                b: r(10).into(),
            },
            Op::FAdd {
                d: r(3),
                a: r(11).into(),
                b: r(11).into(),
            },
        ];
        let g = graph(&ops);
        let clustered = vec![0, 1, 2, 3]; // int int fp fp
        let alternating = vec![0, 2, 1, 3]; // int fp int fp
        assert_eq!(makespan(&g, &clustered), makespan(&g, &alternating));
        assert!(
            co_resident_makespan(&g, &alternating, 2) < co_resident_makespan(&g, &clustered, 2),
            "alternation must widen the dual-issue window"
        );
    }

    /// A single dependent chain has no slack: scheduling must not claim an
    /// improvement.
    #[test]
    fn pure_chain_has_no_slack() {
        let r = |n| Reg(n);
        let ops = vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            },
            Op::IAdd {
                d: r(1),
                a: r(0).into(),
                b: Src::Imm(1),
            },
            Op::IAdd {
                d: r(2),
                a: r(1).into(),
                b: Src::Imm(1),
            },
        ];
        let g = graph(&ops);
        let orig: Vec<usize> = (0..g.n).collect();
        let sched = schedule(&g);
        assert_eq!(makespan(&g, &sched), makespan(&g, &orig));
    }

    /// The scheduled order respects every edge even under heavy reordering
    /// pressure (mixed pipes, WAR/WAW).
    #[test]
    fn schedule_is_always_topological() {
        let r = |n| Reg(n);
        let ops = vec![
            Op::Mov {
                d: r(0),
                s: Src::Imm(1),
            },
            Op::I2F {
                d: r(1),
                a: r(0).into(),
            },
            Op::FAdd {
                d: r(2),
                a: r(1).into(),
                b: r(1).into(),
            },
            Op::Mov {
                d: r(0),
                s: Src::Imm(2),
            }, // WAW/WAR vs 0/1
            Op::IAdd {
                d: r(3),
                a: r(0).into(),
                b: Src::Imm(3),
            },
            Op::FMul {
                d: r(4),
                a: r(2).into(),
                b: r(2).into(),
            },
        ];
        let g = graph(&ops);
        let sched = schedule(&g);
        assert!(is_topological(&g, &sched));
        let mut sorted = sched.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.n).collect::<Vec<_>>());
    }
}
