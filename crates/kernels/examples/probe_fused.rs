//! Fused-kernel probe: VitBit fused GEMM vs the Tensor-core baseline on
//! the three characteristic ViT shapes, with pipe-busy breakdowns.

use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::gemm::{execute_fused, plan_fused, prepare_fused_b, run_tc, FusedMode};
use vitbit_sim::Gpu;
use vitbit_tensor::gen;

fn main() {
    let mut gpu = Gpu::orin();
    let spec = PackSpec::guarded(6, 6).unwrap();
    for (m, n, k, tag) in [
        (197usize, 768usize, 768usize, "qkv"),
        (197, 64, 197, "attn_v"),
        (197, 3072, 768, "fc1"),
    ] {
        let a = gen::uniform_i8(m, k, -32, 31, 1);
        let b = gen::uniform_i8(k, n, -32, 31, 2);
        gpu.cold_caches();
        let tc = run_tc(&mut gpu, &a, &b).expect("gemm").stats;
        gpu.cold_caches();
        // Plan/execute split: resolve the launch geometry once, stage B,
        // then launch — same cycles as the old one-shot driver.
        let plan = plan_fused(m, k, n, FusedMode::VitBit(spec), CoreRatio::PAPER);
        let staged = prepare_fused_b(&plan, &b, None);
        let vb = execute_fused(&mut gpu, &plan, &a, &b, &staged)
            .expect("gemm")
            .stats;
        println!("{tag:7} {m}x{n}x{k}: TC {:>8} VitBit {:>8} ({:.2}x)  vb busy: tc={:.2} int={:.2} fp={:.2} lsu={:.2}",
            tc.cycles, vb.cycles, tc.cycles as f64 / vb.cycles as f64,
            vb.busy.tensor as f64/(vb.cycles*56) as f64,
            vb.busy.int as f64/(vb.cycles*56) as f64,
            vb.busy.fp as f64/(vb.cycles*56) as f64,
            vb.busy.lsu as f64/(vb.cycles*56) as f64);
    }
}
