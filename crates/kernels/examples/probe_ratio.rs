//! Split-ratio probe: fused VitBit GEMM time across Tensor:CUDA ratios
//! (the measurement behind ablation X2b and the adaptive dispatcher).

use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::CoreRatio;
use vitbit_kernels::gemm::{execute_fused, plan_fused, prepare_fused_b, run_tc, FusedMode};
use vitbit_sim::Gpu;
use vitbit_tensor::gen;

fn main() {
    let mut gpu = Gpu::orin();
    let spec = PackSpec::guarded(6, 6).unwrap();
    for (m, n, k, tag) in [
        (197usize, 768usize, 768usize, "qkv"),
        (197, 3072, 768, "fc1"),
    ] {
        let a = gen::uniform_i8(m, k, -32, 31, 1);
        let b = gen::uniform_i8(k, n, -32, 31, 2);
        gpu.cold_caches();
        let tc = run_tc(&mut gpu, &a, &b).expect("gemm").stats.cycles;
        print!("{tag:4} TC {tc:>7} |");
        for mr in [4u32, 6, 8, 10, 12, 16] {
            gpu.cold_caches();
            // Each ratio is its own plan (the split is part of the plan).
            let plan = plan_fused(
                m,
                k,
                n,
                FusedMode::VitBit(spec),
                CoreRatio { tc: mr, cuda: 1 },
            );
            let staged = prepare_fused_b(&plan, &b, None);
            let vb = execute_fused(&mut gpu, &plan, &a, &b, &staged)
                .expect("gemm")
                .stats
                .cycles;
            print!(" m{mr}: {:>6} ({:.2}x)", vb, tc as f64 / vb as f64);
        }
        println!();
    }
}
