//! Machine-model calibration probe: pipe utilization and memory traffic of
//! the five Section-3.2 study cases on the ViT Linear shape.

use vitbit_core::policy::PackSpec;
use vitbit_kernels::gemm::{run_fc, run_ic, run_ic_fc, run_ic_fc_packed, run_tc};
use vitbit_sim::Gpu;
use vitbit_tensor::gen;

fn main() {
    let mut gpu = Gpu::orin();
    let a = gen::uniform_i8(197, 768, -32, 31, 42);
    let b = gen::uniform_i8(768, 768, -32, 31, 43);
    let spec = PackSpec::guarded(6, 6).unwrap();
    for (name, out) in [
        ("TC", run_tc(&mut gpu, &a, &b).expect("gemm")),
        ("IC", run_ic(&mut gpu, &a, &b).expect("gemm")),
        ("FC", run_fc(&mut gpu, &a, &b).expect("gemm")),
        ("IC+FC", run_ic_fc(&mut gpu, &a, &b).expect("gemm")),
        (
            "IC+FC+P",
            run_ic_fc_packed(&mut gpu, &a, &b, &spec).expect("gemm"),
        ),
    ] {
        let s = &out.stats;
        let cap = s.cycles * 56;
        println!("{name:6} cyc={:>8} int_busy={:>4.2} fp_busy={:>4.2} lsu_busy={:>4.2} tc_busy={:>4.2} ipc={:>5.2} dram={:.1}MB insts: int={} fp={} lsu={}",
            s.cycles,
            s.busy.int as f64/cap as f64, s.busy.fp as f64/cap as f64, s.busy.lsu as f64/cap as f64, s.busy.tensor as f64/cap as f64,
            s.ipc(), s.dram_bytes as f64/1e6,
            s.issued.int, s.issued.fp, s.issued.lsu);
    }
}
