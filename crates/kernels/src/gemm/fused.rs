//! Fused GEMM kernels (paper Algorithm 2's co-scheduling).
//!
//! One heterogeneous launch carries standalone-shaped Tensor-core blocks
//! computing the `B3` columns alongside CUDA blocks whose warps compute
//! `B1` on the INT pipes (optionally packed) and `B2` on the FP pipes; an
//! interleaved dispatch order keeps both classes co-resident on every SM,
//! so every sub-partition has Tensor, INT and FP work simultaneously —
//! the co-scheduling the paper realizes with warp roles inside one block
//! (and Ho et al. \[15\] realize with block-level offload, which this
//! machine model's occupancy accounting favors; warp-level role mixing is
//! still available through [`vitbit_sim::Kernel::fused`] and exercised in
//! tests). Barriers are per role group (named barriers), so Tensor-core
//! staging never blocks CUDA warps.
//!
//! Three modes reproduce Table 3's fused rows:
//!
//! * [`FusedMode::Tacker`] — Tensor cores + INT CUDA cores (no FP path);
//! * [`FusedMode::TcIcFc`] — all three core kinds, no packing;
//! * [`FusedMode::VitBit`] — all three plus register operand packing on the
//!   INT side with the Equation-1 `lanes : 1` INT/FP split.

use super::cache::{pack_weight_share, WeightCtx};
use super::cuda::{
    cuda_gemm_program, pick_k_splits, reduce_slices_f32, reduce_slices_u32, role_args, upload_ops,
    CudaElem, RoleGeom, ARGS_PER_ROLE, CHUNK_COLS,
};
use super::tc::{tc_args, tc_gemm_program, TC_ARGS, TC_N_TILE};
use super::GemmOut;
use crate::shapes::{crop_matrix, pad_matrix, pad_to};
use vitbit_core::correction::BiasCorrection;
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::{eq1_split, CoreRatio};
use vitbit_sim::{Gpu, Kernel};
use vitbit_tensor::Matrix;

/// Which fused-kernel family to launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedMode {
    /// Tensor cores + INT CUDA cores (the Tacker baseline, adapted to
    /// single-kernel fusion exactly as the paper does for fairness).
    Tacker,
    /// Tensor + INT + FP CUDA cores, no packing.
    TcIcFc,
    /// Full VitBit: Tensor + packed INT + FP.
    VitBit(PackSpec),
}

impl FusedMode {
    /// The Tensor:CUDA split ratio the paper's initial study implies for
    /// each method (CUDA-side GEMM time over TC time, rounded): the CUDA
    /// share must shrink when the CUDA path is slower.
    pub fn default_ratio(&self) -> CoreRatio {
        match self {
            FusedMode::Tacker => CoreRatio { tc: 8, cuda: 1 },
            FusedMode::TcIcFc => CoreRatio { tc: 6, cuda: 1 },
            FusedMode::VitBit(_) => CoreRatio::PAPER,
        }
    }

    /// Kernel name for stats.
    pub fn name(&self) -> &'static str {
        match self {
            FusedMode::Tacker => "gemm_tacker",
            FusedMode::TcIcFc => "gemm_tc_ic_fc",
            FusedMode::VitBit(_) => "gemm_vitbit",
        }
    }
}

/// Runs a fused GEMM with the mode's default split ratio.
pub fn run_fused(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>, mode: FusedMode) -> GemmOut {
    run_fused_with_ratio(gpu, a, b, mode, mode.default_ratio())
}

/// Runs a fused GEMM with an explicit Tensor:CUDA column ratio.
///
/// Small problems degenerate gracefully: when the CUDA share would be
/// narrower than one warp chunk, the launch falls back to the plain
/// Tensor-core kernel (the paper's method likewise has nothing to co-run
/// on tiny GEMMs).
///
/// # Panics
/// Panics unless both ratio shares are at least 1 and shapes agree.
pub fn run_fused_with_ratio(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    mode: FusedMode,
    ratio: CoreRatio,
) -> GemmOut {
    run_fused_with_ratio_cached(gpu, a, b, mode, ratio, None)
}

/// [`run_fused_with_ratio`] with an optional packed-weight cache handle:
/// under [`FusedMode::VitBit`] the INT share `B1` of the stationary `B`
/// operand is packed once per (weight, spec, split geometry) and reused
/// across launches (see [`super::cache`]).
///
/// # Panics
/// Panics unless both ratio shares are at least 1 and shapes agree.
pub fn run_fused_with_ratio_cached(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    mode: FusedMode,
    ratio: CoreRatio,
    mut weight: WeightCtx<'_>,
) -> GemmOut {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    assert!(ratio.tc >= 1 && ratio.cuda >= 1, "fused needs both shares");
    let (m, k) = a.shape();
    let n = b.cols();

    // Column split: B = [B1 | B2 | B3].
    let lanes = match mode {
        FusedMode::VitBit(spec) => spec.lanes as usize,
        _ => 1,
    };
    let n3_raw = n * ratio.tc as usize / (ratio.tc + ratio.cuda) as usize;
    let cuda_raw = n - n3_raw;
    if cuda_raw < CHUNK_COLS * 2 {
        // Nothing meaningful to co-schedule.
        return super::tc::run_tc(gpu, a, b);
    }
    let (n1_raw, n2_raw) = match mode {
        FusedMode::Tacker => (cuda_raw, 0),
        _ => eq1_split(cuda_raw, lanes as u32).expect("lanes >= 1"),
    };

    let mp = pad_to(m.max(1), super::cuda::M_PAD);
    let kp = pad_to(k.max(1), super::tc::TC_K_UNIT);
    let n1p = pad_to(n1_raw, CHUNK_COLS * lanes);
    let n2p = if n2_raw == 0 {
        0
    } else {
        pad_to(n2_raw, CHUNK_COLS)
    };
    let n3p = pad_to(n3_raw.max(1), TC_N_TILE);

    let a_pad = pad_matrix(a, mp, kp);
    let b1 = pad_matrix(&b.slice_cols(0, n1_raw), kp, n1p);
    let b2 = pad_matrix(&b.slice_cols(n1_raw, n2_raw), kp, n2p);
    let b3 = pad_matrix(&b.slice_cols(n1_raw + n2_raw, n - n1_raw - n2_raw), kp, n3p);
    // Upload shapes carry extra zero K for pipeline prefetches (the TC
    // role prefetches up to three 32-deep stages ahead).
    let a_up = pad_matrix(&a_pad, mp, kp + 128);
    let b1_up = pad_matrix(&b1, kp + 128, n1p);
    let b2_up = pad_matrix(&b2, kp + 128, n2p);
    let b3_up = pad_matrix(&b3, kp + 128, n3p);

    gpu.mem.reset();
    // TC operands (slab-tiled A, masked-int B3).
    let a_ptr = gpu.mem.upload_i8(&super::tc::tile_a_for_tc(&a_up)).addr;
    let b3_ptr = gpu.mem.upload_i8(b3_up.as_slice()).addr;
    let c3_dev = gpu.mem.alloc((mp * n3p * 4) as u32);
    // INT-side operands.
    let (at1_ptr, b1_ptr, corr) = match mode {
        FusedMode::VitBit(spec) => {
            let pw = pack_weight_share(&mut weight, &spec, &b1_up, 0, n1_raw);
            let corr = BiasCorrection::from_cached_colsum(&spec, &a_pad, &pw.colsum);
            let at = upload_ops::transposed_biased(gpu, &a_up, &spec);
            (
                at,
                gpu.mem.upload_u32(pw.packed.as_slice()).addr,
                Some(corr),
            )
        }
        _ => (
            upload_ops::transposed_i8(gpu, &a_up),
            gpu.mem.upload_i8(b1_up.as_slice()).addr,
            None,
        ),
    };
    // FP-side operands.
    let has_fp = n2p > 0;
    let (at2_ptr, b2_ptr) = if has_fp {
        let af = a_up.map(|x| x as f32);
        let b2f = b2_up.map(|x| x as f32);
        (
            upload_ops::transposed_f32(gpu, &af),
            gpu.mem.upload_f32(b2f.as_slice()).addr,
        )
    } else {
        (0, 0)
    };

    // Block-level heterogeneous grid: standalone-shaped Tensor-core blocks
    // (8 warps, 32-row tiles) plus standalone-shaped CUDA blocks (8 warps:
    // four INT-role + four FP-role, or eight INT for Tacker), interleaved
    // by dispatch order so both classes run simultaneously. Every SM then
    // hosts a mix of TC and CUDA blocks, so every sub-partition keeps its
    // Tensor, INT and FP pipes busy at once — the same co-scheduling effect
    // as warp-level fusion, at the occupancy granularity the machine model
    // favors.
    let tc_blocks = ((n3p / TC_N_TILE) * (mp / 32)) as u32;
    let tc_blocks_x = (n3p / TC_N_TILE) as u32;
    let int_elem = match mode {
        FusedMode::VitBit(spec) => CudaElem::Packed(spec),
        _ => CudaElem::Int,
    };
    let n1_cols_elem = n1p / lanes; // columns in the INT role's element units
    let chunks1 = n1_cols_elem / CHUNK_COLS;
    let chunks2 = n2p / CHUNK_COLS;
    let ks = pick_k_splits(chunks1.min(chunks2.max(1)).max(1), mp / 16, kp);
    let role_warps: u32 = if has_fp { 4 } else { 8 };
    let geom = RoleGeom {
        role_warps,
        row_groups: 1,
        k_splits: ks,
    };
    let cuda_blocks_x = (chunks1.max(chunks2) * ks as usize)
        .div_ceil(role_warps as usize)
        .max(1) as u32;
    let cuda_blocks = cuda_blocks_x * (mp / 16) as u32;

    let c1_dev = gpu.mem.alloc(((mp * n1p * 4 * ks as usize) as u32).max(4));
    let c2_dev = if has_fp {
        Some(gpu.mem.alloc((mp * n2p * 4 * ks as usize) as u32))
    } else {
        None
    };

    let mut args = tc_args(
        a_ptr,
        b3_ptr,
        c3_dev.addr,
        tc_blocks_x,
        kp as u32,
        n3p as u32,
        (mp * 16) as u32,
    );
    args.extend(role_args(
        at1_ptr,
        b1_ptr,
        c1_dev.addr,
        cuda_blocks_x,
        chunks1 as u32,
        kp as u32,
        &int_elem,
        mp as u32,
        n1_cols_elem as u32,
        (n1p * 4) as u32,
        0,
        &geom,
        tc_blocks,
    ));
    let mut programs = vec![
        tc_gemm_program(2, 0).into_arc(),
        cuda_gemm_program(int_elem, geom, TC_ARGS).into_arc(),
    ];
    let mut cuda_roles: Vec<u8> = vec![1; role_warps as usize];
    if has_fp {
        args.extend(role_args(
            at2_ptr,
            b2_ptr,
            c2_dev.expect("fp present").addr,
            cuda_blocks_x,
            chunks2 as u32,
            kp as u32,
            &CudaElem::Fp,
            mp as u32,
            n2p as u32,
            (n2p * 4) as u32,
            role_warps,
            &geom,
            tc_blocks,
        ));
        programs.push(cuda_gemm_program(CudaElem::Fp, geom, TC_ARGS + ARGS_PER_ROLE).into_arc());
        cuda_roles.extend(std::iter::repeat_n(2u8, role_warps as usize));
    } else {
        cuda_roles = vec![1; 8];
    }

    // Interleave dispatch proportionally so CUDA blocks are co-resident
    // with TC blocks throughout the launch.
    let mut order = Vec::with_capacity((tc_blocks + cuda_blocks) as usize);
    {
        let (mut ti, mut ci) = (0u32, 0u32);
        while ti < tc_blocks || ci < cuda_blocks {
            // Keep the dispatched mix at the same ratio as the totals.
            let want_tc =
                (ti + ci + 1) as u64 * tc_blocks as u64 / (tc_blocks + cuda_blocks) as u64;
            if ti < tc_blocks && (ti as u64) < want_tc || ci >= cuda_blocks {
                order.push(ti);
                ti += 1;
            } else {
                order.push(tc_blocks + ci);
                ci += 1;
            }
        }
    }

    let kernel = Kernel::heterogeneous(
        mode.name(),
        programs,
        vec![(tc_blocks, vec![0; 8]), (cuda_blocks, cuda_roles)],
        super::tc::tc_smem_bytes(2),
        args,
    )
    .with_dispatch_order(order);
    let stats = gpu.launch(&kernel);

    // Downloads + reassembly.
    let c1 = {
        let raw = gpu.mem.download_u32(c1_dev, mp * n1p * ks as usize);
        let summed = reduce_slices_u32(&raw, mp * n1p, ks);
        let mut c1 = Matrix::zeros(mp, n1p);
        match &corr {
            Some(corr) => {
                for i in 0..mp {
                    for j in 0..n1p {
                        c1[(i, j)] = corr.apply(u64::from(summed[i * n1p + j]), i, j) as i32;
                    }
                }
            }
            None => {
                for i in 0..mp {
                    for j in 0..n1p {
                        c1[(i, j)] = summed[i * n1p + j] as i32;
                    }
                }
            }
        }
        c1
    };
    let c2 = match c2_dev {
        Some(dev) => {
            let raw = gpu.mem.download_f32(dev, mp * n2p * ks as usize);
            let summed = reduce_slices_f32(&raw, mp * n2p, ks);
            Matrix::from_vec(
                mp,
                n2p,
                summed.into_iter().map(|x| x.round() as i32).collect(),
            )
        }
        None => Matrix::zeros(mp, 0),
    };
    let c3 = Matrix::from_vec(mp, n3p, gpu.mem.download_i32(c3_dev, mp * n3p));
    let c1c = crop_matrix(&c1, m, n1_raw);
    let c2c = crop_matrix(&c2, m, n2_raw);
    let c3c = crop_matrix(&c3, m, n - n1_raw - n2_raw);
    GemmOut {
        c: Matrix::concat_cols(&[&c1c, &c2c, &c3c]),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn int6(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
        gen::uniform_i8(rows, cols, -32, 31, seed)
    }

    #[test]
    fn tacker_matches_reference_and_coschedules() {
        let mut g = gpu();
        let a = int6(24, 32, 1);
        let b = int6(32, 300, 2);
        let out = run_fused(&mut g, &a, &b, FusedMode::Tacker);
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0, "TC warps active");
        assert!(out.stats.int_ops > 0, "IC warps active");
    }

    #[test]
    fn tc_ic_fc_matches_reference_and_uses_all_pipes() {
        let mut g = gpu();
        let a = int6(20, 48, 3);
        let b = int6(48, 640, 4);
        let out = run_fused(&mut g, &a, &b, FusedMode::TcIcFc);
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0);
        assert!(out.stats.fp_ops > 0, "FP role must carry real math");
        assert!(out.stats.tc_ops > 0 && out.stats.int_ops > 0);
    }

    #[test]
    fn vitbit_matches_reference_int6() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(18, 32, 5);
        let b = int6(32, 500, 6);
        let out = run_fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0);
    }

    #[test]
    fn vitbit_matches_reference_int4() {
        let mut g = gpu();
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = gen::uniform_i8(17, 16, -8, 7, 7);
        let b = gen::uniform_i8(16, 320, -8, 7, 8);
        let out = run_fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn explicit_ratio_changes_split() {
        let mut g = gpu();
        let a = int6(16, 16, 9);
        let b = int6(16, 256, 10);
        let r91 = run_fused_with_ratio(
            &mut g,
            &a,
            &b,
            FusedMode::TcIcFc,
            CoreRatio { tc: 9, cuda: 1 },
        );
        let r11 = run_fused_with_ratio(
            &mut g,
            &a,
            &b,
            FusedMode::TcIcFc,
            CoreRatio { tc: 1, cuda: 1 },
        );
        assert_eq!(r91.c, gemm_i8_i32(&a, &b));
        assert_eq!(r11.c, gemm_i8_i32(&a, &b));
        // More TC share => more MMAs issued.
        assert!(r91.stats.issued.tensor > r11.stats.issued.tensor);
    }

    #[test]
    fn odd_shape_fused() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(13, 21, 11);
        let b = int6(21, 97, 12);
        let out = run_fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c.shape(), (13, 97));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }
}
