//! Fused GEMM kernels (paper Algorithm 2's co-scheduling), decomposed into
//! a plan/execute pipeline.
//!
//! One heterogeneous launch carries standalone-shaped Tensor-core blocks
//! computing the `B3` columns alongside CUDA blocks whose warps compute
//! `B1` on the INT pipes (optionally packed) and `B2` on the FP pipes; an
//! interleaved dispatch order keeps both classes co-resident on every SM,
//! so every sub-partition has Tensor, INT and FP work simultaneously —
//! the co-scheduling the paper realizes with warp roles inside one block
//! (and Ho et al. \[15\] realize with block-level offload, which this
//! machine model's occupancy accounting favors; warp-level role mixing is
//! still available through [`vitbit_sim::Kernel::fused`] and exercised in
//! tests). Barriers are per role group (named barriers), so Tensor-core
//! staging never blocks CUDA warps.
//!
//! Three modes reproduce Table 3's fused rows:
//!
//! * [`FusedMode::Tacker`] — Tensor cores + INT CUDA cores (no FP path);
//! * [`FusedMode::TcIcFc`] — all three core kinds, no packing;
//! * [`FusedMode::VitBit`] — all three plus register operand packing on the
//!   INT side with the Equation-1 `lanes : 1` INT/FP split.
//!
//! ## Plan / prepare / execute
//!
//! Every launch decision that does not depend on operand *values* is made
//! once by [`plan_fused`] and captured in a [`FusedPlan`]: the Equation-1
//! column split `B = [B1 | B2 | B3]`, every padded dimension, the grid and
//! block geometry, the role programs and the interleaved dispatch order.
//! [`prepare_fused_b`] then stages the stationary operand's host-side
//! artifacts (packed `B1` via the [`super::cache`], `B2` as `f32`, padded
//! `B3`), and [`execute_fused`] does only the per-input work: pad and
//! upload `A`, upload the staged `B` arrays, launch, and apply the bias
//! correction epilogue. Executing the same plan twice therefore repeats
//! *zero* packing and *zero* policy/ratio computation — the emit-once /
//! execute-many shape of APNN-TC, realized by `vitbit-plan`'s `Engine` on
//! top of these three functions.
//!
//! The historical one-shot drivers ([`run_fused`],
//! [`run_fused_with_ratio`], [`run_fused_with_ratio_cached`]) remain as
//! deprecated thin shims over the pipeline, kept one release for
//! compatibility.

use super::cache::{pack_weight_share, PackedWeight, WeightCtx};
use super::cuda::{
    cuda_gemm_program, pick_k_splits, reduce_slices_f32, reduce_slices_u32, role_args, upload_ops,
    CudaElem, RoleGeom, ARGS_PER_ROLE, CHUNK_COLS,
};
use super::tc::{tc_args, tc_gemm_program, TC_ARGS, TC_N_TILE};
use super::{GemmError, GemmOut};
use crate::shapes::{crop_matrix, pad_matrix, pad_to};
use std::sync::Arc;
use vitbit_core::correction::BiasCorrection;
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::{eq1_split, CoreRatio};
use vitbit_sim::{Gpu, Kernel, Program};
use vitbit_tensor::Matrix;

/// Which fused-kernel family to launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedMode {
    /// Tensor cores + INT CUDA cores (the Tacker baseline, adapted to
    /// single-kernel fusion exactly as the paper does for fairness).
    Tacker,
    /// Tensor + INT + FP CUDA cores, no packing.
    TcIcFc,
    /// Full VitBit: Tensor + packed INT + FP.
    VitBit(PackSpec),
}

impl FusedMode {
    /// The Tensor:CUDA split ratio the paper's initial study implies for
    /// each method (CUDA-side GEMM time over TC time, rounded): the CUDA
    /// share must shrink when the CUDA path is slower.
    pub fn default_ratio(&self) -> CoreRatio {
        match self {
            FusedMode::Tacker => CoreRatio { tc: 8, cuda: 1 },
            FusedMode::TcIcFc => CoreRatio { tc: 6, cuda: 1 },
            FusedMode::VitBit(_) => CoreRatio::PAPER,
        }
    }

    /// Kernel name for stats.
    pub fn name(&self) -> &'static str {
        match self {
            FusedMode::Tacker => "gemm_tacker",
            FusedMode::TcIcFc => "gemm_tc_ic_fc",
            FusedMode::VitBit(_) => "gemm_vitbit",
        }
    }

    /// The packing spec, when this mode packs.
    pub fn spec(&self) -> Option<PackSpec> {
        match self {
            FusedMode::VitBit(spec) => Some(*spec),
            _ => None,
        }
    }
}

/// Fixed per-plan policy-resolution cost, in build work units (covers the
/// split computation, padding arithmetic and grid sizing).
const PLAN_POLICY_UNITS: u64 = 64;

/// The value-independent part of a fused launch: split, padded shapes,
/// grid/block geometry, role programs and the interleaved dispatch order.
/// Built once by [`plan_fused`]; immutable thereafter.
#[derive(Debug, Clone)]
pub struct FusedGeom {
    /// Packing lanes of the INT share (1 when not packing).
    pub lanes: usize,
    /// Raw (uncropped) column count of the INT share `B1`.
    pub n1_raw: usize,
    /// Raw column count of the FP share `B2` (0 for Tacker).
    pub n2_raw: usize,
    /// Padded row count of `A` / the output.
    pub mp: usize,
    /// Padded inner dimension.
    pub kp: usize,
    /// Padded `B1` columns.
    pub n1p: usize,
    /// Padded `B2` columns (0 when no FP share).
    pub n2p: usize,
    /// Padded `B3` (Tensor-core) columns.
    pub n3p: usize,
    /// Whether the launch carries an FP role.
    pub has_fp: bool,
    /// Element kind of the INT role (packed or plain).
    pub int_elem: CudaElem,
    /// INT-role columns in element units (`n1p / lanes`).
    pub n1_cols_elem: usize,
    /// Warp chunks of the INT role.
    pub chunks1: usize,
    /// Warp chunks of the FP role.
    pub chunks2: usize,
    /// CUDA role geometry (warps per role, K splits).
    pub geom: RoleGeom,
    /// Tensor-core blocks in the grid.
    pub tc_blocks: u32,
    /// Tensor-core grid width.
    pub tc_blocks_x: u32,
    /// CUDA grid width.
    pub cuda_blocks_x: u32,
    /// CUDA blocks in the grid.
    pub cuda_blocks: u32,
    /// Role programs (TC, INT, optionally FP) — emitted once per plan.
    pub programs: Vec<Arc<Program>>,
    /// Warp-role vector of the CUDA block class.
    pub cuda_roles: Vec<u8>,
    /// Proportionally interleaved block dispatch order.
    pub dispatch: Vec<u32>,
    /// Shared-memory bytes per block.
    pub smem: u32,
}

/// Body of a [`FusedPlan`].
#[derive(Debug, Clone)]
pub enum FusedBody {
    /// The CUDA share would be narrower than one warp chunk: nothing
    /// meaningful to co-schedule, the plan degenerates to the plain
    /// Tensor-core kernel (the paper's method likewise has nothing to
    /// co-run on tiny GEMMs).
    TcFallback,
    /// A real heterogeneous launch.
    Launch(Box<FusedGeom>),
}

/// A fused-GEMM launch plan: everything decided before operand values are
/// known. Build once with [`plan_fused`], execute many times with
/// [`execute_fused`].
#[derive(Debug, Clone)]
pub struct FusedPlan {
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Kernel family.
    pub mode: FusedMode,
    /// Tensor:CUDA column split in force.
    pub ratio: CoreRatio,
    /// Resolved launch body.
    pub body: FusedBody,
    /// Deterministic host-side work spent building this plan.
    pub plan_units: u64,
}

/// Staged host-side artifacts of the stationary `B` operand for one
/// [`FusedPlan`]: upload-shaped (prefetch-padded) and, for the packing
/// modes, packed with cached column sums. Building this is the expensive,
/// input-independent half of a launch; the `vitbit-plan` engine stages it
/// once per weight and reuses it across executions.
#[derive(Debug, Clone)]
pub struct FusedB {
    b1: FusedB1,
    b2f: Option<Matrix<f32>>,
    b3_up: Matrix<i8>,
    /// Deterministic host-side work spent staging (element visits); packing
    /// served from the weight cache is not re-counted.
    pub prep_units: u64,
    /// Weight-side ABFT checksum vector (`sum_j B[k][j]`, length `K`),
    /// filled in by the plan engine when checksummed execution is on. Like
    /// the packed share, it depends only on the weight, so it is staged
    /// once and reused across executions.
    pub bsum: Option<Arc<Vec<i64>>>,
}

#[derive(Debug, Clone)]
enum FusedB1 {
    /// Packed INT share plus its column sums (VitBit modes).
    Packed(PackedWeight),
    /// Plain `i8` INT share (Tacker / TC+IC+FC).
    Plain(Matrix<i8>),
    /// Fallback plans stage nothing.
    None,
}

impl FusedB {
    /// The staged artifacts of a fallback plan (nothing).
    fn empty() -> Self {
        Self {
            b1: FusedB1::None,
            b2f: None,
            b3_up: Matrix::zeros(0, 0),
            prep_units: 0,
            bsum: None,
        }
    }
}

/// Builds the launch plan for a fused GEMM of shape `m x k x n` under
/// `mode` with an explicit Tensor:CUDA column ratio. Pure: no GPU state is
/// touched and no operand values are consulted.
///
/// # Panics
/// Panics unless both ratio shares are at least 1.
pub fn plan_fused(m: usize, k: usize, n: usize, mode: FusedMode, ratio: CoreRatio) -> FusedPlan {
    assert!(ratio.tc >= 1 && ratio.cuda >= 1, "fused needs both shares");

    // Column split: B = [B1 | B2 | B3].
    let lanes = match mode {
        FusedMode::VitBit(spec) => spec.lanes as usize,
        _ => 1,
    };
    let n3_raw = n * ratio.tc as usize / (ratio.tc + ratio.cuda) as usize;
    let cuda_raw = n - n3_raw;
    if cuda_raw < CHUNK_COLS * 2 {
        return FusedPlan {
            m,
            k,
            n,
            mode,
            ratio,
            body: FusedBody::TcFallback,
            plan_units: PLAN_POLICY_UNITS,
        };
    }
    let (n1_raw, n2_raw) = match mode {
        FusedMode::Tacker => (cuda_raw, 0),
        _ => eq1_split(cuda_raw, lanes as u32).expect("lanes >= 1"),
    };

    let mp = pad_to(m.max(1), super::cuda::M_PAD);
    let kp = pad_to(k.max(1), super::tc::TC_K_UNIT);
    let n1p = pad_to(n1_raw, CHUNK_COLS * lanes);
    let n2p = if n2_raw == 0 {
        0
    } else {
        pad_to(n2_raw, CHUNK_COLS)
    };
    let n3p = pad_to(n3_raw.max(1), TC_N_TILE);

    // Block-level heterogeneous grid: standalone-shaped Tensor-core blocks
    // (8 warps, 32-row tiles) plus standalone-shaped CUDA blocks (8 warps:
    // four INT-role + four FP-role, or eight INT for Tacker), interleaved
    // by dispatch order so both classes run simultaneously. Every SM then
    // hosts a mix of TC and CUDA blocks, so every sub-partition keeps its
    // Tensor, INT and FP pipes busy at once — the same co-scheduling effect
    // as warp-level fusion, at the occupancy granularity the machine model
    // favors.
    let tc_blocks = ((n3p / TC_N_TILE) * (mp / 32)) as u32;
    let tc_blocks_x = (n3p / TC_N_TILE) as u32;
    let int_elem = match mode {
        FusedMode::VitBit(spec) => CudaElem::Packed(spec),
        _ => CudaElem::Int,
    };
    let has_fp = n2p > 0;
    let n1_cols_elem = n1p / lanes; // columns in the INT role's element units
    let chunks1 = n1_cols_elem / CHUNK_COLS;
    let chunks2 = n2p / CHUNK_COLS;
    let ks = pick_k_splits(chunks1.min(chunks2.max(1)).max(1), mp / 16, kp);
    let role_warps: u32 = if has_fp { 4 } else { 8 };
    let geom = RoleGeom {
        role_warps,
        row_groups: 1,
        k_splits: ks,
    };
    let cuda_blocks_x = (chunks1.max(chunks2) * ks as usize)
        .div_ceil(role_warps as usize)
        .max(1) as u32;
    let cuda_blocks = cuda_blocks_x * (mp / 16) as u32;

    let mut programs = vec![
        tc_gemm_program(2, 0).into_arc(),
        cuda_gemm_program(int_elem, geom, TC_ARGS).into_arc(),
    ];
    let mut cuda_roles: Vec<u8> = vec![1; role_warps as usize];
    if has_fp {
        programs.push(cuda_gemm_program(CudaElem::Fp, geom, TC_ARGS + ARGS_PER_ROLE).into_arc());
        cuda_roles.extend(std::iter::repeat_n(2u8, role_warps as usize));
    } else {
        cuda_roles = vec![1; 8];
    }

    let dispatch = interleave_dispatch(tc_blocks, cuda_blocks);

    let program_units: u64 = programs.iter().map(|p| p.ops.len() as u64).sum();
    FusedPlan {
        m,
        k,
        n,
        mode,
        ratio,
        body: FusedBody::Launch(Box::new(FusedGeom {
            lanes,
            n1_raw,
            n2_raw,
            mp,
            kp,
            n1p,
            n2p,
            n3p,
            has_fp,
            int_elem,
            n1_cols_elem,
            chunks1,
            chunks2,
            geom,
            tc_blocks,
            tc_blocks_x,
            cuda_blocks_x,
            cuda_blocks,
            programs,
            cuda_roles,
            dispatch: dispatch.clone(),
            smem: super::tc::tc_smem_bytes(2),
        })),
        plan_units: PLAN_POLICY_UNITS + program_units + dispatch.len() as u64,
    }
}

/// Proportionally interleaves `tc_blocks` Tensor-core blocks with
/// `cuda_blocks` CUDA blocks so both classes stay co-resident on every SM
/// throughout the launch. Mechanical: shared by [`plan_fused`] and
/// [`materialize_fused`].
fn interleave_dispatch(tc_blocks: u32, cuda_blocks: u32) -> Vec<u32> {
    let mut dispatch = Vec::with_capacity((tc_blocks + cuda_blocks) as usize);
    let (mut ti, mut ci) = (0u32, 0u32);
    while ti < tc_blocks || ci < cuda_blocks {
        // Keep the dispatched mix at the same ratio as the totals.
        let want_tc = (ti + ci + 1) as u64 * tc_blocks as u64 / (tc_blocks + cuda_blocks) as u64;
        if ti < tc_blocks && (ti as u64) < want_tc || ci >= cuda_blocks {
            dispatch.push(ti);
            ti += 1;
        } else {
            dispatch.push(tc_blocks + ci);
            ci += 1;
        }
    }
    dispatch
}

/// The persistable scalar snapshot of a [`FusedPlan`]: shape, mode, ratio
/// and — for real launches — the resolved geometry scalars. Everything a
/// cold replica needs to rebuild the plan *without re-running any policy*
/// (ratio resolution, the Equation-1 split, padding arithmetic, grid
/// sizing): [`materialize_fused`] re-emits programs and the dispatch
/// interleave mechanically from these numbers and validates their
/// structural invariants, failing closed on any inconsistency.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedPlanSpec {
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Kernel family.
    pub mode: FusedMode,
    /// Tensor:CUDA column split in force.
    pub ratio: CoreRatio,
    /// Resolved geometry scalars; `None` for Tensor-core fallback plans.
    pub geom: Option<FusedGeomSpec>,
}

/// The resolved geometry scalars of a real heterogeneous launch — the
/// policy *outputs* of [`plan_fused`], without the derived artifacts
/// (programs, dispatch order, role vectors) that re-emit mechanically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedGeomSpec {
    /// Packing lanes of the INT share (1 when not packing).
    pub lanes: u32,
    /// Raw (uncropped) column count of the INT share `B1`.
    pub n1_raw: u64,
    /// Raw column count of the FP share `B2` (0 for Tacker).
    pub n2_raw: u64,
    /// Padded row count of `A` / the output.
    pub mp: u64,
    /// Padded inner dimension.
    pub kp: u64,
    /// Padded `B1` columns.
    pub n1p: u64,
    /// Padded `B2` columns (0 when no FP share).
    pub n2p: u64,
    /// Padded `B3` (Tensor-core) columns.
    pub n3p: u64,
    /// Warps per CUDA role.
    pub role_warps: u32,
    /// K-splits of the CUDA roles.
    pub k_splits: u32,
}

impl FusedPlan {
    /// Extracts the persistable scalar snapshot of this plan.
    pub fn geom_spec(&self) -> FusedPlanSpec {
        let geom = match &self.body {
            FusedBody::TcFallback => None,
            FusedBody::Launch(g) => Some(FusedGeomSpec {
                lanes: g.lanes as u32,
                n1_raw: g.n1_raw as u64,
                n2_raw: g.n2_raw as u64,
                mp: g.mp as u64,
                kp: g.kp as u64,
                n1p: g.n1p as u64,
                n2p: g.n2p as u64,
                n3p: g.n3p as u64,
                role_warps: g.geom.role_warps,
                k_splits: g.geom.k_splits,
            }),
        };
        FusedPlanSpec {
            m: self.m,
            k: self.k,
            n: self.n,
            mode: self.mode,
            ratio: self.ratio,
            geom,
        }
    }
}

/// Rebuilds a [`FusedPlan`] from a persisted [`FusedPlanSpec`].
///
/// Program emission and the dispatch interleave are *mechanical* — pure
/// functions of the geometry scalars — so a materialized plan performs
/// zero policy resolution (no ratio table, no Equation-1 split, no padding
/// arithmetic). Every structural invariant of the scalars is re-checked;
/// plans rebuilt from valid specs are field-identical to what
/// [`plan_fused`] produced before persistence.
///
/// # Errors
/// A human-readable description of the first violated invariant — the
/// caller (the plan-cache import path) must fail closed to a live
/// [`plan_fused`] on any error.
pub fn materialize_fused(spec: &FusedPlanSpec) -> Result<FusedPlan, String> {
    let FusedPlanSpec {
        m,
        k,
        n,
        mode,
        ratio,
        geom,
    } = spec;
    let (m, k, n, mode, ratio) = (*m, *k, *n, *mode, *ratio);
    if ratio.tc < 1 || ratio.cuda < 1 {
        return Err(format!(
            "ratio {}:{} has an empty share",
            ratio.tc, ratio.cuda
        ));
    }
    let Some(s) = geom else {
        return Ok(FusedPlan {
            m,
            k,
            n,
            mode,
            ratio,
            body: FusedBody::TcFallback,
            plan_units: PLAN_POLICY_UNITS,
        });
    };
    let fail = |what: &str| Err(format!("geometry spec for {m}x{k}x{n}: {what}"));

    let lanes = s.lanes as usize;
    let spec_lanes = match mode {
        FusedMode::VitBit(ps) => ps.lanes as usize,
        _ => 1,
    };
    if lanes != spec_lanes || lanes == 0 {
        return fail("lane count disagrees with the mode");
    }
    let (n1_raw, n2_raw) = (s.n1_raw as usize, s.n2_raw as usize);
    let (mp, kp) = (s.mp as usize, s.kp as usize);
    let (n1p, n2p, n3p) = (s.n1p as usize, s.n2p as usize, s.n3p as usize);
    let n3_raw = n.checked_sub(n1_raw + n2_raw);
    let Some(n3_raw) = n3_raw else {
        return fail("column shares exceed N");
    };
    if matches!(mode, FusedMode::Tacker) && n2_raw != 0 {
        return fail("Tacker cannot carry an FP share");
    }
    if mp == 0 || !mp.is_multiple_of(super::cuda::M_PAD) || mp < m {
        return fail("bad padded M");
    }
    if kp == 0 || !kp.is_multiple_of(super::tc::TC_K_UNIT) || kp < k {
        return fail("bad padded K");
    }
    if n1p < n1_raw || !n1p.is_multiple_of(CHUNK_COLS * lanes) || n1p == 0 {
        return fail("bad padded B1 columns");
    }
    if n2p < n2_raw || !n2p.is_multiple_of(CHUNK_COLS) {
        return fail("bad padded B2 columns");
    }
    if (n2p == 0) != (n2_raw == 0) {
        return fail("B2 padding disagrees with its raw share");
    }
    if n3p < n3_raw.max(1) || !n3p.is_multiple_of(TC_N_TILE) || n3p == 0 {
        return fail("bad padded B3 columns");
    }
    let has_fp = n2p > 0;
    if s.role_warps != if has_fp { 4 } else { 8 } {
        return fail("role warp count disagrees with the FP share");
    }
    if s.k_splits == 0 || !kp.is_multiple_of(s.k_splits as usize) {
        return fail("K-splits must divide padded K");
    }

    // Mechanical re-derivation from the validated scalars: grid sizes,
    // programs, role vectors, dispatch order. Mirrors plan_fused exactly.
    let tc_blocks = ((n3p / TC_N_TILE) * (mp / 32)) as u32;
    let tc_blocks_x = (n3p / TC_N_TILE) as u32;
    let int_elem = match mode {
        FusedMode::VitBit(ps) => CudaElem::Packed(ps),
        _ => CudaElem::Int,
    };
    let n1_cols_elem = n1p / lanes;
    let chunks1 = n1_cols_elem / CHUNK_COLS;
    let chunks2 = n2p / CHUNK_COLS;
    let geom = RoleGeom {
        role_warps: s.role_warps,
        row_groups: 1,
        k_splits: s.k_splits,
    };
    let cuda_blocks_x = (chunks1.max(chunks2) * s.k_splits as usize)
        .div_ceil(s.role_warps as usize)
        .max(1) as u32;
    let cuda_blocks = cuda_blocks_x * (mp / 16) as u32;

    let mut programs = vec![
        tc_gemm_program(2, 0).into_arc(),
        cuda_gemm_program(int_elem, geom, TC_ARGS).into_arc(),
    ];
    let mut cuda_roles: Vec<u8> = vec![1; s.role_warps as usize];
    if has_fp {
        programs.push(cuda_gemm_program(CudaElem::Fp, geom, TC_ARGS + ARGS_PER_ROLE).into_arc());
        cuda_roles.extend(std::iter::repeat_n(2u8, s.role_warps as usize));
    } else {
        cuda_roles = vec![1; 8];
    }
    let dispatch = interleave_dispatch(tc_blocks, cuda_blocks);
    let program_units: u64 = programs.iter().map(|p| p.ops.len() as u64).sum();
    Ok(FusedPlan {
        m,
        k,
        n,
        mode,
        ratio,
        body: FusedBody::Launch(Box::new(FusedGeom {
            lanes,
            n1_raw,
            n2_raw,
            mp,
            kp,
            n1p,
            n2p,
            n3p,
            has_fp,
            int_elem,
            n1_cols_elem,
            chunks1,
            chunks2,
            geom,
            tc_blocks,
            tc_blocks_x,
            cuda_blocks_x,
            cuda_blocks,
            programs,
            cuda_roles,
            dispatch: dispatch.clone(),
            smem: super::tc::tc_smem_bytes(2),
        })),
        plan_units: PLAN_POLICY_UNITS + program_units + dispatch.len() as u64,
    })
}

/// Stages the stationary operand `b` for `plan`: slices and pads the three
/// column shares, packs `B1` (via the weight cache when a handle is given)
/// and converts `B2` to `f32`. Value-dependent but input(`A`)-independent —
/// stage once per weight, execute many times.
///
/// # Panics
/// Panics when `b`'s shape disagrees with the plan.
pub fn prepare_fused_b(plan: &FusedPlan, b: &Matrix<i8>, mut weight: WeightCtx<'_>) -> FusedB {
    assert_eq!((b.rows(), b.cols()), (plan.k, plan.n), "B shape vs plan");
    let g = match &plan.body {
        FusedBody::TcFallback => return FusedB::empty(),
        FusedBody::Launch(g) => g,
    };
    let n = plan.n;
    let b1 = pad_matrix(&b.slice_cols(0, g.n1_raw), g.kp, g.n1p);
    let b2 = pad_matrix(&b.slice_cols(g.n1_raw, g.n2_raw), g.kp, g.n2p);
    let b3 = pad_matrix(
        &b.slice_cols(g.n1_raw + g.n2_raw, n - g.n1_raw - g.n2_raw),
        g.kp,
        g.n3p,
    );
    // Upload shapes carry extra zero K for pipeline prefetches (the TC
    // role prefetches up to three 32-deep stages ahead).
    let b1_up = pad_matrix(&b1, g.kp + 128, g.n1p);
    let b2_up = pad_matrix(&b2, g.kp + 128, g.n2p);
    let b3_up = pad_matrix(&b3, g.kp + 128, g.n3p);

    let up_rows = g.kp + 128;
    let mut prep_units = (up_rows * (g.n1p + g.n2p + g.n3p)) as u64;
    let b1 = match plan.mode {
        FusedMode::VitBit(spec) => {
            let misses_before = weight.as_ref().map(|(c, _)| c.misses());
            let pw = pack_weight_share(&mut weight, &spec, &b1_up, 0, g.n1_raw);
            // Packing is O(rows x cols) plus the column-sum pass; a cache
            // hit pays neither.
            let packed_fresh = match (&weight, misses_before) {
                (Some((c, _)), Some(before)) => c.misses() > before,
                _ => true,
            };
            if packed_fresh {
                prep_units += 2 * (up_rows * g.n1p) as u64;
            }
            FusedB1::Packed(pw)
        }
        _ => FusedB1::Plain(b1_up),
    };
    let b2f = if g.has_fp {
        prep_units += (up_rows * g.n2p) as u64;
        Some(b2_up.map(|x| x as f32))
    } else {
        None
    };
    FusedB {
        b1,
        b2f,
        b3_up,
        prep_units,
        bsum: None,
    }
}

/// Executes a fused plan on concrete operands: pads and uploads `A`,
/// uploads the staged `B` artifacts, launches the heterogeneous grid and
/// applies the bias-correction epilogue. Performs no packing and no
/// policy/ratio computation — that work lives in [`plan_fused`] and
/// [`prepare_fused_b`].
///
/// The raw `b` operand is consulted only by fallback plans (which launch
/// the plain Tensor-core kernel on the uncropped operands, exactly as the
/// historical driver did).
///
/// # Panics
/// Panics when operand shapes disagree with the plan.
///
/// # Errors
/// [`GemmError::MissingStagedB`] when a launch plan's `B` staging is
/// missing, [`GemmError::Launch`] when the simulated launch fails.
pub fn execute_fused(
    gpu: &mut Gpu,
    plan: &FusedPlan,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    staged: &FusedB,
) -> Result<GemmOut, GemmError> {
    assert_eq!((a.rows(), a.cols()), (plan.m, plan.k), "A shape vs plan");
    assert_eq!((b.rows(), b.cols()), (plan.k, plan.n), "B shape vs plan");
    let g = match &plan.body {
        FusedBody::TcFallback => return super::tc::run_tc(gpu, a, b),
        FusedBody::Launch(g) => g,
    };
    let (m, n) = (plan.m, plan.n);
    let (mp, kp, n1p, n2p, n3p) = (g.mp, g.kp, g.n1p, g.n2p, g.n3p);

    let a_pad = pad_matrix(a, mp, kp);
    let a_up = pad_matrix(&a_pad, mp, kp + 128);

    gpu.mem.reset();
    // TC operands (slab-tiled A, masked-int B3).
    let a_ptr = gpu.mem.upload_i8(&super::tc::tile_a_for_tc(&a_up)).addr;
    let b3_ptr = gpu.mem.upload_i8(g_slice(&staged.b3_up)).addr;
    let c3_dev = gpu.mem.alloc((mp * n3p * 4) as u32);
    // INT-side operands.
    let (at1_ptr, b1_ptr, corr) = match (&staged.b1, plan.mode) {
        (FusedB1::Packed(pw), FusedMode::VitBit(spec)) => {
            let corr = BiasCorrection::from_cached_colsum(&spec, &a_pad, &pw.colsum);
            let at = upload_ops::transposed_biased(gpu, &a_up, &spec);
            (
                at,
                gpu.mem.upload_u32(pw.packed.as_slice()).addr,
                Some(corr),
            )
        }
        (FusedB1::Plain(b1_up), _) => (
            upload_ops::transposed_i8(gpu, &a_up),
            gpu.mem.upload_i8(b1_up.as_slice()).addr,
            None,
        ),
        _ => return Err(GemmError::MissingStagedB),
    };
    // FP-side operands.
    let (at2_ptr, b2_ptr) = match &staged.b2f {
        Some(b2f) => {
            let af = a_up.map(|x| x as f32);
            (
                upload_ops::transposed_f32(gpu, &af),
                gpu.mem.upload_f32(b2f.as_slice()).addr,
            )
        }
        None => (0, 0),
    };

    let ks = g.geom.k_splits;
    let c1_dev = gpu.mem.alloc(((mp * n1p * 4 * ks as usize) as u32).max(4));
    let c2_dev = if g.has_fp {
        Some(gpu.mem.alloc((mp * n2p * 4 * ks as usize) as u32))
    } else {
        None
    };

    let mut args = tc_args(
        a_ptr,
        b3_ptr,
        c3_dev.addr,
        g.tc_blocks_x,
        kp as u32,
        n3p as u32,
        (mp * 16) as u32,
    );
    args.extend(role_args(
        at1_ptr,
        b1_ptr,
        c1_dev.addr,
        g.cuda_blocks_x,
        g.chunks1 as u32,
        kp as u32,
        &g.int_elem,
        mp as u32,
        g.n1_cols_elem as u32,
        (n1p * 4) as u32,
        0,
        &g.geom,
        g.tc_blocks,
    ));
    if g.has_fp {
        args.extend(role_args(
            at2_ptr,
            b2_ptr,
            c2_dev.expect("fp present").addr,
            g.cuda_blocks_x,
            g.chunks2 as u32,
            kp as u32,
            &CudaElem::Fp,
            mp as u32,
            n2p as u32,
            (n2p * 4) as u32,
            g.geom.role_warps,
            &g.geom,
            g.tc_blocks,
        ));
    }

    let kernel = Kernel::heterogeneous(
        plan.mode.name(),
        g.programs.clone(),
        vec![
            (g.tc_blocks, vec![0; 8]),
            (g.cuda_blocks, g.cuda_roles.clone()),
        ],
        g.smem,
        args,
    )
    .with_dispatch_order(g.dispatch.clone());
    let stats = gpu.launch(&kernel)?;

    // Downloads + reassembly.
    let c1 = {
        let raw = gpu.mem.download_u32(c1_dev, mp * n1p * ks as usize);
        let summed = reduce_slices_u32(&raw, mp * n1p, ks);
        let mut c1 = Matrix::zeros(mp, n1p);
        match &corr {
            Some(corr) => {
                for i in 0..mp {
                    for j in 0..n1p {
                        c1[(i, j)] = corr.apply(u64::from(summed[i * n1p + j]), i, j) as i32;
                    }
                }
            }
            None => {
                for i in 0..mp {
                    for j in 0..n1p {
                        c1[(i, j)] = summed[i * n1p + j] as i32;
                    }
                }
            }
        }
        c1
    };
    let c2 = match c2_dev {
        Some(dev) => {
            let raw = gpu.mem.download_f32(dev, mp * n2p * ks as usize);
            let summed = reduce_slices_f32(&raw, mp * n2p, ks);
            Matrix::from_vec(
                mp,
                n2p,
                summed.into_iter().map(|x| x.round() as i32).collect(),
            )
        }
        None => Matrix::zeros(mp, 0),
    };
    let c3 = Matrix::from_vec(mp, n3p, gpu.mem.download_i32(c3_dev, mp * n3p));
    let c1c = crop_matrix(&c1, m, g.n1_raw);
    let c2c = crop_matrix(&c2, m, g.n2_raw);
    let c3c = crop_matrix(&c3, m, n - g.n1_raw - g.n2_raw);
    Ok(GemmOut {
        c: Matrix::concat_cols(&[&c1c, &c2c, &c3c]),
        stats,
    })
}

fn g_slice(m: &Matrix<i8>) -> &[i8] {
    m.as_slice()
}

/// Runs a fused GEMM with the mode's default split ratio.
#[deprecated(
    since = "0.2.0",
    note = "build a plan with `plan_fused` (or use `vitbit_plan::Engine`) and execute it"
)]
pub fn run_fused(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>, mode: FusedMode) -> GemmOut {
    run_fused_one_shot(gpu, a, b, mode, mode.default_ratio(), None).expect("fused gemm")
}

/// Runs a fused GEMM with an explicit Tensor:CUDA column ratio.
///
/// Small problems degenerate gracefully: when the CUDA share would be
/// narrower than one warp chunk, the launch falls back to the plain
/// Tensor-core kernel (the paper's method likewise has nothing to co-run
/// on tiny GEMMs).
///
/// # Panics
/// Panics unless both ratio shares are at least 1 and shapes agree.
#[deprecated(
    since = "0.2.0",
    note = "build a plan with `plan_fused` (or use `vitbit_plan::Engine`) and execute it"
)]
pub fn run_fused_with_ratio(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    mode: FusedMode,
    ratio: CoreRatio,
) -> GemmOut {
    run_fused_one_shot(gpu, a, b, mode, ratio, None).expect("fused gemm")
}

/// [`run_fused_with_ratio`] with an optional packed-weight cache handle:
/// under [`FusedMode::VitBit`] the INT share `B1` of the stationary `B`
/// operand is packed once per (weight, spec, split geometry) and reused
/// across launches (see [`super::cache`]).
///
/// # Panics
/// Panics unless both ratio shares are at least 1 and shapes agree.
#[deprecated(
    since = "0.2.0",
    note = "build a plan with `plan_fused` (or use `vitbit_plan::Engine`) and execute it"
)]
pub fn run_fused_with_ratio_cached(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    mode: FusedMode,
    ratio: CoreRatio,
    weight: WeightCtx<'_>,
) -> GemmOut {
    run_fused_one_shot(gpu, a, b, mode, ratio, weight).expect("fused gemm")
}

/// The one-shot composition the deprecated shims share: plan, stage `B`,
/// execute — equivalent to the historical monolithic driver.
pub fn run_fused_one_shot(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    mode: FusedMode,
    ratio: CoreRatio,
    weight: WeightCtx<'_>,
) -> Result<GemmOut, GemmError> {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    let plan = plan_fused(a.rows(), a.cols(), b.cols(), mode, ratio);
    let staged = prepare_fused_b(&plan, b, weight);
    execute_fused(gpu, &plan, a, b, &staged)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn int6(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
        gen::uniform_i8(rows, cols, -32, 31, seed)
    }

    fn fused(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>, mode: FusedMode) -> GemmOut {
        run_fused_one_shot(gpu, a, b, mode, mode.default_ratio(), None).expect("fused gemm")
    }

    #[test]
    fn tacker_matches_reference_and_coschedules() {
        let mut g = gpu();
        let a = int6(24, 32, 1);
        let b = int6(32, 300, 2);
        let out = fused(&mut g, &a, &b, FusedMode::Tacker);
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0, "TC warps active");
        assert!(out.stats.int_ops > 0, "IC warps active");
    }

    #[test]
    fn tc_ic_fc_matches_reference_and_uses_all_pipes() {
        let mut g = gpu();
        let a = int6(20, 48, 3);
        let b = int6(48, 640, 4);
        let out = fused(&mut g, &a, &b, FusedMode::TcIcFc);
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0);
        assert!(out.stats.fp_ops > 0, "FP role must carry real math");
        assert!(out.stats.tc_ops > 0 && out.stats.int_ops > 0);
    }

    #[test]
    fn vitbit_matches_reference_int6() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(18, 32, 5);
        let b = int6(32, 500, 6);
        let out = fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0);
    }

    #[test]
    fn vitbit_matches_reference_int4() {
        let mut g = gpu();
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = gen::uniform_i8(17, 16, -8, 7, 7);
        let b = gen::uniform_i8(16, 320, -8, 7, 8);
        let out = fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn explicit_ratio_changes_split() {
        let mut g = gpu();
        let a = int6(16, 16, 9);
        let b = int6(16, 256, 10);
        let r91 = run_fused_one_shot(
            &mut g,
            &a,
            &b,
            FusedMode::TcIcFc,
            CoreRatio { tc: 9, cuda: 1 },
            None,
        )
        .expect("fused gemm");
        let r11 = run_fused_one_shot(
            &mut g,
            &a,
            &b,
            FusedMode::TcIcFc,
            CoreRatio { tc: 1, cuda: 1 },
            None,
        )
        .expect("fused gemm");
        assert_eq!(r91.c, gemm_i8_i32(&a, &b));
        assert_eq!(r11.c, gemm_i8_i32(&a, &b));
        // More TC share => more MMAs issued.
        assert!(r91.stats.issued.tensor > r11.stats.issued.tensor);
    }

    #[test]
    fn odd_shape_fused() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(13, 21, 11);
        let b = int6(21, 97, 12);
        let out = fused(&mut g, &a, &b, FusedMode::VitBit(spec));
        assert_eq!(out.c.shape(), (13, 97));
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn plan_reuse_is_bit_identical_to_fresh_plans() {
        // The load-bearing property of the plan/execute split: executing a
        // staged plan twice gives byte-identical results and cycles to two
        // fresh one-shot drivers, with zero staging work the second time.
        let spec = PackSpec::guarded(6, 6).unwrap();
        let mode = FusedMode::VitBit(spec);
        let a = int6(24, 32, 21);
        let b = int6(32, 320, 22);
        let plan = plan_fused(24, 32, 320, mode, mode.default_ratio());
        let staged = prepare_fused_b(&plan, &b, None);
        // Matched launch positions on separate GPUs (L2 state persists
        // across launches, so only position-for-position comparisons are
        // meaningful).
        let mut g1 = gpu();
        let planned = [
            execute_fused(&mut g1, &plan, &a, &b, &staged).expect("fused gemm"),
            execute_fused(&mut g1, &plan, &a, &b, &staged).expect("fused gemm"),
        ];
        let mut g2 = gpu();
        let fresh = [fused(&mut g2, &a, &b, mode), fused(&mut g2, &a, &b, mode)];
        for (p, f) in planned.iter().zip(&fresh) {
            assert_eq!(p.c, f.c);
            assert_eq!(p.stats.cycles, f.stats.cycles);
        }
        assert!(plan.plan_units > 0 && staged.prep_units > 0);
    }

    #[test]
    fn geom_spec_roundtrip_is_field_identical() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        for mode in [
            FusedMode::Tacker,
            FusedMode::TcIcFc,
            FusedMode::VitBit(spec),
        ] {
            let plan = plan_fused(197, 768, 768, mode, mode.default_ratio());
            let rebuilt = materialize_fused(&plan.geom_spec()).expect("materialize");
            assert_eq!(plan.plan_units, rebuilt.plan_units, "{mode:?}");
            let (FusedBody::Launch(a), FusedBody::Launch(b)) = (&plan.body, &rebuilt.body) else {
                panic!("{mode:?}: expected launch bodies");
            };
            assert_eq!(a.dispatch, b.dispatch);
            assert_eq!(a.cuda_roles, b.cuda_roles);
            assert_eq!(a.programs.len(), b.programs.len());
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.ops, pb.ops, "{mode:?}: re-emitted program diverges");
            }
            assert_eq!(
                (a.lanes, a.n1_raw, a.n2_raw, a.mp, a.kp, a.n1p, a.n2p, a.n3p),
                (b.lanes, b.n1_raw, b.n2_raw, b.mp, b.kp, b.n1p, b.n2p, b.n3p)
            );
            assert_eq!(
                (a.tc_blocks, a.cuda_blocks, a.cuda_blocks_x, a.smem),
                (b.tc_blocks, b.cuda_blocks, b.cuda_blocks_x, b.smem)
            );
        }
        // Fallback plans round-trip too.
        let plan = plan_fused(16, 16, 64, FusedMode::VitBit(spec), CoreRatio::PAPER);
        let rebuilt = materialize_fused(&plan.geom_spec()).expect("materialize");
        assert!(matches!(rebuilt.body, FusedBody::TcFallback));
    }

    #[test]
    fn materialize_rejects_tampered_geometry() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let mode = FusedMode::VitBit(spec);
        let good = plan_fused(197, 768, 768, mode, mode.default_ratio()).geom_spec();
        let tamper = |f: &mut dyn FnMut(&mut FusedGeomSpec)| {
            let mut s = good.clone();
            f(s.geom.as_mut().expect("launch plan"));
            materialize_fused(&s)
        };
        assert!(tamper(&mut |g| g.kp += 1).is_err(), "unpadded K must fail");
        assert!(tamper(&mut |g| g.mp = 0).is_err(), "zero M must fail");
        assert!(tamper(&mut |g| g.lanes = 7).is_err(), "lane mismatch");
        assert!(
            tamper(&mut |g| g.n1_raw = 10_000).is_err(),
            "shares past N must fail"
        );
        assert!(
            tamper(&mut |g| g.k_splits = 7).is_err(),
            "non-dividing k-splits must fail"
        );
        assert!(
            tamper(&mut |g| g.role_warps = 8).is_err(),
            "role warps vs FP share must fail"
        );
        // Executing a valid rebuilt plan gives bit-identical results.
        let rebuilt = materialize_fused(&good).expect("materialize");
        let a = int6(24, 32, 41);
        let b = int6(32, 768, 42);
        let plan = plan_fused(24, 32, 768, mode, mode.default_ratio());
        let rb = materialize_fused(&plan.geom_spec()).expect("materialize");
        let staged = prepare_fused_b(&plan, &b, None);
        let staged_rb = prepare_fused_b(&rb, &b, None);
        let mut g1 = gpu();
        let mut g2 = gpu();
        let o1 = execute_fused(&mut g1, &plan, &a, &b, &staged).expect("fused gemm");
        let o2 = execute_fused(&mut g2, &rb, &a, &b, &staged_rb).expect("fused gemm");
        assert_eq!(o1.c, o2.c);
        assert_eq!(o1.stats, o2.stats);
        let _ = rebuilt;
    }

    #[test]
    fn fallback_plan_degenerates_to_tc() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let plan = plan_fused(16, 16, 64, FusedMode::VitBit(spec), CoreRatio::PAPER);
        assert!(matches!(plan.body, FusedBody::TcFallback));
        let a = int6(16, 16, 31);
        let b = int6(16, 64, 32);
        let mut g = gpu();
        let staged = prepare_fused_b(&plan, &b, None);
        let out = execute_fused(&mut g, &plan, &a, &b, &staged).expect("fused gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert_eq!(out.stats.name, "gemm_tc");
    }
}
