//! Algorithm-based fault tolerance (ABFT) checksums for GEMM, after
//! Huang & Abraham.
//!
//! For `C = A * B` the row and column sums of `C` are linear in the
//! operands:
//!
//! * row `i`:    `sum_j C[i][j] = (A * bsum)[i]` where `bsum[k] = sum_j B[k][j]`
//! * column `j`: `sum_i C[i][j] = (asum * B)[j]` where `asum[k] = sum_i A[i][k]`
//!
//! so both checks cost `O(MK + KN + MN)` scalar multiply-accumulates
//! instead of re-running the `O(MKN)` product. All GEMM drivers in this
//! crate produce bit-exact integer results (the bias correction of the
//! packed kernels is folded in before the caller sees `C`), so in a
//! fault-free run both identities hold exactly and any mismatch is a real
//! corruption. A single corrupted element fails exactly one row and one
//! column check, which localizes it; the plan/execute engine uses the
//! check to decide whether a result can be trusted or the recovery ladder
//! must take over.
//!
//! `bsum` is weight-side: for the planned path the engine computes it once
//! at staging time and caches it alongside the packed weights
//! ([`super::FusedB::bsum`]), so steady-state verification skips the
//! `O(KN)` term.

use vitbit_tensor::Matrix;

/// Outcome of one ABFT verification of `C = A * B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbftCheck {
    /// Rows of `C` whose checksum disagrees with `A * bsum`.
    pub bad_rows: Vec<usize>,
    /// Columns of `C` whose checksum disagrees with `asum * B`.
    pub bad_cols: Vec<usize>,
    /// Modeled verification cost in scalar multiply-accumulate units
    /// (same currency as plan-build units): what the check would cost on
    /// the INT pipes if it ran on-device.
    pub units: u64,
}

impl AbftCheck {
    /// `true` when every row and column checksum matched.
    pub fn ok(&self) -> bool {
        self.bad_rows.is_empty() && self.bad_cols.is_empty()
    }

    /// Corrupted region as `(rows, cols)`: the cross product of the failed
    /// checks covers every corrupted element (for a single corrupted
    /// element this is exactly one cell).
    pub fn localized(&self) -> (&[usize], &[usize]) {
        (&self.bad_rows, &self.bad_cols)
    }
}

/// Weight-side checksum vector `bsum[k] = sum_j B[k][j]` (length `K`).
///
/// Depends only on the weight matrix, so the engine computes it once per
/// staged weight and reuses it for every execute.
pub fn weight_row_sums(b: &Matrix<i8>) -> Vec<i64> {
    let (k, _n) = b.shape();
    (0..k)
        .map(|kk| b.row(kk).iter().map(|&x| i64::from(x)).sum())
        .collect()
}

/// Verifies `c == a * b` via row and column checksums.
///
/// `bsum` is the cached output of [`weight_row_sums`]; pass `None` to have
/// it computed here (its `O(KN)` cost is then included in `units`).
pub fn verify_gemm(
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    c: &Matrix<i32>,
    bsum: Option<&[i64]>,
) -> AbftCheck {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(b.rows(), k, "ABFT inner dims");
    assert_eq!(c.shape(), (m, n), "ABFT output shape");

    let mut units = 0u64;
    let owned;
    let bsum = match bsum {
        Some(s) => {
            assert_eq!(s.len(), k, "bsum length");
            s
        }
        None => {
            owned = weight_row_sums(b);
            units += (k * n) as u64;
            &owned
        }
    };

    // Row checks: sum_j C[i][j] vs (A * bsum)[i].
    let mut bad_rows = Vec::new();
    for i in 0..m {
        let got: i64 = c.row(i).iter().map(|&x| i64::from(x)).sum();
        let want: i64 = a
            .row(i)
            .iter()
            .zip(bsum)
            .map(|(&av, &bs)| i64::from(av) * bs)
            .sum();
        if got != want {
            bad_rows.push(i);
        }
    }
    units += (m * k + m * n) as u64;

    // Column checks: sum_i C[i][j] vs (asum * B)[j].
    let mut asum = vec![0i64; k];
    for i in 0..m {
        for (s, &av) in asum.iter_mut().zip(a.row(i)) {
            *s += i64::from(av);
        }
    }
    let mut want_cols = vec![0i64; n];
    for (kk, &s) in asum.iter().enumerate() {
        if s == 0 {
            continue;
        }
        for (w, &bv) in want_cols.iter_mut().zip(b.row(kk)) {
            *w += s * i64::from(bv);
        }
    }
    let mut got_cols = vec![0i64; n];
    for i in 0..m {
        for (g, &cv) in got_cols.iter_mut().zip(c.row(i)) {
            *g += i64::from(cv);
        }
    }
    let bad_cols: Vec<usize> = (0..n).filter(|&j| got_cols[j] != want_cols[j]).collect();
    units += (m * k + k * n + m * n) as u64;

    AbftCheck {
        bad_rows,
        bad_cols,
        units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    #[test]
    fn clean_result_passes() {
        let a = gen::uniform_i8(13, 29, -128, 127, 1);
        let b = gen::uniform_i8(29, 17, -128, 127, 2);
        let c = gemm_i8_i32(&a, &b);
        let check = verify_gemm(&a, &b, &c, None);
        assert!(check.ok(), "clean GEMM must verify: {check:?}");
        assert!(check.units > 0);
    }

    #[test]
    fn cached_bsum_matches_on_the_fly() {
        let a = gen::uniform_i8(8, 16, -50, 50, 3);
        let b = gen::uniform_i8(16, 12, -50, 50, 4);
        let c = gemm_i8_i32(&a, &b);
        let bsum = weight_row_sums(&b);
        let cached = verify_gemm(&a, &b, &c, Some(&bsum));
        let fresh = verify_gemm(&a, &b, &c, None);
        assert!(cached.ok() && fresh.ok());
        assert!(
            cached.units < fresh.units,
            "cached bsum must skip the O(KN) term"
        );
    }

    #[test]
    fn single_flip_is_localized() {
        let a = gen::uniform_i8(10, 20, -30, 30, 5);
        let b = gen::uniform_i8(20, 15, -30, 30, 6);
        let mut c = gemm_i8_i32(&a, &b);
        c.row_mut(7)[11] ^= 1 << 13;
        let check = verify_gemm(&a, &b, &c, None);
        assert!(!check.ok());
        assert_eq!(check.bad_rows, vec![7]);
        assert_eq!(check.bad_cols, vec![11]);
        let (rows, cols) = check.localized();
        assert_eq!((rows, cols), (&[7usize][..], &[11usize][..]));
    }

    #[test]
    fn multi_flip_covers_all_cells() {
        let a = gen::uniform_i8(9, 9, -30, 30, 7);
        let b = gen::uniform_i8(9, 9, -30, 30, 8);
        let mut c = gemm_i8_i32(&a, &b);
        for &(r, j) in &[(1usize, 2usize), (4, 6)] {
            c.row_mut(r)[j] = c.row(r)[j].wrapping_add(1 << 20);
        }
        let check = verify_gemm(&a, &b, &c, None);
        assert!(check.bad_rows.contains(&1) && check.bad_rows.contains(&4));
        assert!(check.bad_cols.contains(&2) && check.bad_cols.contains(&6));
    }
}
