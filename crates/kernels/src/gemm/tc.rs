//! Tensor-core GEMM: shared-memory staged, double-buffered, 32-deep K
//! stages (two 16x16x16 INT8 MMAs per warp per stage).
//!
//! Block geometry: `rows_tiles` row-tiles of 16 (1 for the fused role, 2
//! standalone) by four 16-column tiles, i.e. `rows_tiles * 4` warps per
//! block, each owning one 16x16 output tile of a `16*rows_tiles x 64`
//! block tile. The weight matrix arrives *slab-tiled* from the host (a
//! one-off setup reordering, as real Tensor-core kernels use), so staging
//! copies are fully coalesced 32-bit words. Staging is software-pipelined
//! across two shared-memory buffers: loads for the next stage issue, the
//! current buffer's MMAs run while those loads are in flight, then the
//! stores retire — one barrier per stage. The kernel ends up bound by
//! issue/occupancy and L2 behaviour rather than Tensor-core throughput,
//! which is what compresses the 32x peak-throughput gap over INT32 CUDA
//! cores down to the paper's measured ~7.5x.

use super::{finish_program, GemmError, GemmOut, ProgPass};
use crate::shapes::{crop_matrix, pad_matrix, pad_to};
use vitbit_sim::isa::{ICmp, MemWidth, MmaKind, Reg, SReg, Src};
use vitbit_sim::program::{Program, ProgramBuilder};
use vitbit_sim::{Gpu, Kernel};
use vitbit_tensor::Matrix;

/// Column tile of the TC kernel's block.
pub const TC_N_TILE: usize = 64;
/// Argument slots consumed by a TC role.
pub const TC_ARGS: u16 = 8;
/// K covered per staged buffer (two MMA slabs).
pub const TC_STAGE_K: usize = 32;
/// K advanced per loop iteration (two stages).
pub const TC_K_UNIT: usize = 64;

/// Shared-memory bytes a TC (role) block needs (4 staging buffers).
pub fn tc_smem_bytes(rows_tiles: u16) -> u32 {
    let a_bytes = rows_tiles as u32 * 256;
    4 * (2 * a_bytes + 2048)
}

/// Builds the Tensor-core GEMM program.
///
/// Arguments (from `arg_base`): `[a_ptr (slab-tiled A), b_ptr (KxN i8),
/// c_ptr (i32 MxN), blocks_x, K (multiple of 64), N, c_row_stride_bytes,
/// a_slab_stride_bytes (= M_padded * 16)]`. `rows_tiles` is 2 standalone
/// (32-row blocks, 8 warps) or 1 as a fused role (16-row blocks, warps
/// 0..4 of the block).
pub fn tc_gemm_program(rows_tiles: u16, arg_base: u16) -> Program {
    assert!(rows_tiles == 1 || rows_tiles == 2, "rows_tiles in {{1,2}}");
    let mut p = ProgramBuilder::new(if rows_tiles == 2 {
        "gemm_tc"
    } else {
        "gemm_tc_role"
    });
    let threads = rows_tiles as u32 * 4 * 32;
    let a_bytes = rows_tiles as u32 * 256; // one slab of A tiles
    let a_words_per_slab = a_bytes / 4;
    let b_smem_base = 2 * a_bytes;
    let buf_stride = 2 * a_bytes + 2048;
    let n_bufs: u16 = 4; // prefetch distance of two stages
    let b_words: u32 = 512; // two slabs of four 16x16 B tiles

    // Constants.
    let a_ptr = p.alloc();
    let b_ptr = p.alloc();
    let c_ptr = p.alloc();
    let blocks_x = p.alloc();
    let kmax = p.alloc();
    let n_stride = p.alloc();
    let crs = p.alloc();
    let a_stride = p.alloc();
    for (i, r) in [a_ptr, b_ptr, c_ptr, blocks_x, kmax, n_stride, crs, a_stride]
        .iter()
        .enumerate()
    {
        p.ldc(*r, arg_base + i as u16);
    }

    let ctaid = p.alloc();
    let tid = p.alloc();
    let lane = p.alloc();
    let warpid = p.alloc();
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(tid, SReg::Tid);
    p.sreg(lane, SReg::LaneId);
    p.sreg(warpid, SReg::WarpId);
    let bx = p.alloc();
    let by = p.alloc();
    p.iremu(bx, ctaid.into(), blocks_x.into());
    p.idivu(by, ctaid.into(), blocks_x.into());
    let t = p.alloc();
    let u = p.alloc();

    // --- A staging: exactly one word per thread per stage.
    // g = tid: slab_sel = g / a_words_per_slab, inner = g % a_words_per_slab;
    // global = a_ptr + by*rows*16 + slab_sel*a_stride + inner*4; sts = g*4.
    let a_ldg = p.alloc();
    let a_sts = p.alloc();
    {
        let slab_shift = a_words_per_slab.trailing_zeros();
        p.shl(a_sts, tid.into(), Src::Imm(2));
        p.shr(t, tid.into(), Src::Imm(slab_shift)); // slab_sel (0|1)
        p.imul(t, t.into(), a_stride.into());
        p.and(u, tid.into(), Src::Imm(a_words_per_slab - 1));
        p.imad(u, u.into(), Src::Imm(4), t.into());
        p.imad(
            t,
            by.into(),
            Src::Imm(rows_tiles as u32 * 16 * 16),
            u.into(),
        );
        p.iadd(a_ldg, a_ptr.into(), t.into());
    }

    // --- B staging: word w = tid + q*threads: slab_sel = w/256,
    // inner = w%256, kr = inner/16, cw = inner%16;
    // global = b_ptr + (slab_sel*16 + kr)*N + bx*64 + cw*4 (coalesced);
    // sts = b_base + slab_sel*1024 + (cw/4)*256 + kr*16 + (cw%4)*4.
    let b_per_thread = (b_words / threads).max(1) as u16;
    let b_ldg = p.alloc_n(b_per_thread);
    let b_sts = p.alloc_n(b_per_thread);
    let col_base = p.alloc();
    p.imul(col_base, bx.into(), Src::Imm(64));
    for q in 0..b_per_thread {
        let ldg = Reg(b_ldg.0 + q as u8);
        let sts = Reg(b_sts.0 + q as u8);
        let v = p.alloc();
        let w = p.alloc();
        p.iadd(w, tid.into(), Src::Imm(q as u32 * threads));
        p.shr(t, w.into(), Src::Imm(8)); // slab_sel
        p.and(u, w.into(), Src::Imm(255)); // inner
        p.shr(v, u.into(), Src::Imm(4)); // kr
                                         // global row = slab_sel*16 + kr
        p.imad(sts, t.into(), Src::Imm(16), v.into());
        p.imul(sts, sts.into(), n_stride.into());
        p.iadd(sts, sts.into(), col_base.into());
        p.and(w, u.into(), Src::Imm(15)); // cw
        p.imad(sts, w.into(), Src::Imm(4), sts.into());
        p.iadd(ldg, b_ptr.into(), sts.into());
        // smem target
        p.shl(sts, t.into(), Src::Imm(10)); // slab_sel*1024
        p.shr(t, w.into(), Src::Imm(2));
        p.imad(sts, t.into(), Src::Imm(256), sts.into());
        p.imad(sts, v.into(), Src::Imm(16), sts.into());
        p.and(t, w.into(), Src::Imm(3));
        p.imad(sts, t.into(), Src::Imm(4), sts.into());
        p.iadd(sts, sts.into(), Src::Imm(b_smem_base));
    }

    // MMA smem addresses: per buffer, per K-slab within the stage.
    // tiles[buf][slab] for A and B.
    let a_tiles = p.alloc_n(2 * n_bufs);
    let b_tiles = p.alloc_n(2 * n_bufs);
    p.shr(t, warpid.into(), Src::Imm(2)); // tile_r
    p.imul(t, t.into(), Src::Imm(256));
    p.and(u, warpid.into(), Src::Imm(3)); // tile_c
    p.imad(u, u.into(), Src::Imm(256), Src::Imm(b_smem_base));
    for buf in 0..n_bufs {
        for slab in 0..2u16 {
            let ar = Reg(a_tiles.0 + (buf * 2 + slab) as u8);
            let br = Reg(b_tiles.0 + (buf * 2 + slab) as u8);
            let a_off = buf as u32 * buf_stride + slab as u32 * a_bytes;
            let b_off = buf as u32 * buf_stride + slab as u32 * 1024;
            p.iadd(ar, t.into(), Src::Imm(a_off));
            p.iadd(br, u.into(), Src::Imm(b_off));
        }
    }

    // Accumulators.
    let acc = p.alloc_n(8);
    for i in 0..8 {
        p.mov(Reg(acc.0 + i), Src::Imm(0));
    }

    let kc = p.alloc();
    // Two in-flight value sets: stage data lives in registers for two
    // barrier periods before its shared-memory store, so a global-load
    // latency of several hundred cycles is fully covered (the cp.async
    // multi-stage pipeline idiom).
    let a_v = p.alloc_n(2);
    let b_v = p.alloc_n(2 * b_per_thread);
    p.mov(kc, Src::Imm(0));
    let p_k = p.alloc_pred();

    let emit_loads = |p: &mut ProgramBuilder, vset: u16| {
        p.ldg_cs(Reg(a_v.0 + vset as u8), a_ldg, 0, MemWidth::B32);
        for q in 0..b_per_thread {
            let d = Reg(b_v.0 + (vset * b_per_thread + q) as u8);
            p.ldg_cs(d, Reg(b_ldg.0 + q as u8), 0, MemWidth::B32);
        }
        p.iadd(a_ldg, a_ldg.into(), a_stride.into());
        p.iadd(a_ldg, a_ldg.into(), a_stride.into()); // += 2*a_stride
        for q in 0..b_per_thread {
            let ldg = Reg(b_ldg.0 + q as u8);
            p.imad(
                ldg,
                n_stride.into(),
                Src::Imm(TC_STAGE_K as u32),
                ldg.into(),
            );
        }
    };
    let emit_stores = |p: &mut ProgramBuilder, vset: u16, buf: u32| {
        let off = (buf * buf_stride) as i32;
        p.sts(a_sts, off, Reg(a_v.0 + vset as u8).into(), MemWidth::B32);
        for q in 0..b_per_thread {
            let v = Reg(b_v.0 + (vset * b_per_thread + q) as u8);
            p.sts(Reg(b_sts.0 + q as u8), off, v.into(), MemWidth::B32);
        }
    };
    let emit_mmas = |p: &mut ProgramBuilder, buf: u16| {
        for slab in 0..2u16 {
            let ar = Reg(a_tiles.0 + (buf * 2 + slab) as u8);
            let br = Reg(b_tiles.0 + (buf * 2 + slab) as u8);
            p.mma(MmaKind::I8_16x16x16, acc, ar, br);
        }
    };

    // Prologue: stage 0 staged to buffer 0; stages 1 and 2 in flight in the
    // two value sets.
    emit_loads(&mut p, 0); // stage 0
    emit_stores(&mut p, 0, 0);
    emit_loads(&mut p, 1); // stage 1 (held)
    emit_loads(&mut p, 0); // stage 2 (held)
    p.bar();

    // Phase i: store stage i+1's held values into buffer (i+1)%4, run the
    // MMAs of stage i from buffer i%4, then issue loads for stage i+3.
    // Four phases unrolled as two alternating 64-K bodies so K only needs
    // to be a multiple of 64; drivers upload three extra zero stages for
    // the trailing prefetch.
    let phase = |p: &mut ProgramBuilder, i: u16| {
        let vset = (i + 1) % 2;
        emit_stores(p, vset, ((i + 1) % n_bufs) as u32);
        emit_mmas(p, i % n_bufs);
        emit_loads(p, vset); // stage i+3
        p.bar();
    };
    p.label_here("stage_a");
    phase(&mut p, 0);
    phase(&mut p, 1);
    p.iadd(kc, kc.into(), Src::Imm(TC_K_UNIT as u32));
    p.isetp(p_k, kc.into(), kmax.into(), ICmp::GeU);
    p.bra_if("end", p_k, true);
    phase(&mut p, 2);
    phase(&mut p, 3);
    p.iadd(kc, kc.into(), Src::Imm(TC_K_UNIT as u32));
    p.isetp(p_k, kc.into(), kmax.into(), ICmp::LtU);
    p.bra_if("stage_a", p_k, true);
    p.label_here("end");

    // Epilogue: element idx = slot*32 + lane; r = slot*2 + lane/16,
    // c = lane%16; row = by*rows + tile_r*16 + r; col = bx*64 + tile_c*16+c.
    let c_addr = p.alloc();
    {
        p.shr(t, warpid.into(), Src::Imm(2)); // tile_r
        p.imad(t, by.into(), Src::Imm(rows_tiles as u32), t.into()); // by*rt + tile_r
        p.imul(t, t.into(), Src::Imm(16));
        p.shr(u, lane.into(), Src::Imm(4)); // lane/16
        p.iadd(t, t.into(), u.into()); // row for slot 0
        p.imul(t, t.into(), crs.into()); // row * row_stride_bytes
        p.iadd(c_addr, c_ptr.into(), t.into());
        p.and(u, warpid.into(), Src::Imm(3)); // tile_c
        p.imad(u, u.into(), Src::Imm(16), col_base.into()); // col tile base
        let v = p.alloc();
        p.and(v, lane.into(), Src::Imm(15));
        p.iadd(u, u.into(), v.into());
        p.shl(u, u.into(), Src::Imm(2));
        p.iadd(c_addr, c_addr.into(), u.into());
    }
    let crs2 = p.alloc();
    p.shl(crs2, crs.into(), Src::Imm(1)); // 2 rows per slot step
    for slot in 0..8u16 {
        p.stg(c_addr, 0, Reg(acc.0 + slot as u8).into(), MemWidth::B32);
        if slot < 7 {
            p.iadd(c_addr, c_addr.into(), crs2.into());
        }
    }
    p.exit();
    p.build()
}

/// Reorders a row-major `M x K_alloc` weight matrix into the slab-major
/// layout the TC kernel stages from: for each 16-wide K-slab, all rows'
/// 16 bytes contiguously. Done once at weight-setup time, exactly like the
/// paper's one-off weight preprocessing.
pub fn tile_a_for_tc(a: &Matrix<i8>) -> Vec<i8> {
    let (m, k_alloc) = a.shape();
    assert_eq!(k_alloc % 16, 0, "K allocation must be slab-aligned");
    let mut out = Vec::with_capacity(m * k_alloc);
    for s in 0..k_alloc / 16 {
        for r in 0..m {
            out.extend_from_slice(&a.row(r)[s * 16..s * 16 + 16]);
        }
    }
    out
}

/// Argument words for a TC (role) launch. `a_stride` is the byte size of
/// one slab region of the pre-tiled A (`M_padded * 16`).
#[allow(clippy::too_many_arguments)]
pub fn tc_args(
    a_ptr: u32,
    b_ptr: u32,
    c_ptr: u32,
    blocks_x: u32,
    k: u32,
    n: u32,
    a_stride: u32,
) -> Vec<u32> {
    vec![a_ptr, b_ptr, c_ptr, blocks_x, k, n, n * 4, a_stride]
}

/// Tensor-core-only GEMM (Table 3 baseline "TC").
pub fn run_tc(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>) -> Result<GemmOut, GemmError> {
    run_tc_with_pass(gpu, a, b, None)
}

/// [`run_tc`] with an optional program-rewrite pass applied to the emitted
/// kernel before launch.
pub fn run_tc_with_pass(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    pass: Option<ProgPass<'_>>,
) -> Result<GemmOut, GemmError> {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    let (m, k) = a.shape();
    let n = b.cols();
    let mp = pad_to(m.max(1), super::cuda::M_PAD);
    let np = pad_to(n.max(1), TC_N_TILE);
    let kp = pad_to(k.max(1), TC_K_UNIT);
    // Uploads carry extra zero stages for the pipeline prefetch.
    let a_pad = pad_matrix(a, mp, kp + 2 * TC_K_UNIT);
    let b_pad = pad_matrix(b, kp + 2 * TC_K_UNIT, np);
    gpu.mem.reset();
    let a_ptr = gpu.mem.upload_i8(&tile_a_for_tc(&a_pad)).addr;
    let b_ptr = gpu.mem.upload_i8(b_pad.as_slice()).addr;
    let c_dev = gpu.mem.alloc((mp * np * 4) as u32);
    let blocks_x = (np / TC_N_TILE) as u32;
    let blocks = blocks_x * (mp / 32) as u32;
    let prog = finish_program(tc_gemm_program(2, 0), pass);
    let kernel = Kernel::single(
        "gemm_tc",
        prog,
        blocks,
        8,
        tc_smem_bytes(2),
        tc_args(
            a_ptr,
            b_ptr,
            c_dev.addr,
            blocks_x,
            kp as u32,
            np as u32,
            (mp * 16) as u32,
        ),
    );
    let stats = gpu.launch(&kernel)?;
    let c_full = Matrix::from_vec(mp, np, gpu.mem.download_i32(c_dev, mp * np));
    Ok(GemmOut {
        c: crop_matrix(&c_full, m, n),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    #[test]
    fn tc_gemm_matches_reference() {
        let mut g = gpu();
        let a = gen::uniform_i8(30, 20, -128, 127, 1);
        let b = gen::uniform_i8(20, 70, -128, 127, 2);
        let out = run_tc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.tensor > 0, "must use Tensor cores");
    }

    #[test]
    fn tc_gemm_exact_tiles() {
        let mut g = gpu();
        let a = gen::uniform_i8(64, 64, -50, 50, 3);
        let b = gen::uniform_i8(64, 64, -50, 50, 4);
        let out = run_tc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        // 64x64 output of 16x16 tiles over K=64: 2 blocks x 8 warps x
        // 4 slabs (one K_UNIT iteration).
        assert_eq!(out.stats.issued.tensor, 64);
    }

    #[test]
    fn tc_gemm_odd_k_padding() {
        let mut g = gpu();
        let a = gen::uniform_i8(16, 197, -20, 20, 5);
        let b = gen::uniform_i8(197, 64, -20, 20, 6);
        let out = run_tc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn tc_op_count_matches_shape() {
        let mut g = gpu();
        let a = gen::uniform_i8(64, 64, -10, 10, 7);
        let b = gen::uniform_i8(64, 128, -10, 10, 8);
        let out = run_tc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        let expected_ops = 2 * 64u64 * 64 * 128;
        assert_eq!(out.stats.tc_ops, expected_ops);
    }
}
