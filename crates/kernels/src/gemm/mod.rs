//! GEMM kernels: the complete Table-3 family.
//!
//! Data conventions shared by all GEMM kernels:
//!
//! * `A` is uploaded **transposed** (`A^T`, `K x M`) so CUDA-core inner
//!   loops load it coalesced; the Tensor-core kernel uses row-major `A`.
//! * All drivers pad operands to kernel tile multiples with zeros and crop
//!   results; every strategy pads identically (fair normalization).
//! * The packed kernels consume biased (excess-`2^(b-1)`) codes prepared by
//!   `vitbit-core` and return biased lane sums; drivers apply the
//!   [`vitbit_core::correction::BiasCorrection`] on the host — an `O(M*N)`
//!   epilogue the paper folds into the kernel's bias term.

pub mod cache;
pub mod cuda;
pub mod fused;
pub mod tc;

pub use cache::{PackedWeight, PackedWeightCache, WeightCtx, WeightKey};
pub use cuda::{run_fc, run_ic, run_ic_fc, run_ic_fc_packed, run_packed, run_packed_cached};
pub use fused::{
    execute_fused, plan_fused, prepare_fused_b, run_fused_one_shot, FusedB, FusedBody, FusedGeom,
    FusedMode, FusedPlan,
};
#[allow(deprecated)]
pub use fused::{run_fused, run_fused_with_ratio, run_fused_with_ratio_cached};
pub use tc::run_tc;

use vitbit_sim::KernelStats;
use vitbit_tensor::Matrix;

/// Result of a GEMM driver: the integer output and the launch statistics.
#[derive(Debug, Clone)]
pub struct GemmOut {
    /// `M x N` result (cropped to the caller's shape).
    pub c: Matrix<i32>,
    /// Statistics of the kernel launch(es).
    pub stats: KernelStats,
}
