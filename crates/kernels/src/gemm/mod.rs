//! GEMM kernels: the complete Table-3 family.
//!
//! Data conventions shared by all GEMM kernels:
//!
//! * `A` is uploaded **transposed** (`A^T`, `K x M`) so CUDA-core inner
//!   loops load it coalesced; the Tensor-core kernel uses row-major `A`.
//! * All drivers pad operands to kernel tile multiples with zeros and crop
//!   results; every strategy pads identically (fair normalization).
//! * The packed kernels consume biased (excess-`2^(b-1)`) codes prepared by
//!   `vitbit-core` and return biased lane sums; drivers apply the
//!   [`vitbit_core::correction::BiasCorrection`] on the host — an `O(M*N)`
//!   epilogue the paper folds into the kernel's bias term.

pub mod abft;
pub mod cache;
pub mod cuda;
pub mod fused;
pub mod tc;

pub use abft::{verify_gemm, weight_row_sums, AbftCheck};
pub use cache::{PackedWeight, PackedWeightCache, WeightCtx, WeightKey};
pub use cuda::{
    run_fc, run_fc_with_pass, run_ic, run_ic_fc, run_ic_fc_packed, run_ic_fc_with_pass,
    run_ic_with_pass, run_packed, run_packed_cached,
};
pub use fused::{
    execute_fused, materialize_fused, plan_fused, prepare_fused_b, run_fused_one_shot, FusedB,
    FusedBody, FusedGeom, FusedGeomSpec, FusedMode, FusedPlan, FusedPlanSpec,
};
#[allow(deprecated)]
pub use fused::{run_fused, run_fused_with_ratio, run_fused_with_ratio_cached};
pub use tc::{run_tc, run_tc_with_pass};

use std::sync::Arc;
use vitbit_sim::{KernelStats, LaunchError, Program};
use vitbit_tensor::Matrix;

/// Optional per-program rewrite hook the `*_with_pass` drivers apply to
/// every emitted program before launch (the serving engine threads the
/// `vitbit-sched` static scheduler through here). Returning `None` keeps
/// the program exactly as emitted.
pub type ProgPass<'a> = &'a dyn Fn(&Program) -> Option<Arc<Program>>;

/// Applies `pass` (when present) to `p`; the emitted program is kept
/// untouched when there is no pass or the pass declines.
pub(crate) fn finish_program(p: Program, pass: Option<ProgPass<'_>>) -> Arc<Program> {
    if let Some(f) = pass {
        if let Some(rewritten) = f(&p) {
            return rewritten;
        }
    }
    p.into_arc()
}

/// Result of a GEMM driver: the integer output and the launch statistics.
#[derive(Debug, Clone)]
pub struct GemmOut {
    /// `M x N` result (cropped to the caller's shape).
    pub c: Matrix<i32>,
    /// Statistics of the kernel launch(es).
    pub stats: KernelStats,
}

/// Why a GEMM driver failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GemmError {
    /// The simulated launch failed: a watchdog timeout (hung SM) or a
    /// contained fault (see [`vitbit_sim::LaunchError`]).
    Launch(LaunchError),
    /// A fused plan was executed without its staged `B` operands.
    MissingStagedB,
}

impl std::fmt::Display for GemmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemmError::Launch(e) => write!(f, "{e}"),
            GemmError::MissingStagedB => {
                write!(f, "fused plan executed without staged B operands")
            }
        }
    }
}

impl std::error::Error for GemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GemmError::Launch(e) => Some(e),
            GemmError::MissingStagedB => None,
        }
    }
}

impl From<LaunchError> for GemmError {
    fn from(e: LaunchError) -> Self {
        GemmError::Launch(e)
    }
}
