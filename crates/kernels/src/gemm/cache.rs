//! Packed-weight caching for the stationary operand of weight GEMMs.
//!
//! GEMMs run as `X x W` (see the orientation note in `vitbit-vit`), so the
//! *packed* operand of the VitBit kernels is the weight matrix: its
//! [`pack_matrix_rows`] preprocessing and the weight-side column sums of
//! the [`BiasCorrection`](vitbit_core::correction::BiasCorrection) depend
//! only on the weight values, the [`PackSpec`] and the launch geometry —
//! not on the input. Re-running them on every launch (as the uncached
//! drivers do) repeats an `O(K*N)` encode per GEMM; with a cache, each
//! weight is packed once at first use and every later launch reuses the
//! host-side packed bytes.
//!
//! Keying rules (DESIGN.md, "Simulator concurrency model" /
//! "Packed-weight cache"): an entry is addressed by
//!
//! * a caller-assigned **weight identity** (`u64`), unique per distinct
//!   weight matrix for the lifetime of the cache — the cache never hashes
//!   weight *values*, so reusing an id for different data returns stale
//!   packs (callers that mutate weights must [`PackedWeightCache::clear`]
//!   or retire the id);
//! * the [`PackSpec`] (different lane geometry packs differently);
//! * the column slice of the weight the launch consumes (`col_lo`,
//!   `col_len`) — fused launches pack only the INT share `B1`;
//! * the padded upload shape (`up_rows`, `cols_padded`) — padding is part
//!   of the packed bytes.
//!
//! Device pointers are *not* cached: `gpu.mem` is reset per launch, so
//! only host-side artifacts are reusable.

use std::collections::HashMap;
use std::sync::Arc;

use vitbit_core::pack::pack_matrix_rows;
use vitbit_core::policy::PackSpec;
use vitbit_tensor::Matrix;

/// Cache key: weight identity plus everything that shapes the packed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightKey {
    /// Caller-assigned identity of the weight matrix.
    pub weight: u64,
    /// Packing geometry.
    pub spec: PackSpec,
    /// First raw weight column this launch packs.
    pub col_lo: usize,
    /// Raw column count of the packed share.
    pub col_len: usize,
    /// Rows of the upload-shaped (prefetch-padded) operand.
    pub up_rows: usize,
    /// Padded column count of the packed share.
    pub cols_padded: usize,
}

/// One cached weight: the packed upload-shaped operand and the padded
/// column sums feeding the bias correction. `Arc`-shared so cache hits
/// copy pointers, not matrices.
#[derive(Debug, Clone)]
pub struct PackedWeight {
    /// `pack_matrix_rows` of the padded, upload-shaped weight share.
    pub packed: Arc<Matrix<u32>>,
    /// Signed column sums of the padded share (zero K-padding rows
    /// contribute nothing, so compute- and upload-shaped sums agree).
    pub colsum: Arc<Vec<i64>>,
}

impl PackedWeight {
    /// Packs `b_up` (padded, upload-shaped) without touching any cache.
    ///
    /// # Panics
    /// Panics when `b_up`'s width is not a lane multiple (drivers always
    /// pad to one).
    pub fn build(b_up: &Matrix<i8>, spec: &PackSpec) -> Self {
        let packed = pack_matrix_rows(b_up, spec).expect("padded width is a lane multiple");
        Self {
            packed: Arc::new(packed),
            colsum: Arc::new(colsum_i8(b_up)),
        }
    }
}

/// Signed per-column sums of an `i8` matrix.
pub fn colsum_i8(m: &Matrix<i8>) -> Vec<i64> {
    let mut out = vec![0i64; m.cols()];
    for r in 0..m.rows() {
        for (j, &x) in m.row(r).iter().enumerate() {
            out[j] += i64::from(x);
        }
    }
    out
}

/// Host-side cache of packed stationary weights.
#[derive(Debug, Default)]
pub struct PackedWeightCache {
    entries: HashMap<WeightKey, PackedWeight>,
    hits: u64,
    misses: u64,
}

impl PackedWeightCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct (weight, geometry) entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been packed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to pack.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every entry (required before reusing weight ids for new data).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Returns the cached pack for `key`, building it with `build` on miss.
    pub fn get_or_pack(
        &mut self,
        key: WeightKey,
        build: impl FnOnce() -> PackedWeight,
    ) -> PackedWeight {
        if let Some(e) = self.entries.get(&key) {
            self.hits += 1;
            return e.clone();
        }
        self.misses += 1;
        let e = build();
        self.entries.insert(key, e.clone());
        e
    }
}

/// Optional cache handle a GEMM driver threads to its packing site: the
/// cache plus the caller's identity for the weight operand.
pub type WeightCtx<'a> = Option<(&'a mut PackedWeightCache, u64)>;

/// Packs (or fetches) the weight share `b_up`, which holds raw columns
/// `col_lo .. col_lo + col_len` of weight `ctx.1` padded to its shape.
/// With `ctx == None` the pack always runs (the uncached drivers).
pub fn pack_weight_share(
    ctx: &mut WeightCtx<'_>,
    spec: &PackSpec,
    b_up: &Matrix<i8>,
    col_lo: usize,
    col_len: usize,
) -> PackedWeight {
    match ctx {
        Some((cache, weight)) => {
            let key = WeightKey {
                weight: *weight,
                spec: *spec,
                col_lo,
                col_len,
                up_rows: b_up.rows(),
                cols_padded: b_up.cols(),
            };
            cache.get_or_pack(key, || PackedWeight::build(b_up, spec))
        }
        None => PackedWeight::build(b_up, spec),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn weight(seed: i8) -> Matrix<i8> {
        Matrix::from_fn(16, 8, |r, c| ((r * 8 + c) as i8).wrapping_mul(seed) % 30)
    }

    #[test]
    fn cache_hits_after_first_pack() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let w = weight(1);
        let mut cache = PackedWeightCache::new();
        let mut ctx: WeightCtx = Some((&mut cache, 7));
        let first = pack_weight_share(&mut ctx, &spec, &w, 0, 8);
        let second = pack_weight_share(&mut ctx, &spec, &w, 0, 8);
        assert!(
            Arc::ptr_eq(&first.packed, &second.packed),
            "hit must share the pack"
        );
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn distinct_ids_and_geometries_do_not_collide() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let w = weight(1);
        let mut cache = PackedWeightCache::new();
        let a = pack_weight_share(&mut Some((&mut cache, 1)), &spec, &w, 0, 8);
        let b = pack_weight_share(&mut Some((&mut cache, 2)), &spec, &w, 0, 8);
        assert!(
            !Arc::ptr_eq(&a.packed, &b.packed),
            "ids partition the cache"
        );
        // Same id, different slice geometry: separate entry.
        let _ = pack_weight_share(&mut Some((&mut cache, 1)), &spec, &w, 0, 4);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn uncached_path_matches_cached_bytes() {
        let spec = PackSpec::guarded(4, 4).unwrap();
        let w = Matrix::from_fn(8, 8, |r, c| ((r + c) % 15) as i8 - 7);
        let mut cache = PackedWeightCache::new();
        let cached = pack_weight_share(&mut Some((&mut cache, 3)), &spec, &w, 0, 8);
        let plain = pack_weight_share(&mut None, &spec, &w, 0, 8);
        assert_eq!(*cached.packed, *plain.packed);
        assert_eq!(*cached.colsum, *plain.colsum);
    }

    #[test]
    fn clear_forces_repack() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let w = weight(2);
        let mut cache = PackedWeightCache::new();
        let _ = pack_weight_share(&mut Some((&mut cache, 1)), &spec, &w, 0, 8);
        cache.clear();
        assert!(cache.is_empty());
        let _ = pack_weight_share(&mut Some((&mut cache, 1)), &spec, &w, 0, 8);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn colsum_matches_naive() {
        let w = weight(3);
        let naive: Vec<i64> = (0..w.cols())
            .map(|j| (0..w.rows()).map(|r| i64::from(w[(r, j)])).sum())
            .collect();
        assert_eq!(colsum_i8(&w), naive);
    }
}
