//! CUDA-core GEMM kernels: INT (zero-masking), FP32 (converted) and
//! packed-INT (SWAR) variants, plus the IC+FC and IC+FC+packing fused
//! CUDA-only kernels of the paper's Section 3.2 study.
//!
//! One program generator covers all variants. Warp geometry: each warp owns
//! a 16-row x 32-column tile of its element type per *chunk*, thread micro
//! tile 4x4 (lane = `ry*8 + cx`, rows `ry*4..`, cols `cx*4..`), and warps
//! grid-stride over column chunks so arbitrary (padded) column counts work
//! for every role. Per k-step a thread issues 4 A-loads, 4 B-loads and 16
//! MACs — the instruction mix whose INT/LSU balance produces the paper's
//! measured co-scheduling gains.

use super::cache::{pack_weight_share, WeightCtx};
use super::{finish_program, GemmError, GemmOut, ProgPass};
use crate::shapes::{crop_matrix, pad_matrix, pad_to};
use vitbit_core::correction::BiasCorrection;
use vitbit_core::policy::{PackPolicy, PackSpec};
use vitbit_core::ratio::eq1_split;
use vitbit_sim::isa::{ICmp, MemWidth, Reg, SReg, Src};
use vitbit_sim::program::{Program, ProgramBuilder};
use vitbit_sim::{Gpu, Kernel};
use vitbit_tensor::Matrix;

/// Rows every GEMM driver pads `M` to (covers all kernel row tiles).
pub const M_PAD: usize = 64;
/// Columns per warp chunk (in role element units).
pub const CHUNK_COLS: usize = 32;
/// K padding unit.
pub const K_PAD: usize = 16;
/// Argument slots consumed per CUDA GEMM role.
pub const ARGS_PER_ROLE: u16 = 13;

/// Element flavor of one CUDA GEMM role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CudaElem {
    /// Signed INT8-class codes, zero-masked into 32-bit registers.
    Int,
    /// f32 operands (the FC conversion path).
    Fp,
    /// Biased codes packed per `PackSpec` (B side packed, A side biased u8).
    Packed(PackSpec),
}

impl CudaElem {
    fn a_bytes(&self) -> u32 {
        match self {
            CudaElem::Int | CudaElem::Packed(_) => 1,
            CudaElem::Fp => 4,
        }
    }
    fn b_bytes(&self) -> u32 {
        match self {
            CudaElem::Int => 1,
            CudaElem::Fp | CudaElem::Packed(_) => 4,
        }
    }
}

/// Geometry of one CUDA GEMM role within its launch.
#[derive(Debug, Clone, Copy)]
pub struct RoleGeom {
    /// Warps of this role per block.
    pub role_warps: u32,
    /// Row groups the role's warps split into (a block covers
    /// `row_groups * 16` rows; 1 standalone, 2 inside 32-row fused blocks).
    pub row_groups: u32,
    /// K-split factor: each (chunk, slice) pair is an independent warp task
    /// over `K / k_splits` of the inner dimension, writing partial sums
    /// into its own output slice (the driver reduces them on the host, an
    /// `O(M*N)` epilogue like the bias correction). Spreads narrow column
    /// shares across many warps.
    pub k_splits: u32,
}

impl RoleGeom {
    /// Standalone launch: 8 warps, one row group, K-split as given.
    pub fn standalone(k_splits: u32) -> Self {
        Self {
            role_warps: 8,
            row_groups: 1,
            k_splits,
        }
    }

    /// Warps per row group.
    pub fn group_warps(&self) -> u32 {
        self.role_warps / self.row_groups
    }
}

/// Builds one CUDA GEMM role program.
///
/// `geom` fixes the warp layout; `arg_base` offsets all `Ldc` indices so
/// several roles share one kernel argument list. Argument layout:
/// `[at, b, c, blocks_x, n_tasks, k_slice, row_stride_a, row_stride_b,
/// c_row_stride, role_warp_base, task_stride, c_slice_stride, ctaid_base]`
/// (`ctaid_base` rebases block ids inside heterogeneous launches).
pub fn cuda_gemm_program(elem: CudaElem, geom: RoleGeom, arg_base: u16) -> Program {
    let role_warps = geom.group_warps();
    assert!(
        geom.role_warps.is_multiple_of(geom.row_groups),
        "warps divide row groups"
    );
    let name = match elem {
        CudaElem::Int => "gemm_ic",
        CudaElem::Fp => "gemm_fc",
        CudaElem::Packed(_) => "gemm_ic_packed",
    };
    let mut p = ProgramBuilder::new(name);

    // Unroll / spill cadence.
    let (lanes, spill_every) = match elem {
        CudaElem::Packed(spec) => {
            let chunk = spec.chunk_len().clamp(1, 16);
            // Largest power of two <= chunk (divides the K padding of 16).
            let u = 1u32 << (31 - chunk.leading_zeros());
            (
                spec.lanes,
                if spec.policy == PackPolicy::Paper {
                    None
                } else {
                    Some(u)
                },
            )
        }
        _ => (1, None),
    };
    let unroll = match elem {
        CudaElem::Packed(_) => spill_every.unwrap_or(8),
        _ => 8,
    };

    // Constants.
    let at = p.alloc();
    let b_ptr = p.alloc();
    let c_ptr = p.alloc();
    let blocks_x = p.alloc();
    let n_tasks = p.alloc();
    let kmax = p.alloc(); // K per slice (the task's loop bound)
    let rsa = p.alloc();
    let rsb = p.alloc();
    let crs = p.alloc();
    let wbase = p.alloc();
    let tstride = p.alloc();
    let c_slice = p.alloc();
    let ctaid_base = p.alloc();
    for (i, r) in [
        at, b_ptr, c_ptr, blocks_x, n_tasks, kmax, rsa, rsb, crs, wbase, tstride, c_slice,
        ctaid_base,
    ]
    .iter()
    .enumerate()
    {
        p.ldc(*r, arg_base + i as u16);
    }

    // Identity.
    let ctaid = p.alloc();
    let lane = p.alloc();
    let warpid = p.alloc();
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(lane, SReg::LaneId);
    p.sreg(warpid, SReg::WarpId);
    p.isub(ctaid, ctaid.into(), ctaid_base.into());
    let bx = p.alloc();
    let by = p.alloc();
    p.iremu(bx, ctaid.into(), blocks_x.into());
    p.idivu(by, ctaid.into(), blocks_x.into());
    let cx = p.alloc();
    let ry = p.alloc();
    p.and(cx, lane.into(), Src::Imm(7));
    p.shr(ry, lane.into(), Src::Imm(3));
    let w_in_role = p.alloc();
    p.isub(w_in_role, warpid.into(), wbase.into());
    let task = p.alloc();
    // The role's warps split into row groups; within a group, warps stride
    // the (chunk, k-slice) task space. Tasks cluster in low-bx blocks so
    // co-tasked warps share an SM's L1 (they read the same A rows).
    // task = bx * Wg + (w_in_role % Wg); row_sub = w_in_role / Wg.
    let row0 = p.alloc();
    let t0 = p.alloc();
    if geom.row_groups > 1 {
        p.iremu(t0, w_in_role.into(), Src::Imm(role_warps));
        p.imad(task, bx.into(), Src::Imm(role_warps), t0.into());
        p.idivu(t0, w_in_role.into(), Src::Imm(role_warps)); // row_sub
        p.imad(t0, by.into(), Src::Imm(geom.row_groups), t0.into());
        p.imul(t0, t0.into(), Src::Imm(16));
    } else {
        p.imad(task, bx.into(), Src::Imm(role_warps), w_in_role.into());
        p.imul(t0, by.into(), Src::Imm(16));
    }
    p.imad(row0, ry.into(), Src::Imm(4), t0.into());
    // a base address for this warp's rows (constant across chunks).
    let a_base = p.alloc();
    match elem.a_bytes() {
        1 => p.iadd(a_base, at.into(), row0.into()),
        _ => {
            p.shl(t0, row0.into(), Src::Imm(2));
            p.iadd(a_base, at.into(), t0.into());
        }
    }
    let cx4 = p.alloc();
    p.imul(cx4, cx.into(), Src::Imm(4));

    // Working registers. The inner loop is software-pipelined with
    // `unroll/2` stages (loads for step u+depth issue before the MACs of
    // step u), hiding several hundred cycles of L2/DRAM latency exactly
    // like deep cp.async pipelines in real kernels. Packed specs with a
    // 1-step guard chunk degrade to plain load-then-MAC.
    let depth: u16 = (unroll / 2) as u16;
    let n_sets: u16 = if depth == 0 {
        1
    } else {
        (2 * depth).min(unroll as u16)
    };
    let a_addr = p.alloc();
    let b_addr = p.alloc();
    let c_addr = p.alloc();
    let kc = p.alloc();
    let col0 = p.alloc();
    let accs = p.alloc_n(16);
    let a_frag = p.alloc_n(4 * n_sets);
    let b_frag = p.alloc_n(4 * n_sets);
    let wides = if lanes > 1 {
        Some(p.alloc_n(16 * lanes as u16))
    } else {
        None
    };
    let tsp = p.alloc();
    let p_chunk = p.alloc_pred();
    let p_k = p.alloc_pred();

    let reg = |base: Reg, i: u16| Reg(base.0 + i as u8);
    let chunk = p.alloc();
    let slice = p.alloc();
    let ks = geom.k_splits;

    p.label_here("col_loop");
    p.isetp(p_chunk, task.into(), n_tasks.into(), ICmp::GeU);
    p.bra_if("end", p_chunk, true);

    // Decompose the task into (column chunk, K slice).
    if ks > 1 {
        p.idivu(chunk, task.into(), Src::Imm(ks));
        p.iremu(slice, task.into(), Src::Imm(ks));
    } else {
        p.mov(chunk, task.into());
        p.mov(slice, Src::Imm(0));
    }
    // col0 = chunk*32 + cx*4 (element units of this role).
    p.imad(col0, chunk.into(), Src::Imm(CHUNK_COLS as u32), cx4.into());
    match elem.b_bytes() {
        1 => p.iadd(b_addr, b_ptr.into(), col0.into()),
        _ => {
            p.shl(tsp, col0.into(), Src::Imm(2));
            p.iadd(b_addr, b_ptr.into(), tsp.into());
        }
    }
    p.mov(a_addr, a_base.into());
    if ks > 1 {
        // Advance both operands to the slice's K range.
        p.imul(tsp, slice.into(), kmax.into()); // k offset in rows
        let koff = p.alloc();
        p.imul(koff, tsp.into(), rsa.into());
        p.iadd(a_addr, a_addr.into(), koff.into());
        p.imul(koff, tsp.into(), rsb.into());
        p.iadd(b_addr, b_addr.into(), koff.into());
    }
    for i in 0..16 {
        p.mov(reg(accs, i), Src::Imm(0));
    }
    if let Some(w) = wides {
        for i in 0..16 * lanes as u16 {
            p.mov(reg(w, i), Src::Imm(0));
        }
    }
    p.mov(kc, Src::Imm(0));

    // Helper closures expressed as small emit functions.
    let emit_loads = |p: &mut ProgramBuilder, set: u16, a_addr: Reg, b_addr: Reg| {
        match elem {
            CudaElem::Int => {
                for i in 0..4u16 {
                    p.ldg(reg(a_frag, set * 4 + i), a_addr, i as i32, MemWidth::B8S);
                }
            }
            CudaElem::Packed(_) => {
                for i in 0..4u16 {
                    p.ldg(reg(a_frag, set * 4 + i), a_addr, i as i32, MemWidth::B8U);
                }
            }
            // f32 fragment rows are 16-byte aligned: one LDG.128.
            CudaElem::Fp => p.ldg_v4(reg(a_frag, set * 4), a_addr, 0),
        }
        match elem {
            CudaElem::Int => {
                for j in 0..4u16 {
                    p.ldg(reg(b_frag, set * 4 + j), b_addr, j as i32, MemWidth::B8S);
                }
            }
            // A warp consumes a full 128-B line per k-step with no reuse:
            // one streaming LDG.128 (ld.global.cs) per step, so these
            // fragments cannot thrash the L1 lines the INT warps and the
            // A operand rely on.
            CudaElem::Packed(_) | CudaElem::Fp => {
                p.ldg_v4_cs(reg(b_frag, set * 4), b_addr, 0);
            }
        }
    };
    let emit_macs = |p: &mut ProgramBuilder, set: u16| {
        for i in 0..4u16 {
            for j in 0..4u16 {
                let acc = reg(accs, i * 4 + j);
                let av = reg(a_frag, set * 4 + i);
                let bv = reg(b_frag, set * 4 + j);
                match elem {
                    CudaElem::Fp => p.ffma(acc, av.into(), bv.into(), acc.into()),
                    _ => p.imad(acc, av.into(), bv.into(), acc.into()),
                }
            }
        }
    };

    // Prologue: preload `depth` steps.
    for s in 0..depth {
        emit_loads(&mut p, s % n_sets, a_addr, b_addr);
        p.iadd(a_addr, a_addr.into(), rsa.into());
        p.iadd(b_addr, b_addr.into(), rsb.into());
    }
    p.label_here("k_loop");
    for u in 0..unroll as u16 {
        if depth > 0 {
            // Load step u+depth (wraps into the next group; the drivers
            // over-allocate zero K-rows so trailing prefetches stay
            // in-bounds), then MAC step u.
            emit_loads(&mut p, (u + depth) % n_sets, a_addr, b_addr);
            p.iadd(a_addr, a_addr.into(), rsa.into());
            p.iadd(b_addr, b_addr.into(), rsb.into());
            emit_macs(&mut p, u % n_sets);
        } else {
            emit_loads(&mut p, 0, a_addr, b_addr);
            p.iadd(a_addr, a_addr.into(), rsa.into());
            p.iadd(b_addr, b_addr.into(), rsb.into());
            emit_macs(&mut p, 0);
        }
    }
    // Packed guarded spill.
    if let (Some(w), CudaElem::Packed(spec)) = (wides, elem) {
        if spill_every.is_some() {
            emit_spill(&mut p, &spec, accs, w, tsp);
        }
    }
    p.iadd(kc, kc.into(), Src::Imm(unroll));
    p.isetp(p_k, kc.into(), kmax.into(), ICmp::LtU);
    p.bra_if("k_loop", p_k, true);

    // Paper-policy packed: one final spill so the epilogue reads wides.
    if let (Some(w), CudaElem::Packed(spec)) = (wides, elem) {
        if spill_every.is_none() {
            emit_spill(&mut p, &spec, accs, w, tsp);
        }
    }

    // Epilogue: c_addr = c + slice*c_slice_stride + row0 * crs + col_bytes.
    p.imul(tsp, row0.into(), crs.into());
    p.iadd(c_addr, c_ptr.into(), tsp.into());
    if ks > 1 {
        p.imul(tsp, slice.into(), c_slice.into());
        p.iadd(c_addr, c_addr.into(), tsp.into());
    }
    // Column byte offset: packed outputs expand to `lanes` real columns
    // (lanes may be 3, so multiply rather than shift).
    let col_bytes_per_unit = match elem {
        CudaElem::Packed(spec) => 4 * spec.lanes,
        _ => 4,
    };
    p.imul(tsp, col0.into(), Src::Imm(col_bytes_per_unit));
    p.iadd(c_addr, c_addr.into(), tsp.into());
    for i in 0..4u16 {
        match elem {
            CudaElem::Packed(_) => {
                let w = wides.expect("packed has wides");
                for j in 0..4u16 {
                    for l in 0..lanes as u16 {
                        let idx = (i * 4 + j) * lanes as u16 + l;
                        let off = ((j * lanes as u16 + l) * 4) as i32;
                        p.stg(c_addr, off, reg(w, idx).into(), MemWidth::B32);
                    }
                }
            }
            _ => {
                for j in 0..4u16 {
                    p.stg(
                        c_addr,
                        (j * 4) as i32,
                        reg(accs, i * 4 + j).into(),
                        MemWidth::B32,
                    );
                }
            }
        }
        if i < 3 {
            p.iadd(c_addr, c_addr.into(), crs.into());
        }
    }

    p.iadd(task, task.into(), tstride.into());
    p.bra("col_loop");
    p.label_here("end");
    p.exit();
    p.build()
}

/// Emits lane extraction of all 16 packed accumulators into wide registers
/// and clears the accumulators.
fn emit_spill(p: &mut ProgramBuilder, spec: &PackSpec, accs: Reg, wides: Reg, tmp: Reg) {
    let lanes = spec.lanes as u16;
    let mask = spec.lane_mask();
    for idx in 0..16u16 {
        let acc = Reg(accs.0 + idx as u8);
        for pos in 0..lanes {
            // Position 0 is the first packed element = most significant lane.
            let lane = spec.lanes - 1 - pos as u32;
            let shift = spec.lane_shift(lane);
            let wide = Reg(wides.0 + (idx * lanes + pos) as u8);
            if shift > 0 {
                p.shr(tmp, acc.into(), Src::Imm(shift));
                if lane != spec.lanes - 1 {
                    p.and(tmp, tmp.into(), Src::Imm(mask));
                }
                p.iadd(wide, wide.into(), tmp.into());
            } else {
                p.and(tmp, acc.into(), Src::Imm(mask));
                p.iadd(wide, wide.into(), tmp.into());
            }
        }
        p.mov(acc, Src::Imm(0));
    }
}

/// Picks a K-split factor: enough (chunk, slice) tasks to feed the machine
/// (target >= 128 warp tasks), subject to 16-aligned slices.
pub fn pick_k_splits(chunks: usize, blocks_y: usize, kp: usize) -> u32 {
    let mut ks = 1u32;
    while ks < 8 && chunks * ks as usize * blocks_y < 128 && kp.is_multiple_of(ks as usize * 2 * 16)
    {
        ks *= 2;
    }
    ks
}

/// Computes the 12 argument words of one role.
#[allow(clippy::too_many_arguments)]
pub fn role_args(
    at_ptr: u32,
    b_ptr: u32,
    c_ptr: u32,
    blocks_x: u32,
    n_chunks: u32,
    kp: u32,
    elem: &CudaElem,
    m_padded: u32,
    b_cols: u32,
    c_cols_bytes: u32,
    role_warp_base: u32,
    geom: &RoleGeom,
    ctaid_base: u32,
) -> Vec<u32> {
    assert_eq!(kp % geom.k_splits, 0, "K must divide into slices");
    vec![
        at_ptr,
        b_ptr,
        c_ptr,
        blocks_x,
        n_chunks * geom.k_splits,
        kp / geom.k_splits,
        m_padded * elem.a_bytes(),
        b_cols * elem.b_bytes(),
        c_cols_bytes,
        role_warp_base,
        blocks_x * geom.group_warps(),
        m_padded * c_cols_bytes,
        ctaid_base,
    ]
}

/// Sums `k_splits` partial-output slices of `len` words each, wrapping
/// (exact for biased u32 sums, i32 accumulators, and bit-stored f32 when
/// interpreted by the caller).
pub fn reduce_slices_u32(raw: &[u32], len: usize, k_splits: u32) -> Vec<u32> {
    assert_eq!(raw.len(), len * k_splits as usize);
    let mut out = raw[..len].to_vec();
    for s in 1..k_splits as usize {
        for (o, &v) in out.iter_mut().zip(&raw[s * len..(s + 1) * len]) {
            *o = o.wrapping_add(v);
        }
    }
    out
}

/// f32 variant of [`reduce_slices_u32`] (partial sums added in slice order).
pub fn reduce_slices_f32(raw: &[f32], len: usize, k_splits: u32) -> Vec<f32> {
    assert_eq!(raw.len(), len * k_splits as usize);
    let mut out = raw[..len].to_vec();
    for s in 1..k_splits as usize {
        for (o, &v) in out.iter_mut().zip(&raw[s * len..(s + 1) * len]) {
            *o += v;
        }
    }
    out
}

/// Operand upload helpers shared with the fused kernels.
pub mod upload_ops {
    use super::*;

    /// Uploads `m` transposed (`cols x rows`), as raw `i8`.
    pub fn transposed_i8(gpu: &mut Gpu, m: &Matrix<i8>) -> u32 {
        let t = m.transpose();
        gpu.mem.upload_i8(t.as_slice()).addr
    }

    /// Uploads `m` transposed as `f32` bit patterns.
    pub fn transposed_f32(gpu: &mut Gpu, m: &Matrix<f32>) -> u32 {
        let t = m.transpose();
        gpu.mem.upload_f32(t.as_slice()).addr
    }

    /// Biased-code transpose upload for the packed kernel's A operand.
    pub fn transposed_biased(gpu: &mut Gpu, m: &Matrix<i8>, spec: &PackSpec) -> u32 {
        let bias = spec.weight_bias();
        let t = m.transpose();
        let biased: Vec<i8> = t
            .as_slice()
            .iter()
            .map(|&x| (i32::from(x) + bias) as i8)
            .collect();
        gpu.mem.upload_i8(&biased).addr
    }
}

struct PaddedProblem {
    /// Compute-shaped A operand (`K = kp`): corrections use this (the
    /// weight-side column sums come from the packed-weight path).
    a: Matrix<i8>,
    /// Upload-shaped operands with one extra zero K-tile so the software
    /// pipeline's final prefetch stays in bounds.
    a_up: Matrix<i8>,
    b_up: Matrix<i8>,
    m: usize,
    n: usize,
    #[allow(dead_code)]
    k: usize,
    mp: usize,
    np: usize,
    kp: usize,
}

fn pad_problem(a: &Matrix<i8>, b: &Matrix<i8>, n_unit: usize) -> PaddedProblem {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    let (m, k) = a.shape();
    let n = b.cols();
    let mp = pad_to(m.max(1), M_PAD);
    let np = pad_to(n.max(1), n_unit);
    let kp = pad_to(k.max(1), K_PAD);
    let a_pad = pad_matrix(a, mp, kp);
    let b_pad = pad_matrix(b, kp, np);
    let a_up = pad_matrix(&a_pad, mp, kp + K_PAD);
    let b_up = pad_matrix(&b_pad, kp + K_PAD, np);
    PaddedProblem {
        a: a_pad,
        a_up,
        b_up,
        m,
        n,
        k,
        mp,
        np,
        kp,
    }
}

fn grid_for(np_chunks: usize, role_warps: u32) -> u32 {
    (np_chunks as u32).div_ceil(role_warps).max(1)
}

/// INT-CUDA-core GEMM (zero-masking baseline, Table 3 "IC").
pub fn run_ic(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>) -> Result<GemmOut, GemmError> {
    run_ic_with_pass(gpu, a, b, None)
}

/// [`run_ic`] with an optional program-rewrite pass applied to the emitted
/// kernel before launch.
pub fn run_ic_with_pass(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    pass: Option<ProgPass<'_>>,
) -> Result<GemmOut, GemmError> {
    let p = pad_problem(a, b, CHUNK_COLS);
    gpu.mem.reset();
    let at_ptr = upload_ops::transposed_i8(gpu, &p.a_up);
    let b_ptr = gpu.mem.upload_i8(p.b_up.as_slice()).addr;
    let n_chunks = p.np / CHUNK_COLS;
    let geom = RoleGeom::standalone(pick_k_splits(n_chunks, p.mp / 16, p.kp));
    let ks = geom.k_splits;
    let c_dev = gpu.mem.alloc((p.mp * p.np * 4 * ks as usize) as u32);
    let blocks_x = grid_for(n_chunks * ks as usize, geom.role_warps);
    let blocks = blocks_x * (p.mp / 16) as u32;
    let elem = CudaElem::Int;
    let args = role_args(
        at_ptr,
        b_ptr,
        c_dev.addr,
        blocks_x,
        n_chunks as u32,
        p.kp as u32,
        &elem,
        p.mp as u32,
        p.np as u32,
        (p.np * 4) as u32,
        0,
        &geom,
        0,
    );
    let prog = finish_program(cuda_gemm_program(elem, geom, 0), pass);
    let kernel = Kernel::single("gemm_ic", prog, blocks, geom.role_warps, 0, args);
    let stats = gpu.launch(&kernel)?;
    let raw = gpu.mem.download_u32(c_dev, p.mp * p.np * ks as usize);
    let summed = reduce_slices_u32(&raw, p.mp * p.np, ks);
    let c_full = Matrix::from_vec(p.mp, p.np, summed.into_iter().map(|x| x as i32).collect());
    Ok(GemmOut {
        c: crop_matrix(&c_full, p.m, p.n),
        stats,
    })
}

/// FP-CUDA-core GEMM (INT operands converted to f32, Table 3 "FC").
pub fn run_fc(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>) -> Result<GemmOut, GemmError> {
    run_fc_with_pass(gpu, a, b, None)
}

/// [`run_fc`] with an optional program-rewrite pass applied to the emitted
/// kernel before launch.
pub fn run_fc_with_pass(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    pass: Option<ProgPass<'_>>,
) -> Result<GemmOut, GemmError> {
    let p = pad_problem(a, b, CHUNK_COLS);
    gpu.mem.reset();
    let af = p.a_up.map(|x| x as f32);
    let bf = p.b_up.map(|x| x as f32);
    let at_ptr = upload_ops::transposed_f32(gpu, &af);
    let b_ptr = gpu.mem.upload_f32(bf.as_slice()).addr;
    let n_chunks = p.np / CHUNK_COLS;
    let geom = RoleGeom::standalone(pick_k_splits(n_chunks, p.mp / 16, p.kp));
    let ks = geom.k_splits;
    let c_dev = gpu.mem.alloc((p.mp * p.np * 4 * ks as usize) as u32);
    let blocks_x = grid_for(n_chunks * ks as usize, geom.role_warps);
    let blocks = blocks_x * (p.mp / 16) as u32;
    let elem = CudaElem::Fp;
    let args = role_args(
        at_ptr,
        b_ptr,
        c_dev.addr,
        blocks_x,
        n_chunks as u32,
        p.kp as u32,
        &elem,
        p.mp as u32,
        p.np as u32,
        (p.np * 4) as u32,
        0,
        &geom,
        0,
    );
    let prog = finish_program(cuda_gemm_program(elem, geom, 0), pass);
    let kernel = Kernel::single("gemm_fc", prog, blocks, geom.role_warps, 0, args);
    let stats = gpu.launch(&kernel)?;
    let raw = gpu.mem.download_f32(c_dev, p.mp * p.np * ks as usize);
    let summed = reduce_slices_f32(&raw, p.mp * p.np, ks);
    let c_full = Matrix::from_vec(
        p.mp,
        p.np,
        summed.into_iter().map(|x| x.round() as i32).collect(),
    );
    Ok(GemmOut {
        c: crop_matrix(&c_full, p.m, p.n),
        stats,
    })
}

/// Packed-INT GEMM: the register-operand-packing kernel on its own.
///
/// # Panics
/// Panics when operand codes exceed the spec's bitwidths.
pub fn run_packed(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: &PackSpec,
) -> Result<GemmOut, GemmError> {
    run_packed_cached(gpu, a, b, spec, None)
}

/// [`run_packed`] with an optional packed-weight cache handle for the
/// stationary `B` operand (see [`super::cache`] for the keying rules).
///
/// # Panics
/// Panics when operand codes exceed the spec's bitwidths.
pub fn run_packed_cached(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: &PackSpec,
    mut weight: WeightCtx<'_>,
) -> Result<GemmOut, GemmError> {
    let lanes = spec.lanes as usize;
    let p = pad_problem(a, b, CHUNK_COLS * lanes);
    gpu.mem.reset();
    let pw = pack_weight_share(&mut weight, spec, &p.b_up, 0, b.cols());
    let corr = BiasCorrection::from_cached_colsum(spec, &p.a, &pw.colsum);
    let at_ptr = upload_ops::transposed_biased(gpu, &p.a_up, spec);
    let b_ptr = gpu.mem.upload_u32(pw.packed.as_slice()).addr;
    let np_packed = p.np / lanes;
    let n_chunks = np_packed / CHUNK_COLS;
    let geom = RoleGeom::standalone(pick_k_splits(n_chunks, p.mp / 16, p.kp));
    let ks = geom.k_splits;
    let c_dev = gpu.mem.alloc((p.mp * p.np * 4 * ks as usize) as u32);
    let blocks_x = grid_for(n_chunks * ks as usize, geom.role_warps);
    let blocks = blocks_x * (p.mp / 16) as u32;
    let elem = CudaElem::Packed(*spec);
    let args = role_args(
        at_ptr,
        b_ptr,
        c_dev.addr,
        blocks_x,
        n_chunks as u32,
        p.kp as u32,
        &elem,
        p.mp as u32,
        np_packed as u32,
        (p.np * 4) as u32,
        0,
        &geom,
        0,
    );
    let prog = cuda_gemm_program(elem, geom, 0).into_arc();
    let kernel = Kernel::single("gemm_ic_packed", prog, blocks, geom.role_warps, 0, args);
    let stats = gpu.launch(&kernel)?;
    let raw = gpu.mem.download_u32(c_dev, p.mp * p.np * ks as usize);
    let summed = reduce_slices_u32(&raw, p.mp * p.np, ks);
    let mut c_full = Matrix::zeros(p.mp, p.np);
    for i in 0..p.mp {
        for j in 0..p.np {
            c_full[(i, j)] = corr.apply(u64::from(summed[i * p.np + j]), i, j) as i32;
        }
    }
    Ok(GemmOut {
        c: crop_matrix(&c_full, p.m, p.n),
        stats,
    })
}

/// Simultaneous INT + FP CUDA-core GEMM (Table 3 "IC+FC"): columns split
/// 1:1, INT warps and FP warps co-resident in every block.
pub fn run_ic_fc(gpu: &mut Gpu, a: &Matrix<i8>, b: &Matrix<i8>) -> Result<GemmOut, GemmError> {
    run_cuda_fused(gpu, a, b, None, None, None)
}

/// [`run_ic_fc`] with an optional program-rewrite pass applied to both role
/// programs before launch.
pub fn run_ic_fc_with_pass(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    pass: Option<ProgPass<'_>>,
) -> Result<GemmOut, GemmError> {
    run_cuda_fused(gpu, a, b, None, None, pass)
}

/// IC+FC with packing on the INT side (the study's "IC+FC+P"): columns
/// split per Equation 1 (`lanes : 1`).
pub fn run_ic_fc_packed(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: &PackSpec,
) -> Result<GemmOut, GemmError> {
    run_cuda_fused(gpu, a, b, Some(*spec), None, None)
}

fn run_cuda_fused(
    gpu: &mut Gpu,
    a: &Matrix<i8>,
    b: &Matrix<i8>,
    spec: Option<PackSpec>,
    mut weight: WeightCtx<'_>,
    pass: Option<ProgPass<'_>>,
) -> Result<GemmOut, GemmError> {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dims");
    let (m, k) = a.shape();
    let n = b.cols();
    let lanes = spec.map_or(1, |s| s.lanes as usize);
    // Equation 1 split, each side padded to its chunk granularity.
    let (n1_raw, _) = eq1_split(n, lanes as u32).expect("lanes >= 1");
    let n1 = pad_to(n1_raw, CHUNK_COLS * lanes);
    let n1c = n1_raw.min(n); // real columns the INT side owns
    let n2_raw = n - n1c;
    let n2 = pad_to(n2_raw.max(1), CHUNK_COLS);
    let mp = pad_to(m.max(1), M_PAD);
    let kp = pad_to(k.max(1), K_PAD);

    let a_pad = pad_matrix(a, mp, kp);
    let b1 = pad_matrix(&b.slice_cols(0, n1c), kp, n1);
    let b2 = pad_matrix(&b.slice_cols(n1c, n2_raw), kp, n2);
    // Upload shapes carry one extra zero K-tile for the pipeline prefetch.
    let a_up = pad_matrix(&a_pad, mp, kp + K_PAD);
    let b1_up = pad_matrix(&b1, kp + K_PAD, n1);
    let b2_up = pad_matrix(&b2, kp + K_PAD, n2);

    gpu.mem.reset();
    // INT side operands.
    let (at1_ptr, b1_ptr, corr) = match &spec {
        Some(s) => {
            let pw = pack_weight_share(&mut weight, s, &b1_up, 0, n1c);
            let corr = BiasCorrection::from_cached_colsum(s, &a_pad, &pw.colsum);
            let at = upload_ops::transposed_biased(gpu, &a_up, s);
            (
                at,
                gpu.mem.upload_u32(pw.packed.as_slice()).addr,
                Some(corr),
            )
        }
        None => (
            upload_ops::transposed_i8(gpu, &a_up),
            gpu.mem.upload_i8(b1_up.as_slice()).addr,
            None,
        ),
    };
    // FP side operands.
    let af = a_up.map(|x| x as f32);
    let b2f = b2_up.map(|x| x as f32);
    let at2_ptr = upload_ops::transposed_f32(gpu, &af);
    let b2_ptr = gpu.mem.upload_f32(b2f.as_slice()).addr;

    let n1_packed_cols = n1 / lanes;
    let chunks1 = n1_packed_cols / CHUNK_COLS;
    let chunks2 = n2 / CHUNK_COLS;
    let ks = pick_k_splits(chunks1.min(chunks2).max(1), mp / 16, kp);
    let geom = RoleGeom {
        role_warps: 4,
        row_groups: 1,
        k_splits: ks,
    };
    let c1_dev = gpu.mem.alloc((mp * n1 * 4 * ks as usize) as u32);
    let c2_dev = gpu.mem.alloc((mp * n2 * 4 * ks as usize) as u32);
    let blocks_x = grid_for(chunks1.max(chunks2) * ks as usize, geom.role_warps);
    let blocks = blocks_x * (mp / 16) as u32;

    let int_elem = match &spec {
        Some(s) => CudaElem::Packed(*s),
        None => CudaElem::Int,
    };
    let mut args = role_args(
        at1_ptr,
        b1_ptr,
        c1_dev.addr,
        blocks_x,
        chunks1 as u32,
        kp as u32,
        &int_elem,
        mp as u32,
        n1_packed_cols as u32,
        (n1 * 4) as u32,
        0,
        &geom,
        0,
    );
    args.extend(role_args(
        at2_ptr,
        b2_ptr,
        c2_dev.addr,
        blocks_x,
        chunks2 as u32,
        kp as u32,
        &CudaElem::Fp,
        mp as u32,
        n2 as u32,
        (n2 * 4) as u32,
        geom.role_warps,
        &geom,
        0,
    ));

    let int_prog = finish_program(cuda_gemm_program(int_elem, geom, 0), pass);
    let fp_prog = finish_program(cuda_gemm_program(CudaElem::Fp, geom, ARGS_PER_ROLE), pass);
    // Roles alternate at sub-partition stride: warp w runs on sub-partition
    // w % 4, so [int x4, fp x4] puts one of each on every scheduler.
    let kernel = Kernel::fused(
        if spec.is_some() {
            "gemm_ic_fc_packed"
        } else {
            "gemm_ic_fc"
        },
        vec![int_prog, fp_prog],
        vec![0, 0, 0, 0, 1, 1, 1, 1],
        blocks,
        0,
        args,
    );
    let stats = gpu.launch(&kernel)?;

    // Reassemble.
    let c1_raw = gpu.mem.download_u32(c1_dev, mp * n1 * ks as usize);
    let c1_sum = reduce_slices_u32(&c1_raw, mp * n1, ks);
    let mut c1 = Matrix::zeros(mp, n1);
    match &corr {
        Some(corr) => {
            for i in 0..mp {
                for j in 0..n1 {
                    c1[(i, j)] = corr.apply(u64::from(c1_sum[i * n1 + j]), i, j) as i32;
                }
            }
        }
        None => {
            for i in 0..mp {
                for j in 0..n1 {
                    c1[(i, j)] = c1_sum[i * n1 + j] as i32;
                }
            }
        }
    }
    let c2_raw = gpu.mem.download_f32(c2_dev, mp * n2 * ks as usize);
    let c2_sum = reduce_slices_f32(&c2_raw, mp * n2, ks);
    let c2 = Matrix::from_vec(
        mp,
        n2,
        c2_sum.into_iter().map(|x| x.round() as i32).collect(),
    );
    let c1_crop = crop_matrix(&c1, m, n1c);
    let c2_crop = crop_matrix(&c2, m, n2_raw);
    let c = Matrix::concat_cols(&[&c1_crop, &c2_crop]);
    Ok(GemmOut { c, stats })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;
    use vitbit_tensor::refgemm::gemm_i8_i32;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 64 << 20)
    }

    fn int6(rows: usize, cols: usize, seed: u64) -> Matrix<i8> {
        gen::uniform_i8(rows, cols, -32, 31, seed)
    }

    #[test]
    fn ic_gemm_matches_reference_small() {
        let mut g = gpu();
        let a = gen::uniform_i8(20, 24, -128, 127, 1);
        let b = gen::uniform_i8(24, 40, -128, 127, 2);
        let out = run_ic(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.int > 0);
        assert_eq!(out.stats.issued.fp, 0);
        assert_eq!(out.stats.issued.tensor, 0);
    }

    #[test]
    fn ic_gemm_exact_tile_boundaries() {
        let mut g = gpu();
        // Exactly one block tile (64 rows) and exactly 32 columns.
        let a = gen::uniform_i8(64, 16, -100, 100, 3);
        let b = gen::uniform_i8(16, 32, -100, 100, 4);
        let out = run_ic(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn fc_gemm_matches_reference() {
        let mut g = gpu();
        let a = int6(17, 48, 5);
        let b = int6(48, 33, 6);
        let out = run_fc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.fp > 0, "FP pipe must carry the math");
    }

    #[test]
    fn packed_gemm_guarded_matches_reference_int6() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(18, 40, 7);
        let b = int6(40, 70, 8);
        let out = run_packed(&mut g, &a, &b, &spec).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn packed_gemm_guarded_matches_reference_int4() {
        let mut g = gpu();
        let spec = PackSpec::guarded(4, 4).unwrap();
        let a = gen::uniform_i8(9, 25, -8, 7, 9);
        let b = gen::uniform_i8(25, 130, -8, 7, 10);
        let out = run_packed(&mut g, &a, &b, &spec).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn packed_gemm_reduces_int_instructions() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(32, 64, 11);
        let b = int6(64, 128, 12);
        let plain = run_ic(&mut g, &a, &b).expect("gemm");
        let packed = run_packed(&mut g, &a, &b, &spec).expect("gemm");
        assert_eq!(packed.c, plain.c);
        let ratio = plain.stats.issued.int as f64 / packed.stats.issued.int as f64;
        assert!(
            ratio > 1.3,
            "packing should cut INT instructions substantially, got {ratio:.2}"
        );
    }

    #[test]
    fn ic_fc_fused_matches_reference_and_uses_both_pipes() {
        let mut g = gpu();
        let a = int6(20, 32, 13);
        let b = int6(32, 96, 14);
        let out = run_ic_fc(&mut g, &a, &b).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
        assert!(out.stats.issued.int > 0);
        assert!(out.stats.issued.fp > 0);
    }

    #[test]
    fn ic_fc_packed_matches_reference() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let a = int6(16, 48, 15);
        let b = int6(48, 200, 16);
        let out = run_ic_fc_packed(&mut g, &a, &b, &spec).expect("gemm");
        assert_eq!(out.c, gemm_i8_i32(&a, &b));
    }

    #[test]
    fn odd_shapes_are_padded_and_cropped() {
        let mut g = gpu();
        let a = int6(7, 5, 17);
        let b = int6(5, 9, 18);
        for out in [
            run_ic(&mut g, &a, &b).expect("gemm"),
            run_fc(&mut g, &a, &b).expect("gemm"),
            run_ic_fc(&mut g, &a, &b).expect("gemm"),
        ] {
            assert_eq!(out.c.shape(), (7, 9));
            assert_eq!(out.c, gemm_i8_i32(&a, &b));
        }
    }

    #[test]
    fn paper_policy_wraps_on_long_k() {
        let mut g = gpu();
        let spec = PackSpec::paper(8).unwrap();
        let a = Matrix::from_fn(16, 64, |_, _| 127i8);
        let b = Matrix::from_fn(64, 64, |_, _| 127i8);
        let out = run_packed(&mut g, &a, &b, &spec).expect("gemm");
        assert_ne!(out.c, gemm_i8_i32(&a, &b), "paper policy must wrap here");
    }
}
