//! CUDA-core (non-Linear) kernels of the ViT attention block, in the four
//! execution variants of Figure 7 (IC baseline, FC, IC+FC, VitBit).

pub mod hostref;
pub mod map;
pub mod row;

pub use map::{run_map, EwVariant, MapOp};
pub use row::{run_layernorm, run_softmax, RowOut};
