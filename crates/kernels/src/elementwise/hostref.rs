//! Host reference semantics for the CUDA-core (non-Linear) kernels of the
//! ViT attention block: ShiftGELU, Shiftmax, I-LayerNorm, dropout and
//! residual add.
//!
//! The integer definitions below are *the* specification: the simulated IC
//! and packed-INT kernels must match them bit-exactly, and `vitbit-vit`
//! builds its reference pipeline from them. They follow the I-ViT approach
//! (shift/add approximations of GELU, softmax and layer norm; no floating
//! point anywhere). The `*_fp` variants define what the FP-CUDA-core path
//! computes after type conversion; they agree with the integer versions to
//! within a couple of codes (floating point rounds where arithmetic shifts
//! floor), which is the same accuracy statement the paper makes for its FC
//! baseline.

/// Saturates an `i32` to the signed 8-bit range.
#[inline]
pub fn sat_i8(x: i32) -> i8 {
    x.clamp(-128, 127) as i8
}

/// Saturates an `i32` to the signed `bitwidth`-bit range, returned as `i8`.
#[inline]
pub fn sat_bw(x: i32, bitwidth: u32) -> i8 {
    let hi = (1i32 << (bitwidth - 1)) - 1;
    x.clamp(-hi - 1, hi) as i8
}

/// Integer ShiftGELU: `x * hardsigmoid(1.625 x) >> 8`, everything in
/// shifts/adds (I-ViT's ShiftGELU structure).
#[inline]
pub fn shiftgelu_i(x: i32, bitwidth: u32) -> i8 {
    let t = x + (x >> 1) + (x >> 3); // ~1.625 x
    let sig = (128 + (t >> 1)).clamp(0, 256); // Q8 hard sigmoid
    sat_bw((x * sig) >> 8, bitwidth)
}

/// FP path of ShiftGELU (after int -> f32 conversion): bit-exact with the
/// integer body — shifts become multiply + floor-convert (`cvt.rmi`).
#[inline]
pub fn shiftgelu_f(x: f32, bitwidth: u32) -> i8 {
    let xi = x as i32;
    let t = xi + (0.5 * x).floor() as i32 + (0.125 * x).floor() as i32;
    let sig = ((0.5 * t as f32).floor() as i32 + 128).clamp(0, 256);
    sat_bw((x * sig as f32 * (1.0 / 256.0)).floor() as i32, bitwidth)
}

/// Integer shift-exponential: `~256 * 2^(1.44 d / 16)` for `d <= 0`
/// (I-ViT's Shiftmax exponent), pure shifts and adds.
#[inline]
pub fn shiftexp_q8(d: i32) -> i32 {
    debug_assert!(d <= 0, "shiftexp domain is d <= 0");
    let t = -(d + (d >> 1) - (d >> 4)); // ~1.44 |d| >= 0
    let n = (t >> 4).min(30);
    let f = t & 15;
    (256 - 8 * f) >> n
}

/// Integer Shiftmax over one row of codes. Output codes are in `[0, 127]`
/// (Q7 probabilities).
pub fn shiftmax_row_i(row: &[i8], bitwidth: u32) -> Vec<i8> {
    assert!(!row.is_empty(), "softmax over empty row");
    let hi = (1i32 << (bitwidth - 1)) - 1;
    let shift = 15 + 8 - bitwidth;
    let m = i32::from(*row.iter().max().expect("non-empty"));
    let e: Vec<i32> = row.iter().map(|&x| shiftexp_q8(i32::from(x) - m)).collect();
    let sum: i32 = e.iter().sum::<i32>().max(1);
    let r = (1 << 22) / sum;
    e.iter()
        .map(|&ei| ((ei * r) >> shift).min(hi) as i8)
        .collect()
}

/// FP Shiftmax (same exponent scale, float arithmetic).
pub fn shiftmax_row_f(row: &[i8], bitwidth: u32) -> Vec<i8> {
    assert!(!row.is_empty(), "softmax over empty row");
    let hi = (1i32 << (bitwidth - 1)) - 1;
    let q = (1 << (bitwidth - 1)) as f32;
    let m = i32::from(*row.iter().max().expect("non-empty"));
    let e: Vec<f32> = row
        .iter()
        .map(|&x| {
            let d = f32::from(x) - m as f32;
            256.0 * (d * (1.44 / 16.0)).exp2()
        })
        .collect();
    let sum: f32 = e.iter().sum::<f32>().max(1e-6);
    let recip = 1.0 / sum;
    e.iter()
        .map(|&ef| ((ef * recip * q).round_ties_even() as i32).min(hi) as i8)
        .collect()
}

/// Integer square root (Newton iterations, I-LayerNorm style).
#[inline]
pub fn isqrt(v: i32) -> i32 {
    debug_assert!(v >= 0);
    if v <= 1 {
        return v;
    }
    let mut s = i64::from(v);
    let v64 = i64::from(v);
    let mut prev = 0;
    for _ in 0..24 {
        let next = (s + v64 / s) >> 1;
        if next == prev {
            break;
        }
        prev = s;
        s = next;
    }
    while s > 0 && s * s > v64 {
        s -= 1;
    }
    while (s + 1) * (s + 1) <= v64 {
        s += 1;
    }
    s as i32
}

/// Division magic for the LayerNorm mean: `x / n ~ (x * magic) >> 18`
/// (arithmetic shift: floors toward negative infinity — part of the spec).
#[inline]
pub fn mean_magic(n: usize) -> i32 {
    ((1i64 << 18) / n as i64) as i32
}

/// Integer LayerNorm over one row: uniform gamma (Q6) and beta.
/// `out = clamp(((x - mean) * gamma_q6) / std + beta, -128, 127)` with the
/// signed division rounding toward zero.
pub fn ilayernorm_row_i(row: &[i8], gamma_q6: i32, beta: i32, bitwidth: u32) -> Vec<i8> {
    let n = row.len();
    assert!(n > 0, "layernorm over empty row");
    let magic = mean_magic(n);
    let sum: i32 = row.iter().map(|&x| i32::from(x)).sum();
    let mean = (sum * magic) >> 18;
    // vsum fits i32 for n <= 2^15 at 8-bit codes (the kernel accumulates
    // in 32-bit registers, so the spec does too).
    let vsum: i32 = row
        .iter()
        .map(|&x| {
            let d = i32::from(x) - mean;
            d * d
        })
        .sum();
    let var = vsum / n as i32;
    let std = isqrt(var).max(1);
    row.iter()
        .map(|&x| {
            let num = (i32::from(x) - mean) * gamma_q6;
            let q = num / std; // truncates toward zero, like the kernel
            sat_bw(q + beta, bitwidth)
        })
        .collect()
}

/// FP LayerNorm.
pub fn ilayernorm_row_f(row: &[i8], gamma_q6: i32, beta: i32, bitwidth: u32) -> Vec<i8> {
    let n = row.len() as f32;
    let sum: f32 = row.iter().map(|&x| f32::from(x)).sum();
    let mean = sum / n;
    let var: f32 = row
        .iter()
        .map(|&x| {
            let d = f32::from(x) - mean;
            d * d
        })
        .sum::<f32>()
        / n;
    let std = var.sqrt().max(1.0);
    row.iter()
        .map(|&x| {
            let y = (f32::from(x) - mean) * gamma_q6 as f32 / std;
            sat_bw((y + beta as f32).round_ties_even() as i32, bitwidth)
        })
        .collect()
}

/// Dropout hash: one 32-bit mix of `seed` and the element index.
#[inline]
pub fn dropout_hash(seed: u32, idx: u32) -> u32 {
    (seed ^ idx)
        .wrapping_mul(747_796_405)
        .wrapping_add(2_891_336_453)
}

/// Integer inference-style dropout: keep with probability
/// `keep_q8 / 256`, scale kept values by `256/keep_q8` in Q8.
#[inline]
pub fn dropout_i(x: i32, idx: u32, seed: u32, keep_q8: u32, bitwidth: u32) -> i8 {
    let h = dropout_hash(seed, idx) >> 24;
    if h < keep_q8 {
        let scale = ((256 << 8) / keep_q8) as i32; // Q8 reciprocal
        sat_bw((x * scale) >> 8, bitwidth)
    } else {
        0
    }
}

/// FP dropout (same mask, float scaling): bit-exact with the integer body.
#[inline]
pub fn dropout_f(x: f32, idx: u32, seed: u32, keep_q8: u32, bitwidth: u32) -> i8 {
    let h = dropout_hash(seed, idx) >> 24;
    if h < keep_q8 {
        let scale = ((256u32 << 8) / keep_q8) as f32;
        sat_bw((x * scale * (1.0 / 256.0)).floor() as i32, bitwidth)
    } else {
        0
    }
}

/// Saturating residual add.
#[inline]
pub fn add_i(x: i32, y: i32, bitwidth: u32) -> i8 {
    sat_bw(x + y, bitwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shiftgelu_shape() {
        // Monotone-ish, ~x for large positive x, ~0 for large negative x.
        assert!(shiftgelu_i(127, 8) >= 100, "large positive stays large");
        assert_eq!(shiftgelu_i(0, 8), 0);
        assert!(shiftgelu_i(-120, 8) >= -20, "strong negatives are squashed");
        assert!(shiftgelu_i(60, 8) > 40);
        // Near-linear region keeps sign.
        assert!(shiftgelu_i(-10, 8) <= 0);
    }

    #[test]
    fn shiftgelu_fp_bit_exact_with_int() {
        for x in -128..=127 {
            let i = i32::from(shiftgelu_i(x, 8));
            let f = i32::from(shiftgelu_f(x as f32, 8));
            assert_eq!(i, f, "x={x}");
        }
    }

    #[test]
    fn shiftexp_monotone_and_bounded() {
        let mut last = shiftexp_q8(0);
        assert_eq!(last, 256);
        for d in 1..=256 {
            let e = shiftexp_q8(-d);
            assert!(e <= last, "not monotone at {d}");
            assert!((0..=256).contains(&e));
            last = e;
        }
        assert_eq!(shiftexp_q8(-400), 0);
    }

    #[test]
    fn shiftmax_peaks_at_max_and_sums_sanely() {
        let mut row = vec![-50i8; 64];
        row[10] = 90;
        let out = shiftmax_row_i(&row, 8);
        assert!(out[10] > 100, "peak should dominate: {}", out[10]);
        assert!(out.iter().enumerate().all(|(i, &v)| i == 10 || v <= 3));
        // Uniform row: tiny, equal outputs.
        let out = shiftmax_row_i(&[5i8; 64], 8);
        assert!(out.iter().all(|&v| v == out[0]));
        assert!(out[0] <= 3);
    }

    #[test]
    fn shiftmax_fp_close_to_int() {
        let row: Vec<i8> = (0..64).map(|i| ((i * 7) % 100 - 50) as i8).collect();
        let oi = shiftmax_row_i(&row, 8);
        let of = shiftmax_row_f(&row, 8);
        for (a, b) in oi.iter().zip(&of) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 8, "{a} vs {b}");
        }
    }

    #[test]
    fn isqrt_exact() {
        for v in 0..3000 {
            let s = isqrt(v);
            assert!(s * s <= v && (s + 1) * (s + 1) > v, "isqrt({v}) = {s}");
        }
        assert_eq!(isqrt(i32::MAX), 46340);
    }

    #[test]
    fn layernorm_centers_and_scales() {
        let row: Vec<i8> = (0..64).map(|i| (i - 32) as i8).collect();
        let out = ilayernorm_row_i(&row, 64, 0, 8);
        let mean: f64 = out.iter().map(|&x| f64::from(x)).sum::<f64>() / 64.0;
        assert!(mean.abs() < 4.0, "normalized mean ~0, got {mean}");
        // Constant row stays ~0.
        let out = ilayernorm_row_i(&[17i8; 64], 64, 5, 8);
        assert!(out.iter().all(|&x| (x - 5).abs() <= 1));
    }

    #[test]
    fn layernorm_fp_close_to_int() {
        let row: Vec<i8> = (0..96).map(|i| ((i * 13) % 200 - 100) as i8).collect();
        let oi = ilayernorm_row_i(&row, 64, 0, 8);
        let of = ilayernorm_row_f(&row, 64, 0, 8);
        for (a, b) in oi.iter().zip(&of) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 4, "{a} vs {b}");
        }
    }

    #[test]
    fn dropout_masks_and_scales() {
        let keep = 204u32; // ~80%
        let kept: Vec<i8> = (0..1000).map(|i| dropout_i(100, i, 7, keep, 8)).collect();
        let zeros = kept.iter().filter(|&&v| v == 0).count();
        assert!((120..=280).contains(&zeros), "~20% dropped, got {zeros}");
        // Kept values scaled by 1/0.8.
        assert!(kept.contains(&125));
        // Deterministic.
        assert_eq!(dropout_i(100, 3, 7, keep, 8), dropout_i(100, 3, 7, keep, 8));
    }

    #[test]
    fn add_saturates() {
        assert_eq!(add_i(100, 100, 8), 127);
        assert_eq!(add_i(-100, -100, 8), -128);
        assert_eq!(add_i(-3, 5, 8), 2);
    }
}
