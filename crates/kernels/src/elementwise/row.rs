//! Row-wise kernels: Shiftmax (softmax) and I-LayerNorm.
//!
//! One warp owns one row (reductions via butterfly shuffles); warps
//! grid-stride over rows. The IC+FC and VitBit variants split *rows*
//! between the INT-side and FP-side warp groups (a row-wise work split —
//! column splitting would break the row reductions); the VitBit INT side
//! reads and writes packed registers, halving its LSU traffic.

use crate::shapes::pad_to;
use vitbit_core::pack::{pack_codes, unpack_codes};
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::eq1_split;
use vitbit_sim::isa::{ICmp, MemWidth, Reg, SReg, Src};
use vitbit_sim::program::{Program, ProgramBuilder};
use vitbit_sim::{Gpu, Kernel, KernelStats};
use vitbit_tensor::Matrix;

use super::hostref;
use super::map::EwVariant;

/// Which row-wise op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowOp {
    /// Integer Shiftmax.
    Softmax,
    /// Integer LayerNorm (uniform gamma in Q6 and beta).
    LayerNorm {
        /// Gain in Q6 (64 = 1.0).
        gamma_q6: i32,
        /// Offset added after normalization.
        beta: i32,
    },
}

impl RowOp {
    fn name(&self) -> &'static str {
        match self {
            RowOp::Softmax => "shiftmax",
            RowOp::LayerNorm { .. } => "ilayernorm",
        }
    }
}

/// Operand domain of one row role.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RowDomain {
    Int,
    Fp,
    Packed(PackSpec),
}

/// Args per row role: `[in, out, n_rows, stride_rows, wbase, row_base, 0, 0]`.
pub const ROW_ARGS: u16 = 8;
const ROLE_WARPS: u32 = 4;

/// Builds one row-role program for rows of `n_cols` (a multiple of 32, and
/// of `32*lanes` for the packed domain).
fn row_program(
    op: RowOp,
    domain: RowDomain,
    n_cols: usize,
    bitwidth: u32,
    arg_base: u16,
) -> Program {
    assert!(
        n_cols.is_multiple_of(32),
        "row length must be a multiple of 32"
    );
    let lanes = match domain {
        RowDomain::Packed(spec) => spec.lanes as usize,
        _ => 1,
    };
    assert!(
        n_cols.is_multiple_of(32 * lanes),
        "row length must cover whole packed words"
    );
    let hi = (1i32 << (bitwidth - 1)) - 1;

    let mut p = ProgramBuilder::new(format!(
        "{}_{}",
        op.name(),
        match domain {
            RowDomain::Int => "ic",
            RowDomain::Fp => "fc",
            RowDomain::Packed(_) => "packed",
        }
    ));
    let in_ptr = p.alloc();
    let out_ptr = p.alloc();
    let n_rows = p.alloc();
    let stride_rows = p.alloc();
    let wbase = p.alloc();
    let row_base = p.alloc();
    for (i, r) in [in_ptr, out_ptr, n_rows, stride_rows, wbase, row_base]
        .iter()
        .enumerate()
    {
        p.ldc(*r, arg_base + i as u16);
    }
    let ctaid = p.alloc();
    let lane = p.alloc();
    let warpid = p.alloc();
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(lane, SReg::LaneId);
    p.sreg(warpid, SReg::WarpId);
    let row = p.alloc();
    p.isub(row, warpid.into(), wbase.into());
    p.imad(row, ctaid.into(), Src::Imm(ROLE_WARPS), row.into());

    // Per-lane element registers (unpacked values).
    let npl = n_cols / 32; // values per lane
    let words_pl = npl / lanes; // memory words per lane
    let x = p.alloc_n(npl as u16);
    let addr = p.alloc();
    let t = p.alloc();
    let u = p.alloc();
    let v = p.alloc();
    let m = p.alloc();
    let sum = p.alloc();
    let r_reg = p.alloc();
    let p_loop = p.alloc_pred();
    let p_aux = p.alloc_pred();
    let xr = |i: usize| Reg(x.0 + i as u8);

    let row_bytes: u32 = match domain {
        RowDomain::Packed(_) => (n_cols / lanes * 4) as u32,
        _ => n_cols as u32,
    };

    p.label_here("rows");
    p.isetp(p_loop, row.into(), n_rows.into(), ICmp::GeU);
    p.bra_if("end", p_loop, true);
    // addr = in + row*row_bytes + lane*esz
    p.imul(t, row.into(), Src::Imm(row_bytes));
    p.iadd(addr, in_ptr.into(), t.into());
    match domain {
        RowDomain::Packed(spec) => {
            p.shl(t, lane.into(), Src::Imm(2));
            p.iadd(addr, addr.into(), t.into());
            // Load words and unpack: word w = lane + i*32 holds elements
            // w*lanes + pos.
            let bias = spec.value_bias();
            for i in 0..words_pl {
                p.ldg(v, addr, (i * 128) as i32, MemWidth::B32);
                for pos in 0..lanes {
                    let lane_idx = spec.lanes - 1 - pos as u32;
                    let dst = xr(i * lanes + pos);
                    p.shr(dst, v.into(), Src::Imm(spec.lane_shift(lane_idx)));
                    p.and(dst, dst.into(), Src::Imm(spec.lane_mask()));
                    p.isub(dst, dst.into(), Src::Imm(bias as u32));
                }
            }
        }
        _ => {
            p.iadd(addr, addr.into(), lane.into());
            for i in 0..npl {
                p.ldg(xr(i), addr, (i * 32) as i32, MemWidth::B8S);
            }
        }
    }

    match op {
        RowOp::Softmax => {
            // Row max (always integer).
            p.mov(m, xr(0).into());
            for i in 1..npl {
                p.imax(m, m.into(), xr(i).into());
            }
            for mask in [16u8, 8, 4, 2, 1] {
                p.shfl(t, m, mask);
                p.imax(m, m.into(), t.into());
            }
            match domain {
                RowDomain::Fp => {
                    // The FP path computes the *same* shift-exponent as the
                    // integer kernel (shifts become multiply + cvt.rmi,
                    // exact for this domain); only the final normalization
                    // is floating point, so FP-row results differ from the
                    // integer rows by at most the normalization rounding.
                    p.mov(sum, Src::Imm(0));
                    for i in 0..npl {
                        let e = xr(i);
                        p.isub(e, e.into(), m.into()); // d <= 0
                        p.i2f(v, e.into());
                        p.fmul(t, v.into(), Src::imm_f32(0.5));
                        p.f2i_floor(t, t.into()); // d >> 1
                        p.iadd(t, t.into(), e.into());
                        p.fmul(u, v.into(), Src::imm_f32(1.0 / 16.0));
                        p.f2i_floor(u, u.into()); // d >> 4
                        p.isub(t, t.into(), u.into());
                        p.isub(t, Src::Imm(0), t.into()); // ~1.44|d|
                        p.i2f(v, t.into());
                        p.fmul(u, v.into(), Src::imm_f32(1.0 / 16.0));
                        p.f2i_floor(u, u.into()); // n = t >> 4
                        p.imin(u, u.into(), Src::Imm(30));
                        p.and(t, t.into(), Src::Imm(15));
                        p.imad(t, t.into(), Src::imm_i32(-8), Src::Imm(256));
                        p.shr(e, t.into(), u.into()); // e_i (exact)
                        p.iadd(sum, sum.into(), e.into());
                    }
                    for mask in [16u8, 8, 4, 2, 1] {
                        p.shfl(t, sum, mask);
                        p.iadd(sum, sum.into(), t.into());
                    }
                    p.imax(sum, sum.into(), Src::Imm(1));
                    // Float normalization: out = floor(e/sum * 2^(22-shift)).
                    p.i2f(r_reg, sum.into());
                    p.push(vitbit_sim::isa::Op::Rcp {
                        d: r_reg,
                        a: r_reg.into(),
                    });
                    let shift = 15 + 8 - bitwidth;
                    let scale = (1u64 << (22 - shift as u64)) as f32;
                    for i in 0..npl {
                        let e = xr(i);
                        p.i2f(e, e.into());
                        p.fmul(e, e.into(), r_reg.into());
                        p.fmul(e, e.into(), Src::imm_f32(scale));
                        p.f2i_floor(e, e.into());
                        p.imin(e, e.into(), Src::imm_i32(hi));
                    }
                }
                _ => {
                    // Integer shiftexp per element, sum, divide once.
                    p.mov(sum, Src::Imm(0));
                    for i in 0..npl {
                        let e = xr(i);
                        p.isub(e, e.into(), m.into()); // d <= 0
                                                       // t = -(d + (d>>1) - (d>>4))
                        p.sar(t, e.into(), Src::Imm(1));
                        p.iadd(t, t.into(), e.into());
                        p.sar(u, e.into(), Src::Imm(4));
                        p.isub(t, t.into(), u.into());
                        p.isub(t, Src::Imm(0), t.into());
                        p.shr(u, t.into(), Src::Imm(4));
                        p.imin(u, u.into(), Src::Imm(30));
                        p.and(t, t.into(), Src::Imm(15));
                        p.imad(t, t.into(), Src::imm_i32(-8), Src::Imm(256));
                        p.shr(e, t.into(), u.into());
                        p.iadd(sum, sum.into(), e.into());
                    }
                    for mask in [16u8, 8, 4, 2, 1] {
                        p.shfl(t, sum, mask);
                        p.iadd(sum, sum.into(), t.into());
                    }
                    p.imax(sum, sum.into(), Src::Imm(1));
                    p.idivu(r_reg, Src::Imm(1 << 22), sum.into());
                    let shift = 15 + 8 - bitwidth;
                    for i in 0..npl {
                        let e = xr(i);
                        p.imul(e, e.into(), r_reg.into());
                        p.shr(e, e.into(), Src::Imm(shift));
                        p.imin(e, e.into(), Src::imm_i32(hi));
                    }
                }
            }
        }
        RowOp::LayerNorm { gamma_q6, beta } => {
            let magic = hostref::mean_magic(n_cols) as u32;
            // sum
            p.mov(sum, Src::Imm(0));
            for i in 0..npl {
                p.iadd(sum, sum.into(), xr(i).into());
            }
            for mask in [16u8, 8, 4, 2, 1] {
                p.shfl(t, sum, mask);
                p.iadd(sum, sum.into(), t.into());
            }
            // mean = (sum * magic) >> 18 (arithmetic)
            p.imul(m, sum.into(), Src::Imm(magic));
            p.sar(m, m.into(), Src::Imm(18));
            match domain {
                RowDomain::Fp => {
                    // Bit-exact float twin of the integer LayerNorm: the
                    // mean comes from the shared integer path (`m`), the
                    // variance accumulates in integers, the square root is
                    // float-sqrt + integer floor corrections (exact for
                    // var <= 2^16), and the signed division rounds toward
                    // zero via |num|/std + cvt.rmi (exact: the quotient
                    // gap 1/std far exceeds the f32 ulp at this range).
                    p.mov(sum, Src::Imm(0));
                    for i in 0..npl {
                        p.isub(t, xr(i).into(), m.into());
                        p.imad(sum, t.into(), t.into(), sum.into());
                    }
                    for mask in [16u8, 8, 4, 2, 1] {
                        p.shfl(t, sum, mask);
                        p.iadd(sum, sum.into(), t.into());
                    }
                    p.idivu(sum, sum.into(), Src::Imm(n_cols as u32)); // var
                                                                       // std = floor(sqrt(var)) with corrections.
                    let s_reg = r_reg;
                    p.i2f(s_reg, sum.into());
                    p.push(vitbit_sim::isa::Op::Sqrt {
                        d: s_reg,
                        a: s_reg.into(),
                    });
                    p.f2i_floor(s_reg, s_reg.into());
                    for _ in 0..2 {
                        p.imul(t, s_reg.into(), s_reg.into());
                        p.isetp(p_aux, t.into(), sum.into(), ICmp::Gt);
                        p.isub(u, s_reg.into(), Src::Imm(1));
                        p.sel(s_reg, p_aux, u.into(), s_reg.into());
                    }
                    p.iadd(u, s_reg.into(), Src::Imm(1));
                    p.imul(t, u.into(), u.into());
                    p.isetp(p_aux, t.into(), sum.into(), ICmp::Le);
                    p.sel(s_reg, p_aux, u.into(), s_reg.into());
                    p.imax(s_reg, s_reg.into(), Src::Imm(1));
                    let rstd = v;
                    p.i2f(rstd, s_reg.into());
                    p.push(vitbit_sim::isa::Op::Rcp {
                        d: rstd,
                        a: rstd.into(),
                    });
                    for i in 0..npl {
                        let e = xr(i);
                        p.isub(e, e.into(), m.into());
                        p.imul(e, e.into(), Src::imm_i32(gamma_q6)); // num
                                                                     // |num| on the FP pipe, divide, floor, re-sign.
                        p.isub(t, Src::Imm(0), e.into());
                        p.imax(u, e.into(), t.into()); // |num|
                        p.isetp(p_aux, e.into(), Src::Imm(0), ICmp::Lt);
                        p.i2f(u, u.into());
                        p.fmul(u, u.into(), rstd.into());
                        // Rcp-multiply can land a hair below the exact
                        // quotient when it divides evenly; nudge before the
                        // floor (quotient gaps are >= 1/std >> 2^-12).
                        p.fadd(u, u.into(), Src::imm_f32(1.0 / 4096.0));
                        p.f2i_floor(u, u.into());
                        p.isub(t, Src::Imm(0), u.into());
                        p.sel(e, p_aux, t.into(), u.into());
                        p.iadd(e, e.into(), Src::imm_i32(beta));
                        p.imax(e, e.into(), Src::imm_i32(-hi - 1));
                        p.imin(e, e.into(), Src::imm_i32(hi));
                    }
                }
                _ => {
                    // vsum = sum (x - mean)^2
                    p.mov(sum, Src::Imm(0));
                    for i in 0..npl {
                        p.isub(t, xr(i).into(), m.into());
                        p.imad(sum, t.into(), t.into(), sum.into());
                    }
                    for mask in [16u8, 8, 4, 2, 1] {
                        p.shfl(t, sum, mask);
                        p.iadd(sum, sum.into(), t.into());
                    }
                    p.idivu(sum, sum.into(), Src::Imm(n_cols as u32)); // var
                                                                       // Newton isqrt with floor corrections.
                    let s = r_reg;
                    p.imax(s, sum.into(), Src::Imm(1));
                    for _ in 0..12 {
                        p.idivu(t, sum.into(), s.into());
                        p.iadd(s, s.into(), t.into());
                        p.shr(s, s.into(), Src::Imm(1));
                        p.imax(s, s.into(), Src::Imm(1));
                    }
                    for _ in 0..2 {
                        p.imul(t, s.into(), s.into());
                        p.isetp(p_aux, t.into(), sum.into(), ICmp::Gt);
                        p.isub(u, s.into(), Src::Imm(1));
                        p.sel(s, p_aux, u.into(), s.into());
                    }
                    p.iadd(u, s.into(), Src::Imm(1));
                    p.imul(t, u.into(), u.into());
                    p.isetp(p_aux, t.into(), sum.into(), ICmp::Le);
                    p.sel(s, p_aux, u.into(), s.into());
                    p.imax(s, s.into(), Src::Imm(1));
                    // out = clamp((x-mean)*gamma / s + beta)
                    for i in 0..npl {
                        let e = xr(i);
                        p.isub(e, e.into(), m.into());
                        p.imul(e, e.into(), Src::imm_i32(gamma_q6));
                        // signed division by s (round toward zero)
                        p.isub(t, Src::Imm(0), e.into());
                        p.imax(u, e.into(), t.into()); // |num|
                        p.idivu(u, u.into(), s.into());
                        p.isetp(p_aux, e.into(), Src::Imm(0), ICmp::Lt);
                        p.isub(t, Src::Imm(0), u.into());
                        p.sel(e, p_aux, t.into(), u.into());
                        p.iadd(e, e.into(), Src::imm_i32(beta));
                        p.imax(e, e.into(), Src::imm_i32(-hi - 1));
                        p.imin(e, e.into(), Src::imm_i32(hi));
                    }
                }
            }
        }
    }

    // Store the row back.
    p.imul(t, row.into(), Src::Imm(row_bytes));
    p.iadd(addr, out_ptr.into(), t.into());
    match domain {
        RowDomain::Packed(spec) => {
            p.shl(t, lane.into(), Src::Imm(2));
            p.iadd(addr, addr.into(), t.into());
            let bias = spec.value_bias();
            for i in 0..words_pl {
                p.mov(v, Src::Imm(0));
                for pos in 0..lanes {
                    let lane_idx = spec.lanes - 1 - pos as u32;
                    let srcr = xr(i * lanes + pos);
                    p.iadd(t, srcr.into(), Src::Imm(bias as u32));
                    p.shl(t, t.into(), Src::Imm(spec.lane_shift(lane_idx)));
                    p.or(v, v.into(), t.into());
                }
                p.stg(addr, (i * 128) as i32, v.into(), MemWidth::B32);
            }
        }
        _ => {
            p.iadd(addr, addr.into(), lane.into());
            for i in 0..npl {
                p.stg(addr, (i * 32) as i32, xr(i).into(), MemWidth::B8S);
            }
        }
    }
    p.iadd(row, row.into(), stride_rows.into());
    p.bra("rows");
    p.label_here("end");
    p.exit();
    p.build()
}

/// Result of a row-kernel launch.
#[derive(Debug, Clone)]
pub struct RowOut {
    /// Output matrix (same shape as the input).
    pub out: Matrix<i8>,
    /// Launch statistics.
    pub stats: KernelStats,
}

/// Runs Shiftmax rows.
pub fn run_softmax(gpu: &mut Gpu, x: &Matrix<i8>, variant: EwVariant, bitwidth: u32) -> RowOut {
    run_row(gpu, RowOp::Softmax, x, variant, bitwidth)
}

/// Runs I-LayerNorm rows with uniform gamma/beta.
pub fn run_layernorm(
    gpu: &mut Gpu,
    x: &Matrix<i8>,
    gamma_q6: i32,
    beta: i32,
    variant: EwVariant,
    bitwidth: u32,
) -> RowOut {
    run_row(
        gpu,
        RowOp::LayerNorm { gamma_q6, beta },
        x,
        variant,
        bitwidth,
    )
}

fn run_row(gpu: &mut Gpu, op: RowOp, x: &Matrix<i8>, variant: EwVariant, bitwidth: u32) -> RowOut {
    let (rows, cols) = x.shape();
    assert!(rows > 0 && cols > 0, "empty input");
    let lanes = match variant {
        EwVariant::VitBit(spec) => spec.lanes as usize,
        _ => 1,
    };
    // Pad columns: softmax pads with a very negative code (so padding never
    // wins the max and its exponent is 0); layernorm requires exact rows.
    let cols_p = pad_to(cols, 32 * lanes.max(1));
    if matches!(op, RowOp::LayerNorm { .. }) {
        assert_eq!(
            cols, cols_p,
            "layernorm rows must already be 32*lanes aligned"
        );
    }
    let pad_code: i8 = match op {
        RowOp::Softmax => -(1 << (bitwidth - 1)) as i8,
        RowOp::LayerNorm { .. } => 0,
    };
    let mut padded = Matrix::from_fn(
        rows,
        cols_p,
        |r, c| if c < cols { x[(r, c)] } else { pad_code },
    );

    // Row split between INT-side and FP-side warps.
    let (rows1, rows2) = match variant {
        EwVariant::Ic => (rows, 0),
        EwVariant::Fc => (0, rows),
        EwVariant::IcFc => eq1_split(rows, 1).expect("lanes >= 1"),
        EwVariant::VitBit(spec) => eq1_split(rows, spec.lanes).expect("lanes >= 1"),
    };

    gpu.mem.reset();
    let mut args = Vec::new();
    let mut programs = Vec::new();
    let mut roles: Vec<u8> = Vec::new();
    let blocks = 16u32;
    let mut outs: Vec<(u32, usize, bool)> = Vec::new();

    // INT-side role (plain or packed).
    if rows1 > 0 {
        let domain = match variant {
            EwVariant::VitBit(spec) => RowDomain::Packed(spec),
            _ => RowDomain::Int,
        };
        let (in_ptr, out_ptr, packed) = match domain {
            RowDomain::Packed(spec) => {
                let mut words = Vec::with_capacity(rows1 * cols_p / lanes);
                for r in 0..rows1 {
                    words.extend(pack_codes(padded.row(r), &spec).expect("aligned"));
                }
                let ptr = gpu.mem.upload_u32(&words).addr;
                let out = gpu.mem.alloc((words.len() * 4) as u32);
                (ptr, out.addr, true)
            }
            _ => {
                let flat: Vec<i8> = (0..rows1).flat_map(|r| padded.row(r).to_vec()).collect();
                let ptr = gpu.mem.upload_i8(&flat).addr;
                let out = gpu.mem.alloc(flat.len() as u32);
                (ptr, out.addr, false)
            }
        };
        args.extend_from_slice(&[
            in_ptr,
            out_ptr,
            rows1 as u32,
            blocks * ROLE_WARPS,
            0,
            0,
            0,
            0,
        ]);
        programs.push(row_program(op, domain, cols_p, bitwidth, 0).into_arc());
        roles.extend(std::iter::repeat_n(0u8, ROLE_WARPS as usize));
        outs.push((out_ptr, rows1, packed));
    }
    // FP-side role.
    if rows2 > 0 {
        let flat: Vec<i8> = (rows1..rows).flat_map(|r| padded.row(r).to_vec()).collect();
        let in_ptr = gpu.mem.upload_i8(&flat).addr;
        let out_dev = gpu.mem.alloc(flat.len() as u32);
        let wbase = (roles.len() as u32).min(ROLE_WARPS);
        let arg_base = (programs.len() as u16) * ROW_ARGS;
        args.resize((programs.len() * ROW_ARGS as usize).max(args.len()), 0);
        args.extend_from_slice(&[
            in_ptr,
            out_dev.addr,
            rows2 as u32,
            blocks * ROLE_WARPS,
            wbase,
            rows1 as u32,
            0,
            0,
        ]);
        programs.push(row_program(op, RowDomain::Fp, cols_p, bitwidth, arg_base).into_arc());
        roles.extend(std::iter::repeat_n(
            (programs.len() - 1) as u8,
            ROLE_WARPS as usize,
        ));
        outs.push((out_dev.addr, rows2, false));
    }

    let kernel = Kernel::fused(op.name(), programs, roles, blocks, 0, args);
    let stats = gpu.launch(&kernel).expect("launch");

    // Collect outputs.
    let mut row_idx = 0usize;
    for (ptr, nrows, packed) in outs {
        for r in 0..nrows {
            if packed {
                let spec = match variant {
                    EwVariant::VitBit(s) => s,
                    _ => unreachable!(),
                };
                let words_per_row = cols_p / lanes;
                let dev = vitbit_sim::mem::DevPtr {
                    addr: ptr + (r * words_per_row * 4) as u32,
                    len: (words_per_row * 4) as u32,
                };
                let words = gpu.mem.download_u32(dev, words_per_row);
                let codes = unpack_codes(&words, &spec);
                padded.row_mut(row_idx)[..cols_p].copy_from_slice(&codes);
            } else {
                let dev = vitbit_sim::mem::DevPtr {
                    addr: ptr + (r * cols_p) as u32,
                    len: cols_p as u32,
                };
                let codes = gpu.mem.download_i8(dev, cols_p);
                padded.row_mut(row_idx)[..cols_p].copy_from_slice(&codes);
            }
            row_idx += 1;
        }
    }
    let out = Matrix::from_fn(rows, cols, |r, c| padded[(r, c)]);
    RowOut { out, stats }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 32 << 20)
    }

    #[test]
    fn softmax_ic_bit_exact() {
        let mut g = gpu();
        let x = gen::uniform_i8(10, 96, -128, 127, 1);
        let out = run_softmax(&mut g, &x, EwVariant::Ic, 8);
        for r in 0..10 {
            assert_eq!(
                out.out.row(r),
                hostref::shiftmax_row_i(x.row(r), 8).as_slice(),
                "row {r}"
            );
        }
    }

    #[test]
    fn softmax_handles_unaligned_rows() {
        let mut g = gpu();
        // 197-column rows pad to 224 with -128 sentinels.
        let x = gen::uniform_i8(5, 197, -100, 100, 2);
        let out = run_softmax(&mut g, &x, EwVariant::Ic, 8);
        // Padding contributes shiftexp(very negative) = 0 to the sum except
        // when codes reach the sentinel; compare against a padded host run.
        for r in 0..5 {
            let mut padded = x.row(r).to_vec();
            padded.resize(224, -128);
            let host = hostref::shiftmax_row_i(&padded, 8);
            assert_eq!(out.out.row(r), &host[..197], "row {r}");
        }
    }

    #[test]
    fn softmax_fc_close_to_int() {
        let mut g = gpu();
        let x = gen::uniform_i8(6, 64, -80, 80, 3);
        let out = run_softmax(&mut g, &x, EwVariant::Fc, 8);
        for r in 0..6 {
            let host = hostref::shiftmax_row_i(x.row(r), 8);
            for (a, b) in out.out.row(r).iter().zip(&host) {
                assert!((i32::from(*a) - i32::from(*b)).abs() <= 8, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn softmax_vitbit_packed_rows_exact() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let x = gen::uniform_i8(9, 64, -32, 31, 4);
        let out = run_softmax(&mut g, &x, EwVariant::VitBit(spec), 6);
        let (rows1, _) = eq1_split(9, 2).unwrap();
        for r in 0..rows1 {
            assert_eq!(
                out.out.row(r),
                hostref::shiftmax_row_i(x.row(r), 6).as_slice(),
                "packed row {r}"
            );
        }
    }

    #[test]
    fn layernorm_ic_bit_exact() {
        let mut g = gpu();
        let x = gen::uniform_i8(8, 128, -128, 127, 5);
        let out = run_layernorm(&mut g, &x, 64, 3, EwVariant::Ic, 8);
        for r in 0..8 {
            assert_eq!(
                out.out.row(r),
                hostref::ilayernorm_row_i(x.row(r), 64, 3, 8).as_slice(),
                "row {r}"
            );
        }
    }

    #[test]
    fn layernorm_icfc_all_rows_bit_exact() {
        // The FP LayerNorm rows are a bit-exact float twin of the integer
        // algorithm (cvt.rmi + integer sqrt corrections).
        let mut g = gpu();
        let x = gen::uniform_i8(10, 96, -100, 100, 6);
        let out = run_layernorm(&mut g, &x, 64, 0, EwVariant::IcFc, 8);
        for r in 0..10 {
            let host = hostref::ilayernorm_row_i(x.row(r), 64, 0, 8);
            assert_eq!(out.out.row(r), host.as_slice(), "row {r}");
        }
    }

    #[test]
    fn vitbit_row_kernel_cuts_lsu() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let x = gen::uniform_i8(64, 256, -32, 31, 7);
        let ic = run_softmax(&mut g, &x, EwVariant::Ic, 6);
        let vb = run_softmax(&mut g, &x, EwVariant::VitBit(spec), 6);
        assert!(vb.stats.issued.lsu < ic.stats.issued.lsu);
    }
}
