//! Elementwise "map" kernels: ShiftGELU, dropout and residual add.
//!
//! One generator covers three operand domains:
//!
//! * `Int` — signed 8-bit codes on the INT pipe (the Figure-7 baseline),
//! * `Fp` — converted to f32, math on the FP pipe,
//! * `Packed` — VitBit: two (or more) biased codes per 32-bit register;
//!   loads/stores move whole registers (halving LSU traffic), lanes are
//!   unpacked for the non-linear part and repacked before the store, as
//!   Section 3.3's CUDA-core-kernel policy describes.
//!
//! Threads grid-stride over the flat element array, so one program serves
//! any (padded) length and any per-role share of a fused launch.

use crate::shapes::pad_to;
use vitbit_core::pack::{pack_codes, unpack_codes};
use vitbit_core::policy::PackSpec;
use vitbit_core::ratio::eq1_split;
use vitbit_sim::isa::{ICmp, MemWidth, Reg, SReg, Src};
use vitbit_sim::program::{Program, ProgramBuilder};
use vitbit_sim::{Gpu, Kernel, KernelStats};

use super::hostref;

/// Which elementwise operation a map kernel computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapOp {
    /// Integer ShiftGELU.
    Gelu,
    /// Masked dropout with Q8 keep probability.
    Dropout {
        /// Hash seed.
        seed: u32,
        /// Keep probability in Q8 (e.g. 204 = 80%).
        keep_q8: u32,
    },
    /// Saturating residual add (`in2` operand required).
    Add,
}

impl MapOp {
    /// Kernel name stem.
    pub fn name(&self) -> &'static str {
        match self {
            MapOp::Gelu => "shiftgelu",
            MapOp::Dropout { .. } => "dropout",
            MapOp::Add => "residual_add",
        }
    }
}

/// Operand domain of one map role.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapDomain {
    /// i8 codes, INT pipe.
    Int,
    /// f32 conversion path.
    Fp,
    /// VitBit packed registers.
    Packed(PackSpec),
}

/// Execution variant for the drivers (Table 3 rows applicable to CUDA-core
/// kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EwVariant {
    /// INT cores only (Figure 7 baseline).
    Ic,
    /// FP cores only (type-cast inputs).
    Fc,
    /// INT and FP cores simultaneously (1:1 split).
    IcFc,
    /// VitBit: packed INT + FP, Equation-1 split.
    VitBit(PackSpec),
}

/// Arguments per map role:
/// `[in, in2, out, n_units, stride_units, role_tid_base, idx_base, unused]`.
pub const MAP_ARGS: u16 = 8;

/// Builds one map-role program. `role_threads` = threads of this role per
/// block (for the grid stride); `n_units` counts domain units (elements for
/// Int/Fp, registers for Packed).
pub fn map_program(op: MapOp, domain: MapDomain, bitwidth: u32, arg_base: u16) -> Program {
    let name = format!(
        "{}_{}",
        op.name(),
        match domain {
            MapDomain::Int => "ic",
            MapDomain::Fp => "fc",
            MapDomain::Packed(_) => "packed",
        }
    );
    let mut p = ProgramBuilder::new(name);

    let in_ptr = p.alloc();
    let in2_ptr = p.alloc();
    let out_ptr = p.alloc();
    let n_units = p.alloc();
    let stride = p.alloc();
    let tid_base = p.alloc();
    let idx_base = p.alloc();
    for (i, r) in [
        in_ptr, in2_ptr, out_ptr, n_units, stride, tid_base, idx_base,
    ]
    .iter()
    .enumerate()
    {
        p.ldc(*r, arg_base + i as u16);
    }
    let ctaid = p.alloc();
    let tid = p.alloc();
    p.sreg(ctaid, SReg::Ctaid);
    p.sreg(tid, SReg::Tid);
    let ntid = p.alloc();
    p.sreg(ntid, SReg::Ntid);

    // Global unit index: gidx = ctaid*role_threads + (tid - tid_base).
    // role_threads is passed via the stride relation: stride = blocks *
    // role_threads, and per-block role threads = stride / blocks... instead
    // the launch passes `stride` and the role's thread count is implicit in
    // tid ordering; we compute gidx = ctaid * role_threads + local via an
    // explicit role_threads immediate is avoided by passing it in ntid?
    // Simpler: role_threads is encoded in the stride argument relation and
    // provided here through `idx_base`'s neighbour... we just pass it as
    // arg 7.
    let role_threads = p.alloc();
    p.ldc(role_threads, arg_base + 7);
    let local = p.alloc();
    p.isub(local, tid.into(), tid_base.into());
    let gidx = p.alloc();
    p.imad(gidx, ctaid.into(), role_threads.into(), local.into());
    let _ = ntid;

    let addr = p.alloc();
    let addr2 = p.alloc();
    let oaddr = p.alloc();
    let x = p.alloc();
    let y = p.alloc();
    let t = p.alloc();
    let u = p.alloc();
    let v = p.alloc();
    let idx = p.alloc();
    let p_loop = p.alloc_pred();
    let p_aux = p.alloc_pred();

    let esz_shift = match domain {
        MapDomain::Int | MapDomain::Fp => 0u32, // 1 byte per element
        MapDomain::Packed(_) => 2,              // 4 bytes per register
    };

    p.label_here("loop");
    p.isetp(p_loop, gidx.into(), n_units.into(), ICmp::GeU);
    p.bra_if("end", p_loop, true);
    // Addresses.
    if esz_shift == 0 {
        p.iadd(addr, in_ptr.into(), gidx.into());
        p.iadd(oaddr, out_ptr.into(), gidx.into());
        if matches!(op, MapOp::Add) {
            p.iadd(addr2, in2_ptr.into(), gidx.into());
        }
    } else {
        p.shl(t, gidx.into(), Src::Imm(esz_shift));
        p.iadd(addr, in_ptr.into(), t.into());
        p.iadd(oaddr, out_ptr.into(), t.into());
        if matches!(op, MapOp::Add) {
            p.iadd(addr2, in2_ptr.into(), t.into());
        }
    }

    match domain {
        MapDomain::Int => {
            let hi = (1i32 << (bitwidth - 1)) - 1;
            p.ldg(x, addr, 0, MemWidth::B8S);
            if matches!(op, MapOp::Add) {
                p.ldg(y, addr2, 0, MemWidth::B8S);
            }
            p.iadd(idx, idx_base.into(), gidx.into());
            emit_int_body(&mut p, op, x, y, idx, t, u, v, p_aux, -hi - 1, hi);
            p.stg(oaddr, 0, x.into(), MemWidth::B8S);
        }
        MapDomain::Fp => {
            let hi = (1i32 << (bitwidth - 1)) - 1;
            p.ldg(x, addr, 0, MemWidth::B8S);
            if matches!(op, MapOp::Add) {
                p.ldg(y, addr2, 0, MemWidth::B8S);
            }
            p.iadd(idx, idx_base.into(), gidx.into());
            emit_fp_body(&mut p, op, x, y, idx, t, u, v, p_aux, -hi - 1, hi);
            p.stg(oaddr, 0, x.into(), MemWidth::B8S);
        }
        MapDomain::Packed(spec) => {
            let bias = spec.value_bias();
            let lo_bound = -bias;
            let hi_bound = bias - 1;
            let xp = p.alloc();
            let yp = p.alloc();
            let outp = p.alloc();
            p.ldg(xp, addr, 0, MemWidth::B32);
            if matches!(op, MapOp::Add) {
                p.ldg(yp, addr2, 0, MemWidth::B32);
            }
            p.mov(outp, Src::Imm(0));
            // idx of the first element in this register.
            p.imul(idx, gidx.into(), Src::Imm(spec.lanes));
            p.iadd(idx, idx.into(), idx_base.into());
            for lane in (0..spec.lanes).rev() {
                // Position order: most significant lane first packed element.
                let shift = spec.lane_shift(lane);
                // Unpack to signed code.
                p.shr(x, xp.into(), Src::Imm(shift));
                p.and(x, x.into(), Src::Imm(spec.lane_mask()));
                p.isub(x, x.into(), Src::Imm(bias as u32));
                if matches!(op, MapOp::Add) {
                    p.shr(y, yp.into(), Src::Imm(shift));
                    p.and(y, y.into(), Src::Imm(spec.lane_mask()));
                    p.isub(y, y.into(), Src::Imm(bias as u32));
                }
                emit_int_body(&mut p, op, x, y, idx, t, u, v, p_aux, lo_bound, hi_bound);
                // Repack.
                p.iadd(x, x.into(), Src::Imm(bias as u32));
                p.shl(x, x.into(), Src::Imm(shift));
                p.or(outp, outp.into(), x.into());
                if lane > 0 {
                    p.iadd(idx, idx.into(), Src::Imm(1));
                }
            }
            p.stg(oaddr, 0, outp.into(), MemWidth::B32);
        }
    }
    p.iadd(gidx, gidx.into(), stride.into());
    p.bra("loop");
    p.label_here("end");
    p.exit();
    p.build()
}

/// Integer op body: consumes `x` (and `y`/`idx`), leaves the result in `x`,
/// clamped to `[lo, hi]`.
#[allow(clippy::too_many_arguments)]
fn emit_int_body(
    p: &mut ProgramBuilder,
    op: MapOp,
    x: Reg,
    y: Reg,
    idx: Reg,
    t: Reg,
    u: Reg,
    v: Reg,
    p_aux: vitbit_sim::isa::Pred,
    lo: i32,
    hi: i32,
) {
    match op {
        MapOp::Gelu => {
            // t = x + (x>>1) + (x>>3); sig = clamp(128 + (t>>1), 0, 256);
            // x = clamp((x*sig) >> 8, lo, hi).
            p.sar(t, x.into(), Src::Imm(1));
            p.iadd(t, t.into(), x.into());
            p.sar(u, x.into(), Src::Imm(3));
            p.iadd(t, t.into(), u.into());
            p.sar(t, t.into(), Src::Imm(1));
            p.iadd(t, t.into(), Src::Imm(128));
            p.imax(t, t.into(), Src::Imm(0));
            p.imin(t, t.into(), Src::Imm(256));
            p.imul(x, x.into(), t.into());
            p.sar(x, x.into(), Src::Imm(8));
            p.imax(x, x.into(), Src::imm_i32(lo));
            p.imin(x, x.into(), Src::imm_i32(hi));
        }
        MapOp::Dropout { seed, keep_q8 } => {
            // h = ((seed ^ idx) * M + C) >> 24; keep => x*scale>>8.
            let scale = (256u32 << 8) / keep_q8;
            p.push(vitbit_sim::isa::Op::Xor {
                d: t,
                a: idx.into(),
                b: Src::Imm(seed),
            });
            p.imul(t, t.into(), Src::Imm(747_796_405));
            p.iadd(t, t.into(), Src::Imm(2_891_336_453));
            p.shr(t, t.into(), Src::Imm(24));
            p.isetp(p_aux, t.into(), Src::Imm(keep_q8), ICmp::LtU);
            p.imul(u, x.into(), Src::Imm(scale));
            p.sar(u, u.into(), Src::Imm(8));
            p.imax(u, u.into(), Src::imm_i32(lo));
            p.imin(u, u.into(), Src::imm_i32(hi));
            p.sel(x, p_aux, u.into(), Src::Imm(0));
            let _ = v;
        }
        MapOp::Add => {
            p.iadd(x, x.into(), y.into());
            p.imax(x, x.into(), Src::imm_i32(lo));
            p.imin(x, x.into(), Src::imm_i32(hi));
        }
    }
}

/// FP op body (int8 full range), result back in `x` as an integer code.
#[allow(clippy::too_many_arguments)]
fn emit_fp_body(
    p: &mut ProgramBuilder,
    op: MapOp,
    x: Reg,
    y: Reg,
    idx: Reg,
    t: Reg,
    u: Reg,
    v: Reg,
    p_aux: vitbit_sim::isa::Pred,
    lo: i32,
    hi: i32,
) {
    let (lof, hif) = (lo as f32, hi as f32);
    let _ = (lof, hif);
    match op {
        MapOp::Gelu => {
            // Bit-exact float twin of the integer body: arithmetic shifts
            // become multiply-by-2^-k + cvt.rmi (exact: all intermediates
            // are integers below 2^24).
            p.i2f(v, x.into()); // xf
            p.fmul(t, v.into(), Src::imm_f32(0.5));
            p.f2i_floor(t, t.into()); // x >> 1
            p.fmul(u, v.into(), Src::imm_f32(0.125));
            p.f2i_floor(u, u.into()); // x >> 3
            p.iadd(t, t.into(), u.into());
            p.iadd(t, t.into(), x.into()); // t = x + (x>>1) + (x>>3)
            p.i2f(t, t.into());
            p.fmul(t, t.into(), Src::imm_f32(0.5));
            p.f2i_floor(t, t.into()); // t >> 1
            p.iadd(t, t.into(), Src::Imm(128));
            p.imax(t, t.into(), Src::Imm(0));
            p.imin(t, t.into(), Src::Imm(256)); // sig
            p.i2f(t, t.into());
            p.fmul(t, t.into(), v.into()); // x * sig (exact, < 2^16)
            p.fmul(t, t.into(), Src::imm_f32(1.0 / 256.0));
            p.f2i_floor(x, t.into()); // >> 8
            p.imax(x, x.into(), Src::imm_i32(lo));
            p.imin(x, x.into(), Src::imm_i32(hi));
        }
        MapOp::Dropout { seed, keep_q8 } => {
            p.push(vitbit_sim::isa::Op::Xor {
                d: t,
                a: idx.into(),
                b: Src::Imm(seed),
            });
            p.imul(t, t.into(), Src::Imm(747_796_405));
            p.iadd(t, t.into(), Src::Imm(2_891_336_453));
            p.shr(t, t.into(), Src::Imm(24));
            p.isetp(p_aux, t.into(), Src::Imm(keep_q8), ICmp::LtU);
            // Exact: x*scale is an integer < 2^18; /256 + cvt.rmi = ">> 8".
            let scale = (256u32 << 8) / keep_q8;
            p.i2f(v, x.into());
            p.fmul(v, v.into(), Src::imm_f32(scale as f32));
            p.fmul(v, v.into(), Src::imm_f32(1.0 / 256.0));
            p.f2i_floor(u, v.into());
            p.imax(u, u.into(), Src::imm_i32(lo));
            p.imin(u, u.into(), Src::imm_i32(hi));
            p.sel(x, p_aux, u.into(), Src::Imm(0));
        }
        MapOp::Add => {
            p.i2f(t, x.into());
            p.i2f(u, y.into());
            p.fadd(t, t.into(), u.into()); // exact: |sum| <= 2^8
            p.fmax(t, t.into(), Src::imm_f32(lof));
            p.fmin(t, t.into(), Src::imm_f32(hif));
            p.f2i(x, t.into());
        }
    }
}

/// Result of a map-kernel launch.
#[derive(Debug, Clone)]
pub struct MapOut {
    /// Output codes, same length as the input.
    pub out: Vec<i8>,
    /// Launch statistics.
    pub stats: KernelStats,
}

const ROLE_WARPS: u32 = 4;

/// Runs one elementwise map over `input` (and `input2` for `Add`).
///
/// # Panics
/// Panics if `Add` is launched without a second input or lengths differ.
pub fn run_map(
    gpu: &mut Gpu,
    op: MapOp,
    variant: EwVariant,
    bitwidth: u32,
    input: &[i8],
    input2: Option<&[i8]>,
) -> MapOut {
    if matches!(op, MapOp::Add) {
        let i2 = input2.expect("Add requires a second input");
        assert_eq!(i2.len(), input.len(), "operand lengths");
    }
    let n = input.len();
    gpu.mem.reset();

    // Split per variant. For packed roles the element share must be a
    // multiple of lanes*32; everything is padded with zeros.
    let (n1, lanes, int_domain) = match variant {
        EwVariant::Ic => (n, 1usize, Some(MapDomain::Int)),
        EwVariant::Fc => (0, 1, None),
        EwVariant::IcFc => (
            eq1_split(n, 1).expect("lanes >= 1").0,
            1,
            Some(MapDomain::Int),
        ),
        EwVariant::VitBit(spec) => (
            eq1_split(n, spec.lanes).expect("lanes >= 1").0,
            spec.lanes as usize,
            Some(MapDomain::Packed(spec)),
        ),
    };
    let n1 = n1.min(n);
    let n2 = n - n1;
    let n1_pad = pad_to(n1, 32 * lanes);
    let n2_pad = pad_to(n2, 32);

    let pad_part = |part: &[i8], len: usize| {
        let mut v = part.to_vec();
        v.resize(len, 0);
        v
    };
    let in1 = pad_part(&input[..n1], n1_pad);
    let in2_1 = input2.map(|i2| pad_part(&i2[..n1], n1_pad));
    let in_2 = pad_part(&input[n1..], n2_pad);
    let in2_2 = input2.map(|i2| pad_part(&i2[n1..], n2_pad));

    // Upload per-role operands.
    let mut args = Vec::new();
    let mut programs = Vec::new();
    let mut roles: Vec<u8> = Vec::new();
    let blocks = 32u32;
    let mut fetch: Vec<(u32, usize, bool)> = Vec::new(); // (ptr, units, packed)

    let push_role = |gpu: &mut Gpu,
                     args: &mut Vec<u32>,
                     programs: &mut Vec<std::sync::Arc<vitbit_sim::Program>>,
                     roles: &mut Vec<u8>,
                     fetch: &mut Vec<(u32, usize, bool)>,
                     domain: MapDomain,
                     data: &[i8],
                     data2: Option<&[i8]>,
                     idx_base: u32,
                     tid_base: u32| {
        let arg_base = (programs.len() as u16) * MAP_ARGS;
        let (in_ptr, in2_ptr, out_ptr, units) = match domain {
            MapDomain::Packed(spec) => {
                let packed = pack_codes(data, &spec).expect("padded to lane multiple");
                let ptr = gpu.mem.upload_u32(&packed).addr;
                let ptr2 = data2.map_or(0, |d| {
                    let pk = pack_codes(d, &spec).expect("padded");
                    gpu.mem.upload_u32(&pk).addr
                });
                let out = gpu.mem.alloc((packed.len() * 4).max(4) as u32);
                (ptr, ptr2, out.addr, packed.len())
            }
            _ => {
                let ptr = gpu.mem.upload_i8(data).addr;
                let ptr2 = data2.map_or(0, |d| gpu.mem.upload_i8(d).addr);
                let out = gpu.mem.alloc(data.len().max(4) as u32);
                (ptr, ptr2, out.addr, data.len())
            }
        };
        let role_threads = ROLE_WARPS * 32;
        args.extend_from_slice(&[
            in_ptr,
            in2_ptr,
            out_ptr,
            units as u32,
            blocks * role_threads,
            tid_base,
            idx_base,
            role_threads,
        ]);
        programs.push(map_program(op, domain, bitwidth, arg_base).into_arc());
        roles.extend(std::iter::repeat_n(
            (programs.len() - 1) as u8,
            ROLE_WARPS as usize,
        ));
        fetch.push((out_ptr, units, matches!(domain, MapDomain::Packed(_))));
    };

    if let Some(domain) = int_domain {
        if n1_pad > 0 {
            push_role(
                gpu,
                &mut args,
                &mut programs,
                &mut roles,
                &mut fetch,
                domain,
                &in1,
                in2_1.as_deref(),
                0,
                0,
            );
        }
    }
    let fp_needed = matches!(
        variant,
        EwVariant::Fc | EwVariant::IcFc | EwVariant::VitBit(_)
    );
    if fp_needed && n2_pad > 0 {
        let tid_base = (roles.len() as u32) * 32;
        push_role(
            gpu,
            &mut args,
            &mut programs,
            &mut roles,
            &mut fetch,
            MapDomain::Fp,
            &in_2,
            in2_2.as_deref(),
            n1 as u32,
            tid_base,
        );
    }
    assert!(!programs.is_empty(), "nothing to launch");

    let kernel = Kernel::fused(
        format!("{}_{:?}", op.name(), variant_tag(&variant)),
        programs,
        roles,
        blocks,
        0,
        args,
    );
    let stats = gpu.launch(&kernel).expect("launch");

    // Reassemble.
    let mut out = Vec::with_capacity(n);
    let mut part_iter = fetch.into_iter();
    if n1 > 0 || matches!(variant, EwVariant::Ic) {
        let (ptr, units, packed) = part_iter.next().expect("int part present");
        let dev = vitbit_sim::mem::DevPtr {
            addr: ptr,
            len: (units * 4) as u32,
        };
        if packed {
            let spec = match variant {
                EwVariant::VitBit(s) => s,
                _ => unreachable!("packed implies VitBit"),
            };
            let words = gpu.mem.download_u32(dev, units);
            let codes = unpack_codes(&words, &spec);
            out.extend_from_slice(&codes[..n1]);
        } else {
            out.extend_from_slice(&gpu.mem.download_i8(dev, units)[..n1]);
        }
    }
    if let Some((ptr, units, _)) = part_iter.next() {
        let dev = vitbit_sim::mem::DevPtr {
            addr: ptr,
            len: units as u32,
        };
        out.extend_from_slice(&gpu.mem.download_i8(dev, units)[..n2]);
    }
    out.truncate(n);
    MapOut { out, stats }
}

fn variant_tag(v: &EwVariant) -> &'static str {
    match v {
        EwVariant::Ic => "ic",
        EwVariant::Fc => "fc",
        EwVariant::IcFc => "ic_fc",
        EwVariant::VitBit(_) => "vitbit",
    }
}

/// Host reference for one map op in a `bitwidth`-bit domain.
pub fn map_reference_int(op: MapOp, x: &[i8], y: Option<&[i8]>, bitwidth: u32) -> Vec<i8> {
    match op {
        MapOp::Gelu => x
            .iter()
            .map(|&v| hostref::shiftgelu_i(i32::from(v), bitwidth))
            .collect(),
        MapOp::Dropout { seed, keep_q8 } => x
            .iter()
            .enumerate()
            .map(|(i, &v)| hostref::dropout_i(i32::from(v), i as u32, seed, keep_q8, bitwidth))
            .collect(),
        MapOp::Add => x
            .iter()
            .zip(y.expect("Add needs y"))
            .map(|(&a, &b)| hostref::add_i(i32::from(a), i32::from(b), bitwidth))
            .collect(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use vitbit_sim::OrinConfig;
    use vitbit_tensor::gen;

    fn gpu() -> Gpu {
        Gpu::new(OrinConfig::test_small(), 32 << 20)
    }

    fn codes(n: usize, lo: i8, hi: i8, seed: u64) -> Vec<i8> {
        gen::uniform_i8(1, n, lo, hi, seed).into_vec()
    }

    #[test]
    fn gelu_ic_bit_exact() {
        let mut g = gpu();
        let x = codes(1000, -128, 127, 1);
        let out = run_map(&mut g, MapOp::Gelu, EwVariant::Ic, 8, &x, None);
        assert_eq!(out.out, map_reference_int(MapOp::Gelu, &x, None, 8));
        assert!(out.stats.issued.fp == 0);
    }

    #[test]
    fn gelu_fc_close_to_int() {
        let mut g = gpu();
        let x = codes(500, -128, 127, 2);
        let out = run_map(&mut g, MapOp::Gelu, EwVariant::Fc, 8, &x, None);
        let reference = map_reference_int(MapOp::Gelu, &x, None, 8);
        for (a, b) in out.out.iter().zip(&reference) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 2, "{a} vs {b}");
        }
        assert!(out.stats.issued.fp > 0);
    }

    #[test]
    fn gelu_vitbit_packed_share_is_exact_in_6bit_domain() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let x = codes(1200, -32, 31, 3);
        let out = run_map(&mut g, MapOp::Gelu, EwVariant::VitBit(spec), 6, &x, None);
        // The packed (first) share matches the 6-bit-clamped reference
        // exactly; the FP share is within 2 codes.
        let (n1, _) = eq1_split(x.len(), 2).unwrap();
        let ref6 = map_reference_int(MapOp::Gelu, &x, None, 6);
        assert_eq!(&out.out[..n1], &ref6[..n1], "packed share bit-exact");
        for (a, b) in out.out[n1..].iter().zip(&ref6[n1..]) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 2);
        }
    }

    #[test]
    fn dropout_ic_bit_exact_and_seeded() {
        let mut g = gpu();
        let op = MapOp::Dropout {
            seed: 99,
            keep_q8: 204,
        };
        let x = codes(2048, -128, 127, 4);
        let out = run_map(&mut g, op, EwVariant::Ic, 8, &x, None);
        assert_eq!(out.out, map_reference_int(op, &x, None, 8));
    }

    #[test]
    fn dropout_icfc_matches_reference_per_share() {
        let mut g = gpu();
        let op = MapOp::Dropout {
            seed: 5,
            keep_q8: 204,
        };
        let x = codes(999, -100, 100, 5);
        let out = run_map(&mut g, op, EwVariant::IcFc, 8, &x, None);
        let reference = map_reference_int(op, &x, None, 8);
        let (n1, _) = eq1_split(x.len(), 1).unwrap();
        assert_eq!(&out.out[..n1], &reference[..n1], "int share exact");
        for (a, b) in out.out[n1..].iter().zip(&reference[n1..]) {
            assert!((i32::from(*a) - i32::from(*b)).abs() <= 1);
        }
    }

    #[test]
    fn add_ic_bit_exact() {
        let mut g = gpu();
        let x = codes(700, -128, 127, 6);
        let y = codes(700, -128, 127, 7);
        let out = run_map(&mut g, MapOp::Add, EwVariant::Ic, 8, &x, Some(&y));
        assert_eq!(out.out, map_reference_int(MapOp::Add, &x, Some(&y), 8));
    }

    #[test]
    fn add_vitbit_packed_share_exact() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let x = codes(640, -32, 31, 8);
        let y = codes(640, -32, 31, 9);
        let out = run_map(&mut g, MapOp::Add, EwVariant::VitBit(spec), 6, &x, Some(&y));
        let (n1, _) = eq1_split(x.len(), 2).unwrap();
        let ref6 = map_reference_int(MapOp::Add, &x, Some(&y), 6);
        assert_eq!(&out.out[..n1], &ref6[..n1]);
    }

    #[test]
    fn vitbit_reduces_lsu_traffic() {
        let mut g = gpu();
        let spec = PackSpec::guarded(6, 6).unwrap();
        let x = codes(64 * 1024, -32, 31, 10);
        let ic = run_map(&mut g, MapOp::Gelu, EwVariant::Ic, 6, &x, None);
        let vb = run_map(&mut g, MapOp::Gelu, EwVariant::VitBit(spec), 6, &x, None);
        assert!(
            vb.stats.issued.lsu < ic.stats.issued.lsu,
            "packed loads should cut LSU instructions: {} vs {}",
            vb.stats.issued.lsu,
            ic.stats.issued.lsu
        );
    }

    #[test]
    fn odd_length_handled() {
        let mut g = gpu();
        let x = codes(37, -128, 127, 11);
        let out = run_map(&mut g, MapOp::Gelu, EwVariant::Ic, 8, &x, None);
        assert_eq!(out.out.len(), 37);
        assert_eq!(out.out, map_reference_int(MapOp::Gelu, &x, None, 8));
    }
}
