//! GEMM shapes and the padding conventions shared by every kernel.
//!
//! All GEMM kernels tile with fixed block shapes; matrices are padded with
//! zeros up to tile multiples before upload and results are sliced back.
//! Every strategy pads the *same* way so normalized comparisons are fair.

use vitbit_tensor::Matrix;

/// Row-granularity all GEMM kernels share (`M` padded to a multiple).
pub const ROW_TILE: usize = 16;
/// Column granularity of CUDA-core GEMM warps (columns per warp chunk).
pub const CUDA_COL_TILE: usize = 64;
/// Column granularity of the Tensor-core kernel's block tile.
pub const TC_COL_TILE: usize = 64;
/// K granularity (Tensor-core MMA depth).
pub const K_TILE: usize = 16;

/// A GEMM problem size: `C (m x n) = A (m x k) * B (k x n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        Self { m, n, k }
    }

    /// Multiply-accumulate operations (2 ops each).
    pub fn ops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }

    /// Shape padded to kernel granularity.
    pub fn padded(&self) -> GemmShape {
        GemmShape {
            m: pad_to(self.m, ROW_TILE),
            n: pad_to(self.n, CUDA_COL_TILE),
            k: pad_to(self.k, K_TILE),
        }
    }
}

/// Rounds `x` up to a multiple of `unit`.
pub fn pad_to(x: usize, unit: usize) -> usize {
    assert!(unit > 0, "pad unit must be positive");
    x.div_ceil(unit) * unit
}

/// Zero-pads a matrix to `rows x cols` (must be >= the current shape).
pub fn pad_matrix<T: Copy + Default>(m: &Matrix<T>, rows: usize, cols: usize) -> Matrix<T> {
    assert!(
        rows >= m.rows() && cols >= m.cols(),
        "pad target {rows}x{cols} smaller than {:?}",
        m.shape()
    );
    if (rows, cols) == m.shape() {
        return m.clone();
    }
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..m.rows() {
        out.row_mut(r)[..m.cols()].copy_from_slice(m.row(r));
    }
    out
}

/// Crops a matrix back to `rows x cols` (top-left corner).
pub fn crop_matrix<T: Copy + Default>(m: &Matrix<T>, rows: usize, cols: usize) -> Matrix<T> {
    assert!(
        rows <= m.rows() && cols <= m.cols(),
        "crop target {rows}x{cols} larger than {:?}",
        m.shape()
    );
    Matrix::from_fn(rows, cols, |r, c| m[(r, c)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_to_rounds_up() {
        assert_eq!(pad_to(197, 16), 208);
        assert_eq!(pad_to(768, 64), 768);
        assert_eq!(pad_to(1, 64), 64);
        assert_eq!(pad_to(0, 16), 0);
    }

    #[test]
    fn padded_shape_for_vit_linear() {
        let s = GemmShape::new(197, 768, 768).padded();
        assert_eq!((s.m, s.n, s.k), (208, 768, 768));
    }

    #[test]
    fn ops_counts_macs_twice() {
        assert_eq!(GemmShape::new(2, 3, 4).ops(), 48);
    }

    #[test]
    fn pad_and_crop_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as i32);
        let p = pad_matrix(&m, 8, 8);
        assert_eq!(p[(2, 4)], m[(2, 4)]);
        assert_eq!(p[(3, 0)], 0);
        assert_eq!(p[(0, 5)], 0);
        assert_eq!(crop_matrix(&p, 3, 5), m);
    }

    #[test]
    fn pad_noop_when_already_sized() {
        let m = Matrix::from_fn(4, 4, |r, c| (r + c) as i8);
        assert_eq!(pad_matrix(&m, 4, 4), m);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn pad_rejects_shrink() {
        let m: Matrix<i8> = Matrix::zeros(4, 4);
        let _ = pad_matrix(&m, 2, 4);
    }
}
