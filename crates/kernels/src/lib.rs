//! # vitbit-kernels: simulated GPU kernels for the VitBit reproduction
//!
//! Every kernel exists twice: as a *program builder* that emits the
//! SASS-like ISA of `vitbit-sim`, and as a *driver* that uploads operands,
//! launches the kernel on a [`vitbit_sim::Gpu`], and downloads results. The
//! drivers return both values and [`vitbit_sim::KernelStats`], so tests can
//! assert bit-exactness against host references while experiments read
//! cycles, instruction counts, IPC and utilization.
//!
//! Kernel families:
//!
//! * [`gemm`] — the GEMMs of Table 3: Tensor-core (`tc`), INT-CUDA-core
//!   (zero-masking), FP-CUDA-core (converted), packed-INT (with a
//!   [`vitbit_core::PackSpec`]), and the fused warp-role kernels (Tacker,
//!   TC+IC+FC, VitBit) of Algorithm 2;
//! * [`elementwise`] — the CUDA-core kernels of the ViT attention block
//!   (ShiftGELU, Shiftmax, I-LayerNorm, dropout, residual add) in IC / FC /
//!   IC+FC / VitBit-packed variants, plus their host reference
//!   implementations (shared with `vitbit-vit`).

#![warn(clippy::unwrap_used)]

pub mod elementwise;
pub mod gemm;
pub mod shapes;

pub use shapes::GemmShape;
