//! Calibration probes for the Section 3.2 "initial study" ratios.
//!
//! The default probe (small shape, small machine) runs in the normal suite
//! and asserts only the *ordering* the paper reports:
//! `TC << IC+FC+P < IC+FC <= IC ~= FC`. The `#[ignore]`d probe prints the
//! full-machine ratios on a ViT-sized Linear shape; the bench harness uses
//! the same code path to regenerate the study.

use vitbit_core::policy::PackSpec;
use vitbit_kernels::gemm::{run_fc, run_ic, run_ic_fc, run_ic_fc_packed, run_tc};
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::gen;

fn probe(gpu: &mut Gpu, m: usize, n: usize, k: usize) -> [(String, u64); 5] {
    let a = gen::uniform_i8(m, k, -32, 31, 42);
    let b = gen::uniform_i8(k, n, -32, 31, 43);
    let spec = PackSpec::guarded(6, 6).unwrap();
    let tc = run_tc(gpu, &a, &b).expect("gemm").stats.cycles;
    let ic = run_ic(gpu, &a, &b).expect("gemm").stats.cycles;
    let fc = run_fc(gpu, &a, &b).expect("gemm").stats.cycles;
    let icfc = run_ic_fc(gpu, &a, &b).expect("gemm").stats.cycles;
    let icfcp = run_ic_fc_packed(gpu, &a, &b, &spec)
        .expect("gemm")
        .stats
        .cycles;
    [
        ("TC".into(), tc),
        ("IC".into(), ic),
        ("FC".into(), fc),
        ("IC+FC".into(), icfc),
        ("IC+FC+P".into(), icfcp),
    ]
}

#[test]
fn study_ordering_holds_on_small_machine() {
    // Small shape + small machine: only the robust orderings are asserted
    // here (the packing win needs realistic column counts to amortize — the
    // `--ignored` full-machine probe and the bench harness cover that).
    let mut gpu = Gpu::new(OrinConfig::test_small(), 128 << 20);
    let r = probe(&mut gpu, 64, 256, 256);
    let get = |name: &str| r.iter().find(|(n, _)| n == name).unwrap().1 as f64;
    let tc = get("TC");
    let ic = get("IC");
    let fc = get("FC");
    let icfc = get("IC+FC");
    let icfcp = get("IC+FC+P");
    for (name, cyc) in &r {
        eprintln!("{name:8} {cyc}");
    }
    assert!(
        tc * 2.0 < icfcp.min(icfc).min(ic).min(fc),
        "TC clearly fastest"
    );
    assert!(
        (ic - fc).abs() / ic < 0.35,
        "IC and FC in the same ballpark"
    );
    assert!(icfc <= ic * 1.05, "co-scheduling no slower than IC");
    assert!(
        icfcp <= ic * 1.10,
        "packing roughly no slower than IC at small scale"
    );
}

#[test]
#[ignore = "full-machine packing ordering; run with --ignored --release"]
fn study_ordering_full_orin() {
    let mut gpu = Gpu::orin();
    let r = probe(&mut gpu, 197, 768, 768);
    let get = |name: &str| r.iter().find(|(n, _)| n == name).unwrap().1 as f64;
    assert!(get("TC") < get("IC+FC+P"));
    assert!(
        get("IC+FC+P") < get("IC+FC"),
        "packing beats plain co-scheduling"
    );
    assert!(get("IC+FC") < get("IC"), "co-scheduling beats IC alone");
}

#[test]
#[ignore = "full-machine calibration; run with --ignored --release"]
fn study_ratios_full_orin() {
    let mut gpu = Gpu::orin();
    // ViT-Base Linear: (197x768) x (768x768), padded internally.
    let r = probe(&mut gpu, 197, 768, 768);
    let tc = r[0].1 as f64;
    for (name, cyc) in &r {
        eprintln!("{name:8} {cyc:>10}  {:>5.2}x TC", *cyc as f64 / tc);
    }
}
