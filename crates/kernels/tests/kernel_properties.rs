//! Kernel-level properties: static instruction mixes of generated
//! programs, elementwise edge cases across bitwidths, and GEMM shape
//! robustness sweeps.

use vitbit_core::policy::PackSpec;
use vitbit_kernels::elementwise::{hostref, run_layernorm, run_map, run_softmax, EwVariant, MapOp};
use vitbit_kernels::gemm::cuda::{cuda_gemm_program, CudaElem, RoleGeom};
use vitbit_kernels::gemm::tc::tc_gemm_program;
use vitbit_kernels::gemm::{run_ic, run_tc};
use vitbit_sim::trace::static_mix;
use vitbit_sim::{Gpu, OrinConfig};
use vitbit_tensor::refgemm::gemm_i8_i32;
use vitbit_tensor::{check, gen, Matrix};

fn gpu() -> Gpu {
    Gpu::new(OrinConfig::test_small(), 64 << 20)
}

#[test]
fn generated_programs_have_the_documented_pipe_mixes() {
    let geom = RoleGeom::standalone(1);
    let int_mix = static_mix(&cuda_gemm_program(CudaElem::Int, geom, 0));
    assert!(int_mix.fp == 0, "IC GEMM must not touch the FP pipe");
    assert!(int_mix.int > int_mix.lsu, "IC GEMM is INT-math heavy");

    let fp_mix = static_mix(&cuda_gemm_program(CudaElem::Fp, geom, 0));
    assert!(fp_mix.fp > 0, "FC GEMM carries FP math");
    assert!(fp_mix.fp > fp_mix.lsu, "FFMA dominates loads");

    let spec = PackSpec::guarded(6, 6).unwrap();
    let pk_mix = static_mix(&cuda_gemm_program(CudaElem::Packed(spec), geom, 0));
    assert!(pk_mix.fp == 0);

    let tc_mix = static_mix(&tc_gemm_program(2, 0));
    assert!(tc_mix.tensor > 0, "TC GEMM issues MMAs");
    assert!(
        tc_mix.lsu > tc_mix.tensor,
        "staging dominates MMA statically"
    );
}

#[test]
fn packed_program_covers_more_macs_per_int_instruction() {
    // Static check of the Figure-9 mechanism: per inner-loop iteration the
    // packed kernel's IMAD count covers `lanes`x the columns.
    let geom = RoleGeom::standalone(1);
    let spec = PackSpec::guarded(6, 6).unwrap();
    let int_p = cuda_gemm_program(CudaElem::Int, geom, 0);
    let pk_p = cuda_gemm_program(CudaElem::Packed(spec), geom, 0);
    // Both programs' K loops are unrolled differently (8 vs 16); normalize
    // by unroll via total MACs covered per static IMAD: packed covers
    // 2x columns per IMAD by construction, so its dynamic INT instruction
    // count must come out lower — checked dynamically:
    let mut g = gpu();
    let a = gen::uniform_i8(32, 64, -32, 31, 1);
    let b = gen::uniform_i8(64, 128, -32, 31, 2);
    let ic = run_ic(&mut g, &a, &b).expect("gemm");
    let pk = vitbit_kernels::gemm::run_packed(&mut g, &a, &b, &spec).expect("gemm");
    assert_eq!(ic.c, pk.c);
    assert!(
        pk.stats.issued.int * 13 < ic.stats.issued.int * 10,
        "packed INT insts {} should be well under IC's {}",
        pk.stats.issued.int,
        ic.stats.issued.int
    );
    let _ = (int_p, pk_p);
}

#[test]
fn elementwise_bitwidths_respect_their_ranges() {
    let mut g = gpu();
    for bw in [4u32, 6, 8] {
        let hi = ((1i32 << (bw - 1)) - 1) as i8;
        let x = gen::uniform_i8(1, 512, -hi - 1, hi, u64::from(bw)).into_vec();
        let out = run_map(&mut g, MapOp::Gelu, EwVariant::Ic, bw, &x, None);
        assert!(
            out.out.iter().all(|&v| v >= -hi - 1 && v <= hi),
            "bitwidth {bw} output out of range"
        );
        assert_eq!(
            out.out,
            x.iter()
                .map(|&v| hostref::shiftgelu_i(i32::from(v), bw))
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn dropout_keep_everything_and_drop_everything() {
    let mut g = gpu();
    let x = gen::uniform_i8(1, 256, -32, 31, 3).into_vec();
    // keep_q8 = 256: every element kept with unit scale.
    let all = run_map(
        &mut g,
        MapOp::Dropout {
            seed: 1,
            keep_q8: 256,
        },
        EwVariant::Ic,
        6,
        &x,
        None,
    );
    assert_eq!(all.out, x, "keep=256 must be identity");
    // keep_q8 = 1: almost everything dropped.
    let none = run_map(
        &mut g,
        MapOp::Dropout {
            seed: 1,
            keep_q8: 1,
        },
        EwVariant::Ic,
        6,
        &x,
        None,
    );
    let zeros = none.out.iter().filter(|&&v| v == 0).count();
    assert!(zeros > 240, "keep=1/256 drops almost all: {zeros}");
}

#[test]
fn softmax_constant_row_is_uniform_and_peaked_row_is_peaked() {
    let mut g = gpu();
    let flat = Matrix::from_fn(2, 64, |_, _| 5i8);
    let out = run_softmax(&mut g, &flat, EwVariant::Ic, 8);
    let first = out.out[(0, 0)];
    assert!(out.out.as_slice().iter().all(|&v| v == first));

    let mut peaked = Matrix::from_fn(1, 64, |_, _| -60i8);
    peaked[(0, 7)] = 90;
    let out = run_softmax(&mut g, &peaked, EwVariant::Ic, 8);
    assert!(out.out[(0, 7)] > 100);
    assert!(out
        .out
        .row(0)
        .iter()
        .enumerate()
        .all(|(i, &v)| i == 7 || v <= 2));
}

#[test]
fn layernorm_shifts_do_not_break_saturation() {
    let mut g = gpu();
    // Extreme rows: all max codes except one min.
    let mut x = Matrix::from_fn(4, 64, |_, _| 31i8);
    for r in 0..4 {
        x[(r, r)] = -32;
    }
    let out = run_layernorm(&mut g, &x, 64, 0, EwVariant::Ic, 6);
    for r in 0..4 {
        let host = hostref::ilayernorm_row_i(x.row(r), 64, 0, 6);
        assert_eq!(out.out.row(r), host.as_slice(), "row {r}");
    }
}

/// IC and TC GEMMs agree for arbitrary shapes (padding robustness).
#[test]
fn prop_gemm_shape_robustness() {
    check::cases(0x6e1_0001, 10, |rng| {
        let m = rng.random_range(1usize..40);
        let n = rng.random_range(1usize..70);
        let k = rng.random_range(1usize..50);
        let seed = rng.random_range(0u64..100);
        let mut g = gpu();
        let a = gen::uniform_i8(m, k, -32, 31, seed);
        let b = gen::uniform_i8(k, n, -32, 31, seed + 1);
        let want = gemm_i8_i32(&a, &b);
        assert_eq!(run_ic(&mut g, &a, &b).expect("gemm").c, want.clone());
        assert_eq!(run_tc(&mut g, &a, &b).expect("gemm").c, want);
    });
}

/// Elementwise map kernels agree with host references for arbitrary
/// lengths and variants.
#[test]
fn prop_map_kernels_match_reference() {
    check::cases(0x6e1_0002, 10, |rng| {
        let len = rng.random_range(1usize..700);
        let seed = rng.random_range(0u64..100);
        let variant_ix = rng.random_range(0usize..3);
        let mut g = gpu();
        let x = gen::uniform_i8(1, len, -32, 31, seed).into_vec();
        let y = gen::uniform_i8(1, len, -32, 31, seed + 1).into_vec();
        let variant = [EwVariant::Ic, EwVariant::Fc, EwVariant::IcFc][variant_ix];
        for op in [
            MapOp::Gelu,
            MapOp::Add,
            MapOp::Dropout {
                seed: 5,
                keep_q8: 204,
            },
        ] {
            let y_opt = matches!(op, MapOp::Add).then_some(y.as_slice());
            let out = run_map(&mut g, op, variant, 6, &x, y_opt);
            let reference = vitbit_kernels::elementwise::map::map_reference_int(op, &x, y_opt, 6);
            assert_eq!(&out.out, &reference, "op {op:?} variant {variant:?}");
        }
    });
}
