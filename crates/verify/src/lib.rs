//! Static SWAR lane-safety and shared-memory hazard verification for
//! VitBit kernel programs.
//!
//! The packed GEMM kernels bet their correctness on two invariants the
//! runtime never checks: every packed lane must absorb its worst-case
//! K-deep accumulation without carrying into the neighbor lane (the
//! Eq. 1 guard-bit budget, DESIGN.md §10), and every shared-memory
//! staging buffer must be separated from its consumers by a barrier.
//! This crate proves both **statically**, per emitted program, before a
//! plan ever runs:
//!
//! * [`absint`] — an abstract interpretation over the simulator ISA
//!   tracking per-register intervals, known-zero bitmasks and explicit
//!   SWAR lane structure (domain in [`domain`]). Counted loops execute
//!   exactly (the K loop bound is a compile-time constant of the plan),
//!   so the lane-occupancy bound is sharp, not widened.
//! * [`hazard`] — a lockstep concrete interpretation of one block that
//!   records every shared-memory access per barrier interval and
//!   reports write-write / write-read overlaps with no barrier between
//!   them.
//!
//! Entry points: [`verify_program`] for one program against the
//! [`GemmDesc`] it will run under, [`verify_desc`] for every program a
//! desc's strategy emits, and [`engine_verifier`] which packages the
//! latter as a [`vitbit_plan::PlanVerifier`] for
//! `Engine::prepare`-time rejection. The [`mutate`] module seeds known
//! violations and asserts the analyzer flags them — the evidence the
//! pass has teeth.

#![warn(clippy::unwrap_used)]

pub mod absint;
pub mod domain;
pub mod hazard;
pub mod mutate;

use std::sync::Arc;
use vitbit_core::policy::PackSpec;
use vitbit_kernels::gemm::cuda::{
    cuda_gemm_program, pick_k_splits, CudaElem, RoleGeom, ARGS_PER_ROLE, CHUNK_COLS, K_PAD, M_PAD,
};
use vitbit_kernels::gemm::fused::{plan_fused, FusedBody};
use vitbit_kernels::gemm::tc::{tc_gemm_program, TC_ARGS, TC_K_UNIT};
use vitbit_kernels::shapes::pad_to;
use vitbit_plan::{GemmDesc, Strategy};
use vitbit_sim::{Op, Program};

pub use absint::LaneFacts;
pub use hazard::HazardFacts;

/// K depth the hazard trace is capped at: the staging pipeline rotates
/// through 4 buffers of 64 K-steps, so 256 covers a full rotation and
/// every barrier-interval pattern the kernel can produce (addresses are
/// loop-invariant; see `hazard`).
const HAZARD_KMAX_CAP: u32 = 256;

/// Everything the analyzer needs to know about the launch a program
/// will run under: where its kernel arguments sit, the exact K-loop
/// bound the plan implies, the packing spec of its operands (if any)
/// and the warp count of its block.
#[derive(Debug, Clone)]
pub struct ProgramContext {
    /// Program name (diagnostics only).
    pub name: String,
    /// First kernel-argument slot of this role (`Ldc` index offset).
    pub arg_base: u16,
    /// Argument slot holding the K-loop bound.
    pub kmax_slot: u16,
    /// Exact K-loop bound the plan will pass in that slot.
    pub kmax: u32,
    /// Packing spec of the operands when the program is a packed role.
    pub spec: Option<PackSpec>,
    /// Warps of this role in one block.
    pub warps: u32,
}

/// One statically-detected defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A packed lane's worst-case accumulated value exceeds its
    /// `lane_bits` budget: the carry would corrupt the neighbor lane.
    LaneOverflow {
        /// Instruction that pushes the lane past its budget.
        pc: usize,
        /// Lane index (0 = least significant).
        lane: u32,
        /// Worst-case lane bound the analysis derived.
        bound: u64,
        /// Largest value the lane can hold (`2^lane_bits - 1`).
        capacity: u64,
    },
    /// An ALU op destroys the zero-padding mask structure of a packed
    /// register (an op outside the lane-structure-preserving set, or a
    /// mask that does not match the spec's lane mask).
    MaskClobbered {
        /// Offending instruction.
        pc: usize,
        /// What was done to the packed register.
        detail: String,
    },
    /// A shift of a packed register by a non-multiple of the lane
    /// width: lanes would straddle the extraction mask.
    LaneMisaligned {
        /// Offending instruction.
        pc: usize,
        /// The shift amount.
        shift: u32,
    },
    /// A packed register is stored to global memory without lane
    /// extraction — packed payloads must be spilled, never escape raw.
    PackedEscape {
        /// The store instruction.
        pc: usize,
    },
    /// A wide (post-extraction) accumulator can exceed 32 bits: its
    /// lane sums would wrap and the bias correction would be wrong.
    AccumulatorWrap {
        /// Instruction whose result can exceed `u32::MAX`.
        pc: usize,
        /// Worst-case bound the analysis derived.
        bound: u64,
    },
    /// Two writes to overlapping shared-memory bytes in the same
    /// barrier interval with no ordering between them.
    WriteWriteHazard {
        /// First writing instruction (program order).
        pc_a: usize,
        /// Second writing instruction.
        pc_b: usize,
        /// Barrier interval index (0 = before the first barrier).
        interval: usize,
        /// A byte address inside the overlap.
        addr: u32,
    },
    /// A write and a read of overlapping shared-memory bytes from
    /// different warps in the same barrier interval.
    WriteReadHazard {
        /// The writing instruction.
        write_pc: usize,
        /// The reading instruction.
        read_pc: usize,
        /// Barrier interval index.
        interval: usize,
        /// A byte address inside the overlap.
        addr: u32,
    },
    /// An instruction the abstract trace never reached: the proof does
    /// not cover it, so the program is rejected rather than assumed
    /// safe.
    Uncovered {
        /// The unreached instruction.
        pc: usize,
    },
    /// The analysis itself gave up (budget, divergence, or a shape it
    /// cannot handle). Fail closed: an unanalyzable program is not a
    /// verified program.
    AnalysisLimit {
        /// Why.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LaneOverflow {
                pc,
                lane,
                bound,
                capacity,
            } => write!(
                f,
                "lane overflow at pc {pc}: lane {lane} worst-case {bound} exceeds capacity {capacity}"
            ),
            Violation::MaskClobbered { pc, detail } => {
                write!(f, "packed mask clobbered at pc {pc}: {detail}")
            }
            Violation::LaneMisaligned { pc, shift } => write!(
                f,
                "misaligned packed shift at pc {pc}: shift {shift} is not a lane multiple"
            ),
            Violation::PackedEscape { pc } => write!(
                f,
                "packed register escapes to global memory unextracted at pc {pc}"
            ),
            Violation::AccumulatorWrap { pc, bound } => write!(
                f,
                "wide accumulator can wrap at pc {pc}: worst-case {bound} exceeds 32 bits"
            ),
            Violation::WriteWriteHazard {
                pc_a,
                pc_b,
                interval,
                addr,
            } => write!(
                f,
                "smem write-write hazard in barrier interval {interval}: pcs {pc_a} and {pc_b} overlap at byte {addr}"
            ),
            Violation::WriteReadHazard {
                write_pc,
                read_pc,
                interval,
                addr,
            } => write!(
                f,
                "smem write-read hazard in barrier interval {interval}: write pc {write_pc} vs read pc {read_pc} at byte {addr}"
            ),
            Violation::Uncovered { pc } => {
                write!(f, "instruction at pc {pc} not covered by the abstract trace")
            }
            Violation::AnalysisLimit { detail } => write!(f, "analysis limit: {detail}"),
        }
    }
}

/// The proof record of one program under one context.
#[derive(Debug, Clone)]
pub struct ProgramProof {
    /// Program name.
    pub name: String,
    /// Instruction count.
    pub ops: usize,
    /// What the lane-safety pass established.
    pub lane: LaneFacts,
    /// What the hazard pass established.
    pub hazard: HazardFacts,
}

/// A successful verification: every program the desc's strategy emits,
/// with the facts each proof rests on.
#[derive(Debug, Clone)]
pub struct ProofReport {
    /// Human-readable description of what was verified.
    pub subject: String,
    /// Per-program proofs.
    pub programs: Vec<ProgramProof>,
}

/// Runs both passes over one program under an explicit context.
pub fn verify_with_context(
    program: &Program,
    ctx: &ProgramContext,
) -> (ProgramProof, Vec<Violation>) {
    let (lane, mut violations) = absint::analyze(program, ctx);
    // The hazard trace is concrete: cap the K depth at a full staging
    // rotation (the access pattern is K-periodic; see `hazard`).
    let hz_ctx = ProgramContext {
        kmax: ctx.kmax.min(HAZARD_KMAX_CAP),
        ..ctx.clone()
    };
    let (hazard, hz_violations) = hazard::analyze(program, &hz_ctx);
    violations.extend(hz_violations);
    (
        ProgramProof {
            name: ctx.name.clone(),
            ops: program.ops.len(),
            lane,
            hazard,
        },
        violations,
    )
}

/// Standalone CUDA-role geometry exactly as `run_ic`/`run_fc`/
/// `run_packed` compute it: `(kmax, role geometry)`.
fn standalone_cuda_geom(m: usize, k: usize, n: usize, lanes: usize) -> (u32, RoleGeom) {
    let mp = pad_to(m.max(1), M_PAD);
    let np = pad_to(n.max(1), CHUNK_COLS * lanes);
    let kp = pad_to(k.max(1), K_PAD);
    let n_chunks = (np / lanes) / CHUNK_COLS;
    let geom = RoleGeom::standalone(pick_k_splits(n_chunks, mp / 16, kp));
    ((kp as u32) / geom.k_splits, geom)
}

fn tc_context(k: usize) -> (Arc<Program>, ProgramContext) {
    let kp = pad_to(k.max(1), TC_K_UNIT);
    let prog = tc_gemm_program(2, 0).into_arc();
    let ctx = ProgramContext {
        name: prog.name.clone(),
        arg_base: 0,
        kmax_slot: 4,
        kmax: kp as u32,
        spec: None,
        warps: 8,
    };
    (prog, ctx)
}

/// The standalone Tensor-core kernel with its launch context, for the
/// mutation suite and builder-direct sweeps.
pub fn tc_context_for_mutation(k: usize) -> (Arc<Program>, ProgramContext) {
    tc_context(k)
}

/// The fused-role variant of the Tensor-core program (16-row blocks,
/// 4 warps), for builder-direct sweeps.
pub fn tc_role_context(k: usize) -> (Arc<Program>, ProgramContext) {
    let kp = pad_to(k.max(1), TC_K_UNIT);
    let prog = tc_gemm_program(1, 0).into_arc();
    let ctx = ProgramContext {
        name: prog.name.clone(),
        arg_base: 0,
        kmax_slot: 4,
        kmax: kp as u32,
        spec: None,
        warps: 4,
    };
    (prog, ctx)
}

/// The standalone packed kernel exactly as `run_packed` launches it,
/// for builder-direct sweeps and the mutation suite.
pub fn packed_context(
    m: usize,
    k: usize,
    n: usize,
    spec: PackSpec,
) -> (Arc<Program>, ProgramContext) {
    let (kmax, geom) = standalone_cuda_geom(m, k, n, spec.lanes as usize);
    let prog = cuda_gemm_program(CudaElem::Packed(spec), geom, 0).into_arc();
    let ctx = ProgramContext {
        name: prog.name.clone(),
        arg_base: 0,
        kmax_slot: 5,
        kmax,
        spec: Some(spec),
        warps: geom.role_warps,
    };
    (prog, ctx)
}

fn cuda_standalone_context(
    m: usize,
    k: usize,
    n: usize,
    elem: CudaElem,
) -> (Arc<Program>, ProgramContext) {
    let (kmax, geom) = standalone_cuda_geom(m, k, n, 1);
    let prog = cuda_gemm_program(elem, geom, 0).into_arc();
    let ctx = ProgramContext {
        name: prog.name.clone(),
        arg_base: 0,
        kmax_slot: 5,
        kmax,
        spec: None,
        warps: geom.role_warps,
    };
    (prog, ctx)
}

/// IC+FC co-residency geometry exactly as `run_ic_fc` computes it.
fn ic_fc_contexts(m: usize, k: usize, n: usize) -> Vec<(Arc<Program>, ProgramContext)> {
    let (n1_raw, _) = vitbit_core::ratio::eq1_split(n, 1).expect("lanes >= 1");
    let n1 = pad_to(n1_raw, CHUNK_COLS);
    let n1c = n1_raw.min(n);
    let n2 = pad_to((n - n1c).max(1), CHUNK_COLS);
    let mp = pad_to(m.max(1), M_PAD);
    let kp = pad_to(k.max(1), K_PAD);
    let chunks1 = n1 / CHUNK_COLS;
    let chunks2 = n2 / CHUNK_COLS;
    let ks = pick_k_splits(chunks1.min(chunks2).max(1), mp / 16, kp);
    let geom = RoleGeom {
        role_warps: 4,
        row_groups: 1,
        k_splits: ks,
    };
    let kmax = (kp as u32) / ks;
    let int_prog = cuda_gemm_program(CudaElem::Int, geom, 0).into_arc();
    let fp_prog = cuda_gemm_program(CudaElem::Fp, geom, ARGS_PER_ROLE).into_arc();
    vec![
        (
            Arc::clone(&int_prog),
            ProgramContext {
                name: int_prog.name.clone(),
                arg_base: 0,
                kmax_slot: 5,
                kmax,
                spec: None,
                warps: geom.role_warps,
            },
        ),
        (
            Arc::clone(&fp_prog),
            ProgramContext {
                name: fp_prog.name.clone(),
                arg_base: ARGS_PER_ROLE,
                kmax_slot: ARGS_PER_ROLE + 5,
                kmax,
                spec: None,
                warps: geom.role_warps,
            },
        ),
    ]
}

/// Every `(program, context)` pair the desc's strategy will launch,
/// derived by replicating the drivers' pure geometry computations.
pub fn contexts_for_desc(desc: &GemmDesc) -> Vec<(Arc<Program>, ProgramContext)> {
    let (m, k, n) = (desc.m, desc.k, desc.n);
    match desc.strategy {
        Strategy::Tc => vec![tc_context(k)],
        Strategy::Ic => vec![cuda_standalone_context(m, k, n, CudaElem::Int)],
        Strategy::Fc => vec![cuda_standalone_context(m, k, n, CudaElem::Fp)],
        Strategy::IcFc => ic_fc_contexts(m, k, n),
        Strategy::Tacker | Strategy::TcIcFc | Strategy::VitBit => {
            let mode = desc.fused_mode().expect("fused strategy");
            let ratio = desc.ratio.unwrap_or_else(|| mode.default_ratio());
            let plan = plan_fused(m, k, n, mode, ratio);
            match &plan.body {
                FusedBody::TcFallback => vec![tc_context(k)],
                FusedBody::Launch(g) => {
                    let kmax = (g.kp as u32) / g.geom.k_splits;
                    let mut out = Vec::new();
                    for prog in &g.programs {
                        let ctx = if prog.name.starts_with("gemm_tc") {
                            ProgramContext {
                                name: prog.name.clone(),
                                arg_base: 0,
                                kmax_slot: 4,
                                kmax: g.kp as u32,
                                spec: None,
                                warps: 8,
                            }
                        } else {
                            let arg_base = min_ldc_index(prog).unwrap_or(TC_ARGS);
                            ProgramContext {
                                name: prog.name.clone(),
                                arg_base,
                                kmax_slot: arg_base + 5,
                                kmax,
                                spec: match (prog.name.as_str(), g.int_elem) {
                                    ("gemm_ic_packed", CudaElem::Packed(s)) => Some(s),
                                    _ => None,
                                },
                                warps: g.geom.role_warps,
                            }
                        };
                        out.push((Arc::clone(prog), ctx));
                    }
                    out
                }
            }
        }
    }
}

/// Lowest `Ldc` argument index a program reads — its `arg_base`.
fn min_ldc_index(program: &Program) -> Option<u16> {
    program
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Ldc { idx, .. } => Some(*idx),
            _ => None,
        })
        .min()
}

fn subject_of(desc: &GemmDesc) -> String {
    format!(
        "{} {}x{}x{} int{} (weights int{})",
        desc.strategy.name(),
        desc.m,
        desc.k,
        desc.n,
        desc.spec.bitwidth,
        desc.spec.weight_bitwidth,
    )
}

/// Verifies one program against the launch context implied by `desc`.
///
/// The context is matched by program name among the programs the desc's
/// strategy emits; unknown programs are analyzed under an inferred
/// context (arg base from the lowest `Ldc` slot, geometry from the
/// desc's shape).
///
/// # Errors
/// Every violation either pass found; empty-violation success carries
/// the [`ProofReport`].
pub fn verify_program(program: &Program, desc: &GemmDesc) -> Result<ProofReport, Vec<Violation>> {
    let ctx = contexts_for_desc(desc)
        .into_iter()
        .find(|(p, _)| p.name == program.name && p.ops.len() == program.ops.len())
        .map(|(_, ctx)| ctx)
        .unwrap_or_else(|| infer_context(program, desc));
    let (proof, violations) = verify_with_context(program, &ctx);
    if violations.is_empty() {
        Ok(ProofReport {
            subject: format!("{} :: {}", subject_of(desc), program.name),
            programs: vec![proof],
        })
    } else {
        Err(violations)
    }
}

/// Fallback context for a program the desc's strategy does not emit
/// (e.g. hand-built or mutated programs).
fn infer_context(program: &Program, desc: &GemmDesc) -> ProgramContext {
    let arg_base = min_ldc_index(program).unwrap_or(0);
    let is_tc = program.ops.iter().any(|op| matches!(op, Op::Mma { .. }));
    if is_tc {
        ProgramContext {
            name: program.name.clone(),
            arg_base,
            kmax_slot: arg_base + 4,
            kmax: pad_to(desc.k.max(1), TC_K_UNIT) as u32,
            spec: None,
            warps: 8,
        }
    } else {
        let spec = (program.name == "gemm_ic_packed").then_some(desc.spec);
        let lanes = spec.map_or(1, |s| s.lanes as usize);
        let (kmax, geom) = standalone_cuda_geom(desc.m, desc.k, desc.n, lanes);
        ProgramContext {
            name: program.name.clone(),
            arg_base,
            kmax_slot: arg_base + 5,
            kmax,
            spec,
            warps: geom.role_warps,
        }
    }
}

/// Verifies every program the desc's strategy emits.
///
/// # Errors
/// The union of all violations across the desc's programs.
pub fn verify_desc(desc: &GemmDesc) -> Result<ProofReport, Vec<Violation>> {
    let mut programs = Vec::new();
    let mut violations = Vec::new();
    for (prog, ctx) in contexts_for_desc(desc) {
        let (proof, v) = verify_with_context(&prog, &ctx);
        programs.push(proof);
        violations.extend(v);
    }
    if violations.is_empty() {
        Ok(ProofReport {
            subject: subject_of(desc),
            programs,
        })
    } else {
        Err(violations)
    }
}

/// Projects a full [`ProofReport`] onto the engine's serializable
/// [`vitbit_plan::PlanProof`]: the subject line plus per-program
/// `(name, ops-proven-safe)` pairs — enough for a persisted plan cache
/// to attest "these programs were verified" without carrying the whole
/// fact base.
pub fn plan_proof(report: &ProofReport) -> vitbit_plan::PlanProof {
    vitbit_plan::PlanProof {
        subject: report.subject.clone(),
        programs: report
            .programs
            .iter()
            .map(|p| (p.name.clone(), p.ops as u64))
            .collect(),
    }
}

/// Packages [`verify_desc`] as the plan engine's prepare-time hook.
pub fn engine_verifier() -> vitbit_plan::PlanVerifier {
    vitbit_plan::PlanVerifier::new(|desc: &GemmDesc| match verify_desc(desc) {
        Ok(report) => Ok(plan_proof(&report)),
        Err(violations) => Err(violations.iter().map(ToString::to_string).collect()),
    })
}

/// Packages [`verify_program`] as the plan engine's per-program
/// scheduling gate: the static scheduler only adopts a reordered
/// program when this check re-proves it from scratch. Installing no
/// check means the engine declines every candidate (fail-closed).
pub fn program_checker() -> vitbit_plan::ProgramCheck {
    vitbit_plan::ProgramCheck::new(|program: &Program, desc: &GemmDesc| {
        match verify_program(program, desc) {
            Ok(_) => Ok(()),
            Err(violations) => Err(violations.iter().map(ToString::to_string).collect()),
        }
    })
}

/// A desc for verification sweeps: shape + strategy + spec, with the
/// engine-irrelevant fields defaulted.
pub fn sweep_desc(strategy: Strategy, spec: PackSpec, m: usize, k: usize, n: usize) -> GemmDesc {
    GemmDesc {
        m,
        k,
        n,
        strategy,
        bitwidth: spec.bitwidth,
        spec,
        ratio: None,
        adaptive: false,
        weight: None,
        abft: false,
        verify: false,
        sched: false,
        knobs: vitbit_plan::SimKnobs::from_config(&vitbit_sim::OrinConfig::test_small()),
    }
}

/// The four ViT-Base encoder linear shapes (tokens x in x out) the
/// paper's workload sweeps: QKV, attention projection, MLP fc1, fc2.
pub const VIT_BASE_SHAPES: [(&str, usize, usize, usize); 4] = [
    ("qkv", 197, 768, 2304),
    ("proj", 197, 768, 768),
    ("fc1", 197, 768, 3072),
    ("fc2", 197, 3072, 768),
];

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn tc_standalone_verifies() {
        let desc = sweep_desc(Strategy::Tc, PackSpec::guarded(6, 6).unwrap(), 64, 128, 64);
        let report = verify_desc(&desc).expect("tc proof");
        assert_eq!(report.programs.len(), 1);
        assert!(report.programs[0].hazard.barrier_intervals > 1);
        assert!(report.programs[0].hazard.smem_writes > 0);
    }

    #[test]
    fn packed_int6_verifies_with_tight_occupancy() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let (prog, ctx) = packed_context(197, 768, 768, spec);
        let (proof, violations) = verify_with_context(&prog, &ctx);
        assert_eq!(violations, vec![], "packed int6 must prove clean");
        // 16 MACs x 63*63 = 63504 of 65535: the proof must be sharp,
        // not a loose over-approximation.
        assert_eq!(proof.lane.max_lane_occupancy, 16 * 63 * 63);
        assert_eq!(proof.lane.lane_capacity, 65535);
    }

    #[test]
    fn vitbit_fused_desc_verifies_all_roles() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let desc = sweep_desc(Strategy::VitBit, spec, 197, 768, 2304);
        let report = verify_desc(&desc).expect("vitbit proof");
        assert!(report.programs.len() >= 2, "tc + int roles at minimum");
    }

    #[test]
    fn verify_program_matches_desc_roles() {
        let spec = PackSpec::guarded(4, 4).unwrap();
        let desc = sweep_desc(Strategy::VitBit, spec, 197, 768, 768);
        for (prog, _) in contexts_for_desc(&desc) {
            verify_program(&prog, &desc).expect("role proof");
        }
    }

    #[test]
    fn deep_k_paper_policy_is_rejected() {
        let spec = PackSpec::paper(6).unwrap();
        let (prog, ctx) = packed_context(64, 768, 256, spec);
        let (_, violations) = verify_with_context(&prog, &ctx);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::LaneOverflow { .. })),
            "paper policy at K=768 must overflow a lane, got {violations:?}"
        );
    }

    #[test]
    fn engine_verifier_round_trips() {
        let spec = PackSpec::guarded(6, 6).unwrap();
        let good = sweep_desc(Strategy::VitBit, spec, 197, 768, 768);
        let verifier = engine_verifier();
        let proof = verifier.check(&good).expect("good desc proves");
        assert!(
            proof.programs.len() >= 2,
            "proof summarizes every role: {proof:?}"
        );
        assert!(proof.programs.iter().all(|(_, ops)| *ops > 0));
        let bad = sweep_desc(Strategy::VitBit, PackSpec::paper(6).unwrap(), 197, 768, 768);
        let err = verifier.check(&bad).expect_err("paper at deep K");
        assert!(!err.is_empty());
    }
}
