//! The static shared-memory race detector: a whole-block, lockstep,
//! concrete interpretation of a kernel program that records every
//! shared-memory access with its byte range, issuing warp/lane and
//! barrier epoch, then checks the interval between consecutive barriers
//! for write-write and write-read conflicts.
//!
//! Shared-memory addresses in the shipped kernels are functions of the
//! thread identity and compile-time immediates only — never of loaded
//! data — so a concrete evaluation per thread *is* a static analysis of
//! the address expressions (global loads return a placeholder and the
//! placeholder provably never reaches an `Sts`/`Lds`/`Mma` address;
//! if it did, the divergence/decidability guards below trip first).
//! Because the staging addresses are also loop-invariant, the access
//! pattern is periodic in the K dimension and it suffices to trace a
//! bounded number of pipeline periods (the caller caps `kmax`).
//!
//! The hazard rules between two accesses in the same barrier interval
//! with overlapping byte ranges:
//!
//! * different warps, at least one a write → hazard (no intra-interval
//!   ordering exists between warps);
//! * same warp, same instruction, different lanes, both writes →
//!   hazard (intra-instruction write collision);
//! * same warp, different instructions → ordered by program order, safe.

use crate::{ProgramContext, Violation};
use vitbit_sim::{FCmp, ICmp, MmaKind, Op, SReg, Src};

/// One shared-memory access event.
#[derive(Debug, Clone, Copy)]
struct Event {
    pc: usize,
    warp: u32,
    /// Byte range `[start, end)`.
    start: u32,
    end: u32,
    write: bool,
}

/// What the hazard pass observed.
#[derive(Debug, Clone, Default)]
pub struct HazardFacts {
    /// Barrier intervals the trace produced.
    pub barrier_intervals: usize,
    /// Shared-memory write events recorded.
    pub smem_writes: usize,
    /// Shared-memory read events recorded (including MMA tile reads).
    pub smem_reads: usize,
}

struct Machine {
    /// `regs[thread][reg]`.
    regs: Vec<Vec<u32>>,
    /// `preds[thread][pred]`.
    preds: Vec<Vec<bool>>,
    threads: usize,
}

impl Machine {
    fn src(&self, t: usize, s: &Src) -> u32 {
        match s {
            Src::R(r) => self.regs[t][r.0 as usize],
            Src::Imm(v) => *v,
        }
    }
}

fn icmp(x: u32, y: u32, cmp: ICmp) -> bool {
    let (sx, sy) = (x as i32, y as i32);
    match cmp {
        ICmp::Eq => x == y,
        ICmp::Ne => x != y,
        ICmp::Lt => sx < sy,
        ICmp::Le => sx <= sy,
        ICmp::Gt => sx > sy,
        ICmp::Ge => sx >= sy,
        ICmp::LtU => x < y,
        ICmp::GeU => x >= y,
    }
}

fn fcmp(x: f32, y: f32, cmp: FCmp) -> bool {
    match cmp {
        FCmp::Eq => x == y,
        FCmp::Lt => x < y,
        FCmp::Le => x <= y,
        FCmp::Gt => x > y,
        FCmp::Ge => x >= y,
    }
}

/// Per-MMA operand tile sizes in bytes: `(a_bytes, b_bytes)`.
fn mma_tile_bytes(kind: MmaKind) -> (u32, u32) {
    let (m, n, k) = kind.shape();
    match kind {
        MmaKind::I8_16x16x16 => ((m * k) as u32, (k * n) as u32),
        MmaKind::F16_16x16x8 => ((m * k * 4) as u32, (k * n * 4) as u32),
    }
}

/// Step budget: generous for two pipeline periods of any shipped kernel.
const STEP_BUDGET: u64 = 4_000_000;

/// Runs the hazard pass: concrete lockstep trace of one block, then the
/// interval conflict check.
pub fn analyze(
    program: &vitbit_sim::Program,
    ctx: &ProgramContext,
) -> (HazardFacts, Vec<Violation>) {
    let ops = &program.ops;
    let mut facts = HazardFacts::default();
    let mut violations = Vec::new();
    if !ops
        .iter()
        .any(|o| matches!(o, Op::Sts { .. } | Op::Lds { .. } | Op::Mma { .. }))
    {
        // No shared-memory traffic: trivially hazard-free.
        return (facts, violations);
    }

    let warps = ctx.warps.max(1) as usize;
    let threads = warps * 32;
    let nregs = program.nregs as usize;
    let mut m = Machine {
        regs: vec![vec![0u32; nregs.max(1)]; threads],
        preds: vec![vec![false; (program.npreds as usize).max(1)]; threads],
        threads,
    };

    // Concrete kernel arguments for the trace: pointers and strides are
    // placeholders (they never reach a shared-memory address), the loop
    // bound is the capped kmax, and divisors must be nonzero.
    let mut args = [1u32; 32];
    if (ctx.kmax_slot as usize) < args.len() {
        args[ctx.kmax_slot as usize] = ctx.kmax;
    }

    // Events per barrier interval.
    let mut intervals: Vec<Vec<Event>> = vec![Vec::new()];
    let mut pc = 0usize;
    let mut steps = 0u64;
    'trace: loop {
        if pc >= ops.len() {
            break;
        }
        steps += 1;
        if steps > STEP_BUDGET {
            violations.push(Violation::AnalysisLimit {
                detail: format!("hazard trace step budget {STEP_BUDGET} exhausted at pc {pc}"),
            });
            break;
        }
        let op = &ops[pc];
        match op {
            Op::IAdd { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).wrapping_add(m.src(t, b));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::ISub { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).wrapping_sub(m.src(t, b));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IMul { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).wrapping_mul(m.src(t, b));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IMad { d, a, b, c } => {
                for t in 0..threads {
                    let v = m
                        .src(t, a)
                        .wrapping_mul(m.src(t, b))
                        .wrapping_add(m.src(t, c));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::And { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a) & m.src(t, b);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Or { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a) | m.src(t, b);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Xor { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a) ^ m.src(t, b);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Shl { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).unbounded_shl(m.src(t, b));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Shr { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).unbounded_shr(m.src(t, b));
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Sar { d, a, b } => {
                for t in 0..threads {
                    let v = (m.src(t, a) as i32).unbounded_shr(m.src(t, b)) as u32;
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IMin { d, a, b } => {
                for t in 0..threads {
                    let v = (m.src(t, a) as i32).min(m.src(t, b) as i32) as u32;
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IMax { d, a, b } => {
                for t in 0..threads {
                    let v = (m.src(t, a) as i32).max(m.src(t, b) as i32) as u32;
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IDivU { d, a, b } => {
                for t in 0..threads {
                    let v = m.src(t, a).checked_div(m.src(t, b)).unwrap_or(0);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::IRemU { d, a, b } => {
                for t in 0..threads {
                    let x = m.src(t, a);
                    let v = x.checked_rem(m.src(t, b)).unwrap_or(x);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Shfl { d, a, xor_mask } => {
                for w in 0..warps {
                    let base = w * 32;
                    let mut vals = [0u32; 32];
                    for (lane, v) in vals.iter_mut().enumerate() {
                        *v = m.regs[base + (lane ^ (*xor_mask as usize) & 31)][a.0 as usize];
                    }
                    for (lane, v) in vals.iter().enumerate() {
                        m.regs[base + lane][d.0 as usize] = *v;
                    }
                }
            }
            Op::ISetP { p, a, b, cmp } => {
                for t in 0..threads {
                    let v = icmp(m.src(t, a), m.src(t, b), *cmp);
                    m.preds[t][p.0 as usize] = v;
                }
            }
            Op::Mov { d, s } => {
                for t in 0..threads {
                    let v = m.src(t, s);
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Sel { d, p, a, b } => {
                for t in 0..threads {
                    let v = if m.preds[t][p.0 as usize] {
                        m.src(t, a)
                    } else {
                        m.src(t, b)
                    };
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Ldc { d, idx } => {
                let v = args.get(*idx as usize).copied().unwrap_or(1);
                for t in 0..threads {
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::ReadSr { d, sr } => {
                for t in 0..threads {
                    let v = match sr {
                        SReg::Tid => t as u32,
                        SReg::Ntid => threads as u32,
                        SReg::Ctaid => 0,
                        SReg::Nctaid => 1,
                        SReg::LaneId => (t % 32) as u32,
                        SReg::WarpId => (t / 32) as u32,
                    };
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::FAdd { d, a, b }
            | Op::FMul { d, a, b }
            | Op::FMin { d, a, b }
            | Op::FMax { d, a, b } => {
                for t in 0..threads {
                    let (x, y) = (f32::from_bits(m.src(t, a)), f32::from_bits(m.src(t, b)));
                    let v = match op {
                        Op::FAdd { .. } => x + y,
                        Op::FMul { .. } => x * y,
                        Op::FMin { .. } => x.min(y),
                        _ => x.max(y),
                    };
                    m.regs[t][d.0 as usize] = v.to_bits();
                }
            }
            Op::FFma { d, a, b, c } => {
                for t in 0..threads {
                    let v = f32::from_bits(m.src(t, a)) * f32::from_bits(m.src(t, b))
                        + f32::from_bits(m.src(t, c));
                    m.regs[t][d.0 as usize] = v.to_bits();
                }
            }
            Op::FSetP { p, a, b, cmp } => {
                for t in 0..threads {
                    let v = fcmp(
                        f32::from_bits(m.src(t, a)),
                        f32::from_bits(m.src(t, b)),
                        *cmp,
                    );
                    m.preds[t][p.0 as usize] = v;
                }
            }
            Op::I2F { d, a } => {
                for t in 0..threads {
                    let v = (m.src(t, a) as i32) as f32;
                    m.regs[t][d.0 as usize] = v.to_bits();
                }
            }
            Op::F2I { d, a } | Op::F2IFloor { d, a } => {
                for t in 0..threads {
                    let x = f32::from_bits(m.src(t, a));
                    let v = if matches!(op, Op::F2I { .. }) {
                        x as i32 as u32
                    } else {
                        x.floor() as i32 as u32
                    };
                    m.regs[t][d.0 as usize] = v;
                }
            }
            Op::Rcp { d, a } | Op::Sqrt { d, a } | Op::Ex2 { d, a } | Op::Lg2 { d, a } => {
                for t in 0..threads {
                    let x = f32::from_bits(m.src(t, a));
                    let v = match op {
                        Op::Rcp { .. } => 1.0 / x,
                        Op::Sqrt { .. } => x.sqrt(),
                        Op::Ex2 { .. } => x.exp2(),
                        _ => x.log2(),
                    };
                    m.regs[t][d.0 as usize] = v.to_bits();
                }
            }
            Op::Ldg { d, guard, .. } => {
                // Global data is irrelevant to shared-memory addressing;
                // the placeholder never reaches an address computation in
                // the shipped kernels (the divergence guard would trip).
                for t in 0..threads {
                    if guard.is_none_or(|p| m.preds[t][p.0 as usize]) {
                        m.regs[t][d.0 as usize] = 0;
                    }
                }
            }
            Op::LdgV4 { d, .. } => {
                for t in 0..threads {
                    for i in 0..4 {
                        m.regs[t][d.0 as usize + i] = 0;
                    }
                }
            }
            Op::Stg { .. } => {}
            Op::Lds { d, addr, off, w } => {
                let cur = intervals.len() - 1;
                for t in 0..threads {
                    let a = (m.regs[t][addr.0 as usize] as i64 + i64::from(*off)) as u32;
                    intervals[cur].push(Event {
                        pc,
                        warp: (t / 32) as u32,
                        start: a,
                        end: a + w.bytes(),
                        write: false,
                    });
                    m.regs[t][d.0 as usize] = 0;
                }
            }
            Op::Sts { addr, off, w, .. } => {
                let cur = intervals.len() - 1;
                for t in 0..threads {
                    let a = (m.regs[t][addr.0 as usize] as i64 + i64::from(*off)) as u32;
                    intervals[cur].push(Event {
                        pc,
                        warp: (t / 32) as u32,
                        start: a,
                        end: a + w.bytes(),
                        write: true,
                    });
                }
            }
            Op::Mma {
                kind,
                a_addr,
                b_addr,
                ..
            } => {
                let (ab, bb) = mma_tile_bytes(*kind);
                let cur = intervals.len() - 1;
                for w in 0..warps {
                    // MMA operand addresses are warp-uniform; read lane 0.
                    let t0 = w * 32;
                    let a = m.regs[t0][a_addr.0 as usize];
                    let b = m.regs[t0][b_addr.0 as usize];
                    intervals[cur].push(Event {
                        pc,
                        warp: w as u32,
                        start: a,
                        end: a + ab,
                        write: false,
                    });
                    intervals[cur].push(Event {
                        pc,
                        warp: w as u32,
                        start: b,
                        end: b + bb,
                        write: false,
                    });
                }
            }
            Op::Bar => {
                intervals.push(Vec::new());
            }
            Op::Bra {
                target,
                pred,
                sense,
            } => {
                let take = match pred {
                    None => true,
                    Some(p) => {
                        // Lockstep trace: branch predicates must be
                        // block-uniform, and in the shipped kernels they
                        // are (loop counters only).
                        let first = m.preds[0][p.0 as usize];
                        if (1..m.threads).any(|t| m.preds[t][p.0 as usize] != first) {
                            violations.push(Violation::AnalysisLimit {
                                detail: format!(
                                    "divergent branch predicate at pc {pc}: the hazard pass \
                                     only handles block-uniform control flow"
                                ),
                            });
                            break 'trace;
                        }
                        first == *sense
                    }
                };
                if take {
                    pc = *target;
                    continue;
                }
            }
            Op::Exit => break,
            Op::Nop => {}
        }
        pc += 1;
    }

    facts.barrier_intervals = intervals.len();
    for evs in &intervals {
        facts.smem_writes += evs.iter().filter(|e| e.write).count();
        facts.smem_reads += evs.iter().filter(|e| !e.write).count();
    }

    // Conflict check per interval: sort by start byte, sweep overlaps.
    let mut reported: std::collections::HashSet<(usize, usize, bool)> =
        std::collections::HashSet::new();
    for (epoch, evs) in intervals.iter().enumerate() {
        let mut sorted: Vec<&Event> = evs.iter().collect();
        sorted.sort_by_key(|e| (e.start, e.end));
        // Active set sweep: compare each event against overlapping
        // predecessors only.
        for i in 0..sorted.len() {
            for j in (i + 1)..sorted.len() {
                let (a, b) = (sorted[i], sorted[j]);
                if b.start >= a.end {
                    break;
                }
                if !(a.write || b.write) {
                    continue;
                }
                let same_warp = a.warp == b.warp;
                let hazard = if a.write && b.write {
                    // Same warp is ordered by program order, except two
                    // lanes colliding within one instruction.
                    !same_warp || a.pc == b.pc
                } else {
                    !same_warp
                };
                if !hazard {
                    continue;
                }
                let (wpc, opc, ww) = if a.write && b.write {
                    (a.pc.min(b.pc), a.pc.max(b.pc), true)
                } else if a.write {
                    (a.pc, b.pc, false)
                } else {
                    (b.pc, a.pc, false)
                };
                if !reported.insert((wpc, opc, ww)) {
                    continue;
                }
                let v = if ww {
                    Violation::WriteWriteHazard {
                        pc_a: wpc,
                        pc_b: opc,
                        interval: epoch,
                        addr: a.start.max(b.start),
                    }
                } else {
                    Violation::WriteReadHazard {
                        write_pc: wpc,
                        read_pc: opc,
                        interval: epoch,
                        addr: a.start.max(b.start),
                    }
                };
                violations.push(v);
            }
        }
    }
    (facts, violations)
}
