//! The lane-safety abstract interpreter: one pass over a kernel
//! [`Program`] in the domain of `domain::AbsVal`, proving that
//!
//! * no SWAR lane ever exceeds its `lane_bits` budget (Eq. 1: the
//!   spill cadence times the maximal per-step lane product must fit in
//!   `2^lane_bits - 1`),
//! * every ALU op that touches a packed register is lane-structure
//!   preserving (extraction masks match the spec's lane mask, shifts
//!   land on lane boundaries, accumulation adds packed to packed),
//! * extracted lane sums never wrap their 32-bit wide accumulators, and
//! * no packed payload escapes to global memory unextracted.
//!
//! Control flow is executed, not joined: the k-loop bound (`kmax`) is
//! an exact constant derived from the GEMM shape, so counted loops run
//! for their true trip count and accumulator bounds stay precise.
//! Branches whose predicate the domain cannot decide follow the
//! fall-through (loop-entry) path, and backward edges with undecided or
//! absent predicates are taken a bounded number of times; both choices
//! are recorded as assumptions, and any instruction the trace never
//! reaches (other than `Exit`/`Nop`) is reported as uncovered rather
//! than silently trusted.

use crate::domain::{AbsVal, LaneIv, PtrKind, Tag};
use crate::{ProgramContext, Violation};
use vitbit_sim::{ICmp, MemWidth, Op, Pred, Reg, SReg, Src};

/// Hard ceiling on interpreted steps; exceeding it is a violation (the
/// pass refuses to certify what it could not finish analyzing).
const STEP_BUDGET: u64 = 8_000_000;

/// Maximum times a backward edge with an undecidable predicate (or no
/// predicate at all — the outer task loop) is re-taken before the trace
/// is considered complete.
const MAX_UNDECIDED_BACK_EDGES: u32 = 2;

/// Everything the lane pass learned on the way to a proof.
#[derive(Debug, Clone, Default)]
pub struct LaneFacts {
    /// Interpreted steps.
    pub steps: u64,
    /// Instructions the trace visited at least once.
    pub visited_ops: usize,
    /// Worst per-lane occupancy seen at any MAC (mathematical bound).
    pub max_lane_occupancy: u64,
    /// The per-lane budget the occupancy was checked against.
    pub lane_capacity: u64,
    /// Lane extractions (spill sequences) the trace executed.
    pub lane_extracts: u64,
    /// Worst wide-accumulator bound seen.
    pub max_wide_sum: u64,
    /// Contract assumptions and path decisions the proof rests on.
    pub assumptions: Vec<String>,
}

struct Interp<'a> {
    ctx: &'a ProgramContext,
    regs: Vec<AbsVal>,
    preds: Vec<Option<bool>>,
    violations: Vec<Violation>,
    facts: LaneFacts,
    /// Violation dedupe: one report per (pc, discriminant).
    seen: std::collections::HashSet<(usize, u8)>,
}

impl<'a> Interp<'a> {
    fn new(ctx: &'a ProgramContext, nregs: usize, npreds: usize) -> Self {
        Interp {
            ctx,
            regs: vec![AbsVal::top(); nregs.max(1)],
            preds: vec![None; npreds.max(1)],
            violations: Vec::new(),
            facts: LaneFacts::default(),
            seen: std::collections::HashSet::new(),
        }
    }

    fn flag(&mut self, pc: usize, disc: u8, v: Violation) {
        if self.seen.insert((pc, disc)) {
            self.violations.push(v);
        }
    }

    fn val(&self, s: &Src) -> AbsVal {
        match s {
            Src::R(r) => self.regs[r.0 as usize],
            Src::Imm(v) => AbsVal::exact(*v),
        }
    }

    fn set(&mut self, d: Reg, v: AbsVal) {
        self.regs[d.0 as usize] = v;
    }

    /// Interval add of two plain-ish values; pointer taint survives.
    fn add_vals(&mut self, pc: usize, a: AbsVal, b: AbsVal) -> AbsVal {
        // Packed + packed: lane-wise (the accumulate shape of a SWAR add).
        if let (
            Tag::Packed {
                n: n1,
                lane_bits: w1,
            },
            Tag::Packed {
                n: n2,
                lane_bits: w2,
            },
        ) = (a.tag, b.tag)
        {
            if n1 == n2 && w1 == w2 {
                let cap = (1u64 << w1) - 1;
                let mut lanes = [LaneIv::ZERO; 4];
                let mut overflow: Option<(u32, u64)> = None;
                for (l, slot) in lanes.iter_mut().enumerate().take(usize::from(n1)) {
                    let lo = a.lanes[l].lo + b.lanes[l].lo;
                    let mut hi = a.lanes[l].hi + b.lanes[l].hi;
                    if hi > cap {
                        overflow.get_or_insert((l as u32, hi));
                        hi = cap;
                    }
                    self.facts.max_lane_occupancy = self.facts.max_lane_occupancy.max(hi);
                    *slot = LaneIv { lo, hi };
                }
                if let Some((lane, bound)) = overflow {
                    self.flag(
                        pc,
                        0,
                        Violation::LaneOverflow {
                            pc,
                            lane,
                            bound,
                            capacity: cap,
                        },
                    );
                }
                return AbsVal::packed(n1, w1, lanes);
            }
        }
        // Packed + plain-zero keeps the packed side; anything else mixing
        // a packed payload into scalar arithmetic clobbers the mask.
        for (x, y) in [(a, b), (b, a)] {
            if matches!(x.tag, Tag::Packed { .. }) {
                if y.as_exact() == Some(0) {
                    return x;
                }
                self.flag(
                    pc,
                    1,
                    Violation::MaskClobbered {
                        pc,
                        detail: "integer add mixes a packed payload with a non-packed value"
                            .to_string(),
                    },
                );
                return AbsVal::top();
            }
        }
        let ptr = match (a.tag, b.tag) {
            (Tag::Ptr(k), _) | (_, Tag::Ptr(k)) => Some(k),
            _ => None,
        };
        let lo = a.lo.saturating_add(b.lo);
        let hi = a.hi.saturating_add(b.hi);
        let ext = a.ext || b.ext;
        if let Some(k) = ptr {
            return AbsVal::ptr(k);
        }
        if hi > u64::from(u32::MAX) {
            // A mathematical sum that no longer fits the register: fatal
            // for lane-extract provenance (wide accumulators must be
            // exact), merely precision loss elsewhere.
            if ext {
                self.flag(pc, 2, Violation::AccumulatorWrap { pc, bound: hi });
            }
            let mut t = AbsVal::top();
            t.ext = ext;
            return t;
        }
        self.facts.max_wide_sum = self.facts.max_wide_sum.max(if ext { hi } else { 0 });
        let mut v = AbsVal::range(lo, hi);
        v.ext = ext;
        v
    }

    fn mul_vals(&self, a: AbsVal, b: AbsVal) -> AbsVal {
        if matches!(a.tag, Tag::Packed { .. }) || matches!(b.tag, Tag::Packed { .. }) {
            // Handled separately in IMad; a bare IMul on packed data is
            // not emitted by any builder. Degrade to top — the IMad path
            // flags real misuse.
            return AbsVal::top();
        }
        let hi = a.hi.saturating_mul(b.hi);
        if hi > u64::from(u32::MAX) {
            return AbsVal::top();
        }
        AbsVal::range(a.lo.saturating_mul(b.lo), hi)
    }

    /// `d = a * b + c` — the MAC. The packed shape (scalar × packed
    /// + packed) is where lane-overflow is proven or refuted.
    fn mad(&mut self, pc: usize, a: AbsVal, b: AbsVal, c: AbsVal) -> AbsVal {
        let (scalar, packed) = match (a.tag, b.tag) {
            (Tag::Packed { .. }, Tag::Packed { .. }) => {
                self.flag(
                    pc,
                    3,
                    Violation::MaskClobbered {
                        pc,
                        detail: "MAC multiplies two packed payloads".to_string(),
                    },
                );
                return AbsVal::top();
            }
            (_, Tag::Packed { .. }) => (a, b),
            (Tag::Packed { .. }, _) => (b, a),
            _ => {
                let prod = self.mul_vals(a, b);
                return self.add_vals(pc, prod, c);
            }
        };
        let Tag::Packed { n, lane_bits } = packed.tag else {
            unreachable!("matched packed above");
        };
        let cap = (1u64 << lane_bits) - 1;
        // Accumulator must be packed with the same layout or exactly zero.
        let acc_lanes = match c.tag {
            Tag::Packed {
                n: na,
                lane_bits: wa,
            } if na == n && wa == lane_bits => c.lanes,
            _ if c.as_exact() == Some(0) => [LaneIv::ZERO; 4],
            _ => {
                self.flag(
                    pc,
                    4,
                    Violation::MaskClobbered {
                        pc,
                        detail: "MAC accumulates a packed product into a non-packed register"
                            .to_string(),
                    },
                );
                return AbsVal::top();
            }
        };
        let mut lanes = [LaneIv::ZERO; 4];
        for l in 0..usize::from(n) {
            let lo = acc_lanes[l].lo + scalar.lo.saturating_mul(packed.lanes[l].lo);
            let mut hi = acc_lanes[l].hi + scalar.hi.saturating_mul(packed.lanes[l].hi);
            if hi > cap {
                self.flag(
                    pc,
                    5,
                    Violation::LaneOverflow {
                        pc,
                        lane: l as u32,
                        bound: hi,
                        capacity: cap,
                    },
                );
                hi = cap;
            }
            self.facts.max_lane_occupancy = self.facts.max_lane_occupancy.max(hi);
            lanes[l] = LaneIv {
                lo: lo.min(cap),
                hi,
            };
        }
        AbsVal::packed(n, lane_bits, lanes)
    }

    fn and_vals(&mut self, pc: usize, a: AbsVal, b: AbsVal) -> AbsVal {
        // Extraction: packed & mask. Only the spec's own lane mask is a
        // faithful guard-bit extraction; anything else drops or leaks
        // guard bits.
        for (x, y) in [(a, b), (b, a)] {
            if let Tag::Packed { n: _, lane_bits } = x.tag {
                let lane_mask = ((1u64 << lane_bits) - 1) as u32;
                match y.as_exact() {
                    Some(m) if m == lane_mask => {
                        let mut v = AbsVal::range(x.lanes[0].lo, x.lanes[0].hi);
                        v.ext = true;
                        self.facts.lane_extracts += 1;
                        return v;
                    }
                    _ => {
                        self.flag(
                            pc,
                            6,
                            Violation::MaskClobbered {
                                pc,
                                detail: format!(
                                    "AND mask {:#x?} on a packed register does not match the \
                                     spec's lane mask {lane_mask:#x}",
                                    y.as_exact()
                                ),
                            },
                        );
                        let mut v = AbsVal::range(0, y.hi.min(x.hi));
                        v.ext = true;
                        return v;
                    }
                }
            }
        }
        let hi = a.hi.min(b.hi).min(u64::from(u32::MAX));
        let mut v = AbsVal::range(0, hi);
        v.zeros = a.zeros | b.zeros;
        v.ext = a.ext || b.ext;
        v
    }

    fn shr_vals(&mut self, pc: usize, a: AbsVal, b: AbsVal) -> AbsVal {
        let Some(sh) = b.as_exact() else {
            return AbsVal::top();
        };
        let sh = sh & 31;
        if let Tag::Packed { n, lane_bits } = a.tag {
            if sh % u32::from(lane_bits) != 0 {
                self.flag(pc, 7, Violation::LaneMisaligned { pc, shift: sh });
                let mut v = AbsVal::range(a.lo >> sh, a.hi >> sh);
                v.ext = true;
                return v;
            }
            let drop = (sh / u32::from(lane_bits)) as u8;
            let live = n.saturating_sub(drop);
            return match live {
                0 => AbsVal::exact(0),
                1 => {
                    let l = usize::from(drop);
                    let mut v = AbsVal::range(a.lanes[l].lo, a.lanes[l].hi);
                    v.ext = true;
                    self.facts.lane_extracts += 1;
                    v
                }
                _ => {
                    let mut lanes = [LaneIv::ZERO; 4];
                    for (l, slot) in lanes.iter_mut().enumerate().take(usize::from(live)) {
                        *slot = a.lanes[usize::from(drop) + l];
                    }
                    AbsVal::packed(live, lane_bits, lanes)
                }
            };
        }
        let mut v = AbsVal::range(a.lo >> sh, a.hi >> sh);
        v.zeros |= (a.zeros >> sh) | !(u32::MAX >> sh);
        v.ext = a.ext;
        v
    }

    fn non_preserving(&mut self, pc: usize, opname: &str, srcs: &[&Src]) -> bool {
        for s in srcs {
            if let Src::R(r) = s {
                if matches!(self.regs[r.0 as usize].tag, Tag::Packed { .. }) {
                    self.flag(
                        pc,
                        8,
                        Violation::MaskClobbered {
                            pc,
                            detail: format!(
                                "{opname} is not lane-structure preserving on a packed register"
                            ),
                        },
                    );
                    return true;
                }
            }
        }
        false
    }

    /// Value produced by a global load, per the operand contracts.
    fn load_contract(&mut self, addr: Reg, w: MemWidth) -> AbsVal {
        let a = self.regs[addr.0 as usize];
        match (a.tag, w) {
            // The biased-code operand: bytes hold excess-2^(b-1) codes of
            // the value bitwidth (upload_ops::transposed_biased).
            (Tag::Ptr(PtrKind::A), MemWidth::B8U) => {
                let bound = self
                    .ctx
                    .spec
                    .map_or(255, |s| u64::from(s.max_value_code()).min(255));
                AbsVal::range(0, bound)
            }
            // Packed B words: each lane carries a biased weight code with
            // its guard bits zero (core::pack::pack_codes).
            (Tag::Ptr(PtrKind::B), MemWidth::B32) => match self.ctx.spec {
                Some(s) if s.lanes > 1 => {
                    let mut lanes = [LaneIv::ZERO; 4];
                    for l in lanes.iter_mut().take(s.lanes as usize) {
                        *l = LaneIv {
                            lo: 0,
                            hi: u64::from(s.max_weight_code()),
                        };
                    }
                    AbsVal::packed(s.lanes as u8, s.lane_bits as u8, lanes)
                }
                _ => AbsVal::top(),
            },
            _ => AbsVal::top(),
        }
    }

    fn setp(&self, a: AbsVal, b: AbsVal, cmp: ICmp) -> Option<bool> {
        // Decidable only for exact operands (the loop counters), which is
        // all the counted-loop handling needs.
        let (x, y) = (a.as_exact()?, b.as_exact()?);
        let (sx, sy) = (x as i32, y as i32);
        Some(match cmp {
            ICmp::Eq => x == y,
            ICmp::Ne => x != y,
            ICmp::Lt => sx < sy,
            ICmp::Le => sx <= sy,
            ICmp::Gt => sx > sy,
            ICmp::Ge => sx >= sy,
            ICmp::LtU => x < y,
            ICmp::GeU => x >= y,
        })
    }
}

/// Runs the lane-safety pass over `program` under `ctx`.
pub fn analyze(program: &vitbit_sim::Program, ctx: &ProgramContext) -> (LaneFacts, Vec<Violation>) {
    let ops = &program.ops;
    let mut it = Interp::new(ctx, program.nregs as usize, program.npreds as usize);
    if let Some(s) = ctx.spec {
        it.facts.lane_capacity = (1u64 << s.lane_bits) - 1;
        it.facts.assumptions.push(format!(
            "operand contract: A bytes are biased codes <= {}, packed B lanes are biased codes \
             <= {} with guard bits zero (core::pack)",
            s.max_value_code(),
            s.max_weight_code()
        ));
    }
    it.facts.assumptions.push(format!(
        "loop bound kmax = {} (from the GEMM shape)",
        ctx.kmax
    ));

    let mut visited = vec![false; ops.len()];
    let mut back_taken: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
    let mut pc = 0usize;
    loop {
        if pc >= ops.len() {
            break;
        }
        it.facts.steps += 1;
        if it.facts.steps > STEP_BUDGET {
            it.violations.push(Violation::AnalysisLimit {
                detail: format!("step budget {STEP_BUDGET} exhausted at pc {pc}"),
            });
            break;
        }
        visited[pc] = true;
        match &ops[pc] {
            Op::IAdd { d, a, b } => {
                let (x, y) = (it.val(a), it.val(b));
                let v = it.add_vals(pc, x, y);
                it.set(*d, v);
            }
            Op::ISub { d, a, b } => {
                let (x, y) = (it.val(a), it.val(b));
                let v = match (x.as_exact(), y.as_exact()) {
                    _ if it.non_preserving(pc, "ISUB", &[a, b]) => AbsVal::top(),
                    (Some(p), Some(q)) => AbsVal::exact(p.wrapping_sub(q)),
                    _ => {
                        if let Tag::Ptr(k) = x.tag {
                            AbsVal::ptr(k)
                        } else if y.as_exact() == Some(0) {
                            x
                        } else if y.hi <= x.lo {
                            AbsVal::range(x.lo - y.hi, x.hi - y.lo)
                        } else {
                            AbsVal::top()
                        }
                    }
                };
                it.set(*d, v);
            }
            Op::IMul { d, a, b } => {
                let v = if it.non_preserving(pc, "IMUL", &[a, b]) {
                    AbsVal::top()
                } else {
                    let (x, y) = (it.val(a), it.val(b));
                    it.mul_vals(x, y)
                };
                it.set(*d, v);
            }
            Op::IMad { d, a, b, c } => {
                let (x, y, z) = (it.val(a), it.val(b), it.val(c));
                let v = it.mad(pc, x, y, z);
                it.set(*d, v);
            }
            Op::And { d, a, b } => {
                let (x, y) = (it.val(a), it.val(b));
                let v = it.and_vals(pc, x, y);
                it.set(*d, v);
            }
            Op::Shr { d, a, b } => {
                let (x, y) = (it.val(a), it.val(b));
                let v = it.shr_vals(pc, x, y);
                it.set(*d, v);
            }
            Op::Shl { d, a, b } => {
                let v = if it.non_preserving(pc, "SHL", &[a, b]) {
                    AbsVal::top()
                } else {
                    let (x, y) = (it.val(a), it.val(b));
                    match y.as_exact() {
                        Some(sh) => {
                            let sh = sh & 31;
                            let hi = x.hi << sh;
                            if hi > u64::from(u32::MAX) {
                                AbsVal::top()
                            } else {
                                AbsVal::range(x.lo << sh, hi)
                            }
                        }
                        None => AbsVal::top(),
                    }
                };
                it.set(*d, v);
            }
            Op::Or { d, a, b } | Op::Xor { d, a, b } | Op::Sar { d, a, b } => {
                let name = match &ops[pc] {
                    Op::Or { .. } => "OR",
                    Op::Xor { .. } => "XOR",
                    _ => "SAR",
                };
                let _ = it.non_preserving(pc, name, &[a, b]);
                it.set(*d, AbsVal::top());
            }
            Op::IMin { d, a, b } | Op::IMax { d, a, b } => {
                let _ = it.non_preserving(pc, "IMIN/IMAX", &[a, b]);
                let (x, y) = (it.val(a), it.val(b));
                it.set(*d, AbsVal::range(0, x.hi.max(y.hi)));
            }
            Op::IDivU { d, a, b } => {
                let _ = it.non_preserving(pc, "IDIVU", &[a, b]);
                let (x, y) = (it.val(a), it.val(b));
                let v = match (x.as_exact(), y.as_exact()) {
                    (Some(p), Some(q)) if q != 0 => AbsVal::exact(p / q),
                    _ => AbsVal::range(0, x.hi),
                };
                it.set(*d, v);
            }
            Op::IRemU { d, a, b } => {
                let _ = it.non_preserving(pc, "IREMU", &[a, b]);
                let (x, y) = (it.val(a), it.val(b));
                let v = match (x.as_exact(), y.as_exact()) {
                    (Some(p), Some(q)) if q != 0 => AbsVal::exact(p % q),
                    _ => AbsVal::range(0, x.hi.min(y.hi.saturating_sub(1))),
                };
                it.set(*d, v);
            }
            Op::Shfl { d, a, .. } => {
                // The abstract state bounds every thread's value of `a`
                // simultaneously, so a lane exchange stays in-interval
                // (and lane structure survives — SHFL moves whole words).
                let v = it.regs[a.0 as usize];
                it.set(*d, v);
            }
            Op::ISetP { p, a, b, cmp } => {
                let (x, y) = (it.val(a), it.val(b));
                it.preds[p.0 as usize] = it.setp(x, y, *cmp);
            }
            Op::Mov { d, s } => {
                let v = it.val(s);
                it.set(*d, v);
            }
            Op::Sel { d, p, a, b } => {
                let (x, y) = (it.val(a), it.val(b));
                let v = match it.preds[p.0 as usize] {
                    Some(true) => x,
                    Some(false) => y,
                    None => x.join(&y),
                };
                it.set(*d, v);
            }
            Op::Ldc { d, idx } => {
                let v = if *idx == ctx.arg_base {
                    AbsVal::ptr(PtrKind::A)
                } else if *idx == ctx.arg_base + 1 {
                    AbsVal::ptr(PtrKind::B)
                } else if *idx == ctx.arg_base + 2 {
                    AbsVal::ptr(PtrKind::C)
                } else if *idx == ctx.kmax_slot {
                    AbsVal::exact(ctx.kmax)
                } else {
                    AbsVal::top()
                };
                it.set(*d, v);
            }
            Op::ReadSr { d, sr } => {
                let v = match sr {
                    SReg::LaneId => AbsVal::range(0, 31),
                    SReg::WarpId => AbsVal::range(0, u64::from(ctx.warps.saturating_sub(1))),
                    SReg::Tid => AbsVal::range(0, u64::from(ctx.warps * 32 - 1)),
                    SReg::Ntid => AbsVal::exact(ctx.warps * 32),
                    _ => AbsVal::top(),
                };
                it.set(*d, v);
            }
            Op::FAdd { d, .. }
            | Op::FMul { d, .. }
            | Op::FFma { d, .. }
            | Op::FMin { d, .. }
            | Op::FMax { d, .. }
            | Op::I2F { d, .. }
            | Op::F2I { d, .. }
            | Op::F2IFloor { d, .. }
            | Op::Rcp { d, .. }
            | Op::Sqrt { d, .. }
            | Op::Ex2 { d, .. }
            | Op::Lg2 { d, .. } => {
                // Float bit patterns carry no SWAR structure.
                it.set(*d, AbsVal::top());
            }
            Op::FSetP { p, .. } => {
                it.preds[p.0 as usize] = None;
            }
            Op::Ldg {
                d, addr, w, guard, ..
            } => {
                let loaded = it.load_contract(*addr, *w);
                let v = match guard {
                    // A guarded load may leave the old value in place.
                    Some(_) => loaded.join(&it.regs[d.0 as usize]),
                    None => loaded,
                };
                it.set(*d, v);
            }
            Op::LdgV4 { d, addr, .. } => {
                for i in 0..4u8 {
                    let loaded = it.load_contract(*addr, MemWidth::B32);
                    it.set(Reg(d.0 + i), loaded);
                }
            }
            Op::Stg { addr, v, .. } => {
                let dest = it.regs[addr.0 as usize];
                let val = it.val(v);
                if matches!(dest.tag, Tag::Ptr(PtrKind::C)) && matches!(val.tag, Tag::Packed { .. })
                {
                    it.flag(pc, 9, Violation::PackedEscape { pc });
                }
            }
            Op::Lds { d, .. } => {
                it.set(*d, AbsVal::top());
            }
            Op::Sts { v, .. } => {
                if let Src::R(r) = v {
                    // Shared-memory staging of raw operand bytes is fine;
                    // staging a live packed accumulator would launder it
                    // past the escape check.
                    if matches!(it.regs[r.0 as usize].tag, Tag::Packed { .. }) {
                        it.flag(
                            pc,
                            10,
                            Violation::MaskClobbered {
                                pc,
                                detail: "packed payload staged to shared memory unextracted"
                                    .to_string(),
                            },
                        );
                    }
                }
            }
            Op::Mma { kind, acc, .. } => {
                for i in 0..kind.acc_regs() {
                    it.set(Reg(acc.0 + i), AbsVal::top());
                }
            }
            Op::Bra {
                target,
                pred,
                sense,
            } => {
                let decided = pred.map(|p: Pred| it.preds[p.0 as usize].map(|v| v == *sense));
                let take = match decided {
                    None => {
                        // Unconditional.
                        if *target <= pc {
                            let t = back_taken.entry(pc).or_insert(0);
                            *t += 1;
                            if *t >= MAX_UNDECIDED_BACK_EDGES {
                                it.facts.assumptions.push(format!(
                                    "outer loop at pc {pc} traced {MAX_UNDECIDED_BACK_EDGES} \
                                     times (body re-establishes its own accumulator state)"
                                ));
                                break;
                            }
                        }
                        true
                    }
                    Some(Some(v)) => v,
                    Some(None) => {
                        // Undecidable predicate.
                        if *target > pc {
                            it.facts.assumptions.push(format!(
                                "undecided forward branch at pc {pc} assumed not taken \
                                 (loop-entry path analyzed)"
                            ));
                            false
                        } else {
                            let t = back_taken.entry(pc).or_insert(0);
                            *t += 1;
                            *t < MAX_UNDECIDED_BACK_EDGES
                        }
                    }
                };
                if take {
                    pc = *target;
                    continue;
                }
            }
            Op::Bar | Op::Nop => {}
            Op::Exit => break,
        }
        pc += 1;
    }

    it.facts.visited_ops = visited.iter().filter(|v| **v).count();
    for (i, op) in ops.iter().enumerate() {
        if !visited[i] && !matches!(op, Op::Exit | Op::Nop) {
            it.violations.push(Violation::Uncovered { pc: i });
        }
    }
    (it.facts, it.violations)
}
